#!/usr/bin/env python3
"""Scaling smoke gate for the work-stealing parallel explorer.

Reads BENCH_modelcheck.json (JSON-lines, written by bench_modelcheck) and
fails if, on any checked instance, the parallel-4 configuration is more
than SLOWDOWN_LIMIT times slower than serial-fast.  The stealing explorer
clamps its worker count to the hardware concurrency and its per-worker warm
pools adapt downward, so even on a single-core CI runner parallel-4 must
track the serial fast path - a regression here means the coordination
machinery started costing real time again (the failure mode of the old
frontier-split explorer, which ran 5x slower than serial on one core).

Usage: tools/scaling_smoke.py [path-to-BENCH_modelcheck.json]
"""

import json
import sys

SLOWDOWN_LIMIT = 1.3
INSTANCES = ("register-script-554", "collect-writers-443")


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_modelcheck.json"
    rows = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                if row.get("name") != "modelcheck-scaling":
                    continue
                rows[(row.get("instance"), row.get("config"))] = row
    except OSError as err:
        print(f"scaling-smoke: cannot read {path}: {err}")
        return 1

    failures = []
    for instance in INSTANCES:
        serial = rows.get((instance, "serial-fast"))
        parallel = rows.get((instance, "parallel-4"))
        if serial is None or parallel is None:
            failures.append(f"{instance}: missing serial-fast/parallel-4 rows")
            continue
        if not parallel.get("identical_to_baseline", False):
            failures.append(f"{instance}: parallel-4 result not bit-identical")
        ratio = parallel["seconds"] / max(serial["seconds"], 1e-9)
        verdict = "ok" if ratio <= SLOWDOWN_LIMIT else "FAIL"
        print(
            f"scaling-smoke: {instance}: serial-fast {serial['seconds']:.3f}s,"
            f" parallel-4 {parallel['seconds']:.3f}s -> {ratio:.2f}x"
            f" (limit {SLOWDOWN_LIMIT}x) {verdict}"
            f" [jobs={parallel.get('jobs')} steals={parallel.get('steals')}]"
        )
        if ratio > SLOWDOWN_LIMIT:
            failures.append(
                f"{instance}: parallel-4 is {ratio:.2f}x slower than "
                f"serial-fast (limit {SLOWDOWN_LIMIT}x)"
            )

    if failures:
        for failure in failures:
            print(f"scaling-smoke: FAIL: {failure}")
        return 1
    print("scaling-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
