#!/usr/bin/env python3
"""Scaling, reduction and schema smoke gates for the schedule explorer.

Reads BENCH_modelcheck.json (JSON-lines, written by bench_modelcheck) and
enforces four things:

1. Parallel sanity: on each checked instance, parallel-4 must not run more
   than SLOWDOWN_LIMIT times slower than serial-fast.  The stealing explorer
   clamps its worker count to the hardware concurrency and its per-worker
   warm pools adapt downward, so even on a single-core CI runner parallel-4
   must track the serial fast path - a regression here means the
   coordination machinery started costing real time again (the failure mode
   of the old frontier-split explorer, which ran 5x slower than serial on
   one core).

2. Dedupe-thread sanity: parallel-dedupe-4 must not run more than
   DEDUPE_THREAD_LIMIT times slower than parallel-dedupe-2.  Heavily-deduped
   trees collapse to a few hundred executions, where thread spawn plus
   shared-table synchronization dominates; the serial probe in the parallel
   explorer exists to absorb exactly those, so more threads must never cost
   more wall clock on them.  Because both configurations resolve in the
   probe, their wall clocks sit at the ~1ms scale where throttled CI
   containers jitter by 10x, so the ratio only fails when the absolute gap
   also exceeds DEDUPE_ABS_SLACK_SECONDS - a genuine pool-respawn
   regression costs tens of milliseconds of thread churn and clears both
   bars.

3. POR effectiveness: serial-por on register-script-554 must explore at most
   1/POR_REDUCTION_MIN of the unreduced executions while keeping verdict,
   lex-smallest witness and exhausted flag identical (the bench records that
   as witness_parity).  The instance is three writers on disjoint
   registers - the workload class partial-order reduction exists for - so a
   reduction below 2x means the sleep sets stopped working.

4. Distributed bit parity: every dist-workers-N row on the checked
   instances must be identical_to_baseline - the coordinator/worker engine
   shares the in-process explorer's key-sorted merge, so any drift in
   executions/exhausted/violation/witness means the wire encoding or the
   cap-credit protocol broke serial accounting.

5. Distributed overhead: dist-workers-2 must not run more than DIST_LIMIT
   times slower than parallel-2 on the checked instances.  The distributed
   engine pays fork + TCP serialization + prefix re-replay where the
   in-process explorer hands off a warm world pointer; DIST_LIMIT bounds
   that toll.  Small-tree wall clocks jitter heavily on throttled CI
   containers, so the ratio only fails when the absolute gap also exceeds
   DIST_ABS_SLACK_SECONDS.

6. Heartbeat overhead: dist-workers-2-heartbeat (liveness layer on, at a
   25ms ping interval - 20x tighter than the production default) must not
   run more than HEARTBEAT_LIMIT times slower than dist-workers-2 on
   register-script-554, and must stay bit-identical.  At the default 500ms
   interval the ping traffic is 20x sparser still, so clearing this bar
   puts the production liveness cost well under 2% of wall clock; the
   absolute-gap slack absorbs throttled-container jitter as in gates 2
   and 5.

7. Distributed dedupe overhead: dist-dedupe-workers-2 (every claim crosses
   the socket through the batched kFpBatch/kFpVerdicts pipeline) must not
   run more than DIST_LIMIT times slower than parallel-dedupe-2 on the
   checked instances - the async pipeline exists to keep the shared-table
   toll at in-process scale instead of one RPC round trip per state.  The
   absolute-gap slack absorbs small-tree jitter as in gate 5.  The same
   gate checks the dedupe contract: every dist-dedupe-workers-N row must
   keep verdict parity and report states_seen no larger than
   serial-dedupe's (claims are a subset of the distinct states the serial
   table records).

8. Row schema: every record in the file carries the fields (with the types)
   its record kind promises, so sweeps over commits can diff numbers
   without defensive parsing.

Usage: tools/scaling_smoke.py [path-to-BENCH_modelcheck.json]
"""

import json
import sys

SLOWDOWN_LIMIT = 1.3
DEDUPE_THREAD_LIMIT = 1.25
DEDUPE_ABS_SLACK_SECONDS = 0.05
POR_REDUCTION_MIN = 2.0
DIST_LIMIT = 1.3
DIST_ABS_SLACK_SECONDS = 0.05
HEARTBEAT_LIMIT = 1.25
HEARTBEAT_ABS_SLACK_SECONDS = 0.05
HEARTBEAT_INSTANCE = "register-script-554"
DIST_WORKER_CONFIGS = ("dist-workers-1", "dist-workers-2", "dist-workers-4")
INSTANCES = ("register-script-554", "collect-writers-443")
POR_INSTANCE = "register-script-554"

# Field name -> accepted python types, per record kind.  bool is checked
# before int (bool is an int subclass in python).
NUMBER = (int, float)
SCALING_SCHEMA = {
    "instance": str,
    "config": str,
    "threads": int,
    "dedupe": bool,
    "por": bool,
    "executions": int,
    "exhausted": bool,
    "states_seen": int,
    "subtrees_pruned": int,
    "jobs": int,
    "steals": int,
    "replay_steps_saved": int,
    "por_skipped": int,
    "dependent_wakeups": int,
    "footprint_bytes": int,
    "dedupe_disabled_adaptively": bool,
    "reduction_vs_undeduped": NUMBER,
    "seconds": NUMBER,
    "execs_per_sec": NUMBER,
    "speedup_vs_traced": NUMBER,
    "verdict_parity": bool,
    "witness_parity": bool,
    "identical_to_baseline": bool,
}
CRASH_SCHEMA = {
    "world": str,
    "config": str,
    "threads": int,
    "max_crashes": int,
    "por": bool,
    "executions": int,
    "exhausted": bool,
    "violation": bool,
    "jobs": int,
    "steals": int,
    "replay_steps_saved": int,
    "seconds": NUMBER,
    "execs_per_sec": NUMBER,
}
SCHEMAS = {"modelcheck-scaling": SCALING_SCHEMA, "modelcheck-crash": CRASH_SCHEMA}


def check_schema(row, lineno, failures):
    kind = row.get("name")
    schema = SCHEMAS.get(kind)
    if schema is None:
        failures.append(f"line {lineno}: unknown record kind {kind!r}")
        return
    for field, want in schema.items():
        if field not in row:
            failures.append(f"line {lineno} ({kind}): missing field {field!r}")
            continue
        value = row[field]
        if want is int or want is NUMBER:
            # Reject bools masquerading as counts.
            if isinstance(value, bool) or not isinstance(value, want):
                failures.append(
                    f"line {lineno} ({kind}): field {field!r} has type "
                    f"{type(value).__name__}, want {want}"
                )
        elif not isinstance(value, want):
            failures.append(
                f"line {lineno} ({kind}): field {field!r} has type "
                f"{type(value).__name__}, want {want.__name__}"
            )


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_modelcheck.json"
    rows = {}
    failures = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                check_schema(row, lineno, failures)
                if row.get("name") != "modelcheck-scaling":
                    continue
                rows[(row.get("instance"), row.get("config"))] = row
    except OSError as err:
        print(f"scaling-smoke: cannot read {path}: {err}")
        return 1

    # Gate 1: parallel-4 tracks serial-fast.
    for instance in INSTANCES:
        serial = rows.get((instance, "serial-fast"))
        parallel = rows.get((instance, "parallel-4"))
        if serial is None or parallel is None:
            failures.append(f"{instance}: missing serial-fast/parallel-4 rows")
            continue
        if not parallel.get("identical_to_baseline", False):
            failures.append(f"{instance}: parallel-4 result not bit-identical")
        ratio = parallel["seconds"] / max(serial["seconds"], 1e-9)
        verdict = "ok" if ratio <= SLOWDOWN_LIMIT else "FAIL"
        print(
            f"scaling-smoke: {instance}: serial-fast {serial['seconds']:.3f}s,"
            f" parallel-4 {parallel['seconds']:.3f}s -> {ratio:.2f}x"
            f" (limit {SLOWDOWN_LIMIT}x) {verdict}"
            f" [jobs={parallel.get('jobs')} steals={parallel.get('steals')}]"
        )
        if ratio > SLOWDOWN_LIMIT:
            failures.append(
                f"{instance}: parallel-4 is {ratio:.2f}x slower than "
                f"serial-fast (limit {SLOWDOWN_LIMIT}x)"
            )

    # Gate 2: more dedupe threads must not cost wall clock.
    for instance in INSTANCES:
        two = rows.get((instance, "parallel-dedupe-2"))
        four = rows.get((instance, "parallel-dedupe-4"))
        if two is None or four is None:
            failures.append(f"{instance}: missing parallel-dedupe-2/4 rows")
            continue
        ratio = four["seconds"] / max(two["seconds"], 1e-9)
        gap = four["seconds"] - two["seconds"]
        slow = ratio > DEDUPE_THREAD_LIMIT and gap > DEDUPE_ABS_SLACK_SECONDS
        verdict = "FAIL" if slow else "ok"
        print(
            f"scaling-smoke: {instance}: parallel-dedupe-2"
            f" {two['seconds']:.4f}s, parallel-dedupe-4"
            f" {four['seconds']:.4f}s -> {ratio:.2f}x"
            f" (limit {DEDUPE_THREAD_LIMIT}x + {DEDUPE_ABS_SLACK_SECONDS}s"
            f" slack) {verdict}"
        )
        if slow:
            failures.append(
                f"{instance}: parallel-dedupe-4 is {ratio:.2f}x slower than "
                f"parallel-dedupe-2 (limit {DEDUPE_THREAD_LIMIT}x, gap "
                f"{gap:.4f}s > {DEDUPE_ABS_SLACK_SECONDS}s)"
            )

    # Gate 3: POR earns its keep on the disjoint-register instance.
    plain = rows.get((POR_INSTANCE, "serial-fast"))
    por = rows.get((POR_INSTANCE, "serial-por"))
    if plain is None or por is None:
        failures.append(f"{POR_INSTANCE}: missing serial-fast/serial-por rows")
    else:
        reduction = plain["executions"] / max(por["executions"], 1)
        parity = por.get("witness_parity", False)
        verdict = "ok" if reduction >= POR_REDUCTION_MIN and parity else "FAIL"
        print(
            f"scaling-smoke: {POR_INSTANCE}: serial-por explores"
            f" {por['executions']} of {plain['executions']} executions ->"
            f" {reduction:.1f}x reduction (min {POR_REDUCTION_MIN}x),"
            f" witness parity {parity} {verdict}"
        )
        if reduction < POR_REDUCTION_MIN:
            failures.append(
                f"{POR_INSTANCE}: POR reduction {reduction:.2f}x below "
                f"{POR_REDUCTION_MIN}x"
            )
        if not parity:
            failures.append(
                f"{POR_INSTANCE}: serial-por lost verdict/witness parity"
            )

    # Gate 4: distributed runs are bit-identical at every worker count.
    for instance in INSTANCES:
        for config in DIST_WORKER_CONFIGS:
            row = rows.get((instance, config))
            if row is None:
                failures.append(f"{instance}: missing {config} row")
                continue
            if not row.get("identical_to_baseline", False):
                failures.append(
                    f"{instance}: {config} result not bit-identical to serial"
                )
        ok = all(
            rows.get((instance, c), {}).get("identical_to_baseline", False)
            for c in DIST_WORKER_CONFIGS
        )
        print(
            f"scaling-smoke: {instance}: dist-workers-{{1,2,4}} bit parity"
            f" {'ok' if ok else 'FAIL'}"
        )

    # Gate 5: the socket engine's toll over the in-process explorer.
    for instance in INSTANCES:
        par = rows.get((instance, "parallel-2"))
        dist = rows.get((instance, "dist-workers-2"))
        if par is None or dist is None:
            failures.append(f"{instance}: missing parallel-2/dist-workers-2 rows")
            continue
        ratio = dist["seconds"] / max(par["seconds"], 1e-9)
        gap = dist["seconds"] - par["seconds"]
        slow = ratio > DIST_LIMIT and gap > DIST_ABS_SLACK_SECONDS
        verdict = "FAIL" if slow else "ok"
        print(
            f"scaling-smoke: {instance}: parallel-2 {par['seconds']:.3f}s,"
            f" dist-workers-2 {dist['seconds']:.3f}s -> {ratio:.2f}x"
            f" (limit {DIST_LIMIT}x + {DIST_ABS_SLACK_SECONDS}s slack)"
            f" {verdict}"
            f" [jobs={dist.get('jobs')} steals={dist.get('steals')}]"
        )
        if slow:
            failures.append(
                f"{instance}: dist-workers-2 is {ratio:.2f}x slower than "
                f"parallel-2 (limit {DIST_LIMIT}x, gap {gap:.4f}s > "
                f"{DIST_ABS_SLACK_SECONDS}s)"
            )

    # Gate 6: the liveness layer must ride along for (nearly) free.
    plain_dist = rows.get((HEARTBEAT_INSTANCE, "dist-workers-2"))
    hb = rows.get((HEARTBEAT_INSTANCE, "dist-workers-2-heartbeat"))
    if plain_dist is None or hb is None:
        failures.append(
            f"{HEARTBEAT_INSTANCE}: missing dist-workers-2/"
            f"dist-workers-2-heartbeat rows"
        )
    else:
        if not hb.get("identical_to_baseline", False):
            failures.append(
                f"{HEARTBEAT_INSTANCE}: dist-workers-2-heartbeat result not "
                f"bit-identical to serial"
            )
        ratio = hb["seconds"] / max(plain_dist["seconds"], 1e-9)
        gap = hb["seconds"] - plain_dist["seconds"]
        slow = ratio > HEARTBEAT_LIMIT and gap > HEARTBEAT_ABS_SLACK_SECONDS
        verdict = "FAIL" if slow else "ok"
        print(
            f"scaling-smoke: {HEARTBEAT_INSTANCE}: dist-workers-2"
            f" {plain_dist['seconds']:.3f}s, dist-workers-2-heartbeat"
            f" {hb['seconds']:.3f}s -> {ratio:.2f}x"
            f" (limit {HEARTBEAT_LIMIT}x + {HEARTBEAT_ABS_SLACK_SECONDS}s"
            f" slack) {verdict}"
        )
        if slow:
            failures.append(
                f"{HEARTBEAT_INSTANCE}: dist-workers-2-heartbeat is "
                f"{ratio:.2f}x slower than dist-workers-2 (limit "
                f"{HEARTBEAT_LIMIT}x, gap {gap:.4f}s > "
                f"{HEARTBEAT_ABS_SLACK_SECONDS}s)"
            )

    # Gate 7: the batched fingerprint pipeline keeps distributed dedupe at
    # in-process scale, and the dedupe contract holds at every worker count.
    for instance in INSTANCES:
        par = rows.get((instance, "parallel-dedupe-2"))
        dist = rows.get((instance, "dist-dedupe-workers-2"))
        serial = rows.get((instance, "serial-dedupe"))
        if par is None or dist is None or serial is None:
            failures.append(
                f"{instance}: missing parallel-dedupe-2/dist-dedupe-workers-2/"
                f"serial-dedupe rows"
            )
            continue
        ratio = dist["seconds"] / max(par["seconds"], 1e-9)
        gap = dist["seconds"] - par["seconds"]
        slow = ratio > DIST_LIMIT and gap > DIST_ABS_SLACK_SECONDS
        verdict = "FAIL" if slow else "ok"
        print(
            f"scaling-smoke: {instance}: parallel-dedupe-2"
            f" {par['seconds']:.3f}s, dist-dedupe-workers-2"
            f" {dist['seconds']:.3f}s -> {ratio:.2f}x"
            f" (limit {DIST_LIMIT}x + {DIST_ABS_SLACK_SECONDS}s slack)"
            f" {verdict}"
        )
        if slow:
            failures.append(
                f"{instance}: dist-dedupe-workers-2 is {ratio:.2f}x slower "
                f"than parallel-dedupe-2 (limit {DIST_LIMIT}x, gap "
                f"{gap:.4f}s > {DIST_ABS_SLACK_SECONDS}s)"
            )
        for config in (
            "dist-dedupe-workers-1",
            "dist-dedupe-workers-2",
            "dist-dedupe-workers-4",
        ):
            row = rows.get((instance, config))
            if row is None:
                failures.append(f"{instance}: missing {config} row")
                continue
            if not row.get("verdict_parity", False):
                failures.append(f"{instance}: {config} lost verdict parity")
            if row["states_seen"] > serial["states_seen"]:
                failures.append(
                    f"{instance}: {config} states_seen {row['states_seen']} "
                    f"exceeds serial-dedupe's {serial['states_seen']} - a "
                    f"pipeline claim escaped the dedupe contract"
                )

    if failures:
        for failure in failures:
            print(f"scaling-smoke: FAIL: {failure}")
        return 1
    print(
        "scaling-smoke: PASS (scaling, dedupe threads, POR, dist parity, "
        "dist overhead, heartbeat overhead, dist dedupe overhead, schema)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
