// Access-footprint semantics (src/runtime/footprint.h) and the
// declared-vs-actual soundness contract for every memory primitive.
//
// The partial-order reduction in the explorer prunes schedules purely on
// the footprints the primitives *declare*, so these tests drive each
// primitive under the scheduler's footprint-audit mode - where operations
// report what they actually touch via note_access - and assert that every
// actual access of every executed step is covered by that step's declared
// footprint.  A primitive whose actuals escaped its declaration would make
// the reduction unsound; a primitive that is needlessly opaque merely
// forfeits reduction, so precision assertions are kept where the design
// promises it (registers, the atomic snapshots) and opacity assertions
// where it promises that instead (the Afek cells, the augmented H).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/augmented/augmented_snapshot.h"
#include "src/memory/afek_snapshot.h"
#include "src/memory/collect_snapshot.h"
#include "src/memory/mw_snapshot.h"
#include "src/memory/register.h"
#include "src/memory/sw_snapshot.h"
#include "src/runtime/footprint.h"
#include "src/runtime/scheduler.h"

namespace revisim {
namespace {

using runtime::Footprint;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::Task;

using Access = Footprint::Access;
using Mode = Footprint::Mode;

// --- the independence relation itself ----------------------------------

TEST(Footprint, DefaultIsOpaqueAndConflictsWithEverything) {
  Footprint def;
  EXPECT_TRUE(def.opaque);
  EXPECT_TRUE(footprints_conflict(def, def));
  EXPECT_TRUE(footprints_conflict(def, Footprint::none()));
  EXPECT_TRUE(footprints_conflict(Footprint::read(3), def));
}

TEST(Footprint, ReadsNeverConflict) {
  EXPECT_FALSE(footprints_conflict(Footprint::read(1), Footprint::read(1)));
  EXPECT_FALSE(footprints_conflict(Footprint::read(1, Footprint::kAllComponents),
                                   Footprint::read(1, 2)));
}

TEST(Footprint, WriteConflictsNeedOverlap) {
  // Same location, one writer: conflict.
  EXPECT_TRUE(footprints_conflict(Footprint::write(1), Footprint::read(1)));
  EXPECT_TRUE(footprints_conflict(Footprint::write(1), Footprint::write(1)));
  // Different objects, or different components of one object: independent.
  EXPECT_FALSE(footprints_conflict(Footprint::write(1), Footprint::write(2)));
  EXPECT_FALSE(
      footprints_conflict(Footprint::write(1, 0), Footprint::write(1, 1)));
  // A whole-object access overlaps every component.
  EXPECT_TRUE(footprints_conflict(
      Footprint::read(1, Footprint::kAllComponents), Footprint::write(1, 7)));
}

TEST(Footprint, EmptyFootprintIsIndependentOfEverythingPrecise) {
  EXPECT_FALSE(footprints_conflict(Footprint::none(), Footprint::write(0)));
  EXPECT_FALSE(footprints_conflict(Footprint::none(), Footprint::none()));
  EXPECT_TRUE(footprints_conflict(Footprint::none(), Footprint{}));  // opaque
}

TEST(Footprint, AddOverflowDegradesToOpaque) {
  Footprint fp = Footprint::none();
  for (std::size_t i = 0; i <= Footprint::kMaxAccesses; ++i) {
    fp = fp.add(i, 0, Mode::kRead);
  }
  EXPECT_TRUE(fp.opaque);  // one past capacity: sound fallback, never UB
}

TEST(Footprint, CoversRespectsStrengthAndComponents) {
  const Footprint w = Footprint::write(4, 2);
  EXPECT_TRUE(footprint_covers(w, Access{4, 2, Mode::kWrite}));
  EXPECT_TRUE(footprint_covers(w, Access{4, 2, Mode::kRead}));  // write >= read
  EXPECT_FALSE(footprint_covers(w, Access{4, 3, Mode::kRead}));
  EXPECT_FALSE(footprint_covers(w, Access{5, 2, Mode::kRead}));
  const Footprint r = Footprint::read(4, Footprint::kAllComponents);
  EXPECT_TRUE(footprint_covers(r, Access{4, 9, Mode::kRead}));
  EXPECT_FALSE(footprint_covers(r, Access{4, 9, Mode::kWrite}));  // read < write
  EXPECT_TRUE(footprint_covers(Footprint{}, Access{0, 0, Mode::kWrite}));
}

// --- declared-vs-actual audit over whole executions --------------------

// Runs the world to completion under footprint audit, rotating through the
// runnable set with a stride so repeated calls exercise different
// interleavings, and asserts per executed step that the actuals the
// operation reported are covered by the footprint it declared.
void drive_checked(Scheduler& sched, std::size_t stride) {
  sched.set_footprint_audit(true);
  std::size_t turn = 0;
  while (!sched.all_done()) {
    auto cand = sched.runnable();
    ASSERT_FALSE(cand.empty());
    const ProcessId pid = cand[(turn += stride) % cand.size()];
    sched.run_step(pid);
    const Footprint& declared = sched.last_step_footprint();
    for (const Access& a : sched.last_step_accesses()) {
      EXPECT_TRUE(footprint_covers(declared, a))
          << "step of p" << pid << " touched (object " << a.object
          << ", component " << a.component << ", "
          << (a.mode == Mode::kWrite ? "write" : "read")
          << ") outside its declared footprint";
    }
  }
}

template <typename MakeWorld>
void audit_interleavings(MakeWorld make) {
  for (std::size_t stride = 1; stride <= 3; ++stride) {
    auto holder = make();
    drive_checked(holder->sched, stride);
  }
}

struct RegisterWorld {
  Scheduler sched;
  mem::TypedRegister<int> a{sched, "a", 0};
  mem::TypedRegister<int> b{sched, "b", 0};

  static Task<void> script(mem::TypedRegister<int>& mine,
                           mem::TypedRegister<int>& other, int v) {
    co_await mine.write(v);
    (void)co_await other.read();
    co_await mine.write(v + 1);
  }

  RegisterWorld() {
    sched.spawn(script(a, b, 10), "p");
    sched.spawn(script(b, a, 20), "q");
  }
};

TEST(FootprintAudit, TypedRegisterDeclaresExactlyItsCell) {
  audit_interleavings([] { return std::make_unique<RegisterWorld>(); });
  // Precision: a poised write really declares (object, cell 0, write).
  RegisterWorld w;
  w.sched.run_step(0);  // p's prologue + first write
  const Footprint fp = w.sched.poised_footprint(0);  // p poised on b.read()
  ASSERT_FALSE(fp.opaque);
  ASSERT_EQ(fp.count, 1);
  EXPECT_EQ(fp.accesses[0].mode, Mode::kRead);
  const Footprint& last = w.sched.last_step_footprint();
  ASSERT_FALSE(last.opaque);
  ASSERT_EQ(last.count, 1);
  EXPECT_EQ(last.accesses[0].mode, Mode::kWrite);
  // Unstarted processes have no poised operation to introspect: opaque.
  EXPECT_TRUE(w.sched.poised_footprint(1).opaque);
}

struct SWWorld {
  Scheduler sched;
  mem::SWSnapshot<int> snap{sched, "S", 2};

  static Task<void> script(mem::SWSnapshot<int>& s, int v) {
    co_await s.update(v);
    (void)co_await s.scan();
    co_await s.update(v + 1);
  }

  SWWorld() {
    sched.spawn(script(snap, 1), "p");
    sched.spawn(script(snap, 2), "q");
  }
};

TEST(FootprintAudit, SWSnapshotScanReadsAllUpdateWritesOwn) {
  audit_interleavings([] { return std::make_unique<SWWorld>(); });
  SWWorld w;
  w.sched.run_step(0);  // p's update(1) executes; p poises scan()
  const Footprint up = w.sched.last_step_footprint();
  ASSERT_FALSE(up.opaque);
  ASSERT_EQ(up.count, 1);
  EXPECT_EQ(up.accesses[0].mode, Mode::kWrite);
  EXPECT_EQ(up.accesses[0].component, 0u);  // p's own component
  const Footprint scan = w.sched.poised_footprint(0);
  ASSERT_FALSE(scan.opaque);
  ASSERT_EQ(scan.count, 1);
  EXPECT_EQ(scan.accesses[0].mode, Mode::kRead);
  EXPECT_EQ(scan.accesses[0].component, Footprint::kAllComponents);
}

struct MWWorld {
  Scheduler sched;
  mem::MWSnapshot snap{sched, "M", 3};

  static Task<void> script(mem::MWSnapshot& s, std::size_t j, Val v) {
    co_await s.update(j, v);
    (void)co_await s.scan();
  }

  MWWorld() {
    sched.spawn(script(snap, 0, 10), "p");
    sched.spawn(script(snap, 2, 30), "q");
  }
};

TEST(FootprintAudit, MWSnapshotUpdateDeclaresItsComponent) {
  audit_interleavings([] { return std::make_unique<MWWorld>(); });
  MWWorld w;
  w.sched.run_step(1);  // q executes update(2, 30)
  const Footprint up = w.sched.last_step_footprint();
  ASSERT_FALSE(up.opaque);
  ASSERT_EQ(up.count, 1);
  EXPECT_EQ(up.accesses[0].component, 2u);
  EXPECT_EQ(up.accesses[0].mode, Mode::kWrite);
}

struct CollectWorld {
  Scheduler sched;
  mem::CollectSnapshot snap{sched, "C", 2, 2};

  CollectWorld() {
    sched.spawn(snap.update(0, 0, 5), "p");
    sched.spawn(scan_then_update(snap), "q");
  }

  static Task<void> scan_then_update(mem::CollectSnapshot& s) {
    (void)co_await s.scan();
    co_await s.update(1, 1, 7);
  }
};

TEST(FootprintAudit, CollectSnapshotCellsStayPrecise) {
  audit_interleavings([] { return std::make_unique<CollectWorld>(); });
  CollectWorld w;
  w.sched.run_step(0);  // p's single register write to cell 0
  EXPECT_FALSE(w.sched.last_step_footprint().opaque);
}

struct AfekWorld {
  Scheduler sched;
  mem::AfekSnapshot snap{sched, "A", 2};

  static Task<void> script(mem::AfekSnapshot& s, ProcessId me) {
    co_await s.update(me, Val(int(me) + 1));
    (void)co_await s.scan(me);
  }

  AfekWorld() {
    sched.spawn(script(snap, 0), "p");
    sched.spawn(script(snap, 1), "q");
  }
};

TEST(FootprintAudit, AfekCellsAreOpaqueByDesign) {
  // Every Afek step's continuation may read the global step counter as a
  // clock, so the cells must declare opacity - and opacity trivially covers
  // whatever the operations actually touch.
  audit_interleavings([] { return std::make_unique<AfekWorld>(); });
  AfekWorld w;
  w.sched.run_step(0);
  EXPECT_TRUE(w.sched.last_step_footprint().opaque);
  w.sched.run_step(1);
  EXPECT_TRUE(w.sched.last_step_footprint().opaque);
}

struct AugWorld {
  Scheduler sched;
  aug::AugmentedSnapshot snap{sched, "M", 2, 2};

  static Task<void> script(aug::AugmentedSnapshot& m, ProcessId me) {
    std::vector<std::size_t> comps{std::size_t(me)};
    std::vector<Val> vals{Val(int(me) + 1)};
    co_await m.BlockUpdate(me, comps, vals);
    co_await m.Scan(me);
  }

  AugWorld() {
    sched.spawn(script(snap, 0), "p");
    sched.spawn(script(snap, 1), "q");
  }
};

TEST(FootprintAudit, AugmentedHIsOpaqueByDesign) {
  // The augmented snapshot's continuations append to the shared operation
  // log and read the clock after every H step; H therefore declares opaque
  // footprints throughout, and the audit must hold over a full execution.
  audit_interleavings([] { return std::make_unique<AugWorld>(); });
  AugWorld w;
  w.sched.run_step(0);
  EXPECT_TRUE(w.sched.last_step_footprint().opaque);
}

}  // namespace
}  // namespace revisim
