// Tests for Section 5: nondeterministic solo termination, the Theorem 35
// determinization (obstruction-freedom of the result, unchanged space), and
// the Corollary 36 ABA-free transformation.
#include <gtest/gtest.h>

#include "src/check/protocol_check.h"
#include "src/protocols/racing_agreement.h"
#include "src/solo/aba_free.h"
#include "src/solo/determinize.h"
#include "src/solo/nd_protocol.h"
#include "src/solo/solo_search.h"
#include "src/tasks/task_spec.h"

namespace revisim {
namespace {

using solo::ABAFreeProtocol;
using solo::DeterminizedProtocol;
using solo::NDCoinConsensus;
using solo::NDResponse;
using solo::SoloSearch;
using tasks::KSetAgreement;

TEST(NDCoin, InitialStatePoisedAtScan) {
  NDCoinConsensus nd(2, 2);
  auto s0 = nd.initial(0, 5);
  EXPECT_FALSE(nd.is_final(s0));
  EXPECT_TRUE(nd.next_op(s0).is_scan());
}

TEST(NDCoin, ConflictBranchesOverValues) {
  NDCoinConsensus nd(2, 2);
  auto s0 = nd.initial(0, 5);
  NDResponse resp;
  resp.view = View{pack_round_val({1, 7}), std::nullopt};
  auto succs = nd.successors(s0, resp);
  // My value 5 and the visible 7 conflict at round 1: two coin outcomes.
  EXPECT_EQ(succs.size(), 2u);
}

TEST(NDCoin, NoConflictIsDeterministic) {
  NDCoinConsensus nd(2, 2);
  auto s0 = nd.initial(0, 5);
  NDResponse resp;
  resp.view = View{pack_round_val({1, 5}), std::nullopt};
  auto succs = nd.successors(s0, resp);
  ASSERT_EQ(succs.size(), 1u);
}

TEST(SoloSearch, FindsTerminatingPathFromScratch) {
  NDCoinConsensus nd(2, 2);
  SoloSearch search;
  search.machine = &nd;
  auto d = search.shortest(nd.initial(0, 5), View(2));
  ASSERT_TRUE(d.has_value());
  // Solo from scratch: write pair to both components (2 updates + scans),
  // then the deciding scan: 2*(update+scan)... shortest path counts states.
  EXPECT_GT(*d, 0u);
  EXPECT_LT(*d, 12u);
  // Memoized second query.
  auto d2 = search.shortest(nd.initial(0, 5), View(2));
  EXPECT_EQ(d, d2);
}

TEST(SoloSearch, ShortestDecreasesAlongChosenPath) {
  // The Theorem 35 argument: following delta' solo strictly shrinks the
  // remaining shortest path, so solo runs terminate.
  NDCoinConsensus nd(2, 2);
  auto protocol = std::make_shared<NDCoinConsensus>(2, 2);
  DeterminizedProtocol det(protocol);
  proto::ProtocolRun run(det, {3, 9});
  EXPECT_TRUE(run.run_solo(0, 100));
  EXPECT_EQ(run.output(0), std::optional<Val>(3));
}

TEST(Determinized, ObstructionFreeFromEveryReachableState) {
  auto nd = std::make_shared<NDCoinConsensus>(2, 2);
  DeterminizedProtocol det(nd);
  KSetAgreement consensus(1);
  check::ExploreOptions opt;
  opt.max_depth = 14;
  opt.solo_budget = 1000;
  auto res = check::explore(det, {0, 1}, consensus, opt);
  EXPECT_TRUE(res.exhausted);
  // Theorem 35 gives obstruction-freedom; it does not make the underlying
  // racing protocol's safety any better or worse, and with m = n = 2 the
  // racing family is not proven safe, so only termination is asserted.
  EXPECT_FALSE(res.termination_violation) << *res.termination_violation;
}

TEST(Determinized, SpaceUnchanged) {
  auto nd = std::make_shared<NDCoinConsensus>(4, 3);
  DeterminizedProtocol det(nd);
  EXPECT_EQ(det.components(), 3u);  // same m-component object (Theorem 35)
}

TEST(Determinized, RandomRunsProduceValidOutputsOrViolationsOfRacing) {
  // Determinized coin racing behaves like a racing instance: validity holds
  // (outputs are inputs); agreement depends on m as before.
  auto nd = std::make_shared<NDCoinConsensus>(3, 3);
  DeterminizedProtocol det(nd);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    proto::ProtocolRun run(det, {4, 5, 6});
    ASSERT_TRUE(run.run_random(seed, 100'000)) << seed;
    for (std::size_t i = 0; i < 3; ++i) {
      Val y = *run.output(i);
      EXPECT_TRUE(y == 4 || y == 5 || y == 6);
    }
  }
}

TEST(ABAFree, NoComponentValueEverRepeats) {
  auto inner = std::make_shared<proto::RacingAgreement>(3, 2);
  ABAFreeProtocol wrapped(inner);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    proto::ProtocolRun run(wrapped, {1, 2, 3});
    ASSERT_TRUE(run.run_random(seed, 200'000));
    // ABA-freedom: no (component, value) pair written twice.
    std::set<std::pair<std::size_t, Val>> seen;
    for (const auto& rec : run.log()) {
      if (rec.is_update) {
        EXPECT_TRUE(seen.emplace(rec.component, rec.value).second)
            << "value repeated in component " << rec.component << " seed "
            << seed;
      }
    }
  }
}

TEST(ABAFree, BehaviourOfInnerProtocolPreserved) {
  // Same seed, wrapped vs unwrapped: identical outputs (tags are invisible
  // to the inner protocol).
  auto inner = std::make_shared<proto::RacingAgreement>(3, 3);
  ABAFreeProtocol wrapped(inner);
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    proto::ProtocolRun a(*inner, {7, 8, 9});
    proto::ProtocolRun b(wrapped, {7, 8, 9});
    ASSERT_TRUE(a.run_random(seed, 200'000));
    ASSERT_TRUE(b.run_random(seed, 200'000));
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(a.output(i), b.output(i)) << "seed " << seed;
    }
  }
}

TEST(ABAFree, SameSpace) {
  auto inner = std::make_shared<proto::RacingAgreement>(5, 4);
  ABAFreeProtocol wrapped(inner);
  EXPECT_EQ(wrapped.components(), inner->components());
}

}  // namespace
}  // namespace revisim
