// Unit tests for the value model: pack/unpack round-trips, ordering
// homomorphisms (the racing protocols depend on packed order == pair
// order), fixed-point precision, and printing.
#include <gtest/gtest.h>

#include "src/protocols/approx_agreement.h"
#include "src/protocols/ca_consensus.h"
#include "src/protocols/commit_adopt.h"
#include "src/util/value.h"

namespace revisim {
namespace {

TEST(Value, RoundValRoundTrip) {
  // The documented payload domain is 31-bit non-negative values (all
  // agreement protocols use plain non-negative inputs).
  for (std::uint32_t r : {0u, 1u, 7u, 1u << 20, (1u << 31) - 1}) {
    for (std::int32_t v : {0, 1, 42, 0x3fffffff, 0x7fffffff}) {
      RoundVal rv{r, v};
      EXPECT_EQ(unpack_round_val(pack_round_val(rv)), rv)
          << "r=" << r << " v=" << v;
    }
  }
}

TEST(Value, PackedOrderMatchesPairOrderForNonNegativeValues) {
  // The racing protocols compare packed Vals as integers and expect
  // lexicographic (round, value) order; verify on a grid (values >= 0,
  // which is what the protocols use).
  const std::vector<RoundVal> pts = {
      {1, 0}, {1, 1}, {1, 100}, {2, 0}, {2, 99}, {3, 5}};
  for (const auto& a : pts) {
    for (const auto& b : pts) {
      EXPECT_EQ(pack_round_val(a) < pack_round_val(b), a < b)
          << a.round << "," << a.value << " vs " << b.round << "," << b.value;
    }
  }
}

TEST(Value, FixedPointPrecision) {
  for (double x : {0.0, 0.5, 0.25, 1.0, 1e-6, 0.123456789}) {
    EXPECT_NEAR(from_fixed(to_fixed(x)), x, 1e-9) << x;
  }
}

TEST(Value, CAEntryRoundTrip) {
  for (std::uint32_t r : {1u, 2u, 1000u}) {
    for (std::uint8_t phase : {std::uint8_t{1}, std::uint8_t{2}}) {
      for (std::uint8_t grade : {std::uint8_t{0}, std::uint8_t{1}}) {
        for (std::int32_t v : {0, 7, -3}) {
          proto::CAEntry e{r, phase, grade, v};
          EXPECT_EQ(proto::unpack_ca(proto::pack_ca(e)), e);
        }
      }
    }
  }
}

TEST(Value, CommitAdoptResultRoundTrip) {
  for (bool commit : {false, true}) {
    for (std::int32_t v : {0, 5, -9}) {
      const Val out = proto::pack_ca_result(commit, v);
      EXPECT_EQ(proto::ca_committed(out), commit);
      EXPECT_EQ(proto::ca_value(out), v);
    }
  }
}

TEST(Value, ApproxPackingRoundTrip) {
  for (std::uint32_t r : {1u, 2u, 40u}) {
    for (Val fx : {Val{0}, Val{1} << 33, (Val{1} << 34) - 1}) {
      const Val packed = proto::pack_approx(r, fx);
      EXPECT_EQ(proto::approx_round(packed), r);
      EXPECT_EQ(proto::approx_value(packed), fx);
    }
  }
}

TEST(Value, Printing) {
  EXPECT_EQ(to_string(std::optional<Val>{}), "_");
  EXPECT_EQ(to_string(std::optional<Val>{7}), "7");
  EXPECT_EQ(to_string(View{1, std::nullopt, 3}), "[1 _ 3]");
  EXPECT_EQ(to_string(View{}), "[]");
}

}  // namespace
}  // namespace revisim
