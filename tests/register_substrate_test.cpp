// The full stack on plain registers: the augmented snapshot built over the
// Afek-et-al. single-writer snapshot (which is built over registers), and
// the complete revisionist simulation running on that substrate.  All §3.3
// properties and the Lemma-26 replay must hold unchanged - the object's
// semantics do not depend on whether H is an atomic base object or a
// register construction.
#include <gtest/gtest.h>

#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/protocols/racing_agreement.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"
#include "src/sim/driver.h"
#include "src/sim/replay.h"

namespace revisim {
namespace {

using aug::IAugmentedSnapshot;
using aug::RegisterAugmentedSnapshot;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::Task;

Task<void> solo_script(IAugmentedSnapshot& m, ProcessId me,
                       std::vector<IAugmentedSnapshot::BlockUpdateResult>& bus,
                       std::vector<View>& scans) {
  std::vector<std::size_t> c02{0, 2};
  std::vector<Val> v02{10, 12};
  std::vector<std::size_t> c1{1};
  std::vector<Val> v1{11};
  scans.push_back((co_await m.Scan(me)).view);
  bus.push_back(co_await m.BlockUpdate(me, c02, v02));
  scans.push_back((co_await m.Scan(me)).view);
  bus.push_back(co_await m.BlockUpdate(me, c1, v1));
  scans.push_back((co_await m.Scan(me)).view);
}

TEST(RegisterSubstrate, SoloSemanticsIdenticalToAtomic) {
  Scheduler sched;
  RegisterAugmentedSnapshot m(sched, "M", 3, 2);
  std::vector<IAugmentedSnapshot::BlockUpdateResult> bus;
  std::vector<View> scans;
  sched.spawn(solo_script(m, 0, bus, scans), "q1");
  runtime::RoundRobinAdversary adv;
  ASSERT_TRUE(sched.run(adv));
  EXPECT_EQ(scans[0], View(3));
  EXPECT_EQ(scans[1], (View{10, std::nullopt, 12}));
  EXPECT_EQ(scans[2], (View{10, 11, 12}));
  EXPECT_FALSE(bus[0].yielded);
  EXPECT_EQ(bus[0].view, View(3));
  EXPECT_FALSE(bus[1].yielded);
  EXPECT_EQ(bus[1].view, (View{10, std::nullopt, 12}));
  auto lin = aug::linearize(m.log(), 3);
  EXPECT_TRUE(lin.ok()) << lin.violations.front();
  // H is built from f = 2 registers (the Afek cells); the paper's space
  // accounting sees exactly those.
  EXPECT_EQ(sched.object_count(), 2u);
}

Task<void> churn(IAugmentedSnapshot& m, ProcessId me, std::size_t rounds,
                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < rounds; ++i) {
    if (rng() % 2 == 0) {
      co_await m.Scan(me);
    } else {
      std::vector<std::size_t> comps{rng() % m.components()};
      std::vector<Val> vals{static_cast<Val>(rng() % 50)};
      co_await m.BlockUpdate(me, comps, vals);
    }
  }
}

class RegisterSubstrateStress : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RegisterSubstrateStress, RandomSchedulesLinearize) {
  const std::uint64_t seed = GetParam();
  Scheduler sched;
  const std::size_t f = 2 + seed % 2;
  RegisterAugmentedSnapshot m(sched, "M", 2, f);
  for (ProcessId p = 0; p < f; ++p) {
    sched.spawn(churn(m, p, 4, seed * 19 + p), "q");
  }
  runtime::RandomAdversary adv(seed);
  ASSERT_TRUE(sched.run(adv));
  auto lin = aug::linearize(m.log(), 2);
  EXPECT_TRUE(lin.ok()) << "seed " << seed << ": " << lin.violations.front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegisterSubstrateStress,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(RegisterSubstrate, Q1StillNeverYields) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Scheduler sched;
    RegisterAugmentedSnapshot m(sched, "M", 2, 3);
    std::vector<std::size_t> yields(3, 0);
    auto worker = [&](ProcessId me) -> Task<void> {
      for (std::size_t i = 0; i < 5; ++i) {
        std::vector<std::size_t> comps{i % 2};
        std::vector<Val> vals{static_cast<Val>(10 * me + i)};
        auto r = co_await m.BlockUpdate(me, comps, vals);
        if (r.yielded) {
          ++yields[me];
        }
      }
    };
    for (ProcessId p = 0; p < 3; ++p) {
      sched.spawn(worker(p), "q");
    }
    runtime::RandomAdversary adv(seed);
    ASSERT_TRUE(sched.run(adv));
    EXPECT_EQ(yields[0], 0u) << "seed " << seed;
  }
}

class RegisterSimulation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegisterSimulation, FullReductionOnPlainRegisters) {
  // The headline result executed with registers as the only shared objects:
  // wait-free termination, Lemma-26 replay, output validity.
  const std::uint64_t seed = GetParam();
  Scheduler sched;
  proto::RacingAgreement protocol(4, 2);
  sim::SimulationDriver::Options opt;
  opt.substrate = sim::SimulationDriver::Substrate::kRegisters;
  sim::SimulationDriver driver(sched, protocol, {10, 20}, opt);
  runtime::RandomAdversary adv(seed);
  ASSERT_TRUE(driver.run(adv, 50'000'000)) << "seed " << seed;
  auto report = sim::validate_simulation(driver);
  ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                           << report.violations.front();
  for (Val y : driver.outputs()) {
    EXPECT_TRUE(y == 10 || y == 20);
  }
  // Space census: two Afek cells (f = 2 registers) carry everything.
  EXPECT_EQ(sched.object_count(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegisterSimulation,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(RegisterSubstrate, CostlierButSameOpSemantics) {
  // Differential: run the same solo script on both substrates; results are
  // identical while the register substrate pays more base-object steps.
  auto run_with = [](auto& m, Scheduler& sched) {
    std::vector<IAugmentedSnapshot::BlockUpdateResult> bus;
    std::vector<View> scans;
    sched.spawn(solo_script(m, 0, bus, scans), "q1");
    runtime::RoundRobinAdversary adv;
    EXPECT_TRUE(sched.run(adv));
    return std::make_pair(scans, sched.total_steps());
  };
  Scheduler s1;
  aug::AugmentedSnapshot atomic_m(s1, "M", 3, 2);
  auto [scans_a, steps_a] = run_with(atomic_m, s1);
  Scheduler s2;
  RegisterAugmentedSnapshot reg_m(s2, "M", 3, 2);
  auto [scans_r, steps_r] = run_with(reg_m, s2);
  EXPECT_EQ(scans_a, scans_r);
  EXPECT_GT(steps_r, steps_a);  // register H-steps cost O(f^2) reads
}

}  // namespace
}  // namespace revisim
