// Unit tests for the H-state layer of the augmented snapshot (§3.2):
// prefix order (Observation 1's invariant), Get-View (Algorithm 2),
// New-Timestamp (Algorithm 1), timestamp uniqueness ingredients (Lemmas 7-9)
// and the helping-record lookup.
#include <gtest/gtest.h>

#include "src/augmented/hstate.h"

namespace revisim::aug {
namespace {

Timestamp ts(std::vector<std::uint32_t> parts) {
  return Timestamp(std::move(parts));
}

HView make_hview(std::size_t f) { return HView(f); }

void append_batch(HView& h, std::size_t writer,
                  std::vector<UpdateTriple> triples) {
  for (auto& t : triples) {
    h[writer].triples.push_back(std::move(t));
  }
  h[writer].num_bu += 1;
}

TEST(Timestamps, LexicographicOrder) {
  EXPECT_LT(ts({0, 5}), ts({1, 0}));
  EXPECT_LT(ts({1, 2}), ts({1, 3}));
  EXPECT_EQ(ts({2, 2}), ts({2, 2}));
  EXPECT_GT(ts({2, 0}), ts({1, 9}));
}

TEST(Timestamps, NewTimestampIncrementsOwnComponent) {
  HView h = make_hview(3);
  append_batch(h, 0, {{0, 7, ts({1, 0, 0})}});
  append_batch(h, 2, {{1, 9, ts({1, 0, 1})}});
  // #h = (1, 0, 1); q2 (index 1) generates (1, 1, 1).
  EXPECT_EQ(new_timestamp(h, 1), ts({1, 1, 1}));
  // q1 generates (2, 0, 1).
  EXPECT_EQ(new_timestamp(h, 0), ts({2, 0, 1}));
}

TEST(Timestamps, Corollary8NewTimestampDominatesContained) {
  // Any timestamp contained in h is lexicographically smaller than a
  // timestamp generated from h.
  HView h = make_hview(2);
  append_batch(h, 0, {{0, 1, ts({1, 0})}});
  append_batch(h, 1, {{1, 2, ts({1, 1})}});
  append_batch(h, 0, {{0, 3, ts({2, 1})}});
  for (std::size_t me = 0; me < 2; ++me) {
    const Timestamp fresh = new_timestamp(h, me);
    for (const auto& comp : h) {
      for (const auto& tr : comp.triples) {
        EXPECT_LT(tr.ts, fresh);
      }
    }
  }
}

TEST(HState, PrefixOrder) {
  HView a = make_hview(2);
  HView b = make_hview(2);
  EXPECT_TRUE(is_prefix(a, b));
  EXPECT_FALSE(is_proper_prefix(a, b));

  append_batch(b, 0, {{0, 1, ts({1, 0})}});
  EXPECT_TRUE(is_prefix(a, b));
  EXPECT_TRUE(is_proper_prefix(a, b));
  EXPECT_FALSE(is_prefix(b, a));

  append_batch(a, 0, {{0, 1, ts({1, 0})}});
  EXPECT_TRUE(is_prefix(a, b));
  EXPECT_TRUE(triples_equal(a, b));

  // Diverging logs are incomparable.
  append_batch(a, 1, {{1, 5, ts({1, 1})}});
  append_batch(b, 1, {{1, 6, ts({1, 1})}});
  EXPECT_FALSE(is_prefix(a, b));
  EXPECT_FALSE(is_prefix(b, a));
}

TEST(HState, HelpingRecordsDoNotAffectPrefixOrder) {
  HView a = make_hview(2);
  HView b = make_hview(2);
  b[0].lrecords.push_back(LRecord{1, 0, std::make_shared<HView>(a)});
  EXPECT_TRUE(triples_equal(a, b));
  EXPECT_TRUE(is_prefix(a, b));
  EXPECT_FALSE(is_proper_prefix(a, b));
}

TEST(HState, GetViewPicksLargestTimestampPerComponent) {
  HView h = make_hview(3);
  append_batch(h, 0, {{0, 10, ts({1, 0, 0})}, {1, 11, ts({1, 0, 0})}});
  append_batch(h, 1, {{0, 20, ts({1, 1, 0})}});
  append_batch(h, 2, {{2, 30, ts({1, 1, 1})}});
  View v = get_view(h, 4);
  EXPECT_EQ(v[0], std::optional<Val>(20));  // ts (1,1,0) beats (1,0,0)
  EXPECT_EQ(v[1], std::optional<Val>(11));
  EXPECT_EQ(v[2], std::optional<Val>(30));
  EXPECT_EQ(v[3], std::optional<Val>());  // never written
}

TEST(HState, GetViewOfEmptyIsAllBottom) {
  EXPECT_EQ(get_view(make_hview(2), 3), View(3));
}

TEST(HState, ReadLRecordFindsLastMatch) {
  HView h = make_hview(2);
  auto v1 = std::make_shared<HView>(make_hview(2));
  auto v2 = std::make_shared<HView>(make_hview(2));
  h[0].lrecords.push_back(LRecord{1, 3, v1});
  h[0].lrecords.push_back(LRecord{1, 4, v1});
  h[0].lrecords.push_back(LRecord{1, 3, v2});  // later write to L_{1,2}[3]
  EXPECT_EQ(read_lrecord(h, 0, 1, 3), v2);
  EXPECT_EQ(read_lrecord(h, 0, 1, 4), v1);
  EXPECT_EQ(read_lrecord(h, 0, 1, 5), nullptr);
  EXPECT_EQ(read_lrecord(h, 0, 0, 3), nullptr);  // wrong target
  EXPECT_EQ(read_lrecord(h, 1, 1, 3), nullptr);  // wrong writer
}

TEST(HState, NumBuCountsBatches) {
  HView h = make_hview(1);
  EXPECT_EQ(num_bu(h, 0), 0u);
  append_batch(h, 0, {{0, 1, ts({1})}, {1, 2, ts({1})}});
  EXPECT_EQ(num_bu(h, 0), 1u);
  append_batch(h, 0, {{0, 3, ts({2})}});
  EXPECT_EQ(num_bu(h, 0), 2u);
}

TEST(Timestamps, ToStringRendering) {
  EXPECT_EQ(ts({1, 2, 3}).to_string(), "(1,2,3)");
  EXPECT_EQ(Timestamp().to_string(), "()");
}

}  // namespace
}  // namespace revisim::aug
