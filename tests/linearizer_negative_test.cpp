// Negative tests: the §3.3 linearizer and the Lemma-26 replay validator must
// actually *reject* corrupted histories.  A checker that never fails is no
// checker; each test takes a healthy recorded execution, tampers with one
// aspect the paper's lemmas govern, and expects a violation.
#include <gtest/gtest.h>

#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/protocols/racing_agreement.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"
#include "src/sim/driver.h"
#include "src/sim/replay.h"

namespace revisim {
namespace {

using aug::AugmentedSnapshot;
using aug::OpLog;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::Task;

Task<void> mixed_ops(AugmentedSnapshot& m, ProcessId me) {
  std::vector<std::size_t> c1{me % m.components()};
  std::vector<Val> v1{Val(100 + me)};
  co_await m.BlockUpdate(me, c1, v1);
  co_await m.Scan(me);
  std::vector<std::size_t> c2{(me + 1) % m.components()};
  std::vector<Val> v2{Val(200 + me)};
  co_await m.BlockUpdate(me, c2, v2);
}

OpLog healthy_log() {
  Scheduler sched;
  AugmentedSnapshot m(sched, "M", 2, 2);
  sched.spawn(mixed_ops(m, 0), "q1");
  sched.spawn(mixed_ops(m, 1), "q2");
  runtime::RandomAdversary adv(5);
  EXPECT_TRUE(sched.run(adv));
  auto lin = aug::linearize(m.log(), 2);
  EXPECT_TRUE(lin.ok());
  return m.log();  // copy
}

TEST(LinearizerNegative, CorruptedScanResultRejected) {
  OpLog log = healthy_log();
  ASSERT_FALSE(log.scans.empty());
  log.scans[0].returned[0] = Val{424242};
  auto lin = aug::linearize(log, 2);
  EXPECT_FALSE(lin.ok());
}

TEST(LinearizerNegative, CorruptedBlockUpdateViewRejected) {
  OpLog log = healthy_log();
  for (auto& b : log.block_updates) {
    if (b.completed && !b.yielded) {
      b.returned.assign(2, Val{424242});
      auto lin = aug::linearize(log, 2);
      EXPECT_FALSE(lin.ok());
      return;
    }
  }
  FAIL() << "no atomic Block-Update in the healthy log";
}

TEST(LinearizerNegative, FakeYieldWithoutInterferenceRejected) {
  OpLog log = healthy_log();
  // Mark q1's first Block-Update as yielded: q1 has no smaller-id
  // competitor, so Theorem 20's check must fire.
  for (auto& b : log.block_updates) {
    if (b.process == 0 && b.completed) {
      b.yielded = true;
      auto lin = aug::linearize(log, 2);
      EXPECT_FALSE(lin.ok());
      return;
    }
  }
  FAIL() << "q1 has no Block-Update in the healthy log";
}

TEST(LinearizerNegative, TamperedTimestampBreaksLemma12) {
  OpLog log = healthy_log();
  // A timestamp from the far future makes the Update linearize after X of
  // every later batch - outside its own (H, X] interval.
  for (auto& b : log.block_updates) {
    if (b.completed && !b.yielded) {
      b.ts = aug::Timestamp(std::vector<std::uint32_t>{99, 99});
      auto lin = aug::linearize(log, 2);
      EXPECT_FALSE(lin.ok());
      return;
    }
  }
  FAIL() << "no atomic Block-Update in the healthy log";
}

// The linearizer's crashed-process branch: a Block-Update whose process
// crashed after the line-2 scan H but before the line-4 update X has
// step_x == kNoStep; its Updates never reached H, so the linearizer must
// omit them - and still accept the history (a crash is a legal execution).
OpLog crashed_before_x_log() {
  Scheduler sched;
  AugmentedSnapshot m(sched, "M", 2, 2);
  sched.spawn(mixed_ops(m, 0), "q1");
  sched.spawn(mixed_ops(m, 1), "q2");
  sched.run_step(0);  // q1's line-2 scan H lands...
  sched.crash(0);     // ...and q1 dies with its line-4 update X poised
  runtime::RoundRobinAdversary adv;
  EXPECT_TRUE(sched.run(adv));
  return m.log();
}

TEST(LinearizerCrash, CrashedBeforeXIsOmittedAndAccepted) {
  OpLog log = crashed_before_x_log();
  const aug::BlockUpdateOpRecord* crashed = nullptr;
  for (const auto& b : log.block_updates) {
    if (b.process == 0) {
      ASSERT_EQ(crashed, nullptr) << "q1 should have exactly one record";
      crashed = &b;
    }
  }
  ASSERT_NE(crashed, nullptr);
  EXPECT_NE(crashed->step_h, aug::kNoStep);   // the scan H happened
  EXPECT_EQ(crashed->step_x, aug::kNoStep);   // the update X never did
  EXPECT_FALSE(crashed->completed);
  auto lin = aug::linearize(log, 2);
  EXPECT_TRUE(lin.ok()) << lin.violations.front();
  for (const auto& op : lin.ops) {
    EXPECT_NE(op.process, 0u) << "crashed q1 must linearize no operations";
  }
}

TEST(LinearizerCrash, ResurrectedCrashedUpdateIsRejected) {
  // Negative control for the same branch: tamper the crashed record to
  // claim its update X executed.  q2's real Scan returned a view without
  // q1's value, so the fold check (Corollary 15) must fire.
  OpLog log = crashed_before_x_log();
  bool scan_seen = false;
  for (const auto& s : log.scans) {
    scan_seen = scan_seen || s.completed;
  }
  ASSERT_TRUE(scan_seen);
  for (auto& b : log.block_updates) {
    if (b.process == 0) {
      ASSERT_EQ(b.step_x, aug::kNoStep);
      b.step_x = b.step_h + 1;
      auto lin = aug::linearize(log, 2);
      EXPECT_FALSE(lin.ok());
      return;
    }
  }
  FAIL() << "q1 has no Block-Update record";
}

TEST(ReplayNegative, TamperedRevisionsRejected) {
  // Hunt for a run with a revision ending in a poised update, then feed the
  // validator corrupted revision records: every corruption must be caught.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Scheduler sched;
    proto::RacingAgreement protocol(4, 2);
    sim::SimulationDriver driver(sched, protocol, {10, 20});
    runtime::RandomAdversary adv(seed);
    if (!driver.run(adv, 5'000'000)) {
      continue;
    }
    auto revisions = driver.all_revisions();
    std::size_t idx = revisions.size();
    for (std::size_t i = 0; i < revisions.size(); ++i) {
      if (revisions[i].final_update) {
        idx = i;
        break;
      }
    }
    if (idx == revisions.size()) {
      continue;
    }
    ASSERT_TRUE(sim::validate_simulation(driver, revisions).ok());

    // Corrupt the final poised update's value.
    auto bad = revisions;
    bad[idx].final_update->second ^= 1;
    EXPECT_FALSE(sim::validate_simulation(driver, bad).ok());

    // Point the revision at the wrong simulated process.
    bad = revisions;
    bad[idx].revised_proc = (bad[idx].revised_proc + 1) % driver.n();
    EXPECT_FALSE(sim::validate_simulation(driver, bad).ok());

    // Drop the revision entirely: the poised update it produces is then
    // unexplained when the block update consumes it.
    bad = revisions;
    bad.erase(bad.begin() + static_cast<std::ptrdiff_t>(idx));
    EXPECT_FALSE(sim::validate_simulation(driver, bad).ok());

    // Claim an extra hidden step that never happened.
    bad = revisions;
    bad[idx].hidden_updates.emplace_back(0, Val{12345});
    EXPECT_FALSE(sim::validate_simulation(driver, bad).ok());
    return;
  }
  GTEST_SKIP() << "no revision-bearing run found in 200 seeds";
}

TEST(ReplayNegative, WrongProtocolRejected) {
  // Replaying a run of racing(4,2) against racing with different inputs
  // must fail: the replicas take different steps than the recorded ones.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Scheduler sched;
    proto::RacingAgreement protocol(4, 2);
    sim::SimulationDriver driver(sched, protocol, {10, 20});
    runtime::RandomAdversary adv(seed);
    if (!driver.run(adv, 5'000'000)) {
      continue;
    }
    ASSERT_TRUE(sim::validate_simulation(driver).ok());
    // Build a fresh driver sharing the first one's *log* is not possible
    // through the public API (by design); instead check sensitivity via a
    // corrupted linearization input: tamper with the snapshot log copy.
    aug::OpLog log = driver.snapshot().log();
    ASSERT_FALSE(log.block_updates.empty());
    log.block_updates[0].vals[0] ^= 1;
    auto lin = aug::linearize(log, 2);
    // Either the linearizer itself catches it (scan results no longer
    // match) or the fold check does; in a run with at least one scan after
    // the flip this must fail.
    bool scan_after = false;
    for (const auto& s : log.scans) {
      scan_after = scan_after ||
                   (s.completed && s.last_step > log.block_updates[0].step_x);
    }
    if (scan_after) {
      EXPECT_FALSE(lin.ok()) << "seed " << seed;
      return;
    }
  }
  GTEST_SKIP() << "no suitable run found";
}

}  // namespace
}  // namespace revisim
