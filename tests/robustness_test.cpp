// Robustness: how the simulation and the augmented snapshot behave at the
// edges - non-obstruction-free protocols (divergence must be detected, not
// looped on), Scan starvation under an infinite Block-Update stream (the
// §3.2 "non-blocking but not wait-free" distinction), argument validation,
// and an exhaustive-schedule sweep of a complete tiny simulation.
#include <gtest/gtest.h>

#include "src/augmented/augmented_snapshot.h"
#include "src/check/model_check.h"
#include "src/check/parallel_explore.h"
#include "src/protocols/racing_agreement.h"
#include "src/protocols/sim_process.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"
#include "src/sim/driver.h"
#include "src/sim/replay.h"

namespace revisim {
namespace {

using aug::AugmentedSnapshot;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::Task;

// A protocol that is *not* obstruction-free: it never outputs, endlessly
// rewriting component 0 with a growing counter.
class NeverDecide final : public proto::Protocol {
 public:
  explicit NeverDecide(std::size_t m) : m_(m) {}
  [[nodiscard]] std::string name() const override { return "never-decide"; }
  [[nodiscard]] std::size_t components() const override { return m_; }
  [[nodiscard]] std::unique_ptr<proto::SimProcess> make(std::size_t,
                                                        Val) const override {
    class P final : public proto::SimProcess {
     public:
      proto::SimAction on_scan(const View&) override {
        return proto::SimAction::make_update(0, counter_++);
      }
      [[nodiscard]] std::unique_ptr<proto::SimProcess> clone() const override {
        return std::make_unique<P>(*this);
      }
      [[nodiscard]] std::string state_key() const override {
        return "N" + std::to_string(counter_);
      }

     private:
      Val counter_ = 0;
    };
    return std::make_unique<P>();
  }

 private:
  std::size_t m_;
};

TEST(Robustness, NonObstructionFreeProtocolIsDetected) {
  // The covering simulator's local solo simulations are budgeted; feeding a
  // protocol that never terminates solo must raise SimulationDiverged
  // rather than hang.
  Scheduler sched;
  NeverDecide protocol(2);
  sim::SimulationDriver::Options opt;
  opt.local_budget = 2'000;
  sim::SimulationDriver driver(sched, protocol, {1}, opt);
  runtime::RoundRobinAdversary adv;
  EXPECT_THROW(driver.run(adv), sim::SimulationDiverged);
}

Task<void> endless_updates(AugmentedSnapshot& m, ProcessId me) {
  for (Val i = 0;; ++i) {
    std::vector<std::size_t> comps{0};
    std::vector<Val> vals{i};
    co_await m.BlockUpdate(me, comps, vals);
  }
}

Task<void> one_scan(AugmentedSnapshot& m, ProcessId me, bool& finished) {
  co_await m.Scan(me);
  finished = true;
}

TEST(Robustness, ScanStarvesUnderInfiniteBlockUpdates) {
  // §3.2: Scan is non-blocking, not wait-free - an infinite stream of
  // concurrent Block-Updates may starve it.  Alternate one full
  // Block-Update between every pair of q2's steps: the double collect
  // never stabilizes.
  Scheduler sched;
  AugmentedSnapshot m(sched, "M", 1, 2);
  bool finished = false;
  sched.spawn(endless_updates(m, 0), "q1");
  sched.spawn(one_scan(m, 1, finished), "q2");
  std::vector<ProcessId> pattern;
  pattern.push_back(1);  // q2 first collect
  for (int round = 0; round < 50; ++round) {
    for (int s = 0; s < 6; ++s) {
      pattern.push_back(0);  // a full interfering Block-Update
    }
    pattern.push_back(1);  // q2 L-write
    pattern.push_back(1);  // q2 confirming collect: invalidated again
  }
  runtime::ScriptedAdversary adv(pattern, /*stop_at_end=*/true);
  EXPECT_FALSE(sched.run(adv, pattern.size() + 10, false));
  EXPECT_FALSE(finished);
  // But Block-Updates stayed wait-free throughout.
  EXPECT_GE(sched.steps_taken(0), 6u * 50u);
}

TEST(Robustness, ScanCompletesOnceUpdatesStop) {
  // Complement: the same starving scan finishes two steps after the stream
  // stops (non-blocking).
  Scheduler sched;
  AugmentedSnapshot m(sched, "M", 1, 2);
  bool finished = false;
  sched.spawn(endless_updates(m, 0), "q1");
  sched.spawn(one_scan(m, 1, finished), "q2");
  std::vector<ProcessId> pattern{1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1};
  runtime::ScriptedAdversary adv(pattern, /*stop_at_end=*/true);
  sched.run(adv, pattern.size() + 1, false);
  EXPECT_TRUE(finished);
}

TEST(Robustness, DriverValidatesArguments) {
  Scheduler sched;
  proto::RacingAgreement protocol(4, 2);
  sim::SimulationDriver::Options opt;
  opt.d = 3;  // d > f
  EXPECT_THROW(sim::SimulationDriver(sched, protocol, {1, 2}, opt),
               std::invalid_argument);
  EXPECT_THROW(sim::SimulationDriver(sched, protocol, {}),
               std::invalid_argument);
  // n too small for the partition.
  sim::SimulationDriver::Options opt2;
  opt2.n = 3;
  EXPECT_THROW(sim::SimulationDriver(sched, protocol, {1, 2}, opt2),
               std::invalid_argument);
}

// Exhaustive-schedule sweep of a complete tiny simulation: racing(n=2,m=1)
// under two covering simulators; every interleaving must terminate, replay
// to a legal execution, and produce valid outputs.
class TinySimWorld final : public check::ExplorableWorld {
 public:
  explicit TinySimWorld(std::size_t d)
      : protocol_(2, 1), driver_(sched_, protocol_, {10, 20}, options(d)) {}

  static sim::SimulationDriver::Options options(std::size_t d) {
    sim::SimulationDriver::Options opt;
    opt.d = d;
    return opt;
  }

  Scheduler& scheduler() override { return sched_; }

  std::optional<std::string> verdict(bool complete) override {
    if (!complete) {
      return "execution did not finish within the depth bound";
    }
    auto report = sim::validate_simulation(driver_);
    if (!report.ok()) {
      return report.violations.front();
    }
    for (Val y : driver_.outputs()) {
      if (y != 10 && y != 20) {
        return "output " + std::to_string(y) + " is not an input";
      }
    }
    return std::nullopt;
  }

 private:
  Scheduler sched_;
  proto::RacingAgreement protocol_;
  sim::SimulationDriver driver_;
};

TEST(Robustness, ExhaustiveTinySimulationCoveringOnly) {
  check::ScheduleExploreOptions opt;
  opt.max_steps = 64;
  opt.max_executions = 400'000;
  auto res = check::explore_schedules(
      [] { return std::make_unique<TinySimWorld>(0); }, opt);
  EXPECT_TRUE(res.exhausted);
  EXPECT_FALSE(res.violation) << *res.violation;
  // m = 1 keeps the simulators short; the tree is small but complete.
  EXPECT_GE(res.executions, 10u);
}

TEST(Robustness, ExhaustiveTinySimulationWithDirectSimulator) {
  // One covering + one direct simulator: the direct simulator's process
  // races rounds against the covering simulator's, giving a deeper tree.
  check::ScheduleExploreOptions opt;
  opt.max_steps = 160;
  opt.max_executions = 400'000;
  auto res = check::explore_schedules(
      [] { return std::make_unique<TinySimWorld>(1); }, opt);
  EXPECT_TRUE(res.exhausted);
  EXPECT_FALSE(res.violation) << *res.violation;
  EXPECT_GE(res.executions, 100u);
}

TEST(Robustness, ParallelParityOnTinySimulations) {
  // Whole-simulation worlds (driver + simulators + validator verdicts) under
  // the parallel explorer: results must match the serial sweep bit-for-bit
  // for every thread count.
  for (std::size_t d : {0u, 1u}) {
    check::ScheduleExploreOptions base;
    base.max_steps = d == 0 ? 64 : 160;
    base.max_executions = 400'000;
    auto factory = [d] { return std::make_unique<TinySimWorld>(d); };
    auto serial = check::explore_schedules(factory, base);
    for (std::size_t threads : {1u, 2u, 4u}) {
      check::ParallelExploreOptions opt;
      opt.base = base;
      opt.threads = threads;
      auto par = check::parallel_explore_schedules(factory, opt);
      const auto what =
          "d=" + std::to_string(d) + " threads=" + std::to_string(threads);
      EXPECT_EQ(par.executions, serial.executions) << what;
      EXPECT_EQ(par.exhausted, serial.exhausted) << what;
      EXPECT_EQ(par.violation, serial.violation) << what;
      EXPECT_EQ(par.witness, serial.witness) << what;
    }
  }
}

}  // namespace
}  // namespace revisim
