// Tests for the revisionist simulation (Section 4): single- and multi-
// simulator runs over correct and space-starved protocols, wait-freedom,
// revision bookkeeping, and full Lemma-26 replay validation of every run.
#include <gtest/gtest.h>

#include "src/protocols/approx_agreement.h"
#include "src/protocols/ca_consensus.h"
#include "src/protocols/racing_agreement.h"
#include "src/runtime/adversary.h"
#include "src/sim/driver.h"
#include "src/sim/replay.h"
#include "src/tasks/task_spec.h"

namespace revisim {
namespace {

using proto::ApproxAgreement;
using proto::CAConsensus;
using proto::RacingAgreement;
using runtime::RandomAdversary;
using runtime::RoundRobinAdversary;
using runtime::Scheduler;
using sim::SimulationDriver;
using sim::validate_simulation;

TEST(Simulation, SoloCoveringSimulatorOnCorrectConsensus) {
  // f = 1 covering simulator, protocol with m = n = 3: the simulator builds
  // a full block update and outputs p_{1,1}'s decision, which must be its
  // own input (validity with a single input value).
  Scheduler sched;
  CAConsensus protocol(3);
  SimulationDriver driver(sched, protocol, {42});
  RoundRobinAdversary adv;
  ASSERT_TRUE(driver.run(adv));
  ASSERT_TRUE(driver.finished(0));
  EXPECT_EQ(driver.outcome(0).output, 42);
  auto report = validate_simulation(driver);
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_GE(report.revisions_validated, 1u);
}

TEST(Simulation, SoloCoveringSimulatorOnRacing) {
  Scheduler sched;
  RacingAgreement protocol(4, 4);
  SimulationDriver driver(sched, protocol, {7});
  RoundRobinAdversary adv;
  ASSERT_TRUE(driver.run(adv));
  EXPECT_EQ(driver.outcome(0).output, 7);
  auto report = validate_simulation(driver);
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

class SimulationStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulationStress, TwoCoveringSimulatorsOnStarvedRacing) {
  // The reduction proper: f = 2 simulators, racing consensus starved to
  // m = 2 components among n = 4 simulated processes (the paper's bound for
  // 2 wait-free simulators: m <= floor(n/2)).  The run must terminate under
  // every schedule (wait-freedom, Lemma 32) and the replay must certify it
  // corresponds to a legal execution of the protocol; the *outputs* may
  // disagree, which is exactly the paper's contrapositive.
  const std::uint64_t seed = GetParam();
  Scheduler sched;
  RacingAgreement protocol(4, 2);
  SimulationDriver driver(sched, protocol, {10, 20});
  RandomAdversary adv(seed);
  ASSERT_TRUE(driver.run(adv, 2'000'000)) << "not wait-free under seed "
                                          << seed;
  auto report = validate_simulation(driver);
  ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                           << report.violations.front();
  // Validity always holds (outputs are inputs of some process).
  for (Val y : driver.outputs()) {
    EXPECT_TRUE(y == 10 || y == 20) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationStress,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(Simulation, ManufacturesConsensusViolations) {
  // Because wait-free 2-process consensus is impossible, some schedule must
  // make the starved protocol's simulation output two values.  Find one.
  tasks::KSetAgreement consensus(1);
  std::size_t violations = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Scheduler sched;
    RacingAgreement protocol(4, 2);
    SimulationDriver driver(sched, protocol, {10, 20});
    RandomAdversary adv(seed);
    if (!driver.run(adv, 2'000'000)) {
      continue;
    }
    auto verdict = consensus.validate(driver.inputs(), driver.outputs());
    if (!verdict.ok) {
      ++violations;
      // Crucially the violating execution is still a *legal* execution of
      // the protocol: the protocol itself is broken, not the simulation.
      auto report = validate_simulation(driver);
      EXPECT_TRUE(report.ok()) << report.violations.front();
    }
  }
  EXPECT_GT(violations, 0u)
      << "no consensus violation surfaced; the reduction demo lost its bite";
}

class MixedSimulatorStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MixedSimulatorStress, CoveringPlusDirectSimulators) {
  // x = 1 direct simulator plus two covering simulators (f = 3, d = 1) over
  // a starved racing instance: n = 2m + 1 simulated processes.
  const std::uint64_t seed = GetParam();
  Scheduler sched;
  RacingAgreement protocol(5, 2);
  SimulationDriver::Options opt;
  opt.d = 1;
  SimulationDriver driver(sched, protocol, {1, 2, 3}, opt);
  RandomAdversary adv(seed);
  ASSERT_TRUE(driver.run(adv, 4'000'000)) << "seed " << seed;
  auto report = validate_simulation(driver);
  ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                           << report.violations.front();
  for (Val y : driver.outputs()) {
    EXPECT_TRUE(y == 1 || y == 2 || y == 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedSimulatorStress,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(Simulation, ApproxAgreementUnderTwoSimulators) {
  // Theorem 21(1) shape: 2 simulators over starved approximate agreement;
  // wait-free termination plus replay validity; epsilon may break.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Scheduler sched;
    ApproxAgreement protocol(4, 2, 0.05);
    SimulationDriver driver(sched, protocol, {to_fixed(0.0), to_fixed(1.0)});
    RandomAdversary adv(seed);
    ASSERT_TRUE(driver.run(adv, 2'000'000)) << "seed " << seed;
    auto report = validate_simulation(driver);
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                             << report.violations.front();
  }
}

TEST(Simulation, PartitionShapes) {
  auto p = sim::Partition::make(7, 3, 1, 3);
  ASSERT_EQ(p.groups.size(), 3u);
  EXPECT_EQ(p.groups[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(p.groups[1], (std::vector<std::size_t>{3, 4, 5}));
  EXPECT_EQ(p.groups[2], (std::vector<std::size_t>{6}));
  EXPECT_THROW(sim::Partition::make(5, 3, 1, 3), std::invalid_argument);
}

TEST(Simulation, RevisionsAreRecordedAndBounded) {
  Scheduler sched;
  RacingAgreement protocol(4, 2);
  SimulationDriver driver(sched, protocol, {10, 20});
  RandomAdversary adv(1);
  ASSERT_TRUE(driver.run(adv, 2'000'000));
  // Every covering simulator that finished via the final run revised the
  // past at least m-1 times total across its construct(m) (here m = 2).
  for (runtime::ProcessId i = 0; i < 2; ++i) {
    if (driver.outcome(i).output_from_final_run) {
      EXPECT_GE(driver.covering_stats(i)->revisions, 1u);
    }
  }
  for (const auto& rev : driver.all_revisions()) {
    // Hidden updates must target components of the used block update, which
    // had m-1 = 1 component; final update targets the other.
    EXPECT_TRUE(rev.final_update.has_value() || rev.early_output.has_value());
  }
}

TEST(Simulation, StepComplexityWithinLemma31Budget) {
  // Lemma 31: with only covering simulators every simulator applies at most
  // 2 b(i) + 1 operations on M.  For f = 2, m = 2: a(1)=0, a(2)=3, b(1)=3,
  // b(2)=a(2)(a(1)+1)=... the bound is loose; we check a comfortable cap
  // and that runs are far below the paper's 2^{f m^2} step bound.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Scheduler sched;
    RacingAgreement protocol(4, 2);
    SimulationDriver driver(sched, protocol, {10, 20});
    RandomAdversary adv(seed);
    ASSERT_TRUE(driver.run(adv, 2'000'000));
    const double cap = std::pow(2.0, 2 * 2 * 2);  // 2^{f m^2} M-operations
    for (runtime::ProcessId i = 0; i < 2; ++i) {
      const auto* st = driver.covering_stats(i);
      EXPECT_LE(st->block_updates + st->scans, cap) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace revisim
