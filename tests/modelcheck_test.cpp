// Exhaustive schedule exploration of the augmented snapshot on tiny
// instances: every interleaving of two (and bounded three) real processes
// must produce an execution passing all §3.3 linearization checks.
#include <gtest/gtest.h>

#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/check/model_check.h"
#include "src/check/parallel_explore.h"
#include "src/runtime/scheduler.h"

namespace revisim {
namespace {

using aug::AugmentedSnapshot;
using check::ExplorableWorld;
using check::explore_schedules;
using check::ScheduleExploreOptions;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::Task;

Task<void> bu_script(AugmentedSnapshot& m, ProcessId me,
                     std::vector<std::pair<std::size_t, Val>> writes) {
  for (auto [j, v] : writes) {
    std::vector<std::size_t> comps{j};
    std::vector<Val> vals{v};
    co_await m.BlockUpdate(me, comps, vals);
  }
}

Task<void> wide_bu_script(AugmentedSnapshot& m, ProcessId me) {
  std::vector<std::size_t> comps{0, 1};
  std::vector<Val> vals{Val(10 * (me + 1)), Val(10 * (me + 1) + 1)};
  co_await m.BlockUpdate(me, comps, vals);
}

Task<void> scan_script(AugmentedSnapshot& m, ProcessId me) {
  co_await m.Scan(me);
  co_await m.Scan(me);
}

class AugWorld final : public ExplorableWorld {
 public:
  enum class Shape { kTwoSingles, kWideVsScan, kWideVsWide, kThreeMixed };

  explicit AugWorld(Shape shape) {
    const std::size_t f = shape == Shape::kThreeMixed ? 3 : 2;
    m_ = std::make_unique<AugmentedSnapshot>(sched_, "M", 2, f);
    switch (shape) {
      case Shape::kTwoSingles:
        sched_.spawn(bu_script(*m_, 0, {{0, 1}}), "q1");
        sched_.spawn(bu_script(*m_, 1, {{1, 2}}), "q2");
        break;
      case Shape::kWideVsScan:
        sched_.spawn(wide_bu_script(*m_, 0), "q1");
        sched_.spawn(scan_script(*m_, 1), "q2");
        break;
      case Shape::kWideVsWide:
        sched_.spawn(wide_bu_script(*m_, 0), "q1");
        sched_.spawn(wide_bu_script(*m_, 1), "q2");
        break;
      case Shape::kThreeMixed:
        sched_.spawn(bu_script(*m_, 0, {{0, 1}}), "q1");
        sched_.spawn(wide_bu_script(*m_, 1), "q2");
        sched_.spawn(scan_script(*m_, 2), "q3");
        break;
    }
  }

  Scheduler& scheduler() override { return sched_; }

  std::optional<std::string> verdict(bool complete) override {
    (void)complete;  // the linearizer accepts partial executions
    auto lin = aug::linearize(m_->log(), 2);
    if (!lin.ok()) {
      return lin.violations.front();
    }
    return std::nullopt;
  }

 private:
  Scheduler sched_;
  std::unique_ptr<AugmentedSnapshot> m_;
};

TEST(ScheduleExplorer, TwoSingleBlockUpdatesExhaustive) {
  auto res = explore_schedules(
      [] { return std::make_unique<AugWorld>(AugWorld::Shape::kTwoSingles); });
  EXPECT_TRUE(res.exhausted);
  EXPECT_FALSE(res.violation) << *res.violation << " witness size "
                              << res.witness.size();
  // Not C(12,6) = 924: q2's Block-Update returns early (5 steps, skipping
  // the helping-read scan) on the branches where q1 makes it yield, so the
  // deterministic leaf count is smaller.  The exact value is a regression
  // anchor: it changes iff the augmented snapshot's step structure changes.
  EXPECT_EQ(res.executions, 577u);
}

TEST(ScheduleExplorer, WideBlockUpdateVersusScanExhaustive) {
  auto res = explore_schedules(
      [] { return std::make_unique<AugWorld>(AugWorld::Shape::kWideVsScan); });
  EXPECT_TRUE(res.exhausted);
  EXPECT_FALSE(res.violation) << *res.violation;
  EXPECT_GT(res.executions, 100u);
}

TEST(ScheduleExplorer, WideVersusWideExhaustive) {
  auto res = explore_schedules(
      [] { return std::make_unique<AugWorld>(AugWorld::Shape::kWideVsWide); });
  EXPECT_TRUE(res.exhausted);
  EXPECT_FALSE(res.violation) << *res.violation;
}

TEST(ScheduleExplorer, ThreeProcessesBounded) {
  ScheduleExploreOptions opt;
  opt.max_executions = 60'000;
  auto res = explore_schedules(
      [] { return std::make_unique<AugWorld>(AugWorld::Shape::kThreeMixed); },
      opt);
  EXPECT_FALSE(res.violation) << *res.violation;
  EXPECT_GE(res.executions, 10'000u);
}

// The explorer must actually find planted violations.
class BrokenWorld final : public ExplorableWorld {
 public:
  BrokenWorld() {
    m_ = std::make_unique<AugmentedSnapshot>(sched_, "M", 2, 2);
    sched_.spawn(bu_script(*m_, 0, {{0, 1}}), "q1");
    sched_.spawn(bu_script(*m_, 1, {{0, 2}}), "q2");
  }
  Scheduler& scheduler() override { return sched_; }
  std::optional<std::string> verdict(bool complete) override {
    // Deliberately bogus property: "component 0 never holds 2".
    if (complete && m_->peek_view()[0] == std::optional<Val>(2)) {
      return "component 0 holds 2";
    }
    return std::nullopt;
  }

 private:
  Scheduler sched_;
  std::unique_ptr<AugmentedSnapshot> m_;
};

// The parallel explorer must reproduce the serial explorer bit-for-bit on
// the seed instances, for any thread count.
TEST(ScheduleExplorer, ParallelParityOnSeedInstances) {
  struct Case {
    AugWorld::Shape shape;
    std::size_t max_executions;
  };
  const Case cases[] = {
      {AugWorld::Shape::kTwoSingles, 500'000},
      {AugWorld::Shape::kWideVsScan, 500'000},
      {AugWorld::Shape::kWideVsWide, 500'000},
      {AugWorld::Shape::kThreeMixed, 20'000},  // cap exercised in the merge
  };
  for (const Case& c : cases) {
    auto factory = [shape = c.shape] {
      return std::make_unique<AugWorld>(shape);
    };
    check::ScheduleExploreOptions base;
    base.max_executions = c.max_executions;
    auto serial = explore_schedules(factory, base);
    for (std::size_t threads : {1u, 2u, 4u}) {
      check::ParallelExploreOptions opt;
      opt.base = base;
      opt.threads = threads;
      auto par = check::parallel_explore_schedules(factory, opt);
      const auto what = "shape=" + std::to_string(int(c.shape)) +
                        " threads=" + std::to_string(threads);
      EXPECT_EQ(par.executions, serial.executions) << what;
      EXPECT_EQ(par.exhausted, serial.exhausted) << what;
      EXPECT_EQ(par.violation, serial.violation) << what;
      EXPECT_EQ(par.witness, serial.witness) << what;
    }
  }
}

TEST(ScheduleExplorer, FindsPlantedViolationWithWitness) {
  auto res =
      explore_schedules([] { return std::make_unique<BrokenWorld>(); });
  ASSERT_TRUE(res.violation.has_value());
  EXPECT_FALSE(res.witness.empty());
  // Replaying the witness reproduces the violation deterministically.
  BrokenWorld world;
  for (ProcessId pid : res.witness) {
    world.scheduler().run_step(pid);
  }
  EXPECT_TRUE(world.verdict(world.scheduler().all_done()).has_value());
}

}  // namespace
}  // namespace revisim
