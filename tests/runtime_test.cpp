// Tests for the cooperative runtime: step granularity, nested Task chains,
// adversaries, determinism and error propagation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/memory/mw_snapshot.h"
#include "src/memory/register.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/task.h"

namespace revisim {
namespace {

using runtime::ProcessId;
using runtime::RandomAdversary;
using runtime::RoundRobinAdversary;
using runtime::Scheduler;
using runtime::ScriptedAdversary;
using runtime::SoloAdversary;
using runtime::StepLimitExceeded;
using runtime::Task;

Task<void> write_then_read(mem::Register& r, Val v, std::optional<Val>& out) {
  co_await r.write(v);
  out = co_await r.read();
}

TEST(Runtime, SingleProcessRunsToCompletion) {
  Scheduler sched;
  mem::Register r(sched, "r");
  std::optional<Val> seen;
  sched.spawn(write_then_read(r, 42, seen), "q1");
  RoundRobinAdversary adv;
  EXPECT_TRUE(sched.run(adv));
  EXPECT_EQ(seen, std::optional<Val>(42));
  EXPECT_EQ(sched.total_steps(), 2u);
  EXPECT_EQ(sched.steps_taken(0), 2u);
}

TEST(Runtime, StepsInterleaveAtOperationGranularity) {
  Scheduler sched;
  mem::Register r(sched, "r");
  std::optional<Val> seen0;
  std::optional<Val> seen1;
  sched.spawn(write_then_read(r, 1, seen0), "q1");
  sched.spawn(write_then_read(r, 2, seen1), "q2");
  // q1 writes, q2 writes, q1 reads (sees 2), q2 reads (sees 2).
  ScriptedAdversary adv({0, 1, 0, 1});
  EXPECT_TRUE(sched.run(adv));
  EXPECT_EQ(seen0, std::optional<Val>(2));
  EXPECT_EQ(seen1, std::optional<Val>(2));
}

Task<Val> helper_sum(mem::Register& r, Val bump) {
  auto v = co_await r.read();
  co_await r.write(v.value_or(0) + bump);
  auto after = co_await r.read();
  co_return after.value_or(-1);
}

Task<void> nested_caller(mem::Register& r, Val& out) {
  Val a = co_await helper_sum(r, 10);
  Val b = co_await helper_sum(r, 5);
  out = a + b;
}

TEST(Runtime, NestedTasksSuspendAsAUnit) {
  Scheduler sched;
  mem::Register r(sched, "r", 0);
  Val out = 0;
  sched.spawn(nested_caller(r, out), "q1");
  RoundRobinAdversary adv;
  EXPECT_TRUE(sched.run(adv));
  EXPECT_EQ(out, 10 + 15);
  EXPECT_EQ(sched.total_steps(), 6u);
}

Task<void> recursive_count(mem::Register& r, int depth) {
  if (depth == 0) {
    co_return;
  }
  auto v = co_await r.read();
  co_await r.write(v.value_or(0) + 1);
  co_await recursive_count(r, depth - 1);
}

TEST(Runtime, DeepRecursionThroughTasks) {
  Scheduler sched;
  mem::Register r(sched, "r", 0);
  sched.spawn(recursive_count(r, 200), "q1");
  RoundRobinAdversary adv;
  EXPECT_TRUE(sched.run(adv));
  EXPECT_EQ(r.peek(), std::optional<Val>(200));
}

Task<void> infinite_writer(mem::Register& r) {
  for (;;) {
    co_await r.write(7);
  }
}

TEST(Runtime, StepLimitThrows) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(infinite_writer(r), "q1");
  RoundRobinAdversary adv;
  EXPECT_THROW(sched.run(adv, 100), StepLimitExceeded);
  EXPECT_FALSE(sched.run(adv, 100, /*throw_on_limit=*/false));
}

Task<void> thrower(mem::Register& r) {
  co_await r.write(1);
  throw std::runtime_error("boom");
}

TEST(Runtime, ExceptionsPropagateToRun) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(thrower(r), "q1");
  RoundRobinAdversary adv;
  EXPECT_THROW(sched.run(adv), std::runtime_error);
}

Task<void> scan_collector(mem::MWSnapshot& m, ProcessId me,
                          std::vector<View>& views) {
  co_await m.update(me, static_cast<Val>(me) + 1);
  views.push_back(co_await m.scan());
  views.push_back(co_await m.scan());
}

TEST(Runtime, MWSnapshotScansAreAtomic) {
  Scheduler sched;
  mem::MWSnapshot m(sched, "M", 3);
  std::vector<View> v0;
  std::vector<View> v1;
  sched.spawn(scan_collector(m, 0, v0), "q1");
  sched.spawn(scan_collector(m, 1, v1), "q2");
  RoundRobinAdversary adv;
  EXPECT_TRUE(sched.run(adv));
  ASSERT_EQ(v0.size(), 2u);
  EXPECT_EQ(v0[1][0], std::optional<Val>(1));
  EXPECT_EQ(v0[1][1], std::optional<Val>(2));
  EXPECT_EQ(v0[1][2], std::optional<Val>());
}

TEST(Runtime, DeterministicUnderFixedSeed) {
  auto run_once = [](std::uint64_t seed) {
    Scheduler sched;
    mem::MWSnapshot m(sched, "M", 2);
    std::vector<View> v0;
    std::vector<View> v1;
    sched.spawn(scan_collector(m, 0, v0), "q1");
    sched.spawn(scan_collector(m, 1, v1), "q2");
    RandomAdversary adv(seed);
    EXPECT_TRUE(sched.run(adv));
    return sched.trace().to_text();
  };
  EXPECT_EQ(run_once(7), run_once(7));
  // Different seeds usually give different traces; at minimum the run
  // remains well formed (checked inside run_once).
  run_once(8);
}

TEST(Runtime, SoloAdversaryFreezesOthers) {
  Scheduler sched;
  mem::Register r(sched, "r", 0);
  std::optional<Val> seen0;
  std::optional<Val> seen1;
  sched.spawn(write_then_read(r, 1, seen0), "q1");
  sched.spawn(write_then_read(r, 2, seen1), "q2");
  SoloAdversary adv(1);
  EXPECT_FALSE(sched.run(adv));  // q1 never finishes
  EXPECT_TRUE(sched.is_done(1));
  EXPECT_FALSE(sched.is_done(0));
  EXPECT_EQ(seen1, std::optional<Val>(2));
}

TEST(Runtime, TraceRecordsEveryStep) {
  Scheduler sched;
  mem::Register r(sched, "r");
  std::optional<Val> seen;
  sched.spawn(write_then_read(r, 3, seen), "q1");
  RoundRobinAdversary adv;
  sched.run(adv);
  const auto& ev = sched.trace().events;
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].kind, runtime::StepKind::kWrite);
  EXPECT_EQ(ev[1].kind, runtime::StepKind::kRead);
  EXPECT_EQ(ev[0].process, 0u);
}

}  // namespace
}  // namespace revisim
