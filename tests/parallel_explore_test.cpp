// Parallel schedule exploration and explorer-core semantics on worlds whose
// schedule trees are known in closed form.
//
// Each ScriptWorld process performs a fixed number of writes, and every
// write appends the process id to a world-local order log, so a completed
// execution's log *is* its schedule.  Leaf counts are multinomial
// coefficients and a planted violation's DFS index is the lexicographic
// rank of its schedule - which pins down cap-boundary accounting, the
// lexicographically-smallest-witness guarantee, and bit-identical results
// across thread counts, steal timings and warm-world pool sizes.  Parallel
// runs set `oversubscribe` so real worker threads (and therefore real
// steals and shared-table races) happen even on a single-core machine.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/check/model_check.h"
#include "src/check/parallel_explore.h"
#include "src/memory/register.h"
#include "src/runtime/scheduler.h"

namespace revisim {
namespace {

using aug::AugmentedSnapshot;
using check::ExplorableWorld;
using check::explore_schedules;
using check::parallel_explore_schedules;
using check::ParallelExploreOptions;
using check::ScheduleExploreOptions;
using check::ScheduleExploreResult;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::StepKind;
using runtime::Task;

using Schedule = std::vector<ProcessId>;

Task<void> count_script(Scheduler& sched, std::size_t obj,
                        std::vector<ProcessId>& order, ProcessId me,
                        std::size_t writes) {
  for (std::size_t i = 0; i < writes; ++i) {
    co_await runtime::StepAwaiter<void>(
        sched, [&order, me] { order.push_back(me); }, obj, StepKind::kWrite,
        {});
  }
}

// Processes i = 0..n-1 perform writes[i] steps each; flags a violation on
// any completed execution whose schedule is in `planted`.
class ScriptWorld final : public ExplorableWorld {
 public:
  ScriptWorld(std::vector<std::size_t> writes, std::vector<Schedule> planted)
      : planted_(std::move(planted)) {
    const std::size_t obj = sched_.register_object("r");
    for (ProcessId p = 0; p < writes.size(); ++p) {
      sched_.spawn(count_script(sched_, obj, order_, p, writes[p]), "q");
    }
  }

  Scheduler& scheduler() override { return sched_; }

  std::optional<std::string> verdict(bool complete) override {
    if (complete &&
        std::find(planted_.begin(), planted_.end(), order_) != planted_.end()) {
      return "planted violation";
    }
    return std::nullopt;
  }

  // The verdict reads the world-local order log - state the scheduler digest
  // cannot see - so the soundness contract requires folding it into the
  // fingerprint.  Doing so makes every state unique (the log is the
  // schedule): dedupe must then prune nothing and reproduce undeduped
  // results bit-for-bit, which the tests below pin down.
  void fingerprint_extra(util::StateSink& sink) override {
    util::feed(sink, order_);
  }

 private:
  Scheduler sched_;
  std::vector<ProcessId> order_;
  std::vector<Schedule> planted_;
};

auto script_factory(std::vector<std::size_t> writes,
                    std::vector<Schedule> planted = {}) {
  return [writes = std::move(writes), planted = std::move(planted)] {
    return std::make_unique<ScriptWorld>(writes, planted);
  };
}

void expect_same(const ScheduleExploreResult& got,
                 const ScheduleExploreResult& want, const std::string& what) {
  EXPECT_EQ(got.executions, want.executions) << what;
  EXPECT_EQ(got.exhausted, want.exhausted) << what;
  EXPECT_EQ(got.violation, want.violation) << what;
  EXPECT_EQ(got.witness, want.witness) << what;
}

// --- cap accounting at the boundary (serial explorer) ---

TEST(ExploreCap, ExactlyAtTreeSizeIsExhausted) {
  // Two processes, two writes each: C(4,2) = 6 leaves.
  ScheduleExploreOptions opt;
  opt.max_executions = 6;
  auto res = explore_schedules(script_factory({2, 2}), opt);
  EXPECT_EQ(res.executions, 6u);
  EXPECT_TRUE(res.exhausted);  // the cap coincided with the end of the tree
  EXPECT_FALSE(res.violation);
}

TEST(ExploreCap, BelowTreeSizeTruncates) {
  ScheduleExploreOptions opt;
  opt.max_executions = 5;
  auto res = explore_schedules(script_factory({2, 2}), opt);
  EXPECT_EQ(res.executions, 5u);
  EXPECT_FALSE(res.exhausted);
}

TEST(ExploreCap, AboveTreeSizeIsExhausted) {
  ScheduleExploreOptions opt;
  opt.max_executions = 7;
  auto res = explore_schedules(script_factory({2, 2}), opt);
  EXPECT_EQ(res.executions, 6u);
  EXPECT_TRUE(res.exhausted);
}

TEST(ExploreCap, ViolationExactlyAtCapIsReported) {
  // Lex order of {0,0,1,1} schedules: 0011, 0101, 0110, 1001, 1010, 1100;
  // 0110 is the 3rd execution.
  const Schedule planted{0, 1, 1, 0};
  ScheduleExploreOptions opt;
  opt.max_executions = 3;
  auto res = explore_schedules(script_factory({2, 2}, {planted}), opt);
  ASSERT_TRUE(res.violation.has_value());
  EXPECT_EQ(res.executions, 3u);
  EXPECT_EQ(res.witness, planted);
}

TEST(ExploreCap, CapJustBeforeViolationTruncatesWithoutIt) {
  const Schedule planted{0, 1, 1, 0};
  ScheduleExploreOptions opt;
  opt.max_executions = 2;
  auto res = explore_schedules(script_factory({2, 2}, {planted}), opt);
  EXPECT_FALSE(res.violation);
  EXPECT_EQ(res.executions, 2u);
  EXPECT_FALSE(res.exhausted);
}

// --- warm-world checkpoint pool: pure optimization, identical semantics ---

TEST(ExploreCore, WarmWorldPoolSizeDoesNotChangeResults) {
  const Schedule planted{1, 0, 0, 1, 0, 1, 1, 0};
  for (std::size_t warm : {0u, 1u, 2u, 64u}) {
    ScheduleExploreOptions opt;
    opt.warm_worlds = warm;
    auto res = explore_schedules(script_factory({3, 3, 2}), opt);
    EXPECT_EQ(res.executions, 560u) << warm;  // 8! / (3!3!2!)
    EXPECT_TRUE(res.exhausted) << warm;

    auto viol = explore_schedules(script_factory({4, 4}, {planted}), opt);
    ASSERT_TRUE(viol.violation.has_value()) << warm;
    EXPECT_EQ(viol.witness, planted) << warm;
    // Rank of 10010110 among {0,1}-sequences with four of each, plus one.
    auto base = explore_schedules(script_factory({4, 4}, {planted}));
    EXPECT_EQ(viol.executions, base.executions) << warm;
  }
}

TEST(ExploreCore, RecordTracesDoesNotChangeResults) {
  for (bool record : {false, true}) {
    ScheduleExploreOptions opt;
    opt.record_traces = record;
    auto res = explore_schedules(script_factory({3, 3, 2}), opt);
    EXPECT_EQ(res.executions, 560u) << record;
    EXPECT_TRUE(res.exhausted) << record;
  }
}

// --- scheduler fast mode: step-for-step identical executions ---

Task<void> aug_mixed(AugmentedSnapshot& m, ProcessId me) {
  std::vector<std::size_t> comps{0};
  std::vector<Val> vals{Val(10 * (me + 1))};
  co_await m.BlockUpdate(me, comps, vals);
  co_await m.Scan(me);
}

TEST(FastMode, StepForStepIdenticalExecutions) {
  // The same fixed schedule, traced and untraced: identical step counts,
  // identical linearizer verdict, identical object census; only the trace
  // differs (recorded vs empty).
  auto run = [](bool record) {
    Scheduler sched;
    sched.set_recording(record);
    AugmentedSnapshot m(sched, "M", 2, 2);
    sched.spawn(aug_mixed(m, 0), "q1");
    sched.spawn(aug_mixed(m, 1), "q2");
    std::vector<ProcessId> schedule{0, 1, 0, 1, 1, 0, 0, 1, 1, 0};
    for (ProcessId pid : schedule) {
      if (!sched.is_done(pid)) {
        sched.run_step(pid);
      }
    }
    while (!sched.all_done()) {
      auto r = sched.runnable();
      sched.run_step(r.front());
    }
    auto lin = aug::linearize(m.log(), 2);
    return std::tuple{sched.total_steps(), sched.steps_taken(0),
                      sched.steps_taken(1), sched.object_count(),
                      sched.trace().size(), lin.ok()};
  };
  auto [steps_t, q1_t, q2_t, objs_t, trace_t, ok_t] = run(true);
  auto [steps_f, q1_f, q2_f, objs_f, trace_f, ok_f] = run(false);
  EXPECT_EQ(steps_t, steps_f);
  EXPECT_EQ(q1_t, q1_f);
  EXPECT_EQ(q2_t, q2_f);
  EXPECT_EQ(objs_t, objs_f);
  EXPECT_TRUE(ok_t);
  EXPECT_TRUE(ok_f);
  EXPECT_EQ(trace_t, steps_t);  // traced mode records every step
  EXPECT_EQ(trace_f, 0u);       // fast mode records nothing
}

TEST(FastMode, RunnableIntoMatchesRunnable) {
  ScriptWorld world({2, 1, 2}, {});
  std::vector<ProcessId> buf{99, 99};  // stale contents must be cleared
  world.scheduler().runnable_into(buf);
  EXPECT_EQ(buf, world.scheduler().runnable());
  world.scheduler().run_step(0);
  world.scheduler().runnable_into(buf);
  EXPECT_EQ(buf, world.scheduler().runnable());
}

// --- parallel explorer: bit-identical results for any thread count ---

TEST(ParallelExplore, DeterministicAcrossThreadsAndStealing) {
  auto serial = explore_schedules(script_factory({3, 3, 2}));
  EXPECT_EQ(serial.executions, 560u);
  EXPECT_EQ(serial.jobs, 1u);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    for (bool oversubscribe : {false, true}) {
      ParallelExploreOptions opt;
      opt.threads = threads;
      opt.oversubscribe = oversubscribe;
      auto res = parallel_explore_schedules(script_factory({3, 3, 2}), opt);
      expect_same(res, serial,
                  "threads=" + std::to_string(threads) +
                      " oversubscribe=" + std::to_string(oversubscribe));
    }
  }
}

TEST(ParallelExplore, ForcedStealsStayBitIdentical) {
  // Oversubscribed workers on any machine are all hungry at startup, so the
  // seed job's worker starts splitting its stack immediately: every
  // configuration steals for real, and the merged result must not budge.
  auto serial = explore_schedules(script_factory({4, 4, 3}));
  EXPECT_EQ(serial.executions, 11550u);  // 11! / (4!4!3!)
  for (std::size_t threads : {2u, 4u, 8u}) {
    ParallelExploreOptions opt;
    opt.threads = threads;
    opt.oversubscribe = true;
    auto res = parallel_explore_schedules(script_factory({4, 4, 3}), opt);
    expect_same(res, serial, "threads=" + std::to_string(threads));
    EXPECT_GT(res.steals, 0u) << threads;
    EXPECT_GT(res.jobs, 1u) << threads;  // the seed was split at least once
  }
}

TEST(ParallelExplore, SingleThreadIsTheSerialEngineInline) {
  // threads == 1 bypasses the stealing machinery entirely: one job, zero
  // steals, results bit-identical to explore_schedules - with and without
  // a cap or a planted violation.
  const Schedule planted{0, 1, 1, 0};
  for (std::size_t cap : {3u, 500'000u}) {
    ScheduleExploreOptions base;
    base.max_executions = cap;
    auto factory = script_factory({2, 2}, {planted});
    auto serial = explore_schedules(factory, base);
    ParallelExploreOptions opt;
    opt.base = base;
    opt.threads = 1;
    auto res = parallel_explore_schedules(factory, opt);
    expect_same(res, serial, "cap=" + std::to_string(cap));
    EXPECT_EQ(res.jobs, 1u);
    EXPECT_EQ(res.steals, 0u);
  }
}

TEST(ParallelExplore, LexicographicallySmallestWitness) {
  // Two planted violations; every configuration must report the smaller.
  const Schedule small{0, 1, 1, 0};
  const Schedule large{1, 0, 0, 1};
  auto factory = script_factory({2, 2}, {large, small});
  auto serial = explore_schedules(factory);
  ASSERT_TRUE(serial.violation.has_value());
  EXPECT_EQ(serial.witness, small);
  EXPECT_EQ(serial.executions, 3u);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelExploreOptions opt;
    opt.threads = threads;
    opt.oversubscribe = true;
    auto res = parallel_explore_schedules(factory, opt);
    expect_same(res, serial, "threads=" + std::to_string(threads));
  }
}

TEST(ParallelExplore, CapAccountingMatchesSerial) {
  for (std::size_t cap : {1u, 99u, 559u, 560u, 561u}) {
    ScheduleExploreOptions base;
    base.max_executions = cap;
    auto serial = explore_schedules(script_factory({3, 3, 2}), base);
    for (std::size_t threads : {1u, 2u, 4u}) {
      ParallelExploreOptions opt;
      opt.base = base;
      opt.threads = threads;
      opt.oversubscribe = true;
      auto res = parallel_explore_schedules(script_factory({3, 3, 2}), opt);
      expect_same(res, serial,
                  "cap=" + std::to_string(cap) +
                      " threads=" + std::to_string(threads));
    }
  }
}

// --- transposition dedupe: verdict parity across thread counts ---

Task<void> tag_script(mem::TypedRegister<Val>& reg, Val me,
                      std::size_t writes) {
  for (std::size_t i = 0; i < writes; ++i) {
    co_await reg.write(me);
  }
}

// Processes stamp their id into one shared register; the verdict reads only
// shared state, so the scheduler digest alone satisfies the soundness
// contract and transpositions merge aggressively (the canonical state is
// just per-process progress plus the last writer).
class LastWriterWorld final : public ExplorableWorld {
 public:
  LastWriterWorld(std::vector<std::size_t> writes, Val banned)
      : reg_(sched_, "R", Val{-1}), banned_(banned) {
    for (ProcessId p = 0; p < writes.size(); ++p) {
      sched_.spawn(tag_script(reg_, Val(p), writes[p]), "w");
    }
  }

  Scheduler& scheduler() override { return sched_; }

  std::optional<std::string> verdict(bool complete) override {
    if (complete && reg_.peek() == banned_) {
      return "banned last writer";
    }
    return std::nullopt;
  }

 private:
  Scheduler sched_;
  mem::TypedRegister<Val> reg_;
  Val banned_;
};

auto last_writer_factory(std::vector<std::size_t> writes, Val banned) {
  return [writes = std::move(writes), banned] {
    return std::make_unique<LastWriterWorld>(writes, banned);
  };
}

TEST(ParallelDedupe, VerdictParityAcrossThreadCounts) {
  // Uncapped searches: the violation-found / violation-free verdict must
  // agree between undeduped serial, deduped serial and deduped parallel at
  // every thread count.  Counts and witnesses may differ by design.
  for (Val banned : {Val{0}, Val{-7}}) {  // planted / absent
    auto factory = last_writer_factory({3, 3, 2}, banned);
    auto plain = explore_schedules(factory);
    ScheduleExploreOptions base;
    base.dedupe_states = true;
    auto serial = explore_schedules(factory, base);
    EXPECT_EQ(serial.violation.has_value(), plain.violation.has_value());
    EXPECT_TRUE(serial.exhausted);
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      ParallelExploreOptions opt;
      opt.base = base;
      opt.threads = threads;
      opt.oversubscribe = true;
      auto res = parallel_explore_schedules(factory, opt);
      const std::string what =
          "banned=" + std::to_string(banned) +
          " threads=" + std::to_string(threads);
      EXPECT_EQ(res.violation.has_value(), plain.violation.has_value())
          << what;
      EXPECT_TRUE(res.exhausted) << what;
      EXPECT_LE(res.executions * 2, plain.executions) << what;  // >= 2x win
      EXPECT_GT(res.states_seen, 0u) << what;
      // Claim-then-walk: the CAS insert claims a state before its subtree
      // is walked, so racing workers prune instead of re-claiming and the
      // parallel explorer never records more distinct states than the
      // serial one on an exhausted violation-free search (each distinct
      // reachable state is claimed exactly once).  With a violation the
      // comparison is meaningless either way: both searches cut early at
      // interleaving-dependent points.
      if (!plain.violation.has_value()) {
        EXPECT_LE(res.states_seen, serial.states_seen) << what;
      }
    }
  }
}

TEST(ParallelDedupe, AuditModeAcrossThreadCounts) {
  ScheduleExploreOptions base;
  base.dedupe_states = true;
  base.dedupe_audit = true;
  for (std::size_t threads : {2u, 4u}) {
    ParallelExploreOptions opt;
    opt.base = base;
    opt.threads = threads;
    opt.oversubscribe = true;
    auto res =
        parallel_explore_schedules(last_writer_factory({3, 3, 2}, 0), opt);
    EXPECT_TRUE(res.violation.has_value()) << threads;
    EXPECT_GT(res.subtrees_pruned, 0u) << threads;
  }
}

TEST(ParallelDedupe, FingerprintExtraKeepsUniqueStatesBitIdentical) {
  // ScriptWorld folds its order log into the fingerprint, making every
  // state unique: dedupe finds no transpositions and must reproduce the
  // undeduped explorer bit-for-bit - including executions and witness.
  const Schedule planted{0, 1, 1, 0};
  auto factory = script_factory({2, 2}, {planted});
  auto plain = explore_schedules(factory);
  ASSERT_TRUE(plain.violation.has_value());

  ScheduleExploreOptions base;
  base.dedupe_states = true;
  auto serial = explore_schedules(factory, base);
  expect_same(serial, plain, "serial dedupe, unique states");
  EXPECT_EQ(serial.subtrees_pruned, 0u);

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelExploreOptions opt;
    opt.base = base;
    opt.threads = threads;
    opt.oversubscribe = true;
    auto res = parallel_explore_schedules(factory, opt);
    expect_same(res, plain, "threads=" + std::to_string(threads));
    EXPECT_EQ(res.subtrees_pruned, 0u) << threads;
  }
}

TEST(ParallelExplore, ViolationExactlyAtCapAcrossThreads) {
  const Schedule planted{0, 1, 1, 0};
  ScheduleExploreOptions base;
  base.max_executions = 3;
  auto factory = script_factory({2, 2}, {planted});
  auto serial = explore_schedules(factory, base);
  ASSERT_TRUE(serial.violation.has_value());
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelExploreOptions opt;
    opt.base = base;
    opt.threads = threads;
    opt.oversubscribe = true;
    auto res = parallel_explore_schedules(factory, opt);
    expect_same(res, serial, "threads=" + std::to_string(threads));
  }
}

// --- graceful degradation: failing jobs, retries, wall-clock abort ---

// Wraps ScriptWorld; verdict() throws until the shared countdown hits zero.
class FlakyWorld final : public ExplorableWorld {
 public:
  FlakyWorld(std::vector<std::size_t> writes, std::atomic<int>* throws_left)
      : inner_(std::move(writes), {}), throws_left_(throws_left) {}
  Scheduler& scheduler() override { return inner_.scheduler(); }
  std::optional<std::string> verdict(bool complete) override {
    if (throws_left_->fetch_add(-1) > 0) {
      throw std::runtime_error("injected verdict fault");
    }
    return inner_.verdict(complete);
  }
  void fingerprint_extra(util::StateSink& sink) override {
    inner_.fingerprint_extra(sink);
  }

 private:
  ScriptWorld inner_;
  std::atomic<int>* throws_left_;
};

TEST(ParallelDegrade, PersistentlyThrowingJobYieldsErrorNotDeadlock) {
  // Every verdict throws: each job exhausts its retry budget and is marked
  // failed; the merge must return a partial summary naming the fault
  // instead of deadlocking or propagating the exception.
  std::atomic<int> always(1 << 20);
  ParallelExploreOptions opt;
  opt.threads = 2;
  opt.oversubscribe = true;
  opt.job_retries = 1;
  auto res = parallel_explore_schedules(
      [&] { return std::make_unique<FlakyWorld>(std::vector<std::size_t>{2, 2},
                                                &always); },
      opt);
  ASSERT_TRUE(res.error.has_value());
  EXPECT_NE(res.error->find("injected verdict fault"), std::string::npos);
  EXPECT_NE(res.error->find("2 attempt"), std::string::npos);  // 1 + 1 retry
  EXPECT_FALSE(res.exhausted);
  EXPECT_FALSE(res.violation);
}

TEST(ParallelDegrade, TransientFaultIsAbsorbedByRetry) {
  // One injected throw: some job fails once, its retry succeeds, and the
  // final summary is bit-identical to the fault-free serial exploration.
  auto serial = explore_schedules(script_factory({2, 2}));
  std::atomic<int> once(1);
  ParallelExploreOptions opt;
  opt.threads = 2;
  opt.job_retries = 2;
  auto res = parallel_explore_schedules(
      [&] { return std::make_unique<FlakyWorld>(std::vector<std::size_t>{2, 2},
                                                &once); },
      opt);
  expect_same(res, serial, "transient fault absorbed");
  EXPECT_FALSE(res.error.has_value());
  EXPECT_FALSE(res.timed_out);
}

Task<void> slow_writes(Scheduler& sched, std::size_t obj, ProcessId /*me*/,
                       std::size_t writes) {
  for (std::size_t i = 0; i < writes; ++i) {
    co_await runtime::StepAwaiter<void>(
        sched,
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(10)); },
        obj, StepKind::kWrite, {});
  }
}

class SlowWorld final : public ExplorableWorld {
 public:
  explicit SlowWorld(std::vector<std::size_t> writes) {
    const std::size_t obj = sched_.register_object("r");
    for (ProcessId p = 0; p < writes.size(); ++p) {
      sched_.spawn(slow_writes(sched_, obj, p, writes[p]), "q");
    }
  }
  Scheduler& scheduler() override { return sched_; }
  std::optional<std::string> verdict(bool) override { return std::nullopt; }

 private:
  Scheduler sched_;
};

TEST(ParallelDegrade, WallClockLimitReturnsPartialSummary) {
  // Steps sleep 10ms and the deadline is 1ms: it has passed before any
  // worker claims a job, so every subtree is left unexplored and the merge
  // must report a timed-out partial summary rather than block.
  ParallelExploreOptions opt;
  opt.threads = 2;
  opt.oversubscribe = true;
  opt.time_limit = std::chrono::milliseconds(1);
  auto res = parallel_explore_schedules(
      [] { return std::make_unique<SlowWorld>(std::vector<std::size_t>{2, 2}); },
      opt);
  EXPECT_TRUE(res.timed_out);
  EXPECT_FALSE(res.exhausted);
  EXPECT_FALSE(res.violation);
  EXPECT_FALSE(res.error.has_value());
}

TEST(ParallelDegrade, OptionValidationAppliesToParallelEntry) {
  ParallelExploreOptions opt;
  opt.base.max_steps = 0;
  EXPECT_THROW(parallel_explore_schedules(script_factory({1, 1}), opt),
               std::invalid_argument);
}

TEST(ParallelCrash, CrashBranchingMatchesSerial) {
  // Crash-extended trees must stay bit-identical between the serial and the
  // parallel explorer (shared choice generation): two 1-step writers have
  // 2 / 6 / 7 executions at 0 / 1 / 2 allowed crashes.
  for (std::size_t crashes : {0u, 1u, 2u}) {
    ScheduleExploreOptions base;
    base.max_crashes = crashes;
    auto serial = explore_schedules(script_factory({1, 1}), base);
    EXPECT_EQ(serial.executions, crashes == 0 ? 2u : (crashes == 1 ? 6u : 7u))
        << crashes;
    for (std::size_t threads : {1u, 2u, 4u}) {
      ParallelExploreOptions opt;
      opt.base = base;
      opt.threads = threads;
      opt.oversubscribe = true;
      auto res = parallel_explore_schedules(script_factory({1, 1}), opt);
      expect_same(res, serial,
                  "crashes=" + std::to_string(crashes) +
                      " threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelCrash, StealsDuringCrashBranchingStayBitIdentical) {
  // A crash-extended tree big enough that oversubscribed workers steal
  // while crash branches are being enumerated: donated choice lists carry
  // crash entries (top bit set), and the key order must still replay the
  // serial result exactly - planted violation included.  The planted order
  // log is only reachable by crashing process 1 after its first write, so
  // the reported witness necessarily contains a crash entry.
  const Schedule planted{1, 0, 0, 0};
  for (auto writes : {std::vector<std::size_t>{3, 3}}) {
    ScheduleExploreOptions base;
    base.max_crashes = 2;
    auto factory = script_factory(writes, {planted});
    auto serial = explore_schedules(factory, base);
    ASSERT_TRUE(serial.violation.has_value());
    EXPECT_TRUE(std::any_of(serial.witness.begin(), serial.witness.end(),
                            runtime::is_crash_entry));
    for (std::size_t threads : {2u, 4u, 8u}) {
      ParallelExploreOptions opt;
      opt.base = base;
      opt.threads = threads;
      opt.oversubscribe = true;
      auto res = parallel_explore_schedules(factory, opt);
      expect_same(res, serial, "threads=" + std::to_string(threads));
    }
  }
}

}  // namespace
}  // namespace revisim
