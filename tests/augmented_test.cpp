// Tests for the augmented snapshot (Section 3): sequential semantics, step
// complexity (Lemma 2), yield conditions (Theorem 20), and the §3.3
// linearization checks under adversarial and random schedules.
#include <gtest/gtest.h>

#include <vector>

#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"

namespace revisim {
namespace {

using aug::AugmentedSnapshot;
using runtime::ProcessId;
using runtime::RandomAdversary;
using runtime::RoundRobinAdversary;
using runtime::Scheduler;
using runtime::ScriptedAdversary;
using runtime::Task;

// GCC 12 miscompiles braced-init-lists appearing anywhere in a co_await
// full-expression inside a coroutine ("array used as initializer"), so all
// Block-Update argument vectors below are hoisted into named locals.

Task<void> solo_script(AugmentedSnapshot& m, ProcessId me,
                       std::vector<AugmentedSnapshot::BlockUpdateResult>& bus,
                       std::vector<View>& scans) {
  std::vector<std::size_t> c02{0, 2};
  std::vector<Val> v02{10, 12};
  std::vector<std::size_t> c1{1};
  std::vector<Val> v1{11};
  scans.push_back((co_await m.Scan(me)).view);
  bus.push_back(co_await m.BlockUpdate(me, c02, v02));
  scans.push_back((co_await m.Scan(me)).view);
  bus.push_back(co_await m.BlockUpdate(me, c1, v1));
  scans.push_back((co_await m.Scan(me)).view);
}

TEST(Augmented, SoloSemantics) {
  Scheduler sched;
  AugmentedSnapshot m(sched, "M", 3, 2);
  std::vector<AugmentedSnapshot::BlockUpdateResult> bus;
  std::vector<View> scans;
  sched.spawn(solo_script(m, 0, bus, scans), "q1");
  RoundRobinAdversary adv;
  EXPECT_TRUE(sched.run(adv));

  ASSERT_EQ(scans.size(), 3u);
  EXPECT_EQ(scans[0], View(3));
  EXPECT_EQ(scans[1], (View{10, std::nullopt, 12}));
  EXPECT_EQ(scans[2], (View{10, 11, 12}));

  ASSERT_EQ(bus.size(), 2u);
  // Solo Block-Updates are atomic and return the view just before their
  // first Update.
  EXPECT_FALSE(bus[0].yielded);
  EXPECT_EQ(bus[0].view, View(3));
  EXPECT_FALSE(bus[1].yielded);
  EXPECT_EQ(bus[1].view, (View{10, std::nullopt, 12}));

  auto lin = aug::linearize(m.log(), 3);
  EXPECT_TRUE(lin.ok()) << lin.violations.front();
}

Task<void> one_block_update(AugmentedSnapshot& m, ProcessId me) {
  std::vector<std::size_t> comps{0};
  std::vector<Val> vals{Val(me)};
  co_await m.BlockUpdate(me, comps, vals);
}

Task<void> one_scan(AugmentedSnapshot& m, ProcessId me) {
  co_await m.Scan(me);
}

TEST(Augmented, Lemma2StepComplexity) {
  // A Block-Update is exactly 6 steps on H; an uncontended Scan is 3.
  Scheduler sched;
  AugmentedSnapshot m(sched, "M", 2, 2);
  sched.spawn(one_block_update(m, 0), "q1");
  sched.spawn(one_scan(m, 1), "q2");
  // Run q1 to completion, then q2: no contention.
  ScriptedAdversary adv({0, 0, 0, 0, 0, 0, 1, 1, 1});
  EXPECT_TRUE(sched.run(adv));
  EXPECT_EQ(sched.steps_taken(0), 6u);
  EXPECT_EQ(sched.steps_taken(1), 3u);
}

TEST(Augmented, ScanRetriesCostTwoStepsPerInterferingUpdate) {
  // Lemma 2: a Scan concurrent with k interfering update batches takes at
  // most 2k+3 steps.  Interleave q2's Scan with q1's Block-Update so the
  // double collect is invalidated once.
  Scheduler sched;
  AugmentedSnapshot m(sched, "M", 2, 2);
  sched.spawn(one_block_update(m, 0), "q1");
  sched.spawn(one_scan(m, 1), "q2");
  // q2 takes its first collect, q1 performs all 6 steps (its line-4 update
  // invalidates q2), then q2 finishes.
  ScriptedAdversary adv({1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1});
  EXPECT_TRUE(sched.run(adv));
  EXPECT_LE(sched.steps_taken(1), 2u * 1u + 3u + 2u);  // k<=2 batches near it
  auto lin = aug::linearize(m.log(), 2);
  EXPECT_TRUE(lin.ok()) << lin.violations.front();
}

Task<void> bu_loop(AugmentedSnapshot& m, ProcessId me, std::size_t count,
                   std::vector<bool>& yields) {
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::size_t> comps{i % m.components()};
    std::vector<Val> vals{static_cast<Val>(100 * (me + 1) + i)};
    auto r = co_await m.BlockUpdate(me, comps, vals);
    yields.push_back(r.yielded);
  }
}

TEST(Augmented, Q1NeverYields) {
  // Theorem 20: all Block-Updates by q1 are atomic.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Scheduler sched;
    AugmentedSnapshot m(sched, "M", 3, 3);
    std::vector<bool> y0;
    std::vector<bool> y1;
    std::vector<bool> y2;
    sched.spawn(bu_loop(m, 0, 8, y0), "q1");
    sched.spawn(bu_loop(m, 1, 8, y1), "q2");
    sched.spawn(bu_loop(m, 2, 8, y2), "q3");
    RandomAdversary adv(seed);
    ASSERT_TRUE(sched.run(adv));
    for (bool y : y0) {
      EXPECT_FALSE(y) << "q1 yielded under seed " << seed;
    }
    auto lin = aug::linearize(m.log(), 3);
    EXPECT_TRUE(lin.ok()) << "seed " << seed << ": " << lin.violations.front();
  }
}

TEST(Augmented, YieldRequiresSmallerIdInterference) {
  // Force q2 to yield: q2 scans (line 2), q1 completes a whole Block-Update,
  // q2 continues and must observe it at line 8.
  Scheduler sched;
  AugmentedSnapshot m(sched, "M", 2, 2);
  std::vector<bool> y0;
  std::vector<bool> y1;
  sched.spawn(bu_loop(m, 0, 1, y0), "q1");
  sched.spawn(bu_loop(m, 1, 1, y1), "q2");
  ScriptedAdversary adv({1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1});
  EXPECT_TRUE(sched.run(adv));
  ASSERT_EQ(y1.size(), 1u);
  EXPECT_TRUE(y1[0]);
  ASSERT_EQ(y0.size(), 1u);
  EXPECT_FALSE(y0[0]);
  auto lin = aug::linearize(m.log(), 2);
  EXPECT_TRUE(lin.ok()) << lin.violations.front();
}

Task<void> mixed_loop(AugmentedSnapshot& m, ProcessId me, std::size_t rounds,
                      std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < rounds; ++i) {
    if (rng() % 2 == 0) {
      co_await m.Scan(me);
    } else {
      std::size_t r = 1 + rng() % m.components();
      std::vector<std::size_t> comps;
      std::vector<Val> vals;
      for (std::size_t j = 0; j < m.components() && comps.size() < r; ++j) {
        if (rng() % 2 == 0 || m.components() - j == r - comps.size()) {
          comps.push_back(j);
          vals.push_back(static_cast<Val>(1000 * (me + 1) + 10 * i + j));
        }
      }
      co_await m.BlockUpdate(me, comps, vals);
    }
  }
}

class AugmentedStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AugmentedStress, RandomScheduleLinearizes) {
  const std::uint64_t seed = GetParam();
  Scheduler sched;
  const std::size_t f = 2 + seed % 3;
  const std::size_t m_comps = 2 + seed % 4;
  AugmentedSnapshot m(sched, "M", m_comps, f);
  for (ProcessId p = 0; p < f; ++p) {
    sched.spawn(mixed_loop(m, p, 6, seed * 31 + p), "q" + std::to_string(p + 1));
  }
  RandomAdversary adv(seed);
  ASSERT_TRUE(sched.run(adv));
  auto lin = aug::linearize(m.log(), m_comps);
  EXPECT_TRUE(lin.ok()) << "seed " << seed << ": " << lin.violations.front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AugmentedStress,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(Augmented, AblationsBreakExactlyTheirLemmas) {
  // E12 in miniature: the healthy object linearizes every contended run;
  // removing the yield check produces Lemma 11 violations that the
  // linearizer catches.
  auto violating = [](aug::AugmentedAblation ab) {
    std::size_t bad = 0;
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
      Scheduler sched;
      AugmentedSnapshot m(sched, "M", 2, 3, ab);
      std::vector<bool> y0, y1, y2;
      sched.spawn(bu_loop(m, 0, 5, y0), "q1");
      sched.spawn(bu_loop(m, 1, 5, y1), "q2");
      sched.spawn(bu_loop(m, 2, 5, y2), "q3");
      RandomAdversary adv(seed);
      if (!sched.run(adv, 100'000, false)) {
        continue;
      }
      if (!aug::linearize(m.log(), 2).ok()) {
        ++bad;
      }
    }
    return bad;
  };
  EXPECT_EQ(violating(aug::AugmentedAblation{}), 0u);
  aug::AugmentedAblation no_yield;
  no_yield.yield_check = false;
  EXPECT_GT(violating(no_yield), 0u);
}

TEST(Augmented, RejectsMalformedBlockUpdates) {
  Scheduler sched;
  AugmentedSnapshot m(sched, "M", 2, 1);
  auto bad = [](AugmentedSnapshot& mm) -> Task<void> {
    std::vector<std::size_t> comps{0, 0};  // duplicate components
    std::vector<Val> vals{1, 2};
    co_await mm.BlockUpdate(0, comps, vals);
  };
  sched.spawn(bad(m), "q1");
  RoundRobinAdversary adv;
  EXPECT_THROW(sched.run(adv), std::invalid_argument);
}

}  // namespace
}  // namespace revisim
