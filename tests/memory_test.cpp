// Tests for the from-registers snapshot substrates: the Afek et al.
// single-writer snapshot and the tagged double-collect multi-writer
// snapshot, validated against the exact linearizability checker; plus a
// negative control showing the checker rejects a genuinely non-atomic
// "single collect" object.
#include <gtest/gtest.h>

#include "src/check/lincheck.h"
#include "src/memory/afek_snapshot.h"
#include "src/memory/collect_snapshot.h"
#include "src/memory/register.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"

namespace revisim {
namespace {

using check::HistOp;
using check::is_linearizable_snapshot;
using mem::AfekSnapshot;
using mem::CollectSnapshot;
using runtime::ProcessId;
using runtime::RandomAdversary;
using runtime::RoundRobinAdversary;
using runtime::Scheduler;
using runtime::Task;

Task<void> afek_worker(AfekSnapshot& s, Scheduler& sched, ProcessId me,
                       std::size_t rounds, std::uint64_t seed,
                       std::vector<HistOp>& hist) {
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < rounds; ++i) {
    HistOp h;
    h.process = me;
    h.invoke = sched.total_steps();
    if (rng() % 2 == 0) {
      h.is_scan = true;
      h.result = co_await s.scan(me);
    } else {
      h.component = me;  // single-writer: own component
      h.value = static_cast<Val>(100 * (me + 1) + i);
      co_await s.update(me, h.value);
    }
    h.respond = sched.total_steps();
    hist.push_back(h);
  }
}

TEST(AfekSnapshot, SequentialSemantics) {
  Scheduler sched;
  AfekSnapshot s(sched, "S", 2);
  std::vector<HistOp> hist;
  sched.spawn(afek_worker(s, sched, 0, 6, 7, hist), "q1");
  RoundRobinAdversary adv;
  ASSERT_TRUE(sched.run(adv));
  EXPECT_TRUE(is_linearizable_snapshot(hist, 2));
}

class AfekStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AfekStress, RandomSchedulesLinearize) {
  const std::uint64_t seed = GetParam();
  Scheduler sched;
  const std::size_t n = 2 + seed % 2;
  AfekSnapshot s(sched, "S", n);
  std::vector<HistOp> hist;
  for (ProcessId p = 0; p < n; ++p) {
    sched.spawn(afek_worker(s, sched, p, 4, seed * 13 + p, hist),
                "q" + std::to_string(p + 1));
  }
  RandomAdversary adv(seed);
  ASSERT_TRUE(sched.run(adv));
  EXPECT_TRUE(is_linearizable_snapshot(hist, n)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AfekStress,
                         ::testing::Range<std::uint64_t>(0, 40));

Task<void> collect_worker(CollectSnapshot& s, Scheduler& sched, ProcessId me,
                          std::size_t rounds, std::uint64_t seed,
                          std::vector<HistOp>& hist) {
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < rounds; ++i) {
    HistOp h;
    h.process = me;
    h.invoke = sched.total_steps();
    if (rng() % 2 == 0) {
      h.is_scan = true;
      h.result = co_await s.scan();
    } else {
      h.component = rng() % s.components();
      h.value = static_cast<Val>(100 * (me + 1) + i);
      co_await s.update(me, h.component, h.value);
    }
    h.respond = sched.total_steps();
    hist.push_back(h);
  }
}

class CollectStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollectStress, RandomSchedulesLinearize) {
  const std::uint64_t seed = GetParam();
  Scheduler sched;
  CollectSnapshot s(sched, "S", 2 + seed % 3, 3);
  std::vector<HistOp> hist;
  for (ProcessId p = 0; p < 3; ++p) {
    sched.spawn(collect_worker(s, sched, p, 4, seed * 17 + p, hist),
                "q" + std::to_string(p + 1));
  }
  RandomAdversary adv(seed);
  ASSERT_TRUE(sched.run(adv));
  EXPECT_TRUE(is_linearizable_snapshot(hist, s.components())) << "seed "
                                                              << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectStress,
                         ::testing::Range<std::uint64_t>(0, 40));

// Negative control: a single collect (no double-collect certification) is
// not atomic, and the checker must say so for the classic bad interleaving.
Task<void> bad_scan(std::vector<std::unique_ptr<mem::Register>>& regs,
                    Scheduler& sched, std::vector<HistOp>& hist) {
  HistOp h;
  h.process = 0;
  h.is_scan = true;
  h.invoke = sched.total_steps();
  View out(regs.size());
  for (std::size_t j = 0; j < regs.size(); ++j) {
    out[j] = co_await regs[j]->read();
  }
  h.result = std::move(out);
  h.respond = sched.total_steps();
  hist.push_back(h);
}

Task<void> three_writes(std::vector<std::unique_ptr<mem::Register>>& regs,
                        Scheduler& sched, std::vector<HistOp>& hist) {
  // r0 := 1, then r0 := 2, then r1 := 9.
  const std::vector<std::pair<std::size_t, Val>> writes = {
      {0, 1}, {0, 2}, {1, 9}};
  for (auto [j, v] : writes) {
    HistOp h;
    h.process = 1;
    h.invoke = sched.total_steps();
    h.component = j;
    h.value = v;
    co_await regs[j]->write(v);
    h.respond = sched.total_steps();
    hist.push_back(h);
  }
}

TEST(Lincheck, RejectsSingleCollect) {
  Scheduler sched;
  std::vector<std::unique_ptr<mem::Register>> regs;
  regs.push_back(std::make_unique<mem::Register>(sched, "r0"));
  regs.push_back(std::make_unique<mem::Register>(sched, "r1"));
  std::vector<HistOp> hist;
  sched.spawn(bad_scan(regs, sched, hist), "q1");
  sched.spawn(three_writes(regs, sched, hist), "q2");
  // q2 writes r0=1; q1's collect reads r0 (sees 1); q2 overwrites r0=2 and
  // then writes r1=9; q1 reads r1 (sees 9).  The collect returns (1, 9),
  // but r0=1 and r1=9 never coexist: not linearizable.
  runtime::ScriptedAdversary adv({1, 0, 1, 1, 0});
  ASSERT_TRUE(sched.run(adv));
  EXPECT_FALSE(is_linearizable_snapshot(hist, 2));
}

TEST(Lincheck, AcceptsSequentialHistories) {
  std::vector<HistOp> hist;
  HistOp w;
  w.process = 0;
  w.invoke = 0;
  w.respond = 1;
  w.component = 0;
  w.value = 5;
  hist.push_back(w);
  HistOp r;
  r.process = 1;
  r.invoke = 2;
  r.respond = 3;
  r.is_scan = true;
  r.result = View{5, std::nullopt};
  hist.push_back(r);
  EXPECT_TRUE(is_linearizable_snapshot(hist, 2));
  // Wrong result: not linearizable.
  hist[1].result = View{std::nullopt, std::nullopt};
  EXPECT_FALSE(is_linearizable_snapshot(hist, 2));
}

}  // namespace
}  // namespace revisim
