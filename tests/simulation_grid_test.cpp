// Cross-product property sweep of the revisionist simulation: protocols x
// (f, d) shapes x adversaries x seeds.  Every cell asserts the paper's
// unconditional guarantees - wait-freedom (Lemma 32), replay validity
// (Lemma 26), output validity for colorless tasks - while agreement itself
// is allowed to break on starved instances (that is the theorem's point).
#include <gtest/gtest.h>

#include <tuple>

#include "src/protocols/approx_agreement.h"
#include "src/protocols/racing_agreement.h"
#include "src/runtime/adversary.h"
#include "src/sim/driver.h"
#include "src/sim/replay.h"

namespace revisim {
namespace {

using runtime::Scheduler;

struct GridCase {
  std::size_t f;        // simulators
  std::size_t d;        // direct simulators
  std::size_t m;        // components of the starved protocol
  std::size_t n_extra;  // simulated processes beyond the minimum
  bool burst;           // burst vs uniform random adversary
  bool registers = false;  // run on the register substrate
};

class SimulationGrid
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SimulationGrid, InvariantsHoldEverywhere) {
  static const GridCase kCases[] = {
      {1, 0, 1, 0, false}, {1, 0, 2, 0, false}, {1, 0, 3, 1, false},
      {2, 0, 1, 0, false}, {2, 0, 2, 0, false}, {2, 0, 2, 1, true},
      {2, 1, 2, 0, false}, {2, 1, 3, 0, true},  {3, 0, 2, 0, false},
      {3, 1, 2, 0, true},  {3, 2, 2, 1, false}, {4, 2, 2, 0, true},
      {2, 0, 2, 0, false, true},  // full reduction on plain registers
      {2, 1, 2, 0, true, true},   // ... with a direct simulator, bursty
      {3, 0, 2, 0, false, true},
  };
  const auto [case_idx, seed] = GetParam();
  const GridCase& c = kCases[case_idx];
  const std::size_t n = (c.f - c.d) * c.m + c.d + c.n_extra;

  proto::RacingAgreement protocol(n, c.m);
  std::vector<Val> inputs;
  for (std::size_t i = 0; i < c.f; ++i) {
    inputs.push_back(static_cast<Val>(100 + i));
  }

  Scheduler sched;
  sim::SimulationDriver::Options opt;
  opt.d = c.d;
  opt.n = n;
  if (c.registers) {
    opt.substrate = sim::SimulationDriver::Substrate::kRegisters;
  }
  sim::SimulationDriver driver(sched, protocol, inputs, opt);

  std::unique_ptr<runtime::Adversary> adv;
  if (c.burst) {
    adv = std::make_unique<runtime::BurstAdversary>(seed, 12);
  } else {
    adv = std::make_unique<runtime::RandomAdversary>(seed);
  }
  // Wait-freedom: the run must complete.
  ASSERT_TRUE(driver.run(*adv, 30'000'000))
      << "case " << case_idx << " seed " << seed;

  // Replay validity: the run corresponds to a legal protocol execution.
  auto report = sim::validate_simulation(driver);
  ASSERT_TRUE(report.ok()) << "case " << case_idx << " seed " << seed << ": "
                           << report.violations.front();

  // Output validity: every output is some simulator's input.
  for (Val y : driver.outputs()) {
    bool found = false;
    for (Val x : inputs) {
      found = found || x == y;
    }
    EXPECT_TRUE(found) << "case " << case_idx << " seed " << seed;
  }

  // Structural sanity of the stats.
  for (runtime::ProcessId i = 0; i < c.f - c.d; ++i) {
    const auto* st = driver.covering_stats(i);
    ASSERT_NE(st, nullptr);
    EXPECT_LE(st->scans, st->block_updates + 1);
  }
  for (runtime::ProcessId i = c.f - c.d; i < c.f; ++i) {
    ASSERT_NE(driver.direct_stats(i), nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimulationGrid,
    ::testing::Combine(::testing::Range(0, 15),
                       ::testing::Range<std::uint64_t>(0, 8)));

class ApproxSimulationGrid
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(ApproxSimulationGrid, StarvedApproxAgreementUnderSimulation) {
  const auto [eps, seed] = GetParam();
  proto::ApproxAgreement protocol(4, 2, eps);
  Scheduler sched;
  sim::SimulationDriver driver(sched, protocol,
                               {to_fixed(0.0), to_fixed(1.0)});
  runtime::RandomAdversary adv(seed);
  ASSERT_TRUE(driver.run(adv, 30'000'000));
  auto report = sim::validate_simulation(driver);
  ASSERT_TRUE(report.ok()) << report.violations.front();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ApproxSimulationGrid,
    ::testing::Combine(::testing::Values(0.1, 1e-3, 1e-6),
                       ::testing::Range<std::uint64_t>(0, 10)));

}  // namespace
}  // namespace revisim
