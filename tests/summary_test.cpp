// Tests for the run-summary renderer and the driver's reporting accessors.
#include <gtest/gtest.h>

#include "src/protocols/racing_agreement.h"
#include "src/runtime/adversary.h"
#include "src/sim/driver.h"
#include "src/sim/summary.h"

namespace revisim {
namespace {

TEST(Summary, CompleteRunMentionsEveryActor) {
  runtime::Scheduler sched;
  proto::RacingAgreement protocol(5, 2);
  sim::SimulationDriver::Options opt;
  opt.d = 1;
  sim::SimulationDriver driver(sched, protocol, {1, 2, 3}, opt);
  runtime::RandomAdversary adv(3);
  ASSERT_TRUE(driver.run(adv, 10'000'000));
  const std::string text = sim::summarize(driver);
  for (const char* needle :
       {"racing(n=5,m=2)", "q1", "q2", "q3", "p5", "replay validation",
        "legal execution"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle << "\n" << text;
  }
  // Direct simulator line shows no revision bracket fields.
  EXPECT_NE(text.find("Block-Updates]"), std::string::npos);
}

TEST(Summary, PartialRunReportsUnfinished) {
  runtime::Scheduler sched;
  proto::RacingAgreement protocol(4, 2);
  sim::SimulationDriver driver(sched, protocol, {1, 2});
  runtime::SoloAdversary adv(0);  // q2 never runs
  driver.run(adv, 1'000'000);
  EXPECT_TRUE(driver.finished(0));
  EXPECT_FALSE(driver.finished(1));
  const std::string text = sim::summarize(driver, /*validate=*/true);
  EXPECT_NE(text.find("unfinished"), std::string::npos);
  // Partial runs still validate (the replayer handles incomplete ops).
  EXPECT_NE(text.find("legal execution"), std::string::npos) << text;
}

TEST(Summary, OutputsAccessorMatchesSummary) {
  runtime::Scheduler sched;
  proto::RacingAgreement protocol(2, 1);
  sim::SimulationDriver driver(sched, protocol, {7, 9});
  runtime::RoundRobinAdversary adv;
  ASSERT_TRUE(driver.run(adv));
  auto outs = driver.outputs();
  ASSERT_EQ(outs.size(), 2u);
  const std::string text = sim::summarize(driver);
  for (Val y : outs) {
    EXPECT_NE(text.find("output " + std::to_string(y)), std::string::npos);
  }
}

}  // namespace
}  // namespace revisim
