// Tests for the closed-form bounds of §4.5/§4.6.
#include <gtest/gtest.h>

#include <cmath>

#include "src/bounds/bounds.h"

namespace revisim {
namespace {

using namespace revisim::bounds;

TEST(Bounds, Choose) {
  EXPECT_EQ(choose(5, 2), 10u);
  EXPECT_EQ(choose(10, 0), 1u);
  EXPECT_EQ(choose(10, 10), 1u);
  EXPECT_EQ(choose(3, 5), 0u);
  EXPECT_EQ(choose(64, 32), kSaturated);  // > 2^64
}

TEST(Bounds, ARecurrence) {
  // a(1) = 0; a(2) = (C(m,1)+1)*0 + C(m,1) = m; a(3) = (C(m,2)+1)*m + C(m,2).
  EXPECT_EQ(a_bound(1, 4), 0u);
  EXPECT_EQ(a_bound(2, 4), 4u);
  EXPECT_EQ(a_bound(3, 4), (6u + 1u) * 4u + 6u);
  // Closed-form sanity: a(r) <= 2^{m(r-1)} for small cases.
  for (std::size_t m = 2; m <= 5; ++m) {
    for (std::size_t r = 1; r <= m; ++r) {
      const double bound = std::pow(2.0, double(m) * double(r - 1));
      EXPECT_LE(static_cast<double>(a_bound(r, m)), bound)
          << "m=" << m << " r=" << r;
    }
  }
}

TEST(Bounds, BGrowth) {
  // Lemma 30's recurrence (the paper's closed form
  // a(m)(a(m-1)+1)^{i-1} disagrees with it; see bounds.cpp):
  //   b(1) = a(m); b(i) = (a(m-1)+1) sum_{j<i} b(j) + a(m).
  const std::uint64_t am = a_bound(3, 3);
  const std::uint64_t am1 = a_bound(2, 3);
  EXPECT_EQ(b_bound(1, 3), am);
  EXPECT_EQ(b_bound(2, 3), (am1 + 1) * am + am);
  EXPECT_EQ(b_bound(3, 3), (am1 + 1) * (am + b_bound(2, 3)) + am);
  // Monotone in i.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_LE(b_bound(i, 3), b_bound(i + 1, 3));
  }
}

TEST(Bounds, StepBound) {
  EXPECT_EQ(covering_step_bound(2, 2), (2 * 2 + 7) * b_bound(2, 2) + 3);
  EXPECT_EQ(log2_coarse_step_bound(2, 3), 18.0);
}

TEST(Bounds, KSetLowerMatchesPaperSpecialCases) {
  // Consensus (k = x = 1): exactly n registers.
  for (std::size_t n = 2; n <= 12; ++n) {
    EXPECT_EQ(kset_space_lower_bound(n, 1, 1), n);
    EXPECT_EQ(kset_space_upper_bound(n, 1, 1), n);  // tight
  }
  // (n-1)-set agreement with x = 1: exactly 2 registers.
  for (std::size_t n = 3; n <= 12; ++n) {
    EXPECT_EQ(kset_space_lower_bound(n, n - 1, 1), 2u);
    EXPECT_EQ(kset_space_upper_bound(n, n - 1, 1), n - (n - 1) + 1);
  }
  // Lower never exceeds upper.
  for (std::size_t n = 2; n <= 20; ++n) {
    for (std::size_t k = 1; k < n; ++k) {
      for (std::size_t x = 1; x <= k; ++x) {
        EXPECT_LE(kset_space_lower_bound(n, k, x),
                  kset_space_upper_bound(n, k, x))
            << n << " " << k << " " << x;
      }
    }
  }
  EXPECT_THROW(kset_space_lower_bound(3, 3, 1), std::invalid_argument);
  EXPECT_THROW(kset_space_lower_bound(5, 2, 3), std::invalid_argument);
}

TEST(Bounds, ApproxBounds) {
  // L = 0.5 log3(1/eps).
  EXPECT_NEAR(approx_step_lower_bound(1.0 / 9.0), 1.0, 1e-9);
  EXPECT_NEAR(approx_step_lower_bound(1.0 / 81.0), 2.0, 1e-9);
  // Corollary 34's floor(n/2)+1 term only dominates for astronomically
  // small epsilon (<= 3^-2048, beyond double range); at the smallest
  // representable epsilon the sqrt(log2(L/2)) term still rules: for n = 4,
  // L ~ 314 and sqrt(log2(157)) ~ 2.7, so the bound is 2.
  EXPECT_EQ(approx_space_lower_bound(4, 1e-300), 2u);
  // And for tiny n the floor(n/2)+1 term does dominate.
  EXPECT_EQ(approx_space_lower_bound(2, 1e-300), 2u);
  // For large epsilon the bound degenerates gracefully.
  EXPECT_GE(approx_space_lower_bound(100, 0.3), 1u);
  // Monotone in 1/eps for fixed large n.
  EXPECT_LE(approx_space_lower_bound(1000, 1e-6),
            approx_space_lower_bound(1000, 1e-30));
}

TEST(Bounds, TableRenders) {
  auto t = kset_bound_table(5);
  EXPECT_NE(t.find("lower"), std::string::npos);
  EXPECT_NE(t.find("\n  5   1   1   5   5\n"), std::string::npos);
}

}  // namespace
}  // namespace revisim
