// Protocol-level tests: exhaustive model checking of the consensus and k-set
// protocols on small instances, obstruction-freedom probes, randomized
// stress on larger instances, and the approximate-agreement halving
// invariant.  These are the substrate facts the reproduction's experiments
// build on (EXPERIMENTS.md E7, E10).
#include <gtest/gtest.h>

#include "src/check/protocol_check.h"
#include "src/protocols/approx_agreement.h"
#include "src/protocols/ca_consensus.h"
#include "src/protocols/racing_agreement.h"
#include "src/tasks/task_spec.h"

namespace revisim {
namespace {

using check::explore;
using check::ExploreOptions;
using check::stress;
using proto::ApproxAgreement;
using proto::CAConsensus;
using proto::GroupedKSet;
using proto::RacingAgreement;
using tasks::ApproxAgreementTask;
using tasks::KSetAgreement;

TEST(CAConsensus, SequentialSoloDecidesOwnInput) {
  CAConsensus p(3);
  proto::ProtocolRun run(p, {7, 8, 9});
  ASSERT_TRUE(run.run_solo(1, 1000));
  EXPECT_EQ(run.output(1), std::optional<Val>(8));
}

TEST(CAConsensus, ExhaustiveTwoProcesses) {
  // Full state-space proof for the instance: safety in every reachable
  // configuration and solo termination from every reachable configuration.
  CAConsensus p(2);
  KSetAgreement consensus(1);
  ExploreOptions opt;
  opt.solo_budget = 2000;
  opt.max_depth = 24;
  auto res = explore(p, {0, 1}, consensus, opt);
  EXPECT_TRUE(res.exhausted);
  EXPECT_FALSE(res.safety_violation) << *res.safety_violation;
  EXPECT_FALSE(res.termination_violation) << *res.termination_violation;
  EXPECT_GT(res.states_visited, 100u);
}

TEST(CAConsensus, ExhaustiveThreeProcessesSafetyOnly) {
  // n = 3 with termination probes at every state is expensive; check safety
  // exhaustively and termination on the initial configuration's subsets.
  CAConsensus p(3);
  KSetAgreement consensus(1);
  ExploreOptions opt;
  opt.check_termination = false;
  opt.max_states = 4'000'000;
  opt.max_depth = 18;
  auto res = explore(p, {0, 1, 1}, consensus, opt);
  EXPECT_TRUE(res.exhausted);
  EXPECT_FALSE(res.safety_violation) << *res.safety_violation;
}

TEST(CAConsensus, RandomizedStressManyProcesses) {
  CAConsensus p(6);
  KSetAgreement consensus(1);
  auto res = stress(p, {0, 1, 2, 3, 4, 5}, consensus, 300, 12345);
  EXPECT_EQ(res.violations, 0u) << *res.example;
  EXPECT_EQ(res.unfinished, 0u);  // random fair-ish schedules terminate
}

TEST(CAConsensus, SoloTerminationFromAdversarialMidStates) {
  // Obstruction-freedom probe: random partial runs, then solo completion.
  CAConsensus p(4);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    proto::ProtocolRun run(p, {3, 1, 4, 1});
    run.run_random(seed, 20 + seed % 60);  // partial execution
    for (std::size_t i = 0; i < 4; ++i) {
      proto::ProtocolRun probe = run;
      EXPECT_TRUE(probe.run_solo(i, 5000))
          << "process " << i << " stuck, seed " << seed;
    }
  }
}

TEST(GroupedKSet, ExhaustiveThreeProcessesTwoSet) {
  GroupedKSet p(3, 2);
  KSetAgreement task(2);
  ExploreOptions opt;
  opt.solo_budget = 2000;
  opt.x = 1;  // obstruction-freedom; x = 2 would be wait-free 2-process
              // consensus inside a group, which FLP forbids
  opt.max_depth = 14;
  auto res = explore(p, {5, 6, 7}, task, opt);
  EXPECT_TRUE(res.exhausted);
  EXPECT_FALSE(res.safety_violation) << *res.safety_violation;
  EXPECT_FALSE(res.termination_violation) << *res.termination_violation;
}

TEST(GroupedKSet, TwoSameGroupRunnersMayLivelock) {
  // Complementary negative probe: lockstep scheduling of two processes of
  // one consensus group must be able to run forever (otherwise the group
  // would solve wait-free 2-process consensus).  The checker detects this.
  GroupedKSet p(3, 2);  // group 0 = {0, 2}
  proto::ProtocolRun run(p, {5, 6, 7});
  EXPECT_FALSE(run.run_fair({0, 2}, 5'000));
}

TEST(Racing, FairSubsetsConvergeForEveryX) {
  // Conflict escalation adopts the maximum conflicting value, so processes
  // racing fairly merge values and terminate: racing instances are
  // x-obstruction-free-terminating for every x, which is what the
  // simulation's direct simulators rely on (Theorem 21, second case).
  for (std::size_t x = 1; x <= 4; ++x) {
    RacingAgreement p(4, 3);
    proto::ProtocolRun run(p, {1, 2, 3, 4});
    std::vector<std::size_t> set;
    for (std::size_t i = 0; i < x; ++i) {
      set.push_back(i);
    }
    EXPECT_TRUE(run.run_fair(set, 100'000)) << "x=" << x;
  }
}

TEST(GroupedKSet, StressFiveProcessesTwoSet) {
  GroupedKSet p(5, 2);
  KSetAgreement task(2);
  auto res = stress(p, {1, 2, 3, 4, 5}, task, 200, 777);
  EXPECT_EQ(res.violations, 0u) << *res.example;
}

TEST(Racing, SoloAlwaysDecides) {
  for (std::size_t m = 1; m <= 4; ++m) {
    RacingAgreement p(3, m);
    proto::ProtocolRun run(p, {4, 5, 6});
    EXPECT_TRUE(run.run_solo(2, 1000)) << "m=" << m;
    EXPECT_EQ(run.output(2), std::optional<Val>(6));
  }
}

TEST(Racing, ObstructionFreeFromEveryReachableState) {
  // Termination is what the reduction needs from racing instances, safe or
  // not; probe it exhaustively for a small space-starved instance.
  RacingAgreement p(3, 2);
  KSetAgreement two_set(2);  // 3 processes, 2 values max would be 2-set
  ExploreOptions opt;
  opt.solo_budget = 5000;
  opt.max_states = 500'000;
  opt.max_depth = 12;
  opt.check_termination = true;
  auto res = explore(p, {0, 1, 2}, two_set, opt);
  // Safety may or may not fail (that is E7's subject); termination must not.
  EXPECT_FALSE(res.termination_violation) << *res.termination_violation;
}

TEST(Racing, SafetyBoundaryConsensusTwoProcs) {
  // m = 1 must admit a consensus violation (paper: 1 register never
  // suffices); the checker should find one.
  RacingAgreement starved(2, 1);
  KSetAgreement consensus(1);
  ExploreOptions opt;
  opt.check_termination = false;
  opt.max_depth = 30;
  auto res1 = explore(starved, {0, 1}, consensus, opt);
  EXPECT_TRUE(res1.safety_violation.has_value())
      << "racing with m=1 unexpectedly safe for 2-process consensus";
}

TEST(ApproxAgreement, SequentialConvergence) {
  ApproxAgreement p(3, 3, 0.01);
  proto::ProtocolRun run(p,
                         {to_fixed(0.0), to_fixed(1.0), to_fixed(0.5)});
  ASSERT_TRUE(run.run_fair({0, 1, 2}, 100'000));
  ApproxAgreementTask task(0.01);
  auto v = task.validate({to_fixed(0.0), to_fixed(1.0), to_fixed(0.5)},
                         run.outputs());
  EXPECT_TRUE(v.ok) << v.reason;
}

class ApproxStress
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(ApproxStress, RandomSchedulesStayWithinEpsilon) {
  const auto [n, eps] = GetParam();
  ApproxAgreement p(n, n, eps);
  ApproxAgreementTask task(eps);
  std::vector<Val> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(to_fixed(static_cast<double>(i % 2)));  // worst spread
  }
  auto res = stress(p, inputs, task, 150, 42 + n, 500'000);
  EXPECT_EQ(res.violations, 0u) << *res.example;
  EXPECT_EQ(res.unfinished, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ApproxStress,
    ::testing::Values(std::make_tuple(std::size_t{2}, 0.25),
                      std::make_tuple(std::size_t{3}, 0.1),
                      std::make_tuple(std::size_t{4}, 0.01),
                      std::make_tuple(std::size_t{5}, 0.001)));

TEST(ApproxAgreement, WaitFreeEvenWhenSpaceStarved) {
  // m < n: correctness degrades, wait-freedom must not.
  ApproxAgreement p(4, 2, 0.1);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    proto::ProtocolRun run(
        p, {to_fixed(0.0), to_fixed(1.0), to_fixed(1.0), to_fixed(0.0)});
    EXPECT_TRUE(run.run_random(seed, 500'000)) << "seed " << seed;
  }
}

TEST(ApproxAgreement, ValidityUnderSoloRuns) {
  ApproxAgreement p(2, 2, 0.05);
  proto::ProtocolRun run(p, {to_fixed(0.25), to_fixed(0.75)});
  ASSERT_TRUE(run.run_solo(0, 10'000));
  // A solo run must output its own input (no other values visible).
  const double out = static_cast<double>(*run.output(0)) /
                     static_cast<double>(Val{2} << 32);
  EXPECT_NEAR(out, 0.25, 1e-6);
}

TEST(ProtocolRun, StateKeyDistinguishesConfigurations) {
  CAConsensus p(2);
  proto::ProtocolRun a(p, {0, 1});
  proto::ProtocolRun b = a;
  EXPECT_EQ(a.state_key(), b.state_key());
  b.step(0);
  EXPECT_NE(a.state_key(), b.state_key());
}

}  // namespace
}  // namespace revisim
