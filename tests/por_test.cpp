// Sleep-set partial-order reduction: verdict/witness parity with the
// unreduced explorer, composition with dedupe, crash branching and the
// parallel explorer, and the reduction itself.
//
// POR's contract (ScheduleExploreOptions::por): explore exactly the
// lexicographically least representative of every Mazurkiewicz trace.  For
// trace-invariant verdicts - every world here decides on the final state of
// its leaf - that means the violation-found outcome AND the lex-smallest
// witness are preserved exactly, while `executions` shrinks by the number
// of step-swap-equivalent schedules skipped.  Opaque-footprint worlds (the
// augmented snapshot) must come out bit-identical to the unreduced walk:
// opacity means "never prune against me", not "explore differently".
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/check/model_check.h"
#include "src/check/parallel_explore.h"
#include "src/memory/collect_snapshot.h"
#include "src/memory/register.h"
#include "src/runtime/scheduler.h"

namespace revisim {
namespace {

using check::ExplorableWorld;
using check::explore_schedules;
using check::parallel_explore_schedules;
using check::ParallelExploreOptions;
using check::ScheduleExploreOptions;
using check::ScheduleExploreResult;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::StepKind;
using runtime::Task;

Task<void> own_script(mem::TypedRegister<int>& r, std::size_t writes) {
  for (std::size_t i = 1; i <= writes; ++i) {
    co_await r.write(static_cast<int>(i));
  }
}

// Processes touching disjoint registers: every pair of steps from distinct
// processes is independent, except each process's *first* step, which is
// opaque (an unstarted process has nothing poised to introspect).  The
// verdict is a predicate of the final registers, evaluated at complete and
// truncated leaves alike, so it is trace-invariant by construction.
class DisjointWorld final : public ExplorableWorld {
 public:
  DisjointWorld(std::size_t procs, std::size_t writes,
                std::vector<int> planted = {})
      : planted_(std::move(planted)) {
    regs_.reserve(procs);
    for (std::size_t p = 0; p < procs; ++p) {
      regs_.push_back(std::make_unique<mem::TypedRegister<int>>(
          sched_, "r" + std::to_string(p), 0));
    }
    for (std::size_t p = 0; p < procs; ++p) {
      sched_.spawn(own_script(*regs_[p], writes), "q");
    }
  }

  Scheduler& scheduler() override { return sched_; }

  std::optional<std::string> verdict(bool /*complete*/) override {
    if (planted_.size() == regs_.size()) {
      bool match = true;
      for (std::size_t p = 0; p < regs_.size(); ++p) {
        match = match && regs_[p]->peek() == planted_[p];
      }
      if (match) {
        return "planted register state";
      }
    }
    return std::nullopt;
  }

 private:
  Scheduler sched_;
  std::vector<std::unique_ptr<mem::TypedRegister<int>>> regs_;
  std::vector<int> planted_;
};

auto disjoint_factory(std::size_t procs, std::size_t writes,
                      std::vector<int> planted = {}) {
  return [procs, writes, planted = std::move(planted)] {
    return std::make_unique<DisjointWorld>(procs, writes, planted);
  };
}

// Mixed sharing: every process writes its own register, then a shared one,
// then its own again, so the tree holds both genuinely independent and
// genuinely dependent step pairs.  Verdict: a specific reachable final
// state (trace-invariant).
class MixedWorld final : public ExplorableWorld {
 public:
  explicit MixedWorld(std::size_t procs) {
    shared_ = std::make_unique<mem::TypedRegister<int>>(sched_, "s", 0);
    regs_.reserve(procs);
    for (std::size_t p = 0; p < procs; ++p) {
      regs_.push_back(std::make_unique<mem::TypedRegister<int>>(
          sched_, "r" + std::to_string(p), 0));
    }
    for (std::size_t p = 0; p < procs; ++p) {
      sched_.spawn(script(*regs_[p], *shared_, static_cast<int>(p) + 1), "q");
    }
  }

  static Task<void> script(mem::TypedRegister<int>& own,
                           mem::TypedRegister<int>& shared, int mark) {
    co_await own.write(mark);
    co_await shared.write(mark);
    co_await own.write(mark + 100);
  }

  Scheduler& scheduler() override { return sched_; }

  std::optional<std::string> verdict(bool /*complete*/) override {
    // Process 1 finished while process 0's shared write landed after
    // process 1's: reachable, but not on the DFS-first schedule, so the
    // explorer has to walk several executions before the witness.
    if (shared_->peek() == 1 && regs_[1]->peek() == 102) {
      return "p1 overtaken on the shared register";
    }
    return std::nullopt;
  }

 private:
  Scheduler sched_;
  std::unique_ptr<mem::TypedRegister<int>> shared_;
  std::vector<std::unique_ptr<mem::TypedRegister<int>>> regs_;
};

// Collect-snapshot writers on distinct cells: POR must see through the
// from-registers construction (the cells keep precise footprints; §2's
// snapshot-vs-register interimplementability evidence).
class CollectWorld final : public ExplorableWorld {
 public:
  CollectWorld() : snap_(sched_, "C", 3, 3) {
    for (ProcessId p = 0; p < 3; ++p) {
      sched_.spawn(script(snap_, p), "q");
    }
  }

  // Two updates per writer: a process's *first* step is opaque (nothing is
  // poised to introspect before it starts), so single-step writers would
  // earn no reduction at all; the second updates are precise disjoint
  // register writes and must commute.
  static Task<void> script(mem::CollectSnapshot& s, ProcessId me) {
    co_await s.update(me, me, Val(static_cast<int>(me)));
    co_await s.update(me, me, Val(static_cast<int>(me) + 10));
  }

  Scheduler& scheduler() override { return sched_; }

  std::optional<std::string> verdict(bool complete) override {
    if (complete) {
      for (std::size_t j = 0; j < 3; ++j) {
        auto cell = snap_.peek(j);
        if (!cell || *cell != Val(static_cast<int>(j) + 10)) {
          return "lost update in cell " + std::to_string(j);
        }
      }
    }
    return std::nullopt;
  }

 private:
  Scheduler sched_;
  mem::CollectSnapshot snap_;
};

// Small augmented-snapshot world (every step opaque by design).
class AugWorld final : public ExplorableWorld {
 public:
  AugWorld() {
    m_ = std::make_unique<aug::AugmentedSnapshot>(sched_, "M", 2, 2);
    sched_.spawn(script(*m_, 0), "q1");
    sched_.spawn(script(*m_, 1), "q2");
  }

  static Task<void> script(aug::AugmentedSnapshot& m, ProcessId me) {
    std::vector<std::size_t> comps{std::size_t(me)};
    std::vector<Val> vals{Val(static_cast<int>(me) + 1)};
    co_await m.BlockUpdate(me, comps, vals);
  }

  Scheduler& scheduler() override { return sched_; }

  std::optional<std::string> verdict(bool /*complete*/) override {
    auto lin = aug::linearize(m_->log(), 2);
    if (!lin.ok()) {
      return lin.violations.front();
    }
    return std::nullopt;
  }

 private:
  Scheduler sched_;
  std::unique_ptr<aug::AugmentedSnapshot> m_;
};

void expect_parity(const ScheduleExploreResult& por,
                   const ScheduleExploreResult& plain, const std::string& what) {
  EXPECT_EQ(por.exhausted, plain.exhausted) << what;
  EXPECT_EQ(por.violation, plain.violation) << what;
  EXPECT_EQ(por.witness, plain.witness) << what;
  EXPECT_LE(por.executions, plain.executions) << what;
}

// --- serial parity and reduction ----------------------------------------

TEST(Por, TwoByTwoDisjointAnchor) {
  // 2 processes x 2 disjoint writes: 6 interleavings, 4 Mazurkiewicz traces
  // (the opaque first steps are dependent with everything; only the second
  // steps commute).  Sleep sets explore exactly one representative each.
  ScheduleExploreOptions opt;
  auto plain = explore_schedules(disjoint_factory(2, 2), opt);
  ASSERT_TRUE(plain.exhausted);
  EXPECT_EQ(plain.executions, 6u);
  opt.por = true;
  auto por = explore_schedules(disjoint_factory(2, 2), opt);
  expect_parity(por, plain, "2x2 disjoint");
  EXPECT_EQ(por.executions, 4u);
  EXPECT_GT(por.por_skipped, 0u);
  EXPECT_GT(por.footprint_bytes, 0u);
}

TEST(Por, DisjointThreeProcsLargeReduction) {
  ScheduleExploreOptions opt;
  auto plain = explore_schedules(disjoint_factory(3, 4), opt);
  ASSERT_TRUE(plain.exhausted);
  EXPECT_EQ(plain.executions, 34650u);  // 12! / (4!)^3
  opt.por = true;
  auto por = explore_schedules(disjoint_factory(3, 4), opt);
  expect_parity(por, plain, "3x4 disjoint");
  // The reduction target the bench gates on is 2x; disjoint-access worlds
  // collapse far harder than that.
  EXPECT_LT(por.executions * 10, plain.executions);
}

TEST(Por, PlantedFinalStateKeepsLexSmallestWitness) {
  // Violation on a final register state only some truncated leaves reach:
  // both processes stepped exactly twice when the depth bound cut in.
  ScheduleExploreOptions opt;
  opt.max_steps = 4;  // truncate: leaves with differing partial states
  auto plain = explore_schedules(disjoint_factory(2, 3, {2, 2}), opt);
  ASSERT_TRUE(plain.violation.has_value());
  opt.por = true;
  auto por = explore_schedules(disjoint_factory(2, 3, {2, 2}), opt);
  expect_parity(por, plain, "planted disjoint");
}

TEST(Por, MixedSharingKeepsLexSmallestWitness) {
  ScheduleExploreOptions opt;
  auto plain = explore_schedules(
      [] { return std::make_unique<MixedWorld>(2); }, opt);
  ASSERT_TRUE(plain.violation.has_value());
  opt.por = true;
  auto por = explore_schedules(
      [] { return std::make_unique<MixedWorld>(2); }, opt);
  expect_parity(por, plain, "mixed 2");
  EXPECT_LT(por.executions, plain.executions);
}

TEST(Por, MixedThreeProcsNoViolationParity) {
  ScheduleExploreOptions opt;
  opt.max_steps = 7;  // truncated leaves as well as complete ones
  auto plain = explore_schedules(
      [] { return std::make_unique<MixedWorld>(3); }, opt);
  opt.por = true;
  auto por = explore_schedules(
      [] { return std::make_unique<MixedWorld>(3); }, opt);
  expect_parity(por, plain, "mixed 3 truncated");
  EXPECT_LT(por.executions, plain.executions);
  // Shared-register writes conflict with sleeping own-register writers'
  // entries often enough that some sleep entries get woken.
  EXPECT_GT(por.dependent_wakeups, 0u);
}

TEST(Por, CollectSnapshotWritersReduce) {
  ScheduleExploreOptions opt;
  auto plain = explore_schedules(
      [] { return std::make_unique<CollectWorld>(); }, opt);
  ASSERT_TRUE(plain.exhausted);
  ASSERT_FALSE(plain.violation);
  opt.por = true;
  auto por = explore_schedules(
      [] { return std::make_unique<CollectWorld>(); }, opt);
  expect_parity(por, plain, "collect");
  EXPECT_LT(por.executions, plain.executions);
}

TEST(Por, OpaqueAugmentedWorldIsUntouched) {
  // Every augmented-H step is opaque, so POR must walk the identical tree:
  // same executions, zero skips.
  ScheduleExploreOptions opt;
  auto plain = explore_schedules([] { return std::make_unique<AugWorld>(); },
                                 opt);
  ASSERT_TRUE(plain.exhausted);
  ASSERT_FALSE(plain.violation);
  opt.por = true;
  auto por = explore_schedules([] { return std::make_unique<AugWorld>(); },
                               opt);
  EXPECT_EQ(por.executions, plain.executions);
  EXPECT_EQ(por.por_skipped, 0u);
  EXPECT_EQ(por.exhausted, plain.exhausted);
}

// --- crash branching -----------------------------------------------------

TEST(Por, CrashBranchingParity) {
  ScheduleExploreOptions opt;
  opt.max_crashes = 1;
  opt.max_steps = 8;
  auto plain = explore_schedules(
      [] { return std::make_unique<MixedWorld>(2); }, opt);
  opt.por = true;
  auto por = explore_schedules(
      [] { return std::make_unique<MixedWorld>(2); }, opt);
  expect_parity(por, plain, "mixed 2 crash");
  EXPECT_LT(por.executions, plain.executions);  // still reduces under crashes
}

TEST(Por, CrashBranchingDisjointParity) {
  ScheduleExploreOptions opt;
  opt.max_crashes = 1;
  opt.max_steps = 5;
  auto plain = explore_schedules(disjoint_factory(2, 2), opt);
  opt.por = true;
  auto por = explore_schedules(disjoint_factory(2, 2), opt);
  expect_parity(por, plain, "disjoint crash");
}

// --- parallel explorer ---------------------------------------------------

TEST(Por, ParallelParityAcrossThreadCounts) {
  ScheduleExploreOptions base;
  base.por = true;
  auto serial = explore_schedules(disjoint_factory(3, 3), base);
  ASSERT_TRUE(serial.exhausted);
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelExploreOptions opt;
    opt.base = base;
    opt.threads = threads;
    opt.oversubscribe = true;
    opt.serial_probe_executions = 0;  // force the real worker pool
    auto par = parallel_explore_schedules(disjoint_factory(3, 3), opt);
    EXPECT_EQ(par.executions, serial.executions) << threads;
    EXPECT_EQ(par.exhausted, serial.exhausted) << threads;
    EXPECT_EQ(par.violation, serial.violation) << threads;
    EXPECT_EQ(par.witness, serial.witness) << threads;
  }
}

TEST(Por, ParallelParityWithViolationAndCrashes) {
  ScheduleExploreOptions base;
  base.por = true;
  base.max_crashes = 1;
  base.max_steps = 8;
  auto factory = [] { return std::make_unique<MixedWorld>(2); };
  auto serial = explore_schedules(factory, base);
  ASSERT_TRUE(serial.violation.has_value());
  for (std::size_t threads : {2u, 4u, 8u}) {
    ParallelExploreOptions opt;
    opt.base = base;
    opt.threads = threads;
    opt.oversubscribe = true;
    opt.serial_probe_executions = 0;
    auto par = parallel_explore_schedules(factory, opt);
    EXPECT_EQ(par.violation, serial.violation) << threads;
    EXPECT_EQ(par.witness, serial.witness) << threads;
    EXPECT_EQ(par.executions, serial.executions) << threads;
  }
}

// --- composition with dedupe ---------------------------------------------

TEST(Por, ComposesWithDedupe) {
  // Sleep sets are mixed into the state fingerprint, so por+dedupe must
  // stay exhausted and agree on the verdict (executions may legitimately
  // differ: transpositions prune some representatives first).
  ScheduleExploreOptions opt;
  opt.por = true;
  auto por = explore_schedules(disjoint_factory(3, 3), opt);
  opt.dedupe_states = true;
  auto both = explore_schedules(disjoint_factory(3, 3), opt);
  EXPECT_TRUE(both.exhausted);
  EXPECT_EQ(both.violation, por.violation);
  EXPECT_LE(both.executions, por.executions);
}

TEST(Por, ComposesWithDedupeOnViolation) {
  ScheduleExploreOptions opt;
  opt.por = true;
  opt.dedupe_states = true;
  auto factory = [] { return std::make_unique<MixedWorld>(2); };
  auto both = explore_schedules(factory, opt);
  // Dedupe may reroute the witness; the violation itself must survive.
  EXPECT_TRUE(both.violation.has_value());
}

// --- adaptive dedupe kill-switch -----------------------------------------

Task<void> log_script(Scheduler& sched, std::size_t obj,
                      std::vector<ProcessId>& order, ProcessId me,
                      std::size_t writes) {
  for (std::size_t i = 0; i < writes; ++i) {
    co_await runtime::StepAwaiter<void>(
        sched, [&order, me] { order.push_back(me); }, obj, StepKind::kWrite,
        {});
  }
}

// Every state unique: the order log is the schedule and is folded into the
// fingerprint, so the transposition table can never prune here - the
// pathological workload the adaptive kill-switch exists for.
class UniqueStateWorld final : public ExplorableWorld {
 public:
  explicit UniqueStateWorld(std::vector<std::size_t> writes) {
    const std::size_t obj = sched_.register_object("r");
    for (ProcessId p = 0; p < writes.size(); ++p) {
      sched_.spawn(log_script(sched_, obj, order_, p, writes[p]), "q");
    }
  }

  Scheduler& scheduler() override { return sched_; }
  std::optional<std::string> verdict(bool /*complete*/) override {
    return std::nullopt;
  }
  void fingerprint_extra(util::StateSink& sink) override {
    util::feed(sink, order_);
  }

 private:
  Scheduler sched_;
  std::vector<ProcessId> order_;
};

TEST(AdaptiveDedupe, DisablesOnPruneFreeWorkload) {
  ScheduleExploreOptions opt;
  opt.dedupe_states = true;
  opt.dedupe_adaptive = true;
  auto factory = [] {
    return std::make_unique<UniqueStateWorld>(
        std::vector<std::size_t>{4, 4, 3});
  };
  auto res = explore_schedules(factory, opt);
  EXPECT_TRUE(res.exhausted);
  EXPECT_EQ(res.executions, 11550u);  // 11! / (4! 4! 3!): nothing pruned
  EXPECT_TRUE(res.dedupe_disabled_adaptively);
  EXPECT_EQ(res.subtrees_pruned, 0u);
}

TEST(AdaptiveDedupe, StaysOnWhenPruningEarns) {
  // Disjoint registers transpose massively: the prune rate stays far above
  // the kill threshold, so adaptive dedupe must not disable itself.
  ScheduleExploreOptions opt;
  opt.dedupe_states = true;
  opt.dedupe_adaptive = true;
  auto res = explore_schedules(disjoint_factory(3, 4), opt);
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.subtrees_pruned, 0u);
  EXPECT_FALSE(res.dedupe_disabled_adaptively);
  // And the deduped verdict agrees with the plain explorer's.
  auto plain = explore_schedules(disjoint_factory(3, 4), {});
  EXPECT_EQ(res.violation, plain.violation);
  EXPECT_EQ(res.exhausted, plain.exhausted);
}

TEST(AdaptiveDedupe, RequiresDedupeStates) {
  ScheduleExploreOptions opt;
  opt.dedupe_adaptive = true;
  EXPECT_THROW(explore_schedules(disjoint_factory(2, 2), opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace revisim
