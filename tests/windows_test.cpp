// Property tests for the window structure of atomic Block-Updates
// (Lemmas 18/19) via the linearizer's explicit Window artifacts, plus
// coverage for the remaining adversaries and the trace renderer.
#include <gtest/gtest.h>

#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/linearizer.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"

namespace revisim {
namespace {

using aug::AugmentedSnapshot;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::Task;

Task<void> churn(AugmentedSnapshot& m, ProcessId me, std::size_t rounds,
                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < rounds; ++i) {
    if (rng() % 3 == 0) {
      co_await m.Scan(me);
    } else {
      std::vector<std::size_t> comps;
      std::vector<Val> vals;
      const std::size_t r = 1 + rng() % m.components();
      for (std::size_t j = 0; j < m.components() && comps.size() < r; ++j) {
        if (rng() % 2 == 0 || m.components() - j == r - comps.size()) {
          comps.push_back(j);
          vals.push_back(static_cast<Val>(rng() % 100));
        }
      }
      co_await m.BlockUpdate(me, comps, vals);
    }
  }
}

class WindowSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowSweep, WindowsArePerAtomicBlockAndOrdered) {
  const std::uint64_t seed = GetParam();
  Scheduler sched;
  const std::size_t f = 2 + seed % 3;
  AugmentedSnapshot m(sched, "M", 3, f);
  for (ProcessId p = 0; p < f; ++p) {
    sched.spawn(churn(m, p, 7, seed * 37 + p), "q");
  }
  runtime::RandomAdversary adv(seed);
  ASSERT_TRUE(sched.run(adv));
  auto lin = aug::linearize(m.log(), 3);
  ASSERT_TRUE(lin.ok()) << lin.violations.front();

  // One window per atomic completed Block-Update.
  std::size_t atomic = 0;
  for (const auto& b : m.log().block_updates) {
    if (b.completed && !b.yielded) {
      ++atomic;
    }
  }
  EXPECT_EQ(lin.windows.size(), atomic);

  // Each window is well formed: T <= Z, contents at T equal the returned
  // view, and windows ordered by Z do not interleave their T's backwards.
  View contents(3);
  std::vector<View> prefix(lin.ops.size() + 1);
  prefix[0] = contents;
  for (std::size_t i = 0; i < lin.ops.size(); ++i) {
    if (lin.ops[i].kind == aug::LinearizedOp::Kind::kUpdate) {
      contents.at(lin.ops[i].component) = lin.ops[i].value;
    }
    prefix[i + 1] = contents;
  }
  auto windows = lin.windows;
  std::sort(windows.begin(), windows.end(),
            [](const aug::Window& a, const aug::Window& b) {
              return a.z_index < b.z_index;
            });
  std::size_t prev_z = 0;
  for (const auto& w : windows) {
    EXPECT_LE(w.t_index, w.z_index);
    const auto* bu = m.log().find_block_update(w.op_id);
    ASSERT_NE(bu, nullptr);
    EXPECT_EQ(prefix[w.t_index], bu->returned);
    // Disjointness (Lemma 18): this window starts at or after the end of
    // the previous one.
    EXPECT_GE(w.t_index + 1, prev_z == 0 ? 0 : prev_z);
    prev_z = w.z_index + 1;
    // No Scan inside (T, Z).
    for (std::size_t i = w.t_index; i < w.z_index; ++i) {
      EXPECT_NE(lin.ops[i].kind, aug::LinearizedOp::Kind::kScan);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowSweep,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(Adversaries, BurstRunsOneProcessInBursts) {
  Scheduler sched;
  AugmentedSnapshot m(sched, "M", 2, 3);
  for (ProcessId p = 0; p < 3; ++p) {
    sched.spawn(churn(m, p, 5, p), "q");
  }
  runtime::BurstAdversary adv(99, 6);
  ASSERT_TRUE(sched.run(adv));
  // Count schedule switches: bursts mean far fewer switches than steps.
  const auto& ev = sched.trace().events;
  std::size_t switches = 0;
  for (std::size_t i = 1; i < ev.size(); ++i) {
    if (ev[i].process != ev[i - 1].process) {
      ++switches;
    }
  }
  EXPECT_LT(switches, ev.size() / 2);
  auto lin = aug::linearize(m.log(), 2);
  EXPECT_TRUE(lin.ok()) << lin.violations.front();
}

TEST(Trace, RendersOneLinePerStep) {
  Scheduler sched;
  AugmentedSnapshot m(sched, "M", 2, 1);
  auto body = [](AugmentedSnapshot& mm) -> Task<void> {
    std::vector<std::size_t> comps{0};
    std::vector<Val> vals{5};
    co_await mm.BlockUpdate(0, comps, vals);
  };
  sched.spawn(body(m), "q1");
  runtime::RoundRobinAdversary adv;
  ASSERT_TRUE(sched.run(adv));
  const std::string text = sched.trace().to_text();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
  EXPECT_NE(text.find("q1"), std::string::npos);
  EXPECT_NE(text.find("scan"), std::string::npos);
  EXPECT_NE(text.find("update"), std::string::npos);
}

}  // namespace
}  // namespace revisim
