// Fault tolerance of the distributed explorer: wire-level defenses
// (truncation, corruption, drops and duplicates caught at every byte
// boundary), the durable run journal and its checkpoint-resume planner,
// and the end-to-end fault matrix - every seeded fault plan must leave the
// merged summary bit-identical to the uninterrupted serial run.
//
// The e2e tests reuse dist_test.cpp's closed-form ScriptWorld: n processes
// perform fixed write counts, so the full tree has a multinomial number of
// leaves and the serial explorer's summary is the ground truth the faulted
// distributed runs are pinned against.  Faults are injected with seeded
// FaultPlans (src/dist/fault_channel.h): rate faults draw from a fixed
// xorshift stream, positional faults fire once per plan, so every run here
// is a deterministic drill, not a stress test.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/check/crash_worlds.h"
#include "src/check/explore_core.h"
#include "src/check/explore_merge.h"
#include "src/check/model_check.h"
#include "src/dist/coordinator.h"
#include "src/dist/fault_channel.h"
#include "src/dist/journal.h"
#include "src/dist/wire.h"
#include "src/dist/worker.h"
#include "src/runtime/scheduler.h"

namespace revisim {
namespace {

using check::ExplorableWorld;
using check::explore_schedules;
using check::ScheduleExploreResult;
using dist::DistExploreOptions;
using dist::FaultPlan;
using dist::Frame;
using dist::MsgType;
using dist::WireError;
using dist::WireWriter;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::StepKind;
using runtime::Task;

Task<void> count_script(Scheduler& sched, std::size_t obj,
                        std::vector<ProcessId>& order, ProcessId me,
                        std::size_t writes) {
  for (std::size_t i = 0; i < writes; ++i) {
    co_await runtime::StepAwaiter<void>(
        sched, [&order, me] { order.push_back(me); }, obj, StepKind::kWrite,
        {});
  }
}

// As in dist_test.cpp: process i performs writes[i] shared-register writes;
// the order log is folded into the fingerprint so dedupe stays sound.
class ScriptWorld final : public ExplorableWorld {
 public:
  explicit ScriptWorld(std::vector<std::size_t> writes) {
    const std::size_t shared = sched_.register_object("r");
    for (ProcessId p = 0; p < writes.size(); ++p) {
      sched_.spawn(count_script(sched_, shared, order_, p, writes[p]), "q");
    }
  }

  Scheduler& scheduler() override { return sched_; }

  std::optional<std::string> verdict(bool) override { return std::nullopt; }

  void fingerprint_extra(util::StateSink& sink) override {
    util::feed(sink, order_);
  }

 private:
  Scheduler sched_;
  std::vector<ProcessId> order_;
};

auto script_factory(std::vector<std::size_t> writes) {
  return [writes = std::move(writes)] {
    return std::make_unique<ScriptWorld>(writes);
  };
}

void expect_same(const ScheduleExploreResult& got,
                 const ScheduleExploreResult& want, const std::string& what) {
  EXPECT_EQ(got.executions, want.executions) << what;
  EXPECT_EQ(got.exhausted, want.exhausted) << what;
  EXPECT_EQ(got.violation, want.violation) << what;
  EXPECT_EQ(got.witness, want.witness) << what;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "dist_fault_" + name + "." +
         std::to_string(::getpid());
}

// Baseline options every fault drill shares: tight heartbeats so detection
// latency does not dominate the test, a generous retry budget so recovery
// (not degradation) is what gets exercised.
DistExploreOptions drill_options() {
  DistExploreOptions opt;
  opt.workers = 2;
  opt.job_retries = 8;
  opt.heartbeat_interval_ms = 25;
  opt.heartbeat_timeout_ms = 3000;
  opt.reconnect_window_ms = 10'000;
  return opt;
}

// --- the wire-message table --------------------------------------------------

struct WireCase {
  const char* name;
  MsgType type;
  WireWriter body;  // encoded payload
};

std::vector<WireCase> wire_cases() {
  std::vector<WireCase> cases;
  auto add = [&cases](const char* name, MsgType type, auto encode) {
    cases.emplace_back();
    cases.back().name = name;
    cases.back().type = type;
    encode(cases.back().body);
  };
  add("hello", MsgType::kHello, [](WireWriter& w) {
    dist::HelloMsg m;
    m.worker = 3;
    m.session = 0x1122334455ull;
    m.heartbeat_interval_ms = 25;
    m.heartbeat_timeout_ms = 500;
    m.max_steps = 64;
    m.world = "aug-bu";
    m.f = 2;
    m.m = 2;
    m.step_budget = 6;
    dist::encode_hello(w, m);
  });
  add("hello_ack", MsgType::kHelloAck, [](WireWriter& w) {
    dist::HelloAckMsg m;
    m.ok = false;
    m.error = "unknown world";
    m.resume = true;
    m.session = 42;
    dist::encode_hello_ack(w, m);
  });
  add("job", MsgType::kJob, [](WireWriter& w) {
    dist::JobMsg m;
    m.id = 7;
    m.budget = 1000;
    m.prefix = {0, 1, runtime::make_crash_entry(2)};
    m.choices = {1, 2};
    m.sleep = {0};
    m.sleep_inherited = 1;
    m.no_dedupe = true;
    dist::encode_job(w, m);
  });
  add("job_result", MsgType::kJobResult, [](WireWriter& w) {
    dist::JobResultMsg m;
    m.id = 7;
    m.result.executions = 99;
    m.result.fully_explored = true;
    m.result.violation = "planted";
    m.result.witness = {0, 1, 0};
    dist::encode_job_result(w, m);
  });
  add("job_error", MsgType::kJobError, [](WireWriter& w) {
    dist::encode_job_error(w, {7, "replay diverged"});
  });
  add("live", MsgType::kLive, [](WireWriter& w) {
    dist::encode_live(w, {7, 1234});
  });
  add("donate", MsgType::kDonate, [](WireWriter& w) {
    dist::DonateMsg m;
    m.parent = 7;
    m.prefix = {0, 0};
    m.choices = {1, 2};
    m.sleep = {0};
    m.sleep_inherited = 0;
    dist::encode_donate(w, m);
  });
  add("credit", MsgType::kCredit, [](WireWriter& w) {
    dist::encode_credit(w, {7, 500, true});
  });
  add("steal_req", MsgType::kStealReq, [](WireWriter&) {});
  add("fp_insert", MsgType::kFpInsert, [](WireWriter& w) {
    dist::FpInsertMsg m;
    m.fp = util::Fingerprint{0x0123456789abcdefull, 0xfedcba9876543210ull};
    m.has_canonical = true;
    m.canonical = "state text";
    dist::encode_fp_insert(w, m);
  });
  add("fp_reply", MsgType::kFpReply, [](WireWriter& w) {
    dist::encode_fp_reply(w, {true});
  });
  add("fp_batch", MsgType::kFpBatch, [](WireWriter& w) {
    dist::FpBatchMsg m;
    m.fps = {util::Fingerprint{0x0123456789abcdefull, 0xfedcba9876543210ull},
             util::Fingerprint{0x1111111111111111ull, 0x2222222222222222ull},
             util::Fingerprint{0xdeadbeefcafef00dull, 0x0badc0dedeadc0deull}};
    m.has_canonical = true;
    m.canonicals = {"state a", "state b", "state c"};
    dist::encode_fp_batch(w, m);
  });
  add("fp_verdicts", MsgType::kFpVerdicts, [](WireWriter& w) {
    dist::FpVerdictsMsg m;
    m.resize(11);  // straddles a bitmap byte boundary
    for (std::uint32_t i = 0; i < 11; ++i) {
      m.set(i, (i % 3) == 0);
    }
    dist::encode_fp_verdicts(w, m);
  });
  add("shutdown", MsgType::kShutdown, [](WireWriter&) {});
  add("ping", MsgType::kPing, [](WireWriter& w) {
    dist::encode_ping(w, {0xabcdefull});
  });
  add("pong", MsgType::kPong, [](WireWriter& w) {
    dist::encode_pong(w, {0xabcdefull});
  });
  return cases;
}

// Feeds exactly `bytes` to a socket and EOFs it, then receives.
// 0 = clean EOF, 1 = frame, 2 = WireError.
int recv_outcome(const std::vector<std::uint8_t>& bytes) {
  int sv[2];
  EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
  dist::send_bytes(sv[0], bytes.data(), bytes.size());
  ::close(sv[0]);
  Frame frame;
  int outcome;
  try {
    outcome = dist::recv_frame(sv[1], frame, 0) ? 1 : 0;
  } catch (const WireError&) {
    outcome = 2;
  }
  ::close(sv[1]);
  return outcome;
}

// Satellite: every wire message, truncated at EVERY byte boundary, must be
// rejected with a clean WireError - mid-header, mid-payload, mid-crc, all
// of it.  Truncation at offset zero is the one legal cut: a clean EOF at a
// frame boundary.
TEST(WireTruncation, EveryMessageAtEveryByteBoundary) {
  for (const WireCase& c : wire_cases()) {
    std::vector<std::uint8_t> full;
    dist::build_frame(full, c.type, c.body, 0);
    ASSERT_GE(full.size(), dist::kFrameHeaderBytes) << c.name;
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const std::vector<std::uint8_t> prefix(full.begin(),
                                             full.begin() + cut);
      const int outcome = recv_outcome(prefix);
      if (cut == 0) {
        EXPECT_EQ(outcome, 0) << c.name << " cut=0";
      } else {
        EXPECT_EQ(outcome, 2) << c.name << " cut=" << cut;
      }
    }
    EXPECT_EQ(recv_outcome(full), 1) << c.name << " intact";
  }
}

// The payload decoders reject truncation on their own (the journal hands
// them raw payloads without the framing crc): every proper prefix of every
// message payload must throw, never misparse.
TEST(WireTruncation, EveryPayloadPrefixThrowsAtDecode) {
  for (const WireCase& c : wire_cases()) {
    for (std::size_t cut = 0; cut < c.body.size(); ++cut) {
      dist::WireReader r(c.body.data(), cut);
      const auto decode_any = [&r, &c]() {
        switch (c.type) {
          case MsgType::kHello: (void)dist::decode_hello(r); break;
          case MsgType::kHelloAck: (void)dist::decode_hello_ack(r); break;
          case MsgType::kJob: (void)dist::decode_job(r); break;
          case MsgType::kJobResult: (void)dist::decode_job_result(r); break;
          case MsgType::kJobError: (void)dist::decode_job_error(r); break;
          case MsgType::kLive: (void)dist::decode_live(r); break;
          case MsgType::kDonate: (void)dist::decode_donate(r); break;
          case MsgType::kCredit: (void)dist::decode_credit(r); break;
          case MsgType::kFpInsert: (void)dist::decode_fp_insert(r); break;
          case MsgType::kFpReply: (void)dist::decode_fp_reply(r); break;
          case MsgType::kFpBatch: (void)dist::decode_fp_batch(r); break;
          case MsgType::kFpVerdicts:
            (void)dist::decode_fp_verdicts(r);
            break;
          case MsgType::kPing: (void)dist::decode_ping(r); break;
          case MsgType::kPong: (void)dist::decode_pong(r); break;
          default: throw WireError("empty-payload message");
        }
      };
      EXPECT_THROW(decode_any(), WireError)
          << c.name << " payload cut=" << cut;
    }
  }
}

TEST(WireFraming, CorruptedByteFailsCrc) {
  WireWriter body;
  dist::encode_live(body, {7, 1234});
  std::vector<std::uint8_t> bytes;
  dist::build_frame(bytes, MsgType::kLive, body, 0);
  for (std::size_t i = dist::kFrameHeaderBytes; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> bad = bytes;
    bad[i] ^= 0x40;
    EXPECT_EQ(recv_outcome(bad), 2) << "flipped payload byte " << i;
  }
}

TEST(WireFraming, SequenceGapAndRepeatAreWireErrors) {
  WireWriter body;
  dist::encode_live(body, {7, 1});
  int sv[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
  // A dropped frame shows as a gap: the peer sent seq 2, we expected 0.
  dist::send_frame(sv[0], MsgType::kLive, body, 2);
  Frame frame;
  EXPECT_THROW((void)dist::recv_frame(sv[1], frame, 0), WireError);
  ::close(sv[0]);
  ::close(sv[1]);

  // A duplicated frame shows as a repeat of the last sequence number.
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
  dist::send_frame(sv[0], MsgType::kLive, body, 0);
  dist::send_frame(sv[0], MsgType::kLive, body, 0);
  EXPECT_TRUE(dist::recv_frame(sv[1], frame, 0));
  EXPECT_THROW((void)dist::recv_frame(sv[1], frame, 1), WireError);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(WireFraming, OversizedLengthIsRejectedNotAllocated) {
  std::vector<std::uint8_t> header(dist::kFrameHeaderBytes, 0);
  header[0] = 0xff;  // little-endian length 0xffffffff
  header[1] = 0xff;
  header[2] = 0xff;
  header[3] = 0xff;
  header[4] = static_cast<std::uint8_t>(MsgType::kLive);
  EXPECT_EQ(recv_outcome(header), 2);
}

// --- fingerprint pipeline messages (wire v3) ---------------------------------

TEST(WireFpPipeline, BatchRoundTripsWithAndWithoutCanonicals) {
  dist::FpBatchMsg m;
  m.fps = {util::Fingerprint{1, 2}, util::Fingerprint{3, 4},
           util::Fingerprint{0xffffffffffffffffull, 0}};
  {
    WireWriter w;
    dist::encode_fp_batch(w, m);
    dist::WireReader r(w.data(), w.size());
    const dist::FpBatchMsg got = dist::decode_fp_batch(r);
    EXPECT_EQ(got.fps, m.fps);
    EXPECT_FALSE(got.has_canonical);
    EXPECT_TRUE(got.canonicals.empty());
  }
  m.has_canonical = true;
  m.canonicals = {"alpha", "", "gamma"};
  {
    WireWriter w;
    dist::encode_fp_batch(w, m);
    dist::WireReader r(w.data(), w.size());
    const dist::FpBatchMsg got = dist::decode_fp_batch(r);
    EXPECT_EQ(got.fps, m.fps);
    EXPECT_TRUE(got.has_canonical);
    EXPECT_EQ(got.canonicals, m.canonicals);
  }
}

TEST(WireFpPipeline, VerdictBitmapRoundTripsEveryCountMod8) {
  for (std::uint32_t n = 1; n <= 17; ++n) {
    dist::FpVerdictsMsg m;
    m.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      m.set(i, ((i * 7) % 3) != 0);
    }
    WireWriter w;
    dist::encode_fp_verdicts(w, m);
    dist::WireReader r(w.data(), w.size());
    const dist::FpVerdictsMsg got = dist::decode_fp_verdicts(r);
    ASSERT_EQ(got.count, n);
    for (std::uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(got.was_new(i), m.was_new(i)) << "n=" << n << " i=" << i;
    }
  }
}

// A canonical list whose length disagrees with the batch, and a verdict
// bitmap whose length disagrees with its count, must be rejected on BOTH
// sides of the wire - a desynced pipeline dies loudly, never misprunes.
TEST(WireFpPipeline, LengthMismatchesAreRejectedBothWays) {
  dist::FpBatchMsg batch;
  batch.fps = {util::Fingerprint{1, 2}, util::Fingerprint{3, 4}};
  batch.has_canonical = true;
  batch.canonicals = {"only one"};
  WireWriter w;
  EXPECT_THROW(dist::encode_fp_batch(w, batch), WireError);

  dist::FpVerdictsMsg verdicts;
  verdicts.resize(9);
  verdicts.bitmap.push_back(0);  // one byte too many for count=9
  WireWriter w2;
  EXPECT_THROW(dist::encode_fp_verdicts(w2, verdicts), WireError);

  // Decode side: a well-formed frame whose bitmap was re-counted shorter.
  dist::FpVerdictsMsg ok;
  ok.resize(9);
  WireWriter w3;
  dist::encode_fp_verdicts(w3, ok);
  std::vector<std::uint8_t> bytes(w3.data(), w3.data() + w3.size());
  bytes[0] = 17;  // count LE u32: 17 verdicts cannot fit 2 bitmap bytes
  dist::WireReader r(bytes.data(), bytes.size());
  EXPECT_THROW((void)dist::decode_fp_verdicts(r), WireError);
}

// --- run journal -------------------------------------------------------------

dist::JournalConfig test_config() {
  dist::JournalConfig cfg;
  cfg.tag = "script-332";
  cfg.max_steps = 64;
  cfg.max_executions = 100'000;
  cfg.max_crashes = 0;
  return cfg;
}

TEST(Journal, RoundTripsCreatedDoneAndDiscardedRecords) {
  const std::string path = temp_path("roundtrip");
  {
    dist::JournalWriter w;
    w.create(path, test_config());
    w.job_created(1, false, 0, {0, 1}, {}, {}, 0);
    w.job_created(2, true, 1, {0, 1, 2}, {1, 2}, {0}, 1);
    check::detail::SubtreeResult res;
    res.executions = 17;
    res.fully_explored = true;
    res.violation = "planted";
    res.witness = {0, 1, 1};
    w.job_done(2, res);
    w.job_discarded(1);
    w.close();
  }
  const dist::JournalContents j = dist::read_journal(path);
  EXPECT_EQ(j.config, test_config());
  EXPECT_EQ(j.dropped_tail_bytes, 0u);
  ASSERT_EQ(j.jobs.size(), 2u);
  EXPECT_EQ(j.jobs[0].id, 1u);
  EXPECT_FALSE(j.jobs[0].has_parent);
  EXPECT_TRUE(j.jobs[0].discarded);
  EXPECT_FALSE(j.jobs[0].done);
  EXPECT_EQ(j.jobs[1].id, 2u);
  EXPECT_TRUE(j.jobs[1].has_parent);
  EXPECT_EQ(j.jobs[1].parent, 1u);
  EXPECT_EQ(j.jobs[1].prefix, (std::vector<ProcessId>{0, 1, 2}));
  EXPECT_EQ(j.jobs[1].choices, (std::vector<ProcessId>{1, 2}));
  EXPECT_EQ(j.jobs[1].sleep_inherited, 1u);
  ASSERT_TRUE(j.jobs[1].done);
  EXPECT_EQ(j.jobs[1].result.executions, 17u);
  EXPECT_EQ(j.jobs[1].result.violation, "planted");
  EXPECT_EQ(j.jobs[1].result.witness, (std::vector<ProcessId>{0, 1, 1}));
  std::remove(path.c_str());
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

// A crash can tear the journal at any byte.  Every cut after the config
// record must load cleanly with the torn tail dropped; every cut before it
// is not a usable journal and must say so with a WireError, never a crash
// or a misparse.
TEST(Journal, TornTailAtEveryByteBoundary) {
  const std::string path = temp_path("torn");
  std::size_t config_end;
  {
    dist::JournalWriter w;
    w.create(path, test_config());
    w.close();
    config_end = slurp(path).size();
  }
  {
    dist::JournalWriter w;
    w.append_to(path);
    w.job_created(1, false, 0, {}, {}, {}, 0);
    w.job_created(2, true, 1, {0}, {1}, {}, 0);
    check::detail::SubtreeResult res;
    res.executions = 5;
    res.fully_explored = true;
    w.job_done(1, res);
    w.close();
  }
  const std::vector<std::uint8_t> full = slurp(path);
  const dist::JournalContents whole = dist::read_journal(path);
  ASSERT_EQ(whole.jobs.size(), 2u);

  const std::string torn = temp_path("torn_cut");
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    spit(torn, std::vector<std::uint8_t>(full.begin(), full.begin() + cut));
    if (cut < config_end) {
      EXPECT_THROW((void)dist::read_journal(torn), WireError) << "cut=" << cut;
      continue;
    }
    dist::JournalContents j;
    ASSERT_NO_THROW(j = dist::read_journal(torn)) << "cut=" << cut;
    EXPECT_EQ(j.config, test_config()) << "cut=" << cut;
    EXPECT_LE(j.jobs.size(), whole.jobs.size()) << "cut=" << cut;
    // Whatever survived the tear is a prefix of the record stream: job 2
    // can only exist if job 1 does, done only if the done record fit.
    if (!j.jobs.empty()) {
      EXPECT_EQ(j.jobs[0].id, 1u) << "cut=" << cut;
    }
    if (j.jobs.size() == 2) {
      EXPECT_EQ(j.jobs[1].id, 2u) << "cut=" << cut;
    }
    // The drop never reaches past the config record, and a full-file read
    // drops nothing.
    EXPECT_LE(j.dropped_tail_bytes, cut - config_end) << "cut=" << cut;
    if (cut == full.size()) {
      EXPECT_EQ(j.dropped_tail_bytes, 0u);
    }
  }
  std::remove(path.c_str());
  std::remove(torn.c_str());
}

// A flipped byte mid-file fails that record's crc; the journal loads as if
// torn there - everything before the corruption survives.
TEST(Journal, MidFileCorruptionDropsFromThatRecordOn) {
  const std::string path = temp_path("corrupt");
  std::size_t first_record_end;
  {
    dist::JournalWriter w;
    w.create(path, test_config());
    w.job_created(1, false, 0, {0, 1}, {}, {}, 0);
    w.close();
    first_record_end = slurp(path).size();
  }
  {
    dist::JournalWriter w;
    w.append_to(path);
    w.job_created(2, true, 1, {0, 1, 0}, {1}, {}, 0);
    check::detail::SubtreeResult res;
    res.executions = 3;
    res.fully_explored = true;
    w.job_done(2, res);
    w.close();
  }
  std::vector<std::uint8_t> bytes = slurp(path);
  ASSERT_GT(bytes.size(), first_record_end + 6);
  bytes[first_record_end + 6] ^= 0x01;  // inside job 2's created record
  spit(path, bytes);
  const dist::JournalContents j = dist::read_journal(path);
  ASSERT_EQ(j.jobs.size(), 1u);
  EXPECT_EQ(j.jobs[0].id, 1u);
  EXPECT_GT(j.dropped_tail_bytes, 0u);
  std::remove(path.c_str());
}

TEST(Journal, DoneForUnknownJobIsStructuralCorruption) {
  const std::string path = temp_path("unknown_done");
  {
    dist::JournalWriter w;
    w.create(path, test_config());
    check::detail::SubtreeResult res;
    res.fully_explored = true;
    w.job_done(99, res);  // no created record for 99
    w.close();
  }
  EXPECT_THROW((void)dist::read_journal(path), WireError);
  std::remove(path.c_str());
}

// --- resume planner ----------------------------------------------------------

using check::detail::plan_resume;
using check::detail::ResumeAction;
using check::detail::ResumeJob;

TEST(ResumePlan, AllDoneReusesEverything) {
  const std::vector<ResumeJob> jobs = {
      {1, false, 0, true}, {2, true, 1, true}, {3, true, 2, true}};
  const auto plan = plan_resume(jobs);
  EXPECT_EQ(plan, (std::vector<ResumeAction>{ResumeAction::kReuse,
                                             ResumeAction::kReuse,
                                             ResumeAction::kReuse}));
}

TEST(ResumePlan, UndoneParentRerunsAndDiscardsDescendants) {
  // 1 (done) -> 2 (NOT done) -> 3 (done), plus 4 done directly under 1.
  // 2 re-runs its full original region, which re-covers 3; reusing 3 too
  // would double count it.
  const std::vector<ResumeJob> jobs = {{1, false, 0, true},
                                       {2, true, 1, false},
                                       {3, true, 2, true},
                                       {4, true, 1, true}};
  const auto plan = plan_resume(jobs);
  EXPECT_EQ(plan, (std::vector<ResumeAction>{
                      ResumeAction::kReuse, ResumeAction::kRerun,
                      ResumeAction::kDiscard, ResumeAction::kReuse}));
}

TEST(ResumePlan, UndoneRootRerunsWholeTree) {
  const std::vector<ResumeJob> jobs = {
      {1, false, 0, false}, {2, true, 1, true}, {3, true, 2, false}};
  const auto plan = plan_resume(jobs);
  EXPECT_EQ(plan, (std::vector<ResumeAction>{ResumeAction::kRerun,
                                             ResumeAction::kDiscard,
                                             ResumeAction::kDiscard}));
}

TEST(ResumePlan, OrphanParentIsConservativelyDiscarded) {
  // Parent id 77 matches nothing - corruption an append-only journal
  // cannot produce, but the planner must not double count on it.
  const std::vector<ResumeJob> jobs = {{1, false, 0, true},
                                       {2, true, 77, true}};
  const auto plan = plan_resume(jobs);
  EXPECT_EQ(plan, (std::vector<ResumeAction>{ResumeAction::kReuse,
                                             ResumeAction::kDiscard}));
}

// --- end-to-end fault matrix -------------------------------------------------
//
// Each drill pins the faulted distributed run bit-for-bit against the
// serial explorer.  {3,3,2} has 8!/(3!3!2!) = 560 leaves - big enough that
// every fault lands mid-run, small enough to keep the matrix fast.

class FaultMatrix : public ::testing::Test {
 protected:
  void SetUp() override {
    serial_ = explore_schedules(script_factory({3, 3, 2}));
    ASSERT_TRUE(serial_.exhausted);
  }
  ScheduleExploreResult serial_;
};

TEST_F(FaultMatrix, WorkerOutboundCutRecoversByReconnect) {
  DistExploreOptions opt = drill_options();
  opt.worker_faults.cut_after = 4;
  const auto dist =
      dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  expect_same(dist, serial_, "cut_after=4");
  EXPECT_FALSE(dist.error.has_value()) << *dist.error;
}

TEST_F(FaultMatrix, TruncatedFrameDetectedAndRecovered) {
  DistExploreOptions opt = drill_options();
  opt.worker_faults.truncate_at = 4;
  const auto dist =
      dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  expect_same(dist, serial_, "truncate_at=4");
  EXPECT_FALSE(dist.error.has_value()) << *dist.error;
}

TEST_F(FaultMatrix, DroppedFramesDetectedBySequenceGap) {
  DistExploreOptions opt = drill_options();
  opt.worker_faults.seed = 9;
  opt.worker_faults.drop_rate = 0.10;
  const auto dist =
      dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  expect_same(dist, serial_, "drop_rate=0.10");
  EXPECT_FALSE(dist.error.has_value()) << *dist.error;
}

TEST_F(FaultMatrix, DuplicatedFramesDetectedBySequenceRepeat) {
  DistExploreOptions opt = drill_options();
  opt.worker_faults.seed = 11;
  opt.worker_faults.dup_rate = 0.10;
  const auto dist =
      dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  expect_same(dist, serial_, "dup_rate=0.10");
  EXPECT_FALSE(dist.error.has_value()) << *dist.error;
}

TEST_F(FaultMatrix, DelayShorterThanTimeoutIsSurvivedInPlace) {
  DistExploreOptions opt = drill_options();
  opt.worker_faults.seed = 13;
  opt.worker_faults.delay_rate = 0.25;
  opt.worker_faults.delay_ms = 5;
  const auto dist =
      dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  expect_same(dist, serial_, "delay 5ms");
  EXPECT_FALSE(dist.error.has_value()) << *dist.error;
}

TEST_F(FaultMatrix, CoordinatorOutboundCutRecovers) {
  DistExploreOptions opt = drill_options();
  opt.coordinator_faults.cut_after = 4;
  const auto dist =
      dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  expect_same(dist, serial_, "coordinator cut_after=4");
  EXPECT_FALSE(dist.error.has_value()) << *dist.error;
}

TEST_F(FaultMatrix, OneWayPartitionDetectedByHeartbeatTimeout) {
  DistExploreOptions opt = drill_options();
  opt.heartbeat_timeout_ms = 400;  // a partition stalls the run this long
  opt.worker_faults.partition_after = 3;
  const auto dist =
      dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  expect_same(dist, serial_, "partition_after=3");
  EXPECT_FALSE(dist.error.has_value()) << *dist.error;
}

TEST_F(FaultMatrix, StallPastTimeoutIsDeclaredDeadThenRecovers) {
  DistExploreOptions opt = drill_options();
  opt.heartbeat_timeout_ms = 300;
  opt.worker_faults.stall_at = 3;
  opt.worker_faults.stall_ms = 1500;  // > timeout: indistinguishable from hang
  const auto dist =
      dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  expect_same(dist, serial_, "stall 1500ms > timeout 300ms");
  EXPECT_FALSE(dist.error.has_value()) << *dist.error;
}

TEST_F(FaultMatrix, HeartbeatsOffStillMatchesSerial) {
  DistExploreOptions opt = drill_options();
  opt.heartbeat_interval_ms = 0;
  const auto dist =
      dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  expect_same(dist, serial_, "heartbeats off");
  EXPECT_FALSE(dist.error.has_value()) << *dist.error;
}

// With dedupe on, a lost attempt re-queues with dedupe OFF: the lost
// attempt's claims survive in the shard table, so the re-run (and every
// region it donates) walks claim-free and can never be pruned by an
// orphaned claim.  The run completes with the serial verdict and
// states_seen stays bounded by the serial distinct-state count.
TEST_F(FaultMatrix, DedupeLostAttemptRequeuesWithDedupeOff) {
  check::ScheduleExploreOptions serial_opt;
  serial_opt.dedupe_states = true;
  const auto serial_dedupe =
      explore_schedules(script_factory({3, 3, 2}), serial_opt);
  ASSERT_TRUE(serial_dedupe.exhausted);

  DistExploreOptions opt = drill_options();
  opt.base.dedupe_states = true;
  opt.steal_requests = false;  // single seed job: the cut always hits it
  opt.worker_faults.cut_after = 3;
  const auto dist =
      dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  EXPECT_FALSE(dist.error.has_value()) << *dist.error;
  EXPECT_TRUE(dist.exhausted);
  EXPECT_EQ(dist.violation, serial_dedupe.violation);
  EXPECT_EQ(dist.witness, serial_dedupe.witness);
  EXPECT_LE(dist.states_seen, serial_dedupe.states_seen);
}

// The same drill with the cut landing mid-pipeline: a tiny fp_batch and a
// worker cut deep enough into the run that kFpBatch windows are in flight
// when the connection dies.  The re-queue (dedupe-off) must still finish
// the search with the serial verdict and bounded states_seen - this is the
// drill that would catch an orphaned speculative claim pruning a re-run.
TEST_F(FaultMatrix, DedupeMidBatchCutRequeuesSoundly) {
  check::ScheduleExploreOptions serial_opt;
  serial_opt.dedupe_states = true;
  const auto serial_dedupe =
      explore_schedules(script_factory({3, 3, 2}), serial_opt);
  ASSERT_TRUE(serial_dedupe.exhausted);

  for (const std::uint64_t cut : {std::uint64_t{5}, std::uint64_t{9}}) {
    DistExploreOptions opt = drill_options();
    opt.base.dedupe_states = true;
    opt.fp_batch = 2;   // many small batches: the cut lands mid-window
    opt.fp_window = 4;
    opt.worker_faults.cut_after = cut;
    const auto dist =
        dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
    EXPECT_FALSE(dist.error.has_value()) << "cut=" << cut << ": "
                                         << *dist.error;
    EXPECT_TRUE(dist.exhausted) << "cut=" << cut;
    EXPECT_EQ(dist.violation, serial_dedupe.violation) << "cut=" << cut;
    EXPECT_EQ(dist.witness, serial_dedupe.witness) << "cut=" << cut;
    EXPECT_LE(dist.states_seen, serial_dedupe.states_seen) << "cut=" << cut;
  }
}

// --- checkpoint-resume, end to end -------------------------------------------

TEST_F(FaultMatrix, HaltedRunResumesBitIdenticalAcrossWorkerCounts) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    const std::string path =
        temp_path("resume_w" + std::to_string(workers));
    DistExploreOptions opt = drill_options();
    opt.workers = workers;
    opt.journal_path = path;
    opt.journal_tag = "script-332";
    opt.halt_after_jobs = 1;  // stop at the first completion, like a kill
    const auto halted =
        dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);

    DistExploreOptions resume = drill_options();
    resume.workers = workers;
    resume.journal_path = path;
    resume.journal_tag = "script-332";
    resume.resume = true;
    const auto dist =
        dist::dist_explore_schedules(script_factory({3, 3, 2}), resume);
    expect_same(dist, serial_,
                "resume at " + std::to_string(workers) + " worker(s)");
    EXPECT_FALSE(dist.error.has_value()) << *dist.error;
    // The halted run either got cut short (the interesting case) or the
    // halt landed at the natural end (a 1-worker donation-free run); both
    // must resume to the identical summary, asserted above.
    if (halted.error.has_value()) {
      EXPECT_NE(halted.error->find("halted"), std::string::npos);
    }
    std::remove(path.c_str());
  }
}

TEST_F(FaultMatrix, ResumeUnderFaultsStillMatchesSerial) {
  const std::string path = temp_path("resume_faulted");
  DistExploreOptions opt = drill_options();
  opt.journal_path = path;
  opt.journal_tag = "script-332";
  opt.halt_after_jobs = 1;
  (void)dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);

  DistExploreOptions resume = drill_options();
  resume.journal_path = path;
  resume.journal_tag = "script-332";
  resume.resume = true;
  resume.worker_faults.seed = 21;
  resume.worker_faults.drop_rate = 0.10;
  const auto dist =
      dist::dist_explore_schedules(script_factory({3, 3, 2}), resume);
  expect_same(dist, serial_, "resume with drops");
  EXPECT_FALSE(dist.error.has_value()) << *dist.error;
  std::remove(path.c_str());
}

TEST_F(FaultMatrix, ResumeRefusesAJournalFromDifferentOptions) {
  const std::string path = temp_path("resume_mismatch");
  DistExploreOptions opt = drill_options();
  opt.workers = 1;
  opt.journal_path = path;
  opt.journal_tag = "script-332";
  opt.halt_after_jobs = 1;
  (void)dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);

  DistExploreOptions resume = drill_options();
  resume.workers = 1;
  resume.reconnect_window_ms = 0;  // fail fast: no reconnect dance on throw
  resume.journal_path = path;
  resume.journal_tag = "script-332";
  resume.resume = true;
  resume.base.por = true;  // not what the journal was recorded under
  EXPECT_THROW((void)dist::dist_explore_schedules(script_factory({3, 3, 2}),
                                                  resume),
               WireError);
  std::remove(path.c_str());
}

// --- TCP helpers -------------------------------------------------------------

TEST(Tcp, ConnectGivesUpAtTheDeadlineNamingItsAttempts) {
  // Grab an ephemeral port, then close the listener: connecting to it is
  // deterministic ECONNREFUSED.
  std::uint16_t port = 0;
  const int listener = dist::listen_tcp("127.0.0.1", port);
  ::close(listener);
  const auto start = std::chrono::steady_clock::now();
  try {
    const int fd = dist::connect_tcp("127.0.0.1", port,
                                     std::chrono::milliseconds(300), 1);
    ::close(fd);
    FAIL() << "connect to a closed port succeeded";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find("attempt"), std::string::npos)
        << e.what();
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 5000) << "backoff overshot the deadline";
}

volatile sig_atomic_t g_alarms = 0;
void count_alarm(int) { ++g_alarms; }

// Satellite regression: wait_readable under a signal storm must honor its
// monotonic deadline - EINTR re-polls with the REMAINING time, so 50ms
// SIGALRMs cannot keep pushing a 400ms timeout forever.
TEST(Tcp, WaitReadableSurvivesSignalStorm) {
  int pipefd[2];
  ASSERT_EQ(0, ::pipe(pipefd));

  struct sigaction sa {};
  sa.sa_handler = count_alarm;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll really sees EINTR
  struct sigaction old {};
  ASSERT_EQ(0, sigaction(SIGALRM, &sa, &old));
  itimerval storm{};
  storm.it_interval.tv_usec = 50'000;
  storm.it_value.tv_usec = 50'000;
  ASSERT_EQ(0, setitimer(ITIMER_REAL, &storm, nullptr));

  const auto start = std::chrono::steady_clock::now();
  const bool readable = dist::wait_readable(pipefd[0], 400);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  itimerval off{};
  setitimer(ITIMER_REAL, &off, nullptr);
  sigaction(SIGALRM, &old, nullptr);
  ::close(pipefd[0]);
  ::close(pipefd[1]);

  EXPECT_FALSE(readable);
  EXPECT_GE(g_alarms, 2) << "storm never fired; test proves nothing";
  EXPECT_GE(elapsed.count(), 350);
  EXPECT_LT(elapsed.count(), 2000) << "EINTR restarted the full timeout";
}

}  // namespace
}  // namespace revisim
