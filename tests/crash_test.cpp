// Crash-fault injection, progress watchdogs and replayable witnesses.
//
// Covers the crash model end to end: Scheduler::crash semantics (the poised
// operation dies unexecuted, crash-closure of executions), the
// CrashAdversary decorator, crash-branching exhaustive exploration, the
// Block-Update wait-freedom / Scan non-blocking distinction (§3.2) under
// crashes, simulation termination with crashed simulators, post-crash
// solo-termination probes in the protocol checker, and the witness files
// that make every flagged execution reproducible across binaries.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/mutant_snapshot.h"
#include "src/check/crash_worlds.h"
#include "src/check/model_check.h"
#include "src/check/parallel_explore.h"
#include "src/check/protocol_check.h"
#include "src/check/watchdog.h"
#include "src/check/witness.h"
#include "src/memory/register.h"
#include "src/protocols/racing_agreement.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/task.h"
#include "src/sim/driver.h"
#include "src/solo/determinize.h"
#include "src/solo/nd_protocol.h"
#include "src/tasks/task_spec.h"
#include "src/util/fingerprint.h"

namespace revisim {
namespace {

using aug::AugmentedSnapshot;
using aug::MutantAugmentedSnapshot;
using check::CrashWorldSpec;
using check::ExplorableWorld;
using check::explore_schedules;
using check::make_crash_world_factory;
using check::ProgressMonitor;
using check::ScheduleExploreOptions;
using check::Witness;
using runtime::CrashAdversary;
using runtime::make_crash_entry;
using runtime::ProcessId;
using runtime::RoundRobinAdversary;
using runtime::Scheduler;
using runtime::ScriptedAdversary;
using runtime::StepKind;
using runtime::Task;

Task<void> write_once(mem::Register& r, Val v) { co_await r.write(v); }

Task<void> write_twice(mem::Register& r, Val a, Val b) {
  co_await r.write(a);
  co_await r.write(b);
}

// --- Scheduler::crash semantics ---------------------------------------------

TEST(Crash, PoisedOperationDiesUnexecuted) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_once(r, 7), "q1");
  sched.spawn(write_once(r, 9), "q2");
  // Start q1 so its write is poised, then crash it: the write must never
  // reach the register - a crash lands between posing and the atomic step.
  // (run_step on a fresh process runs the prologue AND grants the first
  // step, so q1 is only *poised* before any run_step; crash it cold.)
  sched.crash(0);
  RoundRobinAdversary adv;
  EXPECT_TRUE(sched.run(adv));
  EXPECT_EQ(r.peek(), std::optional<Val>(9));
  EXPECT_TRUE(sched.is_crashed(0));
  EXPECT_FALSE(sched.is_done(0));
  EXPECT_EQ(sched.steps_taken(0), 0u);
}

TEST(Crash, MidOperationCrashDiscardsOnlyTheUnexecutedStep) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_twice(r, 1, 2), "q1");
  sched.run_step(0);  // first write lands
  EXPECT_EQ(r.peek(), std::optional<Val>(1));
  sched.crash(0);     // poised second write dies
  EXPECT_TRUE(sched.all_done());  // crash-closure: only a crashed process left
  EXPECT_EQ(r.peek(), std::optional<Val>(1));
}

TEST(Crash, CrashedProcessIsNeverRunnableAgain) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_once(r, 1), "q1");
  sched.spawn(write_once(r, 2), "q2");
  sched.crash(0);
  auto runnable = sched.runnable();
  ASSERT_EQ(runnable.size(), 1u);
  EXPECT_EQ(runnable[0], 1u);
  EXPECT_THROW(sched.run_step(0), std::logic_error);
  EXPECT_EQ(sched.crashed_count(), 1u);
}

TEST(Crash, ErrorsOnFinishedOrRepeatedCrash) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_once(r, 1), "q1");
  sched.run_step(0);
  ASSERT_TRUE(sched.is_done(0));
  EXPECT_THROW(sched.crash(0), std::logic_error);

  Scheduler sched2;
  mem::Register r2(sched2, "r");
  sched2.spawn(write_once(r2, 1), "q1");
  sched2.crash(0);
  EXPECT_THROW(sched2.crash(0), std::logic_error);
}

TEST(Crash, TraceRecordsCrashEvents) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_twice(r, 1, 2), "q1");
  sched.run_step(0);
  sched.crash(0);
  ASSERT_EQ(sched.trace().size(), 2u);
  const auto& ev = sched.trace().events.back();
  EXPECT_EQ(ev.kind, StepKind::kCrash);
  EXPECT_EQ(ev.process, 0u);
  EXPECT_NE(sched.trace().to_text().find("crash"), std::string::npos);
}

TEST(Crash, StateDigestDistinguishesCrashedFromStalled) {
  // Same steps executed; one world crashed q2, the other merely never
  // scheduled it.  The digests must differ (the crashed flag is state: the
  // residual subtrees differ).
  auto digest = [](bool crash) {
    Scheduler sched;
    mem::Register r(sched, "r");
    sched.spawn(write_once(r, 1), "q1");
    sched.spawn(write_once(r, 2), "q2");
    sched.run_step(0);
    if (crash) {
      sched.crash(1);
    }
    util::HashSink sink;
    sched.state_digest(sink);
    return sink.digest();
  };
  EXPECT_FALSE(digest(true) == digest(false));
}

TEST(Crash, ScheduleEntryEncodingRoundTrips) {
  const ProcessId pid = 5;
  const ProcessId entry = make_crash_entry(pid);
  EXPECT_TRUE(runtime::is_crash_entry(entry));
  EXPECT_FALSE(runtime::is_crash_entry(pid));
  EXPECT_EQ(runtime::crash_entry_target(entry), pid);

  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_once(r, 1), "q1");
  runtime::apply_schedule_entry(sched, make_crash_entry(0));
  EXPECT_TRUE(sched.is_crashed(0));
}

// --- CrashAdversary ---------------------------------------------------------

TEST(CrashAdversary, ScriptedPlanFiresAtStepBoundaries) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_twice(r, 1, 2), "q1");
  sched.spawn(write_twice(r, 3, 4), "q2");
  RoundRobinAdversary base;
  CrashAdversary adv(sched, base, {{/*at_step=*/2, /*pid=*/0}});
  EXPECT_TRUE(sched.run(adv));
  EXPECT_TRUE(sched.is_crashed(0));
  EXPECT_TRUE(sched.is_done(1));
  ASSERT_EQ(adv.performed().size(), 1u);
  EXPECT_EQ(adv.performed()[0].pid, 0u);
  // Round-robin ran q1 then q2 before the crash fired at step boundary 2,
  // so q1's first write landed and its second died with it.
  EXPECT_EQ(sched.steps_taken(0), 1u);
  EXPECT_EQ(r.peek(), std::optional<Val>(4));
}

TEST(CrashAdversary, CrashingEveryoneCompletesTheRun) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_once(r, 1), "q1");
  sched.spawn(write_once(r, 2), "q2");
  RoundRobinAdversary base;
  CrashAdversary adv(sched, base, {{0, 0}, {0, 1}});
  EXPECT_TRUE(sched.run(adv));  // crash-complete execution, not a cut
  EXPECT_EQ(sched.total_steps(), 0u);
  EXPECT_EQ(sched.crashed_count(), 2u);
  EXPECT_EQ(r.peek(), std::nullopt);
}

TEST(CrashAdversary, MootPointsAreDroppedSilently) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_once(r, 1), "q1");
  RoundRobinAdversary base;
  CrashAdversary adv(sched, base, {{/*at_step=*/5, /*pid=*/0}});
  EXPECT_TRUE(sched.run(adv));  // q1 finishes at step 1; the point is moot
  EXPECT_TRUE(adv.performed().empty());
  EXPECT_FALSE(sched.is_crashed(0));
}

TEST(CrashAdversary, SeededRandomPlanIsDeterministicAndValidated) {
  auto plan_for = [](std::uint64_t seed) {
    Scheduler sched;
    mem::Register r(sched, "r");
    sched.spawn(write_once(r, 1), "q1");
    sched.spawn(write_once(r, 2), "q2");
    sched.spawn(write_once(r, 3), "q3");
    RoundRobinAdversary base;
    CrashAdversary adv(sched, base, seed, /*max_crashes=*/2, /*horizon=*/10);
    return adv.plan();
  };
  auto a = plan_for(42);
  auto b = plan_for(42);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(a[0].pid, b[0].pid);
  EXPECT_EQ(a[0].at_step, b[0].at_step);
  EXPECT_NE(a[0].pid, a[1].pid);  // distinct victims

  Scheduler sched;
  RoundRobinAdversary base;
  // No processes spawned yet.
  EXPECT_THROW(CrashAdversary(sched, base, 1, 1, 10), std::invalid_argument);
  mem::Register r(sched, "r");
  sched.spawn(write_once(r, 1), "q1");
  // More crashes than processes; zero horizon.
  EXPECT_THROW(CrashAdversary(sched, base, 1, 2, 10), std::invalid_argument);
  EXPECT_THROW(CrashAdversary(sched, base, 1, 1, 0), std::invalid_argument);
  // Scripted plan naming an unspawned process.
  EXPECT_THROW(CrashAdversary(sched, base, {{0, 3}}), std::invalid_argument);
}

// --- ScriptedAdversary contract ---------------------------------------------

TEST(Scripted, SkipPolicyConsumesStaleEntries) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_once(r, 1), "q1");
  sched.spawn(write_once(r, 2), "q2");
  // q1 finishes after one step; the stale second "0" entry is skipped.
  ScriptedAdversary adv({0, 0, 1}, /*stop_at_end=*/true);
  EXPECT_TRUE(sched.run(adv));
  EXPECT_EQ(adv.position(), 3u);
}

TEST(Scripted, ErrorPolicyThrowsOnStaleEntry) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_once(r, 1), "q1");
  sched.spawn(write_once(r, 2), "q2");
  ScriptedAdversary adv({0, 0, 1}, /*stop_at_end=*/true,
                        ScriptedAdversary::OnUnrunnable::kError);
  EXPECT_THROW(sched.run(adv), std::logic_error);
}

TEST(Scripted, ErrorPolicyThrowsOnCrashedTarget) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_twice(r, 1, 2), "q1");
  sched.spawn(write_once(r, 3), "q2");
  sched.crash(0);
  ScriptedAdversary adv({0, 1}, /*stop_at_end=*/true,
                        ScriptedAdversary::OnUnrunnable::kError);
  EXPECT_THROW(sched.run(adv), std::logic_error);
}

TEST(Scripted, EmptyScriptWithStopAtEndIsAZeroStepCut) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_once(r, 1), "q1");
  ScriptedAdversary adv({}, /*stop_at_end=*/true);
  EXPECT_FALSE(sched.run(adv));  // cut, not completion
  EXPECT_EQ(sched.total_steps(), 0u);
}

TEST(Scripted, EmptyScriptFallsThroughToRoundRobinTail) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_once(r, 1), "q1");
  sched.spawn(write_once(r, 2), "q2");
  ScriptedAdversary adv({}, /*stop_at_end=*/false);
  EXPECT_TRUE(sched.run(adv));
  EXPECT_EQ(sched.total_steps(), 2u);
}

// --- ProgressMonitor --------------------------------------------------------

TEST(Watchdog, RejectsZeroBudget) {
  Scheduler sched;
  EXPECT_THROW(ProgressMonitor(sched, 0), std::invalid_argument);
}

TEST(Watchdog, FlagsOverBudgetOperationsLiveAndCompleted) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_twice(r, 1, 2), "q1");
  ProgressMonitor mon(sched, /*step_budget=*/1);
  const std::size_t tok = mon.begin(0, "double-write");
  sched.run_step(0);
  EXPECT_FALSE(mon.check().has_value());  // 1 own step: at budget
  sched.run_step(0);
  auto live = mon.check();  // 2 own steps, op still open
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(live->process, 0u);
  EXPECT_EQ(live->steps, 2u);
  EXPECT_FALSE(live->completed);
  mon.end(tok);
  auto done = mon.check();  // completed-but-overlong is still a violation
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->completed);
  EXPECT_NE(done->message().find("double-write"), std::string::npos);
  EXPECT_NE(done->message().find("q1"), std::string::npos);
}

TEST(Watchdog, CrashFreezesTheCountAndExcusesTheOperation) {
  Scheduler sched;
  mem::Register r(sched, "r");
  sched.spawn(write_twice(r, 1, 2), "q1");
  sched.spawn(write_twice(r, 3, 4), "q2");
  ProgressMonitor mon(sched, /*step_budget=*/2);
  mon.begin(0, "double-write");
  sched.run_step(0);
  sched.crash(0);  // in-flight op frozen at 1 own step
  sched.run_step(1);
  sched.run_step(1);
  EXPECT_FALSE(mon.check().has_value());  // crash is not starvation
}

// --- crash-branching exploration --------------------------------------------

// Two single-step writers: small enough to count leaves by hand.
class TinyWorld final : public ExplorableWorld {
 public:
  TinyWorld() {
    r_ = std::make_unique<mem::Register>(sched_, "r");
    sched_.spawn(write_once(*r_, 1), "q1");
    sched_.spawn(write_once(*r_, 2), "q2");
  }
  Scheduler& scheduler() override { return sched_; }
  std::optional<std::string> verdict(bool) override { return std::nullopt; }

 private:
  Scheduler sched_;
  std::unique_ptr<mem::Register> r_;
};

TEST(CrashExplore, BranchCountsOnTinyWorld) {
  // Executions of two 1-step writers:
  //   crash-free:      s0 s1 | s1 s0                               = 2
  //   max_crashes = 1: + s0 c1 | s1 c0 | c0 s1 | c1 s0             = 6
  //   max_crashes = 2: + c0 c1 (c1 c0 canonicalized away:
  //                     adjacent crashes commute)                  = 7
  auto factory = [] { return std::make_unique<TinyWorld>(); };
  ScheduleExploreOptions opt;
  EXPECT_EQ(explore_schedules(factory, opt).executions, 2u);
  opt.max_crashes = 1;
  EXPECT_EQ(explore_schedules(factory, opt).executions, 6u);
  opt.max_crashes = 2;
  EXPECT_EQ(explore_schedules(factory, opt).executions, 7u);
}

TEST(CrashExplore, OptionValidation) {
  auto factory = [] { return std::make_unique<TinyWorld>(); };
  ScheduleExploreOptions opt;
  opt.max_steps = 0;
  EXPECT_THROW(explore_schedules(factory, opt), std::invalid_argument);
  opt.max_steps = 4;
  opt.max_crashes = 4;  // crash entries occupy schedule slots
  EXPECT_THROW(explore_schedules(factory, opt), std::invalid_argument);
  opt.max_crashes = 0;
  opt.dedupe_audit = true;  // audit without dedupe
  EXPECT_THROW(explore_schedules(factory, opt), std::invalid_argument);
}

// The acceptance pair: crash-closed exploration of the tiny augmented
// snapshot instance finds NO wait-freedom violation for the real
// Block-Update with up to 2 injected crashes, while the deliberately
// non-wait-free mutant IS flagged - with a witness whose replay reproduces
// the verdict bit for bit.

TEST(CrashExplore, BlockUpdateStaysWaitFreeUnderTwoCrashes) {
  CrashWorldSpec spec;  // aug-bu, f=2, m=2, budget 10
  ScheduleExploreOptions opt;
  opt.max_crashes = 2;
  auto res = explore_schedules(make_crash_world_factory(spec), opt);
  EXPECT_TRUE(res.exhausted);
  EXPECT_FALSE(res.violation) << *res.violation;
  // Regression anchor: deterministic crash-closed leaf count of this
  // instance (changes iff the object's step structure or the crash
  // branching rules change).
  EXPECT_EQ(res.executions, 4357u);
}

TEST(CrashExplore, MutantIsFlaggedAndWitnessReplays) {
  CrashWorldSpec spec;
  spec.world = "aug-mutant";
  ScheduleExploreOptions opt;
  opt.max_crashes = 2;
  auto res = explore_schedules(make_crash_world_factory(spec), opt);
  ASSERT_TRUE(res.violation.has_value());
  EXPECT_NE(res.violation->find("progress violation"), std::string::npos);

  Witness w;
  w.spec = spec;
  w.max_steps = opt.max_steps;
  w.max_crashes = opt.max_crashes;
  w.verdict = *res.violation;
  w.schedule = res.witness;
  // Round-trip through the on-disk format, then replay from the parsed
  // form: the verdict must be re-derived identically.
  const std::string path = "witness_mutant_flagged.txt";
  check::write_witness_file(w, path);
  Witness loaded = check::load_witness_file(path);
  EXPECT_EQ(loaded.spec.world, "aug-mutant");
  EXPECT_EQ(loaded.schedule, w.schedule);
  auto replayed = check::replay_witness(loaded);
  EXPECT_TRUE(replayed.matches);
  ASSERT_TRUE(replayed.verdict.has_value());
  EXPECT_EQ(*replayed.verdict, *res.violation);
  std::remove(path.c_str());
}

TEST(CrashExplore, CrashingTheInterfererRestoresMutantCompliance) {
  // The mutant's violation needs live interference: 9 own steps solo,
  // +2 per interfering update batch.  Crash q1 before it updates and run
  // q2's mutant Block-Update solo: 9 <= 10, no violation - crashes excuse
  // rather than create progress violations.
  CrashWorldSpec spec;
  spec.world = "aug-mutant";
  auto world = make_crash_world_factory(spec)();
  Scheduler& sched = world->scheduler();
  sched.crash(0);
  while (!sched.runnable().empty()) {
    sched.run_step(1);
  }
  EXPECT_TRUE(sched.is_done(1));
  EXPECT_EQ(sched.steps_taken(1), 9u);
  EXPECT_FALSE(world->verdict(true).has_value());
}

TEST(CrashExplore, SerialAndParallelAgreeUnderCrashes) {
  CrashWorldSpec spec;
  ScheduleExploreOptions opt;
  opt.max_crashes = 1;
  auto serial = explore_schedules(make_crash_world_factory(spec), opt);
  check::ParallelExploreOptions popt;
  popt.base = opt;
  popt.threads = 2;
  popt.oversubscribe = true;
  auto parallel =
      check::parallel_explore_schedules(make_crash_world_factory(spec), popt);
  EXPECT_EQ(serial.executions, parallel.executions);
  EXPECT_EQ(serial.exhausted, parallel.exhausted);
  EXPECT_EQ(serial.violation, parallel.violation);
  EXPECT_EQ(serial.witness, parallel.witness);
}

// --- witness format ---------------------------------------------------------

TEST(Witness, TextRoundTripIncludingCrashEntries) {
  Witness w;
  w.spec.world = "aug-bu";
  w.spec.f = 3;
  w.spec.m = 2;
  w.spec.step_budget = 6;
  w.max_steps = 40;
  w.max_crashes = 2;
  w.verdict = "progress violation: q1's Block-Update took 7 own steps";
  w.schedule = {0, 1, make_crash_entry(2), 0, make_crash_entry(1)};
  Witness back = check::parse_witness(check::to_text(w));
  EXPECT_EQ(back.spec.world, w.spec.world);
  EXPECT_EQ(back.spec.f, w.spec.f);
  EXPECT_EQ(back.spec.m, w.spec.m);
  EXPECT_EQ(back.spec.step_budget, w.spec.step_budget);
  EXPECT_EQ(back.max_steps, w.max_steps);
  EXPECT_EQ(back.max_crashes, w.max_crashes);
  EXPECT_EQ(back.verdict, w.verdict);
  EXPECT_EQ(back.schedule, w.schedule);
}

TEST(Witness, PorFlagRoundTripsAndStaysBackwardCompatible) {
  // A witness from a POR run mixing crash entries: the `por 1` line (format
  // v1 revision 2) must survive the round trip alongside the schedule.
  Witness w;
  w.spec.world = "aug-mutant";
  w.spec.f = 2;
  w.spec.m = 2;
  w.spec.step_budget = 8;
  w.max_steps = 32;
  w.max_crashes = 1;
  w.por = true;
  w.verdict = "planted violation";
  w.schedule = {0, make_crash_entry(1), 0, 0, make_crash_entry(0)};
  const std::string text = check::to_text(w);
  EXPECT_NE(text.find("por 1"), std::string::npos);
  Witness back = check::parse_witness(text);
  EXPECT_TRUE(back.por);
  EXPECT_EQ(back.schedule, w.schedule);
  EXPECT_EQ(back.verdict, w.verdict);
  EXPECT_EQ(back.max_crashes, w.max_crashes);

  // Non-POR witnesses serialize without the key - byte-identical to
  // revision 1 output - and revision-1 files parse with por=false.
  w.por = false;
  const std::string old = check::to_text(w);
  EXPECT_EQ(old.find("por"), std::string::npos);
  EXPECT_FALSE(check::parse_witness(old).por);

  // An explicit `por 0` is accepted; junk is rejected.
  EXPECT_FALSE(
      check::parse_witness("revisim-witness v1\npor 0\nend\n").por);
  EXPECT_THROW(check::parse_witness("revisim-witness v1\npor yes\nend\n"),
               std::invalid_argument);
}

TEST(Witness, ParserRejectsMalformedFiles) {
  EXPECT_THROW(check::parse_witness("not a witness\n"), std::invalid_argument);
  EXPECT_THROW(check::parse_witness("revisim-witness v1\nworld aug-bu\n"),
               std::invalid_argument);  // missing end
  EXPECT_THROW(
      check::parse_witness("revisim-witness v1\nschedule x9\nend\n"),
      std::invalid_argument);  // bad entry
  EXPECT_THROW(
      check::parse_witness("revisim-witness v1\nbogus key\nend\n"),
      std::invalid_argument);  // unknown key
  EXPECT_THROW(check::load_witness_file("no_such_witness_file.txt"),
               std::runtime_error);
}

TEST(Witness, ReplayAppliesCrashEntriesAndChecksPids) {
  Witness w;  // aug-bu defaults: f=2, m=2, budget 10
  w.verdict = "";
  // Crash q1 cold, then run q2's Block-Update to completion (6 steps).
  w.schedule = {make_crash_entry(0), 1, 1, 1, 1, 1, 1};
  auto res = check::replay_witness(w);
  EXPECT_TRUE(res.matches);  // accepted on both sides
  EXPECT_EQ(res.steps, 6u);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_FALSE(res.verdict.has_value());

  Witness bad = w;
  bad.schedule = {9};
  EXPECT_THROW(check::replay_witness(bad), std::invalid_argument);

  Witness unknown = w;
  unknown.spec.world = "no-such-world";
  EXPECT_THROW(check::replay_witness(unknown), std::invalid_argument);
}

// --- §3.2 distinction and crash tolerance of the bigger layers --------------

Task<void> endless_updates_local(AugmentedSnapshot& m, ProcessId me) {
  for (;;) {
    std::vector<std::size_t> comps{0};
    std::vector<Val> vals{Val(1)};
    co_await m.BlockUpdate(me, comps, vals);
  }
}

Task<void> one_scan_local(AugmentedSnapshot& m, ProcessId me, bool& done) {
  co_await m.Scan(me);
  done = true;
}

TEST(CrashTolerance, CrashingTheUpdaterUnstarvesScan) {
  // §3.2 under crashes: Scan is non-blocking, not wait-free - a stream of
  // Block-Updates starves it - but the starvation needs a *live* adversary.
  // Crash the updater mid-stream and the double collect stabilizes within
  // two collects: the crash turned an infinite execution into one where
  // Scan's termination is guaranteed.
  Scheduler sched;
  AugmentedSnapshot m(sched, "M", 1, 2);
  bool finished = false;
  sched.spawn(endless_updates_local(m, 0), "q1");
  sched.spawn(one_scan_local(m, 1, finished), "q2");
  std::vector<ProcessId> pattern;
  pattern.push_back(1);  // first collect
  for (int round = 0; round < 10; ++round) {
    for (int s = 0; s < 6; ++s) {
      pattern.push_back(0);  // interfering Block-Update
    }
    pattern.push_back(1);  // L-write
    pattern.push_back(1);  // confirming collect: invalidated again
  }
  ScriptedAdversary starve(pattern, /*stop_at_end=*/true);
  EXPECT_FALSE(sched.run(starve, pattern.size() + 10, false));
  EXPECT_FALSE(finished);
  sched.crash(0);
  RoundRobinAdversary rest;
  EXPECT_TRUE(sched.run(rest));
  EXPECT_TRUE(finished);
}

TEST(CrashTolerance, SimulationTerminatesWithCrashedSimulator) {
  // Theorem 21's simulation is wait-free per simulator: with f = 2
  // simulators, crashing one (f - 1 crashes) must leave the survivor able
  // to finish the whole simulation on its own.
  for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
    Scheduler sched;
    proto::RacingAgreement protocol(4, 2);
    sim::SimulationDriver driver(sched, protocol, {10, 20});
    runtime::RandomAdversary base(seed);
    CrashAdversary adv(sched, base, {{/*at_step=*/10, /*pid=*/0}});
    ASSERT_TRUE(driver.run(adv, 2'000'000)) << "seed " << seed;
    EXPECT_TRUE(sched.is_crashed(0)) << "seed " << seed;
    EXPECT_TRUE(driver.finished(1)) << "seed " << seed;
  }
}

TEST(CrashTolerance, SoloTerminationFromPostCrashConfigurations) {
  // Protocol-level crash closure: from every configuration reachable with
  // up to one crash, every *surviving* process must still terminate solo.
  auto nd = std::make_shared<solo::NDCoinConsensus>(2, 2);
  solo::DeterminizedProtocol det(nd);
  tasks::KSetAgreement consensus(1);
  check::ExploreOptions opt;
  opt.max_depth = 10;
  opt.solo_budget = 1000;
  opt.max_crashes = 1;
  auto res = check::explore(det, {0, 1}, consensus, opt);
  EXPECT_TRUE(res.exhausted);
  EXPECT_FALSE(res.termination_violation) << *res.termination_violation;
}

TEST(CrashTolerance, ProtocolCheckerValidatesCrashOptions) {
  auto nd = std::make_shared<solo::NDCoinConsensus>(2, 2);
  solo::DeterminizedProtocol det(nd);
  tasks::KSetAgreement consensus(1);
  check::ExploreOptions opt;
  opt.max_crashes = 2;  // == process count: nobody left to terminate
  EXPECT_THROW(check::explore(det, {0, 1}, consensus, opt),
               std::invalid_argument);
  opt.max_crashes = 0;
  opt.solo_budget = 0;
  EXPECT_THROW(check::explore(det, {0, 1}, consensus, opt),
               std::invalid_argument);
  opt.solo_budget = 100;
  opt.max_states = 0;
  EXPECT_THROW(check::explore(det, {0, 1}, consensus, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace revisim
