// Distributed schedule exploration: wire-format round trips, the shared
// key-sorted merge, and end-to-end fork-mode runs pinned bit-for-bit
// against the serial explorer.
//
// The parity tests reuse the closed-form ScriptWorld idea from
// parallel_explore_test.cpp: each process performs a fixed number of
// writes and logs its pid, so a completed execution's log *is* its
// schedule, leaf counts are multinomial coefficients, and the
// lexicographically-smallest-witness guarantee is checkable by hand.
// Distributed runs fork real worker processes over loopback TCP, so these
// tests exercise the full serialize/re-replay/merge path, including steals
// donated across the wire.  Failure-path tests use the coordinator's
// fault-injection hook (the worker _Exit()s mid-job, exactly like a
// killed process) to pin the re-queue and partial-summary contracts.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/check/crash_worlds.h"
#include "src/check/explore_core.h"
#include "src/check/explore_merge.h"
#include "src/check/model_check.h"
#include "src/check/parallel_explore.h"
#include "src/dist/coordinator.h"
#include "src/dist/wire.h"
#include "src/dist/worker.h"
#include "src/memory/register.h"
#include "src/runtime/scheduler.h"

namespace revisim {
namespace {

using check::ExplorableWorld;
using check::explore_schedules;
using check::parallel_explore_schedules;
using check::ParallelExploreOptions;
using check::ScheduleExploreOptions;
using check::ScheduleExploreResult;
using dist::DistExploreOptions;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::StepKind;
using runtime::Task;

using Schedule = std::vector<ProcessId>;

Task<void> count_script(Scheduler& sched, std::size_t obj,
                        std::vector<ProcessId>& order, ProcessId me,
                        std::size_t writes) {
  for (std::size_t i = 0; i < writes; ++i) {
    co_await runtime::StepAwaiter<void>(
        sched, [&order, me] { order.push_back(me); }, obj, StepKind::kWrite,
        {});
  }
}

// Processes i = 0..n-1 perform writes[i] steps each and flag a violation on
// any completed execution whose schedule is in `planted`.  Processes with
// index >= first_private write a private register instead of the shared
// one, giving POR step-swap classes to collapse; parity tests that enable
// POR must plant nothing (the order log is not trace-invariant).
class ScriptWorld final : public ExplorableWorld {
 public:
  ScriptWorld(std::vector<std::size_t> writes, std::vector<Schedule> planted,
              std::size_t first_private = SIZE_MAX)
      : planted_(std::move(planted)) {
    const std::size_t shared = sched_.register_object("r");
    for (ProcessId p = 0; p < writes.size(); ++p) {
      const std::size_t obj = p >= first_private
                                  ? sched_.register_object("own")
                                  : shared;
      sched_.spawn(count_script(sched_, obj, order_, p, writes[p]), "q");
    }
  }

  Scheduler& scheduler() override { return sched_; }

  std::optional<std::string> verdict(bool complete) override {
    if (complete &&
        std::find(planted_.begin(), planted_.end(), order_) != planted_.end()) {
      return "planted violation";
    }
    return std::nullopt;
  }

  // The verdict reads the order log, so the fingerprint soundness contract
  // requires folding it in; every state then being unique, dedupe must
  // prune nothing and reproduce undeduped results bit-for-bit.
  void fingerprint_extra(util::StateSink& sink) override {
    util::feed(sink, order_);
  }

 private:
  Scheduler sched_;
  std::vector<ProcessId> order_;
  std::vector<Schedule> planted_;
};

auto script_factory(std::vector<std::size_t> writes,
                    std::vector<Schedule> planted = {},
                    std::size_t first_private = SIZE_MAX) {
  return [writes = std::move(writes), planted = std::move(planted),
          first_private] {
    return std::make_unique<ScriptWorld>(writes, planted, first_private);
  };
}

Task<void> reg_script(mem::TypedRegister<int>& r, std::size_t writes) {
  for (std::size_t i = 1; i <= writes; ++i) {
    co_await r.write(static_cast<int>(i));
  }
}

// POR-reducible fixture: `contended` processes write one shared register
// (every pair of their steps conflicts), the rest write private registers
// (independent, so POR collapses their placements).  The verdict is always
// accepting - trivially trace-invariant - so the test can compare raw
// reduction counters across engines.  Footprints come from the real memory
// primitive; ScriptWorld's raw StepAwaiters are opaque to POR.
class MixedWorld final : public ExplorableWorld {
 public:
  MixedWorld(std::size_t contended, std::size_t private_procs,
             std::size_t writes) {
    regs_.push_back(
        std::make_unique<mem::TypedRegister<int>>(sched_, "shared", 0));
    for (std::size_t p = 0; p < contended; ++p) {
      sched_.spawn(reg_script(*regs_[0], writes), "q");
    }
    for (std::size_t p = 0; p < private_procs; ++p) {
      regs_.push_back(std::make_unique<mem::TypedRegister<int>>(
          sched_, "own" + std::to_string(p), 0));
      sched_.spawn(reg_script(*regs_.back(), writes), "q");
    }
  }

  Scheduler& scheduler() override { return sched_; }

  std::optional<std::string> verdict(bool /*complete*/) override {
    return std::nullopt;
  }

 private:
  Scheduler sched_;
  std::vector<std::unique_ptr<mem::TypedRegister<int>>> regs_;
};

auto mixed_factory(std::size_t contended, std::size_t private_procs,
                   std::size_t writes) {
  return [contended, private_procs, writes] {
    return std::make_unique<MixedWorld>(contended, private_procs, writes);
  };
}

void expect_same(const ScheduleExploreResult& got,
                 const ScheduleExploreResult& want, const std::string& what) {
  EXPECT_EQ(got.executions, want.executions) << what;
  EXPECT_EQ(got.exhausted, want.exhausted) << what;
  EXPECT_EQ(got.violation, want.violation) << what;
  EXPECT_EQ(got.witness, want.witness) << what;
}

// --- wire primitives ---------------------------------------------------------

TEST(Wire, EntryEncodingCarriesCrashFlagInBit63) {
  const ProcessId step = 5;
  const ProcessId crash = runtime::make_crash_entry(7);
  EXPECT_EQ(dist::entry_to_wire(step), 5u);
  EXPECT_EQ(dist::entry_to_wire(crash), (std::uint64_t{1} << 63) | 7u);
  EXPECT_EQ(dist::entry_from_wire(dist::entry_to_wire(step)), step);
  EXPECT_EQ(dist::entry_from_wire(dist::entry_to_wire(crash)), crash);
  EXPECT_TRUE(
      runtime::is_crash_entry(dist::entry_from_wire(dist::entry_to_wire(crash))));
  EXPECT_EQ(runtime::crash_entry_target(
                dist::entry_from_wire(dist::entry_to_wire(crash))),
            7u);
}

TEST(Wire, PrimitiveRoundTrip) {
  dist::WireWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.str(std::string("hello\0world", 11));  // embedded NUL survives
  w.fingerprint(util::Fingerprint{0x1111222233334444ull, 0x5555666677778888ull});
  const Schedule sched{0, 2, runtime::make_crash_entry(1), 0};
  w.schedule(sched);

  dist::WireReader r(w.data(), w.size());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.str(), std::string("hello\0world", 11));
  const util::Fingerprint fp = r.fingerprint();
  EXPECT_EQ(fp.hi, 0x1111222233334444ull);
  EXPECT_EQ(fp.lo, 0x5555666677778888ull);
  EXPECT_EQ(r.schedule(), sched);
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Wire, ReaderRejectsTruncationTrailingBytesAndCorruptCounts) {
  dist::WireWriter w;
  w.u16(7);
  {
    dist::WireReader r(w.data(), w.size());
    EXPECT_THROW(r.u64(), dist::WireError);  // 2 bytes cannot hold a u64
  }
  {
    dist::WireReader r(w.data(), w.size());
    (void)r.u8();
    EXPECT_FALSE(r.done());
    EXPECT_THROW(r.expect_done(), dist::WireError);  // trailing byte
  }
  dist::WireWriter c;
  c.u32(0xffffffffu);  // schedule count with no entries behind it
  {
    dist::WireReader r(c.data(), c.size());
    EXPECT_THROW(r.schedule(), dist::WireError);
  }
}

// --- typed message round trips ----------------------------------------------

TEST(Wire, HelloRoundTripAndVersionCheck) {
  dist::HelloMsg m;
  m.worker = 3;
  m.max_steps = 48;
  m.warm_worlds = 5;
  m.max_crashes = 2;
  m.record_traces = true;
  m.dedupe_states = true;
  m.dedupe_audit = true;
  m.dedupe_adaptive = true;
  m.por = true;
  m.live_interval = 99;
  m.probe_interval = 1;
  m.fp_batch = 7;
  m.fp_window = 21;
  m.world = "aug-mutant";
  m.f = 2;
  m.m = 3;
  m.step_budget = 10;

  dist::WireWriter w;
  dist::encode_hello(w, m);
  dist::WireReader r(w.data(), w.size());
  const dist::HelloMsg got = dist::decode_hello(r);
  r.expect_done();
  EXPECT_EQ(got.worker, m.worker);
  EXPECT_EQ(got.max_steps, m.max_steps);
  EXPECT_EQ(got.warm_worlds, m.warm_worlds);
  EXPECT_EQ(got.max_crashes, m.max_crashes);
  EXPECT_EQ(got.record_traces, m.record_traces);
  EXPECT_EQ(got.dedupe_states, m.dedupe_states);
  EXPECT_EQ(got.dedupe_audit, m.dedupe_audit);
  EXPECT_EQ(got.dedupe_adaptive, m.dedupe_adaptive);
  EXPECT_EQ(got.por, m.por);
  EXPECT_EQ(got.live_interval, m.live_interval);
  EXPECT_EQ(got.probe_interval, m.probe_interval);
  EXPECT_EQ(got.fp_batch, m.fp_batch);
  EXPECT_EQ(got.fp_window, m.fp_window);
  EXPECT_EQ(got.world, m.world);
  EXPECT_EQ(got.f, m.f);
  EXPECT_EQ(got.m, m.m);
  EXPECT_EQ(got.step_budget, m.step_budget);

  // A flipped magic byte is version skew, not garbage-in-garbage-out.
  std::vector<std::uint8_t> bad(w.data(), w.data() + w.size());
  bad[0] ^= 0xff;
  dist::WireReader br(bad.data(), bad.size());
  EXPECT_THROW((void)dist::decode_hello(br), dist::WireError);
}

TEST(Wire, JobAndResultRoundTripEverySubtreeField) {
  dist::JobMsg job;
  job.id = 42;
  job.budget = 1234;
  job.fault_after = 9;
  job.prefix = {0, 1, runtime::make_crash_entry(0)};
  job.choices = {2, runtime::make_crash_entry(1)};
  job.sleep = {1, 2};
  job.sleep_inherited = 1;
  job.no_dedupe = true;
  dist::WireWriter w;
  dist::encode_job(w, job);
  {
    dist::WireReader r(w.data(), w.size());
    const dist::JobMsg got = dist::decode_job(r);
    r.expect_done();
    EXPECT_EQ(got.id, job.id);
    EXPECT_EQ(got.budget, job.budget);
    EXPECT_EQ(got.fault_after, job.fault_after);
    EXPECT_EQ(got.prefix, job.prefix);
    EXPECT_EQ(got.choices, job.choices);
    EXPECT_EQ(got.sleep, job.sleep);
    EXPECT_EQ(got.sleep_inherited, job.sleep_inherited);
    EXPECT_EQ(got.no_dedupe, job.no_dedupe);
  }

  {
    // An inherited count past the sleep list is corruption, not data.
    dist::JobMsg bad = job;
    bad.sleep_inherited = 3;
    w.clear();
    dist::encode_job(w, bad);
    dist::WireReader r(w.data(), w.size());
    EXPECT_THROW(dist::decode_job(r), dist::WireError);
  }

  dist::JobResultMsg res;
  res.id = 42;
  res.result.executions = 77;
  res.result.fully_explored = false;
  res.result.violation = "planted violation";
  res.result.witness = {0, runtime::make_crash_entry(1), 0};
  res.result.violation_index = 13;
  res.result.subtrees_pruned = 3;
  res.result.states_seen = 21;
  res.result.donations = 2;
  res.result.replay_steps_saved = 1001;
  res.result.por_skipped = 5;
  res.result.dependent_wakeups = 6;
  res.result.footprint_bytes = 4096;
  res.result.dedupe_disabled = true;
  w.clear();
  dist::encode_job_result(w, res);
  {
    dist::WireReader r(w.data(), w.size());
    const dist::JobResultMsg got = dist::decode_job_result(r);
    r.expect_done();
    EXPECT_EQ(got.id, res.id);
    EXPECT_EQ(got.result.executions, res.result.executions);
    EXPECT_EQ(got.result.fully_explored, res.result.fully_explored);
    EXPECT_EQ(got.result.violation, res.result.violation);
    EXPECT_EQ(got.result.witness, res.result.witness);
    EXPECT_EQ(got.result.violation_index, res.result.violation_index);
    EXPECT_EQ(got.result.subtrees_pruned, res.result.subtrees_pruned);
    EXPECT_EQ(got.result.states_seen, res.result.states_seen);
    EXPECT_EQ(got.result.donations, res.result.donations);
    EXPECT_EQ(got.result.replay_steps_saved, res.result.replay_steps_saved);
    EXPECT_EQ(got.result.por_skipped, res.result.por_skipped);
    EXPECT_EQ(got.result.dependent_wakeups, res.result.dependent_wakeups);
    EXPECT_EQ(got.result.footprint_bytes, res.result.footprint_bytes);
    EXPECT_EQ(got.result.dedupe_disabled, res.result.dedupe_disabled);
  }
}

TEST(Wire, ControlMessagesRoundTrip) {
  dist::WireWriter w;
  {
    dist::HelloAckMsg m;
    m.ok = false;
    m.error = "unknown world";
    dist::encode_hello_ack(w, m);
    dist::WireReader r(w.data(), w.size());
    const dist::HelloAckMsg got = dist::decode_hello_ack(r);
    r.expect_done();
    EXPECT_EQ(got.ok, m.ok);
    EXPECT_EQ(got.error, m.error);
  }
  {
    dist::JobErrorMsg m;
    m.id = 8;
    m.message = "boom";
    w.clear();
    dist::encode_job_error(w, m);
    dist::WireReader r(w.data(), w.size());
    const dist::JobErrorMsg got = dist::decode_job_error(r);
    r.expect_done();
    EXPECT_EQ(got.id, m.id);
    EXPECT_EQ(got.message, m.message);
  }
  {
    dist::LiveMsg m;
    m.id = 9;
    m.executions = 512;
    w.clear();
    dist::encode_live(w, m);
    dist::WireReader r(w.data(), w.size());
    const dist::LiveMsg got = dist::decode_live(r);
    r.expect_done();
    EXPECT_EQ(got.id, m.id);
    EXPECT_EQ(got.executions, m.executions);
  }
  {
    dist::DonateMsg m;
    m.parent = 4;
    m.prefix = {1, 0};
    m.choices = {0, 1, runtime::make_crash_entry(0)};
    m.sleep = {1, 2};
    m.sleep_inherited = 2;
    w.clear();
    dist::encode_donate(w, m);
    dist::WireReader r(w.data(), w.size());
    const dist::DonateMsg got = dist::decode_donate(r);
    r.expect_done();
    EXPECT_EQ(got.parent, m.parent);
    EXPECT_EQ(got.prefix, m.prefix);
    EXPECT_EQ(got.choices, m.choices);
    EXPECT_EQ(got.sleep, m.sleep);
    EXPECT_EQ(got.sleep_inherited, m.sleep_inherited);
  }
  {
    dist::CreditMsg m;
    m.id = 6;
    m.budget = 300;
    m.abort = true;
    w.clear();
    dist::encode_credit(w, m);
    dist::WireReader r(w.data(), w.size());
    const dist::CreditMsg got = dist::decode_credit(r);
    r.expect_done();
    EXPECT_EQ(got.id, m.id);
    EXPECT_EQ(got.budget, m.budget);
    EXPECT_EQ(got.abort, m.abort);
  }
  {
    dist::FpInsertMsg m;
    m.fp = util::Fingerprint{1, 2};
    m.has_canonical = true;
    m.canonical = "state text";
    w.clear();
    dist::encode_fp_insert(w, m);
    dist::WireReader r(w.data(), w.size());
    const dist::FpInsertMsg got = dist::decode_fp_insert(r);
    r.expect_done();
    EXPECT_EQ(got.fp.hi, m.fp.hi);
    EXPECT_EQ(got.fp.lo, m.fp.lo);
    EXPECT_EQ(got.has_canonical, m.has_canonical);
    EXPECT_EQ(got.canonical, m.canonical);
  }
  {
    dist::FpReplyMsg m;
    m.was_new = true;
    w.clear();
    dist::encode_fp_reply(w, m);
    dist::WireReader r(w.data(), w.size());
    EXPECT_EQ(dist::decode_fp_reply(r).was_new, true);
    r.expect_done();
  }
}

// --- the shared merge, unit-level -------------------------------------------

TEST(MergeJobs, SumsTelemetryOverCompletedRecordsOnly) {
  check::detail::SubtreeResult a;
  a.executions = 3;
  a.replay_steps_saved = 10;
  a.por_skipped = 2;
  check::detail::SubtreeResult b;
  b.executions = 4;
  b.replay_steps_saved = 20;
  b.dependent_wakeups = 5;
  const Schedule ka{0};
  const Schedule kb{1};
  std::vector<check::detail::MergeJob> jobs(2);
  jobs[0] = {&kb, check::detail::MergeJob::State::kDone, &b, nullptr};
  jobs[1] = {&ka, check::detail::MergeJob::State::kDone, &a, nullptr};
  auto res = check::detail::merge_job_results(jobs, 1000, 1, {});
  EXPECT_EQ(res.executions, 7u);
  EXPECT_TRUE(res.exhausted);
  EXPECT_FALSE(res.violation);
  EXPECT_EQ(res.replay_steps_saved, 30u);
  EXPECT_EQ(res.por_skipped, 2u);
  EXPECT_EQ(res.dependent_wakeups, 5u);
}

TEST(MergeJobs, FailedRecordDegradesWithAttemptCount) {
  check::detail::SubtreeResult a;
  a.executions = 3;
  const Schedule ka{0};
  const Schedule kb{1};
  const std::string why = "worker 1 disconnected mid-job";
  std::vector<check::detail::MergeJob> jobs(2);
  jobs[0] = {&ka, check::detail::MergeJob::State::kDone, &a, nullptr};
  jobs[1] = {&kb, check::detail::MergeJob::State::kFailed, nullptr, &why};
  auto res = check::detail::merge_job_results(jobs, 1000, 3, {});
  ASSERT_TRUE(res.error.has_value());
  EXPECT_NE(res.error->find("failed after 3 attempt(s)"), std::string::npos);
  EXPECT_NE(res.error->find(why), std::string::npos);
  EXPECT_FALSE(res.exhausted);
  EXPECT_EQ(res.executions, 3u);  // the explored lexicographic prefix
}

TEST(MergeJobs, UnfinishedIsTimeoutOrNamedLoss) {
  const Schedule ka{0};
  std::vector<check::detail::MergeJob> jobs(1);
  jobs[0] = {&ka, check::detail::MergeJob::State::kUnfinished, nullptr,
             nullptr};
  auto timed = check::detail::merge_job_results(jobs, 1000, 1, {});
  EXPECT_TRUE(timed.timed_out);
  EXPECT_FALSE(timed.exhausted);

  jobs[0] = {&ka, check::detail::MergeJob::State::kUnfinished, nullptr,
             nullptr};
  auto lost = check::detail::merge_job_results(jobs, 1000, 1,
                                               "every worker disconnected");
  EXPECT_FALSE(lost.timed_out);
  ASSERT_TRUE(lost.error.has_value());
  EXPECT_EQ(*lost.error, "every worker disconnected");
  EXPECT_FALSE(lost.exhausted);
}

// --- end-to-end fork-mode parity --------------------------------------------

TEST(DistParity, TwoAndFourWorkersBitIdenticalToSerial) {
  // writes {3,3,2}: 8!/(3!3!2!) = 560 leaves.
  auto serial = explore_schedules(script_factory({3, 3, 2}));
  ASSERT_EQ(serial.executions, 560u);
  ASSERT_TRUE(serial.exhausted);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    DistExploreOptions opt;
    opt.workers = workers;
    auto dist = dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
    expect_same(dist, serial, "workers=" + std::to_string(workers));
    EXPECT_FALSE(dist.error.has_value());
    EXPECT_GE(dist.jobs, 1u);
    EXPECT_LE(dist.steals, dist.jobs - 1);  // aggregation contract
  }
}

// Satellite: the probe cadence is a pure latency/syscall knob, never a
// semantic one.  At dist_probe_interval=1 (pump the control channel at
// every execution boundary - the cadence the wire bit-parity tests use)
// the merged summary must still be bit-identical to serial.
TEST(DistParity, ProbeIntervalOneBitIdenticalToSerial) {
  auto serial = explore_schedules(script_factory({3, 3, 2}));
  ASSERT_TRUE(serial.exhausted);
  DistExploreOptions opt;
  opt.workers = 2;
  opt.base.dist_probe_interval = 1;
  auto dist = dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  expect_same(dist, serial, "probe_interval=1");
  EXPECT_FALSE(dist.error.has_value());

  // And with dedupe on: every-execution pumping drains verdicts at the
  // fastest possible cadence; the all-distinct world must still prune
  // nothing and match the undeduped run bit-for-bit.
  DistExploreOptions dopt;
  dopt.workers = 2;
  dopt.base.dist_probe_interval = 1;
  dopt.base.dedupe_states = true;
  auto ddist = dist::dist_explore_schedules(script_factory({3, 3, 2}), dopt);
  expect_same(ddist, serial, "probe_interval=1 + dedupe");
  EXPECT_FALSE(ddist.error.has_value());
}

TEST(DistParity, LexSmallestWitnessAcrossWorkers) {
  // Two planted violations; serial DFS reports the lexicographically
  // smaller schedule (0101 < 1100), and so must every distributed run.
  const std::vector<Schedule> planted{{1, 1, 0, 0}, {0, 1, 0, 1}};
  auto serial = explore_schedules(script_factory({2, 2}, planted));
  ASSERT_TRUE(serial.violation.has_value());
  ASSERT_EQ(serial.witness, (Schedule{0, 1, 0, 1}));
  DistExploreOptions opt;
  opt.workers = 2;
  auto dist =
      dist::dist_explore_schedules(script_factory({2, 2}, planted), opt);
  expect_same(dist, serial, "lex-smallest witness");
}

TEST(DistParity, CapTruncationMatchesSerial) {
  ScheduleExploreOptions base;
  base.max_executions = 100;  // < 560
  auto serial = explore_schedules(script_factory({3, 3, 2}), base);
  ASSERT_EQ(serial.executions, 100u);
  ASSERT_FALSE(serial.exhausted);
  DistExploreOptions opt;
  opt.base = base;
  opt.workers = 2;
  opt.live_interval = 16;  // tight credits so the cap binds mid-run
  auto dist = dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  expect_same(dist, serial, "cap truncation");
}

TEST(DistParity, CrashBranchingRegistryWorldMatchesSerial) {
  // Budget 6 is aug-bu's smallest violation-free budget: the whole
  // crash-closed tree (2754 executions at max_crashes=1) gets walked.
  check::CrashWorldSpec spec;
  spec.world = "aug-bu";
  spec.f = 2;
  spec.m = 2;
  spec.step_budget = 6;
  ScheduleExploreOptions base;
  base.max_crashes = 1;
  auto serial = explore_schedules(check::make_crash_world_factory(spec), base);
  ASSERT_TRUE(serial.exhausted);
  ASSERT_FALSE(serial.violation.has_value());
  ASSERT_GT(serial.executions, 1000u);
  DistExploreOptions opt;
  opt.base = base;
  opt.workers = 2;
  auto dist = dist::dist_explore_schedules(check::make_crash_world_factory(spec),
                                           opt);
  expect_same(dist, serial, "crash-branching world");

  // Budget 5 starves the protocol: a progress violation exists, and the
  // distributed run must report the same lex-smallest crash-bearing
  // witness schedule the serial engine finds.
  spec.step_budget = 5;
  auto vserial = explore_schedules(check::make_crash_world_factory(spec), base);
  ASSERT_TRUE(vserial.violation.has_value());
  auto vdist = dist::dist_explore_schedules(
      check::make_crash_world_factory(spec), opt);
  expect_same(vdist, vserial, "violating crash-branching world");
}

TEST(DistParity, PorCountersDecompositionInvariant) {
  // Two processes contend on the shared register, one writes a private
  // one: POR collapses the private writer's placements, so por_skipped and
  // dependent_wakeups are nonzero - and, on an exhausted undeduped search,
  // must be identical across serial, in-process parallel and distributed
  // decompositions (the documented aggregation contract).
  ScheduleExploreOptions base;
  base.por = true;
  auto serial = explore_schedules(mixed_factory(2, 1, 2), base);
  ASSERT_TRUE(serial.exhausted);
  ASSERT_GT(serial.por_skipped, 0u);

  ParallelExploreOptions par;
  par.base = base;
  par.threads = 2;
  par.oversubscribe = true;
  par.serial_probe_executions = 0;
  auto inproc = parallel_explore_schedules(mixed_factory(2, 1, 2), par);
  expect_same(inproc, serial, "in-process POR");
  EXPECT_EQ(inproc.por_skipped, serial.por_skipped);
  EXPECT_EQ(inproc.dependent_wakeups, serial.dependent_wakeups);

  DistExploreOptions opt;
  opt.base = base;
  opt.workers = 2;
  auto dist = dist::dist_explore_schedules(mixed_factory(2, 1, 2), opt);
  expect_same(dist, serial, "distributed POR");
  EXPECT_EQ(dist.por_skipped, serial.por_skipped);
  EXPECT_EQ(dist.dependent_wakeups, serial.dependent_wakeups);
  EXPECT_LE(dist.steals, dist.jobs - 1);
}

// --- sharded fingerprint service --------------------------------------------

TEST(DistDedupe, AllStatesDistinctMeansNoPruningAnywhere) {
  // ScriptWorld folds the order log into the fingerprint, so every state is
  // unique: the sharded service must answer "new" to every insert and the
  // run must reproduce the undeduped results bit-for-bit.
  auto serial = explore_schedules(script_factory({3, 3, 2}));
  DistExploreOptions opt;
  opt.workers = 2;
  opt.base.dedupe_states = true;
  opt.fp_shards = 4;
  auto dist = dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  expect_same(dist, serial, "dedupe on all-distinct states");
  EXPECT_GT(dist.states_seen, 0u);
}

TEST(DistDedupe, ShardedServiceKeepsVerdictAndBoundsStates) {
  check::CrashWorldSpec spec;
  spec.world = "aug-bu";
  spec.f = 2;
  spec.m = 2;
  spec.step_budget = 6;
  ScheduleExploreOptions base;
  base.max_crashes = 1;
  auto undeduped =
      explore_schedules(check::make_crash_world_factory(spec), base);
  base.dedupe_states = true;
  auto serial = explore_schedules(check::make_crash_world_factory(spec), base);
  ASSERT_TRUE(serial.exhausted);
  ASSERT_LT(serial.executions, undeduped.executions);  // dedupe really prunes

  DistExploreOptions opt;
  opt.base = base;
  opt.workers = 2;
  opt.fp_shards = 4;
  auto dist = dist::dist_explore_schedules(check::make_crash_world_factory(spec),
                                           opt);
  EXPECT_EQ(dist.violation, serial.violation);
  EXPECT_EQ(dist.exhausted, serial.exhausted);
  // Claim-then-walk across the shards: never more distinct states than the
  // serial table records, and never more executions than the undeduped tree.
  // (Speculative descent can overlap the serial DEDUPED execution count -
  // work done before a duplicate verdict lands stays counted - but it only
  // ever prunes relative to the full tree, so the undeduped bound holds.)
  EXPECT_LE(dist.states_seen, serial.states_seen);
  EXPECT_LE(dist.executions, undeduped.executions);
  EXPECT_FALSE(dist.error.has_value());
}

TEST(DistDedupe, AuditModeRunsClean) {
  check::CrashWorldSpec spec;
  spec.world = "aug-bu";
  spec.f = 2;
  spec.m = 2;
  spec.step_budget = 6;
  DistExploreOptions opt;
  opt.base.max_crashes = 1;
  opt.base.dedupe_states = true;
  opt.base.dedupe_audit = true;
  opt.workers = 2;
  auto dist = dist::dist_explore_schedules(check::make_crash_world_factory(spec),
                                           opt);
  EXPECT_FALSE(dist.error.has_value());
  EXPECT_TRUE(dist.exhausted);
  EXPECT_FALSE(dist.violation.has_value());
}

// --- worker loss -------------------------------------------------------------

TEST(DistFailure, CrashedWorkerJobRequeuesAndRunCompletes) {
  auto serial = explore_schedules(script_factory({3, 3, 2}));
  DistExploreOptions opt;
  opt.workers = 2;
  // Donation-free run: the faulting job must not have donated, so the
  // re-queue (rather than the degradation) path is what gets exercised.
  opt.steal_requests = false;
  opt.fault_first_job_after = 25;  // worker 0 _Exit()s mid-seed-job
  auto dist = dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  expect_same(dist, serial, "complete after re-queue");
  EXPECT_FALSE(dist.error.has_value());
  EXPECT_FALSE(dist.timed_out);
}

TEST(DistFailure, RetryBudgetExhaustionYieldsPartialSummary) {
  DistExploreOptions opt;
  opt.workers = 2;
  opt.steal_requests = false;
  opt.fault_first_job_after = 25;
  opt.job_retries = 0;  // the one lost attempt is already over budget
  auto dist = dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  ASSERT_TRUE(dist.error.has_value());
  EXPECT_NE(dist.error->find("disconnected"), std::string::npos);
  EXPECT_FALSE(dist.exhausted);
}

TEST(DistFailure, EveryWorkerLostReturnsInsteadOfHanging) {
  DistExploreOptions opt;
  opt.workers = 1;
  opt.steal_requests = false;
  opt.fault_first_job_after = 25;  // the only worker dies; nobody can retry
  auto dist = dist::dist_explore_schedules(script_factory({3, 3, 2}), opt);
  ASSERT_TRUE(dist.error.has_value());
  EXPECT_NE(dist.error->find("every worker disconnected"), std::string::npos);
  EXPECT_FALSE(dist.exhausted);
}

// --- cluster handshake (spec-shipping) over a socketpair ---------------------

TEST(DistCluster, HelloShipsRegistryWorldToFactorylessWorker) {
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(sv[0]);
    try {
      dist::serve_connection(sv[1], nullptr);  // world must come from hello
    } catch (...) {
    }
    std::_Exit(0);
  }
  ::close(sv[1]);
  check::CrashWorldSpec spec;
  spec.world = "aug-bu";
  spec.f = 2;
  spec.m = 2;
  spec.step_budget = 6;
  DistExploreOptions opt;
  opt.base.max_crashes = 1;
  auto serial =
      explore_schedules(check::make_crash_world_factory(spec), opt.base);
  ASSERT_GT(serial.executions, 1000u);
  auto dist = dist::coordinate({sv[0]}, opt, &spec);
  int status = 0;
  ::waitpid(pid, &status, 0);
  expect_same(dist, serial, "cluster spec-shipping");
  EXPECT_FALSE(dist.error.has_value());
}

TEST(DistCluster, UnknownWorldIsRejectedAtHandshake) {
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(sv[0]);
    try {
      dist::serve_connection(sv[1], nullptr);
    } catch (...) {
    }
    std::_Exit(0);
  }
  ::close(sv[1]);
  check::CrashWorldSpec spec;
  spec.world = "no-such-world";
  DistExploreOptions opt;
  auto dist = dist::coordinate({sv[0]}, opt, &spec);
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(dist.error.has_value());
  EXPECT_FALSE(dist.exhausted);
  EXPECT_EQ(dist.executions, 0u);
}

}  // namespace
}  // namespace revisim
