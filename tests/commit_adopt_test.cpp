// Commit-adopt (the substrate under the consensus witness): CA1-CA3 checked
// exhaustively on small instances and under randomized stress.
#include <gtest/gtest.h>

#include <deque>
#include <unordered_set>

#include "src/protocols/commit_adopt.h"
#include "src/protocols/protocol_runner.h"

namespace revisim {
namespace {

using proto::ca_committed;
using proto::ca_value;
using proto::CommitAdopt;

// CA1-CA3 on a finished (or partially finished) run.
std::string check_ca(const std::vector<Val>& inputs,
                     const proto::ProtocolRun& run) {
  std::optional<std::int32_t> committed;
  for (std::size_t i = 0; i < run.processes(); ++i) {
    if (!run.done(i)) {
      continue;
    }
    const Val out = *run.output(i);
    // CA3: values are proposals.
    bool is_input = false;
    for (Val x : inputs) {
      is_input = is_input || static_cast<std::int32_t>(x) == ca_value(out);
    }
    if (!is_input) {
      return "CA3: returned value is not a proposal";
    }
    if (ca_committed(out)) {
      if (committed && *committed != ca_value(out)) {
        return "two different committed values";
      }
      committed = ca_value(out);
    }
  }
  if (committed) {
    // CA2: everyone (who finished) returns the committed value.
    for (std::size_t i = 0; i < run.processes(); ++i) {
      if (run.done(i) && ca_value(*run.output(i)) != *committed) {
        return "CA2: non-committed return differs from committed value";
      }
    }
  }
  return {};
}

TEST(CommitAdopt, SoloCommitsOwnValue) {
  CommitAdopt p(3);
  proto::ProtocolRun run(p, {7, 8, 9});
  ASSERT_TRUE(run.run_solo(1, 100));
  EXPECT_TRUE(ca_committed(*run.output(1)));
  EXPECT_EQ(ca_value(*run.output(1)), 8);
}

TEST(CommitAdopt, CA1UniformProposalsCommitEverywhere) {
  CommitAdopt p(4);
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    proto::ProtocolRun run(p, {5, 5, 5, 5});
    ASSERT_TRUE(run.run_random(seed, 10'000));
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(ca_committed(*run.output(i))) << "seed " << seed;
      EXPECT_EQ(ca_value(*run.output(i)), 5);
    }
  }
}

TEST(CommitAdopt, ExhaustiveTwoProcesses) {
  // One-shot and wait-free: the full state space is finite; enumerate all
  // of it and check CA1-CA3 in every configuration.
  CommitAdopt p(2);
  const std::vector<Val> inputs{0, 1};
  std::deque<proto::ProtocolRun> frontier;
  std::unordered_set<std::string> seen;
  proto::ProtocolRun init(p, inputs);
  seen.insert(init.state_key());
  frontier.push_back(std::move(init));
  std::size_t states = 0;
  while (!frontier.empty()) {
    proto::ProtocolRun cfg = std::move(frontier.front());
    frontier.pop_front();
    ++states;
    const std::string verdict = check_ca(inputs, cfg);
    ASSERT_TRUE(verdict.empty()) << verdict << " at " << cfg.state_key();
    for (std::size_t i = 0; i < 2; ++i) {
      if (cfg.done(i)) {
        continue;
      }
      proto::ProtocolRun next = cfg;
      next.step(i);
      if (seen.insert(next.state_key()).second) {
        frontier.push_back(std::move(next));
      }
    }
  }
  EXPECT_GT(states, 30u);
  EXPECT_LT(states, 100'000u);  // genuinely finite (one-shot)
}

TEST(CommitAdopt, ExhaustiveThreeProcesses) {
  CommitAdopt p(3);
  const std::vector<Val> inputs{0, 1, 1};
  std::deque<proto::ProtocolRun> frontier;
  std::unordered_set<std::string> seen;
  proto::ProtocolRun init(p, inputs);
  seen.insert(init.state_key());
  frontier.push_back(std::move(init));
  while (!frontier.empty()) {
    proto::ProtocolRun cfg = std::move(frontier.front());
    frontier.pop_front();
    const std::string verdict = check_ca(inputs, cfg);
    ASSERT_TRUE(verdict.empty()) << verdict << " at " << cfg.state_key();
    for (std::size_t i = 0; i < 3; ++i) {
      if (cfg.done(i)) {
        continue;
      }
      proto::ProtocolRun next = cfg;
      next.step(i);
      if (seen.insert(next.state_key()).second) {
        frontier.push_back(std::move(next));
      }
    }
  }
}

TEST(CommitAdopt, WaitFreeStepBound) {
  // Each process takes at most 3 scans + 2 updates = 5 shared steps.
  CommitAdopt p(5);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    proto::ProtocolRun run(p, {1, 2, 3, 4, 5});
    ASSERT_TRUE(run.run_random(seed, 10'000));
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_LE(run.steps_taken(i), 5u);
    }
  }
}

TEST(CommitAdopt, StressManyProcesses) {
  CommitAdopt p(7);
  const std::vector<Val> inputs{0, 1, 0, 1, 2, 2, 0};
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    proto::ProtocolRun run(p, inputs);
    ASSERT_TRUE(run.run_random(seed, 10'000));
    const std::string verdict = check_ca(inputs, run);
    EXPECT_TRUE(verdict.empty()) << verdict << " seed " << seed;
  }
}

}  // namespace
}  // namespace revisim
