// State-fingerprint soundness and transposition-table behaviour.
//
// The dedupe contract rests on two properties checked here: worlds that
// reach the same canonical global state through different schedule prefixes
// hash equal (so transpositions actually merge), and perturbing any
// ingredient of the canonical state - a register's contents, a process's
// poised step, its step count, its done flag - changes the hash (so states
// with different residual behaviour never merge).  On top of that, serial
// dedupe runs must preserve the explorer's verdict while pruning at least
// half the executions on a state-merging world, and collision-audit mode
// must turn a fabricated 128-bit collision into a loud failure.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/check/model_check.h"
#include "src/check/state_table.h"
#include "src/memory/register.h"
#include "src/runtime/scheduler.h"
#include "src/util/fingerprint.h"

namespace revisim {
namespace {

using check::ExplorableWorld;
using check::explore_schedules;
using check::ScheduleExploreOptions;
using check::StateFingerprintCollision;
using check::StateTable;
using mem::TypedRegister;
using runtime::ProcessId;
using runtime::Scheduler;
using runtime::Task;

util::Fingerprint digest_of(Scheduler& sched) {
  util::HashSink sink;
  sched.state_digest(sink);
  return sink.digest();
}

Task<void> write_script(TypedRegister<Val>& reg, Val v, std::size_t writes) {
  for (std::size_t i = 0; i < writes; ++i) {
    co_await reg.write(v);
  }
}

Task<void> read_script(TypedRegister<Val>& reg, std::size_t reads) {
  for (std::size_t i = 0; i < reads; ++i) {
    co_await reg.read();
  }
}

// Two processes writing fixed values to *disjoint* registers: any two
// schedules with equal per-process step counts reach identical states.
struct DisjointWriters {
  Scheduler sched;
  TypedRegister<Val> a{sched, "A", 0};
  TypedRegister<Val> b{sched, "B", 0};

  explicit DisjointWriters(Val va = 5, Val vb = 9) {
    sched.spawn(write_script(a, va, 2), "p");
    sched.spawn(write_script(b, vb, 2), "q");
  }
};

TEST(Fingerprint, DeterministicAcrossWorldInstances) {
  DisjointWriters w1, w2;
  EXPECT_EQ(digest_of(w1.sched), digest_of(w2.sched));
  w1.sched.run_step(0);
  w2.sched.run_step(0);
  EXPECT_EQ(digest_of(w1.sched), digest_of(w2.sched));
}

TEST(Fingerprint, EqualStatesViaDifferentPrefixesHashEqual) {
  // Schedules 01 and 10 commute on disjoint registers: same step counts,
  // same contents, same poised steps - one canonical state, one hash.
  DisjointWriters w1, w2;
  w1.sched.run_step(0);
  w1.sched.run_step(1);
  w2.sched.run_step(1);
  w2.sched.run_step(0);
  EXPECT_EQ(digest_of(w1.sched), digest_of(w2.sched));

  // The full canonical text agrees too, not just the 128-bit hash.
  std::string t1, t2;
  util::TextSink s1(t1), s2(t2);
  w1.sched.state_digest(s1);
  w2.sched.state_digest(s2);
  EXPECT_EQ(t1, t2);
  EXPECT_FALSE(t1.empty());
}

TEST(Fingerprint, RegisterContentsChangeHash) {
  DisjointWriters w1(5, 9), w2(6, 9);  // p writes 5 vs 6
  EXPECT_EQ(digest_of(w1.sched), digest_of(w2.sched));  // not yet written
  w1.sched.run_step(0);
  w2.sched.run_step(0);
  EXPECT_NE(digest_of(w1.sched), digest_of(w2.sched));
}

TEST(Fingerprint, StepCountChangesHash) {
  // Two writes of the same value: contents and poised step agree after one
  // and after two steps; only the step count separates the states.  It
  // must - the remaining depth budget differs.
  DisjointWriters w1, w2;
  w1.sched.run_step(0);
  w2.sched.run_step(0);
  w2.sched.run_step(0);
  EXPECT_NE(digest_of(w1.sched), digest_of(w2.sched));
}

Task<void> read_two(TypedRegister<Val>& first, TypedRegister<Val>& second) {
  co_await first.read();
  co_await second.read();
}

Task<void> read_then_write(TypedRegister<Val>& reg, bool second_is_read) {
  co_await reg.read();
  if (second_is_read) {
    co_await reg.read();
  } else {
    co_await reg.write(0);  // writes the value already there
  }
}

TEST(Fingerprint, PoisedObjectChangesHash) {
  // After one executed step the process is poised on register A vs B; step
  // counts and register contents agree (reads mutate nothing).
  auto build = [](bool second_on_a) {
    auto s = std::make_unique<Scheduler>();
    auto a = std::make_unique<TypedRegister<Val>>(*s, "A", Val{0});
    auto b = std::make_unique<TypedRegister<Val>>(*s, "B", Val{0});
    s->spawn(read_two(*a, second_on_a ? *a : *b), "p");
    s->run_step(0);
    return std::tuple{std::move(s), std::move(a), std::move(b)};
  };
  auto [s1, a1, b1] = build(true);
  auto [s2, a2, b2] = build(false);
  EXPECT_NE(digest_of(*s1), digest_of(*s2));
}

TEST(Fingerprint, PoisedKindChangesHash) {
  // Poised read vs poised write-of-the-same-value on one register: contents
  // and step counts agree, only the poised step kind separates the states.
  auto build = [](bool second_is_read) {
    auto s = std::make_unique<Scheduler>();
    auto r = std::make_unique<TypedRegister<Val>>(*s, "R", Val{0});
    s->spawn(read_then_write(*r, second_is_read), "p");
    s->run_step(0);
    return std::pair{std::move(s), std::move(r)};
  };
  auto [s1, r1] = build(true);
  auto [s2, r2] = build(false);
  EXPECT_NE(digest_of(*s1), digest_of(*s2));
}

TEST(Fingerprint, DoneFlagChangesHash) {
  // A finished process vs one more step to go.
  auto build = [] {
    auto s = std::make_unique<Scheduler>();
    auto r = std::make_unique<TypedRegister<Val>>(*s, "R", Val{0});
    s->spawn(read_script(*r, 2), "p");
    return std::pair{std::move(s), std::move(r)};
  };
  auto [s1, r1] = build();
  auto [s2, r2] = build();
  s1->run_step(0);
  s2->run_step(0);
  s2->run_step(0);  // done
  EXPECT_NE(digest_of(*s1), digest_of(*s2));
}

// --- StateTable -----------------------------------------------------------

TEST(StateTable, InsertAndHitAccounting) {
  StateTable table;
  util::Fingerprint x{1, 2}, y{3, 4};
  EXPECT_TRUE(table.insert(x));
  EXPECT_TRUE(table.insert(y));
  EXPECT_FALSE(table.insert(x));
  EXPECT_FALSE(table.insert(x));
  EXPECT_EQ(table.states(), 2u);
  EXPECT_EQ(table.hits(), 2u);
}

TEST(StateTable, AuditAcceptsTrueTranspositions) {
  StateTable table(StateTable::Options{.audit = true});
  util::Fingerprint fp{7, 7};
  EXPECT_TRUE(table.insert(fp, [] { return std::string("state-a"); }));
  EXPECT_FALSE(table.insert(fp, [] { return std::string("state-a"); }));
  EXPECT_EQ(table.hits(), 1u);
}

TEST(StateTable, AuditThrowsOnFabricatedCollision) {
  StateTable table(StateTable::Options{.audit = true});
  util::Fingerprint fp{7, 7};
  EXPECT_TRUE(table.insert(fp, [] { return std::string("state-a"); }));
  EXPECT_THROW(table.insert(fp, [] { return std::string("state-b"); }),
               StateFingerprintCollision);
}

// --- serial dedupe on a state-merging world -------------------------------

Task<void> tag_script(TypedRegister<Val>& reg, Val me, std::size_t writes) {
  for (std::size_t i = 0; i < writes; ++i) {
    co_await reg.write(me);
  }
}

// Processes stamp their id into one shared register.  The canonical state
// collapses to (per-process progress, last writer), so schedules that agree
// on those merge - the transposition win is combinatorial.  The verdict
// reads only shared state, satisfying the soundness contract with no
// fingerprint_extra.
class LastWriterWorld final : public ExplorableWorld {
 public:
  LastWriterWorld(std::vector<std::size_t> writes, Val banned)
      : reg_(sched_, "R", Val{-1}), banned_(banned) {
    for (ProcessId p = 0; p < writes.size(); ++p) {
      sched_.spawn(tag_script(reg_, Val(p), writes[p]), "w");
    }
  }

  Scheduler& scheduler() override { return sched_; }

  std::optional<std::string> verdict(bool complete) override {
    if (complete && reg_.peek() == banned_) {
      return "banned last writer";
    }
    return std::nullopt;
  }

 private:
  Scheduler sched_;
  TypedRegister<Val> reg_;
  Val banned_;
};

auto last_writer_factory(std::vector<std::size_t> writes, Val banned) {
  return [writes = std::move(writes), banned] {
    return std::make_unique<LastWriterWorld>(writes, banned);
  };
}

TEST(SerialDedupe, PreservesViolationVerdict) {
  // Both explorers stop at their first violating leaf, so execution counts
  // are not comparable here (the reduction is measured on the violation-free
  // run below); what must agree is the verdict itself.
  auto factory = last_writer_factory({3, 3, 2}, 0);
  auto plain = explore_schedules(factory);
  ASSERT_TRUE(plain.violation.has_value());

  ScheduleExploreOptions opt;
  opt.dedupe_states = true;
  auto deduped = explore_schedules(factory, opt);
  EXPECT_TRUE(deduped.violation.has_value());
  EXPECT_TRUE(deduped.exhausted);
  EXPECT_GT(deduped.subtrees_pruned, 0u);
  EXPECT_GT(deduped.states_seen, 0u);
}

TEST(SerialDedupe, PreservesViolationFreeVerdict) {
  auto factory = last_writer_factory({3, 3, 2}, -7);  // never written
  auto plain = explore_schedules(factory);
  EXPECT_FALSE(plain.violation);
  EXPECT_TRUE(plain.exhausted);

  ScheduleExploreOptions opt;
  opt.dedupe_states = true;
  auto deduped = explore_schedules(factory, opt);
  EXPECT_FALSE(deduped.violation);
  EXPECT_TRUE(deduped.exhausted);
  EXPECT_LE(deduped.executions * 2, plain.executions);
}

TEST(SerialDedupe, AuditModeIsCleanOnRealStates) {
  // Full canonical states behind every hash: an honest 128-bit collision
  // would throw; none is expected at this scale.
  ScheduleExploreOptions opt;
  opt.dedupe_states = true;
  opt.dedupe_audit = true;
  auto deduped = explore_schedules(last_writer_factory({3, 3, 2}, 0), opt);
  EXPECT_TRUE(deduped.violation.has_value());
  EXPECT_GT(deduped.subtrees_pruned, 0u);
}

TEST(SerialDedupe, OffByDefault) {
  auto res = explore_schedules(last_writer_factory({2, 2}, -7));
  EXPECT_EQ(res.states_seen, 0u);
  EXPECT_EQ(res.subtrees_pruned, 0u);
  EXPECT_EQ(res.executions, 6u);  // C(4,2): no dedupe, no violation
}

}  // namespace
}  // namespace revisim
