// Tests for the extension modules: the randomized ND runner (the
// "randomized wait-free" reading of Section 5), the ABA-freedom checker
// (§5.3), the finite colorless-task formalism (§2), the general Theorem
// 21(1) bound, and the umbrella header.
#include <gtest/gtest.h>

#include "src/revisim.h"  // umbrella: everything below must come through it

namespace revisim {
namespace {

TEST(RandomizedRunner, NDCoinTerminatesWithRandomCoins) {
  solo::NDCoinConsensus nd(3, 3);
  std::size_t done = 0;
  std::size_t total_steps = 0;
  const std::size_t runs = 100;
  for (std::uint64_t seed = 0; seed < runs; ++seed) {
    auto res = solo::run_randomized(nd, {4, 5, 6}, seed, 100'000);
    if (res.all_done) {
      ++done;
      total_steps += res.total_steps;
      for (const auto& out : res.outputs) {
        ASSERT_TRUE(out.has_value());
        EXPECT_TRUE(*out == 4 || *out == 5 || *out == 6);
      }
    }
  }
  // Random coins against a random scheduler terminate essentially always.
  EXPECT_EQ(done, runs);
  EXPECT_GT(total_steps, 0u);
}

TEST(RandomizedRunner, DeterminizedMatchesSpaceOfRandomized) {
  // Section 5's point: the randomized protocol and its determinization use
  // the same object.
  auto nd = std::make_shared<solo::NDCoinConsensus>(2, 2);
  solo::DeterminizedProtocol det(nd);
  EXPECT_EQ(det.components(), nd->components());
}

TEST(RandomizedRunner, RespectsStepBudget) {
  solo::NDCoinConsensus nd(2, 2);
  auto res = solo::run_randomized(nd, {0, 1}, 1, 3);
  EXPECT_FALSE(res.all_done);
  EXPECT_EQ(res.total_steps, 3u);
}

TEST(ABAChecker, DetectsABA) {
  using W = std::vector<std::pair<std::size_t, Val>>;
  EXPECT_TRUE(check::is_aba_free(W{{0, 1}, {0, 2}, {1, 1}}));
  EXPECT_FALSE(check::is_aba_free(W{{0, 1}, {0, 2}, {0, 1}}));  // classic ABA
  // Re-writing the same value without leaving it is not an ABA.
  EXPECT_TRUE(check::is_aba_free(W{{0, 1}, {0, 1}, {0, 2}}));
  // Same value on different components is fine.
  EXPECT_TRUE(check::is_aba_free(W{{0, 1}, {1, 1}, {0, 2}, {1, 2}}));
  EXPECT_TRUE(check::is_aba_free(W{}));
}

TEST(ABAChecker, MonotoneProtocolsAreABAFree) {
  // Racing writes strictly growing (round, value) pairs per process, but
  // *different processes* can rewrite the same pair after it was
  // overwritten - so racing alone is not guaranteed ABA-free, while the
  // Corollary 36 wrapper always is.  Verify on real runs.
  auto inner = std::make_shared<proto::RacingAgreement>(3, 2);
  solo::ABAFreeProtocol wrapped(inner);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    proto::ProtocolRun run(wrapped, {1, 2, 3});
    ASSERT_TRUE(run.run_random(seed, 200'000));
    std::vector<std::pair<std::size_t, Val>> writes;
    for (const auto& rec : run.log()) {
      if (rec.is_update) {
        writes.emplace_back(rec.component, rec.value);
      }
    }
    EXPECT_TRUE(check::is_aba_free(writes)) << "seed " << seed;
  }
}

TEST(MaxRegisters, NDMaxConsensusTerminatesAndIsValid) {
  solo::NDMaxConsensus nd(3, 3);
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    auto res = solo::run_randomized(nd, {4, 5, 6}, seed, 100'000);
    ASSERT_TRUE(res.all_done) << "seed " << seed;
    for (const auto& out : res.outputs) {
      EXPECT_TRUE(*out == 4 || *out == 5 || *out == 6);
    }
  }
}

TEST(MaxRegisters, ExecutionsAreABAFreeWithoutTagging) {
  // §5.3: protocols over max-registers are ABA-free by construction.
  solo::NDMaxConsensus nd(4, 3);
  for (std::uint64_t seed = 0; seed < 80; ++seed) {
    auto res = solo::run_randomized(nd, {1, 9, 1, 9}, seed, 100'000);
    EXPECT_TRUE(check::is_aba_free(res.applied_writes)) << "seed " << seed;
  }
}

TEST(MaxRegisters, PlainWriteVariantDoesExhibitABA) {
  // Contrast: the same state machine over plain registers can rewrite a
  // (component, value) pair after it was overwritten - the ABA the
  // Corollary 36 tagging exists to rule out.
  solo::NDCoinConsensus nd(3, 2);
  std::size_t aba_runs = 0;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    auto res = solo::run_randomized(nd, {5, 7, 5}, seed, 100'000);
    if (!check::is_aba_free(res.applied_writes)) {
      ++aba_runs;
    }
  }
  EXPECT_GT(aba_runs, 0u)
      << "no ABA observed; the contrast test lost its subject";
}

TEST(MaxRegisters, SoloSearchHandlesWriteMaxSemantics) {
  // The determinizer's solo search applies write-max to the expectation
  // vector; a terminating solo path must exist from scratch.
  solo::NDMaxConsensus nd(2, 2);
  solo::SoloSearch search;
  search.machine = &nd;
  auto d = search.shortest(nd.initial(0, 3), View(2));
  ASSERT_TRUE(d.has_value());
  EXPECT_LT(*d, 12u);
}

TEST(MaxRegisters, FetchAddSemantics) {
  View v(2);
  solo::NDOp op;
  op.kind = solo::NDOpKind::kFetchAdd;
  op.component = 1;
  op.value = 5;
  auto r1 = solo::apply_nd_op(v, op);
  EXPECT_EQ(r1.previous, 0);
  EXPECT_EQ(v[1], std::optional<Val>(5));
  auto r2 = solo::apply_nd_op(v, op);
  EXPECT_EQ(r2.previous, 5);
  EXPECT_EQ(v[1], std::optional<Val>(10));
  // write-max keeps the maximum.
  op.kind = solo::NDOpKind::kWriteMax;
  op.value = 3;
  solo::apply_nd_op(v, op);
  EXPECT_EQ(v[1], std::optional<Val>(10));
  op.value = 12;
  solo::apply_nd_op(v, op);
  EXPECT_EQ(v[1], std::optional<Val>(12));
}

TEST(Colorless, KSetTriplePassesClosure) {
  auto task = tasks::FiniteColorlessTask::kset(2, {1, 2, 3, 4});
  EXPECT_EQ(task.check_closure(), "");
}

TEST(Colorless, BrokenTriplesFailClosure) {
  using tasks::FiniteColorlessTask;
  using tasks::ValueSet;
  // I missing a subset.
  FiniteColorlessTask bad1("bad1", {{ValueSet{1, 2}}}, {{ValueSet{1}}},
                           {{ValueSet{1, 2}, {ValueSet{1}}}});
  EXPECT_NE(bad1.check_closure(), "");
  // Delta undefined on an input set.
  FiniteColorlessTask bad2("bad2", {ValueSet{1}, ValueSet{2}},
                           {ValueSet{1}, ValueSet{2}},
                           {{ValueSet{1}, {ValueSet{1}}}});
  EXPECT_NE(bad2.check_closure(), "");
}

TEST(Colorless, AgreesWithSpecializedValidatorExhaustively) {
  // On a small domain, Delta-membership and the KSetAgreement validator
  // must coincide for every (input multiset, output multiset) pair.
  const tasks::ValueSet domain{1, 2, 3};
  for (std::size_t k = 1; k <= 2; ++k) {
    auto finite = tasks::FiniteColorlessTask::kset(k, domain);
    ASSERT_EQ(finite.check_closure(), "");
    tasks::KSetAgreement fast(k);
    // Enumerate all input vectors of length 3 and output vectors of length
    // <= 2 over the domain (plus empty).
    std::vector<Val> vals{1, 2, 3};
    for (Val a : vals) {
      for (Val b : vals) {
        for (Val c : vals) {
          const std::vector<Val> in{a, b, c};
          std::vector<std::vector<Val>> outs{{}};
          for (Val y : vals) {
            outs.push_back({y});
            for (Val z : vals) {
              outs.push_back({y, z});
            }
          }
          for (const auto& out : outs) {
            EXPECT_EQ(finite.validate(in, out).ok, fast.validate(in, out).ok)
                << "k=" << k << " in={" << a << b << c << "}";
          }
        }
      }
    }
  }
}

TEST(Bounds, Theorem21GeneralForm) {
  // f = 2 specialization equals the approx bound.
  for (double eps : {1e-2, 1e-6, 1e-12}) {
    EXPECT_EQ(bounds::theorem21_space_bound(
                  8, 2, bounds::approx_step_lower_bound(eps)),
              bounds::approx_space_lower_bound(8, eps));
  }
  // The floor(n/f)+1 term kicks in for huge L and small n/f.
  EXPECT_EQ(bounds::theorem21_space_bound(4, 2, 1e30), 3u);
  // Degenerate L.
  EXPECT_EQ(bounds::theorem21_space_bound(10, 2, 1.0), 1u);
  EXPECT_THROW(bounds::theorem21_space_bound(4, 0, 10.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace revisim
