#include "src/augmented/hstate.h"

#include <algorithm>
#include <cassert>

namespace revisim::aug {

bool is_prefix(const HView& h, const HView& g) {
  assert(h.size() == g.size());
  for (std::size_t j = 0; j < h.size(); ++j) {
    const auto& a = h[j].triples;
    const auto& b = g[j].triples;
    if (a.size() > b.size() ||
        !std::equal(a.begin(), a.end(), b.begin())) {
      return false;
    }
  }
  return true;
}

bool is_proper_prefix(const HView& h, const HView& g) {
  return is_prefix(h, g) && !triples_equal(h, g);
}

bool triples_equal(const HView& h, const HView& g) {
  assert(h.size() == g.size());
  for (std::size_t j = 0; j < h.size(); ++j) {
    if (h[j].triples != g[j].triples) {
      return false;
    }
  }
  return true;
}

Timestamp new_timestamp(const HView& h, std::size_t me) {
  std::vector<std::uint32_t> parts(h.size());
  for (std::size_t j = 0; j < h.size(); ++j) {
    parts[j] = static_cast<std::uint32_t>(num_bu(h, j));
  }
  parts.at(me) += 1;
  return Timestamp(std::move(parts));
}

View get_view(const HView& h, std::size_t m) {
  View out(m);
  std::vector<const UpdateTriple*> best(m, nullptr);
  for (const HComp& comp : h) {
    for (const UpdateTriple& tr : comp.triples) {
      assert(tr.component < m);
      const UpdateTriple*& b = best[tr.component];
      if (b == nullptr || b->ts < tr.ts) {
        b = &tr;
      }
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    if (best[j] != nullptr) {
      out[j] = best[j]->value;
    }
  }
  return out;
}

std::shared_ptr<const HView> read_lrecord(const HView& h, std::size_t j,
                                          std::size_t target,
                                          std::size_t index) {
  const auto& recs = h.at(j).lrecords;
  for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
    if (it->target == target && it->index == index) {
      return it->h;
    }
  }
  return nullptr;
}

}  // namespace revisim::aug
