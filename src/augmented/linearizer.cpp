#include "src/augmented/linearizer.h"

#include <algorithm>
#include <optional>
#include <sstream>

namespace revisim::aug {
namespace {

std::string fmt_op(const BlockUpdateOpRecord& b) {
  std::ostringstream out;
  out << "BlockUpdate#" << b.op_id << " by q" << b.process + 1;
  return out.str();
}

}  // namespace

LinearizationResult linearize(const OpLog& log, std::size_t m) {
  LinearizationResult res;
  auto violate = [&res](const std::string& msg) {
    res.violations.push_back(msg);
  };

  // Collect the line-4 updates that actually happened; each appended one
  // triple batch (all sharing the Block-Update's timestamp).
  struct Batch {
    const BlockUpdateOpRecord* bu;
  };
  std::vector<Batch> batches;
  for (const auto& b : log.block_updates) {
    if (b.step_x != kNoStep) {
      batches.push_back(Batch{&b});
    }
  }
  std::sort(batches.begin(), batches.end(), [](const Batch& a, const Batch& b) {
    return a.bu->step_x < b.bu->step_x;
  });

  // Linearization point of the Update (component, ts): the first line-4 step
  // whose batch contains a triple for that component with timestamp >= ts.
  auto lin_point = [&batches](std::size_t component,
                              const Timestamp& ts) -> std::size_t {
    for (const Batch& batch : batches) {
      if (batch.bu->ts >= ts) {
        for (std::size_t c : batch.bu->comps) {
          if (c == component) {
            return batch.bu->step_x;
          }
        }
      }
    }
    return kNoStep;  // unreachable: the Update's own batch qualifies
  };

  for (const auto& b : log.block_updates) {
    if (b.step_x == kNoStep) {
      continue;  // crashed before X: its Updates never took effect
    }
    for (std::size_t g = 0; g < b.comps.size(); ++g) {
      LinearizedOp op;
      op.kind = LinearizedOp::Kind::kUpdate;
      op.op_id = b.op_id;
      op.process = b.process;
      op.position = g;
      op.component = b.comps[g];
      op.value = b.vals[g];
      op.ts = b.ts;
      op.from_atomic = b.completed && !b.yielded;
      op.point = lin_point(b.comps[g], b.ts);
      if (op.point == kNoStep) {
        violate(fmt_op(b) + ": no linearization point for component " +
                std::to_string(b.comps[g]));
        op.point = b.step_x;
      }
      // Lemma 12: after the line-2 scan, no later than X.
      if (!(op.point > b.step_h && op.point <= b.step_x)) {
        violate(fmt_op(b) + ": Update to component " +
                std::to_string(b.comps[g]) + " linearized at step " +
                std::to_string(op.point) + " outside (H, X] = (" +
                std::to_string(b.step_h) + ", " + std::to_string(b.step_x) +
                "]");
      }
      res.ops.push_back(std::move(op));
    }
  }

  for (const auto& s : log.scans) {
    if (!s.completed) {
      continue;
    }
    LinearizedOp op;
    op.kind = LinearizedOp::Kind::kScan;
    op.op_id = s.op_id;
    op.process = s.process;
    op.point = s.last_step;
    op.returned = s.returned;
    res.ops.push_back(std::move(op));
  }

  // Order: by point; Updates tied at one point by (timestamp, component).
  // A Scan's point is an H.scan step and an Update's point is an H.update
  // step, so Scans never tie with anything.
  std::sort(res.ops.begin(), res.ops.end(),
            [](const LinearizedOp& a, const LinearizedOp& b) {
              if (a.point != b.point) {
                return a.point < b.point;
              }
              if (a.ts != b.ts) {
                return a.ts < b.ts;
              }
              return a.component < b.component;
            });

  // --- checks -------------------------------------------------------------

  // Lemma 11: atomic Block-Updates are consecutive at X, in component order.
  for (const auto& b : log.block_updates) {
    if (!b.completed || b.yielded) {
      continue;
    }
    std::vector<std::size_t> positions;
    for (std::size_t i = 0; i < res.ops.size(); ++i) {
      if (res.ops[i].kind == LinearizedOp::Kind::kUpdate &&
          res.ops[i].op_id == b.op_id) {
        positions.push_back(i);
      }
    }
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const auto& op = res.ops[positions[i]];
      if (op.point != b.step_x) {
        violate(fmt_op(b) + ": atomic but Update to component " +
                std::to_string(op.component) + " linearized at " +
                std::to_string(op.point) + " != X = " +
                std::to_string(b.step_x));
      }
      if (i > 0 && positions[i] != positions[i - 1] + 1) {
        violate(fmt_op(b) + ": atomic but Updates not consecutive");
      }
      if (i > 0 &&
          res.ops[positions[i]].component < res.ops[positions[i - 1]].component) {
        violate(fmt_op(b) + ": atomic Updates not in component order");
      }
    }
  }

  // Corollary 15: every Scan returns the fold of the Updates before it.
  {
    View contents(m);
    std::size_t next = 0;
    for (const auto& op : res.ops) {
      (void)next;
      if (op.kind == LinearizedOp::Kind::kUpdate) {
        contents.at(op.component) = op.value;
      } else if (op.returned != contents) {
        violate("Scan#" + std::to_string(op.op_id) + " by q" +
                std::to_string(op.process + 1) + " returned " +
                revisim::to_string(op.returned) + " but contents are " +
                revisim::to_string(contents));
      }
    }
  }

  // Lemma 19: window property of atomic Block-Updates.
  {
    for (const auto& b : log.block_updates) {
      if (!b.completed || b.yielded) {
        continue;
      }
      // Sequence index of B's first Update (all at X).
      std::size_t z_index = res.ops.size();
      for (std::size_t i = 0; i < res.ops.size(); ++i) {
        if (res.ops[i].kind == LinearizedOp::Kind::kUpdate &&
            res.ops[i].op_id == b.op_id) {
          z_index = i;
          break;
        }
      }
      if (z_index == res.ops.size()) {
        violate(fmt_op(b) + ": atomic but has no linearized Updates");
        continue;
      }
      // Z': sequence index just after the last atomic Update before Z
      // (0 if none): candidate points T live in [z_prime_index, z_index].
      std::size_t z_prime_index = 0;
      for (std::size_t i = z_index; i-- > 0;) {
        if (res.ops[i].kind == LinearizedOp::Kind::kUpdate &&
            res.ops[i].from_atomic) {
          z_prime_index = i + 1;
          break;
        }
      }
      // Replay to find whether some T in [z_prime_index, z_index] has
      // contents == b.returned with no Scan in (T, Z).
      View contents(m);
      std::vector<View> prefix_contents(res.ops.size() + 1);
      prefix_contents[0] = contents;
      for (std::size_t i = 0; i < res.ops.size(); ++i) {
        if (res.ops[i].kind == LinearizedOp::Kind::kUpdate) {
          contents.at(res.ops[i].component) = res.ops[i].value;
        }
        prefix_contents[i + 1] = contents;
      }
      bool found = false;
      for (std::size_t t = z_index + 1; t-- > z_prime_index;) {
        // T = position t: contents after the first t ops.
        bool scan_between = false;
        for (std::size_t i = t; i < z_index; ++i) {
          if (res.ops[i].kind == LinearizedOp::Kind::kScan) {
            scan_between = true;
            break;
          }
        }
        if (scan_between) {
          continue;
        }
        if (prefix_contents[t] == b.returned) {
          res.windows.push_back(Window{b.op_id, t, z_index});
          found = true;
          break;
        }
        // Lemma 19 additionally promises that everything between T and Z is
        // a yielded Update by another process; once we cross a non-yielded
        // Update going backwards we can stop.
      }
      if (!found) {
        violate(fmt_op(b) + ": returned view " +
                revisim::to_string(b.returned) +
                " is not the contents at any valid window point");
      }
    }
  }

  // Lemma 18: windows of atomic Block-Updates are pairwise disjoint.  Our
  // per-block windows are chosen maximal-T, so it suffices that each
  // window's T lies at or past the end of every earlier window.
  {
    std::vector<Window> sorted = res.windows;
    std::sort(sorted.begin(), sorted.end(),
              [](const Window& a, const Window& w) {
                return a.z_index < w.z_index;
              });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i].t_index < sorted[i - 1].z_index + 1) {
        // T of the later window strictly inside the earlier (T', Z'].
        if (sorted[i].t_index <= sorted[i - 1].z_index &&
            sorted[i].t_index > sorted[i - 1].t_index) {
          violate("Lemma 18: windows of BlockUpdate#" +
                  std::to_string(sorted[i - 1].op_id) + " and #" +
                  std::to_string(sorted[i].op_id) + " overlap");
        }
      }
    }
  }

  // Theorem 20: yields only under smaller-id interference.
  for (const auto& b : log.block_updates) {
    if (!b.completed || !b.yielded) {
      continue;
    }
    bool interfered = false;
    for (const auto& other : log.block_updates) {
      if (other.process < b.process && other.step_x != kNoStep &&
          other.step_x > b.step_h && other.step_x < b.step_h2) {
        interfered = true;
        break;
      }
    }
    if (!interfered) {
      violate(fmt_op(b) +
              ": yielded without a smaller-id update in its interval");
    }
  }

  return res;
}

}  // namespace revisim::aug
