// Operation-level history of an augmented snapshot execution.
//
// The object records, for every Scan and Block-Update it executes, the
// global step indices of the constituent H operations together with inputs
// and results.  The linearizer (linearizer.h) consumes this log to compute
// the linearization that Section 3.3 of the paper constructs and to check
// Lemmas 10-19 and Theorem 20 on the actual execution.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "src/augmented/timestamp.h"
#include "src/runtime/trace.h"
#include "src/util/fingerprint.h"
#include "src/util/value.h"

namespace revisim::aug {

inline constexpr std::size_t kNoStep = std::numeric_limits<std::size_t>::max();

struct ScanOpRecord {
  std::size_t op_id = 0;
  runtime::ProcessId process = 0;
  std::size_t first_step = kNoStep;  // first H.scan of the double collect
  std::size_t last_step = kNoStep;   // confirming H.scan: the linearization point
  View returned;
  bool completed = false;

  void fingerprint_into(util::StateSink& sink) const {
    util::feed(sink, op_id);
    util::feed(sink, process);
    util::feed(sink, first_step);
    util::feed(sink, last_step);
    util::feed(sink, returned);
    util::feed(sink, completed);
  }
};

struct BlockUpdateOpRecord {
  std::size_t op_id = 0;
  runtime::ProcessId process = 0;
  std::vector<std::size_t> comps;  // components updated, in call order
  std::vector<Val> vals;
  Timestamp ts;                    // timestamp shared by all its Updates
  std::size_t step_h = kNoStep;     // line 2: scan H
  std::size_t step_x = kNoStep;     // line 4: update X appending the triples
  std::size_t step_g = kNoStep;     // line 5: scan G
  std::size_t step_help = kNoStep;  // lines 6-7: helping update
  std::size_t step_h2 = kNoStep;    // line 8: scan H'
  std::size_t step_read = kNoStep;  // lines 12-15: scan reading L_{j,i}
  bool yielded = false;             // returned the yield symbol
  bool completed = false;
  View returned;  // view returned when atomic (completed && !yielded)

  void fingerprint_into(util::StateSink& sink) const {
    util::feed(sink, op_id);
    util::feed(sink, process);
    util::feed(sink, comps);
    util::feed(sink, vals);
    util::feed(sink, ts);
    util::feed(sink, step_h);
    util::feed(sink, step_x);
    util::feed(sink, step_g);
    util::feed(sink, step_help);
    util::feed(sink, step_h2);
    util::feed(sink, step_read);
    util::feed(sink, yielded);
    util::feed(sink, completed);
    util::feed(sink, returned);
  }
};

struct OpLog {
  std::vector<ScanOpRecord> scans;
  std::vector<BlockUpdateOpRecord> block_updates;
  std::size_t next_op_id = 0;

  // The log is verdict input (the §3.3 linearizer consumes it), so it is
  // part of the canonical state wherever an explorer verdict reads it.
  // Step indices are included: two interleavings whose logs cite different
  // global steps can linearize differently, so they must not be merged.
  void fingerprint_into(util::StateSink& sink) const {
    util::feed(sink, scans);
    util::feed(sink, block_updates);
    util::feed(sink, next_op_id);
  }

  [[nodiscard]] const BlockUpdateOpRecord* find_block_update(
      std::size_t op_id) const {
    for (const auto& b : block_updates) {
      if (b.op_id == op_id) {
        return &b;
      }
    }
    return nullptr;
  }
};

}  // namespace revisim::aug
