// A deliberately non-wait-free augmented snapshot: the watchdog's positive
// control.
//
// The real Block-Update (Algorithm 4) is wait-free - exactly 6 H-steps, 5
// when yielding, whatever the other processes do.  This mutant prefixes
// every Block-Update with a "quiescence wait": an inner Scan of the object.
// Scan's double collect retries until two consecutive collects agree on the
// update triples, so a stream of concurrent update batches keeps the
// mutant's Block-Update spinning - it is still non-blocking (some process
// always makes progress, and it terminates the moment its interferers stop
// or crash) and obstruction-free (solo it costs 3 + 6 = 9 own steps), but
// it is NOT wait-free: each interfering batch that lands inside the double
// collect adds 2 own steps (one republish update + one confirming scan).
//
// That profile is precisely what a per-operation step budget distinguishes.
// With a budget of 10, the real object can never trip the watchdog (6 <= 10
// on every schedule), the mutant passes solo (9 <= 10) and trips it under a
// single interfering batch (11 > 10) - and crashing the interferer before
// its update lands restores compliance, which is how the crash-closed
// explorer demonstrates that crashes excuse rather than create progress
// violations.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/augmented/augmented_snapshot.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/task.h"

namespace revisim::aug {

class MutantAugmentedSnapshot final : public IAugmentedSnapshot {
 public:
  MutantAugmentedSnapshot(runtime::Scheduler& sched, std::string name,
                          std::size_t m, std::size_t f)
      : inner_(sched, std::move(name), m, f) {}

  [[nodiscard]] std::size_t components() const noexcept override {
    return inner_.components();
  }
  [[nodiscard]] std::size_t processes() const noexcept override {
    return inner_.processes();
  }
  [[nodiscard]] const OpLog& log() const noexcept override {
    return inner_.log();
  }
  [[nodiscard]] View peek_view() const override { return inner_.peek_view(); }

  runtime::Task<ScanResult> Scan(runtime::ProcessId me) override {
    return inner_.Scan(me);
  }

  runtime::Task<BlockUpdateResult> BlockUpdate(
      runtime::ProcessId me, std::vector<std::size_t> comps,
      std::vector<Val> vals) override {
    // The fault: wait for quiescence before updating.  The inner Scan's
    // double collect is unbounded under concurrent update batches, so this
    // Block-Update's own-step count grows with interference.
    co_await inner_.Scan(me);
    co_return co_await inner_.BlockUpdate(me, std::move(comps),
                                          std::move(vals));
  }

 private:
  AugmentedSnapshot inner_;
};

}  // namespace revisim::aug
