#include "src/augmented/timestamp.h"

#include <sstream>

namespace revisim::aug {

std::string Timestamp::to_string() const {
  std::ostringstream out;
  out << '(';
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i != 0) {
      out << ',';
    }
    out << parts_[i];
  }
  out << ')';
  return out.str();
}

}  // namespace revisim::aug
