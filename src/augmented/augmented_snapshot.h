// The m-component augmented snapshot object of Section 3, implemented in the
// real system exactly per Algorithms 1-4.
//
// Interface (§3.1): Scan returns the current view of the m components.
// Block-Update(comps, vals) performs one Update per component; the Updates
// are individually atomic but not necessarily consecutive.  A Block-Update
// either returns a view of the object from a recent point of the execution
// (then it is *atomic*: its Updates linearize consecutively at its line-4
// update, and the view satisfies the window property of Lemma 19), or it
// returns the yield symbol, which in this implementation happens only when a
// process with a *smaller* id performed an update inside its execution
// interval (Theorem 20) - in particular q1's Block-Updates are always
// atomic.
//
// Implementation notes:
//  * H is a single-writer snapshot whose component i is process q_{i+1}'s
//    append-only log of update triples and helping records; the paper's
//    auxiliary registers L_{i,j}[b] are fields of H[i] (§3.2).
//  * Each of the paper's loop bodies that performs several single-writer
//    writes is a single update of H, exactly as the step-complexity proof of
//    Lemma 2 counts: a Block-Update is 6 H-steps (5 when it yields), a Scan
//    is 2k+3 H-steps when k concurrent update batches land on H.
//  * The implementation is generic over the *H provider*: AugmentedSnapshot
//    uses the atomic model single-writer snapshot (the paper's base
//    object); RegisterAugmentedSnapshot uses the Afek-et-al. construction,
//    so the whole object - and everything built on it, including the
//    revisionist simulation - bottoms out in plain registers.
#pragma once

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/augmented/history.h"
#include "src/augmented/hstate.h"
#include "src/memory/afek_snapshot.h"
#include "src/memory/sw_snapshot.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/task.h"
#include "src/util/value.h"

namespace revisim::aug {

// Abstract augmented snapshot: what the simulation layer programs against.
class IAugmentedSnapshot {
 public:
  struct ScanResult {
    View view;
    std::size_t op_id = 0;
  };

  struct BlockUpdateResult {
    bool yielded = false;  // true: the yield symbol, no view
    View view;             // valid iff !yielded
    std::size_t op_id = 0;
  };

  virtual ~IAugmentedSnapshot() = default;

  [[nodiscard]] virtual std::size_t components() const noexcept = 0;
  [[nodiscard]] virtual std::size_t processes() const noexcept = 0;

  // Algorithm 3.  Non-blocking: only an infinite stream of concurrent
  // Block-Updates can starve it.
  virtual runtime::Task<ScanResult> Scan(runtime::ProcessId me) = 0;

  // Algorithm 4.  Wait-free: exactly 6 steps on H (5 when yielding).
  virtual runtime::Task<BlockUpdateResult> BlockUpdate(
      runtime::ProcessId me, std::vector<std::size_t> comps,
      std::vector<Val> vals) = 0;

  [[nodiscard]] virtual const OpLog& log() const noexcept = 0;

  // Current view of M (test/debug only; not an atomic model operation).
  [[nodiscard]] virtual View peek_view() const = 0;
};

// What an H provider's scan reports: the view plus the global step index at
// which the scan took effect.  The §3.3 linearizer orders H operations by
// these points, so implementations whose operations do not take effect at
// their last step (the register construction) stay correct.
struct HScan {
  HView view;
  std::size_t lin_step = 0;
};

// H provider over the atomic single-writer snapshot base object: every
// operation takes effect at its own (single) step.
class AtomicHProvider {
 public:
  // H is constructed with opaque footprints: the augmented snapshot's
  // continuations after every H step append to the shared operation log and
  // read the global step counter as a clock (scan() below does so too), so
  // H steps do not commute even on distinct components.  Opaque means the
  // explorer's partial-order reduction never prunes against them - sound,
  // merely unreduced here.
  AtomicHProvider(runtime::Scheduler& sched, std::string name, std::size_t f)
      : sched_(sched),
        snap_(sched, std::move(name), f, /*opaque_footprint=*/true) {}

  runtime::Task<HScan> scan(runtime::ProcessId /*me*/) {
    HView v = co_await snap_.scan();
    co_return HScan{std::move(v), sched_.total_steps() - 1};
  }
  auto update(runtime::ProcessId /*me*/, HComp v) {
    return snap_.update(std::move(v));
  }
  [[nodiscard]] std::vector<HComp> peek() const { return snap_.peek(); }

 private:
  runtime::Scheduler& sched_;
  mem::SWSnapshot<HComp> snap_;
};

// H provider over the Afek-et-al. snapshot: plain registers all the way;
// scans report the linearization point the construction certifies.
class RegisterHProvider {
 public:
  RegisterHProvider(runtime::Scheduler& sched, std::string name, std::size_t f)
      : snap_(sched, std::move(name), f) {}

  runtime::Task<HScan> scan(runtime::ProcessId me) {
    auto out = co_await snap_.scan(me);
    co_return HScan{std::move(out.view), out.lin_step};
  }
  auto update(runtime::ProcessId me, HComp v) {
    return snap_.update(me, std::move(v));
  }
  [[nodiscard]] std::vector<HComp> peek() const { return snap_.peek(); }

 private:
  mem::AfekSnapshotT<HComp> snap_;
};

// Ablation switches (experiments only; see bench_ablation / E12).  Each
// disables one mechanism the §3.3 proof depends on, so the linearizer can
// demonstrate *why* the mechanism exists:
//  * helping: the L_{i,j} records that let a Block-Update return a late
//    enough view (Lemmas 16-19) - without them the returned view predates
//    concurrent Scans and the window property fails;
//  * yield_check: lines 8-10 - without it every Block-Update claims
//    atomicity and Lemma 11 (consecutive Updates at X) fails under
//    smaller-id interference.
struct AugmentedAblation {
  bool helping = true;
  bool yield_check = true;
};

template <typename HProvider>
class BasicAugmentedSnapshot final : public IAugmentedSnapshot,
                                     public util::Fingerprintable {
 public:
  // m components of M shared by f real processes.
  BasicAugmentedSnapshot(runtime::Scheduler& sched, std::string name,
                         std::size_t m, std::size_t f,
                         AugmentedAblation ablation = {})
      : sched_(sched),
        m_(m),
        f_(f),
        h_(sched, name + ".H", f),
        own_(f),
        ablation_(ablation) {
    if (m == 0 || f == 0) {
      throw std::invalid_argument("augmented snapshot needs m >= 1, f >= 1");
    }
    sched.register_state_source(this);
  }

  // H itself is covered by the provider's own registration; this adds the
  // object's history - the local own-component mirrors and the operation
  // log the §3.3 linearizer consumes.  Including the log makes fingerprints
  // of history-dependent verdicts sound: two interleavings merge only when
  // their entire recorded histories coincide.
  void fingerprint_into(util::StateSink& sink) const override {
    util::feed(sink, own_);
    util::feed(sink, log_);
  }

  [[nodiscard]] std::size_t components() const noexcept override {
    return m_;
  }
  [[nodiscard]] std::size_t processes() const noexcept override { return f_; }
  [[nodiscard]] const OpLog& log() const noexcept override { return log_; }
  [[nodiscard]] View peek_view() const override {
    return get_view(h_.peek(), m_);
  }

  runtime::Task<ScanResult> Scan(runtime::ProcessId me) override {
    const std::size_t op_id = log_.next_op_id++;
    const std::size_t idx = log_.scans.size();
    {
      ScanOpRecord rec;
      rec.op_id = op_id;
      rec.process = me;
      log_.scans.push_back(std::move(rec));
    }

    HScan first = co_await h_.scan(me);
    log_.scans[idx].first_step = first.lin_step;
    HView hprime = std::move(first.view);
    HView h;
    for (;;) {
      h = std::move(hprime);
      // Lines 5-6: publish h as L_{me,j}[#h_j] for every j != me; the f-1
      // single-writer writes are one update of H[me].
      if (ablation_.helping) {
        auto hptr = std::make_shared<const HView>(h);
        for (std::size_t j = 0; j < f_; ++j) {
          if (j != me) {
            own_[me].lrecords.push_back(LRecord{j, num_bu(h, j), hptr});
          }
        }
      }
      co_await h_.update(me, own_[me]);
      HScan confirm = co_await h_.scan(me);
      hprime = std::move(confirm.view);
      log_.scans[idx].last_step = confirm.lin_step;
      // Helping records do not invalidate the double collect; only update
      // triples (the object's actual contents) do.
      if (triples_equal(h, hprime)) {
        break;
      }
    }
    View v = get_view(h, m_);
    ScanOpRecord& rec = log_.scans[idx];
    rec.returned = v;
    rec.completed = true;
    co_return ScanResult{std::move(v), op_id};
  }

  runtime::Task<BlockUpdateResult> BlockUpdate(
      runtime::ProcessId me, std::vector<std::size_t> comps,
      std::vector<Val> vals) override {
    if (comps.empty() || comps.size() != vals.size()) {
      throw std::invalid_argument("Block-Update needs r >= 1 components");
    }
    std::set<std::size_t> distinct(comps.begin(), comps.end());
    if (distinct.size() != comps.size()) {
      throw std::invalid_argument("Block-Update components must be distinct");
    }
    for (std::size_t c : comps) {
      if (c >= m_) {
        throw std::out_of_range("Block-Update component out of range");
      }
    }

    const std::size_t op_id = log_.next_op_id++;
    const std::size_t idx = log_.block_updates.size();
    {
      BlockUpdateOpRecord rec;
      rec.op_id = op_id;
      rec.process = me;
      rec.comps = comps;
      rec.vals = vals;
      log_.block_updates.push_back(std::move(rec));
    }

    // Line 2: scan H.
    HScan hs = co_await h_.scan(me);
    HView h = std::move(hs.view);
    log_.block_updates[idx].step_h = hs.lin_step;

    // Line 3: generate the timestamp shared by all Updates of this call.
    Timestamp t = new_timestamp(h, me);
    log_.block_updates[idx].ts = t;

    // Line 4: append the r update triples to H[me]; this is the update X at
    // which an atomic Block-Update linearizes.
    for (std::size_t g = 0; g < comps.size(); ++g) {
      own_[me].triples.push_back(UpdateTriple{comps[g], vals[g], t});
    }
    own_[me].num_bu += 1;
    co_await h_.update(me, own_[me]);
    log_.block_updates[idx].step_x = last_step();

    // Lines 5-7: help smaller ids by publishing a fresh scan.
    HScan gs = co_await h_.scan(me);
    HView g = std::move(gs.view);
    log_.block_updates[idx].step_g = gs.lin_step;
    if (ablation_.helping) {
      auto gptr = std::make_shared<const HView>(g);
      for (std::size_t j = 0; j < me; ++j) {
        own_[me].lrecords.push_back(LRecord{j, num_bu(g, j), gptr});
      }
    }
    co_await h_.update(me, own_[me]);
    log_.block_updates[idx].step_help = last_step();

    // Lines 8-10: yield if a smaller-id process appended update triples
    // since line 2 (Lemma 10 / Lemma 13 / Theorem 20).
    HScan h2s = co_await h_.scan(me);
    HView h2 = std::move(h2s.view);
    log_.block_updates[idx].step_h2 = h2s.lin_step;
    if (ablation_.yield_check) {
      for (std::size_t j = 0; j < me; ++j) {
        if (num_bu(h2, j) > num_bu(h, j)) {
          BlockUpdateOpRecord& rec = log_.block_updates[idx];
          rec.yielded = true;
          rec.completed = true;
          co_return BlockUpdateResult{true, {}, op_id};
        }
      }
    }

    // Lines 11-16: the latest scan among h and the helping entries
    // L_{j,me}[b], b = #h_me; all f-1 reads are one scan of H.
    HScan curs = co_await h_.scan(me);
    HView cur = std::move(curs.view);
    log_.block_updates[idx].step_read = curs.lin_step;
    const std::size_t b = num_bu(h, me);
    const HView* last = &h;
    std::shared_ptr<const HView> keepalive;
    for (std::size_t j = 0; j < f_; ++j) {
      if (j == me) {
        continue;
      }
      auto rj = read_lrecord(cur, j, me, b);
      if (rj != nullptr && is_proper_prefix(*last, *rj)) {
        keepalive = rj;
        last = keepalive.get();
      }
    }
    View v = get_view(*last, m_);
    BlockUpdateOpRecord& rec = log_.block_updates[idx];
    rec.returned = v;
    rec.completed = true;
    co_return BlockUpdateResult{false, std::move(v), op_id};
  }

 private:
  std::size_t last_step() const { return sched_.total_steps() - 1; }

  runtime::Scheduler& sched_;
  std::size_t m_;
  std::size_t f_;
  HProvider h_;
  // Local mirror of each process's own single-writer component (a process
  // may read its own component without a shared-memory step).
  std::vector<HComp> own_;
  OpLog log_;
  AugmentedAblation ablation_;
};

// The paper's real system: H is an atomic single-writer snapshot.
using AugmentedSnapshot = BasicAugmentedSnapshot<AtomicHProvider>;

// Everything from plain registers: H is the Afek-et-al. construction, so an
// H-step costs O(f^2) register operations but the object's semantics - and
// every §3.3 property - are unchanged.  Lemma 2's step counts then apply to
// the *H-operation* level, not the register level.
using RegisterAugmentedSnapshot = BasicAugmentedSnapshot<RegisterHProvider>;

}  // namespace revisim::aug
