// Linearization of augmented-snapshot executions, per Section 3.3.
//
// The correctness proof of the paper *constructs* a linearization: a Scan
// linearizes at its confirming scan of H; the Update to component j with
// timestamp t (part of some Block-Update) linearizes at the first point
// where H contains a triple for j with timestamp >= t; Updates tied at one
// point are ordered by timestamp, then component.  This module recomputes
// that linearization from the recorded OpLog and *checks*, on the concrete
// execution:
//
//   * Lemma 11: an atomic Block-Update's Updates all linearize at its line-4
//     update X, consecutively, in component order;
//   * Lemma 12: every Update linearizes inside (line-2 scan, X];
//   * Corollary 15: every Scan returns exactly the fold of the Updates
//     linearized before it;
//   * Lemma 19: an atomic Block-Update returns the contents of M at a point
//     T between the previous atomic Update Z' and its own first Update Z,
//     with no Scan linearized in (T, Z) and only yielded Updates by other
//     processes in between;
//   * Theorem 20: a Block-Update yields only if a smaller-id process
//     appended update triples inside its execution interval.
//
// The simulation layer replays the returned linearized sequence against the
// simulated protocol (src/sim/replay.h), so this module is the bridge
// between real executions and the paper's intermediate executions (§4.3).
#pragma once

#include <string>
#include <vector>

#include "src/augmented/history.h"
#include "src/util/value.h"

namespace revisim::aug {

struct LinearizedOp {
  enum class Kind { kScan, kUpdate };
  Kind kind = Kind::kScan;
  std::size_t point = 0;   // step index of the linearization point
  std::size_t op_id = 0;   // owning Scan / Block-Update
  runtime::ProcessId process = 0;

  // Update fields.
  std::size_t position = 0;   // which Update of its Block-Update (call order)
  std::size_t component = 0;
  Val value = 0;
  Timestamp ts;
  bool from_atomic = false;  // owning Block-Update did not yield

  // Scan fields.
  View returned;
};

// The window of an atomic Block-Update (Lemma 19): T is a point whose
// contents the operation returned; Z is the sequence position of its first
// Update.  Lemma 18 says windows of distinct atomic Block-Updates are
// pairwise disjoint; the linearizer computes and checks them explicitly.
struct Window {
  std::size_t op_id = 0;         // owning Block-Update
  std::size_t t_index = 0;       // sequence index of T (contents match here)
  std::size_t z_index = 0;       // sequence index of the first own Update
};

struct LinearizationResult {
  std::vector<LinearizedOp> ops;        // in linearization order
  std::vector<Window> windows;          // one per atomic Block-Update
  std::vector<std::string> violations;  // empty iff all §3.3 checks pass

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

// Computes the linearization of a (possibly partial) execution and runs the
// checks above.  `m` is the component count of the augmented snapshot.
[[nodiscard]] LinearizationResult linearize(const OpLog& log, std::size_t m);

}  // namespace revisim::aug
