// Vector timestamps (§3.2, "Auxiliary Procedures").
//
// A timestamp is an f-component vector of non-negative integers, one
// component per real process, ordered lexicographically.  Process q_{i+1}
// generates a new timestamp from the result h of a scan of H by taking
// t_j = #h_j for j != i and t_i = #h_i + 1, where #h_j counts the
// Block-Updates recorded in component j of h.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/fingerprint.h"

namespace revisim::aug {

class Timestamp {
 public:
  Timestamp() = default;
  explicit Timestamp(std::vector<std::uint32_t> parts)
      : parts_(std::move(parts)) {}

  [[nodiscard]] bool empty() const noexcept { return parts_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return parts_.size(); }
  [[nodiscard]] std::uint32_t operator[](std::size_t i) const {
    return parts_.at(i);
  }

  // Lexicographic order (the paper's "lexicographically larger").
  friend std::strong_ordering operator<=>(const Timestamp& a,
                                          const Timestamp& b) {
    return std::lexicographical_compare_three_way(
        a.parts_.begin(), a.parts_.end(), b.parts_.begin(), b.parts_.end());
  }
  friend bool operator==(const Timestamp&, const Timestamp&) = default;

  [[nodiscard]] std::string to_string() const;

  void fingerprint_into(util::StateSink& sink) const {
    util::feed(sink, parts_);
  }

 private:
  std::vector<std::uint32_t> parts_;
};

}  // namespace revisim::aug
