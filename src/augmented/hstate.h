// Contents of the single-writer snapshot H underlying the augmented
// snapshot (§3.2).
//
// Component i of H is process q_{i+1}'s append-only log.  It carries two
// kinds of entries:
//   * update triples (component of M, value, timestamp), appended in batches
//     of r by the line-4 update of a Block-Update to r components;
//   * helping records, the paper's registers L_{i,j}[b]: q_{i+1} publishing
//     "the result of a scan of H" for q_{j+1}'s b'th Block-Update.
//
// The paper's prefix order on scan results (Observation 1) concerns the
// update-triple logs: those are what Get-View and the Block-Update return
// value depend on, and helping records must not invalidate a Scan's double
// collect (otherwise two concurrent Scans could block each other, which
// would contradict Lemma 2).  Hence equality/prefix below compare triples
// only.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/augmented/timestamp.h"
#include "src/util/fingerprint.h"
#include "src/util/value.h"

namespace revisim::aug {

struct UpdateTriple {
  std::size_t component = 0;  // component of M
  Val value = 0;
  Timestamp ts;

  friend bool operator==(const UpdateTriple&, const UpdateTriple&) = default;

  void fingerprint_into(util::StateSink& sink) const {
    util::feed(sink, component);
    util::feed(sink, value);
    util::feed(sink, ts);
  }
};

struct HComp;
using HView = std::vector<HComp>;  // result of a scan of H (all f components)

// The paper's L_{i,j}[b] <- h: "for q_{target+1}'s Block-Update number
// `index`, here is the scan result `h`".
struct LRecord {
  std::size_t target = 0;  // j: the process being helped (0-based)
  std::size_t index = 0;   // b: which of its Block-Updates
  std::shared_ptr<const HView> h;  // scan result being published

  inline void fingerprint_into(util::StateSink& sink) const;
};

struct HComp {
  std::vector<UpdateTriple> triples;
  std::size_t num_bu = 0;  // #h_i: number of Block-Updates recorded (distinct
                           // timestamps in `triples`)
  std::vector<LRecord> lrecords;

  // Full contents, helping records included: a published scan result is
  // readable by later Block-Updates (read_lrecord), so it is part of the
  // canonical state.  The recursion through the embedded HView is finite
  // (views are snapshots of strictly earlier H contents).
  void fingerprint_into(util::StateSink& sink) const {
    util::feed(sink, triples);
    util::feed(sink, num_bu);
    util::feed(sink, lrecords);
  }
};

inline void LRecord::fingerprint_into(util::StateSink& sink) const {
  util::feed(sink, target);
  util::feed(sink, index);
  sink.word(h != nullptr ? 1 : 0);
  if (h != nullptr) {
    util::feed(sink, *h);
  }
}

// #h_j of the paper.
inline std::size_t num_bu(const HView& h, std::size_t j) {
  return h.at(j).num_bu;
}

// h is a prefix of g: component-wise, h's triple log is a prefix of g's.
[[nodiscard]] bool is_prefix(const HView& h, const HView& g);

// Proper prefix: prefix and differing in some component.
[[nodiscard]] bool is_proper_prefix(const HView& h, const HView& g);

// Triple-log equality (what a Scan's double collect compares).
[[nodiscard]] bool triples_equal(const HView& h, const HView& g);

// New-Timestamp (Algorithm 1) for process `me` (0-based).
[[nodiscard]] Timestamp new_timestamp(const HView& h, std::size_t me);

// Get-View (Algorithm 2): for each component j of M, the value with the
// lexicographically largest timestamp among all triples for j, or bottom.
[[nodiscard]] View get_view(const HView& h, std::size_t m);

// Reads the paper's L_{j+1,me+1}[index]: the last helping record in
// component j of `h` with the given target and index, or nullptr.
[[nodiscard]] std::shared_ptr<const HView> read_lrecord(const HView& h,
                                                        std::size_t j,
                                                        std::size_t target,
                                                        std::size_t index);

}  // namespace revisim::aug
