#include "src/tasks/colorless.h"

#include <sstream>
#include <stdexcept>

namespace revisim::tasks {
namespace {

std::string set_to_string(const ValueSet& s) {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (Val v : s) {
    if (!first) {
      out << ',';
    }
    out << v;
    first = false;
  }
  out << '}';
  return out.str();
}

bool closed_under_subsets(const std::set<ValueSet>& family,
                          ValueSet* witness) {
  for (const ValueSet& s : family) {
    for (const ValueSet& sub : nonempty_subsets(s)) {
      if (!family.contains(sub)) {
        if (witness != nullptr) {
          *witness = sub;
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace

std::set<ValueSet> nonempty_subsets(const ValueSet& s) {
  if (s.size() > 20) {
    throw std::invalid_argument("value set too large for subset enumeration");
  }
  std::vector<Val> vals(s.begin(), s.end());
  std::set<ValueSet> out;
  for (std::size_t mask = 1; mask < (std::size_t{1} << vals.size()); ++mask) {
    ValueSet sub;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      if (mask & (std::size_t{1} << i)) {
        sub.insert(vals[i]);
      }
    }
    out.insert(std::move(sub));
  }
  return out;
}

FiniteColorlessTask::FiniteColorlessTask(
    std::string name, std::set<ValueSet> inputs, std::set<ValueSet> outputs,
    std::map<ValueSet, std::set<ValueSet>> delta)
    : name_(std::move(name)),
      inputs_(std::move(inputs)),
      outputs_(std::move(outputs)),
      delta_(std::move(delta)) {}

std::string FiniteColorlessTask::check_closure() const {
  ValueSet witness;
  if (!closed_under_subsets(inputs_, &witness)) {
    return "I is not subset-closed: missing " + set_to_string(witness);
  }
  if (!closed_under_subsets(outputs_, &witness)) {
    return "O is not subset-closed: missing " + set_to_string(witness);
  }
  for (const ValueSet& in : inputs_) {
    auto it = delta_.find(in);
    if (it == delta_.end()) {
      return "Delta undefined on " + set_to_string(in);
    }
    if (!closed_under_subsets(it->second, &witness)) {
      return "Delta(" + set_to_string(in) + ") is not subset-closed: missing " +
             set_to_string(witness);
    }
    for (const ValueSet& out : it->second) {
      if (!outputs_.contains(out)) {
        return "Delta(" + set_to_string(in) + ") leaves O: " +
               set_to_string(out);
      }
    }
  }
  return {};
}

Verdict FiniteColorlessTask::validate(const std::vector<Val>& inputs,
                                      const std::vector<Val>& outputs) const {
  if (outputs.empty()) {
    return Verdict::good();  // the empty output set is always allowed
  }
  ValueSet in(inputs.begin(), inputs.end());
  ValueSet out(outputs.begin(), outputs.end());
  auto it = delta_.find(in);
  if (it == delta_.end()) {
    return Verdict::bad("input set " + set_to_string(in) + " not in I");
  }
  if (!it->second.contains(out)) {
    return Verdict::bad("output set " + set_to_string(out) +
                        " not in Delta(" + set_to_string(in) + ")");
  }
  return Verdict::good();
}

FiniteColorlessTask FiniteColorlessTask::kset(std::size_t k,
                                              const ValueSet& domain) {
  std::set<ValueSet> inputs = nonempty_subsets(domain);
  std::set<ValueSet> outputs;
  for (const ValueSet& s : inputs) {
    if (s.size() <= k) {
      outputs.insert(s);
    }
  }
  std::map<ValueSet, std::set<ValueSet>> delta;
  for (const ValueSet& in : inputs) {
    std::set<ValueSet> allowed;
    for (const ValueSet& sub : nonempty_subsets(in)) {
      if (sub.size() <= k) {
        allowed.insert(sub);
      }
    }
    delta.emplace(in, std::move(allowed));
  }
  return FiniteColorlessTask(
      (k == 1 ? std::string("consensus") : std::to_string(k) + "-set") +
          "/finite",
      std::move(inputs), std::move(outputs), std::move(delta));
}

}  // namespace revisim::tasks
