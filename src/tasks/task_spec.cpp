#include "src/tasks/task_spec.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace revisim::tasks {

Verdict KSetAgreement::validate(const std::vector<Val>& inputs,
                                const std::vector<Val>& outputs) const {
  std::set<Val> in(inputs.begin(), inputs.end());
  std::set<Val> out(outputs.begin(), outputs.end());
  if (out.size() > k_) {
    std::ostringstream why;
    why << out.size() << " distinct outputs > k = " << k_;
    return Verdict::bad(why.str());
  }
  for (Val y : out) {
    if (in.find(y) == in.end()) {
      return Verdict::bad("output " + std::to_string(y) +
                          " is not any process's input");
    }
  }
  return Verdict::good();
}

Verdict ApproxAgreementTask::validate(const std::vector<Val>& inputs,
                                      const std::vector<Val>& outputs) const {
  if (outputs.empty()) {
    return Verdict::good();
  }
  double in_min = 1e18;
  double in_max = -1e18;
  for (Val x : inputs) {
    in_min = std::min(in_min, from_fixed(x));
    in_max = std::max(in_max, from_fixed(x));
  }
  double out_min = 1e18;
  double out_max = -1e18;
  for (Val y : outputs) {
    const double v = static_cast<double>(y) / static_cast<double>(Val{2} << 32);
    out_min = std::min(out_min, v);
    out_max = std::max(out_max, v);
  }
  std::ostringstream why;
  if (out_max - out_min > epsilon_ + slack_) {
    why << "output spread " << (out_max - out_min) << " > eps = " << epsilon_;
    return Verdict::bad(why.str());
  }
  if (out_min < in_min - slack_ || out_max > in_max + slack_) {
    why << "outputs [" << out_min << ", " << out_max << "] escape inputs ["
        << in_min << ", " << in_max << "]";
    return Verdict::bad(why.str());
  }
  return Verdict::good();
}

}  // namespace revisim::tasks
