// Colorless task specifications and output validators (§2, "Tasks and
// Protocols").
//
// A colorless task is a triple (I, O, Delta): inputs and outputs are judged
// as *sets* (any process's input/output may be any other's), independent of
// the process count.  The validators below implement Delta membership for
// the paper's three running tasks and are used by every test, bench and the
// simulation driver to judge produced outputs.
#pragma once

#include <string>
#include <vector>

#include "src/util/value.h"

namespace revisim::tasks {

struct Verdict {
  bool ok = true;
  std::string reason;

  static Verdict good() { return {}; }
  static Verdict bad(std::string why) { return {false, std::move(why)}; }
};

class ColorlessTask {
 public:
  virtual ~ColorlessTask() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  // Checks Delta(inputs) membership for a (possibly partial) output set.
  [[nodiscard]] virtual Verdict validate(const std::vector<Val>& inputs,
                                         const std::vector<Val>& outputs)
      const = 0;
};

// k-set agreement: at most k distinct outputs, each an input.  k = 1 is
// consensus.
class KSetAgreement final : public ColorlessTask {
 public:
  explicit KSetAgreement(std::size_t k) : k_(k) {}
  [[nodiscard]] std::string name() const override {
    return k_ == 1 ? "consensus" : std::to_string(k_) + "-set-agreement";
  }
  [[nodiscard]] Verdict validate(const std::vector<Val>& inputs,
                                 const std::vector<Val>& outputs) const override;
  [[nodiscard]] std::size_t k() const noexcept { return k_; }

 private:
  std::size_t k_;
};

// epsilon-approximate agreement over fixed-point values: outputs pairwise
// within epsilon and inside [min input, max input].
class ApproxAgreementTask final : public ColorlessTask {
 public:
  // `slack` absorbs fixed-point floor rounding (units of real value).
  explicit ApproxAgreementTask(double epsilon, double slack = 1e-6)
      : epsilon_(epsilon), slack_(slack) {}
  [[nodiscard]] std::string name() const override {
    return "approximate-agreement(eps=" + std::to_string(epsilon_) + ")";
  }
  // Inputs are 32-bit fixed point (util/value.h); outputs are the protocol's
  // 33-bit fixed point.
  [[nodiscard]] Verdict validate(const std::vector<Val>& inputs,
                                 const std::vector<Val>& outputs) const override;
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }

 private:
  double epsilon_;
  double slack_;
};

}  // namespace revisim::tasks
