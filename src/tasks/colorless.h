// Finite colorless tasks as explicit (I, O, Delta) triples (§2, "Tasks and
// Protocols").
//
// A colorless task over a finite value domain is a set I of input sets, a
// set O of output sets, and a map Delta from each input set to the output
// sets allowed for it - all three closed under non-empty subsets.  This is
// the paper's formal object; the validators in task_spec.h are its
// efficient instances.  The finite form exists to *check* that: closure can
// be verified mechanically, and the specialized validators are proven (on
// small domains, exhaustively) to agree with Delta-membership.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/tasks/task_spec.h"
#include "src/util/value.h"

namespace revisim::tasks {

using ValueSet = std::set<Val>;

class FiniteColorlessTask {
 public:
  FiniteColorlessTask(std::string name, std::set<ValueSet> inputs,
                      std::set<ValueSet> outputs,
                      std::map<ValueSet, std::set<ValueSet>> delta);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // Verifies the §2 closure conditions: I, O and every Delta(I) are closed
  // under taking non-empty subsets, and Delta is defined on all of I.
  // Returns an explanation of the first failure, or empty when closed.
  [[nodiscard]] std::string check_closure() const;

  // Delta-membership for concrete executions: the set of outputs must be
  // allowed for the set of inputs (partial output sets are judged through
  // the subset closure).
  [[nodiscard]] Verdict validate(const std::vector<Val>& inputs,
                                 const std::vector<Val>& outputs) const;

  // The k-set agreement task over a finite domain, as an explicit triple.
  static FiniteColorlessTask kset(std::size_t k, const ValueSet& domain);

 private:
  std::string name_;
  std::set<ValueSet> inputs_;
  std::set<ValueSet> outputs_;
  std::map<ValueSet, std::set<ValueSet>> delta_;
};

// All non-empty subsets of `s` (for closure construction; |s| <= 20).
[[nodiscard]] std::set<ValueSet> nonempty_subsets(const ValueSet& s);

}  // namespace revisim::tasks
