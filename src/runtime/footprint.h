// Access footprints: what a poised base-object step will touch.
//
// A footprint names the shared locations - (object id, component) pairs -
// an atomic step reads and writes.  Footprints induce the independence
// relation partial-order reduction rests on: two steps *commute* iff their
// footprints do not conflict (disjoint locations, or the same location
// touched read-only by both), because swapping two such adjacent steps
// changes neither the final shared state nor either process's local
// continuation.
//
// Soundness contract.  A step's continuation (the local code that runs
// between the granted operation and the next poised step) executes
// atomically *inside* the step (Scheduler::execute_poised_step resumes the
// coroutine before returning), so a declared footprint must cover the
// operation AND everything its continuation observes that another process
// could concurrently change - including the global step counter, which the
// Afek construction and the augmented snapshot read as a clock.  A
// primitive that cannot bound that set declares the *opaque* footprint,
// which conflicts with everything: opaque steps are never pruned against,
// so the default is sound and precision is strictly opt-in (register.h and
// the atomic snapshot objects opt in; the Afek cells and the augmented
// snapshot's H deliberately do not - see their headers).
//
// An *empty* footprint (no accesses, not opaque) is legitimate: a step
// whose operation touches no shared state (and whose continuation is pure
// local computation) commutes with every non-opaque step.
#pragma once

#include <cstdint>
#include <cstddef>

namespace revisim::runtime {

// One location access.  `component` distinguishes parts of a multi-part
// object (a snapshot component); single-cell objects use component 0 and
// whole-object operations (a snapshot scan) use kAllComponents.
struct Footprint {
  enum class Mode : std::uint8_t { kRead = 0, kWrite = 1 };

  struct Access {
    std::uint32_t object = 0;
    std::uint32_t component = 0;
    Mode mode = Mode::kRead;

    friend bool operator==(const Access&, const Access&) = default;
  };

  static constexpr std::uint32_t kAllComponents = 0xffffffffu;
  // Inline capacity: every current primitive poses at most one shared
  // access per step (plus the explorer-side convenience of a second slot).
  static constexpr std::size_t kMaxAccesses = 2;

  // Default-constructed footprints are opaque: unknown effects, conflicts
  // with everything.  This is what unannotated StepAwaiters get.
  bool opaque = true;
  std::uint8_t count = 0;
  Access accesses[kMaxAccesses] = {};

  [[nodiscard]] static Footprint opaque_footprint() noexcept {
    return Footprint{};
  }

  // A precise footprint with no accesses: the step touches nothing shared.
  [[nodiscard]] static Footprint none() noexcept {
    Footprint fp;
    fp.opaque = false;
    return fp;
  }

  [[nodiscard]] static Footprint read(std::size_t object,
                                      std::uint32_t component = 0) noexcept {
    return none().add(object, component, Mode::kRead);
  }

  [[nodiscard]] static Footprint write(std::size_t object,
                                       std::uint32_t component = 0) noexcept {
    return none().add(object, component, Mode::kWrite);
  }

  // Adds an access; overflowing the inline capacity degrades to opaque
  // (sound: opaque only ever suppresses pruning).
  [[nodiscard]] Footprint add(std::size_t object, std::uint32_t component,
                              Mode mode) const noexcept {
    Footprint fp = *this;
    if (fp.opaque) {
      return fp;
    }
    if (fp.count >= kMaxAccesses) {
      return opaque_footprint();
    }
    fp.accesses[fp.count++] =
        Access{static_cast<std::uint32_t>(object), component, mode};
    return fp;
  }

  // Serialized size, counted by the explorer's footprint_bytes statistic.
  [[nodiscard]] std::size_t byte_size() const noexcept {
    return 2 + static_cast<std::size_t>(count) * sizeof(Access);
  }

  friend bool operator==(const Footprint& a, const Footprint& b) noexcept {
    if (a.opaque != b.opaque || a.count != b.count) {
      return false;
    }
    for (std::uint8_t i = 0; i < a.count; ++i) {
      if (!(a.accesses[i] == b.accesses[i])) {
        return false;
      }
    }
    return true;
  }
};

namespace detail_fp {
inline bool components_overlap(std::uint32_t a, std::uint32_t b) noexcept {
  return a == b || a == Footprint::kAllComponents ||
         b == Footprint::kAllComponents;
}
}  // namespace detail_fp

// Two accesses conflict iff they touch an overlapping location and at least
// one writes it.
inline bool accesses_conflict(const Footprint::Access& a,
                              const Footprint::Access& b) noexcept {
  return a.object == b.object &&
         detail_fp::components_overlap(a.component, b.component) &&
         (a.mode == Footprint::Mode::kWrite ||
          b.mode == Footprint::Mode::kWrite);
}

// Steps with conflicting footprints are *dependent*: their order matters.
// Opaque footprints conflict with everything, including each other.
inline bool footprints_conflict(const Footprint& a,
                                const Footprint& b) noexcept {
  if (a.opaque || b.opaque) {
    return true;
  }
  for (std::uint8_t i = 0; i < a.count; ++i) {
    for (std::uint8_t j = 0; j < b.count; ++j) {
      if (accesses_conflict(a.accesses[i], b.accesses[j])) {
        return true;
      }
    }
  }
  return false;
}

// True iff `declared` covers `actual`: every actual access falls within
// some declared access of at-least-equal strength (a declared write covers
// an actual read of the same location; kAllComponents covers any
// component).  Opaque declarations cover everything.  The scheduler's
// footprint-audit mode checks executed steps against this - a primitive
// whose actual accesses escape its declaration would make pruning unsound.
inline bool footprint_covers(const Footprint& declared,
                             const Footprint::Access& actual) noexcept {
  if (declared.opaque) {
    return true;
  }
  for (std::uint8_t i = 0; i < declared.count; ++i) {
    const Footprint::Access& d = declared.accesses[i];
    if (d.object == actual.object &&
        (d.component == actual.component ||
         d.component == Footprint::kAllComponents) &&
        (d.mode == Footprint::Mode::kWrite ||
         actual.mode == Footprint::Mode::kRead)) {
      return true;
    }
  }
  return false;
}

}  // namespace revisim::runtime
