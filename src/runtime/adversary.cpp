#include "src/runtime/adversary.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/runtime/scheduler.h"

namespace revisim::runtime {

std::optional<ProcessId> RoundRobinAdversary::pick(
    const std::vector<ProcessId>& runnable, const Scheduler& sched) {
  (void)sched;
  // First runnable id >= next_, wrapping around.
  auto it = std::lower_bound(runnable.begin(), runnable.end(), next_);
  ProcessId chosen = (it != runnable.end()) ? *it : runnable.front();
  next_ = chosen + 1;
  return chosen;
}

std::optional<ProcessId> RandomAdversary::pick(
    const std::vector<ProcessId>& runnable, const Scheduler& sched) {
  (void)sched;
  std::uniform_int_distribution<std::size_t> dist(0, runnable.size() - 1);
  return runnable[dist(rng_)];
}

std::optional<ProcessId> BurstAdversary::pick(
    const std::vector<ProcessId>& runnable, const Scheduler& sched) {
  (void)sched;
  if (current_ && remaining_ > 0 &&
      std::binary_search(runnable.begin(), runnable.end(), *current_)) {
    --remaining_;
    return *current_;
  }
  std::uniform_int_distribution<std::size_t> pick_proc(0, runnable.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_len(1, max_burst_);
  current_ = runnable[pick_proc(rng_)];
  remaining_ = pick_len(rng_) - 1;
  return *current_;
}

std::optional<ProcessId> ScriptedAdversary::pick(
    const std::vector<ProcessId>& runnable, const Scheduler& sched) {
  while (pos_ < script_.size()) {
    ProcessId want = script_[pos_++];
    if (std::binary_search(runnable.begin(), runnable.end(), want)) {
      return want;
    }
    if (policy_ == OnUnrunnable::kError) {
      throw std::logic_error("ScriptedAdversary: scripted process q" +
                             std::to_string(want + 1) + " (entry " +
                             std::to_string(pos_ - 1) +
                             ") is not runnable: finished, crashed, or never "
                             "spawned");
    }
    // kSkip: scripted process already finished/crashed; skip the stale entry.
  }
  if (stop_at_end_) {
    return std::nullopt;
  }
  return tail_.pick(runnable, sched);
}

CrashAdversary::CrashAdversary(Scheduler& sched, Adversary& base,
                               std::vector<CrashPoint> plan)
    : sched_(sched), base_(base), plan_(std::move(plan)) {
  std::stable_sort(plan_.begin(), plan_.end(),
                   [](const CrashPoint& a, const CrashPoint& b) {
                     return a.at_step < b.at_step;
                   });
  for (const CrashPoint& cp : plan_) {
    if (cp.pid >= sched_.process_count()) {
      throw std::invalid_argument(
          "CrashAdversary: crash point targets process q" +
          std::to_string(cp.pid + 1) + " but only " +
          std::to_string(sched_.process_count()) +
          " processes are spawned (spawn before constructing the adversary)");
    }
  }
}

CrashAdversary::CrashAdversary(Scheduler& sched, Adversary& base,
                               std::uint64_t seed, std::size_t max_crashes,
                               std::size_t horizon)
    : sched_(sched), base_(base) {
  const std::size_t n = sched_.process_count();
  if (n == 0) {
    throw std::invalid_argument(
        "CrashAdversary: no processes spawned (spawn before constructing the "
        "adversary)");
  }
  if (max_crashes > n) {
    throw std::invalid_argument(
        "CrashAdversary: max_crashes (" + std::to_string(max_crashes) +
        ") exceeds process count (" + std::to_string(n) + ")");
  }
  if (horizon == 0 && max_crashes > 0) {
    throw std::invalid_argument(
        "CrashAdversary: horizon must be positive to place crash points");
  }
  // Sample max_crashes distinct victims via a seeded partial Fisher-Yates,
  // then give each a uniform crash step in [0, horizon).
  std::mt19937_64 rng(seed);
  std::vector<ProcessId> ids(n);
  for (ProcessId i = 0; i < n; ++i) {
    ids[i] = i;
  }
  for (std::size_t k = 0; k < max_crashes; ++k) {
    std::uniform_int_distribution<std::size_t> pick_idx(k, n - 1);
    std::swap(ids[k], ids[pick_idx(rng)]);
    std::uniform_int_distribution<std::size_t> pick_step(0, horizon - 1);
    plan_.push_back(CrashPoint{pick_step(rng), ids[k]});
  }
  std::stable_sort(plan_.begin(), plan_.end(),
                   [](const CrashPoint& a, const CrashPoint& b) {
                     return a.at_step < b.at_step;
                   });
}

std::optional<ProcessId> CrashAdversary::pick(
    const std::vector<ProcessId>& runnable, const Scheduler& sched) {
  // Fire every due crash point.  pick() is called at a step boundary, so
  // injecting the fault here satisfies Scheduler::crash's contract.
  while (next_ < plan_.size() && plan_[next_].at_step <= sched_.total_steps()) {
    const CrashPoint cp = plan_[next_++];
    if (sched_.is_done(cp.pid) || sched_.is_crashed(cp.pid)) {
      continue;  // execution outpaced the plan; the point is moot
    }
    sched_.crash(cp.pid);
    performed_.push_back(cp);
  }
  // The runnable list we were handed predates the injected crashes; show the
  // base adversary only the survivors.
  survivors_.clear();
  for (ProcessId pid : runnable) {
    if (!sched_.is_crashed(pid)) {
      survivors_.push_back(pid);
    }
  }
  if (survivors_.empty()) {
    return std::nullopt;  // every live process just crashed: run is complete
  }
  return base_.pick(survivors_, sched);
}

std::optional<ProcessId> SoloAdversary::pick(
    const std::vector<ProcessId>& runnable, const Scheduler& sched) {
  (void)sched;
  if (std::binary_search(runnable.begin(), runnable.end(), only_)) {
    return only_;
  }
  return std::nullopt;
}

}  // namespace revisim::runtime
