#include "src/runtime/adversary.h"

#include <algorithm>

#include "src/runtime/scheduler.h"

namespace revisim::runtime {

std::optional<ProcessId> RoundRobinAdversary::pick(
    const std::vector<ProcessId>& runnable, const Scheduler& sched) {
  (void)sched;
  // First runnable id >= next_, wrapping around.
  auto it = std::lower_bound(runnable.begin(), runnable.end(), next_);
  ProcessId chosen = (it != runnable.end()) ? *it : runnable.front();
  next_ = chosen + 1;
  return chosen;
}

std::optional<ProcessId> RandomAdversary::pick(
    const std::vector<ProcessId>& runnable, const Scheduler& sched) {
  (void)sched;
  std::uniform_int_distribution<std::size_t> dist(0, runnable.size() - 1);
  return runnable[dist(rng_)];
}

std::optional<ProcessId> BurstAdversary::pick(
    const std::vector<ProcessId>& runnable, const Scheduler& sched) {
  (void)sched;
  if (current_ && remaining_ > 0 &&
      std::binary_search(runnable.begin(), runnable.end(), *current_)) {
    --remaining_;
    return *current_;
  }
  std::uniform_int_distribution<std::size_t> pick_proc(0, runnable.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_len(1, max_burst_);
  current_ = runnable[pick_proc(rng_)];
  remaining_ = pick_len(rng_) - 1;
  return *current_;
}

std::optional<ProcessId> ScriptedAdversary::pick(
    const std::vector<ProcessId>& runnable, const Scheduler& sched) {
  while (pos_ < script_.size()) {
    ProcessId want = script_[pos_++];
    if (std::binary_search(runnable.begin(), runnable.end(), want)) {
      return want;
    }
    // Scripted process already finished; skip the stale entry.
  }
  if (stop_at_end_) {
    return std::nullopt;
  }
  return tail_.pick(runnable, sched);
}

std::optional<ProcessId> SoloAdversary::pick(
    const std::vector<ProcessId>& runnable, const Scheduler& sched) {
  (void)sched;
  if (std::binary_search(runnable.begin(), runnable.end(), only_)) {
    return only_;
  }
  return std::nullopt;
}

}  // namespace revisim::runtime
