// Schedule adversaries.
//
// The scheduler asks an Adversary which poised process moves next; the
// adversary embodies the asynchronous model's scheduler.  Returning
// std::nullopt ends the execution (used to cut partial executions).
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "src/runtime/trace.h"

namespace revisim::runtime {

class Scheduler;

class Adversary {
 public:
  virtual ~Adversary() = default;
  // `runnable` is non-empty and sorted by process id.
  virtual std::optional<ProcessId> pick(const std::vector<ProcessId>& runnable,
                                        const Scheduler& sched) = 0;
};

// Cycles through processes in id order; the fair synchronous schedule.
class RoundRobinAdversary final : public Adversary {
 public:
  std::optional<ProcessId> pick(const std::vector<ProcessId>& runnable,
                                const Scheduler& sched) override;

 private:
  ProcessId next_ = 0;
};

// Uniform random schedule from a seed; the workhorse of stress tests.
class RandomAdversary final : public Adversary {
 public:
  explicit RandomAdversary(std::uint64_t seed) : rng_(seed) {}
  std::optional<ProcessId> pick(const std::vector<ProcessId>& runnable,
                                const Scheduler& sched) override;

 private:
  std::mt19937_64 rng_;
};

// Runs one process exclusively for a random burst length, then switches;
// models the semi-synchronous runs under which obstruction-free protocols
// make progress, while still exercising contention at burst boundaries.
class BurstAdversary final : public Adversary {
 public:
  BurstAdversary(std::uint64_t seed, std::size_t max_burst)
      : rng_(seed), max_burst_(max_burst) {}
  std::optional<ProcessId> pick(const std::vector<ProcessId>& runnable,
                                const Scheduler& sched) override;

 private:
  std::mt19937_64 rng_;
  std::size_t max_burst_;
  std::optional<ProcessId> current_;
  std::size_t remaining_ = 0;
};

// Replays a fixed schedule prefix, then falls back to a tail policy
// (round-robin).  The model checker enumerates prefixes through this.
class ScriptedAdversary final : public Adversary {
 public:
  explicit ScriptedAdversary(std::vector<ProcessId> script,
                             bool stop_at_end = false)
      : script_(std::move(script)), stop_at_end_(stop_at_end) {}
  std::optional<ProcessId> pick(const std::vector<ProcessId>& runnable,
                                const Scheduler& sched) override;

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  std::vector<ProcessId> script_;
  bool stop_at_end_;
  std::size_t pos_ = 0;
  RoundRobinAdversary tail_;
};

// Lets exactly one process run; everything else is frozen.  Solo executions
// are the defining schedules of obstruction-freedom.
class SoloAdversary final : public Adversary {
 public:
  explicit SoloAdversary(ProcessId only) : only_(only) {}
  std::optional<ProcessId> pick(const std::vector<ProcessId>& runnable,
                                const Scheduler& sched) override;

 private:
  ProcessId only_;
};

}  // namespace revisim::runtime
