// Schedule adversaries.
//
// The scheduler asks an Adversary which poised process moves next; the
// adversary embodies the asynchronous model's scheduler.  Returning
// std::nullopt ends the execution (used to cut partial executions).
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "src/runtime/trace.h"

namespace revisim::runtime {

class Scheduler;

class Adversary {
 public:
  virtual ~Adversary() = default;
  // `runnable` is non-empty and sorted by process id.
  virtual std::optional<ProcessId> pick(const std::vector<ProcessId>& runnable,
                                        const Scheduler& sched) = 0;
};

// Cycles through processes in id order; the fair synchronous schedule.
class RoundRobinAdversary final : public Adversary {
 public:
  std::optional<ProcessId> pick(const std::vector<ProcessId>& runnable,
                                const Scheduler& sched) override;

 private:
  ProcessId next_ = 0;
};

// Uniform random schedule from a seed; the workhorse of stress tests.
class RandomAdversary final : public Adversary {
 public:
  explicit RandomAdversary(std::uint64_t seed) : rng_(seed) {}
  std::optional<ProcessId> pick(const std::vector<ProcessId>& runnable,
                                const Scheduler& sched) override;

 private:
  std::mt19937_64 rng_;
};

// Runs one process exclusively for a random burst length, then switches;
// models the semi-synchronous runs under which obstruction-free protocols
// make progress, while still exercising contention at burst boundaries.
class BurstAdversary final : public Adversary {
 public:
  BurstAdversary(std::uint64_t seed, std::size_t max_burst)
      : rng_(seed), max_burst_(max_burst) {}
  std::optional<ProcessId> pick(const std::vector<ProcessId>& runnable,
                                const Scheduler& sched) override;

 private:
  std::mt19937_64 rng_;
  std::size_t max_burst_;
  std::optional<ProcessId> current_;
  std::size_t remaining_ = 0;
};

// Replays a fixed schedule prefix, then falls back to a tail policy
// (round-robin).  The model checker enumerates prefixes through this.
//
// Contract for scripted entries that are not currently runnable (the
// process already finished, crashed, or was never spawned):
//   * kSkip (default): the stale entry is consumed and skipped; the next
//     scripted entry is tried.  This is what schedule-prefix enumeration
//     wants - a prefix recorded against one world stays usable on a world
//     whose processes finish slightly earlier.
//   * kError: throws std::logic_error naming the entry and its position.
//     Use this when the script is meant to be exact (replay debugging),
//     where silently skipping would mask a divergence.
// An *empty* script behaves like any exhausted script: with
// stop_at_end=true the very first pick returns std::nullopt (a zero-step
// execution, which Scheduler::run reports as a cut); with stop_at_end=false
// every pick falls through to the round-robin tail.
class ScriptedAdversary final : public Adversary {
 public:
  enum class OnUnrunnable { kSkip, kError };

  explicit ScriptedAdversary(std::vector<ProcessId> script,
                             bool stop_at_end = false,
                             OnUnrunnable policy = OnUnrunnable::kSkip)
      : script_(std::move(script)),
        stop_at_end_(stop_at_end),
        policy_(policy) {}
  std::optional<ProcessId> pick(const std::vector<ProcessId>& runnable,
                                const Scheduler& sched) override;

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  std::vector<ProcessId> script_;
  bool stop_at_end_;
  OnUnrunnable policy_;
  std::size_t pos_ = 0;
  RoundRobinAdversary tail_;
};

// Lets exactly one process run; everything else is frozen.  Solo executions
// are the defining schedules of obstruction-freedom.
class SoloAdversary final : public Adversary {
 public:
  explicit SoloAdversary(ProcessId only) : only_(only) {}
  std::optional<ProcessId> pick(const std::vector<ProcessId>& runnable,
                                const Scheduler& sched) override;

 private:
  ProcessId only_;
};

// Crash-fault injection decorator: crashes processes at planned step
// boundaries, delegating the surviving choices to any base adversary.  This
// is what turns the wait-freedom and crash-tolerance theorems from claims
// tested by inference into claims tested by injection: the simulation of
// Theorem 21 must terminate with up to f-1 simulators crashed, and the
// augmented snapshot's per-process operations must stay wait-free whatever
// subset of their peers dies.
//
// A crash point (at_step, pid) fires at the first pick whose global step
// count has reached at_step: the scheduler permanently retires pid
// (Scheduler::crash), its poised operation is discarded unexecuted, and the
// base adversary is shown only the surviving runnable set.  Points whose
// target already finished or crashed are dropped silently (the plan is a
// schedule-independent script; executions may outpace it).  When every
// remaining runnable process was just crashed, pick returns std::nullopt
// and Scheduler::run reports all_done() - a crash-complete execution.
//
// The decorator needs mutable scheduler access to inject faults, so it is
// bound to one Scheduler at construction; processes must already be
// spawned.  `performed()` lists the crashes that actually fired, in order -
// the crash plan a failure witness records.
class CrashAdversary final : public Adversary {
 public:
  struct CrashPoint {
    std::size_t at_step = 0;  // fires once total_steps() >= at_step
    ProcessId pid = 0;
  };

  // Scripted plan.  Points may be in any order; they are sorted by at_step.
  CrashAdversary(Scheduler& sched, Adversary& base,
                 std::vector<CrashPoint> plan);

  // Seeded-random plan: up to `max_crashes` distinct processes, each with a
  // crash step drawn uniformly from [0, horizon).  Deterministic in seed.
  CrashAdversary(Scheduler& sched, Adversary& base, std::uint64_t seed,
                 std::size_t max_crashes, std::size_t horizon);

  std::optional<ProcessId> pick(const std::vector<ProcessId>& runnable,
                                const Scheduler& sched) override;

  [[nodiscard]] const std::vector<CrashPoint>& plan() const noexcept {
    return plan_;
  }
  [[nodiscard]] const std::vector<CrashPoint>& performed() const noexcept {
    return performed_;
  }

 private:
  Scheduler& sched_;
  Adversary& base_;
  std::vector<CrashPoint> plan_;
  std::vector<CrashPoint> performed_;
  std::size_t next_ = 0;
  std::vector<ProcessId> survivors_;
};

}  // namespace revisim::runtime
