// Cooperative, step-granular scheduler for the asynchronous shared-memory
// model of the paper (Section 2).
//
// Processes are coroutines.  Every base-object operation is one atomic step:
// the process suspends, the scheduler (playing the adversary) picks which
// poised process moves next, executes that process's operation against the
// object state, and resumes the process, which then computes locally until it
// poses its next step.  Everything runs on one OS thread, so a step is atomic
// by construction and executions are deterministic functions of the schedule,
// which makes them replayable (the model checker depends on this).
#pragma once

#include <cassert>
#include <coroutine>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/runtime/task.h"
#include "src/runtime/trace.h"

namespace revisim::runtime {

class Adversary;

// Thrown when Scheduler::run hits its step budget with processes still live.
// In an asynchronous model a bounded run is a legitimate (partial) execution,
// so callers that expect non-termination catch this.
class StepLimitExceeded : public std::runtime_error {
 public:
  explicit StepLimitExceeded(std::size_t limit)
      : std::runtime_error("step limit exceeded: " + std::to_string(limit)) {}
};

class Scheduler {
 public:
  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Registers a shared object; the returned id appears in trace events.
  std::size_t register_object(std::string name);

  // Adds a process.  The coroutine must have been created but not started
  // (Task is lazy).  Returns the process id (0-based; process i is the
  // paper's q_{i+1}).
  ProcessId spawn(Task<void> body, std::string name = {});

  // Runs until every process finishes, the adversary declines to schedule, or
  // `max_steps` steps have executed (then throws StepLimitExceeded unless
  // `throw_on_limit` is false).  Returns true iff all processes finished.
  bool run(Adversary& adversary, std::size_t max_steps = kDefaultMaxSteps,
           bool throw_on_limit = true);

  // Runs exactly one step by `pid`; pid must be runnable.
  void run_step(ProcessId pid);

  // Process ids whose next step is poised (or that have not started), in
  // increasing id order.
  [[nodiscard]] std::vector<ProcessId> runnable() const;

  // Allocation-free variant: clears `out` and fills it with the runnable ids.
  // The schedule explorer calls this once per tree node, so reusing one
  // buffer there removes a vector allocation from the exploration hot path.
  void runnable_into(std::vector<ProcessId>& out) const;

  [[nodiscard]] bool all_done() const;
  [[nodiscard]] bool is_done(ProcessId pid) const { return procs_.at(pid)->done; }
  [[nodiscard]] std::size_t process_count() const noexcept { return procs_.size(); }
  [[nodiscard]] std::size_t steps_taken(ProcessId pid) const {
    return procs_.at(pid)->steps;
  }
  [[nodiscard]] std::size_t total_steps() const noexcept { return step_count_; }

  // Trace recording toggle (on by default).  With recording off the
  // scheduler runs in "fast mode": steps are counted (total_steps and the
  // per-process counters stay exact, so linearization points derived from
  // them are unchanged) but no Event is appended and base objects skip
  // building step-detail strings.  Executions are step-for-step identical
  // either way; only the Trace is empty.  The schedule explorer runs with
  // recording off because nothing reads per-execution traces there.
  void set_recording(bool on) noexcept { recording_ = on; }
  [[nodiscard]] bool recording() const noexcept { return recording_; }

  // Process currently executing a step (valid only inside a step).
  [[nodiscard]] ProcessId current() const {
    assert(in_step_);
    return current_;
  }

  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] const std::string& object_name(std::size_t id) const {
    return object_names_.at(id);
  }
  // Number of base objects registered - the space census.  With the
  // register substrate every object is a plain register, so this is the
  // register count the paper's space complexity measures.
  [[nodiscard]] std::size_t object_count() const noexcept {
    return object_names_.size();
  }

  static constexpr std::size_t kDefaultMaxSteps = 1'000'000;

  // --- used by StepAwaiter (not by user code) ---
  void post_step(std::coroutine_handle<> resumer, std::function<void()> exec,
                 std::size_t object, StepKind kind, std::string detail);

 private:
  struct Process {
    Task<void> body;
    std::string name;
    bool started = false;
    bool done = false;
    std::size_t steps = 0;
    // Poised step, if any.
    std::coroutine_handle<> resumer;
    std::function<void()> exec;
    std::size_t step_object = 0;
    StepKind step_kind = StepKind::kOther;
    std::string step_detail;
    bool poised = false;
  };

  void finish_if_done(Process& p);
  void execute_poised_step(Process& p, ProcessId pid);

  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<std::string> object_names_;
  Trace trace_;
  std::size_t step_count_ = 0;  // == trace_.size() while recording
  ProcessId current_ = 0;
  bool in_step_ = false;
  bool recording_ = true;
};

// Awaitable representing one atomic base-object step.  `op` runs when the
// scheduler grants the step; its return value is handed back to the process.
template <typename R>
class StepAwaiter {
 public:
  StepAwaiter(Scheduler& sched, std::function<R()> op, std::size_t object,
              StepKind kind, std::string detail)
      : sched_(sched),
        op_(std::move(op)),
        object_(object),
        kind_(kind),
        detail_(std::move(detail)) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    sched_.post_step(
        h,
        [this] {
          if constexpr (std::is_void_v<R>) {
            op_();
          } else {
            result_.emplace(op_());
          }
        },
        object_, kind_, std::move(detail_));
  }
  R await_resume() {
    if constexpr (!std::is_void_v<R>) {
      return std::move(*result_);
    }
  }

 private:
  struct Empty {};
  Scheduler& sched_;
  std::function<R()> op_;
  std::size_t object_;
  StepKind kind_;
  std::string detail_;
  [[no_unique_address]] std::conditional_t<std::is_void_v<R>, Empty,
                                           std::optional<R>> result_;
};

}  // namespace revisim::runtime
