// Cooperative, step-granular scheduler for the asynchronous shared-memory
// model of the paper (Section 2).
//
// Processes are coroutines.  Every base-object operation is one atomic step:
// the process suspends, the scheduler (playing the adversary) picks which
// poised process moves next, executes that process's operation against the
// object state, and resumes the process, which then computes locally until it
// poses its next step.  Everything runs on one OS thread, so a step is atomic
// by construction and executions are deterministic functions of the schedule,
// which makes them replayable (the model checker depends on this).
#pragma once

#include <cassert>
#include <coroutine>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/runtime/footprint.h"
#include "src/runtime/task.h"
#include "src/runtime/trace.h"
#include "src/util/fingerprint.h"
#include "src/util/small_fn.h"

namespace revisim::runtime {

class Adversary;

// Thrown when Scheduler::run hits its step budget with processes still live.
// In an asynchronous model a bounded run is a legitimate (partial) execution,
// so callers that expect non-termination catch this.
class StepLimitExceeded : public std::runtime_error {
 public:
  explicit StepLimitExceeded(std::size_t limit)
      : std::runtime_error("step limit exceeded: " + std::to_string(limit)) {}
};

class Scheduler {
 public:
  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Registers a shared object; the returned id appears in trace events.
  std::size_t register_object(std::string name);

  // Adds a process.  The coroutine must have been created but not started
  // (Task is lazy).  Returns the process id (0-based; process i is the
  // paper's q_{i+1}).
  ProcessId spawn(Task<void> body, std::string name = {});

  // Runs until every process finishes or crashes, the adversary declines to
  // schedule, or `max_steps` steps have executed (then throws
  // StepLimitExceeded unless `throw_on_limit` is false).  Returns true iff
  // no live process remains (every process finished or crashed).
  bool run(Adversary& adversary, std::size_t max_steps = kDefaultMaxSteps,
           bool throw_on_limit = true);

  // Runs exactly one step by `pid`; pid must be runnable.
  void run_step(ProcessId pid);

  // Permanently retires a process at a step boundary (the crash faults of
  // the asynchronous model).  Its poised base-object operation, if any, is
  // discarded *unexecuted* - a crash lands between the operation being
  // posed and its atomic step, so the operation never takes effect - and
  // the coroutine frame is destroyed.  A crashed process is never runnable
  // again and counts as retired for all_done().  Crashing a finished or
  // already-crashed process, or crashing from inside a step, is an error.
  // With recording on, the trace gains a kCrash event (sharing the index of
  // the next step, since a crash consumes no step).
  void crash(ProcessId pid);

  // Process ids whose next step is poised (or that have not started), in
  // increasing id order.  Crashed processes are never runnable: every
  // adversary and explorer sees only live choices.
  [[nodiscard]] std::vector<ProcessId> runnable() const;

  // Allocation-free variant: clears `out` and fills it with the runnable ids.
  // The schedule explorer calls this once per tree node, so reusing one
  // buffer there removes a vector allocation from the exploration hot path.
  void runnable_into(std::vector<ProcessId>& out) const;

  // True iff no live process remains: every process finished *or crashed*.
  // (Crash-closure: a crashed process's execution is maximal, so the run is
  // complete once only crashed processes are left unfinished.)
  [[nodiscard]] bool all_done() const;
  [[nodiscard]] bool is_done(ProcessId pid) const { return procs_.at(pid)->done; }
  [[nodiscard]] bool is_crashed(ProcessId pid) const {
    return procs_.at(pid)->crashed;
  }
  [[nodiscard]] std::size_t crashed_count() const noexcept {
    return crash_count_;
  }
  [[nodiscard]] std::size_t process_count() const noexcept { return procs_.size(); }
  [[nodiscard]] std::size_t steps_taken(ProcessId pid) const {
    return procs_.at(pid)->steps;
  }
  [[nodiscard]] std::size_t total_steps() const noexcept { return step_count_; }

  // Trace recording toggle (on by default).  With recording off the
  // scheduler runs in "fast mode": steps are counted (total_steps and the
  // per-process counters stay exact, so linearization points derived from
  // them are unchanged) but no Event is appended and base objects skip
  // building step-detail strings.  Executions are step-for-step identical
  // either way; only the Trace is empty.  The schedule explorer runs with
  // recording off because nothing reads per-execution traces there.
  void set_recording(bool on) noexcept { recording_ = on; }
  [[nodiscard]] bool recording() const noexcept { return recording_; }

  // Checkpoint recording (off by default).  With it on, every applied
  // schedule entry - one plain id per run_step, one crash entry per crash -
  // is appended to applied_schedule().  A world whose scheduler records its
  // applied schedule is a *portable checkpoint*: the explorer can validate
  // it against a target schedule prefix, hand it to another worker as a
  // warm start, or clone it by rebuilding from the factory and replaying
  // applied_schedule().  Coroutine frames cannot be copied, so this replay
  // hook is the only clone primitive the checkpoint protocol can offer
  // (see DESIGN.md finding 7); recording costs one push_back per step.
  void set_checkpointing(bool on) {
    checkpointing_ = on;
    if (on) {
      applied_.reserve(64);
    }
  }
  [[nodiscard]] bool checkpointing() const noexcept { return checkpointing_; }
  [[nodiscard]] const std::vector<ProcessId>& applied_schedule() const noexcept {
    return applied_;
  }

  // Process currently executing a step (valid only inside a step).
  [[nodiscard]] ProcessId current() const {
    assert(in_step_);
    return current_;
  }

  // --- access footprints (partial-order reduction, src/check) ------------
  // Declared footprint of `pid`'s poised step.  Unstarted processes (whose
  // first operation is unknown until their prologue runs) and processes
  // with no poised step report the opaque footprint, which conflicts with
  // everything - so the explorer's independence relation is sound by
  // default and precise exactly where a primitive opted in.
  [[nodiscard]] Footprint poised_footprint(ProcessId pid) const {
    const Process& p = *procs_.at(pid);
    if (!p.started || !p.poised) {
      return Footprint::opaque_footprint();
    }
    return p.footprint;
  }

  // Declared footprint of the most recently executed step (fast mode
  // included; the declaration is recorded whether or not tracing is on).
  [[nodiscard]] const Footprint& last_step_footprint() const noexcept {
    return last_footprint_;
  }

  // Footprint-audit mode (off by default; validation, not a fast path).
  // With it on, primitives report every shared location their granted
  // operation actually touches through note_access, and the scheduler
  // retains, per executed step, the declared footprint next to the actual
  // access list - so a test can assert footprint_covers(declared, actual)
  // for each access and catch a primitive under-reporting, which would
  // make partial-order reduction unsound.
  void set_footprint_audit(bool on) {
    footprint_audit_ = on;
    last_actual_.clear();
  }
  [[nodiscard]] bool footprint_audit() const noexcept {
    return footprint_audit_;
  }
  void note_access(std::size_t object, std::uint32_t component,
                   Footprint::Mode mode) {
    if (!footprint_audit_) {
      return;
    }
    last_actual_.push_back(Footprint::Access{
        static_cast<std::uint32_t>(object), component, mode});
  }
  [[nodiscard]] const std::vector<Footprint::Access>& last_step_accesses()
      const noexcept {
    return last_actual_;
  }

  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] const std::string& object_name(std::size_t id) const {
    return object_names_.at(id);
  }
  // Number of base objects registered - the space census.  With the
  // register substrate every object is a plain register, so this is the
  // register count the paper's space complexity measures.
  [[nodiscard]] std::size_t object_count() const noexcept {
    return object_names_.size();
  }

  // --- state fingerprinting (transposition pruning, src/check) ----------
  // Objects whose contents are behaviour-relevant shared state register
  // themselves here during construction; a world factory therefore fixes
  // the registration order, making digests of same-factory worlds
  // comparable.  The pointer must outlive every state_digest call.
  void register_state_source(const util::Fingerprintable* source) {
    state_sources_.push_back(source);
  }

  // Feeds the canonical scheduler state to `sink`: the per-process control
  // skeleton (started/done flags, step counts, poised step kind + object)
  // followed by every registered source's contents.  Together with the
  // determinism of executions this pins the residual behaviour of worlds
  // whose process-local state is a function of (own steps taken, shared
  // contents) - see src/util/fingerprint.h for the exact contract.
  void state_digest(util::StateSink& sink) const;

  static constexpr std::size_t kDefaultMaxSteps = 1'000'000;

  // --- used by StepAwaiter (not by user code) ---
  // The poised operation is a raw trampoline into the awaiter object (which
  // lives in the coroutine frame until the step is granted), so posting a
  // step performs no allocation and no type erasure beyond one call through
  // a function pointer.
  using StepExec = void (*)(void*);
  void post_step(std::coroutine_handle<> resumer, StepExec exec,
                 void* exec_ctx, std::size_t object, StepKind kind,
                 std::string detail,
                 Footprint footprint = Footprint::opaque_footprint());

 private:
  struct Process {
    Task<void> body;
    std::string name;
    bool started = false;
    bool done = false;
    bool crashed = false;
    std::size_t steps = 0;
    // Poised step, if any.
    std::coroutine_handle<> resumer;
    StepExec exec = nullptr;
    void* exec_ctx = nullptr;
    std::size_t step_object = 0;
    StepKind step_kind = StepKind::kOther;
    std::string step_detail;
    Footprint footprint;  // declared footprint of the poised step (opaque
                          // unless the posing primitive opted in)
    bool poised = false;
  };

  void finish_if_done(Process& p);
  void execute_poised_step(Process& p, ProcessId pid);

  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<ProcessId> applied_;  // applied entries (checkpointing only)
  std::vector<const util::Fingerprintable*> state_sources_;
  std::vector<std::string> object_names_;
  Trace trace_;
  std::size_t step_count_ = 0;  // == trace_.size() while recording
  ProcessId current_ = 0;
  std::size_t crash_count_ = 0;
  bool in_step_ = false;
  bool recording_ = true;
  bool checkpointing_ = false;
  bool footprint_audit_ = false;
  Footprint last_footprint_;  // declared footprint of the last executed step
  std::vector<Footprint::Access> last_actual_;  // audit mode only
};

// Applies one serialized schedule entry (see trace.h): a plain id runs one
// step, a crash entry retires the process.  The explorer, the witness
// replayer and tests all replay schedules through this, so crash-extended
// schedules stay replayable end to end.
inline void apply_schedule_entry(Scheduler& sched, ProcessId entry) {
  if (is_crash_entry(entry)) {
    sched.crash(crash_entry_target(entry));
  } else {
    sched.run_step(entry);
  }
}

// Awaitable representing one atomic base-object step.  `op` runs when the
// scheduler grants the step; its return value is handed back to the process.
// The operation is stored in a small-buffer callable and executed through a
// trampoline into this awaiter (stable in the coroutine frame until the step
// is granted), so posing and granting a step never touches the heap for
// typical captures.
template <typename R>
class StepAwaiter {
 public:
  template <typename F>
    requires std::is_invocable_r_v<R, std::remove_cvref_t<F>&>
  StepAwaiter(Scheduler& sched, F&& op, std::size_t object, StepKind kind,
              std::string detail,
              Footprint footprint = Footprint::opaque_footprint())
      : sched_(sched),
        op_(std::forward<F>(op)),
        object_(object),
        kind_(kind),
        detail_(std::move(detail)),
        footprint_(footprint) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    sched_.post_step(h, &StepAwaiter::exec_trampoline, this, object_, kind_,
                     std::move(detail_), footprint_);
  }
  R await_resume() {
    if constexpr (!std::is_void_v<R>) {
      return std::move(*result_);
    }
  }

 private:
  static void exec_trampoline(void* self) {
    auto* awaiter = static_cast<StepAwaiter*>(self);
    if constexpr (std::is_void_v<R>) {
      awaiter->op_();
    } else {
      awaiter->result_.emplace(awaiter->op_());
    }
  }

  struct Empty {};
  Scheduler& sched_;
  util::SmallFn<R> op_;
  std::size_t object_;
  StepKind kind_;
  std::string detail_;
  Footprint footprint_;
  [[no_unique_address]] std::conditional_t<std::is_void_v<R>, Empty,
                                           std::optional<R>> result_;
};

}  // namespace revisim::runtime
