#include "src/runtime/scheduler.h"

#include "src/runtime/adversary.h"

namespace revisim::runtime {

Scheduler::Scheduler() = default;
Scheduler::~Scheduler() = default;

std::size_t Scheduler::register_object(std::string name) {
  object_names_.push_back(std::move(name));
  return object_names_.size() - 1;
}

ProcessId Scheduler::spawn(Task<void> body, std::string name) {
  auto p = std::make_unique<Process>();
  p->body = std::move(body);
  p->name = std::move(name);
  procs_.push_back(std::move(p));
  return procs_.size() - 1;
}

std::vector<ProcessId> Scheduler::runnable() const {
  std::vector<ProcessId> out;
  runnable_into(out);
  return out;
}

void Scheduler::runnable_into(std::vector<ProcessId>& out) const {
  out.clear();
  for (ProcessId i = 0; i < procs_.size(); ++i) {
    const Process& p = *procs_[i];
    if (!p.done && !p.crashed && (!p.started || p.poised)) {
      out.push_back(i);
    }
  }
}

bool Scheduler::all_done() const {
  for (const auto& p : procs_) {
    if (!p->done && !p->crashed) {
      return false;
    }
  }
  return true;
}

void Scheduler::crash(ProcessId pid) {
  Process& p = *procs_.at(pid);
  if (in_step_) {
    throw std::logic_error(
        "crash must happen at a step boundary, not inside a step");
  }
  if (p.done) {
    throw std::logic_error("crash on finished process");
  }
  if (p.crashed) {
    throw std::logic_error("process already crashed");
  }
  if (checkpointing_) {
    applied_.push_back(make_crash_entry(pid));
  }
  p.crashed = true;
  p.poised = false;
  p.exec = nullptr;
  p.exec_ctx = nullptr;
  p.resumer = {};
  p.step_detail.clear();
  // Destroying the frame unwinds the whole suspended call chain; the poised
  // operation (whose awaiter lived in a frame) is gone without executing.
  p.body = Task<void>{};
  ++crash_count_;
  if (recording_) {
    trace_.events.push_back(
        Event{step_count_, pid, 0, StepKind::kCrash, "crash"});
  }
}

void Scheduler::post_step(std::coroutine_handle<> resumer, StepExec exec,
                          void* exec_ctx, std::size_t object, StepKind kind,
                          std::string detail, Footprint footprint) {
  assert(in_step_ || !procs_[current_]->started);
  Process& p = *procs_[current_];
  assert(!p.poised);
  p.resumer = resumer;
  p.exec = exec;
  p.exec_ctx = exec_ctx;
  p.step_object = object;
  p.step_kind = kind;
  p.step_detail = std::move(detail);
  p.footprint = footprint;
  p.poised = true;
}

void Scheduler::state_digest(util::StateSink& sink) const {
  sink.word(procs_.size());
  for (const auto& p : procs_) {
    sink.word((p->started ? 1u : 0u) | (p->done ? 2u : 0u) |
              (p->poised ? 4u : 0u) | (p->crashed ? 8u : 0u));
    sink.word(p->steps);
    if (p->poised) {
      sink.word(p->step_object);
      sink.word(static_cast<std::uint64_t>(p->step_kind));
    }
  }
  sink.word(state_sources_.size());
  for (const util::Fingerprintable* source : state_sources_) {
    source->fingerprint_into(sink);
  }
}

void Scheduler::run_step(ProcessId pid) {
  Process& p = *procs_.at(pid);
  if (p.done) {
    throw std::logic_error("run_step on finished process");
  }
  if (p.crashed) {
    throw std::logic_error("run_step on crashed process");
  }
  if (checkpointing_) {
    applied_.push_back(pid);
  }
  current_ = pid;
  in_step_ = true;
  if (!p.started) {
    // First activation: run local prologue until the first poised step or
    // completion.  The prologue itself is free local computation, so we do
    // not charge a step unless an operation was actually posed and executed.
    p.started = true;
    p.body.resume();
    finish_if_done(p);
    if (!p.done && !p.poised) {
      in_step_ = false;
      throw std::logic_error("process suspended without posting a step");
    }
    // If the prologue immediately poised a step, grant it now so that one
    // run_step == one base-object step for started processes too.
    if (!p.done) {
      execute_poised_step(p, pid);
    }
    in_step_ = false;
    return;
  }
  if (!p.poised) {
    in_step_ = false;
    throw std::logic_error("run_step on process with no poised step");
  }
  execute_poised_step(p, pid);
  in_step_ = false;
}

void Scheduler::execute_poised_step(Process& p, ProcessId pid) {
  p.poised = false;
  if (recording_) {
    trace_.events.push_back(Event{step_count_, pid, p.step_object, p.step_kind,
                                  std::move(p.step_detail)});
  }
  // The declared footprint of every executed step is recorded, fast mode
  // included; audit mode additionally collects the actual accesses the
  // operation reports via note_access, for covers() cross-checking.
  last_footprint_ = p.footprint;
  if (footprint_audit_) {
    last_actual_.clear();
  }
  ++step_count_;
  ++p.steps;
  p.exec(p.exec_ctx);  // the atomic operation on the object
  auto resumer = p.resumer;
  p.exec = nullptr;
  p.exec_ctx = nullptr;
  p.resumer = {};
  resumer.resume();  // local computation until next poised step / completion
  finish_if_done(p);
  if (!p.done && !p.poised) {
    throw std::logic_error("process suspended without posting a step");
  }
}

void Scheduler::finish_if_done(Process& p) {
  if (p.body.done()) {
    p.done = true;
    p.poised = false;
    p.body.rethrow_if_failed();
  }
}

bool Scheduler::run(Adversary& adversary, std::size_t max_steps,
                    bool throw_on_limit) {
  std::size_t steps = 0;
  while (!all_done()) {
    auto candidates = runnable();
    if (candidates.empty()) {
      return false;  // deadlock cannot happen in this model; defensive
    }
    if (steps >= max_steps) {
      if (throw_on_limit) {
        throw StepLimitExceeded(max_steps);
      }
      return false;
    }
    auto choice = adversary.pick(candidates, *this);
    if (!choice) {
      // The adversary ended the execution - possibly by crashing every
      // remaining live process (CrashAdversary), in which case the run is
      // complete rather than cut short.
      return all_done();
    }
    run_step(*choice);
    ++steps;
  }
  return true;
}

}  // namespace revisim::runtime
