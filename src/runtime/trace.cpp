#include "src/runtime/trace.h"

#include <sstream>

namespace revisim::runtime {

const char* to_string(StepKind kind) noexcept {
  switch (kind) {
    case StepKind::kRead:
      return "read";
    case StepKind::kWrite:
      return "write";
    case StepKind::kScan:
      return "scan";
    case StepKind::kUpdate:
      return "update";
    case StepKind::kOther:
      return "other";
    case StepKind::kCrash:
      return "crash";
  }
  return "?";
}

std::string Trace::to_text() const {
  std::ostringstream out;
  for (const Event& e : events) {
    out << '#' << e.index << " q" << e.process + 1 << " obj" << e.object << ' '
        << to_string(e.kind);
    if (!e.detail.empty()) {
      out << ' ' << e.detail;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace revisim::runtime
