// Step-level execution trace of the real system.
//
// Every base-object operation granted by the scheduler is recorded as one
// Event.  Traces are the raw material for the augmented-snapshot linearizer
// (src/augmented/linearizer.h) and for debugging adversarial schedules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace revisim::runtime {

using ProcessId = std::size_t;

// Kind of a base-object step.  The model's base objects expose reads/writes
// on registers and scans/updates on snapshot objects.  kCrash marks a crash
// event in the trace: it is not a base-object step (it consumes no step
// index of its own) but the record of a process being permanently retired
// at a step boundary.
enum class StepKind : std::uint8_t {
  kRead,
  kWrite,
  kScan,
  kUpdate,
  kOther,
  kCrash,
};

const char* to_string(StepKind kind) noexcept;

// --- schedule entries -------------------------------------------------------
//
// A serialized schedule (explorer witness, witness files, crash-branching
// exploration) is a sequence of entries, each either a plain ProcessId (one
// step by that process) or a crash entry - the same id with the top bit set,
// meaning "crash that process here".  Process ids never reach the top bit,
// so the encoding is unambiguous and plain schedules are unchanged.
inline constexpr ProcessId kCrashEntryBit = ProcessId{1}
                                            << (sizeof(ProcessId) * 8 - 1);

constexpr ProcessId make_crash_entry(ProcessId pid) noexcept {
  return pid | kCrashEntryBit;
}
constexpr bool is_crash_entry(ProcessId entry) noexcept {
  return (entry & kCrashEntryBit) != 0;
}
constexpr ProcessId crash_entry_target(ProcessId entry) noexcept {
  return entry & ~kCrashEntryBit;
}

struct Event {
  std::size_t index = 0;      // global step number, 0-based
  ProcessId process = 0;      // real process that took the step
  std::size_t object = 0;     // registered object id
  StepKind kind = StepKind::kOther;
  std::string detail;         // operation-specific short description
};

struct Trace {
  std::vector<Event> events;

  void clear() { events.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return events.size(); }

  // Human-readable dump, one line per event.
  [[nodiscard]] std::string to_text() const;
};

}  // namespace revisim::runtime
