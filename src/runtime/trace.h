// Step-level execution trace of the real system.
//
// Every base-object operation granted by the scheduler is recorded as one
// Event.  Traces are the raw material for the augmented-snapshot linearizer
// (src/augmented/linearizer.h) and for debugging adversarial schedules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace revisim::runtime {

using ProcessId = std::size_t;

// Kind of a base-object step.  The model's base objects expose reads/writes
// on registers and scans/updates on snapshot objects.
enum class StepKind : std::uint8_t {
  kRead,
  kWrite,
  kScan,
  kUpdate,
  kOther,
};

const char* to_string(StepKind kind) noexcept;

struct Event {
  std::size_t index = 0;      // global step number, 0-based
  ProcessId process = 0;      // real process that took the step
  std::size_t object = 0;     // registered object id
  StepKind kind = StepKind::kOther;
  std::string detail;         // operation-specific short description
};

struct Trace {
  std::vector<Event> events;

  void clear() { events.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return events.size(); }

  // Human-readable dump, one line per event.
  [[nodiscard]] std::string to_text() const;
};

}  // namespace revisim::runtime
