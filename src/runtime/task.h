// Lazy coroutine task with continuation chaining.
//
// Real processes in the reproduction (simulators, clients of the augmented
// snapshot) are written as coroutines returning Task<T>.  A Task is lazy: it
// starts executing only when awaited (or when the scheduler resumes the
// top-level process coroutine).  When an inner Task finishes, control is
// symmetrically transferred back to its awaiter, so arbitrarily deep call
// chains (e.g. the recursive Construct(r) of a covering simulator) suspend
// and resume as a unit at each shared-memory step.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace revisim::runtime {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;  // resumed when this coroutine finishes
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;
  Task<T> get_return_object();
  void return_value(T v) { value = std::move(v); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() noexcept {}
};

}  // namespace detail

// Owning handle to a lazily started coroutine producing T.
template <typename T>
class Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return handle_ && handle_.done(); }
  [[nodiscard]] Handle handle() const noexcept { return handle_; }

  // Starts (or continues) the coroutine on the current thread.  Used by the
  // scheduler on the top-level process coroutine only.
  void resume() { handle_.resume(); }

  // Rethrows any exception that escaped the coroutine body.
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  // Result of a finished Task<T>.  Precondition: done() and no exception.
  T result() const
    requires(!std::is_void_v<T>)
  {
    rethrow_if_failed();
    return std::move(*handle_.promise().value);
  }

  // Awaiting a Task starts it and transfers control into it; the awaiter is
  // resumed when the task completes.
  auto operator co_await() & noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      T await_resume() {
        if (handle.promise().exception) {
          std::rethrow_exception(handle.promise().exception);
        }
        if constexpr (!std::is_void_v<T>) {
          return std::move(*handle.promise().value);
        }
      }
    };
    return Awaiter{handle_};
  }
  auto operator co_await() && noexcept { return operator co_await(); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace revisim::runtime
