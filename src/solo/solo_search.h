// Shortest solo-path search (§5.2, proof of Theorem 35).
//
// A p-solo path from (state s, expectation vector E) is the paper's p-solo
// path: an execution in which p runs alone against an object whose contents
// are exactly what p expects (E), branching only over the nondeterministic
// choices of delta.  Nondeterministic solo termination guarantees such a
// path exists from every reachable configuration; the determinizer asks for
// the *shortest* one and follows its first edge.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/solo/nd_protocol.h"

namespace revisim::solo {

struct SoloSearch {
  const NDMachine* machine = nullptr;
  std::size_t node_budget = 50'000;  // max BFS nodes per query
  // Memo: (state | E) -> shortest remaining solo-path length (steps), or
  // nullopt if no path was found within budget.
  std::unordered_map<std::string, std::optional<std::size_t>> memo;

  // Shortest solo-path length from (s, e); nullopt if none found.
  std::optional<std::size_t> shortest(const NDState& s, const View& e);
};

// Canonical key of a (state, expectation) node.
[[nodiscard]] std::string node_key(const NDState& s, const View& e);

}  // namespace revisim::solo
