// Nondeterministic protocols (§5.1).
//
// A nondeterministic protocol gives each process a state machine
// (S, nu, delta, I, F): in a non-final state s the process performs the
// *deterministic* next step nu(s) (a scan of the m-component object or an
// update of one component - we keep the paper's WLOG alternation), and the
// transition function delta maps (s, response) to a non-empty *ordered set*
// of successor states (the paper totally orders states; we use vector
// order).  Nondeterministic solo termination: from every reachable
// configuration every process has *some* terminating solo execution - the
// property satisfied by randomized wait-free protocols.
//
// States are opaque canonical strings so the solo-path search (Theorem 35)
// can memoize on (state, expectation-vector) pairs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/util/value.h"

namespace revisim::solo {

using NDState = std::string;

// §5.2 considers m-component objects whose components support arbitrary
// operations (the paper names snapshots and max-registers; §5.3 adds
// fetch-and-increment).  The ND layer therefore carries an op kind per
// component operation; the plain simulated-snapshot world only uses kWrite.
enum class NDOpKind : std::uint8_t { kScan, kWrite, kWriteMax, kFetchAdd };

struct NDOp {
  NDOpKind kind = NDOpKind::kScan;
  std::size_t component = 0;  // component ops only
  Val value = 0;              // kWrite/kWriteMax: value; kFetchAdd: addend

  [[nodiscard]] bool is_scan() const noexcept {
    return kind == NDOpKind::kScan;
  }
};

// Response to an op: the view for a scan, the previous component value for
// fetch-and-add, an ack otherwise.
struct NDResponse {
  bool is_ack = false;
  View view;      // scan only
  Val previous = 0;  // fetch-and-add only
};

// Applies a component op to object contents and returns the response.
[[nodiscard]] NDResponse apply_nd_op(View& contents, const NDOp& op);

class NDMachine {
 public:
  virtual ~NDMachine() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::size_t components() const = 0;

  [[nodiscard]] virtual NDState initial(std::size_t index, Val input) const = 0;
  [[nodiscard]] virtual bool is_final(const NDState& s) const = 0;
  [[nodiscard]] virtual Val output(const NDState& s) const = 0;
  // nu(s): the next step in non-final state s.  Initial states must be
  // poised at a scan and steps must alternate scan/update (Assumption 1).
  [[nodiscard]] virtual NDOp next_op(const NDState& s) const = 0;
  // delta(s, a): the ordered, non-empty set of successor states.
  [[nodiscard]] virtual std::vector<NDState> successors(
      const NDState& s, const NDResponse& a) const = 0;
};

// Example: racing consensus where a same-round value conflict is resolved
// by a *nondeterministic choice* among the conflicting values - the model
// of a coin flip in a randomized consensus protocol.  Every solo execution
// terminates no matter how the choices resolve (the adversary controls the
// coin), so the protocol is nondeterministic solo terminating, and it uses
// m components; Theorem 35 turns it into an obstruction-free protocol with
// the same space.
class NDCoinConsensus final : public NDMachine {
 public:
  NDCoinConsensus(std::size_t n, std::size_t m) : n_(n), m_(m) {}

  [[nodiscard]] std::string name() const override {
    return "nd-coin(n=" + std::to_string(n_) + ",m=" + std::to_string(m_) +
           ")";
  }
  [[nodiscard]] std::size_t components() const override { return m_; }

  [[nodiscard]] NDState initial(std::size_t index, Val input) const override;
  [[nodiscard]] bool is_final(const NDState& s) const override;
  [[nodiscard]] Val output(const NDState& s) const override;
  [[nodiscard]] NDOp next_op(const NDState& s) const override;
  [[nodiscard]] std::vector<NDState> successors(
      const NDState& s, const NDResponse& a) const override;

 private:
  std::size_t n_;
  std::size_t m_;
};

// The same coin-flip racing consensus over m *max-register* components
// (§5.2-5.3): the packed (round, value) pairs are written with write-max,
// so every component is monotone and the protocol is ABA-free *by
// construction* - no Corollary 36 tagging needed.  (pack_round_val is
// monotone in the lexicographic pair order, so write-max implements "keep
// the leading pair" exactly.)
class NDMaxConsensus final : public NDMachine {
 public:
  NDMaxConsensus(std::size_t n, std::size_t m) : n_(n), m_(m) {}

  [[nodiscard]] std::string name() const override {
    return "nd-max(n=" + std::to_string(n_) + ",m=" + std::to_string(m_) +
           ")";
  }
  [[nodiscard]] std::size_t components() const override { return m_; }

  [[nodiscard]] NDState initial(std::size_t index, Val input) const override;
  [[nodiscard]] bool is_final(const NDState& s) const override;
  [[nodiscard]] Val output(const NDState& s) const override;
  [[nodiscard]] NDOp next_op(const NDState& s) const override;
  [[nodiscard]] std::vector<NDState> successors(
      const NDState& s, const NDResponse& a) const override;

 private:
  std::size_t n_;
  std::size_t m_;
};

}  // namespace revisim::solo
