// Randomized execution of nondeterministic protocols (§5's motivation).
//
// A nondeterministic solo terminating protocol is the paper's umbrella for
// randomized wait-free protocols: the delta-choices are the coin flips.
// This runner executes a system of NDMachine processes over an atomic
// m-component snapshot, resolving both the schedule and the coin flips with
// a seeded RNG - i.e. it runs the protocol as the randomized algorithm it
// models.  Together with the determinizer it makes Section 5 operational in
// both directions: run the coins, or compile them away.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/solo/nd_protocol.h"

namespace revisim::solo {

struct RandomizedRunResult {
  bool all_done = false;
  std::vector<std::optional<Val>> outputs;  // one per process
  std::size_t total_steps = 0;
  std::vector<std::size_t> steps;           // per process
  // Chronological (component, resulting value) of every component op; the
  // §5.3 ABA-freedom checks read this.
  std::vector<std::pair<std::size_t, Val>> applied_writes;
};

// Runs n = inputs.size() processes of `machine` to completion (or until
// max_steps), with schedule and coin flips drawn from `seed`.
[[nodiscard]] RandomizedRunResult run_randomized(const NDMachine& machine,
                                                 const std::vector<Val>& inputs,
                                                 std::uint64_t seed,
                                                 std::size_t max_steps);

}  // namespace revisim::solo
