// Corollary 36: making a register protocol ABA-free.
//
// The paper converts register protocols to ABA-free protocols by appending
// the writer's identifier and a strictly increasing sequence number to each
// write, ignored by reads.  ABAFreeProtocol is that construction as a
// protocol transformer: writes are tagged with a unique (sequence, process)
// pair, scans strip the tags before the inner protocol sees them, so no
// component ever holds the same value twice in one execution - which is
// what lets double-collect scans linearize and Theorem 35 carry lower
// bounds from m-component objects back to m plain registers.
//
// The tag occupies the low 20 bits; inner values must be non-negative and
// fit in 43 bits (every protocol in this library does).
#pragma once

#include <memory>

#include "src/protocols/sim_process.h"

namespace revisim::solo {

class ABAFreeProtocol final : public proto::Protocol {
 public:
  explicit ABAFreeProtocol(std::shared_ptr<const proto::Protocol> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override {
    return "aba-free(" + inner_->name() + ")";
  }
  [[nodiscard]] std::size_t components() const override {
    return inner_->components();
  }
  [[nodiscard]] std::unique_ptr<proto::SimProcess> make(std::size_t index,
                                                        Val input) const override;

  // Tag helpers (exposed for tests).
  static constexpr int kTagBits = 20;
  [[nodiscard]] static Val strip(Val tagged) noexcept {
    return tagged >> kTagBits;
  }
  [[nodiscard]] static Val tag_of(Val tagged) noexcept {
    return tagged & ((Val{1} << kTagBits) - 1);
  }

 private:
  std::shared_ptr<const proto::Protocol> inner_;
};

}  // namespace revisim::solo
