#include "src/solo/nd_protocol.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace revisim::solo {
namespace {

// State encodings: "S:r,v" (poised at scan), "U:r,v,j" (poised at update of
// component j with pair (r,v)), "F:y" (final with output y).

struct Parsed {
  char tag = 'S';
  std::uint32_t r = 0;
  std::int64_t v = 0;
  std::size_t j = 0;
};

Parsed parse(const NDState& s) {
  Parsed p;
  p.tag = s.at(0);
  std::istringstream in(s.substr(2));
  char comma = 0;
  if (p.tag == 'F') {
    in >> p.v;
    return p;
  }
  in >> p.r >> comma >> p.v;
  if (p.tag == 'U') {
    in >> comma >> p.j;
  }
  return p;
}

NDState scan_state(std::uint32_t r, std::int64_t v) {
  return "S:" + std::to_string(r) + "," + std::to_string(v);
}

NDState update_state(std::uint32_t r, std::int64_t v, std::size_t j) {
  return "U:" + std::to_string(r) + "," + std::to_string(v) + "," +
         std::to_string(j);
}

NDState final_state(std::int64_t y) { return "F:" + std::to_string(y); }

// Successor for a chosen (r, v) given the scanned view: final if the view is
// uniformly this pair, else poised to fix the first disagreeing component.
NDState place(std::uint32_t r, std::int64_t v, const View& view) {
  const Val mine = pack_round_val(
      RoundVal{r, static_cast<std::int32_t>(v)});
  for (std::size_t j = 0; j < view.size(); ++j) {
    if (!view[j] || *view[j] != mine) {
      return update_state(r, v, j);
    }
  }
  return final_state(v);
}

}  // namespace

NDState NDCoinConsensus::initial(std::size_t index, Val input) const {
  (void)index;
  return scan_state(1, input);
}

bool NDCoinConsensus::is_final(const NDState& s) const {
  return s.at(0) == 'F';
}

Val NDCoinConsensus::output(const NDState& s) const { return parse(s).v; }

NDResponse apply_nd_op(View& contents, const NDOp& op) {
  NDResponse resp;
  switch (op.kind) {
    case NDOpKind::kScan:
      resp.is_ack = false;
      resp.view = contents;
      return resp;
    case NDOpKind::kWrite:
      contents.at(op.component) = op.value;
      break;
    case NDOpKind::kWriteMax: {
      auto& c = contents.at(op.component);
      c = c ? std::max(*c, op.value) : op.value;
      break;
    }
    case NDOpKind::kFetchAdd: {
      auto& c = contents.at(op.component);
      resp.previous = c.value_or(0);
      c = resp.previous + op.value;
      break;
    }
  }
  resp.is_ack = true;
  return resp;
}

NDOp NDCoinConsensus::next_op(const NDState& s) const {
  Parsed p = parse(s);
  NDOp op;
  if (p.tag == 'S') {
    op.kind = NDOpKind::kScan;
    return op;
  }
  if (p.tag == 'U') {
    op.kind = NDOpKind::kWrite;
    op.component = p.j;
    op.value =
        pack_round_val(RoundVal{p.r, static_cast<std::int32_t>(p.v)});
    return op;
  }
  throw std::logic_error("next_op on final state");
}

std::vector<NDState> NDCoinConsensus::successors(const NDState& s,
                                                 const NDResponse& a) const {
  Parsed p = parse(s);
  if (p.tag == 'U') {
    if (!a.is_ack) {
      throw std::logic_error("update expects an ack");
    }
    return {scan_state(p.r, p.v)};
  }
  if (p.tag != 'S' || a.is_ack) {
    throw std::logic_error("scan state expects a view response");
  }
  const View& view = a.view;

  // Decode the visible pairs and find the top round.
  std::uint32_t rm = p.r;
  for (const auto& c : view) {
    if (c) {
      rm = std::max(rm, unpack_round_val(*c).round);
    }
  }
  std::set<std::int32_t> top_vals;
  for (const auto& c : view) {
    if (c) {
      RoundVal rv = unpack_round_val(*c);
      if (rv.round == rm) {
        top_vals.insert(rv.value);
      }
    }
  }
  if (p.r == rm) {
    top_vals.insert(static_cast<std::int32_t>(p.v));
  }

  if (top_vals.size() > 1) {
    // Conflict: the coin flip - one successor per conflicting value.
    std::vector<NDState> out;
    for (std::int32_t w : top_vals) {
      out.push_back(place(rm + 1, w, view));
    }
    return out;
  }
  // No conflict: adopt the (unique) top pair.
  return {place(rm, *top_vals.begin(), view)};
}

NDState NDMaxConsensus::initial(std::size_t index, Val input) const {
  (void)index;
  return scan_state(1, input);
}

bool NDMaxConsensus::is_final(const NDState& s) const {
  return s.at(0) == 'F';
}

Val NDMaxConsensus::output(const NDState& s) const { return parse(s).v; }

NDOp NDMaxConsensus::next_op(const NDState& s) const {
  Parsed p = parse(s);
  NDOp op;
  if (p.tag == 'S') {
    op.kind = NDOpKind::kScan;
    return op;
  }
  if (p.tag == 'U') {
    op.kind = NDOpKind::kWriteMax;
    op.component = p.j;
    op.value =
        pack_round_val(RoundVal{p.r, static_cast<std::int32_t>(p.v)});
    return op;
  }
  throw std::logic_error("next_op on final state");
}

std::vector<NDState> NDMaxConsensus::successors(const NDState& s,
                                                const NDResponse& a) const {
  // Identical decision logic to the coin machine: the object semantics
  // differ (write-max), the state machine does not.
  NDCoinConsensus coin(n_, m_);
  return coin.successors(s, a);
}

}  // namespace revisim::solo
