#include "src/solo/determinize.h"

#include <limits>
#include <stdexcept>

namespace revisim::solo {
namespace {

class DeterminizedProcess final : public proto::SimProcess {
 public:
  DeterminizedProcess(std::shared_ptr<const NDMachine> machine,
                      std::shared_ptr<SoloSearch> search, std::size_t index,
                      Val input)
      : machine_(std::move(machine)),
        search_(std::move(search)),
        state_(machine_->initial(index, input)),
        expectation_(machine_->components()) {}

  proto::SimAction on_scan(const View& view) override {
    if (pending_output_) {
      return proto::SimAction::make_output(*pending_output_);
    }
    // The pending op is a scan (alternation); its response is `view`.
    expectation_ = view;
    NDResponse resp;
    resp.is_ack = false;
    resp.view = view;
    state_ = choose(state_, resp, expectation_);
    if (machine_->is_final(state_)) {
      return proto::SimAction::make_output(machine_->output(state_));
    }
    const NDOp op = machine_->next_op(state_);
    if (op.is_scan()) {
      throw std::logic_error("ND machine broke scan/update alternation");
    }
    if (op.kind != NDOpKind::kWrite) {
      // The simulated system's object is a snapshot; machines over
      // max-registers or fetch-and-adds run via run_randomized or their own
      // object model, not the SimProcess adapter.
      throw std::logic_error(
          "determinized SimProcess adapter supports plain writes only");
    }
    // Fold the update's ack transition, as the SimProcess convention puts
    // the state past the poised update.
    NDResponse ack = apply_nd_op(expectation_, op);
    state_ = choose(state_, ack, expectation_);
    if (machine_->is_final(state_)) {
      pending_output_ = machine_->output(state_);
    }
    return proto::SimAction::make_update(op.component, op.value);
  }

  [[nodiscard]] std::unique_ptr<proto::SimProcess> clone() const override {
    return std::make_unique<DeterminizedProcess>(*this);
  }

  [[nodiscard]] std::string state_key() const override {
    return node_key(state_, expectation_) +
           (pending_output_ ? "!" + std::to_string(*pending_output_) : "");
  }

 private:
  // delta'(s, a) of Theorem 35: the first successor starting a shortest
  // solo path from the post-response configuration, else the first one.
  NDState choose(const NDState& s, const NDResponse& resp, const View& e) {
    std::vector<NDState> succs = machine_->successors(s, resp);
    if (succs.empty()) {
      throw std::logic_error("ND machine returned no successors");
    }
    std::size_t best = std::numeric_limits<std::size_t>::max();
    const NDState* chosen = nullptr;
    for (const NDState& s2 : succs) {
      auto d = search_->shortest(s2, e);
      if (d && *d < best) {
        best = *d;
        chosen = &s2;
      }
    }
    return chosen != nullptr ? *chosen : succs.front();
  }

  std::shared_ptr<const NDMachine> machine_;
  std::shared_ptr<SoloSearch> search_;
  NDState state_;
  View expectation_;
  std::optional<Val> pending_output_;
};

}  // namespace

DeterminizedProtocol::DeterminizedProtocol(
    std::shared_ptr<const NDMachine> machine, std::size_t search_budget)
    : machine_(std::move(machine)), search_(std::make_shared<SoloSearch>()) {
  search_->machine = machine_.get();
  search_->node_budget = search_budget;
}

std::string DeterminizedProtocol::name() const {
  return "determinized(" + machine_->name() + ")";
}

std::size_t DeterminizedProtocol::components() const {
  return machine_->components();
}

std::unique_ptr<proto::SimProcess> DeterminizedProtocol::make(
    std::size_t index, Val input) const {
  return std::make_unique<DeterminizedProcess>(machine_, search_, index,
                                               input);
}

}  // namespace revisim::solo
