// Theorem 35: from a nondeterministic solo terminating protocol to an
// obstruction-free protocol using the same m-component object.
//
// The determinized process tracks the paper's expectation vector E_p (what
// it would see if it scanned now and nobody else had moved) and resolves
// every delta-choice by the rule of Theorem 35: after receiving response a
// in state s, it moves to the first successor s' in delta(s, a) that starts
// a *shortest* p-solo path from (s', E_p'), falling back to the first
// successor when no solo path is found.  Along any solo execution the
// shortest-path length then strictly decreases, which is exactly the
// paper's argument that the result is obstruction-free.
//
// The output is an ordinary proto::Protocol, so the determinized protocol
// composes with everything else in the library: the protocol runner, the
// model checker (which verifies obstruction-freedom empirically) and the
// revisionist simulation.  Space is unchanged by construction: the object
// still has m components.
#pragma once

#include <memory>

#include "src/protocols/sim_process.h"
#include "src/solo/nd_protocol.h"
#include "src/solo/solo_search.h"

namespace revisim::solo {

class DeterminizedProtocol final : public proto::Protocol {
 public:
  explicit DeterminizedProtocol(std::shared_ptr<const NDMachine> machine,
                                std::size_t search_budget = 50'000);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t components() const override;
  [[nodiscard]] std::unique_ptr<proto::SimProcess> make(std::size_t index,
                                                        Val input) const override;

 private:
  std::shared_ptr<const NDMachine> machine_;
  // Shared memo across all processes and clones (pure cache).
  std::shared_ptr<SoloSearch> search_;
};

}  // namespace revisim::solo
