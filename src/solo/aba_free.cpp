#include "src/solo/aba_free.h"

#include <stdexcept>

namespace revisim::solo {
namespace {

class ABAFreeProcess final : public proto::SimProcess {
 public:
  ABAFreeProcess(std::unique_ptr<proto::SimProcess> inner, std::size_t index)
      : inner_(std::move(inner)), index_(index) {}

  ABAFreeProcess(const ABAFreeProcess& other)
      : inner_(other.inner_->clone()), index_(other.index_), seq_(other.seq_) {}

  proto::SimAction on_scan(const View& view) override {
    View stripped(view.size());
    for (std::size_t j = 0; j < view.size(); ++j) {
      if (view[j]) {
        stripped[j] = ABAFreeProtocol::strip(*view[j]);
      }
    }
    proto::SimAction act = inner_->on_scan(stripped);
    if (act.kind == proto::SimAction::Kind::kOutput) {
      return act;
    }
    if (act.value < 0 || act.value >= (Val{1} << 43)) {
      throw std::out_of_range("inner value does not fit above the ABA tag");
    }
    const Val uid = static_cast<Val>(((seq_++) << 8) | (index_ & 0xff));
    if (uid >= (Val{1} << ABAFreeProtocol::kTagBits)) {
      throw std::overflow_error("ABA tag space exhausted");
    }
    return proto::SimAction::make_update(
        act.component, (act.value << ABAFreeProtocol::kTagBits) | uid);
  }

  [[nodiscard]] std::unique_ptr<proto::SimProcess> clone() const override {
    return std::make_unique<ABAFreeProcess>(*this);
  }

  [[nodiscard]] std::string state_key() const override {
    return inner_->state_key() + "~" + std::to_string(seq_);
  }

 private:
  std::unique_ptr<proto::SimProcess> inner_;
  std::size_t index_;
  std::size_t seq_ = 0;
};

}  // namespace

std::unique_ptr<proto::SimProcess> ABAFreeProtocol::make(std::size_t index,
                                                         Val input) const {
  return std::make_unique<ABAFreeProcess>(inner_->make(index, input), index);
}

}  // namespace revisim::solo
