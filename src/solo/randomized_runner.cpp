#include "src/solo/randomized_runner.h"

#include <random>

namespace revisim::solo {

RandomizedRunResult run_randomized(const NDMachine& machine,
                                   const std::vector<Val>& inputs,
                                   std::uint64_t seed,
                                   std::size_t max_steps) {
  std::mt19937_64 rng(seed);
  const std::size_t n = inputs.size();
  RandomizedRunResult res;
  res.outputs.assign(n, std::nullopt);
  res.steps.assign(n, 0);

  std::vector<NDState> state(n);
  for (std::size_t i = 0; i < n; ++i) {
    state[i] = machine.initial(i, inputs[i]);
  }
  View contents(machine.components());

  for (std::size_t step = 0; step < max_steps; ++step) {
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < n; ++i) {
      if (!res.outputs[i]) {
        live.push_back(i);
      }
    }
    if (live.empty()) {
      res.all_done = true;
      return res;
    }
    std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
    const std::size_t i = live[pick(rng)];
    ++res.total_steps;
    ++res.steps[i];

    const NDOp op = machine.next_op(state[i]);
    NDResponse resp = apply_nd_op(contents, op);
    if (!op.is_scan()) {
      res.applied_writes.emplace_back(op.component, *contents[op.component]);
    }
    auto succs = machine.successors(state[i], resp);
    std::uniform_int_distribution<std::size_t> coin(0, succs.size() - 1);
    state[i] = succs[coin(rng)];  // the coin flip
    if (machine.is_final(state[i])) {
      res.outputs[i] = machine.output(state[i]);
    }
  }
  res.all_done = false;
  return res;
}

}  // namespace revisim::solo
