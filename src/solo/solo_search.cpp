#include "src/solo/solo_search.h"

#include <deque>
#include <unordered_set>

namespace revisim::solo {

std::string node_key(const NDState& s, const View& e) {
  return s + "|" + to_string(e);
}

std::optional<std::size_t> SoloSearch::shortest(const NDState& s,
                                                const View& e) {
  const std::string root_key = node_key(s, e);
  if (auto it = memo.find(root_key); it != memo.end()) {
    return it->second;
  }

  struct Node {
    NDState s;
    View e;
    std::size_t dist;
  };
  std::deque<Node> queue;
  std::unordered_set<std::string> seen;
  queue.push_back(Node{s, e, 0});
  seen.insert(root_key);
  std::size_t explored = 0;
  std::optional<std::size_t> answer;

  while (!queue.empty() && explored < node_budget) {
    Node node = std::move(queue.front());
    queue.pop_front();
    ++explored;
    if (machine->is_final(node.s)) {
      answer = node.dist;
      break;
    }
    const NDOp op = machine->next_op(node.s);
    View next_e = node.e;
    // Solo: the op runs against exactly the expectation vector.
    NDResponse resp = apply_nd_op(next_e, op);
    for (const NDState& succ : machine->successors(node.s, resp)) {
      auto key = node_key(succ, next_e);
      if (seen.insert(std::move(key)).second) {
        queue.push_back(Node{succ, next_e, node.dist + 1});
      }
    }
  }

  memo.emplace(root_key, answer);
  return answer;
}

}  // namespace revisim::solo
