#include "src/check/parallel_explore.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/check/explore_core.h"
#include "src/check/explore_merge.h"
#include "src/check/state_table.h"

namespace revisim::check {
namespace {

using Clock = std::chrono::steady_clock;
using runtime::ProcessId;

// Lexicographic region order shared with the merge and the distributed
// coordinator; see explore_merge.h for why this is exactly serial DFS
// order.
using detail::key_less;

struct JobRecord {
  enum State : int { kPending, kRunning, kDone, kFailed, kAborted };

  std::vector<ProcessId> key;      // prefix + first choice; see key_less
  std::vector<ProcessId> prefix;   // path to the job's root node
  std::vector<ProcessId> choices;  // untried choices there; empty = all (root)
  std::vector<ProcessId> sleep;    // POR: Donation::sleep for the split node
  std::size_t sleep_inherited = 0;  // POR: Donation::sleep_inherited
  std::unique_ptr<ExplorableWorld> warm;  // donated checkpoint at `prefix`
  std::size_t donor = 0;           // worker that split this job off
  bool donated = false;            // false only for the seed job
  State state = kPending;          // guarded by the coordinator mutex
  // Executions counted so far, published live by the engine.  Summing the
  // counters of lexicographically earlier records lower-bounds the serial
  // execution count before this record's region (each counter never exceeds
  // its region's serial total), which is what keeps cap-skipping sound.
  std::atomic<std::uint64_t> live_execs{0};
  detail::SubtreeResult result;    // valid once state == kDone
  std::string error;               // valid once state == kFailed
};

// Everything the workers share, guarded by `mu` unless noted.
struct Coordinator {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::unique_ptr<JobRecord>> records;  // append-only
  std::size_t pending = 0;
  std::size_t running = 0;
  std::size_t hungry = 0;  // workers blocked waiting for a job
  bool stop = false;       // deadline fired; claim nothing further
  // Key of the lex-smallest violation found so far (empty = none), with a
  // lock-free has-a-violation gate so probes stay cheap until one exists.
  std::vector<ProcessId> violation_key;
  std::atomic<std::uint64_t> violation_version{0};
  // Lock-free mirror of `hungry` polled by donors once per node expansion.
  std::atomic<int> hungry_hint{0};
  std::atomic<std::size_t> steals{0};

  // Sum of live execution counters over records lex-before `key`.  Caller
  // holds `mu` (the records vector may be growing).
  std::uint64_t bound_before(const std::vector<ProcessId>& key) const {
    std::uint64_t sum = 0;
    for (const auto& r : records) {
      if (key_less(r->key, key)) {
        sum += r->live_execs.load(std::memory_order_relaxed);
      }
    }
    return sum;
  }
};

void run_one_worker(Coordinator& co, std::size_t worker_id,
                    const std::function<std::unique_ptr<ExplorableWorld>()>&
                        factory,
                    const ParallelExploreOptions& options, StateTable* table,
                    std::uint64_t cap,
                    const std::optional<Clock::time_point>& deadline) {
  // Per-worker warm pool: persists across every job this worker runs,
  // adapts its capacity to what checkpoint resumption actually earns here.
  detail::WarmPool pool(options.base.warm_worlds, /*adaptive=*/true,
                        options.base.warm_worlds);
  auto past_deadline = [&] { return deadline && Clock::now() >= *deadline; };

  std::unique_lock<std::mutex> lk(co.mu);
  for (;;) {
    // Claim the lexicographically earliest pending job: earlier regions
    // finish earlier, which tightens every later job's cap bound and lets a
    // violation cut the most work.
    JobRecord* rec = nullptr;
    while (!co.stop) {
      if (past_deadline()) {
        co.stop = true;
        co.cv.notify_all();
        break;
      }
      for (const auto& r : co.records) {
        if (r->state == JobRecord::kPending &&
            (rec == nullptr || key_less(r->key, rec->key))) {
          rec = r.get();
        }
      }
      if (rec != nullptr || (co.pending == 0 && co.running == 0)) {
        break;
      }
      ++co.hungry;
      co.hungry_hint.fetch_add(1, std::memory_order_relaxed);
      if (deadline) {
        if (co.cv.wait_until(lk, *deadline) == std::cv_status::timeout) {
          co.stop = true;
          co.cv.notify_all();
        }
      } else {
        co.cv.wait(lk);
      }
      --co.hungry;
      co.hungry_hint.fetch_sub(1, std::memory_order_relaxed);
    }
    if (rec == nullptr || co.stop) {
      co.cv.notify_all();  // cascade termination to the other waiters
      return;
    }
    rec->state = JobRecord::kRunning;
    --co.pending;
    ++co.running;
    if (rec->donated && rec->donor != worker_id) {
      co.steals.fetch_add(1, std::memory_order_relaxed);
    }

    // Pre-skip jobs whose result the merge provably cannot read: the merge
    // returns at or before a secured lex-earlier violation, and it returns
    // once cumulative executions reach the cap, which the bound
    // lower-bounds.
    const std::uint64_t before = co.bound_before(rec->key);
    const bool dead_key =
        co.violation_version.load(std::memory_order_relaxed) != 0 &&
        key_less(co.violation_key, rec->key);
    if (before >= cap || dead_key) {
      rec->state = JobRecord::kAborted;
      --co.running;
      if (co.pending == 0 && co.running == 0) {
        co.cv.notify_all();
      }
      continue;
    }

    detail::SubtreeOptions sub;
    sub.max_steps = options.base.max_steps;
    sub.max_executions = static_cast<std::size_t>(cap - before);
    sub.record_traces = options.base.record_traces;
    sub.warm_worlds = options.base.warm_worlds;
    sub.dedupe_states = options.base.dedupe_states;
    sub.dedupe_adaptive = options.base.dedupe_adaptive;
    sub.max_crashes = options.base.max_crashes;
    sub.por = options.base.por;
    sub.table = table;
    sub.live_executions = &rec->live_execs;

    auto abort = [&co, rec, cap, &past_deadline] {
      if (past_deadline()) {
        return true;
      }
      std::lock_guard<std::mutex> g(co.mu);
      if (co.violation_version.load(std::memory_order_relaxed) != 0 &&
          key_less(co.violation_key, rec->key)) {
        return true;
      }
      return co.bound_before(rec->key) >= cap;
    };

    lk.unlock();
    bool done = false;
    std::string failure;
    detail::SubtreeResult jr;
    for (std::size_t attempt = 0;
         attempt <= options.job_retries && !done && !past_deadline();
         ++attempt) {
      // A fresh attempt replays the whole region from scratch; wind the
      // live counter back so the cap bound never double-counts.
      rec->live_execs.store(0, std::memory_order_relaxed);
      std::size_t donated_this_attempt = 0;
      detail::JobContext ctx;
      if (!rec->choices.empty()) {
        ctx.root_choices = &rec->choices;
        ctx.root_sleep = &rec->sleep;
        ctx.root_sleep_inherited = rec->sleep_inherited;
      }
      ctx.warm = std::move(rec->warm);  // first attempt only; then null
      ctx.pool = &pool;
      ctx.split.want = [&co] {
        return co.hungry_hint.load(std::memory_order_relaxed) > 0;
      };
      ctx.split.take = [&co, worker_id,
                        &donated_this_attempt](detail::Donation& d) {
        std::lock_guard<std::mutex> g(co.mu);
        if (co.stop || co.hungry <= co.pending) {
          return false;  // nobody actually starving; donor keeps the work
        }
        auto child = std::make_unique<JobRecord>();
        child->key = d.prefix;
        child->key.push_back(d.choices[0]);
        child->prefix = std::move(d.prefix);
        child->choices = std::move(d.choices);
        child->sleep = std::move(d.sleep);
        child->sleep_inherited = d.sleep_inherited;
        child->warm = std::move(d.warm);
        child->donor = worker_id;
        child->donated = true;
        co.records.push_back(std::move(child));
        ++co.pending;
        ++donated_this_attempt;
        co.cv.notify_one();
        return true;
      };
      try {
        jr = detail::explore_job(factory, rec->prefix, sub, abort, &ctx);
        done = true;
      } catch (const std::exception& e) {
        failure = e.what();
      } catch (...) {
        failure = "unknown exception";
      }
      if (!done && donated_this_attempt > 0) {
        break;  // a retry would re-explore the regions already donated
      }
    }
    lk.lock();
    if (done) {
      rec->live_execs.store(jr.executions, std::memory_order_relaxed);
      if (jr.violation &&
          (co.violation_version.load(std::memory_order_relaxed) == 0 ||
           key_less(rec->key, co.violation_key))) {
        co.violation_key = rec->key;
        co.violation_version.fetch_add(1, std::memory_order_relaxed);
      }
      rec->result = std::move(jr);
      // Partial walks (deadline / cap / violation aborts) are stored as
      // kDone too: the merge either never reads them (cap- and
      // violation-aborted regions sit past its return point) or reports
      // the truncation they represent (deadline).
      rec->state = JobRecord::kDone;
    } else if (!failure.empty()) {
      rec->error = failure;
      rec->state = JobRecord::kFailed;
    } else {
      // The deadline expired before any attempt completed or threw; the
      // job effectively never ran.  The merge reports the timeout.
      rec->state = JobRecord::kPending;
      ++co.pending;
    }
    --co.running;
    co.cv.notify_all();  // wake waiters: new bound, or termination
  }
}

// threads == 1: the serial engine inline, with the parallel explorer's
// retry and wall-clock envelopes but none of its machinery.  Bit-identical
// to explore_schedules by construction (same engine, same options).
ScheduleExploreResult explore_inline(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const ParallelExploreOptions& options,
    const std::optional<Clock::time_point>& deadline) {
  auto past_deadline = [&] { return deadline && Clock::now() >= *deadline; };
  detail::SubtreeOptions sub;
  sub.max_steps = options.base.max_steps;
  sub.max_executions = options.base.max_executions;
  sub.record_traces = options.base.record_traces;
  sub.warm_worlds = options.base.warm_worlds;
  sub.dedupe_states = options.base.dedupe_states;
  sub.dedupe_audit = options.base.dedupe_audit;
  sub.dedupe_adaptive = options.base.dedupe_adaptive;
  sub.max_crashes = options.base.max_crashes;
  sub.por = options.base.por;
  detail::AbortProbe abort;
  if (deadline) {
    abort = past_deadline;
  }

  bool done = false;
  std::string failure;
  detail::SubtreeResult sr;
  for (std::size_t attempt = 0;
       attempt <= options.job_retries && !done && !past_deadline();
       ++attempt) {
    try {
      sr = detail::explore_subtree(factory, {}, sub, abort);
      done = true;
    } catch (const std::exception& e) {
      failure = e.what();
    } catch (...) {
      failure = "unknown exception";
    }
  }

  ScheduleExploreResult res;
  res.jobs = 1;
  if (!done) {
    res.exhausted = false;
    if (failure.empty()) {
      res.timed_out = true;  // the deadline expired before any attempt ended
    } else {
      res.error = "subtree job failed after " +
                  std::to_string(options.job_retries + 1) + " attempt(s): " +
                  failure;
    }
    return res;
  }
  res.executions = sr.executions;
  res.exhausted = sr.fully_explored;
  res.violation = std::move(sr.violation);
  res.witness = std::move(sr.witness);
  res.states_seen = sr.states_seen;
  res.subtrees_pruned = sr.subtrees_pruned;
  res.replay_steps_saved = sr.replay_steps_saved;
  res.por_skipped = sr.por_skipped;
  res.dependent_wakeups = sr.dependent_wakeups;
  res.footprint_bytes = sr.footprint_bytes;
  res.dedupe_disabled_adaptively = sr.dedupe_disabled;
  if (!sr.fully_explored && past_deadline()) {
    res.timed_out = true;
  }
  return res;
}

}  // namespace

ScheduleExploreResult parallel_explore_schedules(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const ParallelExploreOptions& options) {
  validate(options.base);
  const std::uint64_t cap =
      std::max<std::uint64_t>(options.base.max_executions, 1);
  const std::optional<Clock::time_point> deadline =
      options.time_limit.count() > 0
          ? std::optional<Clock::time_point>(Clock::now() + options.time_limit)
          : std::nullopt;

  std::size_t threads = options.threads != 0
                            ? options.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  if (threads == 1) {
    return explore_inline(factory, options, deadline);
  }

  // Serial probe (see ParallelExploreOptions::serial_probe_executions):
  // spawning and synchronizing a pool costs far more than a small tree
  // costs to walk outright, so give the serial engine a bounded head start
  // and keep its result whenever it is conclusive on its own - tree
  // exhausted, violation found (serial DFS order makes it the lex-smallest,
  // so the pool could not report a different one), or the probe already ran
  // to the caller's cap.  An inconclusive probe is discarded whole: the
  // pool recounts from scratch, so the cap accounting never double-counts.
  if (options.serial_probe_executions > 0) {
    const std::uint64_t probe_cap =
        std::min<std::uint64_t>(cap, options.serial_probe_executions);
    auto past_deadline = [&] { return deadline && Clock::now() >= *deadline; };
    detail::SubtreeOptions sub;
    sub.max_steps = options.base.max_steps;
    sub.max_executions = static_cast<std::size_t>(probe_cap);
    sub.record_traces = options.base.record_traces;
    sub.warm_worlds = options.base.warm_worlds;
    sub.dedupe_states = options.base.dedupe_states;
    sub.dedupe_audit = options.base.dedupe_audit;
    sub.dedupe_adaptive = options.base.dedupe_adaptive;
    sub.max_crashes = options.base.max_crashes;
    sub.por = options.base.por;
    detail::AbortProbe abort;
    if (deadline) {
      abort = past_deadline;
    }
    try {
      auto sr = detail::explore_subtree(factory, {}, sub, abort);
      if (sr.fully_explored || sr.violation.has_value() || probe_cap >= cap) {
        ScheduleExploreResult res;
        res.jobs = 1;
        res.executions = sr.executions;
        res.exhausted = sr.fully_explored;
        res.violation = std::move(sr.violation);
        res.witness = std::move(sr.witness);
        res.states_seen = sr.states_seen;
        res.subtrees_pruned = sr.subtrees_pruned;
        res.replay_steps_saved = sr.replay_steps_saved;
        res.por_skipped = sr.por_skipped;
        res.dependent_wakeups = sr.dependent_wakeups;
        res.footprint_bytes = sr.footprint_bytes;
        res.dedupe_disabled_adaptively = sr.dedupe_disabled;
        if (!sr.fully_explored && past_deadline()) {
          res.timed_out = true;
        }
        return res;
      }
    } catch (...) {
      // A deterministic throw will resurface in a worker, where the retry
      // and graceful-degradation machinery owns it; a transient one is
      // simply absorbed here.
    }
  }
  // Workers beyond the core count cannot run subtrees faster, they only
  // interleave them - the measured failure mode of the pre-rework
  // frontier-split explorer.  Tests opt out to force steals anywhere.
  std::size_t workers =
      options.oversubscribe
          ? threads
          : std::min<std::size_t>(
                threads, std::max(1u, std::thread::hardware_concurrency()));

  // One transposition table shared by every worker (lock-free CAS inserts;
  // a mutex only in audit mode).
  std::unique_ptr<StateTable> table;
  if (options.base.dedupe_states) {
    table = std::make_unique<StateTable>(
        StateTable::Options{.audit = options.base.dedupe_audit});
  }

  Coordinator co;
  {
    auto seed = std::make_unique<JobRecord>();  // the whole tree; empty key
    co.records.push_back(std::move(seed));
    co.pending = 1;
  }

  auto worker_fn = [&](std::size_t id) {
    run_one_worker(co, id, factory, options, table.get(), cap, deadline);
  };
  if (workers == 1) {
    // Clamped to one worker: the stealing runtime with no second thread -
    // nobody is ever hungry, so no donations, no steals, one job.
    worker_fn(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) {
      pool.emplace_back(worker_fn, t);
    }
    for (auto& t : pool) {
      t.join();
    }
  }

  // Deterministic merge (explore_merge.h): steal timing and worker
  // interleaving influenced only results the merge never reads (with
  // dedupe off; with it on, the shared table makes counts
  // interleaving-dependent - see the header).  Table statistics are global
  // and attach to every return path, as do the stealing counters.
  std::vector<detail::MergeJob> order;
  order.reserve(co.records.size());
  for (const auto& r : co.records) {
    detail::MergeJob j;
    j.key = &r->key;
    switch (r->state) {
      case JobRecord::kDone:
        j.state = detail::MergeJob::State::kDone;
        j.result = &r->result;
        break;
      case JobRecord::kFailed:
        j.state = detail::MergeJob::State::kFailed;
        j.error = &r->error;
        break;
      default:
        j.state = detail::MergeJob::State::kUnfinished;
        break;
    }
    order.push_back(j);
  }
  ScheduleExploreResult res = detail::merge_job_results(
      order, cap, options.job_retries + 1, /*unfinished_error=*/{});
  res.jobs = co.records.size();
  res.steals = co.steals.load(std::memory_order_relaxed);
  if (table) {
    res.states_seen = table->states();
    res.subtrees_pruned = table->hits();
  }
  return res;
}

}  // namespace revisim::check
