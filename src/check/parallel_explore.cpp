#include "src/check/parallel_explore.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "src/check/explore_core.h"
#include "src/check/state_table.h"

namespace revisim::check {
namespace {

using runtime::ProcessId;

// One entry of the lexicographically ordered frontier: either a leaf that
// was reached (and judged) above the frontier during generation, or the
// root prefix of a subtree job.
struct FrontierItem {
  bool is_job = false;
  std::vector<ProcessId> schedule;            // job prefix, or leaf schedule
  std::optional<std::string> leaf_violation;  // for generation-phase leaves
};

// Serial DFS down to `frontier` emitting items in lexicographic schedule
// order - exactly the order the serial explorer would encounter them.
// Generation stops at the first violating shallow leaf: no later item can
// affect the merged result (the merge returns at or before it).
//
// Choices at every node come from detail::append_node_choices, the same
// builder the subtree engine uses, so crash-branching prefixes are
// enumerated in exactly the serial order too.
//
// With a transposition table, the walk inserts every node below the root
// (the empty schedule is skipped: it roots the whole search and recurs
// nowhere) and prunes already-seen states before emitting them - so every
// job root is in the table before its job runs, and explore_subtree's
// strictly-below-the-prefix rule is what keeps jobs from pruning themselves.
std::vector<FrontierItem> generate_frontier(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    std::size_t frontier, const ScheduleExploreOptions& options,
    StateTable* table) {
  std::vector<FrontierItem> items;
  struct Frame {
    std::vector<ProcessId> choices;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  std::vector<ProcessId> schedule;

  auto make_world = [&] {
    auto world = factory();
    if (!options.record_traces) {
      world->scheduler().set_recording(false);
    }
    for (ProcessId entry : schedule) {
      runtime::apply_schedule_entry(world->scheduler(), entry);
    }
    return world;
  };

  auto world = make_world();
  std::function<std::string()> canonical;
  if (table != nullptr && table->audit()) {
    canonical = [&world] { return world->canonical_state(); };
  }
  std::vector<ProcessId> runnable;
  for (;;) {
    bool pruned = false;
    if (table != nullptr && !schedule.empty()) {
      pruned = !table->insert(world->fingerprint(), canonical);
    }
    world->scheduler().runnable_into(runnable);
    const bool complete = runnable.empty();
    const bool at_leaf = complete || schedule.size() >= options.max_steps;
    if (pruned || at_leaf || schedule.size() >= frontier) {
      if (!pruned) {
        FrontierItem item;
        item.schedule = schedule;
        if (at_leaf) {
          item.leaf_violation = world->verdict(complete);
        } else {
          item.is_job = true;
        }
        const bool stop = item.leaf_violation.has_value();
        items.push_back(std::move(item));
        if (stop) {
          return items;
        }
      }
      while (!stack.empty() &&
             stack.back().next >= stack.back().choices.size()) {
        stack.pop_back();
        schedule.pop_back();
      }
      if (stack.empty()) {
        return items;
      }
      schedule.back() = stack.back().choices[stack.back().next++];
      world = make_world();
      continue;
    }
    const std::size_t crashes_used =
        options.max_crashes == 0
            ? 0
            : static_cast<std::size_t>(
                  std::count_if(schedule.begin(), schedule.end(),
                                [](ProcessId e) {
                                  return runtime::is_crash_entry(e);
                                }));
    std::optional<ProcessId> prev;
    if (!schedule.empty()) {
      prev = schedule.back();
    }
    std::vector<ProcessId> choices;
    detail::append_node_choices(runnable, crashes_used, options.max_crashes,
                                prev, choices);
    stack.push_back(Frame{std::move(choices), 1});
    schedule.push_back(stack.back().choices[0]);
    runtime::apply_schedule_entry(world->scheduler(), schedule.back());
  }
}

}  // namespace

ScheduleExploreResult parallel_explore_schedules(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const ParallelExploreOptions& options) {
  validate(options.base);
  const std::size_t cap = std::max<std::size_t>(options.base.max_executions, 1);
  const std::size_t frontier =
      std::min(options.frontier_depth, options.base.max_steps);
  using Clock = std::chrono::steady_clock;
  const std::optional<Clock::time_point> deadline =
      options.time_limit.count() > 0
          ? std::optional<Clock::time_point>(Clock::now() + options.time_limit)
          : std::nullopt;
  auto past_deadline = [&] { return deadline && Clock::now() >= *deadline; };

  // One transposition table shared by the generation walk and every worker.
  std::unique_ptr<StateTable> table;
  if (options.base.dedupe_states) {
    table = std::make_unique<StateTable>(
        StateTable::Options{.audit = options.base.dedupe_audit});
  }

  auto items = generate_frontier(factory, frontier, options.base, table.get());

  std::vector<std::size_t> job_items;  // item indices that are jobs
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].is_job) {
      job_items.push_back(i);
    }
  }

  std::vector<detail::SubtreeResult> job_results(items.size());
  // Non-empty = the job failed every attempt; the message is the last
  // exception's what().  The merge degrades to a partial summary there.
  std::vector<std::string> job_failed(items.size());
  // executions + 1 per completed item (0 = never completed).  Read by the
  // cap-coupling prefix during the run and by the merge afterwards to tell
  // deadline-skipped jobs apart from completed ones.
  std::vector<std::atomic<std::uint64_t>> item_done(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!items[i].is_job) {
      item_done[i].store(2, std::memory_order_relaxed);  // 1 execution
    }
  }

  if (!job_items.empty()) {
    std::size_t threads = options.threads != 0
                              ? options.threads
                              : std::max(1u, std::thread::hardware_concurrency());
    threads = std::min(threads, job_items.size());

    std::atomic<std::size_t> next_job{0};
    // Item index of the *first found* violating job; a monotone min.  Jobs
    // with larger indices can never be read by the merge (it returns at or
    // before this index), so they are skipped or aborted - an optimization
    // that cannot change the merged output.
    std::atomic<std::size_t> first_violation{items.size()};

    // Global cap coupling.  Serially the cap bounds total work, but an
    // isolated job only knows its local cap, so a capped search over a huge
    // tree would still enumerate every subtree.  Workers therefore advance
    // a shared lexicographic prefix of *completed* items and its cumulative
    // execution count, packed (index, executions) into one atomic word.
    // For a job at item i the quantity prefix_cum + (i - prefix_idx) is a
    // sound lower bound on the serial execution count before i (every item
    // holds at least one execution; a failed job holds zero, which only
    // lowers the bound and keeps it sound), so once the bound reaches the
    // cap the merge provably returns before reading i and the job can be
    // skipped or aborted - again without any effect on the merged output.
    std::mutex prefix_mu;
    std::atomic<std::uint64_t> prefix_state{0};
    auto pack = [](std::uint64_t idx, std::uint64_t cum) {
      return (cum << 32) | idx;
    };
    auto advance_prefix = [&] {
      std::lock_guard<std::mutex> lock(prefix_mu);
      std::uint64_t state = prefix_state.load(std::memory_order_relaxed);
      std::uint64_t idx = state & 0xffffffffu;
      std::uint64_t cum = state >> 32;
      // Clamp so the (index, executions) packing never overflows 32 bits;
      // bounds stay sound (clamping only lowers them).
      const std::uint64_t cum_limit =
          std::min<std::uint64_t>(cap, 0xffffffffu);
      while (idx < items.size() && cum < cum_limit) {
        const std::uint64_t v = item_done[idx].load(std::memory_order_relaxed);
        if (v == 0) {
          break;
        }
        cum = std::min(cum + (v - 1), cum_limit);
        ++idx;
      }
      prefix_state.store(pack(idx, cum), std::memory_order_relaxed);
    };
    auto bound_before = [&](std::size_t item_idx) -> std::uint64_t {
      const std::uint64_t state = prefix_state.load(std::memory_order_relaxed);
      const std::uint64_t idx = state & 0xffffffffu;
      const std::uint64_t cum = state >> 32;
      return idx <= item_idx ? cum + (item_idx - idx) : cum;
    };

    auto worker = [&] {
      for (;;) {
        if (past_deadline()) {
          return;  // pending jobs stay unran; the merge reports the timeout
        }
        const std::size_t j = next_job.fetch_add(1, std::memory_order_relaxed);
        if (j >= job_items.size()) {
          return;
        }
        const std::size_t item_idx = job_items[j];
        if (item_idx > first_violation.load(std::memory_order_relaxed) ||
            bound_before(item_idx) >= cap) {
          continue;  // the merge returns before this item; result unread
        }
        detail::SubtreeOptions sub;
        sub.max_steps = options.base.max_steps;
        const std::uint64_t before = bound_before(item_idx);
        sub.max_executions = cap > before ? cap - before : 1;
        sub.record_traces = options.base.record_traces;
        sub.warm_worlds = options.base.warm_worlds;
        sub.dedupe_states = options.base.dedupe_states;
        sub.max_crashes = options.base.max_crashes;
        sub.table = table.get();
        auto abort = [&, item_idx] {
          return item_idx > first_violation.load(std::memory_order_relaxed) ||
                 bound_before(item_idx) >= cap || past_deadline();
        };
        // Bounded retries: exploration is deterministic replay, so only
        // transient failures (resource exhaustion) are recoverable; a
        // deterministic throw exhausts the budget and marks the job failed
        // instead of tearing the whole search down.
        bool done = false;
        std::string failure;
        for (std::size_t attempt = 0;
             attempt <= options.job_retries && !done && !past_deadline();
             ++attempt) {
          try {
            auto jr = detail::explore_subtree(factory,
                                              items[item_idx].schedule, sub,
                                              abort);
            if (jr.violation) {
              std::size_t cur = first_violation.load(std::memory_order_relaxed);
              while (item_idx < cur && !first_violation.compare_exchange_weak(
                                           cur, item_idx,
                                           std::memory_order_relaxed)) {
              }
            }
            job_results[item_idx] = std::move(jr);
            item_done[item_idx].store(job_results[item_idx].executions + 1,
                                      std::memory_order_release);
            done = true;
          } catch (const std::exception& e) {
            failure = e.what();
          } catch (...) {
            failure = "unknown exception";
          }
        }
        if (!done && !failure.empty()) {
          job_failed[item_idx] = std::move(failure);
          item_done[item_idx].store(1, std::memory_order_release);  // 0 execs
        }
        if (done || !job_failed[item_idx].empty()) {
          advance_prefix();
        }
      }
    };

    if (threads <= 1) {
      worker();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back(worker);
      }
      for (auto& t : pool) {
        t.join();
      }
    }
  }

  // Deterministic merge: replay the serial explorer's accounting over the
  // lexicographically ordered items.  Thread count and worker interleaving
  // influenced only results the merge never reads (with dedupe off; with it
  // on, the shared table makes counts interleaving-dependent - see the
  // header).  Table statistics are global and attach to every return path.
  ScheduleExploreResult res;
  if (table) {
    res.states_seen = table->states();
    res.subtrees_pruned = table->hits();
  }
  std::size_t cum = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!job_failed[i].empty()) {
      // The job threw past its retry budget.  Everything before it merged
      // normally; report the partial summary instead of rethrowing.
      res.executions = cum;
      res.exhausted = false;
      res.error = "subtree job failed after " +
                  std::to_string(options.job_retries + 1) + " attempt(s): " +
                  job_failed[i];
      return res;
    }
    if (items[i].is_job &&
        item_done[i].load(std::memory_order_acquire) == 0) {
      // The job never ran.  The merge returns strictly before every item
      // skipped for violation or cap reasons, so reaching an unran item
      // here means the wall-clock limit expired: report the partial
      // summary rather than waiting on work that will never arrive.
      res.executions = cum;
      res.exhausted = false;
      res.timed_out = true;
      return res;
    }
    std::size_t n = 1;
    bool fully = true;
    std::optional<std::string> violation;
    std::size_t violation_index = 1;
    std::vector<ProcessId>* witness = &items[i].schedule;
    if (items[i].is_job) {
      detail::SubtreeResult& jr = job_results[i];
      n = jr.executions;
      fully = jr.fully_explored;
      violation = jr.violation;
      violation_index = jr.violation_index;
      witness = &jr.witness;
    } else {
      violation = items[i].leaf_violation;
    }
    if (violation && cum + violation_index <= cap) {
      res.executions = cum + violation_index;
      res.violation = std::move(violation);
      res.witness = std::move(*witness);
      return res;  // exhausted stays true, as in the serial explorer
    }
    if (cum + n >= cap) {
      // The serial walk reaches the cap inside (or exactly at the end of)
      // this item.  It is a truncation iff any work would have remained:
      // a violation past the cap, a locally truncated subtree, executions
      // beyond the cap, or any later item (each holds >= 1 execution).
      const bool truncated = violation.has_value() || !fully ||
                             cum + n > cap || i + 1 < items.size();
      res.executions = cap;
      res.exhausted = !truncated;
      return res;
    }
    if (!fully) {
      // Below the cap only a wall-clock abort leaves a merged job partially
      // explored (violation- and cap-skips are returned before, above).
      res.executions = cum + n;
      res.exhausted = false;
      res.timed_out = true;
      return res;
    }
    cum += n;
  }
  res.executions = cum;
  res.exhausted = true;
  return res;
}

}  // namespace revisim::check
