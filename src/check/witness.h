// Replayable failure witnesses.
//
// When a checker or watchdog flags an execution, the schedule that produced
// it - including any injected crashes - is the whole proof.  A witness file
// serializes that proof in a versioned text format so the verdict survives
// the process that found it: a later binary (the test rerun, `revisim_cli
// replay`, a human with an editor) rebuilds the named world from the
// crash-world registry, replays the schedule entry by entry, and re-derives
// the verdict deterministically.  Determinism of executions under a fixed
// schedule (the scheduler's core invariant) is what makes this sound.
//
// Format v1, line-oriented, '#' comments allowed:
//
//   revisim-witness v1
//   world aug-mutant
//   processes 2
//   components 2
//   budget 10
//   max_steps 64
//   max_crashes 2
//   por 1
//   verdict progress violation: q1's Block-Update took 11 own steps ...
//   schedule s0 s1 c1 s0 ...
//   end
//
// Schedule entries: `s<pid>` is one step by process pid, `c<pid>` crashes
// it (0-based pids).  `verdict` holds the rest of the line verbatim (empty
// means the execution was accepted - useful for regression-pinning a
// passing run).  max_steps / max_crashes record the exploration options
// that found the witness; replay does not need them but tooling does.
//
// The optional `por` key (format v1 revision 2) records whether the
// exploration that produced the witness ran with partial-order reduction.
// POR prunes executions, so the lex-smallest witness under POR may differ
// from the unreduced one even though both prove the same verdict; the flag
// lets tooling know which family the schedule came from.  It is written
// only when true, so witnesses from non-POR runs are byte-identical to
// revision 1 files, and revision-1 parsers reject nothing new.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/check/crash_worlds.h"
#include "src/runtime/trace.h"

namespace revisim::check {

struct Witness {
  CrashWorldSpec spec;
  std::size_t max_steps = 0;
  std::size_t max_crashes = 0;
  bool por = false;  // exploration ran with partial-order reduction
  std::string verdict;  // empty = accepted execution
  std::vector<runtime::ProcessId> schedule;  // may contain crash entries
};

// Serialization.  parse_witness throws std::invalid_argument naming the
// offending line; load_witness_file adds std::runtime_error for I/O.
[[nodiscard]] std::string to_text(const Witness& w);
[[nodiscard]] Witness parse_witness(const std::string& text);
void write_witness_file(const Witness& w, const std::string& path);
[[nodiscard]] Witness load_witness_file(const std::string& path);

// Replays the witness: rebuilds the world from the registry, applies every
// schedule entry, evaluates the verdict.  Throws std::invalid_argument if
// the schedule does not fit the world (bad pid, step on a finished or
// crashed process) - a witness from a different code version.
struct ReplayResult {
  std::optional<std::string> verdict;  // what the replayed world reported
  bool matches = false;                // == the recorded verdict
  std::size_t steps = 0;               // plain step entries applied
  std::size_t crashes = 0;             // crash entries applied
};
[[nodiscard]] ReplayResult replay_witness(const Witness& w);

}  // namespace revisim::check
