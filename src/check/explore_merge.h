// Deterministic key-sorted merge shared by the in-process work-stealing
// explorer (src/check/parallel_explore.cpp) and the distributed coordinator
// (src/dist/coordinator.cpp).  Both reduce a run to prefix-identified jobs
// whose regions partition the schedule tree into contiguous lexicographic
// intervals; the merge sorts the job records by region key and replays the
// serial explorer's accounting over them in order, so executions /
// exhausted / violation / lex-smallest witness come out bit-identical to
// the serial engine no matter how the regions were scheduled, stolen or
// shipped.  Keeping one implementation is what makes the in-process and
// distributed explorers agree by construction.
//
// Counter aggregation contract (the merged ScheduleExploreResult):
//
//   executions, exhausted, violation, witness
//     Serial replay accounting: walk the sorted records accumulating
//     executions, return at the first violation whose serial index fits
//     under the cap, truncate at the cap.  Bit-identical to the serial
//     engine (with dedupe off); independent of job decomposition.
//
//   replay_steps_saved, por_skipped, dependent_wakeups, footprint_bytes,
//   dedupe_disabled_adaptively
//     Summed (|| for the flag) over every record that COMPLETED its walk -
//     including records lexicographically past the merge's return point.
//     They describe work actually performed, not work serially accounted.
//     On an exhausted, undeduped, violation-free search the decomposition
//     is invisible: every node is expanded exactly once with an identical
//     sleep set, so por_skipped and dependent_wakeups equal the serial
//     values at any worker count (asserted in tests/dist_test.cpp).
//     replay_steps_saved and footprint_bytes remain genuinely
//     decomposition-dependent telemetry (warm-pool luck, split points).
//
//   jobs, steals, states_seen, subtrees_pruned
//     Owned by the caller (they are global properties of the run, not of
//     any record): jobs = every record created, steals = records claimed
//     by a worker other than their donor (so steals <= jobs - 1), table
//     statistics from the shared/sharded store.  The merge only sums
//     per-record subtrees_pruned as a default for callers without a global
//     table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/check/explore_core.h"
#include "src/check/model_check.h"
#include "src/runtime/trace.h"

namespace revisim::check::detail {

// Lexicographic region order.  A job's key is its schedule prefix followed
// by its first choice - the lex-smallest schedule of its region, as a
// prefix.  Regions are disjoint contiguous intervals and a key that
// prefixes another belongs to the region that starts first (the donor's
// remaining work precedes everything it donates), so shorter-prefix-first
// lexicographic comparison is exactly serial DFS order.  Crash entries
// carry the top bit (runtime::make_crash_entry) and numerically sort after
// every step entry, matching append_node_choices' enumeration order.
bool key_less(const std::vector<runtime::ProcessId>& a,
              const std::vector<runtime::ProcessId>& b);

// One job record as the merge sees it.  Pointers alias the caller's
// storage; nothing is copied.
struct MergeJob {
  enum class State {
    kDone,        // walk completed (possibly a partial walk after an abort)
    kFailed,      // threw past its retry budget; `error` holds the message
    kUnfinished,  // never ran, or was pre-skipped as provably unreadable
  };

  const std::vector<runtime::ProcessId>* key = nullptr;
  State state = State::kUnfinished;
  const SubtreeResult* result = nullptr;  // valid when kDone
  const std::string* error = nullptr;     // valid when kFailed
};

// Sorts `jobs` by region key in place and merges them under the execution
// cap.  `attempts` is the per-job attempt budget (retries + 1), quoted in
// the kFailed error message.  A kUnfinished record at or before the merge's
// return point means work the run could not perform: with
// `unfinished_error` empty that is a wall-clock truncation (timed_out);
// nonempty, it becomes the partial summary's error - the distributed
// coordinator's every-worker-lost path.  jobs/steals/states_seen are left
// for the caller to overlay (see the contract above).
ScheduleExploreResult merge_job_results(std::vector<MergeJob>& jobs,
                                        std::uint64_t cap,
                                        std::size_t attempts,
                                        const std::string& unfinished_error);

// --- checkpoint-resume planning ---------------------------------------------
//
// A resumed run (src/dist/journal.h) replays the journaled job genealogy
// to decide what each recorded region contributes.  The invariant that
// makes this merge-exact: a job's original (prefix, choices) region equals
// its own remaining region plus the regions of everything it ever donated,
// recursively - so re-running an incomplete job from its original spec
// re-covers ALL its descendants, and those descendants (even completed
// ones) must be excluded or they would be double counted.

enum class ResumeAction : std::uint8_t {
  kReuse,    // done, all ancestors done: merge the journaled result as-is
  kRerun,    // not done, all ancestors done: re-run from the recorded spec
  kDiscard,  // an ancestor reruns; this region is re-covered by it
};

struct ResumeJob {
  std::uint64_t id = 0;
  bool has_parent = false;
  std::uint64_t parent = 0;
  bool done = false;
};

// One action per input job (same order).  A parent id that matches no job
// in the list - corruption an append-only journal cannot produce - is
// treated as an un-done ancestor, so the orphan is conservatively
// discarded rather than double counted.
std::vector<ResumeAction> plan_resume(const std::vector<ResumeJob>& jobs);

}  // namespace revisim::check::detail
