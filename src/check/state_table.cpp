#include "src/check/state_table.h"

#include <cstdlib>
#include <new>
#include <thread>

namespace revisim::check {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

StateTable::StateTable() : StateTable(Options{}) {}

StateTable::StateTable(Options options) : audit_(options.audit) {
  if (!audit_) {
    const std::size_t cap =
        round_up_pow2(options.capacity < 16 ? 16 : options.capacity);
    // calloc: slots start zeroed (== kEmpty) without touching pages, so a
    // search that visits a few hundred states maps a few pages of a
    // million-slot table.
    slots_ = static_cast<Slot*>(std::calloc(cap, sizeof(Slot)));
    if (slots_ == nullptr) {
      throw std::bad_alloc();
    }
    mask_ = cap - 1;
    high_water_ = cap - cap / 8;
  }
}

StateTable::~StateTable() { std::free(slots_); }

bool StateTable::insert_lockfree(util::Fingerprint fp) {
  if (size_.load(std::memory_order_relaxed) >= high_water_) {
    // Saturated: admit without recording.  The caller walks the subtree (no
    // unsound prune is possible - nothing new is recorded), dedupe merely
    // stops shrinking the search past this point.
    saturated_.store(true, std::memory_order_relaxed);
    return true;
  }
  std::size_t idx = FingerprintHash{}(fp) & mask_;
  for (std::size_t probes = 0; probes <= mask_; ++probes) {
    Slot& slot = slots_[idx];
    std::atomic_ref<std::uint32_t> state(slot.state);
    for (;;) {
      std::uint32_t st = state.load(std::memory_order_acquire);
      if (st == kBusy) {
        // The claimant is between its CAS and its FULL release - a handful
        // of instructions; spin until the key is published.
        std::this_thread::yield();
        continue;
      }
      if (st == kFull) {
        // The acquire load of kFull orders these reads after the
        // claimant's key writes.
        if (std::atomic_ref<std::uint64_t>(slot.lo).load(
                std::memory_order_relaxed) == fp.lo &&
            std::atomic_ref<std::uint64_t>(slot.hi).load(
                std::memory_order_relaxed) == fp.hi) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        break;  // occupied by another key; probe the next slot
      }
      // kEmpty: claim it.  On a lost race, re-examine the same slot (the
      // winner may have inserted this very key).
      std::uint32_t expected = kEmpty;
      if (state.compare_exchange_strong(expected, kBusy,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        std::atomic_ref<std::uint64_t>(slot.lo).store(
            fp.lo, std::memory_order_relaxed);
        std::atomic_ref<std::uint64_t>(slot.hi).store(
            fp.hi, std::memory_order_relaxed);
        state.store(kFull, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    idx = (idx + 1) & mask_;
  }
  // Unreachable below the high-water mark (empty slots always remain), but
  // degrade like saturation rather than loop forever.
  saturated_.store(true, std::memory_order_relaxed);
  return true;
}

bool StateTable::insert(util::Fingerprint fp,
                        const std::function<std::string()>& canonical) {
  if (!audit_) {
    return insert_lockfree(fp);
  }
  // Audit mode: serialize outside the lock (the canonical string depends
  // only on the caller's world, not on the table).
  std::string state = canonical ? canonical() : std::string{};
  std::lock_guard<std::mutex> lock(audit_mu_);
  // try_emplace leaves `state` intact when the key already exists.
  auto [it, inserted] = canon_.try_emplace(fp, std::move(state));
  if (inserted) {
    return true;
  }
  if (canonical && it->second != state) {
    throw StateFingerprintCollision(
        "128-bit state fingerprint collision: two distinct canonical states "
        "hash equal; pruning would be unsound (stored=\"" +
        it->second.substr(0, 128) + "...\")");
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void StateTable::insert_batch(
    const util::Fingerprint* fps, std::size_t n, bool* was_new,
    const std::function<std::string(std::size_t)>& canonical) {
  if (audit_) {
    for (std::size_t i = 0; i < n; ++i) {
      was_new[i] = insert(fps[i], canonical
                                      ? std::function<std::string()>(
                                            [&, i] { return canonical(i); })
                                      : std::function<std::string()>{});
    }
    return;
  }
  // Warm the first probe cacheline of every entry before any CAS: the
  // probes of a batch are independent, so issuing all the loads up front
  // overlaps their memory latency.
  for (std::size_t i = 0; i < n; ++i) {
    __builtin_prefetch(&slots_[FingerprintHash{}(fps[i]) & mask_], 1, 1);
  }
  for (std::size_t i = 0; i < n; ++i) {
    was_new[i] = insert_lockfree(fps[i]);
  }
}

bool StateTable::contains(util::Fingerprint fp) const noexcept {
  if (audit_) {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(audit_mu_));
    return canon_.find(fp) != canon_.end();
  }
  std::size_t idx = FingerprintHash{}(fp) & mask_;
  for (std::size_t probes = 0; probes <= mask_; ++probes) {
    Slot& slot = slots_[idx];
    const std::uint32_t st =
        std::atomic_ref<std::uint32_t>(slot.state).load(
            std::memory_order_acquire);
    if (st == kEmpty) {
      return false;
    }
    if (st == kFull &&
        std::atomic_ref<std::uint64_t>(slot.lo).load(
            std::memory_order_relaxed) == fp.lo &&
        std::atomic_ref<std::uint64_t>(slot.hi).load(
            std::memory_order_relaxed) == fp.hi) {
      return true;
    }
    idx = (idx + 1) & mask_;
  }
  return false;
}

std::size_t StateTable::states() const {
  if (!audit_) {
    return size_.load(std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(audit_mu_));
  return canon_.size();
}

}  // namespace revisim::check
