#include "src/check/state_table.h"

namespace revisim::check {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

StateTable::StateTable() : StateTable(Options{}) {}

StateTable::StateTable(Options options)
    : shards_(round_up_pow2(options.shards == 0 ? 1 : options.shards)),
      mask_(shards_.size() - 1),
      audit_(options.audit) {}

bool StateTable::insert(util::Fingerprint fp,
                        const std::function<std::string()>& canonical) {
  Shard& shard = shard_for(fp);
  if (!audit_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.seen.insert(fp).second) {
      return true;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Audit mode: serialize outside the lock (the canonical string depends
  // only on the caller's world, not on the table).
  std::string state = canonical ? canonical() : std::string{};
  std::lock_guard<std::mutex> lock(shard.mu);
  // try_emplace leaves `state` intact when the key already exists.
  auto [it, inserted] = shard.canon.try_emplace(fp, std::move(state));
  if (inserted) {
    return true;
  }
  if (canonical && it->second != state) {
    throw StateFingerprintCollision(
        "128-bit state fingerprint collision: two distinct canonical states "
        "hash equal; pruning would be unsound (stored=\"" +
        it->second.substr(0, 128) + "...\")");
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

std::size_t StateTable::states() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(shard.mu));
    total += audit_ ? shard.canon.size() : shard.seen.size();
  }
  return total;
}

}  // namespace revisim::check
