// Progress-guarantee watchdogs: per-operation step budgets that convert
// livelock and starvation into structured, attributable verdicts.
//
// Wait-freedom (§2, §3.2) is a *per-operation* bound: every operation by a
// live process completes within a bounded number of its own steps,
// regardless of how the other processes are scheduled - or crashed.  The
// watchdog checks exactly that: each monitored operation registers when it
// begins, and the monitor compares the process's own-step consumption
// against a budget.  An execution where some operation exceeds its budget -
// whether it later completed or is still running when the execution is cut -
// yields a ProgressViolation naming the process, the operation and the step
// counts, which the explorer turns into a replayable failure witness.
//
// Crash interaction: a crashed process stops taking steps, so its in-flight
// operation's own-step count freezes and never exceeds the budget on its
// own.  Crashes therefore never create watchdog violations (a crash is not
// starvation), without any special-casing - exactly the crash-closure
// reading under which the Block-Update bound of Lemma 2 must hold.
//
// What the watchdog deliberately does NOT bound is *other* processes' steps:
// the augmented snapshot's Scan is non-blocking but not wait-free (§3.2) -
// an infinite stream of concurrent update batches starves it - so a Scan
// own-step budget would be violated by a correct implementation.  Monitor
// the operations whose contract is wait-freedom (Block-Update: 6 own steps,
// 5 when yielding) and leave merely non-blocking ones unmonitored.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/runtime/scheduler.h"

namespace revisim::check {

// A monitored operation that consumed more own-steps than its budget.
struct ProgressViolation {
  runtime::ProcessId process = 0;
  std::string operation;
  std::size_t budget = 0;
  std::size_t steps = 0;     // own steps consumed when the check ran
  bool completed = false;    // true: it finished anyway, just too slowly

  // One-line message, e.g.
  //   "progress violation: q2's Block-Update took 11 own steps
  //    (budget 10, still running)"
  [[nodiscard]] std::string message() const;
};

// Tracks operations against a shared own-step budget.  Bound to one
// scheduler; begin() is called from the operation's prologue (before its
// first shared-memory step), end() right after it returns.  check() scans
// every recorded operation - live or completed - and reports the first
// over-budget one in begin order.
class ProgressMonitor {
 public:
  // Throws std::invalid_argument if step_budget is 0 (every operation
  // charges at least one step, so a zero budget flags everything).
  ProgressMonitor(const runtime::Scheduler& sched, std::size_t step_budget);

  // Registers an operation by `pid` starting now; returns its token.
  std::size_t begin(runtime::ProcessId pid, std::string operation);

  // Marks the operation complete, fixing its final own-step count.
  void end(std::size_t token);

  // First over-budget operation in begin order, or nullopt.  A completed
  // operation that exceeded the budget is still a violation: wait-freedom
  // bounds every operation, not just the ones an adversary cut short.
  [[nodiscard]] std::optional<ProgressViolation> check() const;

  [[nodiscard]] std::size_t step_budget() const noexcept { return budget_; }
  [[nodiscard]] std::size_t operations() const noexcept { return ops_.size(); }

 private:
  struct Op {
    runtime::ProcessId pid = 0;
    std::string name;
    std::size_t start_steps = 0;            // steps_taken(pid) at begin
    std::optional<std::size_t> used;        // final count once ended
  };

  const runtime::Scheduler& sched_;
  std::size_t budget_;
  std::vector<Op> ops_;
};

}  // namespace revisim::check
