// Visited-state transposition table for the schedule explorer.
//
// Keys are 128-bit state fingerprints (src/util/fingerprint.h).  The table
// is a fixed-capacity open-addressing array with linear probing and a
// per-slot publication protocol (EMPTY -> BUSY -> FULL): an insert claims an
// empty slot with one CAS, writes the key, and release-publishes FULL, so
// the parallel explorer's workers share one table with no locks at all and
// the serial explorer pays a single uncontended CAS per distinct state.
// The claim is synchronous - a successful insert *is* the claim-then-walk
// handshake: whichever worker wins the CAS owns the subtree walk, and every
// racing worker observes the published key and prunes, which is what keeps
// parallel `states_seen` from exceeding the serial count on exhausted
// searches (each distinct state is claimed and walked exactly once).
//
// Capacity is fixed at construction (a power of two).  Slots are allocated
// zeroed through calloc, so untouched pages stay lazily mapped and tiny
// searches do not pay for a large table.  When occupancy reaches 7/8 the
// table *saturates*: further inserts of unseen states return true without
// recording (the walk proceeds, nothing is pruned that was not recorded),
// so dedupe degrades to a partial accelerant instead of failing - see
// saturated().
//
// Collision-audit mode stores the full canonical state string behind every
// fingerprint and fails loudly - by throwing StateFingerprintCollision - if
// a 128-bit hash ever maps two distinct canonical states together.  A prune
// taken on a colliding hash would silently skip a genuinely unexplored
// subtree; audit mode converts that silent unsoundness into a hard error
// (at the memory cost of retaining every canonical state, behind a single
// mutex - audit is a validation mode, not a fast path).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "src/util/fingerprint.h"

namespace revisim::check {

class StateFingerprintCollision : public std::runtime_error {
 public:
  explicit StateFingerprintCollision(const std::string& what)
      : std::runtime_error(what) {}
};

// Abstract visited-state store consulted by the DFS engine at every node.
// StateTable below is the in-process implementation; the distributed
// explorer plugs in a store that forwards first-sightings to a sharded
// fingerprint service on the coordinator (src/dist/worker.cpp), so
// claim-then-walk pruning extends across worker processes without the
// engine changing.  The insert contract is StateTable::insert's: true means
// the caller owns the subtree walk, false means prune; `canonical` is
// invoked only when audit() is true.
class StateStore {
 public:
  virtual ~StateStore() = default;

  virtual bool insert(util::Fingerprint fp,
                      const std::function<std::string()>& canonical = {}) = 0;

  // insert() plus the DFS depth (absolute schedule length) of the node
  // being claimed.  The engine calls this form at its single insert site;
  // stores that pipeline claims (the distributed async fingerprint store)
  // use the depth to track speculation along the current DFS path.  The
  // default ignores the depth.
  virtual bool insert_at(util::Fingerprint fp, std::size_t depth,
                         const std::function<std::string()>& canonical = {}) {
    (void)depth;
    return insert(fp, canonical);
  }

  [[nodiscard]] virtual bool audit() const noexcept = 0;

  // Distinct states recorded (implementations may report a local lower
  // bound; the coordinator owns the authoritative global count).
  [[nodiscard]] virtual std::size_t states() const = 0;

  // Pruning hits: inserts that found the state already present.
  [[nodiscard]] virtual std::size_t hits() const noexcept = 0;
};

class StateTable final : public StateStore {
 public:
  struct Options {
    bool audit = false;  // retain canonical states, detect collisions
    // Slot count, rounded up to a power of two.  ~24 bytes per slot,
    // allocated zeroed (lazily mapped), saturating at 7/8 occupancy.
    std::size_t capacity = std::size_t{1} << 20;
  };

  StateTable();
  explicit StateTable(Options options);
  ~StateTable();

  StateTable(const StateTable&) = delete;
  StateTable& operator=(const StateTable&) = delete;

  // Records fp as visited.  Returns true iff fp was new (the caller owns the
  // subtree walk); false means the state was already visited and the caller
  // prunes.  Lock-free (one CAS on the claimed slot) except in audit mode.
  // `canonical` produces the full canonical state string; it is invoked only
  // in audit mode (once on first insert, once per subsequent hit to
  // cross-check), so non-audit runs never pay for serialization.  Throws
  // StateFingerprintCollision if audit finds two canonical states behind one
  // fingerprint.
  bool insert(util::Fingerprint fp,
              const std::function<std::string()>& canonical = {}) override;

  // Bulk claim-then-walk: inserts fps[0..n) and sets was_new[i] to the
  // per-entry insert() verdict.  A prefetch pass warms every probe chain's
  // first cacheline before the CAS pass touches any of them, so a batch
  // from the fingerprint pipeline pays one memory round trip, not n.  In
  // audit mode `canonical(i)` serializes entry i (falls back to per-entry
  // insert; audit is a validation mode, not a fast path).
  void insert_batch(const util::Fingerprint* fps, std::size_t n,
                    bool* was_new,
                    const std::function<std::string(std::size_t)>& canonical = {});

  // Read-only membership probe: true iff fp is recorded.  Never claims.
  [[nodiscard]] bool contains(util::Fingerprint fp) const noexcept;

  [[nodiscard]] bool audit() const noexcept override { return audit_; }

  // Distinct states recorded.
  [[nodiscard]] std::size_t states() const override;

  // Pruning hits: inserts that found the state already present.
  [[nodiscard]] std::size_t hits() const noexcept override {
    return hits_.load(std::memory_order_relaxed);
  }

  // True once occupancy reached 7/8 of capacity and inserts began admitting
  // states without recording them (dedupe became partial).
  [[nodiscard]] bool saturated() const noexcept {
    return saturated_.load(std::memory_order_relaxed);
  }

 private:
  struct FingerprintHash {
    std::size_t operator()(const util::Fingerprint& fp) const noexcept {
      return static_cast<std::size_t>(fp.lo ^ (fp.hi * 0x9e3779b97f4a7c15ull));
    }
  };

  // One open-addressing slot.  `state` moves EMPTY -> BUSY -> FULL exactly
  // once; lo/hi are written between the BUSY claim and the FULL release, so
  // an acquire load of FULL makes them safely readable.  Accessed through
  // std::atomic_ref over a calloc'd array: zeroed == EMPTY, and pages are
  // touched only as slots are claimed.
  struct Slot {
    std::uint64_t lo;
    std::uint64_t hi;
    std::uint32_t state;
    std::uint32_t pad;
  };
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kBusy = 1;
  static constexpr std::uint32_t kFull = 2;

  bool insert_lockfree(util::Fingerprint fp);

  Slot* slots_ = nullptr;
  std::size_t mask_ = 0;
  std::size_t high_water_ = 0;  // 7/8 of capacity
  bool audit_ = false;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> hits_{0};
  std::atomic<bool> saturated_{false};

  // Audit mode only: the canonical state behind each fingerprint.
  std::mutex audit_mu_;
  std::unordered_map<util::Fingerprint, std::string, FingerprintHash> canon_;
};

}  // namespace revisim::check
