// Visited-state transposition table for the schedule explorer.
//
// Keys are 128-bit state fingerprints (src/util/fingerprint.h).  The table
// is sharded with one striped lock per shard, so the parallel explorer's
// workers share a single table with negligible contention; the serial
// explorer uses the same type (uncontended mutexes are cheap next to a world
// replay step).
//
// Collision-audit mode stores the full canonical state string behind every
// fingerprint and fails loudly - by throwing StateFingerprintCollision - if
// a 128-bit hash ever maps two distinct canonical states together.  A prune
// taken on a colliding hash would silently skip a genuinely unexplored
// subtree; audit mode converts that silent unsoundness into a hard error
// (at the memory cost of retaining every canonical state).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/util/fingerprint.h"

namespace revisim::check {

class StateFingerprintCollision : public std::runtime_error {
 public:
  explicit StateFingerprintCollision(const std::string& what)
      : std::runtime_error(what) {}
};

class StateTable {
 public:
  struct Options {
    bool audit = false;          // retain canonical states, detect collisions
    std::size_t shards = 64;     // rounded up to a power of two, min 1
  };

  StateTable();
  explicit StateTable(Options options);

  StateTable(const StateTable&) = delete;
  StateTable& operator=(const StateTable&) = delete;

  // Records fp as visited.  Returns true iff fp was new (the caller owns the
  // subtree walk); false means the state was already visited and the caller
  // prunes.  `canonical` produces the full canonical state string; it is
  // invoked only in audit mode (once on first insert, once per subsequent
  // hit to cross-check), so non-audit runs never pay for serialization.
  // Throws StateFingerprintCollision if audit finds two canonical states
  // behind one fingerprint.
  bool insert(util::Fingerprint fp,
              const std::function<std::string()>& canonical = {});

  [[nodiscard]] bool audit() const noexcept { return audit_; }

  // Distinct states recorded (sums shard sizes under their locks).
  [[nodiscard]] std::size_t states() const;

  // Pruning hits: inserts that found the state already present.
  [[nodiscard]] std::size_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  struct FingerprintHash {
    std::size_t operator()(const util::Fingerprint& fp) const noexcept {
      return static_cast<std::size_t>(fp.lo ^ (fp.hi * 0x9e3779b97f4a7c15ull));
    }
  };

  struct Shard {
    std::mutex mu;
    std::unordered_set<util::Fingerprint, FingerprintHash> seen;
    // Audit mode only: the canonical state behind each fingerprint.
    std::unordered_map<util::Fingerprint, std::string, FingerprintHash> canon;
  };

  Shard& shard_for(util::Fingerprint fp) noexcept {
    return shards_[fp.lo & mask_];
  }

  std::vector<Shard> shards_;
  std::size_t mask_ = 0;
  bool audit_ = false;
  std::atomic<std::size_t> hits_{0};
};

}  // namespace revisim::check
