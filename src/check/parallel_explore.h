// Parallel schedule exploration: the schedule tree is split at a frontier
// depth into independent prefix jobs, and subtrees are farmed to a worker
// pool.  Worlds are materialized per job from the user factory (they are
// independent by construction, so subtree exploration is embarrassingly
// parallel); results merge deterministically in lexicographic prefix order.
//
// Guarantees, independent of thread count and worker interleaving:
//   * `executions`, `exhausted`, `violation` and `witness` are bit-identical
//     to the serial explore_schedules on the same factory and options -
//     including under a max_executions cap, whose accounting is replayed in
//     lexicographic order during the merge;
//   * the reported witness is the lexicographically smallest violating
//     schedule (identical to the serial explorer's DFS-first violation).
//
// With base.dedupe_states set, all workers share one transposition table
// (sharded, striped locks) and the guarantee deliberately weakens: which
// worker first inserts a shared state depends on interleaving, so
// `executions`, `states_seen`, `subtrees_pruned` and the reported witness
// may differ run to run and from the serial deduped explorer.  What is
// preserved - the explorer's actual verdict - is the violation-found /
// violation-free outcome on uncapped searches: every inserted state's
// subtree is walked by its inserting worker (pruning elsewhere), and
// workers only abandon subtrees once a violation is already secured.
// Under a max_executions cap the deduped search is best-effort, as the
// cap itself is schedule-count-dependent.
//
// The factory is invoked concurrently from worker threads and must be
// thread-safe; worlds it returns must not share mutable state.  Every world
// built by the seed's tests already satisfies this (each world owns its
// scheduler and objects outright).
// Graceful degradation.  A worker job that throws is retried up to
// `job_retries` times; a job that keeps throwing marks the run failed
// instead of propagating the exception, and the merge returns a partial
// summary (`error` set, `exhausted` false) covering the lexicographic
// prefix of the tree explored before the failed job.  A positive
// `time_limit` bounds the wall clock of the worker phase: when it expires,
// running subtrees abort at their next probe, pending jobs are skipped, and
// the merge again returns a partial summary (`timed_out` set) instead of
// blocking on work that will never arrive.
#pragma once

#include <chrono>

#include "src/check/model_check.h"

namespace revisim::check {

struct ParallelExploreOptions {
  ScheduleExploreOptions base{};
  // Worker threads; 0 means std::thread::hardware_concurrency().
  std::size_t threads = 0;
  // Depth at which the schedule tree is split into prefix jobs.  The
  // generation walk above the frontier is serial and costs one bounded DFS;
  // larger values yield more, smaller jobs (better load balance, more
  // replay overhead per job).
  std::size_t frontier_depth = 6;
  // Additional attempts for a worker job whose exploration throws.  Replay
  // is deterministic, so retries recover only transient failures (resource
  // exhaustion); a deterministic throw exhausts the budget and the run
  // degrades to a partial summary with `error` set.
  std::size_t job_retries = 2;
  // Wall-clock budget for the worker phase; zero means unlimited.
  std::chrono::milliseconds time_limit{0};
};

ScheduleExploreResult parallel_explore_schedules(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const ParallelExploreOptions& options = {});

}  // namespace revisim::check
