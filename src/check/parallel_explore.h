// Parallel schedule exploration: the schedule tree is split at a frontier
// depth into independent prefix jobs, and subtrees are farmed to a worker
// pool.  Worlds are materialized per job from the user factory (they are
// independent by construction, so subtree exploration is embarrassingly
// parallel); results merge deterministically in lexicographic prefix order.
//
// Guarantees, independent of thread count and worker interleaving:
//   * `executions`, `exhausted`, `violation` and `witness` are bit-identical
//     to the serial explore_schedules on the same factory and options -
//     including under a max_executions cap, whose accounting is replayed in
//     lexicographic order during the merge;
//   * the reported witness is the lexicographically smallest violating
//     schedule (identical to the serial explorer's DFS-first violation).
//
// With base.dedupe_states set, all workers share one transposition table
// (sharded, striped locks) and the guarantee deliberately weakens: which
// worker first inserts a shared state depends on interleaving, so
// `executions`, `states_seen`, `subtrees_pruned` and the reported witness
// may differ run to run and from the serial deduped explorer.  What is
// preserved - the explorer's actual verdict - is the violation-found /
// violation-free outcome on uncapped searches: every inserted state's
// subtree is walked by its inserting worker (pruning elsewhere), and
// workers only abandon subtrees once a violation is already secured.
// Under a max_executions cap the deduped search is best-effort, as the
// cap itself is schedule-count-dependent.
//
// The factory is invoked concurrently from worker threads and must be
// thread-safe; worlds it returns must not share mutable state.  Every world
// built by the seed's tests already satisfies this (each world owns its
// scheduler and objects outright).
#pragma once

#include "src/check/model_check.h"

namespace revisim::check {

struct ParallelExploreOptions {
  ScheduleExploreOptions base{};
  // Worker threads; 0 means std::thread::hardware_concurrency().
  std::size_t threads = 0;
  // Depth at which the schedule tree is split into prefix jobs.  The
  // generation walk above the frontier is serial and costs one bounded DFS;
  // larger values yield more, smaller jobs (better load balance, more
  // replay overhead per job).
  std::size_t frontier_depth = 6;
};

ScheduleExploreResult parallel_explore_schedules(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const ParallelExploreOptions& options = {});

}  // namespace revisim::check
