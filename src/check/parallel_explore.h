// Parallel schedule exploration by work stealing.  One job - the whole tree
// - seeds a worker pool; a busy worker polls a hunger hint once per node
// expansion and, when another worker is starving, splits its own DFS stack
// by donating all untried choices of its shallowest branching frame
// (explore_core's SplitHooks).  A donated job is identified by its schedule
// prefix plus its first choice, carries the donor's remaining choice list
// for that node, and - when the donor's warm pool holds a checkpoint parked
// at the split node - a warm world that spares the thief the root replay.
// Jobs are claimed lexicographically-earliest-first; workers keep private
// adaptive warm-world pools that persist across the jobs they run.
//
// Splitting the shallowest frame keeps every job's region a contiguous
// lexicographic interval (the donated suffix is everything after the
// donor's remaining work at that node), so sorting finished jobs by key and
// replaying the serial explorer's accounting over them in order
// reconstructs the serial result exactly.
//
// Guarantees, independent of thread count, steal timing, and worker
// interleaving:
//   * `executions`, `exhausted`, `violation` and `witness` are bit-identical
//     to the serial explore_schedules on the same factory and options -
//     including under a max_executions cap, whose accounting is replayed in
//     lexicographic order during the merge;
//   * the reported witness is the lexicographically smallest violating
//     schedule (identical to the serial explorer's DFS-first violation).
//
// Cap coupling: each job publishes a live execution counter; the sum over
// lexicographically earlier jobs lower-bounds the serial execution count
// before a job's region, so capped searches shrink each job's local cap at
// claim time and abort jobs whose results the merge provably cannot read
// (bound >= cap, or a violation already secured in an earlier region).
//
// With base.dedupe_states set, all workers share one lock-free
// transposition table (state_table.h) and the guarantee deliberately
// weakens: which worker first claims a shared state depends on
// interleaving, so `executions`, `states_seen`, `subtrees_pruned` and the
// reported witness may differ run to run and from the serial deduped
// explorer.  What is preserved is the violation-found / violation-free
// outcome on uncapped searches: the table's CAS insert is the
// claim-then-walk handshake, every claimed state's subtree is walked by its
// claiming worker, and `states_seen` cannot exceed the serial count on
// exhausted searches (each distinct state is claimed exactly once).
//
// Thread counts and the one-core reality.  `threads == 1` bypasses the
// coordinator entirely and runs the serial engine inline - no queue, no
// thread spawn, no atomics - with the caller's fixed warm-pool size, so
// parallel-1 costs serial-fast plus nothing.  For `threads >= 2` the worker
// count is clamped to the hardware concurrency unless `oversubscribe` is
// set: extra threads on saturated cores cannot run subtrees faster, they
// only interleave them (the pre-rework frontier-split explorer lost 5x to
// exactly that).  Tests set `oversubscribe` to force real thread
// interleavings - steals, shared-table races - on any machine.
//
// The factory is invoked concurrently from worker threads and must be
// thread-safe; worlds it returns must not share mutable state.
//
// Graceful degradation.  A job that throws is retried (fresh replay) up to
// `job_retries` times unless it donated work mid-attempt - a retry would
// re-explore the donated regions - in which case, or after the budget is
// exhausted, the run degrades to a partial summary (`error` set, exhausted
// false) covering the lexicographic prefix merged before the failed job.
// A positive `time_limit` bounds the wall clock: running jobs abort at
// their next probe, pending jobs stay unclaimed, and the merge returns a
// partial summary with `timed_out` set.
#pragma once

#include <chrono>

#include "src/check/model_check.h"

namespace revisim::check {

struct ParallelExploreOptions {
  ScheduleExploreOptions base{};
  // Worker threads; 0 means std::thread::hardware_concurrency().  1 runs
  // the serial engine inline with no stealing machinery at all.
  std::size_t threads = 0;
  // Spawn `threads` workers even beyond the hardware concurrency.  Off by
  // default: oversubscribed workers add interleaving overhead without
  // adding throughput.  Tests use it to force steals deterministically of
  // the core count.
  bool oversubscribe = false;
  // Additional attempts for a job whose exploration throws.  Replay is
  // deterministic, so retries recover only transient failures (resource
  // exhaustion); a deterministic throw exhausts the budget and the run
  // degrades to a partial summary with `error` set.
  std::size_t job_retries = 2;
  // Serial probe: before spawning any thread, run the serial engine for up
  // to this many executions.  If that already settles the search - the tree
  // is exhausted, a violation is found (serial DFS order makes it the
  // lex-smallest), or the probe reached the caller's own cap - the probe's
  // result is returned outright; otherwise it is discarded and the pool
  // runs as before.  Thread spawn plus shared-table synchronization costs
  // far more than a small tree costs to walk, which made parallel-4 over
  // 10x slower than parallel-2 on heavily-deduped instances whose whole
  // deduped tree fits in a few hundred executions.  0 disables the probe.
  std::size_t serial_probe_executions = 1024;
  // Wall-clock budget; zero means unlimited.
  std::chrono::milliseconds time_limit{0};
};

ScheduleExploreResult parallel_explore_schedules(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const ParallelExploreOptions& options = {});

}  // namespace revisim::check
