// Linearizability checking for snapshot-object histories (Herlihy-Wing
// semantics, Wing-Gong style search).
//
// The from-registers snapshot implementations (memory/afek_snapshot.h,
// memory/collect_snapshot.h) are validated by recording complete operation
// histories - invocation/response times plus arguments and results - and
// searching for a legal sequential witness that respects real-time order.
// Histories at model scale are small, so an exponential search with
// memoization on (linearized-set, object-state) is exact.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/value.h"

namespace revisim::check {

struct HistOp {
  std::size_t process = 0;
  std::size_t invoke = 0;   // global step count at invocation
  std::size_t respond = 0;  // global step count at response
  bool is_scan = false;
  std::size_t component = 0;  // update only
  Val value = 0;              // update only
  View result;                // scan only
};

// True iff the history of scans/updates on an m-component snapshot object is
// linearizable.  All operations must be complete.
[[nodiscard]] bool is_linearizable_snapshot(const std::vector<HistOp>& hist,
                                            std::size_t m);

// ABA-freedom (§5.3): no component takes a value, changes, and takes the
// same value again.  `writes` is the chronological (component, value)
// sequence of applied updates.  Protocols over max-registers or
// fetch-and-increments are ABA-free by construction; plain-register
// protocols need the Corollary 36 tagging.
[[nodiscard]] bool is_aba_free(
    const std::vector<std::pair<std::size_t, Val>>& writes);

}  // namespace revisim::check
