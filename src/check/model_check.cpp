#include "src/check/model_check.h"

#include "src/check/explore_core.h"

namespace revisim::check {

ScheduleExploreResult explore_schedules(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const ScheduleExploreOptions& options) {
  detail::SubtreeOptions sub;
  sub.max_steps = options.max_steps;
  sub.max_executions = options.max_executions;
  sub.record_traces = options.record_traces;
  sub.warm_worlds = options.warm_worlds;
  sub.dedupe_states = options.dedupe_states;
  sub.dedupe_audit = options.dedupe_audit;
  auto sr = detail::explore_subtree(factory, {}, sub);

  ScheduleExploreResult res;
  res.executions = sr.executions;
  res.exhausted = sr.fully_explored;
  res.violation = std::move(sr.violation);
  res.witness = std::move(sr.witness);
  res.states_seen = sr.states_seen;
  res.subtrees_pruned = sr.subtrees_pruned;
  return res;
}

}  // namespace revisim::check
