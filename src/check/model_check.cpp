#include "src/check/model_check.h"

#include <stdexcept>
#include <string>

#include "src/check/explore_core.h"

namespace revisim::check {

void validate(const ScheduleExploreOptions& options) {
  if (options.max_steps == 0) {
    throw std::invalid_argument(
        "ScheduleExploreOptions: max_steps must be >= 1 (a depth bound of 0 "
        "explores nothing)");
  }
  if (options.max_crashes >= options.max_steps) {
    throw std::invalid_argument(
        "ScheduleExploreOptions: max_crashes (" +
        std::to_string(options.max_crashes) +
        ") must be < max_steps (" + std::to_string(options.max_steps) +
        "): every crash entry occupies a schedule slot");
  }
  if (options.dedupe_audit && !options.dedupe_states) {
    throw std::invalid_argument(
        "ScheduleExploreOptions: dedupe_audit requires dedupe_states");
  }
  if (options.dedupe_adaptive && !options.dedupe_states) {
    throw std::invalid_argument(
        "ScheduleExploreOptions: dedupe_adaptive requires dedupe_states");
  }
  if (options.dist_probe_interval < 1) {
    throw std::invalid_argument(
        "ScheduleExploreOptions: dist_probe_interval must be >= 1 (a worker "
        "that never pumps the control channel cannot hear aborts)");
  }
}

ScheduleExploreResult explore_schedules(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const ScheduleExploreOptions& options) {
  validate(options);
  detail::SubtreeOptions sub;
  sub.max_steps = options.max_steps;
  sub.max_executions = options.max_executions;
  sub.record_traces = options.record_traces;
  sub.warm_worlds = options.warm_worlds;
  sub.dedupe_states = options.dedupe_states;
  sub.dedupe_audit = options.dedupe_audit;
  sub.dedupe_adaptive = options.dedupe_adaptive;
  sub.max_crashes = options.max_crashes;
  sub.por = options.por;
  auto sr = detail::explore_subtree(factory, {}, sub);

  ScheduleExploreResult res;
  res.executions = sr.executions;
  res.exhausted = sr.fully_explored;
  res.violation = std::move(sr.violation);
  res.witness = std::move(sr.witness);
  res.states_seen = sr.states_seen;
  res.subtrees_pruned = sr.subtrees_pruned;
  res.jobs = 1;
  res.replay_steps_saved = sr.replay_steps_saved;
  res.por_skipped = sr.por_skipped;
  res.dependent_wakeups = sr.dependent_wakeups;
  res.footprint_bytes = sr.footprint_bytes;
  res.dedupe_disabled_adaptively = sr.dedupe_disabled;
  return res;
}

}  // namespace revisim::check
