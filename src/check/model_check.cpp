#include "src/check/model_check.h"

namespace revisim::check {
namespace {

struct Frame {
  std::vector<runtime::ProcessId> choices;  // runnable at this depth
  std::size_t next = 0;                     // next choice to try
};

}  // namespace

ScheduleExploreResult explore_schedules(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const ScheduleExploreOptions& options) {
  ScheduleExploreResult res;
  std::vector<Frame> stack;
  std::vector<runtime::ProcessId> prefix;

  // Rebuilds a fresh world positioned after `prefix` (used on backtrack;
  // descending steps the live world instead).
  auto replay = [&factory](const std::vector<runtime::ProcessId>& p) {
    auto world = factory();
    for (runtime::ProcessId pid : p) {
      world->scheduler().run_step(pid);
    }
    return world;
  };

  auto world = factory();
  for (;;) {
    auto runnable = world->scheduler().runnable();
    const bool complete = runnable.empty();
    if (complete || prefix.size() >= options.max_steps) {
      ++res.executions;
      if (auto v = world->verdict(complete)) {
        res.violation = std::move(v);
        res.witness = prefix;
        return res;
      }
      if (res.executions >= options.max_executions) {
        res.exhausted = false;
        return res;
      }
      // Backtrack to the deepest frame with an untried choice.
      while (!stack.empty() &&
             stack.back().next >= stack.back().choices.size()) {
        stack.pop_back();
        prefix.pop_back();
      }
      if (stack.empty()) {
        return res;
      }
      prefix.back() = stack.back().choices[stack.back().next++];
      world = replay(prefix);
      continue;
    }
    // Descend along the first untried choice.
    stack.push_back(Frame{runnable, 1});
    prefix.push_back(runnable[0]);
    world->scheduler().run_step(runnable[0]);
  }
}

}  // namespace revisim::check
