#include "src/check/witness.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/runtime/scheduler.h"

namespace revisim::check {
namespace {

// Verdict messages are stored on one line; fold any embedded newlines.
std::string one_line(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return out;
}

}  // namespace

std::string to_text(const Witness& w) {
  std::ostringstream out;
  out << "revisim-witness v1\n";
  out << "world " << w.spec.world << '\n';
  out << "processes " << w.spec.f << '\n';
  out << "components " << w.spec.m << '\n';
  out << "budget " << w.spec.step_budget << '\n';
  out << "max_steps " << w.max_steps << '\n';
  out << "max_crashes " << w.max_crashes << '\n';
  if (w.por) {
    out << "por 1\n";
  }
  out << "verdict " << one_line(w.verdict) << '\n';
  out << "schedule";
  for (runtime::ProcessId entry : w.schedule) {
    if (runtime::is_crash_entry(entry)) {
      out << " c" << runtime::crash_entry_target(entry);
    } else {
      out << " s" << entry;
    }
  }
  out << "\nend\n";
  return out.str();
}

Witness parse_witness(const std::string& text) {
  Witness w;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  bool saw_header = false;
  bool saw_end = false;
  auto fail = [&](const std::string& why) -> void {
    throw std::invalid_argument("witness line " + std::to_string(lineno) +
                                ": " + why);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    if (!saw_header) {
      if (line != "revisim-witness v1") {
        fail("expected header \"revisim-witness v1\", got \"" + line + "\"");
      }
      saw_header = true;
      continue;
    }
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "end") {
      saw_end = true;
      break;
    }
    if (key == "world") {
      ls >> w.spec.world;
    } else if (key == "processes") {
      if (!(ls >> w.spec.f)) fail("processes needs a number");
    } else if (key == "components") {
      if (!(ls >> w.spec.m)) fail("components needs a number");
    } else if (key == "budget") {
      if (!(ls >> w.spec.step_budget)) fail("budget needs a number");
    } else if (key == "max_steps") {
      if (!(ls >> w.max_steps)) fail("max_steps needs a number");
    } else if (key == "max_crashes") {
      if (!(ls >> w.max_crashes)) fail("max_crashes needs a number");
    } else if (key == "por") {
      int v = 0;
      if (!(ls >> v) || (v != 0 && v != 1)) fail("por needs 0 or 1");
      w.por = v != 0;
    } else if (key == "verdict") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') {
        rest.erase(0, 1);
      }
      w.verdict = rest;
    } else if (key == "schedule") {
      std::string tok;
      while (ls >> tok) {
        if (tok.size() < 2 || (tok[0] != 's' && tok[0] != 'c')) {
          fail("bad schedule entry \"" + tok +
               "\" (want s<pid> or c<pid>, 0-based)");
        }
        runtime::ProcessId pid = 0;
        try {
          pid = std::stoull(tok.substr(1));
        } catch (const std::exception&) {
          fail("bad schedule entry \"" + tok + "\"");
        }
        w.schedule.push_back(tok[0] == 'c' ? runtime::make_crash_entry(pid)
                                           : pid);
      }
    } else {
      fail("unknown key \"" + key + "\"");
    }
  }
  if (!saw_header) {
    throw std::invalid_argument("witness: missing \"revisim-witness v1\" header");
  }
  if (!saw_end) {
    throw std::invalid_argument(
        "witness: missing \"end\" line (truncated file?)");
  }
  return w;
}

void write_witness_file(const Witness& w, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open witness file for writing: " + path);
  }
  out << to_text(w);
  if (!out) {
    throw std::runtime_error("failed writing witness file: " + path);
  }
}

Witness load_witness_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open witness file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_witness(buf.str());
}

ReplayResult replay_witness(const Witness& w) {
  auto factory = make_crash_world_factory(w.spec);
  auto world = factory();
  for (runtime::ProcessId entry : w.schedule) {
    const runtime::ProcessId target = runtime::is_crash_entry(entry)
                                          ? runtime::crash_entry_target(entry)
                                          : entry;
    if (target >= world->scheduler().process_count()) {
      throw std::invalid_argument(
          "witness schedule references process " + std::to_string(target) +
          " but the world has " +
          std::to_string(world->scheduler().process_count()) + " processes");
    }
  }
  ReplayResult res;
  for (runtime::ProcessId entry : w.schedule) {
    runtime::apply_schedule_entry(world->scheduler(), entry);
    if (runtime::is_crash_entry(entry)) {
      ++res.crashes;
    } else {
      ++res.steps;
    }
  }
  const bool complete = world->scheduler().runnable().empty();
  res.verdict = world->verdict(complete);
  const std::string got = res.verdict.value_or("");
  res.matches = one_line(got) == one_line(w.verdict);
  return res;
}

}  // namespace revisim::check
