#include "src/check/explore_core.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>

#include "src/check/state_table.h"

namespace revisim::check::detail {
namespace {

struct Frame {
  std::vector<runtime::ProcessId> choices;  // entries available at this depth
  std::size_t next = 0;                     // next choice to try
  // POR only (unused, empty otherwise).  `fps` holds one footprint per
  // surviving choice, captured at expansion from the poised operations of
  // the node's world (crash entries: opaque); `sleep`/`sleep_fps` hold the
  // node's incoming sleep set.  A sleeping process's poised operation is
  // literally unchanged until it executes, so a footprint captured once at
  // this node stays valid for every later descent through it.
  std::vector<runtime::Footprint> fps;
  std::vector<runtime::ProcessId> sleep;
  std::vector<runtime::Footprint> sleep_fps;
  // Leading entries of `sleep` that count a dependent_wakeup when a
  // conflicting step drops them; entries past this are elder siblings
  // folded in by a donation, which the serial walk drops silently at this
  // frame (they only start counting once they survive a level deeper).
  std::size_t sleep_inherited = 0;
};

// Ledger window: parks per capacity-adaptation decision.
constexpr std::uint64_t kAdaptWindow = 32;
// Acquire misses before a zeroed adaptive pool re-probes parking.
constexpr std::uint64_t kReprobeMisses = 65'536;
constexpr std::size_t kReprobeCapacity = 2;
// Adaptive dedupe: evaluate the prune rate every this-many table lookups...
constexpr std::uint64_t kDedupeAdaptWindow = 4'096;
// ...and stop fingerprinting when fewer than 1-in-this-many lookups pruned.
constexpr std::uint64_t kDedupeAdaptFactor = 64;

}  // namespace

WarmPool::WarmPool(std::size_t capacity, bool adaptive,
                   std::size_t max_capacity)
    : capacity_(std::min(capacity, max_capacity)),
      max_capacity_(max_capacity),
      adaptive_(adaptive) {}

std::unique_ptr<ExplorableWorld> WarmPool::acquire(
    const std::vector<runtime::ProcessId>& target, std::size_t len,
    std::size_t* from_len) {
  std::size_t best = entries_.size();
  std::size_t best_len = 0;
  for (std::size_t i = 0; i < entries_.size();) {
    const auto& applied = entries_[i]->scheduler().applied_schedule();
    const bool live =
        applied.size() <= len &&
        std::equal(applied.begin(), applied.end(), target.begin());
    if (!live) {
      // Off the resumable path: within a job, DFS never returns to an
      // abandoned branch, and across jobs the regions are disjoint - evict.
      entries_[i] = std::move(entries_.back());
      entries_.pop_back();
      if (best == entries_.size()) {
        best = i;  // the best candidate was relocated into slot i
      }
      continue;
    }
    if (best == entries_.size() || applied.size() > best_len) {
      best = i;
      best_len = applied.size();
    }
    ++i;
  }
  if (best >= entries_.size()) {
    if (adaptive_ && capacity_ == 0 && max_capacity_ > 0 &&
        ++misses_ >= kReprobeMisses) {
      capacity_ = std::min(kReprobeCapacity, max_capacity_);
      saved_ = spent_ = window_parks_ = misses_ = 0;
    }
    return nullptr;
  }
  auto world = std::move(entries_[best]);
  entries_[best] = std::move(entries_.back());
  entries_.pop_back();
  *from_len = best_len;
  saved_ += best_len;
  return world;
}

std::unique_ptr<ExplorableWorld> WarmPool::take_at(
    const std::vector<runtime::ProcessId>& target, std::size_t len) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& applied = entries_[i]->scheduler().applied_schedule();
    if (applied.size() == len &&
        std::equal(applied.begin(), applied.end(), target.begin())) {
      auto world = std::move(entries_[i]);
      entries_[i] = std::move(entries_.back());
      entries_.pop_back();
      return world;
    }
  }
  return nullptr;
}

void WarmPool::park(std::unique_ptr<ExplorableWorld> world) {
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(world));
  }
}

void WarmPool::note_spent(std::size_t steps) {
  spent_ += steps;
  if (++window_parks_ >= kAdaptWindow) {
    adapt();
  }
}

void WarmPool::adapt() {
  if (adaptive_ && spent_ > saved_) {
    capacity_ /= 2;  // the window ran at a realized loss
  }
  // Decay rather than reset: persistent trends dominate, one window cannot.
  saved_ /= 2;
  spent_ /= 2;
  window_parks_ = 0;
}

void append_node_choices(const std::vector<runtime::ProcessId>& runnable,
                         std::size_t crashes_used, std::size_t max_crashes,
                         std::optional<runtime::ProcessId> prev,
                         std::vector<runtime::ProcessId>& out) {
  out.assign(runnable.begin(), runnable.end());
  if (crashes_used >= max_crashes) {
    return;
  }
  runtime::ProcessId min_target = 0;
  if (prev && runtime::is_crash_entry(*prev)) {
    min_target = runtime::crash_entry_target(*prev) + 1;
  }
  for (runtime::ProcessId pid : runnable) {
    if (pid >= min_target) {
      out.push_back(runtime::make_crash_entry(pid));
    }
  }
}

SubtreeResult explore_job(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const std::vector<runtime::ProcessId>& prefix,
    const SubtreeOptions& options, const AbortProbe& abort, JobContext* ctx) {
  SubtreeResult res;
  const std::size_t cap = std::max<std::size_t>(options.max_executions, 1);

  // Transposition table: shared when the caller supplies one (the parallel
  // explorer), private otherwise.
  std::optional<StateTable> own_table;
  StateStore* table = nullptr;
  if (options.dedupe_states) {
    table = options.table;
    if (table == nullptr) {
      own_table.emplace(StateTable::Options{.audit = options.dedupe_audit});
      table = &*own_table;
    }
  }
  // `table` may be nulled mid-job by the adaptive kill-switch; final
  // statistics still come from the real table.
  StateStore* stats_table = table;
  std::uint64_t dedupe_lookups = 0;
  std::uint64_t dedupe_prunes = 0;

  // Warm pool: the caller's persistent per-worker pool (adaptive, survives
  // across jobs) or a job-local fixed-capacity one (the serial explorer).
  WarmPool local_pool(ctx != nullptr && ctx->pool != nullptr
                          ? 0
                          : options.warm_worlds,
                      /*adaptive=*/false, options.warm_worlds);
  WarmPool* pool =
      ctx != nullptr && ctx->pool != nullptr ? ctx->pool : &local_pool;
  // Checkpoint recording makes parked worlds self-describing (and portable
  // to other workers); skip its per-step cost when parking can never happen.
  const bool checkpoints = pool->max_capacity() > 0;

  std::vector<runtime::ProcessId> schedule = prefix;
  schedule.reserve(std::max(options.max_steps, prefix.size()));

  // Crash entries in `schedule`, maintained incrementally (the pre-rework
  // engine recounted the whole schedule at every node).
  std::size_t crashes = static_cast<std::size_t>(
      std::count_if(schedule.begin(), schedule.end(),
                    [](runtime::ProcessId e) {
                      return runtime::is_crash_entry(e);
                    }));
  auto sched_push = [&](runtime::ProcessId e) {
    crashes += runtime::is_crash_entry(e) ? 1 : 0;
    schedule.push_back(e);
  };
  auto sched_pop = [&] {
    crashes -= runtime::is_crash_entry(schedule.back()) ? 1 : 0;
    schedule.pop_back();
  };
  auto sched_replace_back = [&](runtime::ProcessId e) {
    crashes -= runtime::is_crash_entry(schedule.back()) ? 1 : 0;
    crashes += runtime::is_crash_entry(e) ? 1 : 0;
    schedule.back() = e;
  };

  // Frames cover local depths only (schedule[prefix.size() + i]).  The frame
  // vector never shrinks, so `choices` buffers keep their capacity across
  // backtracks and steady-state exploration allocates nothing per node.
  std::vector<Frame> stack;
  std::size_t depth = 0;

  auto fresh_world = [&] {
    auto w = factory();
    if (!options.record_traces) {
      w->scheduler().set_recording(false);
    }
    if (checkpoints) {
      w->scheduler().set_checkpointing(true);
    }
    return w;
  };

  // A world that has executed schedule[0..len), resuming from the deepest
  // compatible pool checkpoint when one is available.
  auto world_at = [&](std::size_t len) {
    std::size_t from = 0;
    auto w = pool->acquire(schedule, len, &from);
    if (w == nullptr) {
      w = fresh_world();
      from = 0;
    } else {
      res.replay_steps_saved += from;
    }
    for (std::size_t i = from; i < len; ++i) {
      runtime::apply_schedule_entry(w->scheduler(), schedule[i]);
    }
    return w;
  };

  std::unique_ptr<ExplorableWorld> world;
  if (ctx != nullptr && ctx->warm != nullptr) {
    // A donated checkpoint: it has applied exactly `prefix`.
    world = std::move(ctx->warm);
    assert(world->scheduler().applied_schedule() == prefix);
    res.replay_steps_saved += prefix.size();
  } else {
    world = world_at(prefix.size());
  }

  // Canonical-state callback for collision audit; captures the live world by
  // reference so one std::function serves every node of the walk.  Invoked
  // by the table only in audit mode.
  std::function<std::string()> canonical;
  if (table != nullptr && table->audit()) {
    canonical = [&world] { return world->canonical_state(); };
  }

  // POR: sleep set of the node the loop is about to process, computed on
  // descent from the parent frame's sleep set and already-explored sibling
  // choices.  Empty at the job root (a donated root uses ctx->root_sleep).
  std::vector<runtime::ProcessId> node_sleep;
  std::vector<runtime::Footprint> node_sleep_fps;

  // Sleep set of the child reached via frame choice k:
  //   { e in sleep(node) : indep(e, c_k) }  ++  { c_j : j < k, indep(c_j, c_k) }
  // in that order (the order is deterministic, which keeps the POR+dedupe
  // fingerprint mixing bit-identical between the serial walk and any
  // parallel decomposition).  A crash choice's footprint is opaque, so it
  // conflicts with everything: descending through a crash empties the sleep
  // set, and explored crash siblings never join it.
  auto compute_child_sleep = [&](const Frame& f, std::size_t k) {
    if (!options.por) {
      return;
    }
    node_sleep.clear();
    node_sleep_fps.clear();
    const runtime::Footprint& cfp = f.fps[k];
    for (std::size_t i = 0; i < f.sleep.size(); ++i) {
      if (runtime::footprints_conflict(f.sleep_fps[i], cfp)) {
        if (i < f.sleep_inherited) {
          ++res.dependent_wakeups;
        }
      } else {
        node_sleep.push_back(f.sleep[i]);
        node_sleep_fps.push_back(f.sleep_fps[i]);
      }
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (runtime::is_crash_entry(f.choices[j])) {
        continue;
      }
      if (!runtime::footprints_conflict(f.fps[j], cfp)) {
        node_sleep.push_back(f.choices[j]);
        node_sleep_fps.push_back(f.fps[j]);
      }
    }
  };

  // Offer the shallowest untried sibling suffix to the split hooks.  The
  // donated region is everything lexicographically after the donor's
  // remaining work within that frame's subtree, so the donor's region stays
  // contiguous - the invariant the deterministic merge needs.
  auto try_donate = [&] {
    for (std::size_t i = 0; i < depth; ++i) {
      Frame& fr = stack[i];
      if (fr.next >= fr.choices.size()) {
        continue;
      }
      const std::size_t node_len = prefix.size() + i;
      Donation d;
      d.prefix.assign(schedule.begin(),
                      schedule.begin() + static_cast<std::ptrdiff_t>(node_len));
      d.choices.assign(fr.choices.begin() + static_cast<std::ptrdiff_t>(fr.next),
                       fr.choices.end());
      if (options.por) {
        // Split-node sleep set, then the donor's explored siblings, in the
        // exact order compute_child_sleep would consider them.  Crash
        // entries are skipped: being dependent with everything, they could
        // never survive into a donated branch's sleep set anyway.
        d.sleep.assign(fr.sleep.begin(), fr.sleep.end());
        d.sleep_inherited = fr.sleep_inherited;
        for (std::size_t j = 0; j < fr.next; ++j) {
          if (!runtime::is_crash_entry(fr.choices[j])) {
            d.sleep.push_back(fr.choices[j]);
          }
        }
      }
      d.warm = pool->take_at(schedule, node_len);
      if (ctx->split.take(d)) {
        fr.next = fr.choices.size();
        ++res.donations;
      } else if (d.warm != nullptr) {
        pool->park(std::move(d.warm));  // nobody hungry after all; re-park
      }
      return;
    }
  };

  std::vector<runtime::ProcessId> runnable;
  for (;;) {
    // Consult the transposition table at every node strictly deeper than the
    // job root.  Claim-then-walk: the insert happens before the subtree is
    // walked, so a hit means an identical canonical state already roots a
    // walk (here or, with a shared table, in another worker): its subtree -
    // executions, verdicts and all - is a replay of that one, and it is
    // skipped without counting an execution or evaluating a verdict.
    bool pruned = false;
    if (table != nullptr && schedule.size() > prefix.size()) {
      util::Fingerprint fp = world->fingerprint();
      if (options.por) {
        // Same state, smaller sleep set => strictly larger subtree, so the
        // sleep set is part of the node's identity: mix its entries (order
        // is deterministic, see compute_child_sleep) into the fingerprint.
        for (runtime::ProcessId e : node_sleep) {
          fp.lo ^= (static_cast<std::uint64_t>(e) + 0x9e3779b97f4a7c15ull) *
                   0xff51afd7ed558ccdull;
          fp.hi = fp.hi * 0xc4ceb9fe1a85ec53ull + fp.lo;
        }
      }
      // insert_at carries the node's DFS depth so pipelined stores (the
      // distributed async fingerprint service) can track speculation along
      // the current path; in-process tables ignore it.
      pruned = !table->insert_at(fp, schedule.size(), canonical);
      if (options.dedupe_adaptive) {
        dedupe_lookups++;
        dedupe_prunes += pruned ? 1 : 0;
        if (dedupe_lookups >= kDedupeAdaptWindow) {
          if (dedupe_prunes * kDedupeAdaptFactor < dedupe_lookups) {
            // The window closed at a loss: fingerprinting every node costs
            // more than the prunes it earns.  Stop consulting the table for
            // the rest of this job; claims already made stand (this walk
            // still explores everything it claimed, so racing workers that
            // pruned against those claims stay covered).
            table = nullptr;
            res.dedupe_disabled = true;
          }
          dedupe_lookups = 0;
          dedupe_prunes = 0;
        }
      }
    }
    world->scheduler().runnable_into(runnable);
    const bool complete = runnable.empty();
    const bool root_interior = schedule.size() == prefix.size() &&
                               ctx != nullptr && ctx->root_choices != nullptr;
    bool backtrack = false;
    bool count_execution = false;
    if (!root_interior &&
        (pruned || complete || schedule.size() >= options.max_steps)) {
      backtrack = true;
      count_execution = !pruned;
      if (pruned) {
        ++res.subtrees_pruned;
      }
    } else {
      // Expand.
      if (depth == stack.size()) {
        stack.emplace_back();
      }
      Frame& f = stack[depth];
      if (depth == 0 && ctx != nullptr && ctx->root_choices != nullptr) {
        // A donated job: the split node's untried choices, verbatim.  The
        // donor already expanded this node (and already sleep-filtered the
        // choices), so leaf/table checks are skipped above (root_interior) -
        // by construction it branches.
        f.choices.assign(ctx->root_choices->begin(), ctx->root_choices->end());
        if (options.por) {
          f.sleep.clear();
          f.sleep_fps.clear();
          f.sleep_inherited = ctx->root_sleep_inherited;
          if (ctx->root_sleep != nullptr) {
            for (runtime::ProcessId e : *ctx->root_sleep) {
              // Re-derive the donated entries' footprints from this job's
              // own root world: a sleeping process's poised operation is
              // unchanged, so these equal the donor's bit for bit.
              f.sleep.push_back(e);
              f.sleep_fps.push_back(world->scheduler().poised_footprint(e));
            }
          }
        }
      } else {
        std::optional<runtime::ProcessId> prev;
        if (!schedule.empty()) {
          prev = schedule.back();
        }
        append_node_choices(runnable, crashes, options.max_crashes, prev,
                            f.choices);
        if (options.por) {
          f.sleep.assign(node_sleep.begin(), node_sleep.end());
          f.sleep_fps.assign(node_sleep_fps.begin(), node_sleep_fps.end());
          // Every entry here survived a compute_child_sleep filter, so all
          // of them count as wakeups when dropped (elders included: they
          // became full sleepers the moment they survived a level).
          f.sleep_inherited = f.sleep.size();
          if (!f.sleep.empty()) {
            // Skip asleep choices: every schedule through them is a step
            // swap of one through an already-explored sibling.  (Crash
            // entries never match - sleep sets hold plain step entries.)
            std::size_t out = 0;
            for (std::size_t j = 0; j < f.choices.size(); ++j) {
              bool asleep = false;
              for (runtime::ProcessId e : f.sleep) {
                if (e == f.choices[j]) {
                  asleep = true;
                  break;
                }
              }
              if (asleep) {
                ++res.por_skipped;
              } else {
                f.choices[out++] = f.choices[j];
              }
            }
            f.choices.resize(out);
          }
        }
      }
      if (f.choices.empty()) {
        // Sleep-blocked interior node: everything enabled here is asleep.
        // The subtree is fully covered by earlier siblings, so backtrack
        // without counting an execution or evaluating a verdict.
        backtrack = true;
      } else {
        if (options.por) {
          f.fps.clear();
          auto& sched = world->scheduler();
          for (runtime::ProcessId e : f.choices) {
            runtime::Footprint fp =
                runtime::is_crash_entry(e)
                    ? runtime::Footprint::opaque_footprint()
                    : sched.poised_footprint(e);
            res.footprint_bytes += fp.byte_size();
            f.fps.push_back(fp);
          }
        }
        f.next = 1;
        ++depth;
        compute_child_sleep(f, 0);
        sched_push(f.choices[0]);
        // One cheap steal poll per node expansion: donate the shallowest
        // untried sibling suffix (possibly this very frame's) when another
        // worker is hungry.
        if (ctx != nullptr && ctx->split.want && ctx->split.want()) {
          try_donate();
        }
        if (stack[depth - 1].next < stack[depth - 1].choices.size() &&
            pool->want_park()) {
          // Keep this world warm at the branch node: the next backtrack here
          // resumes it with one step instead of a full rebuild.  The descent
          // world is rebuilt from scratch; the pool's ledger charges that
          // rebuild against realized resume savings and adapts its capacity.
          pool->park(std::move(world));
          world = fresh_world();
          for (std::size_t i = 0; i + 1 < schedule.size(); ++i) {
            runtime::apply_schedule_entry(world->scheduler(), schedule[i]);
          }
          pool->note_spent(schedule.size() - 1);
        }
        runtime::apply_schedule_entry(world->scheduler(), schedule.back());
        continue;
      }
    }
    assert(backtrack);
    if (count_execution) {
      ++res.executions;
      if (options.live_executions != nullptr) {
        options.live_executions->store(res.executions,
                                       std::memory_order_relaxed);
      }
      if (auto v = world->verdict(complete)) {
        res.violation = std::move(v);
        res.witness = schedule;
        res.violation_index = res.executions;
        if (stats_table != nullptr) {
          res.states_seen = stats_table->states();
        }
        return res;
      }
    }
    // Backtrack to the deepest frame with an untried choice.  The order
    // matters for cap accounting: a walk that ends exactly at the cap with
    // nothing left to explore is exhausted, not truncated.
    while (depth > 0 &&
           stack[depth - 1].next >= stack[depth - 1].choices.size()) {
      --depth;
      sched_pop();
    }
    if (depth == 0) {
      if (stats_table != nullptr) {
        res.states_seen = stats_table->states();
      }
      return res;
    }
    if (res.executions >= cap || (abort && abort())) {
      res.fully_explored = false;
      if (stats_table != nullptr) {
        res.states_seen = stats_table->states();
      }
      return res;
    }
    Frame& f = stack[depth - 1];
    compute_child_sleep(f, f.next);
    sched_replace_back(f.choices[f.next++]);
    world = world_at(schedule.size());
  }
}

SubtreeResult explore_subtree(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const std::vector<runtime::ProcessId>& prefix,
    const SubtreeOptions& options, const AbortProbe& abort) {
  return explore_job(factory, prefix, options, abort, nullptr);
}

}  // namespace revisim::check::detail
