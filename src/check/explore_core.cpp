#include "src/check/explore_core.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/check/state_table.h"

namespace revisim::check::detail {
namespace {

struct Frame {
  std::vector<runtime::ProcessId> choices;  // runnable at this depth
  std::size_t next = 0;                     // next choice to try
};

// A world parked at a branch node: it has executed schedule[0..len) and is
// poised to take any of the node's untried choices with a single step.
struct ParkedWorld {
  std::size_t len = 0;
  std::unique_ptr<ExplorableWorld> world;
};

}  // namespace

void append_node_choices(const std::vector<runtime::ProcessId>& runnable,
                         std::size_t crashes_used, std::size_t max_crashes,
                         std::optional<runtime::ProcessId> prev,
                         std::vector<runtime::ProcessId>& out) {
  out.assign(runnable.begin(), runnable.end());
  if (crashes_used >= max_crashes) {
    return;
  }
  runtime::ProcessId min_target = 0;
  if (prev && runtime::is_crash_entry(*prev)) {
    min_target = runtime::crash_entry_target(*prev) + 1;
  }
  for (runtime::ProcessId pid : runnable) {
    if (pid >= min_target) {
      out.push_back(runtime::make_crash_entry(pid));
    }
  }
}

SubtreeResult explore_subtree(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const std::vector<runtime::ProcessId>& prefix,
    const SubtreeOptions& options, const AbortProbe& abort) {
  SubtreeResult res;
  const std::size_t cap = std::max<std::size_t>(options.max_executions, 1);

  // Transposition table: shared when the caller supplies one (the parallel
  // explorer), private otherwise.
  std::optional<StateTable> own_table;
  StateTable* table = nullptr;
  if (options.dedupe_states) {
    table = options.table;
    if (table == nullptr) {
      own_table.emplace(StateTable::Options{.audit = options.dedupe_audit});
      table = &*own_table;
    }
  }

  std::vector<runtime::ProcessId> schedule = prefix;
  schedule.reserve(std::max(options.max_steps, prefix.size()));

  // Frames cover local depths only (schedule[prefix.size() + i]).  The frame
  // vector never shrinks, so `choices` buffers keep their capacity across
  // backtracks and steady-state exploration allocates nothing per node.
  std::vector<Frame> stack;
  std::size_t depth = 0;

  // Warm worlds parked at branch nodes of the current path, by increasing
  // len; all of them have executed a prefix of `schedule`.
  std::vector<ParkedWorld> pool;

  auto fresh_world = [&] {
    auto w = factory();
    if (!options.record_traces) {
      w->scheduler().set_recording(false);
    }
    return w;
  };

  // A world that has executed schedule[0..len), resuming from the deepest
  // parked ancestor when one is available.
  auto world_at = [&](std::size_t len) {
    std::unique_ptr<ExplorableWorld> w;
    std::size_t from = 0;
    if (!pool.empty() && pool.back().len <= len) {
      from = pool.back().len;
      w = std::move(pool.back().world);
      pool.pop_back();
    } else {
      w = fresh_world();
    }
    for (std::size_t i = from; i < len; ++i) {
      runtime::apply_schedule_entry(w->scheduler(), schedule[i]);
    }
    return w;
  };

  auto world = world_at(prefix.size());

  // Canonical-state callback for collision audit; captures the live world by
  // reference so one std::function serves every node of the walk.  Invoked
  // by the table only in audit mode.
  std::function<std::string()> canonical;
  if (table != nullptr && table->audit()) {
    canonical = [&world] { return world->canonical_state(); };
  }

  std::vector<runtime::ProcessId> runnable;
  for (;;) {
    // Consult the transposition table at every node strictly deeper than the
    // prefix root.  A hit means an identical canonical state already rooted
    // a walk (here or, with a shared table, in another worker): its subtree
    // - executions, verdicts and all - is a replay of that one, so it is
    // skipped without counting an execution or evaluating a verdict.
    bool pruned = false;
    if (table != nullptr && schedule.size() > prefix.size()) {
      pruned = !table->insert(world->fingerprint(), canonical);
    }
    world->scheduler().runnable_into(runnable);
    const bool complete = runnable.empty();
    if (pruned || complete || schedule.size() >= options.max_steps) {
      if (pruned) {
        ++res.subtrees_pruned;
      } else {
        ++res.executions;
        if (auto v = world->verdict(complete)) {
          res.violation = std::move(v);
          res.witness = schedule;
          res.violation_index = res.executions;
          if (table != nullptr) {
            res.states_seen = table->states();
          }
          return res;
        }
      }
      // Backtrack to the deepest frame with an untried choice.  The order
      // matters for cap accounting: a walk that ends exactly at the cap with
      // nothing left to explore is exhausted, not truncated.
      while (depth > 0 && stack[depth - 1].next >= stack[depth - 1].choices.size()) {
        --depth;
        schedule.pop_back();
      }
      if (depth == 0) {
        if (table != nullptr) {
          res.states_seen = table->states();
        }
        return res;
      }
      if (res.executions >= cap || (abort && abort())) {
        res.fully_explored = false;
        if (table != nullptr) {
          res.states_seen = table->states();
        }
        return res;
      }
      Frame& f = stack[depth - 1];
      schedule.back() = f.choices[f.next++];
      // Parked worlds at or past the divergence point executed the old
      // branch; shallower ones still lie on the new schedule.
      while (!pool.empty() && pool.back().len >= schedule.size()) {
        pool.pop_back();
      }
      world = world_at(schedule.size());
      continue;
    }
    // Descend along the first untried choice.
    if (depth == stack.size()) {
      stack.emplace_back();
    }
    Frame& f = stack[depth];
    const std::size_t crashes_used =
        options.max_crashes == 0
            ? 0
            : static_cast<std::size_t>(
                  std::count_if(schedule.begin(), schedule.end(),
                                [](runtime::ProcessId e) {
                                  return runtime::is_crash_entry(e);
                                }));
    std::optional<runtime::ProcessId> prev;
    if (!schedule.empty()) {
      prev = schedule.back();
    }
    append_node_choices(runnable, crashes_used, options.max_crashes, prev,
                        f.choices);
    f.next = 1;
    ++depth;
    const bool park = f.choices.size() >= 2 && pool.size() < options.warm_worlds;
    schedule.push_back(f.choices[0]);
    if (park) {
      // Keep this world warm at the branch node: the next backtrack here
      // resumes it with one step instead of a full rebuild.  The descent
      // world is rebuilt from scratch, so parking trades replay now for
      // replay later - it rearranges cost towards the (cheap) live path
      // without ever exceeding the naive rebuild total.
      pool.push_back(ParkedWorld{schedule.size() - 1, std::move(world)});
      world = fresh_world();
      for (std::size_t i = 0; i + 1 < schedule.size(); ++i) {
        runtime::apply_schedule_entry(world->scheduler(), schedule[i]);
      }
    }
    runtime::apply_schedule_entry(world->scheduler(), schedule.back());
  }
}

}  // namespace revisim::check::detail
