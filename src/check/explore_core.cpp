#include "src/check/explore_core.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <utility>

#include "src/check/state_table.h"

namespace revisim::check::detail {
namespace {

struct Frame {
  std::vector<runtime::ProcessId> choices;  // entries available at this depth
  std::size_t next = 0;                     // next choice to try
};

// Ledger window: parks per capacity-adaptation decision.
constexpr std::uint64_t kAdaptWindow = 32;
// Acquire misses before a zeroed adaptive pool re-probes parking.
constexpr std::uint64_t kReprobeMisses = 65'536;
constexpr std::size_t kReprobeCapacity = 2;

}  // namespace

WarmPool::WarmPool(std::size_t capacity, bool adaptive,
                   std::size_t max_capacity)
    : capacity_(std::min(capacity, max_capacity)),
      max_capacity_(max_capacity),
      adaptive_(adaptive) {}

std::unique_ptr<ExplorableWorld> WarmPool::acquire(
    const std::vector<runtime::ProcessId>& target, std::size_t len,
    std::size_t* from_len) {
  std::size_t best = entries_.size();
  std::size_t best_len = 0;
  for (std::size_t i = 0; i < entries_.size();) {
    const auto& applied = entries_[i]->scheduler().applied_schedule();
    const bool live =
        applied.size() <= len &&
        std::equal(applied.begin(), applied.end(), target.begin());
    if (!live) {
      // Off the resumable path: within a job, DFS never returns to an
      // abandoned branch, and across jobs the regions are disjoint - evict.
      entries_[i] = std::move(entries_.back());
      entries_.pop_back();
      if (best == entries_.size()) {
        best = i;  // the best candidate was relocated into slot i
      }
      continue;
    }
    if (best == entries_.size() || applied.size() > best_len) {
      best = i;
      best_len = applied.size();
    }
    ++i;
  }
  if (best >= entries_.size()) {
    if (adaptive_ && capacity_ == 0 && max_capacity_ > 0 &&
        ++misses_ >= kReprobeMisses) {
      capacity_ = std::min(kReprobeCapacity, max_capacity_);
      saved_ = spent_ = window_parks_ = misses_ = 0;
    }
    return nullptr;
  }
  auto world = std::move(entries_[best]);
  entries_[best] = std::move(entries_.back());
  entries_.pop_back();
  *from_len = best_len;
  saved_ += best_len;
  return world;
}

std::unique_ptr<ExplorableWorld> WarmPool::take_at(
    const std::vector<runtime::ProcessId>& target, std::size_t len) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& applied = entries_[i]->scheduler().applied_schedule();
    if (applied.size() == len &&
        std::equal(applied.begin(), applied.end(), target.begin())) {
      auto world = std::move(entries_[i]);
      entries_[i] = std::move(entries_.back());
      entries_.pop_back();
      return world;
    }
  }
  return nullptr;
}

void WarmPool::park(std::unique_ptr<ExplorableWorld> world) {
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(world));
  }
}

void WarmPool::note_spent(std::size_t steps) {
  spent_ += steps;
  if (++window_parks_ >= kAdaptWindow) {
    adapt();
  }
}

void WarmPool::adapt() {
  if (adaptive_ && spent_ > saved_) {
    capacity_ /= 2;  // the window ran at a realized loss
  }
  // Decay rather than reset: persistent trends dominate, one window cannot.
  saved_ /= 2;
  spent_ /= 2;
  window_parks_ = 0;
}

void append_node_choices(const std::vector<runtime::ProcessId>& runnable,
                         std::size_t crashes_used, std::size_t max_crashes,
                         std::optional<runtime::ProcessId> prev,
                         std::vector<runtime::ProcessId>& out) {
  out.assign(runnable.begin(), runnable.end());
  if (crashes_used >= max_crashes) {
    return;
  }
  runtime::ProcessId min_target = 0;
  if (prev && runtime::is_crash_entry(*prev)) {
    min_target = runtime::crash_entry_target(*prev) + 1;
  }
  for (runtime::ProcessId pid : runnable) {
    if (pid >= min_target) {
      out.push_back(runtime::make_crash_entry(pid));
    }
  }
}

SubtreeResult explore_job(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const std::vector<runtime::ProcessId>& prefix,
    const SubtreeOptions& options, const AbortProbe& abort, JobContext* ctx) {
  SubtreeResult res;
  const std::size_t cap = std::max<std::size_t>(options.max_executions, 1);

  // Transposition table: shared when the caller supplies one (the parallel
  // explorer), private otherwise.
  std::optional<StateTable> own_table;
  StateTable* table = nullptr;
  if (options.dedupe_states) {
    table = options.table;
    if (table == nullptr) {
      own_table.emplace(StateTable::Options{.audit = options.dedupe_audit});
      table = &*own_table;
    }
  }

  // Warm pool: the caller's persistent per-worker pool (adaptive, survives
  // across jobs) or a job-local fixed-capacity one (the serial explorer).
  WarmPool local_pool(ctx != nullptr && ctx->pool != nullptr
                          ? 0
                          : options.warm_worlds,
                      /*adaptive=*/false, options.warm_worlds);
  WarmPool* pool =
      ctx != nullptr && ctx->pool != nullptr ? ctx->pool : &local_pool;
  // Checkpoint recording makes parked worlds self-describing (and portable
  // to other workers); skip its per-step cost when parking can never happen.
  const bool checkpoints = pool->max_capacity() > 0;

  std::vector<runtime::ProcessId> schedule = prefix;
  schedule.reserve(std::max(options.max_steps, prefix.size()));

  // Crash entries in `schedule`, maintained incrementally (the pre-rework
  // engine recounted the whole schedule at every node).
  std::size_t crashes = static_cast<std::size_t>(
      std::count_if(schedule.begin(), schedule.end(),
                    [](runtime::ProcessId e) {
                      return runtime::is_crash_entry(e);
                    }));
  auto sched_push = [&](runtime::ProcessId e) {
    crashes += runtime::is_crash_entry(e) ? 1 : 0;
    schedule.push_back(e);
  };
  auto sched_pop = [&] {
    crashes -= runtime::is_crash_entry(schedule.back()) ? 1 : 0;
    schedule.pop_back();
  };
  auto sched_replace_back = [&](runtime::ProcessId e) {
    crashes -= runtime::is_crash_entry(schedule.back()) ? 1 : 0;
    crashes += runtime::is_crash_entry(e) ? 1 : 0;
    schedule.back() = e;
  };

  // Frames cover local depths only (schedule[prefix.size() + i]).  The frame
  // vector never shrinks, so `choices` buffers keep their capacity across
  // backtracks and steady-state exploration allocates nothing per node.
  std::vector<Frame> stack;
  std::size_t depth = 0;

  auto fresh_world = [&] {
    auto w = factory();
    if (!options.record_traces) {
      w->scheduler().set_recording(false);
    }
    if (checkpoints) {
      w->scheduler().set_checkpointing(true);
    }
    return w;
  };

  // A world that has executed schedule[0..len), resuming from the deepest
  // compatible pool checkpoint when one is available.
  auto world_at = [&](std::size_t len) {
    std::size_t from = 0;
    auto w = pool->acquire(schedule, len, &from);
    if (w == nullptr) {
      w = fresh_world();
      from = 0;
    } else {
      res.replay_steps_saved += from;
    }
    for (std::size_t i = from; i < len; ++i) {
      runtime::apply_schedule_entry(w->scheduler(), schedule[i]);
    }
    return w;
  };

  std::unique_ptr<ExplorableWorld> world;
  if (ctx != nullptr && ctx->warm != nullptr) {
    // A donated checkpoint: it has applied exactly `prefix`.
    world = std::move(ctx->warm);
    assert(world->scheduler().applied_schedule() == prefix);
    res.replay_steps_saved += prefix.size();
  } else {
    world = world_at(prefix.size());
  }

  // Canonical-state callback for collision audit; captures the live world by
  // reference so one std::function serves every node of the walk.  Invoked
  // by the table only in audit mode.
  std::function<std::string()> canonical;
  if (table != nullptr && table->audit()) {
    canonical = [&world] { return world->canonical_state(); };
  }

  // Offer the shallowest untried sibling suffix to the split hooks.  The
  // donated region is everything lexicographically after the donor's
  // remaining work within that frame's subtree, so the donor's region stays
  // contiguous - the invariant the deterministic merge needs.
  auto try_donate = [&] {
    for (std::size_t i = 0; i < depth; ++i) {
      Frame& fr = stack[i];
      if (fr.next >= fr.choices.size()) {
        continue;
      }
      const std::size_t node_len = prefix.size() + i;
      Donation d;
      d.prefix.assign(schedule.begin(),
                      schedule.begin() + static_cast<std::ptrdiff_t>(node_len));
      d.choices.assign(fr.choices.begin() + static_cast<std::ptrdiff_t>(fr.next),
                       fr.choices.end());
      d.warm = pool->take_at(schedule, node_len);
      if (ctx->split.take(d)) {
        fr.next = fr.choices.size();
        ++res.donations;
      } else if (d.warm != nullptr) {
        pool->park(std::move(d.warm));  // nobody hungry after all; re-park
      }
      return;
    }
  };

  std::vector<runtime::ProcessId> runnable;
  for (;;) {
    // Consult the transposition table at every node strictly deeper than the
    // job root.  Claim-then-walk: the insert happens before the subtree is
    // walked, so a hit means an identical canonical state already roots a
    // walk (here or, with a shared table, in another worker): its subtree -
    // executions, verdicts and all - is a replay of that one, and it is
    // skipped without counting an execution or evaluating a verdict.
    bool pruned = false;
    if (table != nullptr && schedule.size() > prefix.size()) {
      pruned = !table->insert(world->fingerprint(), canonical);
    }
    world->scheduler().runnable_into(runnable);
    const bool complete = runnable.empty();
    const bool root_interior = schedule.size() == prefix.size() &&
                               ctx != nullptr && ctx->root_choices != nullptr;
    if (!root_interior &&
        (pruned || complete || schedule.size() >= options.max_steps)) {
      if (pruned) {
        ++res.subtrees_pruned;
      } else {
        ++res.executions;
        if (options.live_executions != nullptr) {
          options.live_executions->store(res.executions,
                                         std::memory_order_relaxed);
        }
        if (auto v = world->verdict(complete)) {
          res.violation = std::move(v);
          res.witness = schedule;
          res.violation_index = res.executions;
          if (table != nullptr) {
            res.states_seen = table->states();
          }
          return res;
        }
      }
      // Backtrack to the deepest frame with an untried choice.  The order
      // matters for cap accounting: a walk that ends exactly at the cap with
      // nothing left to explore is exhausted, not truncated.
      while (depth > 0 &&
             stack[depth - 1].next >= stack[depth - 1].choices.size()) {
        --depth;
        sched_pop();
      }
      if (depth == 0) {
        if (table != nullptr) {
          res.states_seen = table->states();
        }
        return res;
      }
      if (res.executions >= cap || (abort && abort())) {
        res.fully_explored = false;
        if (table != nullptr) {
          res.states_seen = table->states();
        }
        return res;
      }
      Frame& f = stack[depth - 1];
      sched_replace_back(f.choices[f.next++]);
      world = world_at(schedule.size());
      continue;
    }
    // Descend along the first untried choice.
    if (depth == stack.size()) {
      stack.emplace_back();
    }
    Frame& f = stack[depth];
    if (depth == 0 && ctx != nullptr && ctx->root_choices != nullptr) {
      // A donated job: the split node's untried choices, verbatim.  The
      // donor already expanded this node, so leaf/table checks are skipped
      // above (root_interior) - by construction it branches.
      f.choices.assign(ctx->root_choices->begin(), ctx->root_choices->end());
    } else {
      std::optional<runtime::ProcessId> prev;
      if (!schedule.empty()) {
        prev = schedule.back();
      }
      append_node_choices(runnable, crashes, options.max_crashes, prev,
                          f.choices);
    }
    f.next = 1;
    ++depth;
    sched_push(f.choices[0]);
    // One cheap steal poll per node expansion: donate the shallowest
    // untried sibling suffix (possibly this very frame's) when another
    // worker is hungry.
    if (ctx != nullptr && ctx->split.want && ctx->split.want()) {
      try_donate();
    }
    if (stack[depth - 1].next < stack[depth - 1].choices.size() &&
        pool->want_park()) {
      // Keep this world warm at the branch node: the next backtrack here
      // resumes it with one step instead of a full rebuild.  The descent
      // world is rebuilt from scratch; the pool's ledger charges that
      // rebuild against realized resume savings and adapts its capacity.
      pool->park(std::move(world));
      world = fresh_world();
      for (std::size_t i = 0; i + 1 < schedule.size(); ++i) {
        runtime::apply_schedule_entry(world->scheduler(), schedule[i]);
      }
      pool->note_spent(schedule.size() - 1);
    }
    runtime::apply_schedule_entry(world->scheduler(), schedule.back());
  }
}

SubtreeResult explore_subtree(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const std::vector<runtime::ProcessId>& prefix,
    const SubtreeOptions& options, const AbortProbe& abort) {
  return explore_job(factory, prefix, options, abort, nullptr);
}

}  // namespace revisim::check::detail
