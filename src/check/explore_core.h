// Shared DFS engine behind explore_schedules and the parallel explorer.
//
// explore_job enumerates, in lexicographic (DFS preorder) schedule order,
// every execution whose schedule extends a given prefix - optionally
// restricted to an explicit list of first-branch choices at the prefix node
// (a donated stack suffix).  The serial explorer is the empty-prefix
// instance; the work-stealing parallel explorer runs one instance per job
// and lets busy instances *split their own stack* into new jobs through the
// SplitHooks.  Keeping a single engine is what makes the serial/parallel
// parity guarantee hold by construction.
//
// Cost model.  Coroutine worlds cannot be copied or rewound, so a world's
// lifetime covers exactly one root-to-leaf path and evaluating E executions
// of depth <= D necessarily costs E factory calls and up to E*D steps - the
// replay explorer already meets that lower bound (DESIGN.md finding 7).
// What this engine adds are the constant-factor levers: worlds run with
// trace recording off (Scheduler fast mode), the runnable() buffer and the
// DFS frames are reused instead of reallocated per node, and a WarmPool of
// checkpoint worlds parked at branch nodes turns backtracks into resumes.
// Parking is *not* free - finding 7 makes it exactly cost-neutral in steps
// at best, and stale evictions make it a measured net loss on deep
// low-branching trees - so the pool keeps a realized savings-vs-spend
// ledger and, in adaptive mode, resizes itself to what the workload
// actually earns (down to zero).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/check/model_check.h"

namespace revisim::check {
class StateStore;
}  // namespace revisim::check

namespace revisim::check::detail {

// A pool of warm checkpoint worlds.  Every entry has scheduler checkpoint
// recording on (Scheduler::applied_schedule), so entries are portable
// across jobs: acquire() validates an entry against the target schedule
// before resuming it, and take_at() extracts the entry sitting at an exact
// split node for donation to another worker.
//
// Adaptive mode keeps a ledger of replay steps actually saved by resumes
// against steps spent building park replacements; when a window closes in
// the red the capacity halves - possibly to zero, since parking is a
// measured net loss on deep low-branching trees (the spend is immediate,
// the saving depends on the entry being resumed before it goes stale).  A
// zeroed pool re-probes with a small capacity after a long run of misses,
// so a workload whose shape changes can earn parking back.
class WarmPool {
 public:
  WarmPool(std::size_t capacity, bool adaptive, std::size_t max_capacity);

  // Deepest entry whose applied schedule is a prefix of target[0..len).
  // Returns null on miss; on a hit, *from_len is the entry's depth (the
  // replay steps saved).  Entries that can no longer match the target are
  // evicted in passing.
  std::unique_ptr<ExplorableWorld> acquire(
      const std::vector<runtime::ProcessId>& target, std::size_t len,
      std::size_t* from_len);

  // Entry whose applied schedule is exactly target[0..len), for warm-world
  // donation at a split node.  Null if the pool holds none.
  std::unique_ptr<ExplorableWorld> take_at(
      const std::vector<runtime::ProcessId>& target, std::size_t len);

  // True when a park would currently be accepted.
  [[nodiscard]] bool want_park() const noexcept {
    return entries_.size() < capacity_;
  }
  void park(std::unique_ptr<ExplorableWorld> world);

  // Ledger: steps spent rebuilding a parked world's replacement.  Savings
  // are recorded by acquire().  Each closed window adapts the capacity.
  void note_spent(std::size_t steps);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t max_capacity() const noexcept {
    return max_capacity_;
  }
  [[nodiscard]] std::uint64_t steps_saved() const noexcept { return saved_; }

 private:
  void adapt();

  std::vector<std::unique_ptr<ExplorableWorld>> entries_;
  std::size_t capacity_;
  std::size_t max_capacity_;
  bool adaptive_;
  std::uint64_t saved_ = 0;
  std::uint64_t spent_ = 0;
  std::uint64_t window_parks_ = 0;
  std::uint64_t misses_ = 0;  // acquire misses while the pool is zeroed
};

struct SubtreeOptions {
  std::size_t max_steps = 64;            // depth bound, prefix included
  std::size_t max_executions = 500'000;  // execution cap (values < 1 act as 1)
  bool record_traces = false;            // leave Scheduler fast mode off?
  std::size_t warm_worlds = 8;           // checkpoint pool capacity (0 = off)
  // Crash branching: at every node, besides one step per runnable process,
  // the walk also branches on "crash p here" for each runnable p while the
  // schedule holds fewer than `max_crashes` crash entries.  Crash entries
  // occupy schedule slots (they count toward max_steps) and sort after all
  // step entries, so crash-free schedules are enumerated first and the
  // witness stays the lexicographically smallest violating schedule.  0
  // disables crash branching and reproduces the crash-free explorer.
  std::size_t max_crashes = 0;
  // Transposition pruning: consult a visited-state table at every node
  // strictly deeper than the job root and skip subtrees rooted at states
  // already seen.  The insert is claim-then-walk: the fingerprint goes in
  // *before* the subtree is walked, so with a shared table a racing worker
  // observes the claim and prunes instead of re-exploring.  Verdict-
  // preserving by construction (equal states generate identical subtrees),
  // but `executions` and the reported witness may legitimately differ from
  // an undeduped walk - a violation first reached through a pruned
  // transposition is reported through the schedule that visited its state
  // first.  The job root itself is never consulted: it was claimed by
  // whoever arrived at it first (the donor, for stolen jobs; nobody, for
  // the global root), so a root check would make every job prune itself.
  bool dedupe_states = false;
  // Retain full canonical states and fail loudly on a 128-bit collision
  // (only read when this call creates its own table, i.e. `table == null`).
  bool dedupe_audit = false;
  // Shared visited-state store (parallel explorer: one StateTable; the
  // distributed worker: a remote-backed store).  Null with dedupe_states
  // set means the walk creates a private table for its own lifetime.
  StateStore* table = nullptr;
  // Adaptive dedupe kill-switch (WarmPool-style spent-vs-saved ledger):
  // fingerprinting every node is pure overhead on workloads whose states
  // are all distinct, so when a window of kDedupeAdaptWindow lookups closes
  // with a prune rate below 1/kDedupeAdaptFactor, the walk stops consulting
  // the table for the rest of the job and reports dedupe_disabled.  Claims
  // already inserted stand (claim-then-walk stays sound: this walk still
  // explores everything it claimed).  Requires dedupe_states.
  bool dedupe_adaptive = false;
  // Sleep-set partial-order reduction.  After the walk explores choice c at
  // a node, c joins the *sleep set* of every later sibling branch and stays
  // asleep down that branch until a step with a conflicting footprint
  // executes (footprint.h defines conflicts; crash entries are dependent
  // with everything, so they never sleep and executing one wakes all).  A
  // choice found asleep at its node is skipped - the schedules it leads to
  // are step-swap equivalent to already-explored ones - and a node whose
  // every enabled choice is asleep backtracks without counting an execution
  // or evaluating a verdict.  The lexicographically least representative of
  // every Mazurkiewicz trace is never pruned, so for trace-invariant
  // verdicts (any predicate of the final state) the verdict AND the
  // lex-smallest witness match the unreduced walk exactly.  Composes with
  // dedupe_states: the sleep set is mixed into the node fingerprint, since
  // the same state under a smaller sleep set roots a strictly larger
  // subtree.
  bool por = false;
  // Live execution counter, published after every counted execution.  The
  // parallel explorer sums these across lexicographically earlier jobs to
  // bound the serial execution count before a job - the cap coupling that
  // lets capped searches abort provably-unreadable work.
  std::atomic<std::uint64_t>* live_executions = nullptr;
};

// A donated stack suffix: all untried choices of the donor's shallowest
// branching frame, packaged as an independent job.  `prefix` is the path to
// the split node; `choices` are its untried schedule entries in DFS order
// (so the donated region is a contiguous lexicographic suffix of the
// donor's region - the invariant the deterministic merge rests on).
// `warm`, when present, is a checkpoint world that has applied exactly
// `prefix` (checkpoint recording on), saving the thief the root replay.
struct Donation {
  std::vector<runtime::ProcessId> prefix;
  std::vector<runtime::ProcessId> choices;
  std::unique_ptr<ExplorableWorld> warm;
  // POR only: the split node's sleep set followed by the donor's already-
  // explored sibling choices (crash entries excluded - they are dependent
  // with everything, so they could never survive into a child sleep set).
  // Pure pid values: a sleeping process's poised operation is untouched by
  // definition, so the thief re-derives each entry's footprint from its own
  // replayed root world, and the donated branches prune exactly as they
  // would have in the donor - the serial/parallel parity guarantee extends
  // to sleep sets by construction.
  std::vector<runtime::ProcessId> sleep;
  // How many leading entries of `sleep` are the split node's *inherited*
  // sleepers (the rest are the donor's explored elder siblings).  The serial
  // walk counts a dependent_wakeup only when a conflicting step drops an
  // inherited sleeper; a dependent elder is silently not added (it only
  // starts counting once it survives into a deeper frame).  The thief must
  // preserve that split or its wakeup count inflates past the serial one.
  std::size_t sleep_inherited = 0;
};

// Work-stealing hooks, polled once per node expansion.  `want` must be
// cheap (an atomic hint load); when it returns true the engine carves off
// the shallowest untried sibling suffix and offers it to `take`, which
// returns true to accept (the donor then skips those choices) or false to
// decline (the donor keeps them; `donation` is handed back untouched except
// that the caller must re-park `donation.warm` if it was populated - the
// engine does this itself).
struct SplitHooks {
  std::function<bool()> want;
  std::function<bool(Donation&)> take;
};

// Per-job context beyond the plain options: an explicit first-branch choice
// list (for donated jobs), an optional warm start world that has applied
// exactly `prefix`, a persistent per-worker pool, and the split hooks.
struct JobContext {
  const std::vector<runtime::ProcessId>* root_choices = nullptr;
  // POR only: Donation::sleep for this job's split node (null = empty).
  const std::vector<runtime::ProcessId>* root_sleep = nullptr;
  // Donation::sleep_inherited for root_sleep (wakeup-counting prefix).
  std::size_t root_sleep_inherited = 0;
  std::unique_ptr<ExplorableWorld> warm;
  WarmPool* pool = nullptr;  // null: the engine builds a fixed local pool
  SplitHooks split;
};

struct SubtreeResult {
  std::size_t executions = 0;
  // False iff the cap (or an abort) truncated the walk while unexplored
  // schedules remained; a walk that ends exactly when the subtree does is
  // fully explored even if it ends at the cap.
  bool fully_explored = true;
  std::optional<std::string> violation;      // first violation in lex order
  std::vector<runtime::ProcessId> witness;   // its full schedule (with prefix)
  std::size_t violation_index = 0;           // 1-based execution count at it
  std::size_t subtrees_pruned = 0;           // transposition hits in this walk
  // Distinct states in the consulted table when the walk ended (a global
  // snapshot if the table was shared; 0 with dedupe off).
  std::size_t states_seen = 0;
  std::size_t donations = 0;                 // jobs split off via SplitHooks
  std::uint64_t replay_steps_saved = 0;      // steps skipped via warm worlds
  // POR: choices skipped because they were asleep (each is a whole subtree
  // of step-swap-equivalent schedules never walked).
  std::size_t por_skipped = 0;
  // POR: sleep entries dropped on descent because the chosen step's
  // footprint conflicted with theirs.
  std::size_t dependent_wakeups = 0;
  // POR: serialized bytes of the footprints captured at node expansions.
  std::uint64_t footprint_bytes = 0;
  // Adaptive dedupe stopped fingerprinting mid-job (prune rate too low).
  bool dedupe_disabled = false;
};

// Polled between executions; returning true abandons the walk (the caller
// decides whether the partial result is usable).  Used by the parallel
// explorer to cancel subtrees that can no longer affect the merged outcome
// and to enforce the wall-clock limit.
using AbortProbe = std::function<bool()>;

// Full engine entry point.  `ctx` may be null (plain subtree walk).
SubtreeResult explore_job(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const std::vector<runtime::ProcessId>& prefix, const SubtreeOptions& options,
    const AbortProbe& abort = {}, JobContext* ctx = nullptr);

// Back-compat convenience: explore_job with no context.
SubtreeResult explore_subtree(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const std::vector<runtime::ProcessId>& prefix, const SubtreeOptions& options,
    const AbortProbe& abort = {});

// Appends to `out` the schedule entries available at a node whose runnable
// set is `runnable`: first one plain step entry per runnable process, then -
// when `crashes_used < max_crashes` - one crash entry per runnable process.
// Both the serial engine and the parallel explorer's split/donation path
// build choices through this, so crash-extended exploration keeps the
// serial/parallel parity guarantee by construction.
//
// Canonicalization: adjacent crashes commute (crashing p then q at one step
// boundary reaches the same state as q then p), so when the previous
// schedule entry `prev` is itself a crash entry, only crash targets larger
// than its target are offered.  Every crash *set* at a boundary is still
// reached - exactly once, in increasing-pid order.
void append_node_choices(const std::vector<runtime::ProcessId>& runnable,
                         std::size_t crashes_used, std::size_t max_crashes,
                         std::optional<runtime::ProcessId> prev,
                         std::vector<runtime::ProcessId>& out);

}  // namespace revisim::check::detail
