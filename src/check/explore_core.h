// Shared DFS engine behind explore_schedules and the parallel explorer.
//
// explore_subtree enumerates, in lexicographic (DFS preorder) schedule
// order, every execution whose schedule extends a given prefix.  The serial
// explorer is the empty-prefix instance; the parallel explorer farms one
// instance per frontier prefix to a worker pool.  Keeping a single engine is
// what makes the serial/parallel parity guarantee hold by construction.
//
// Cost model.  Coroutine worlds cannot be copied or rewound, so a world's
// lifetime covers exactly one root-to-leaf path and evaluating E executions
// of depth <= D necessarily costs E factory calls and up to E*D steps - the
// replay explorer already meets that lower bound.  What this engine adds
// are the constant-factor levers: worlds run with trace recording off
// (Scheduler fast mode), the runnable() buffer and the DFS frames are
// reused instead of reallocated per node, and a bounded pool of "warm"
// worlds parked at branch nodes turns the common deepest-frame backtrack
// into a one-step resume instead of a full rebuild.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/check/model_check.h"

namespace revisim::check {
class StateTable;
}  // namespace revisim::check

namespace revisim::check::detail {

struct SubtreeOptions {
  std::size_t max_steps = 64;            // depth bound, prefix included
  std::size_t max_executions = 500'000;  // execution cap (values < 1 act as 1)
  bool record_traces = false;            // leave Scheduler fast mode off?
  std::size_t warm_worlds = 8;           // checkpoint pool capacity (0 = off)
  // Crash branching: at every node, besides one step per runnable process,
  // the walk also branches on "crash p here" for each runnable p while the
  // schedule holds fewer than `max_crashes` crash entries.  Crash entries
  // occupy schedule slots (they count toward max_steps) and sort after all
  // step entries, so crash-free schedules are enumerated first and the
  // witness stays the lexicographically smallest violating schedule.  0
  // disables crash branching and reproduces the crash-free explorer.
  std::size_t max_crashes = 0;
  // Transposition pruning: consult a visited-state table at every node
  // strictly deeper than the prefix root and skip subtrees rooted at states
  // already seen.  Verdict-preserving by construction (equal states generate
  // identical subtrees), but `executions` and the reported witness may
  // legitimately differ from an undeduped walk - a violation first reached
  // through a pruned transposition is reported through the schedule that
  // visited its state first.  The prefix root itself is never consulted:
  // the parallel explorer's generation walk inserts job-root states, so a
  // root check would make every job prune itself.
  bool dedupe_states = false;
  // Retain full canonical states and fail loudly on a 128-bit collision
  // (only read when this call creates its own table, i.e. `table == null`).
  bool dedupe_audit = false;
  // Shared table (parallel explorer).  Null with dedupe_states set means
  // the walk creates a private table for its own lifetime.
  StateTable* table = nullptr;
};

struct SubtreeResult {
  std::size_t executions = 0;
  // False iff the cap (or an abort) truncated the walk while unexplored
  // schedules remained; a walk that ends exactly when the subtree does is
  // fully explored even if it ends at the cap.
  bool fully_explored = true;
  std::optional<std::string> violation;      // first violation in lex order
  std::vector<runtime::ProcessId> witness;   // its full schedule (with prefix)
  std::size_t violation_index = 0;           // 1-based execution count at it
  std::size_t subtrees_pruned = 0;           // transposition hits in this walk
  // Distinct states in the consulted table when the walk ended (a global
  // snapshot if the table was shared; 0 with dedupe off).
  std::size_t states_seen = 0;
};

// Polled between executions; returning true abandons the walk (the caller
// discards the result).  Used by the parallel explorer to cancel subtrees
// that can no longer affect the merged outcome.
using AbortProbe = std::function<bool()>;

SubtreeResult explore_subtree(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const std::vector<runtime::ProcessId>& prefix, const SubtreeOptions& options,
    const AbortProbe& abort = {});

// Appends to `out` the schedule entries available at a node whose runnable
// set is `runnable`: first one plain step entry per runnable process, then -
// when `crashes_used < max_crashes` - one crash entry per runnable process.
// Both the serial engine and the parallel explorer's frontier generation
// build choices through this, so crash-extended exploration keeps the
// serial/parallel parity guarantee by construction.
//
// Canonicalization: adjacent crashes commute (crashing p then q at one step
// boundary reaches the same state as q then p), so when the previous
// schedule entry `prev` is itself a crash entry, only crash targets larger
// than its target are offered.  Every crash *set* at a boundary is still
// reached - exactly once, in increasing-pid order.
void append_node_choices(const std::vector<runtime::ProcessId>& runnable,
                         std::size_t crashes_used, std::size_t max_crashes,
                         std::optional<runtime::ProcessId> prev,
                         std::vector<runtime::ProcessId>& out);

}  // namespace revisim::check::detail
