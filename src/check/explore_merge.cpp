#include "src/check/explore_merge.h"

#include <algorithm>

namespace revisim::check::detail {

bool key_less(const std::vector<runtime::ProcessId>& a,
              const std::vector<runtime::ProcessId>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

ScheduleExploreResult merge_job_results(std::vector<MergeJob>& jobs,
                                        std::uint64_t cap,
                                        std::size_t attempts,
                                        const std::string& unfinished_error) {
  std::sort(jobs.begin(), jobs.end(), [](const MergeJob& a, const MergeJob& b) {
    return key_less(*a.key, *b.key);
  });

  // Completed-work telemetry first (see the header contract): these attach
  // to every return path below, including partial summaries.
  ScheduleExploreResult res;
  for (const MergeJob& j : jobs) {
    if (j.state == MergeJob::State::kDone) {
      res.subtrees_pruned += j.result->subtrees_pruned;
      res.replay_steps_saved += j.result->replay_steps_saved;
      res.por_skipped += j.result->por_skipped;
      res.dependent_wakeups += j.result->dependent_wakeups;
      res.footprint_bytes += j.result->footprint_bytes;
      res.dedupe_disabled_adaptively |= j.result->dedupe_disabled;
    }
  }

  // Serial replay accounting over the sorted regions.
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const MergeJob& j = jobs[i];
    if (j.state == MergeJob::State::kFailed) {
      // The job threw past its retry budget (or donated mid-failure).
      // Everything before it merged normally; report the partial summary
      // instead of rethrowing.
      res.executions = static_cast<std::size_t>(cum);
      res.exhausted = false;
      res.error = "subtree job failed after " + std::to_string(attempts) +
                  " attempt(s): " + *j.error;
      return res;
    }
    if (j.state != MergeJob::State::kDone) {
      // Never ran or was pre-skipped.  The merge returns strictly before
      // every record skipped for violation or cap reasons, so reaching one
      // here means the run lost the means to finish it: the wall-clock
      // limit expired, or (distributed) every worker disconnected.
      res.executions = static_cast<std::size_t>(cum);
      res.exhausted = false;
      if (unfinished_error.empty()) {
        res.timed_out = true;
      } else {
        res.error = unfinished_error;
      }
      return res;
    }
    const SubtreeResult& jr = *j.result;
    const std::uint64_t n = jr.executions;
    if (jr.violation && cum + jr.violation_index <= cap) {
      res.executions = static_cast<std::size_t>(cum + jr.violation_index);
      res.violation = jr.violation;
      res.witness = jr.witness;
      return res;  // exhausted stays true, as in the serial explorer
    }
    if (cum + n >= cap) {
      // The serial walk reaches the cap inside (or exactly at the end of)
      // this region.  It is a truncation iff any work would have remained:
      // a violation past the cap, a locally truncated walk, executions
      // beyond the cap, or any later record (every region holds >= 1
      // execution).
      const bool truncated = jr.violation.has_value() || !jr.fully_explored ||
                             cum + n > cap || i + 1 < jobs.size();
      res.executions = static_cast<std::size_t>(cap);
      res.exhausted = !truncated;
      return res;
    }
    if (!jr.fully_explored) {
      // Below the cap only a wall-clock abort leaves a merged job partially
      // explored (violation- and cap-aborted records sit past the merge's
      // return point, handled above).
      res.executions = static_cast<std::size_t>(cum + n);
      res.exhausted = false;
      if (unfinished_error.empty()) {
        res.timed_out = true;
      } else {
        res.error = unfinished_error;
      }
      return res;
    }
    cum += n;
  }
  res.executions = static_cast<std::size_t>(cum);
  res.exhausted = true;
  return res;
}

}  // namespace revisim::check::detail
