#include "src/check/explore_merge.h"

#include <algorithm>
#include <unordered_map>

namespace revisim::check::detail {

bool key_less(const std::vector<runtime::ProcessId>& a,
              const std::vector<runtime::ProcessId>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

ScheduleExploreResult merge_job_results(std::vector<MergeJob>& jobs,
                                        std::uint64_t cap,
                                        std::size_t attempts,
                                        const std::string& unfinished_error) {
  std::sort(jobs.begin(), jobs.end(), [](const MergeJob& a, const MergeJob& b) {
    return key_less(*a.key, *b.key);
  });

  // Completed-work telemetry first (see the header contract): these attach
  // to every return path below, including partial summaries.
  ScheduleExploreResult res;
  for (const MergeJob& j : jobs) {
    if (j.state == MergeJob::State::kDone) {
      res.subtrees_pruned += j.result->subtrees_pruned;
      res.replay_steps_saved += j.result->replay_steps_saved;
      res.por_skipped += j.result->por_skipped;
      res.dependent_wakeups += j.result->dependent_wakeups;
      res.footprint_bytes += j.result->footprint_bytes;
      res.dedupe_disabled_adaptively |= j.result->dedupe_disabled;
    }
  }

  // Serial replay accounting over the sorted regions.
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const MergeJob& j = jobs[i];
    if (j.state == MergeJob::State::kFailed) {
      // The job threw past its retry budget (or donated mid-failure).
      // Everything before it merged normally; report the partial summary
      // instead of rethrowing.
      res.executions = static_cast<std::size_t>(cum);
      res.exhausted = false;
      res.error = "subtree job failed after " + std::to_string(attempts) +
                  " attempt(s): " + *j.error;
      return res;
    }
    if (j.state != MergeJob::State::kDone) {
      // Never ran or was pre-skipped.  The merge returns strictly before
      // every record skipped for violation or cap reasons, so reaching one
      // here means the run lost the means to finish it: the wall-clock
      // limit expired, or (distributed) every worker disconnected.
      res.executions = static_cast<std::size_t>(cum);
      res.exhausted = false;
      if (unfinished_error.empty()) {
        res.timed_out = true;
      } else {
        res.error = unfinished_error;
      }
      return res;
    }
    const SubtreeResult& jr = *j.result;
    const std::uint64_t n = jr.executions;
    if (jr.violation && cum + jr.violation_index <= cap) {
      res.executions = static_cast<std::size_t>(cum + jr.violation_index);
      res.violation = jr.violation;
      res.witness = jr.witness;
      return res;  // exhausted stays true, as in the serial explorer
    }
    if (cum + n >= cap) {
      // The serial walk reaches the cap inside (or exactly at the end of)
      // this region.  It is a truncation iff any work would have remained:
      // a violation past the cap, a locally truncated walk, executions
      // beyond the cap, or any later record (every region holds >= 1
      // execution).
      const bool truncated = jr.violation.has_value() || !jr.fully_explored ||
                             cum + n > cap || i + 1 < jobs.size();
      res.executions = static_cast<std::size_t>(cap);
      res.exhausted = !truncated;
      return res;
    }
    if (!jr.fully_explored) {
      // Below the cap only a wall-clock abort leaves a merged job partially
      // explored (violation- and cap-aborted records sit past the merge's
      // return point, handled above).
      res.executions = static_cast<std::size_t>(cum + n);
      res.exhausted = false;
      if (unfinished_error.empty()) {
        res.timed_out = true;
      } else {
        res.error = unfinished_error;
      }
      return res;
    }
    cum += n;
  }
  res.executions = static_cast<std::size_t>(cum);
  res.exhausted = true;
  return res;
}

std::vector<ResumeAction> plan_resume(const std::vector<ResumeJob>& jobs) {
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    index.emplace(jobs[i].id, i);
  }
  // covered[i]: some proper ancestor of i is not done (so i's region is
  // re-covered by that ancestor's re-run).  Memoized walk up the parent
  // chain; journals are append-only so chains are acyclic, but a depth
  // guard keeps corrupt input from spinning.
  enum : std::int8_t { kUnknown = -1, kNo = 0, kYes = 1 };
  std::vector<std::int8_t> covered(jobs.size(), kUnknown);
  auto resolve = [&](std::size_t start) {
    std::vector<std::size_t> chain;
    std::size_t i = start;
    std::int8_t verdict = kNo;
    while (covered[i] == kUnknown) {
      chain.push_back(i);
      if (!jobs[i].has_parent) {
        break;
      }
      const auto it = index.find(jobs[i].parent);
      if (it == index.end() || chain.size() > jobs.size()) {
        verdict = kYes;  // orphan or cycle: conservatively discard
        break;
      }
      const std::size_t p = it->second;
      if (covered[p] != kUnknown) {
        verdict = covered[p] == kYes || !jobs[p].done ? kYes : kNo;
        break;
      }
      if (!jobs[p].done) {
        verdict = kYes;
        // The parent itself still resolves against ITS ancestors; only the
        // children below it are settled.  Stop the chain here.
        break;
      }
      i = p;
    }
    for (const std::size_t c : chain) {
      covered[c] = verdict;
    }
  };
  std::vector<ResumeAction> plan(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    resolve(i);
    if (covered[i] == kYes) {
      plan[i] = ResumeAction::kDiscard;
    } else {
      plan[i] = jobs[i].done ? ResumeAction::kReuse : ResumeAction::kRerun;
    }
  }
  return plan;
}

}  // namespace revisim::check::detail
