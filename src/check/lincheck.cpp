#include "src/check/lincheck.h"

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace revisim::check {
namespace {

struct Search {
  const std::vector<HistOp>* hist;
  std::size_t m;
  std::unordered_set<std::string> failed;  // memo of dead (mask, state)

  [[nodiscard]] std::string key(std::uint64_t mask, const View& state) const {
    std::string k = std::to_string(mask) + "#";
    for (const auto& c : state) {
      k += c ? std::to_string(*c) : "_";
      k += ',';
    }
    return k;
  }

  bool dfs(std::uint64_t mask, const View& state) {
    const std::size_t total = hist->size();
    if (mask == (std::uint64_t{1} << total) - 1) {
      return true;
    }
    const std::string k = key(mask, state);
    if (failed.contains(k)) {
      return false;
    }
    for (std::size_t i = 0; i < total; ++i) {
      if (mask & (std::uint64_t{1} << i)) {
        continue;
      }
      const HistOp& op = (*hist)[i];
      // Real-time order: op may be next only if no other unlinearized
      // operation responded before op was invoked.
      bool blocked = false;
      for (std::size_t j = 0; j < total; ++j) {
        if (j != i && !(mask & (std::uint64_t{1} << j)) &&
            (*hist)[j].respond <= op.invoke) {
          blocked = true;
          break;
        }
      }
      if (blocked) {
        continue;
      }
      if (op.is_scan) {
        if (op.result != state) {
          continue;  // inconsistent here; try another op
        }
        if (dfs(mask | (std::uint64_t{1} << i), state)) {
          return true;
        }
      } else {
        View next = state;
        next.at(op.component) = op.value;
        if (dfs(mask | (std::uint64_t{1} << i), next)) {
          return true;
        }
      }
    }
    failed.insert(k);
    return false;
  }
};

}  // namespace

bool is_linearizable_snapshot(const std::vector<HistOp>& hist, std::size_t m) {
  if (hist.size() > 63) {
    throw std::invalid_argument("history too long for the exact checker");
  }
  Search search;
  search.hist = &hist;
  search.m = m;
  return search.dfs(0, View(m));
}

bool is_aba_free(const std::vector<std::pair<std::size_t, Val>>& writes) {
  // Per component: the sequence of values must never revisit a value after
  // leaving it.  (Consecutive equal writes do not change the value, so they
  // do not count as an ABA.)
  std::unordered_set<std::string> left;  // values a component moved away from
  std::unordered_map<std::size_t, Val> current;
  for (const auto& [comp, val] : writes) {
    auto it = current.find(comp);
    if (it != current.end() && it->second != val) {
      left.insert(std::to_string(comp) + ":" + std::to_string(it->second));
      if (left.contains(std::to_string(comp) + ":" + std::to_string(val))) {
        return false;
      }
    }
    current[comp] = val;
  }
  return true;
}

}  // namespace revisim::check
