#include "src/check/crash_worlds.h"

#include <stdexcept>
#include <utility>

#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/mutant_snapshot.h"
#include "src/check/watchdog.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/task.h"

namespace revisim::check {
namespace {

runtime::Task<void> monitored_block_update(aug::IAugmentedSnapshot& obj,
                                           ProgressMonitor& monitor,
                                           runtime::ProcessId me,
                                           std::size_t comp, Val val) {
  const std::size_t token = monitor.begin(me, "Block-Update");
  std::vector<std::size_t> comps{comp};
  std::vector<Val> vals{val};
  co_await obj.BlockUpdate(me, std::move(comps), std::move(vals));
  monitor.end(token);
}

class CrashWorld final : public ExplorableWorld {
 public:
  explicit CrashWorld(const CrashWorldSpec& spec)
      : monitor_(sched_, spec.step_budget) {
    if (spec.world == "aug-bu") {
      obj_ = std::make_unique<aug::AugmentedSnapshot>(sched_, "M", spec.m,
                                                      spec.f);
    } else if (spec.world == "aug-mutant") {
      obj_ = std::make_unique<aug::MutantAugmentedSnapshot>(sched_, "M",
                                                            spec.m, spec.f);
    } else {
      throw std::invalid_argument("unknown crash world: " + spec.world);
    }
    for (runtime::ProcessId i = 0; i < spec.f; ++i) {
      sched_.spawn(monitored_block_update(*obj_, monitor_, i, i % spec.m,
                                          Val(10 * (i + 1))),
                   "q" + std::to_string(i + 1));
    }
  }

  runtime::Scheduler& scheduler() override { return sched_; }

  std::optional<std::string> verdict(bool complete) override {
    (void)complete;  // the budget binds on partial executions too
    if (auto v = monitor_.check()) {
      return v->message();
    }
    return std::nullopt;
  }

 private:
  runtime::Scheduler sched_;
  ProgressMonitor monitor_;
  std::unique_ptr<aug::IAugmentedSnapshot> obj_;
};

}  // namespace

std::vector<std::string> crash_world_names() {
  return {"aug-bu", "aug-mutant"};
}

std::function<std::unique_ptr<ExplorableWorld>()> make_crash_world_factory(
    const CrashWorldSpec& spec) {
  bool known = false;
  for (const std::string& name : crash_world_names()) {
    if (name == spec.world) {
      known = true;
      break;
    }
  }
  if (!known) {
    std::string names;
    for (const std::string& name : crash_world_names()) {
      names += (names.empty() ? "" : ", ") + name;
    }
    throw std::invalid_argument("unknown crash world \"" + spec.world +
                                "\"; known worlds: " + names);
  }
  if (spec.f == 0) {
    throw std::invalid_argument("crash world \"" + spec.world +
                                "\": f (processes) must be >= 1");
  }
  if (spec.m == 0) {
    throw std::invalid_argument("crash world \"" + spec.world +
                                "\": m (components) must be >= 1");
  }
  if (spec.step_budget == 0) {
    throw std::invalid_argument("crash world \"" + spec.world +
                                "\": step_budget must be >= 1");
  }
  CrashWorldSpec copy = spec;
  return [copy] { return std::make_unique<CrashWorld>(copy); };
}

}  // namespace revisim::check
