// Registry of named, parameterized crash-exploration worlds.
//
// A failure witness must be replayable across binaries: the world a test's
// explorer flagged has to be rebuildable, bit-for-bit, by `revisim_cli
// replay` from nothing but the witness file.  Worlds therefore carry names
// and parameters instead of closures, and tests, the benchmark and the CLI
// all build them through this one registry.
//
// Shape of every registered world: f processes share one m-component
// augmented snapshot; process i performs a single Block-Update writing
// 10*(i+1) to component i mod m, monitored by a ProgressMonitor with the
// given per-operation own-step budget (see src/check/watchdog.h).  The
// verdict flags the first over-budget operation.
//
//   "aug-bu"     - the real augmented snapshot (Algorithm 4).  Wait-free:
//                  every Block-Update takes exactly 6 own steps (5 when
//                  yielding), so with budget >= 6 no schedule - crashes or
//                  not - produces a violation.
//   "aug-mutant" - MutantAugmentedSnapshot, the non-wait-free positive
//                  control: its Block-Update first waits for quiescence via
//                  an inner Scan, so interference inflates its own-step
//                  count past any fixed budget (9 solo, +2 per interfering
//                  update batch).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/check/model_check.h"

namespace revisim::check {

struct CrashWorldSpec {
  std::string world = "aug-bu";  // registry name
  std::size_t f = 2;             // processes
  std::size_t m = 2;             // snapshot components
  std::size_t step_budget = 10;  // watchdog budget per Block-Update
};

// Names this registry knows, in registration order.
std::vector<std::string> crash_world_names();

// Validates the spec (known name, f >= 1, m >= 1, step_budget >= 1; clear
// std::invalid_argument otherwise) and returns a factory building fresh,
// independent worlds - directly usable with explore_schedules and
// parallel_explore_schedules.
std::function<std::unique_ptr<ExplorableWorld>()> make_crash_world_factory(
    const CrashWorldSpec& spec);

}  // namespace revisim::check
