#include "src/check/protocol_check.h"

#include <deque>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace revisim::check {
namespace {

// Enumerates the non-empty subsets of {0..n-1} of size <= x.
void subsets_up_to(std::size_t n, std::size_t x,
                   std::vector<std::vector<std::size_t>>& out) {
  std::vector<std::size_t> cur;
  std::function<void(std::size_t)> rec = [&](std::size_t from) {
    if (!cur.empty()) {
      out.push_back(cur);
    }
    if (cur.size() == x) {
      return;
    }
    for (std::size_t i = from; i < n; ++i) {
      cur.push_back(i);
      rec(i + 1);
      cur.pop_back();
    }
  };
  rec(0);
}

}  // namespace

ExploreResult explore(const proto::Protocol& protocol,
                      const std::vector<Val>& inputs,
                      const tasks::ColorlessTask& task,
                      const ExploreOptions& options) {
  ExploreResult res;
  std::unordered_set<std::string> seen;
  struct Node {
    proto::ProtocolRun cfg;
    std::size_t depth;
  };
  std::deque<Node> frontier;

  std::vector<std::vector<std::size_t>> probe_sets;
  if (options.check_termination) {
    subsets_up_to(inputs.size(), options.x == 0 ? 1 : options.x, probe_sets);
  }

  proto::ProtocolRun init(protocol, inputs);
  seen.insert(init.state_key());
  frontier.push_back(Node{std::move(init), 0});

  while (!frontier.empty()) {
    if (res.states_visited >= options.max_states) {
      res.exhausted = false;
      return res;
    }
    Node node = std::move(frontier.front());
    proto::ProtocolRun& cfg = node.cfg;
    frontier.pop_front();
    ++res.states_visited;

    // Safety: the partial output set must already be valid.
    auto verdict = task.validate(inputs, cfg.outputs());
    if (!verdict.ok && !res.safety_violation) {
      res.safety_violation = verdict.reason + " [state " + cfg.state_key() + "]";
      return res;
    }

    // Termination probes from this configuration.
    if (options.check_termination) {
      for (const auto& set : probe_sets) {
        bool all_done = true;
        for (std::size_t i : set) {
          if (!cfg.done(i)) {
            all_done = false;
          }
        }
        if (all_done) {
          continue;
        }
        proto::ProtocolRun probe = cfg;
        const bool finished =
            set.size() == 1
                ? probe.run_solo(set[0], options.solo_budget)
                : probe.run_fair(set, options.solo_budget);
        if (!finished && !res.termination_violation) {
          std::ostringstream why;
          why << "subset {";
          for (std::size_t i : set) {
            why << ' ' << i;
          }
          why << " } fails to terminate within " << options.solo_budget
              << " steps [state " << cfg.state_key() << "]";
          res.termination_violation = why.str();
          return res;
        }
        // The probe's final outputs must also be safe.
        auto v2 = task.validate(inputs, probe.outputs());
        if (!v2.ok && !res.safety_violation) {
          res.safety_violation =
              v2.reason + " [after solo/fair run from " + cfg.state_key() + "]";
          return res;
        }
      }
    }

    // Expand successors up to the depth bound.
    if (node.depth >= options.max_depth) {
      continue;
    }
    for (std::size_t i = 0; i < cfg.processes(); ++i) {
      if (cfg.done(i)) {
        continue;
      }
      proto::ProtocolRun next = cfg;
      next.step(i);
      auto key = next.state_key();
      if (seen.insert(std::move(key)).second) {
        frontier.push_back(Node{std::move(next), node.depth + 1});
      }
    }
  }
  return res;
}

StressResult stress(const proto::Protocol& protocol,
                    const std::vector<Val>& inputs,
                    const tasks::ColorlessTask& task, std::size_t runs,
                    std::uint64_t seed0, std::size_t max_steps) {
  StressResult res;
  res.runs = runs;
  for (std::size_t r = 0; r < runs; ++r) {
    proto::ProtocolRun run(protocol, inputs);
    const bool finished = run.run_random(seed0 + r, max_steps);
    if (!finished) {
      ++res.unfinished;
    }
    auto verdict = task.validate(inputs, run.outputs());
    if (!verdict.ok) {
      ++res.violations;
      if (!res.example) {
        res.example = verdict.reason + " [seed " + std::to_string(seed0 + r) +
                      "]";
      }
    }
  }
  return res;
}

}  // namespace revisim::check
