#include "src/check/protocol_check.h"

#include <bit>
#include <deque>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace revisim::check {
namespace {

// Enumerates the non-empty subsets of {0..n-1} of size <= x.
void subsets_up_to(std::size_t n, std::size_t x,
                   std::vector<std::vector<std::size_t>>& out) {
  std::vector<std::size_t> cur;
  std::function<void(std::size_t)> rec = [&](std::size_t from) {
    if (!cur.empty()) {
      out.push_back(cur);
    }
    if (cur.size() == x) {
      return;
    }
    for (std::size_t i = from; i < n; ++i) {
      cur.push_back(i);
      rec(i + 1);
      cur.pop_back();
    }
  };
  rec(0);
}

}  // namespace

void validate(const ExploreOptions& options, std::size_t processes) {
  if (options.max_states == 0) {
    throw std::invalid_argument(
        "ExploreOptions: max_states must be >= 1 (a cap of 0 explores "
        "nothing)");
  }
  if (options.check_termination && options.solo_budget == 0) {
    throw std::invalid_argument(
        "ExploreOptions: solo_budget must be >= 1 when termination is "
        "probed");
  }
  if (options.max_crashes > 0) {
    if (options.max_crashes >= processes) {
      throw std::invalid_argument(
          "ExploreOptions: max_crashes (" +
          std::to_string(options.max_crashes) +
          ") must be < the process count (" + std::to_string(processes) +
          "): some process must stay live");
    }
    if (processes > 64) {
      throw std::invalid_argument(
          "ExploreOptions: crash exploration supports at most 64 processes "
          "(crashed sets are 64-bit masks)");
    }
  }
}

ExploreResult explore(const proto::Protocol& protocol,
                      const std::vector<Val>& inputs,
                      const tasks::ColorlessTask& task,
                      const ExploreOptions& options) {
  validate(options, inputs.size());
  ExploreResult res;
  std::unordered_set<std::string> seen;
  struct Node {
    proto::ProtocolRun cfg;
    std::size_t depth;
    std::uint64_t crashed;  // bit i: process i crashed in this configuration
  };
  std::deque<Node> frontier;

  std::vector<std::vector<std::size_t>> probe_sets;
  if (options.check_termination) {
    subsets_up_to(inputs.size(), options.x == 0 ? 1 : options.x, probe_sets);
  }

  // Configurations that differ only in who has crashed behave differently
  // (a crashed process never moves again), so the crashed set joins the
  // dedup key.  With crashes off the key is the plain state key, keeping
  // state counts comparable with earlier results.
  auto node_key = [&](const proto::ProtocolRun& cfg, std::uint64_t crashed) {
    std::string key = cfg.state_key();
    if (options.max_crashes > 0) {
      key += "|crashed=" + std::to_string(crashed);
    }
    return key;
  };
  auto describe = [&](const proto::ProtocolRun& cfg, std::uint64_t crashed) {
    std::string out = cfg.state_key();
    if (crashed != 0) {
      out += " crashed={";
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        if ((crashed >> i) & 1u) {
          out += ' ' + std::to_string(i);
        }
      }
      out += " }";
    }
    return out;
  };

  proto::ProtocolRun init(protocol, inputs);
  seen.insert(node_key(init, 0));
  frontier.push_back(Node{std::move(init), 0, 0});

  while (!frontier.empty()) {
    if (res.states_visited >= options.max_states) {
      res.exhausted = false;
      return res;
    }
    Node node = std::move(frontier.front());
    proto::ProtocolRun& cfg = node.cfg;
    frontier.pop_front();
    ++res.states_visited;

    // Safety: the partial output set must already be valid.  (Crashed
    // processes simply contribute no output - colorless task validity is
    // over the partial output set, so crash-truncated runs need no special
    // handling.)
    auto verdict = task.validate(inputs, cfg.outputs());
    if (!verdict.ok && !res.safety_violation) {
      res.safety_violation =
          verdict.reason + " [state " + describe(cfg, node.crashed) + "]";
      return res;
    }

    // Termination probes from this configuration - including every
    // post-crash configuration reached below.  Probe sets containing a
    // crashed process are skipped: a crashed process cannot be scheduled,
    // and its non-termination is a fault, not a liveness failure.  Every
    // all-live subset must still finish within the budget.
    if (options.check_termination) {
      for (const auto& set : probe_sets) {
        bool eligible = true;
        bool all_done = true;
        for (std::size_t i : set) {
          if ((node.crashed >> i) & 1u) {
            eligible = false;
            break;
          }
          if (!cfg.done(i)) {
            all_done = false;
          }
        }
        if (!eligible || all_done) {
          continue;
        }
        proto::ProtocolRun probe = cfg;
        const bool finished =
            set.size() == 1
                ? probe.run_solo(set[0], options.solo_budget)
                : probe.run_fair(set, options.solo_budget);
        if (!finished && !res.termination_violation) {
          std::ostringstream why;
          why << "subset {";
          for (std::size_t i : set) {
            why << ' ' << i;
          }
          why << " } fails to terminate within " << options.solo_budget
              << " steps [state " << describe(cfg, node.crashed) << "]";
          res.termination_violation = why.str();
          return res;
        }
        // The probe's final outputs must also be safe.
        auto v2 = task.validate(inputs, probe.outputs());
        if (!v2.ok && !res.safety_violation) {
          res.safety_violation = v2.reason + " [after solo/fair run from " +
                                 describe(cfg, node.crashed) + "]";
          return res;
        }
      }
    }

    // Expand successors up to the depth bound: one step by any live
    // process, plus - while the crash budget lasts - crashing any live
    // process.  Crash transitions occupy a depth level like steps do.
    if (node.depth >= options.max_depth) {
      continue;
    }
    const auto crashes_used =
        static_cast<std::size_t>(std::popcount(node.crashed));
    for (std::size_t i = 0; i < cfg.processes(); ++i) {
      if (cfg.done(i) || ((node.crashed >> i) & 1u)) {
        continue;
      }
      proto::ProtocolRun next = cfg;
      next.step(i);
      auto key = node_key(next, node.crashed);
      if (seen.insert(std::move(key)).second) {
        frontier.push_back(Node{std::move(next), node.depth + 1, node.crashed});
      }
      if (crashes_used < options.max_crashes) {
        const std::uint64_t crashed = node.crashed | (std::uint64_t{1} << i);
        auto ckey = node_key(cfg, crashed);
        if (seen.insert(std::move(ckey)).second) {
          frontier.push_back(Node{cfg, node.depth + 1, crashed});
        }
      }
    }
  }
  return res;
}

StressResult stress(const proto::Protocol& protocol,
                    const std::vector<Val>& inputs,
                    const tasks::ColorlessTask& task, std::size_t runs,
                    std::uint64_t seed0, std::size_t max_steps) {
  StressResult res;
  res.runs = runs;
  for (std::size_t r = 0; r < runs; ++r) {
    proto::ProtocolRun run(protocol, inputs);
    const bool finished = run.run_random(seed0 + r, max_steps);
    if (!finished) {
      ++res.unfinished;
    }
    auto verdict = task.validate(inputs, run.outputs());
    if (!verdict.ok) {
      ++res.violations;
      if (!res.example) {
        res.example = verdict.reason + " [seed " + std::to_string(seed0 + r) +
                      "]";
      }
    }
  }
  return res;
}

}  // namespace revisim::check
