// Exhaustive state-space checker for simulated-system protocols.
//
// Because a ProtocolRun configuration is a value with a canonical key, we
// can do plain explicit-state model checking: breadth-first exploration of
// every reachable configuration (deduplicated), checking a safety predicate
// on outputs in every configuration, and probing obstruction-freedom by
// running solo/fair executions from every reachable configuration.
//
// On tiny instances this is a *proof* about the instance, which is how the
// reproduction substantiates tightness claims the paper makes (e.g. the
// 2-register 2-process consensus protocol survives exhaustive search while
// every 1-register configuration admits a violation; EXPERIMENTS.md E7).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/protocols/protocol_runner.h"
#include "src/tasks/task_spec.h"

namespace revisim::check {

struct ExploreOptions {
  std::size_t max_states = 2'000'000;   // exploration cap
  // Depth bound: explore configurations reachable within this many steps.
  // Obstruction-free protocols have unbounded adversarial executions (FLP),
  // so unbounded exploration never exhausts; bounded exploration is a proof
  // about every schedule prefix of this length.
  std::size_t max_depth = 40;
  std::size_t solo_budget = 100'000;    // steps allowed for a solo run
  std::size_t x = 0;                    // if > 0, probe x-obstruction-freedom
                                        // (fair runs of every subset <= x)
  bool check_termination = true;        // probe solo/fair termination
  // Crash faults: besides stepping any live process, the exploration also
  // branches on permanently crashing one, as long as fewer than this many
  // processes are crashed in the configuration.  Crashed processes take no
  // further steps and are excluded from termination probes (a crash is not
  // a starvation failure) - but every *surviving* process must still
  // terminate solo from every post-crash configuration, which is the
  // crash-tolerance claim this checker probes (e.g. the Theorem 21
  // simulation with up to f-1 crashed simulators).  Must be < the process
  // count; requires at most 64 processes.  0 (default) disables crashes.
  std::size_t max_crashes = 0;
};

// Validates the options against the instance, throwing
// std::invalid_argument naming the offending field.  explore() calls this
// on entry.
void validate(const ExploreOptions& options, std::size_t processes);

struct ExploreResult {
  std::size_t states_visited = 0;
  bool exhausted = true;  // false iff max_states hit (depth cut is normal)
  // First safety violation found, if any.
  std::optional<std::string> safety_violation;
  // First termination (obstruction-freedom) violation found, if any.
  std::optional<std::string> termination_violation;

  [[nodiscard]] bool ok() const {
    return !safety_violation && !termination_violation;
  }
};

// Explores every configuration of `protocol` on `inputs` reachable by any
// schedule.  In every configuration the partial output set is validated
// against `task`; if options.check_termination, every live process is run
// solo from every configuration (and, with options.x >= 1, every subset of
// size <= x fairly) and must output within the budget.
ExploreResult explore(const proto::Protocol& protocol,
                      const std::vector<Val>& inputs,
                      const tasks::ColorlessTask& task,
                      const ExploreOptions& options = {});

// Randomized variant for instances too big to exhaust: `runs` random
// schedules, validating outputs after each.  Returns the number of runs
// whose outputs violated the task, with an example reason.
struct StressResult {
  std::size_t runs = 0;
  std::size_t violations = 0;
  std::size_t unfinished = 0;
  std::optional<std::string> example;
};

StressResult stress(const proto::Protocol& protocol,
                    const std::vector<Val>& inputs,
                    const tasks::ColorlessTask& task, std::size_t runs,
                    std::uint64_t seed0, std::size_t max_steps = 200'000);

}  // namespace revisim::check
