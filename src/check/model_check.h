// Exhaustive schedule exploration for the coroutine-based real system.
//
// Coroutine frames cannot be copied, so the explorer enumerates schedules by
// *replay*: it rebuilds a fresh world from the user's factory, replays a
// schedule prefix step by step, inspects which processes are runnable, and
// backtracks.  On small instances (two or three processes, a handful of
// operations each) this enumerates every interleaving of the real system -
// the strongest evidence the reproduction has for the augmented snapshot's
// §3.3 properties, complementing the per-execution linearizer.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/runtime/scheduler.h"

namespace revisim::check {

// A freshly built world: the scheduler with processes spawned, plus a
// verdict evaluated when the exploration reaches the end of an execution
// (all processes done, or the depth bound).  Return a message to flag a
// violation, std::nullopt to accept.
class ExplorableWorld {
 public:
  virtual ~ExplorableWorld() = default;
  virtual runtime::Scheduler& scheduler() = 0;
  virtual std::optional<std::string> verdict(bool complete) = 0;
};

struct ScheduleExploreOptions {
  std::size_t max_steps = 64;           // depth bound per execution
  std::size_t max_executions = 500'000; // exploration cap
};

struct ScheduleExploreResult {
  std::size_t executions = 0;
  bool exhausted = true;  // false iff max_executions was hit
  std::optional<std::string> violation;
  std::vector<runtime::ProcessId> witness;  // schedule of the violation

  [[nodiscard]] bool ok() const noexcept { return !violation; }
};

ScheduleExploreResult explore_schedules(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const ScheduleExploreOptions& options = {});

}  // namespace revisim::check
