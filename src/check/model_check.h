// Exhaustive schedule exploration for the coroutine-based real system.
//
// Coroutine frames cannot be copied, so the explorer enumerates schedules by
// *replay*: it rebuilds a fresh world from the user's factory, replays a
// schedule prefix step by step, inspects which processes are runnable, and
// backtracks.  Exploration runs on the scheduler's fast mode (no trace
// recording) with warm-world checkpoints, and the companion parallel
// explorer (src/check/parallel_explore.h) splits the search across a
// work-stealing worker pool, so instances well beyond the historical "two or three
// processes, a handful of operations" ceiling are in reach - the strongest
// evidence the reproduction has for the augmented snapshot's §3.3
// properties, complementing the per-execution linearizer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/runtime/scheduler.h"
#include "src/util/fingerprint.h"

namespace revisim::check {

// A freshly built world: the scheduler with processes spawned, plus a
// verdict evaluated when the exploration reaches the end of an execution
// (all processes done, or the depth bound).  Return a message to flag a
// violation, std::nullopt to accept.
class ExplorableWorld {
 public:
  virtual ~ExplorableWorld() = default;
  virtual runtime::Scheduler& scheduler() = 0;
  virtual std::optional<std::string> verdict(bool complete) = 0;

  // --- transposition-pruning hooks (dedupe_states) -----------------------
  //
  // fingerprint() keys the explorer's visited-state table: a 128-bit hash
  // of the canonical global state - the scheduler's per-process control
  // skeleton (done/poised flags, step counts, poised step kind + object)
  // plus the contents of every registered shared object (register.h and the
  // snapshot implementations self-register).  Soundness contract: equal
  // fingerprints must imply identical residual subtrees.  Worlds whose
  // verdict or behaviour depends on process-local state that is *not* a
  // function of (own step count, shared contents) - a remembered earlier
  // read, an accumulated log - must fold that state in via
  // fingerprint_extra, or leave dedupe_states off.
  virtual void fingerprint_extra(util::StateSink& sink) { (void)sink; }

  virtual util::Fingerprint fingerprint() {
    util::HashSink sink;
    scheduler().state_digest(sink);
    fingerprint_extra(sink);
    return sink.digest();
  }

  // The same word stream rendered as text: the full canonical state, kept
  // behind the hash in collision-audit mode.
  virtual std::string canonical_state() {
    std::string out;
    util::TextSink sink(out);
    scheduler().state_digest(sink);
    fingerprint_extra(sink);
    return out;
  }
};

struct ScheduleExploreOptions {
  std::size_t max_steps = 64;           // depth bound per execution
  std::size_t max_executions = 500'000; // exploration cap
  // Leave trace recording on during exploration.  Off by default: no
  // explorer verdict reads per-execution traces, and fast mode makes every
  // replayed step cheaper.  Executions are step-for-step identical either
  // way (verdicts, step counts and linearization points are unchanged).
  bool record_traces = false;
  // Capacity of the warm-world checkpoint pool: worlds parked at branch
  // nodes of the current DFS path so a backtrack resumes from the nearest
  // retained prefix instead of rebuilding from scratch.  0 disables.
  std::size_t warm_worlds = 8;
  // Transposition pruning: skip subtrees rooted at a canonical global state
  // (ExplorableWorld::fingerprint) already visited.  Off by default.  The
  // violation-found / violation-free verdict is preserved - equal states
  // generate identical subtrees - but `executions` shrinks to the number of
  // distinct subtrees walked and a violation may be reported through a
  // different (the first-visited) witness schedule.  Requires the world to
  // satisfy the fingerprint soundness contract (see ExplorableWorld).
  bool dedupe_states = false;
  // With dedupe_states: retain the full canonical state behind every
  // fingerprint and throw StateFingerprintCollision if a 128-bit hash ever
  // covers two distinct states.  Memory-hungry; for validation runs.
  bool dedupe_audit = false;
  // Crash-fault branching: besides one step per runnable process, every node
  // also branches on "crash p here" for each runnable p, up to this many
  // crashes per execution.  A crash permanently retires the process with its
  // poised operation discarded unexecuted (Scheduler::crash); executions
  // where only crashed processes remain unfinished are complete
  // (crash-closure).  Crash entries appear in witness schedules with the
  // top bit set (runtime::make_crash_entry) and occupy schedule slots, so
  // they count toward max_steps.  0 (default) disables crash branching.
  std::size_t max_crashes = 0;
  // Sleep-set partial-order reduction over the access footprints the memory
  // primitives declare (src/runtime/footprint.h).  Schedules that differ
  // only by swapping adjacent independent steps reach the same state; POR
  // explores exactly the lexicographically least representative of each
  // such class and skips the rest, so `executions` shrinks - often by
  // orders of magnitude on disjoint-access workloads - while every
  // reachable final state is still visited.  For trace-invariant verdicts
  // (any predicate of the final state, which all shipped worlds use) the
  // verdict and the lex-smallest witness are preserved exactly; a verdict
  // that inspects the schedule itself may see a different-but-equivalent
  // representative.  Opt-in because soundness leans on the footprint
  // declarations: primitives that cannot bound what their continuations
  // observe stay opaque and simply earn no reduction.  Composes with
  // dedupe_states and with crash branching (crash entries are dependent
  // with everything).
  bool por = false;
  // With dedupe_states: stop fingerprinting mid-search when a window of
  // lookups closes with a negligible prune rate (the WarmPool ledger idea
  // applied to the transposition table).  On workloads whose states are all
  // distinct this recovers nearly the whole dedupe overhead; on workloads
  // that do transpose it never triggers.
  bool dedupe_adaptive = false;
  // Distributed workers only: pump the control channel (abort probes,
  // fingerprint verdicts) every N explored executions.  1 probes at every
  // execution boundary - the cadence used by the wire bit-parity tests -
  // at the cost of a poll syscall per execution.  Ignored by the serial
  // and in-process parallel explorers.
  std::size_t dist_probe_interval = 16;
};

struct ScheduleExploreResult {
  std::size_t executions = 0;
  // True iff every schedule was explored.  False means max_executions
  // truncated the search while unexplored schedules remained; a search that
  // ends exactly when the tree does is exhausted even if it ends at the cap.
  bool exhausted = true;
  std::optional<std::string> violation;
  std::vector<runtime::ProcessId> witness;  // schedule of the violation
  // Transposition-table statistics (0 with dedupe_states off).
  std::size_t states_seen = 0;       // distinct canonical states recorded
  std::size_t subtrees_pruned = 0;   // subtrees skipped as already-seen
  // Work-distribution statistics.  The serial explorer is one job and never
  // steals; the parallel explorer counts every schedule-prefix job its
  // stack-splitting created and every job claimed by a worker other than
  // its donor.  `replay_steps_saved` totals the schedule entries skipped by
  // resuming warm checkpoint worlds instead of replaying from scratch
  // (donated warm worlds included) - the explorer's one lever under the
  // replay cost model.
  //
  // Aggregation contract (in-process AND distributed runs share one merge,
  // src/check/explore_merge.h, so they agree by construction):
  //   - executions/exhausted/violation/witness replay serial accounting
  //     over the lexicographically sorted job regions - bit-identical to
  //     the serial engine with dedupe off, at any worker count.
  //   - jobs counts every record created; steals counts records claimed
  //     away from their donor, so steals <= jobs - 1 always.
  //   - replay_steps_saved/por_skipped/dependent_wakeups/footprint_bytes
  //     sum over every record whose walk completed, including regions past
  //     the merge's return point: they describe work performed, not work
  //     serially accounted.  On exhausted undeduped searches por_skipped
  //     and dependent_wakeups are decomposition-invariant and equal the
  //     serial values; replay_steps_saved and footprint_bytes legitimately
  //     vary with split points and warm-pool luck.
  std::size_t jobs = 0;
  std::size_t steals = 0;
  std::uint64_t replay_steps_saved = 0;
  // Graceful-degradation summary (parallel explorer only; the serial
  // explorer propagates exceptions and has no wall clock).  `error` carries
  // the message of a worker job that kept throwing past its retry budget;
  // `timed_out` means the wall-clock limit cut the search.  Either way the
  // counts above cover the lexicographic prefix of the tree that *was*
  // explored, and exhausted is false.
  std::optional<std::string> error;
  bool timed_out = false;
  // Partial-order-reduction statistics (0 with por off).  `por_skipped`
  // counts choices skipped because a step-swap-equivalent schedule was
  // already explored (each roots a whole skipped subtree);
  // `dependent_wakeups` counts sleep entries dropped because a conflicting
  // step executed; `footprint_bytes` totals the serialized footprints
  // captured at node expansions (the memory the reduction costs).
  std::size_t por_skipped = 0;
  std::size_t dependent_wakeups = 0;
  std::uint64_t footprint_bytes = 0;
  // True iff the adaptive dedupe kill-switch stopped fingerprinting in at
  // least one job (dedupe_adaptive).
  bool dedupe_disabled_adaptively = false;

  [[nodiscard]] bool ok() const noexcept { return !violation; }
};

// Validates the option struct, throwing std::invalid_argument with a
// message naming the offending field.  explore_schedules and
// parallel_explore_schedules call this on entry.
void validate(const ScheduleExploreOptions& options);

ScheduleExploreResult explore_schedules(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const ScheduleExploreOptions& options = {});

}  // namespace revisim::check
