#include "src/check/watchdog.h"

#include <stdexcept>

namespace revisim::check {

std::string ProgressViolation::message() const {
  return "progress violation: q" + std::to_string(process + 1) + "'s " +
         operation + " took " + std::to_string(steps) + " own steps (budget " +
         std::to_string(budget) +
         (completed ? ", completed" : ", still running") + ")";
}

ProgressMonitor::ProgressMonitor(const runtime::Scheduler& sched,
                                 std::size_t step_budget)
    : sched_(sched), budget_(step_budget) {
  if (step_budget == 0) {
    throw std::invalid_argument(
        "ProgressMonitor: step_budget must be >= 1 (every operation charges "
        "at least one step)");
  }
}

std::size_t ProgressMonitor::begin(runtime::ProcessId pid,
                                   std::string operation) {
  ops_.push_back(
      Op{pid, std::move(operation), sched_.steps_taken(pid), std::nullopt});
  return ops_.size() - 1;
}

void ProgressMonitor::end(std::size_t token) {
  Op& op = ops_.at(token);
  if (op.used) {
    throw std::logic_error("ProgressMonitor: operation ended twice");
  }
  op.used = sched_.steps_taken(op.pid) - op.start_steps;
}

std::optional<ProgressViolation> ProgressMonitor::check() const {
  for (const Op& op : ops_) {
    const std::size_t used =
        op.used ? *op.used : sched_.steps_taken(op.pid) - op.start_steps;
    if (used > budget_) {
      return ProgressViolation{op.pid, op.name, budget_, used,
                               op.used.has_value()};
    }
  }
  return std::nullopt;
}

}  // namespace revisim::check
