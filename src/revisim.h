// Umbrella header: the full public API of the reproduction.
//
// Layering (each include group may be used on its own):
//   runtime   - the asynchronous model (coroutines, scheduler, adversaries)
//   memory    - base objects: registers and snapshots
//   augmented - Section 3: the augmented snapshot and its linearizer
//   protocols - simulated-system protocols (Assumption 1 state machines)
//   tasks     - colorless task specifications and validators
//   sim       - Section 4: the revisionist simulation and its validator
//   solo      - Section 5: nondeterminism, determinization, ABA-freedom
//   bounds    - closed forms of §4.5/§4.6
//   check     - model checkers and linearizability checking
#pragma once

#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/task.h"
#include "src/runtime/trace.h"

#include "src/memory/afek_snapshot.h"
#include "src/memory/collect_snapshot.h"
#include "src/memory/mw_snapshot.h"
#include "src/memory/register.h"
#include "src/memory/sw_snapshot.h"

#include "src/augmented/augmented_snapshot.h"
#include "src/augmented/history.h"
#include "src/augmented/hstate.h"
#include "src/augmented/linearizer.h"
#include "src/augmented/timestamp.h"

#include "src/protocols/approx_agreement.h"
#include "src/protocols/ca_consensus.h"
#include "src/protocols/commit_adopt.h"
#include "src/protocols/protocol_runner.h"
#include "src/protocols/racing_agreement.h"
#include "src/protocols/sim_process.h"

#include "src/tasks/colorless.h"
#include "src/tasks/task_spec.h"

#include "src/sim/covering_simulator.h"
#include "src/sim/direct_simulator.h"
#include "src/sim/driver.h"
#include "src/sim/replay.h"
#include "src/sim/types.h"

#include "src/solo/aba_free.h"
#include "src/solo/determinize.h"
#include "src/solo/nd_protocol.h"
#include "src/solo/randomized_runner.h"
#include "src/solo/solo_search.h"

#include "src/bounds/bounds.h"

#include "src/check/lincheck.h"
#include "src/check/model_check.h"
#include "src/check/protocol_check.h"

#include "src/util/value.h"
