#include "src/bounds/bounds.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace revisim::bounds {
namespace {

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return (a > kSaturated - b) ? kSaturated : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  if (a > kSaturated / b) {
    return kSaturated;
  }
  return a * b;
}

}  // namespace

std::uint64_t choose(std::uint64_t n, std::uint64_t k) {
  if (k > n) {
    return 0;
  }
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    // result * (n - k + i) / i is exact at every step.
    std::uint64_t num = n - k + i;
    if (result > kSaturated / num) {
      return kSaturated;
    }
    result = result * num / i;
  }
  return result;
}

std::uint64_t a_bound(std::size_t r, std::size_t m) {
  if (r == 0 || r > m) {
    throw std::invalid_argument("a(r) needs 1 <= r <= m");
  }
  std::uint64_t a = 0;  // a(1)
  for (std::size_t rr = 2; rr <= r; ++rr) {
    const std::uint64_t c = choose(m, rr - 1);
    a = sat_add(sat_mul(sat_add(c, 1), a), c);
  }
  return a;
}

std::uint64_t b_bound(std::size_t i, std::size_t m) {
  if (i == 0) {
    throw std::invalid_argument("b(i) needs i >= 1");
  }
  // The paper states both a recurrence and a closed form
  // b(i) = a(m) (a(m-1)+1)^{i-1}; they disagree (the closed form is below
  // the recurrence already at i = 2), and measured executions exceed the
  // closed form while respecting the recurrence, which is also what the
  // proof of Lemma 30 actually derives.  We implement the recurrence:
  //   b(1) = a(m);  b(i) = (a(m-1)+1) * sum_{j<i} b(j) + a(m).
  const std::uint64_t am = a_bound(m, m);
  const std::uint64_t am1 = m >= 2 ? a_bound(m - 1, m) : 0;
  std::uint64_t b = am;
  std::uint64_t sum = 0;
  for (std::size_t j = 2; j <= i; ++j) {
    sum = sat_add(sum, b);
    b = sat_add(sat_mul(sat_add(am1, 1), sum), am);
  }
  return b;
}

std::uint64_t covering_step_bound(std::size_t f, std::size_t m) {
  return sat_add(sat_mul(2 * f + 7, b_bound(f, m)), 3);
}

double log2_coarse_step_bound(std::size_t f, std::size_t m) {
  return static_cast<double>(f) * static_cast<double>(m) *
         static_cast<double>(m);
}

std::size_t kset_space_lower_bound(std::size_t n, std::size_t k,
                                   std::size_t x) {
  if (x < 1 || x > k || n <= k) {
    throw std::invalid_argument("need 1 <= x <= k < n");
  }
  return (n - x) / (k + 1 - x) + 1;
}

std::size_t kset_space_upper_bound(std::size_t n, std::size_t k,
                                   std::size_t x) {
  if (x < 1 || x > k || n <= k) {
    throw std::invalid_argument("need 1 <= x <= k < n");
  }
  return n - k + x;
}

double approx_step_lower_bound(double epsilon) {
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    throw std::invalid_argument("epsilon must be in (0,1)");
  }
  return 0.5 * std::log(1.0 / epsilon) / std::log(3.0);
}

std::size_t theorem21_space_bound(std::size_t n, std::size_t f,
                                  double step_lower_bound) {
  if (f == 0) {
    throw std::invalid_argument("need f >= 1");
  }
  const std::size_t via_processes = n / f + 1;
  if (step_lower_bound <= static_cast<double>(f)) {
    return 1;  // the log term is degenerate
  }
  const double via_steps =
      std::sqrt(std::log2(step_lower_bound / static_cast<double>(f)));
  const double floored = std::max(1.0, std::floor(via_steps));
  return std::min(via_processes, static_cast<std::size_t>(floored));
}

std::size_t approx_space_lower_bound(std::size_t n, double epsilon) {
  return theorem21_space_bound(n, 2, approx_step_lower_bound(epsilon));
}

std::string kset_bound_table(std::size_t n_max) {
  std::ostringstream out;
  out << "  n   k   x   lower=floor((n-x)/(k+1-x))+1   upper=n-k+x\n";
  for (std::size_t n = 2; n <= n_max; ++n) {
    for (std::size_t k = 1; k < n; ++k) {
      for (std::size_t x = 1; x <= k; ++x) {
        out << "  " << n << "   " << k << "   " << x << "   "
            << kset_space_lower_bound(n, k, x) << "   "
            << kset_space_upper_bound(n, k, x) << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace revisim::bounds
