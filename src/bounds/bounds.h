// Closed forms of the paper's bounds (§4.5, §4.6).
//
//   a(r): Block-Updates a covering simulator applies inside Construct(r)
//         when all of its Block-Updates are atomic (Lemma 29);
//   b(i): Block-Updates covering simulator q_i applies in any execution
//         (Lemma 30, accounting for yields caused by smaller ids);
//   step bounds of Lemma 31 ((2f+7) b(f) + 3 <= 2^{f m^2});
//   the k-set agreement space lower bound floor((n-x)/(k+1-x)) + 1
//         (Corollary 33) against the known upper bound n-k+x [16];
//   the epsilon-approximate agreement bound min{floor(n/2)+1,
//         sqrt(log2(L/2))} with L = (1/2) log3(1/eps) (Theorem 21(1) /
//         Corollary 34).
//
// Counts saturate at the maximum representable value; log-space variants
// are exact enough for the tables the benches print.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace revisim::bounds {

inline constexpr std::uint64_t kSaturated =
    std::numeric_limits<std::uint64_t>::max();

// Binomial coefficient, saturating.
[[nodiscard]] std::uint64_t choose(std::uint64_t n, std::uint64_t k);

// a(r) for an m-component object (Lemma 29); saturating.
[[nodiscard]] std::uint64_t a_bound(std::size_t r, std::size_t m);

// b(i) = a(m) * (a(m-1) + 1)^{i-1} (Lemma 30); saturating.
[[nodiscard]] std::uint64_t b_bound(std::size_t i, std::size_t m);

// Lemma 31: per-simulator step bound (2f+7) b(f) + 3 in H-operations when
// all simulators are covering; saturating.
[[nodiscard]] std::uint64_t covering_step_bound(std::size_t f, std::size_t m);

// The paper's coarse bound 2^{f m^2} as a base-2 logarithm.
[[nodiscard]] double log2_coarse_step_bound(std::size_t f, std::size_t m);

// Corollary 33: registers needed for x-obstruction-free k-set agreement
// among n > k processes, 1 <= x <= k.
[[nodiscard]] std::size_t kset_space_lower_bound(std::size_t n, std::size_t k,
                                                 std::size_t x);

// Known upper bound n - k + x [Bouzid-Raynal-Sutra].
[[nodiscard]] std::size_t kset_space_upper_bound(std::size_t n, std::size_t k,
                                                 std::size_t x);

// Hoest-Shavit step lower bound for 2-process epsilon-approximate
// agreement: L = (1/2) log3(1/eps).
[[nodiscard]] double approx_step_lower_bound(double epsilon);

// Theorem 21(1), general form: any obstruction-free protocol for a task
// whose f-process wait-free step complexity is at least L needs
// m >= min{ floor(n/f)+1, sqrt(log2(L/f)) } components.
[[nodiscard]] std::size_t theorem21_space_bound(std::size_t n, std::size_t f,
                                                double step_lower_bound);

// Theorem 21(1) with f = 2 and L = (1/2) log3(1/eps):
// min{ floor(n/2)+1, sqrt(log2(L/2)) }.
[[nodiscard]] std::size_t approx_space_lower_bound(std::size_t n,
                                                   double epsilon);

// Renders the (n, k, x) bound table the benches print.
[[nodiscard]] std::string kset_bound_table(std::size_t n_max);

}  // namespace revisim::bounds
