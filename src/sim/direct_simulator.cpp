#include "src/sim/direct_simulator.h"

namespace revisim::sim {

runtime::Task<void> run_direct_simulator(aug::IAugmentedSnapshot& m,
                                         runtime::ProcessId me,
                                         std::unique_ptr<proto::SimProcess> proc,
                                         std::size_t proc_id,
                                         SimulatorOutcome& outcome,
                                         DirectStats& stats) {
  for (;;) {
    auto scan = co_await m.Scan(me);
    ++stats.scans;
    proto::SimAction act = proc->on_scan(scan.view);
    if (act.kind == proto::SimAction::Kind::kOutput) {
      outcome.output = act.output;
      outcome.early_proc = proc_id;
      co_return;
    }
    std::vector<std::size_t> comps{act.component};
    std::vector<Val> vals{act.value};
    co_await m.BlockUpdate(me, std::move(comps), std::move(vals));
    ++stats.block_updates;
  }
}

}  // namespace revisim::sim
