// Human-readable report of a simulation run: who simulated whom, operation
// and revision counts, outputs, and the validation verdict.  Used by the
// examples and the experiment binaries.
#pragma once

#include <string>

#include "src/sim/driver.h"

namespace revisim::sim {

// Renders a multi-line report.  Runs the replay validator unless
// `validate` is false (e.g. for partial runs the caller will cut).
[[nodiscard]] std::string summarize(const SimulationDriver& driver,
                                    bool validate = true);

}  // namespace revisim::sim
