#include "src/sim/driver.h"

namespace revisim::sim {

SimulationDriver::SimulationDriver(runtime::Scheduler& sched,
                                   const proto::Protocol& protocol,
                                   const std::vector<Val>& inputs, Options opt)
    : sched_(sched),
      protocol_(&protocol),
      inputs_(inputs),
      n_(opt.n),
      d_(opt.d),
      part_() {
  const std::size_t f = inputs_.size();
  const std::size_t m = protocol.components();
  if (f == 0 || d_ > f) {
    throw std::invalid_argument("need f >= 1 and d <= f");
  }
  const std::size_t covering = f - d_;
  if (n_ == 0) {
    n_ = covering * m + d_;
  }
  part_ = Partition::make(n_, f, d_, m);
  if (opt.substrate == Substrate::kRegisters) {
    m_ = std::make_unique<aug::RegisterAugmentedSnapshot>(sched_, "M", m, f);
  } else {
    m_ = std::make_unique<aug::AugmentedSnapshot>(sched_, "M", m, f);
  }

  // Covering simulators first: the augmented snapshot favors smaller ids
  // (their Block-Updates yield less), exactly as §4 requires.
  for (std::size_t i = 0; i < covering; ++i) {
    std::vector<std::unique_ptr<proto::SimProcess>> procs;
    for (std::size_t gid : part_.groups[i]) {
      procs.push_back(protocol.make(gid, inputs_[i]));
    }
    covering_.push_back(std::make_unique<CoveringSimulator>(
        *m_, i, std::move(procs), part_.groups[i], opt.local_budget));
    sched_.spawn(covering_.back()->run(), "q" + std::to_string(i + 1));
  }
  for (std::size_t i = covering; i < f; ++i) {
    const std::size_t gid = part_.groups[i][0];
    direct_outcomes_.push_back(std::make_unique<SimulatorOutcome>());
    direct_stats_.push_back(std::make_unique<DirectStats>());
    sched_.spawn(
        run_direct_simulator(*m_, i, protocol.make(gid, inputs_[i]), gid,
                             *direct_outcomes_.back(), *direct_stats_.back()),
        "q" + std::to_string(i + 1));
  }
}

bool SimulationDriver::run(runtime::Adversary& adversary,
                           std::size_t max_steps) {
  return sched_.run(adversary, max_steps, /*throw_on_limit=*/false);
}

std::vector<Val> SimulationDriver::outputs() const {
  std::vector<Val> out;
  for (runtime::ProcessId i = 0; i < f(); ++i) {
    if (finished(i)) {
      out.push_back(outcome(i).output);
    }
  }
  return out;
}

const SimulatorOutcome& SimulationDriver::outcome(runtime::ProcessId i) const {
  if (i < covering_.size()) {
    return covering_[i]->outcome();
  }
  return *direct_outcomes_.at(i - covering_.size());
}

const CoveringStats* SimulationDriver::covering_stats(
    runtime::ProcessId i) const {
  return i < covering_.size() ? &covering_[i]->stats() : nullptr;
}

const DirectStats* SimulationDriver::direct_stats(runtime::ProcessId i) const {
  return i >= covering_.size() ? direct_stats_.at(i - covering_.size()).get()
                               : nullptr;
}

std::vector<RevisionRecord> SimulationDriver::all_revisions() const {
  std::vector<RevisionRecord> out;
  for (const auto& c : covering_) {
    out.insert(out.end(), c->revisions().begin(), c->revisions().end());
  }
  return out;
}

}  // namespace revisim::sim
