// Shared types of the revisionist simulation (§4).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/runtime/trace.h"
#include "src/util/value.h"

namespace revisim::sim {

// A constructed block update: the processes p_{i,1}..p_{i,r} are poised to
// update comps[g] with vals[g] (g = 0..r-1).
struct BlockPlan {
  std::vector<std::size_t> comps;
  std::vector<Val> vals;

  [[nodiscard]] std::size_t size() const noexcept { return comps.size(); }
};

// Outcome of Construct(r): either a block plan, or a simulated process
// terminated with an output (then the simulator outputs it too).
struct ConstructOutcome {
  std::optional<Val> output;
  BlockPlan plan;
};

// (component, value) of an update a simulated process is poised at.
using PoisedUpdate = std::pair<std::size_t, Val>;

// One revision of the past (§4.1): immediately after the M.Scan with op id
// `at_scan_op`, the covering simulator locally simulated a solo execution of
// simulated process `revised_proc` (global id), assuming the contents of M
// were the view returned by the atomic Block-Update `used_block_update`.
// The hidden steps and the resulting poised update are recorded so the
// replay validator can cross-check its own recomputation.
struct RevisionRecord {
  std::size_t used_block_update = 0;  // op id of the atomic M.Block-Update
  std::size_t at_scan_op = 0;         // op id of the M.Scan delta
  std::size_t revised_proc = 0;       // global simulated process id
  std::vector<PoisedUpdate> hidden_updates;  // within the plan's components
  std::optional<PoisedUpdate> final_update;  // nullopt: the process output
  std::optional<Val> early_output;           // set when the process output
};

// How a simulator finished.
struct SimulatorOutcome {
  Val output = 0;
  bool output_from_final_run = false;     // covering: via Construct(m)+beta,xi
  std::optional<std::size_t> early_proc;  // simulated process that output early
  BlockPlan final_beta;                   // covering, final run only
};

// Thrown when a local solo simulation exceeds its budget, i.e. the protocol
// fed to the simulation is not (x-)obstruction-free.
class SimulationDiverged : public std::runtime_error {
 public:
  explicit SimulationDiverged(const std::string& what)
      : std::runtime_error(what) {}
};

// Partition of the n simulated processes among the f simulators (§2.1):
// covering simulators get m processes each, direct simulators one.
struct Partition {
  std::vector<std::vector<std::size_t>> groups;  // groups[i] = P_{i+1}

  static Partition make(std::size_t n, std::size_t f, std::size_t d,
                        std::size_t m) {
    if (d > f) {
      throw std::invalid_argument("d <= f required");
    }
    const std::size_t covering = f - d;
    if (covering * m + d > n) {
      throw std::invalid_argument(
          "not enough simulated processes: need (f-d)*m + d <= n");
    }
    Partition p;
    std::size_t next = 0;
    for (std::size_t i = 0; i < covering; ++i) {
      std::vector<std::size_t> g(m);
      for (std::size_t j = 0; j < m; ++j) {
        g[j] = next++;
      }
      p.groups.push_back(std::move(g));
    }
    for (std::size_t i = 0; i < d; ++i) {
      p.groups.push_back({next++});
    }
    return p;
  }
};

}  // namespace revisim::sim
