// Covering simulator (§4.1-4.2, Algorithms 6-7).
//
// A covering simulator owns m simulated processes p_{i,1}..p_{i,m} and tries
// to construct a block update covering all m components of M.  Construct(r)
// recursively builds block updates to r components: it repeatedly obtains
// (r-1)-component block updates from Construct(r-1) and simulates them with
// M.Block-Update operations, until a constructed block update hits a set of
// components that an earlier *atomic* Block-Update (one that returned a view
// V instead of the yield symbol) already updated.  At that point the
// simulator *revises the past* of p_{i,r}: it locally simulates a solo
// execution of p_{i,r} assuming the contents of M are V, whose updates land
// only on components the matching block update covers (hidden steps), until
// p_{i,r} is poised to update a fresh component - extending the block update
// to r components.  Construct(m) plus a final locally simulated run of
// p_{i,1} after the full block overwrite yields the simulator's output
// (Algorithm 7).
#pragma once

#include <memory>
#include <vector>

#include "src/augmented/augmented_snapshot.h"
#include "src/protocols/sim_process.h"
#include "src/runtime/task.h"
#include "src/sim/types.h"

namespace revisim::sim {

struct CoveringStats {
  std::size_t scans = 0;
  std::size_t block_updates = 0;
  std::size_t yields = 0;      // Block-Updates that returned the yield symbol
  std::size_t revisions = 0;   // pasts revised
  std::size_t local_steps = 0; // locally simulated (hidden + final) steps
};

class CoveringSimulator {
 public:
  // `procs` are p_{i,1}..p_{i,m} (fresh, all with the simulator's input);
  // `global_ids` are their ids in the simulated system.
  CoveringSimulator(aug::IAugmentedSnapshot& m, runtime::ProcessId me,
                    std::vector<std::unique_ptr<proto::SimProcess>> procs,
                    std::vector<std::size_t> global_ids,
                    std::size_t local_budget);

  // Algorithm 7; the coroutine is the whole life of real process q_{me+1}.
  runtime::Task<void> run();

  [[nodiscard]] const SimulatorOutcome& outcome() const noexcept {
    return outcome_;
  }
  [[nodiscard]] const CoveringStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<RevisionRecord>& revisions() const noexcept {
    return revisions_;
  }

 private:
  struct LocalSimResult {
    std::vector<PoisedUpdate> hidden;
    std::optional<PoisedUpdate> final_update;
    std::optional<Val> output;
  };

  runtime::Task<ConstructOutcome> construct(std::size_t r);

  // Solo-simulates procs_[idx] on `base` (its own updates applied locally),
  // recording updates to `allowed` components as hidden steps, until it is
  // poised to update a component outside `allowed` or outputs.
  LocalSimResult simulate_locally(std::size_t idx, View base,
                                  const std::vector<std::size_t>& allowed);

  aug::IAugmentedSnapshot& m_;
  runtime::ProcessId me_;
  std::vector<std::unique_ptr<proto::SimProcess>> procs_;
  std::vector<std::size_t> global_ids_;
  std::size_t local_budget_;
  std::size_t last_scan_op_ = 0;  // op id of the most recent M.Scan (delta)

  SimulatorOutcome outcome_;
  CoveringStats stats_;
  std::vector<RevisionRecord> revisions_;
};

}  // namespace revisim::sim
