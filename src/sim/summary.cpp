#include "src/sim/summary.h"

#include <sstream>

#include "src/sim/replay.h"

namespace revisim::sim {

std::string summarize(const SimulationDriver& driver, bool validate) {
  std::ostringstream out;
  out << "simulation: " << driver.protocol().name() << " | f = " << driver.f()
      << " (" << driver.f() - driver.direct() << " covering, "
      << driver.direct() << " direct) | m = " << driver.m()
      << " | n = " << driver.n() << "\n";
  for (runtime::ProcessId i = 0; i < driver.f(); ++i) {
    out << "  q" << i + 1 << " simulates {";
    for (std::size_t gid : driver.partition().groups[i]) {
      out << " p" << gid + 1;
    }
    out << " }, input " << driver.inputs()[i];
    if (driver.finished(i)) {
      const SimulatorOutcome& oc = driver.outcome(i);
      out << " -> output " << oc.output
          << (oc.output_from_final_run ? " (final local run)"
                                       : " (early decision)");
    } else {
      out << " -> unfinished";
    }
    if (const CoveringStats* st = driver.covering_stats(i)) {
      out << " [" << st->scans << " Scans, " << st->block_updates
          << " Block-Updates (" << st->yields << " yields), " << st->revisions
          << " revisions, " << st->local_steps << " hidden/local steps]";
    } else if (const DirectStats* ds = driver.direct_stats(i)) {
      out << " [" << ds->scans << " Scans, " << ds->block_updates
          << " Block-Updates]";
    }
    out << "\n";
  }
  if (validate) {
    auto report = validate_simulation(driver);
    out << "  replay validation: "
        << (report.ok() ? "legal execution of the protocol"
                        : report.violations.front())
        << " (" << report.linearized_ops << " linearized ops, "
        << report.hidden_steps_inserted << " hidden steps, "
        << report.revisions_validated << " revisions)\n";
  }
  return out.str();
}

}  // namespace revisim::sim
