// Simulation driver: wires up the real system of Theorem 21.
//
// f real processes (f - d covering simulators with the smaller ids, d direct
// simulators) share one m-component augmented snapshot and simulate n
// processes running the protocol Pi in the simulated system.  The driver
// owns the object, the simulators and their logs, runs the real system under
// any adversary, and hands everything to the validator (replay.h), which
// reconstructs the corresponding simulated execution per Lemma 26.
#pragma once

#include <memory>
#include <vector>

#include "src/augmented/augmented_snapshot.h"
#include "src/protocols/sim_process.h"
#include "src/runtime/adversary.h"
#include "src/runtime/scheduler.h"
#include "src/sim/covering_simulator.h"
#include "src/sim/direct_simulator.h"
#include "src/sim/types.h"

namespace revisim::sim {

class SimulationDriver {
 public:
  // Which implementation of the augmented snapshot the real system uses.
  enum class Substrate {
    kAtomicSnapshot,   // H = atomic single-writer snapshot (the paper's model)
    kRegisters,        // H = Afek et al. from plain registers
  };

  struct Options {
    // Simulated process count; 0 means the minimum (f-d)*m + d.
    std::size_t n = 0;
    // Number of direct simulators (the paper's d = x).
    std::size_t d = 0;
    // Budget for each local solo simulation (guards against non-
    // obstruction-free protocols).
    std::size_t local_budget = 200'000;
    Substrate substrate = Substrate::kAtomicSnapshot;
  };

  // `inputs[i]` is simulator q_{i+1}'s input (f = inputs.size()).
  SimulationDriver(runtime::Scheduler& sched, const proto::Protocol& protocol,
                   const std::vector<Val>& inputs, Options opt);
  SimulationDriver(runtime::Scheduler& sched, const proto::Protocol& protocol,
                   const std::vector<Val>& inputs)
      : SimulationDriver(sched, protocol, inputs, Options()) {}

  // Runs the real system to completion; returns false on step-limit cut.
  bool run(runtime::Adversary& adversary,
           std::size_t max_steps = runtime::Scheduler::kDefaultMaxSteps);

  [[nodiscard]] std::size_t f() const noexcept { return inputs_.size(); }
  [[nodiscard]] std::size_t m() const noexcept { return m_->components(); }
  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t direct() const noexcept { return d_; }
  [[nodiscard]] const std::vector<Val>& inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] const Partition& partition() const noexcept { return part_; }
  [[nodiscard]] const proto::Protocol& protocol() const noexcept {
    return *protocol_;
  }
  [[nodiscard]] aug::IAugmentedSnapshot& snapshot() noexcept { return *m_; }
  [[nodiscard]] const aug::IAugmentedSnapshot& snapshot() const noexcept {
    return *m_;
  }
  [[nodiscard]] runtime::Scheduler& scheduler() noexcept { return sched_; }

  [[nodiscard]] bool finished(runtime::ProcessId i) const {
    return sched_.is_done(i);
  }
  // Outputs of the finished simulators.
  [[nodiscard]] std::vector<Val> outputs() const;
  [[nodiscard]] const SimulatorOutcome& outcome(runtime::ProcessId i) const;

  [[nodiscard]] const CoveringStats* covering_stats(runtime::ProcessId i) const;
  [[nodiscard]] const DirectStats* direct_stats(runtime::ProcessId i) const;
  // All revisions performed by all covering simulators.
  [[nodiscard]] std::vector<RevisionRecord> all_revisions() const;

 private:
  runtime::Scheduler& sched_;
  const proto::Protocol* protocol_;
  std::vector<Val> inputs_;
  std::size_t n_;
  std::size_t d_;
  Partition part_;
  std::unique_ptr<aug::IAugmentedSnapshot> m_;
  std::vector<std::unique_ptr<CoveringSimulator>> covering_;
  // Direct-simulator sinks (stable addresses).
  std::vector<std::unique_ptr<SimulatorOutcome>> direct_outcomes_;
  std::vector<std::unique_ptr<DirectStats>> direct_stats_;
};

}  // namespace revisim::sim
