#include "src/sim/replay.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/augmented/linearizer.h"

namespace revisim::sim {
namespace {

std::string fmt_update(std::size_t comp, Val val) {
  return "update(c" + std::to_string(comp) + ", " + std::to_string(val) + ")";
}

}  // namespace

ReplayReport validate_simulation(const SimulationDriver& driver) {
  return validate_simulation(driver, driver.all_revisions());
}

ReplayReport validate_simulation(const SimulationDriver& driver,
                                 const std::vector<RevisionRecord>& revisions) {
  ReplayReport report;
  auto violate = [&report](const std::string& msg) {
    report.violations.push_back(msg);
  };

  const std::size_t m = driver.m();
  const aug::OpLog& log = driver.snapshot().log();
  aug::LinearizationResult lin = aug::linearize(log, m);
  for (const auto& v : lin.violations) {
    violate("linearizer: " + v);
  }
  if (!report.ok()) {
    return report;
  }
  const auto& ops = lin.ops;
  report.linearized_ops = ops.size();

  // Simulator owning each op, and the simulated process of each op:
  //   Scan by q_i          -> P_i[0]'s scan;
  //   Update position g    -> P_i[g]'s update.
  const Partition& part = driver.partition();

  // Map op id -> Block-Update record, and Block-Update op id -> revision.
  std::map<std::size_t, const aug::BlockUpdateOpRecord*> bu_by_id;
  for (const auto& b : log.block_updates) {
    bu_by_id[b.op_id] = &b;
  }
  std::map<std::size_t, const RevisionRecord*> rev_by_bu;
  for (const auto& r : revisions) {
    if (!rev_by_bu.emplace(r.used_block_update, &r).second) {
      violate("two revisions used Block-Update#" +
              std::to_string(r.used_block_update));
    }
  }

  // Prefix contents (no hidden steps): prefix[t] = contents after first t ops.
  std::vector<View> prefix(ops.size() + 1);
  prefix[0] = View(m);
  for (std::size_t t = 0; t < ops.size(); ++t) {
    prefix[t + 1] = prefix[t];
    if (ops[t].kind == aug::LinearizedOp::Kind::kUpdate) {
      prefix[t + 1].at(ops[t].component) = ops[t].value;
    }
  }

  // Choose an insertion point for every used atomic Block-Update: the latest
  // t in (previous atomic update .. first own update] where the contents
  // equal the view the revision used and no Scan follows before the block.
  std::map<std::size_t, std::vector<const RevisionRecord*>> insert_at;
  {
    std::size_t last_atomic_end = 0;  // index just past the last atomic update
    std::map<std::size_t, bool> first_seen;
    for (std::size_t z = 0; z < ops.size(); ++z) {
      const auto& op = ops[z];
      if (op.kind != aug::LinearizedOp::Kind::kUpdate || !op.from_atomic) {
        continue;
      }
      if (!first_seen.emplace(op.op_id, true).second) {
        last_atomic_end = z + 1;
        continue;  // only the first update of each block starts a window
      }
      auto it = rev_by_bu.find(op.op_id);
      if (it != rev_by_bu.end()) {
        const aug::BlockUpdateOpRecord* bu = bu_by_id.at(op.op_id);
        bool placed = false;
        for (std::size_t t = z + 1; t-- > last_atomic_end;) {
          bool scan_between = false;
          for (std::size_t i = t; i < z; ++i) {
            if (ops[i].kind == aug::LinearizedOp::Kind::kScan) {
              scan_between = true;
              break;
            }
          }
          if (!scan_between && prefix[t] == bu->returned) {
            insert_at[t].push_back(it->second);
            placed = true;
            break;
          }
        }
        if (!placed) {
          violate("no window point for revision using Block-Update#" +
                  std::to_string(op.op_id));
        }
      }
      last_atomic_end = z + 1;
    }
  }
  if (!report.ok()) {
    return report;
  }

  // Fresh replicas of the simulated system.
  const std::size_t n = driver.n();
  std::vector<std::unique_ptr<proto::SimProcess>> replica(n);
  std::vector<std::optional<PoisedUpdate>> pending(n);
  std::vector<std::optional<Val>> produced(n);
  for (std::size_t i = 0; i < part.groups.size(); ++i) {
    for (std::size_t gid : part.groups[i]) {
      replica[gid] = driver.protocol().make(gid, driver.inputs()[i]);
    }
  }
  View contents(m);

  auto run_insertions = [&](std::size_t t) {
    auto it = insert_at.find(t);
    if (it == insert_at.end()) {
      return;
    }
    for (const RevisionRecord* rev : it->second) {
      const aug::BlockUpdateOpRecord* bu = bu_by_id.at(rev->used_block_update);
      const std::size_t p = rev->revised_proc;
      ++report.revisions_validated;
      std::size_t hidden_idx = 0;
      const std::size_t budget = rev->hidden_updates.size() + 2;
      for (std::size_t step = 0; step < budget; ++step) {
        if (produced[p]) {
          violate("revised p_" + std::to_string(p + 1) +
                  " already output before its revision");
          break;
        }
        proto::SimAction act = replica[p]->on_scan(contents);
        if (act.kind == proto::SimAction::Kind::kOutput) {
          if (!rev->early_output || *rev->early_output != act.output) {
            violate("hidden run of p_" + std::to_string(p + 1) +
                    " output " + std::to_string(act.output) +
                    " but the simulator recorded a different ending");
          }
          produced[p] = act.output;
          break;
        }
        const bool allowed =
            std::find(bu->comps.begin(), bu->comps.end(), act.component) !=
            bu->comps.end();
        if (allowed && hidden_idx < rev->hidden_updates.size()) {
          const auto& expect = rev->hidden_updates[hidden_idx++];
          if (expect.first != act.component || expect.second != act.value) {
            violate("hidden step mismatch for p_" + std::to_string(p + 1) +
                    ": replay " + fmt_update(act.component, act.value) +
                    " vs recorded " +
                    fmt_update(expect.first, expect.second));
            break;
          }
          contents.at(act.component) = act.value;
          ++report.hidden_steps_inserted;
          continue;
        }
        // Must be the final poised update outside the block's components.
        if (!rev->final_update || rev->final_update->first != act.component ||
            rev->final_update->second != act.value ||
            hidden_idx != rev->hidden_updates.size()) {
          violate("revision ending mismatch for p_" + std::to_string(p + 1));
        } else {
          pending[p] = PoisedUpdate{act.component, act.value};
        }
        break;
      }
    }
  };

  for (std::size_t t = 0; t < ops.size(); ++t) {
    run_insertions(t);
    if (!report.ok()) {
      return report;
    }
    const auto& op = ops[t];
    const std::size_t sim = op.process;
    if (op.kind == aug::LinearizedOp::Kind::kScan) {
      const std::size_t p = part.groups.at(sim)[0];
      if (op.returned != contents) {
        violate("Scan#" + std::to_string(op.op_id) + " returned " +
                to_string(op.returned) + " but replayed contents are " +
                to_string(contents));
        return report;
      }
      if (produced[p]) {
        violate("p_" + std::to_string(p + 1) + " scanned after outputting");
        return report;
      }
      if (pending[p]) {
        violate("p_" + std::to_string(p + 1) +
                " scanned while poised to update (alternation broken)");
        return report;
      }
      proto::SimAction act = replica[p]->on_scan(contents);
      if (act.kind == proto::SimAction::Kind::kOutput) {
        produced[p] = act.output;
      } else {
        pending[p] = PoisedUpdate{act.component, act.value};
      }
    } else {
      const std::size_t p = part.groups.at(sim).at(op.position);
      // Proposition 25: the applied update must be exactly the replica's
      // poised step.
      if (!pending[p] || pending[p]->first != op.component ||
          pending[p]->second != op.value) {
        std::ostringstream why;
        why << "Update by q" << sim + 1 << " for p_" << p + 1 << " applied "
            << fmt_update(op.component, op.value) << " but replica is ";
        if (pending[p]) {
          why << "poised at " << fmt_update(pending[p]->first,
                                            pending[p]->second);
        } else {
          why << "not poised to update";
        }
        violate(why.str());
        return report;
      }
      contents.at(op.component) = op.value;
      pending[p].reset();
    }
  }
  run_insertions(ops.size());

  // Final outcomes (Lemma 27).
  for (runtime::ProcessId i = 0; i < driver.f(); ++i) {
    if (!driver.finished(i)) {
      continue;
    }
    const SimulatorOutcome& oc = driver.outcome(i);
    if (oc.output_from_final_run) {
      // The simulator's processes must be poised to perform beta, which
      // overwrites all of M; then p_{i,1} runs solo to oc.output.
      const auto& group = part.groups.at(i);
      if (oc.final_beta.size() != m) {
        violate("q" + std::to_string(i + 1) + " final block is not full");
        continue;
      }
      View w = contents;
      bool plan_ok = true;
      for (std::size_t g = 0; g < m; ++g) {
        const std::size_t p = group[g];
        if (!pending[p] || pending[p]->first != oc.final_beta.comps[g] ||
            pending[p]->second != oc.final_beta.vals[g]) {
          violate("q" + std::to_string(i + 1) + ": p_" + std::to_string(p + 1) +
                  " is not poised to perform its step of beta");
          plan_ok = false;
          break;
        }
        w.at(oc.final_beta.comps[g]) = oc.final_beta.vals[g];
      }
      if (!plan_ok) {
        continue;
      }
      auto xi = replica[group[0]]->clone();
      bool matched = false;
      for (std::size_t step = 0; step < 1'000'000; ++step) {
        proto::SimAction act = xi->on_scan(w);
        if (act.kind == proto::SimAction::Kind::kOutput) {
          if (act.output != oc.output) {
            violate("q" + std::to_string(i + 1) + " output " +
                    std::to_string(oc.output) + " but replayed xi outputs " +
                    std::to_string(act.output));
          }
          matched = true;
          break;
        }
        w.at(act.component) = act.value;
      }
      if (!matched) {
        violate("q" + std::to_string(i + 1) +
                ": replayed final solo run does not terminate");
      }
    } else {
      // Early output by one of its simulated processes.
      if (!oc.early_proc) {
        violate("q" + std::to_string(i + 1) +
                " finished without a recorded source process");
        continue;
      }
      const std::size_t p = *oc.early_proc;
      if (!produced[p] || *produced[p] != oc.output) {
        violate("q" + std::to_string(i + 1) + " output " +
                std::to_string(oc.output) + " but replica p_" +
                std::to_string(p + 1) +
                (produced[p] ? " output " + std::to_string(*produced[p])
                             : std::string(" produced nothing")));
      }
    }
  }

  return report;
}

}  // namespace revisim::sim
