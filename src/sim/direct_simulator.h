// Direct simulator (§4.1, Algorithm 5).
//
// A direct simulator q_i owns a single simulated process and simulates it
// step by step: an M.Scan for each of its scans, a one-component
// M.Block-Update for each of its updates (the returned view is ignored).
// When the process outputs, the simulator outputs the same value.
#pragma once

#include "src/augmented/augmented_snapshot.h"
#include "src/protocols/sim_process.h"
#include "src/runtime/task.h"
#include "src/sim/types.h"

namespace revisim::sim {

struct DirectStats {
  std::size_t scans = 0;
  std::size_t block_updates = 0;
};

// Runs the whole life of direct simulator `me` simulating `proc` (global id
// `proc_id`).  Writes the outcome and stats through the given sinks, which
// must outlive the coroutine.
runtime::Task<void> run_direct_simulator(aug::IAugmentedSnapshot& m,
                                         runtime::ProcessId me,
                                         std::unique_ptr<proto::SimProcess> proc,
                                         std::size_t proc_id,
                                         SimulatorOutcome& outcome,
                                         DirectStats& stats);

}  // namespace revisim::sim
