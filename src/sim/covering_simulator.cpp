#include "src/sim/covering_simulator.h"

#include <algorithm>
#include <set>

namespace revisim::sim {

CoveringSimulator::CoveringSimulator(
    aug::IAugmentedSnapshot& m, runtime::ProcessId me,
    std::vector<std::unique_ptr<proto::SimProcess>> procs,
    std::vector<std::size_t> global_ids, std::size_t local_budget)
    : m_(m),
      me_(me),
      procs_(std::move(procs)),
      global_ids_(std::move(global_ids)),
      local_budget_(local_budget) {
  if (procs_.size() != m_.components() ||
      global_ids_.size() != procs_.size()) {
    throw std::invalid_argument("covering simulator needs |P_i| = m");
  }
}

CoveringSimulator::LocalSimResult CoveringSimulator::simulate_locally(
    std::size_t idx, View base, const std::vector<std::size_t>& allowed) {
  LocalSimResult res;
  std::set<std::size_t> allowed_set(allowed.begin(), allowed.end());
  for (std::size_t step = 0; step < local_budget_; ++step) {
    ++stats_.local_steps;
    proto::SimAction act = procs_[idx]->on_scan(base);
    if (act.kind == proto::SimAction::Kind::kOutput) {
      res.output = act.output;
      return res;
    }
    if (allowed_set.contains(act.component)) {
      // Hidden step: the update lands on a component the matching block
      // update will overwrite, so it stays invisible to everyone else.
      base.at(act.component) = act.value;
      res.hidden.emplace_back(act.component, act.value);
      continue;
    }
    res.final_update = PoisedUpdate{act.component, act.value};
    return res;
  }
  throw SimulationDiverged(
      "local solo simulation of p_" + std::to_string(global_ids_[idx] + 1) +
      " exceeded its budget; the protocol is not obstruction-free");
}

runtime::Task<ConstructOutcome> CoveringSimulator::construct(std::size_t r) {
  ConstructOutcome out;
  if (r == 1) {
    // Base case: one M.Scan simulating p_{i,1}'s pending scan.
    auto scan = co_await m_.Scan(me_);
    ++stats_.scans;
    last_scan_op_ = scan.op_id;
    proto::SimAction act = procs_[0]->on_scan(scan.view);
    if (act.kind == proto::SimAction::Kind::kOutput) {
      out.output = act.output;
      outcome_.early_proc = global_ids_[0];
      co_return out;
    }
    out.plan.comps.push_back(act.component);
    out.plan.vals.push_back(act.value);
    co_return out;
  }

  struct AEntry {
    std::set<std::size_t> comps;
    View view;
    std::size_t op_id;
  };
  std::vector<AEntry> a;

  for (;;) {
    ConstructOutcome sub = co_await construct(r - 1);
    if (sub.output) {
      co_return sub;
    }
    std::set<std::size_t> key(sub.plan.comps.begin(), sub.plan.comps.end());
    const AEntry* match = nullptr;
    for (const AEntry& e : a) {
      if (e.comps == key) {
        match = &e;
        break;
      }
    }
    if (match != nullptr) {
      // Revise the past of p_{i,r} using the view of the matching atomic
      // Block-Update, immediately after the last M.Scan (delta).
      RevisionRecord rev;
      rev.used_block_update = match->op_id;
      rev.at_scan_op = last_scan_op_;
      rev.revised_proc = global_ids_[r - 1];
      LocalSimResult local =
          simulate_locally(r - 1, match->view, sub.plan.comps);
      ++stats_.revisions;
      rev.hidden_updates = local.hidden;
      rev.final_update = local.final_update;
      rev.early_output = local.output;
      revisions_.push_back(std::move(rev));
      if (local.output) {
        out.output = local.output;
        outcome_.early_proc = global_ids_[r - 1];
        co_return out;
      }
      out.plan = std::move(sub.plan);
      out.plan.comps.push_back(local.final_update->first);
      out.plan.vals.push_back(local.final_update->second);
      co_return out;
    }
    // Simulate the pending updates of p_{i,1}..p_{i,r-1} as one
    // M.Block-Update; remember it (with its view) when it was atomic.
    auto res = co_await m_.BlockUpdate(me_, sub.plan.comps, sub.plan.vals);
    ++stats_.block_updates;
    if (res.yielded) {
      ++stats_.yields;
    } else {
      a.push_back(AEntry{std::move(key), std::move(res.view), res.op_id});
    }
  }
}

runtime::Task<void> CoveringSimulator::run() {
  ConstructOutcome out = co_await construct(m_.components());
  if (out.output) {
    outcome_.output = *out.output;
    outcome_.output_from_final_run = false;
    co_return;
  }
  // Algorithm 7: locally apply the full block update beta (it overwrites
  // every component of M) and p_{i,1}'s terminating solo execution after it.
  View w(m_.components());
  for (std::size_t g = 0; g < out.plan.size(); ++g) {
    w.at(out.plan.comps[g]) = out.plan.vals[g];
  }
  auto xi_runner = procs_[0]->clone();
  for (std::size_t step = 0; step < local_budget_; ++step) {
    ++stats_.local_steps;
    proto::SimAction act = xi_runner->on_scan(w);
    if (act.kind == proto::SimAction::Kind::kOutput) {
      outcome_.output = act.output;
      outcome_.output_from_final_run = true;
      outcome_.final_beta = std::move(out.plan);
      co_return;
    }
    w.at(act.component) = act.value;
  }
  throw SimulationDiverged(
      "final solo run of p_" + std::to_string(global_ids_[0] + 1) +
      " exceeded its budget; the protocol is not obstruction-free");
}

}  // namespace revisim::sim
