// Simulated-execution reconstruction and validation (§4.3-4.4).
//
// Lemma 26 of the paper proves that every real execution of the simulators
// corresponds to an execution of the protocol Pi in the simulated system,
// obtained by taking the linearized M.Scan/M.Update sequence (the
// "intermediate execution"), inserting each revision's hidden solo steps at
// a point inside the window of the atomic Block-Update whose view it used,
// and appending each covering simulator's final local run.  This module
// *checks* that theorem on concrete runs:
//
//   1. it computes the linearization (augmented/linearizer.h) and the block
//      decomposition;
//   2. for every revision it locates a window point T where the contents of
//      M equal the view the revision used, with no Scan linearized between T
//      and the Block-Update (Lemma 19 shape);
//   3. it replays the whole reconstructed sequence against fresh replicas of
//      the simulated processes, checking that every step a simulator applied
//      is exactly the step the replica takes (Proposition 25 / Lemma 26.2),
//      that every Scan returns the replayed contents of M, that hidden steps
//      match the simulator's local simulation, and that each simulator's
//      output equals what the replicas produce (Lemma 27);
//
// so a passing report certifies that the simulators' outputs are genuine
// outputs of Pi in a legal execution of the simulated system.
#pragma once

#include <string>
#include <vector>

#include "src/sim/driver.h"

namespace revisim::sim {

struct ReplayReport {
  std::vector<std::string> violations;
  std::size_t linearized_ops = 0;
  std::size_t hidden_steps_inserted = 0;
  std::size_t revisions_validated = 0;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

// Validates the (possibly partial) execution recorded by the driver.
[[nodiscard]] ReplayReport validate_simulation(const SimulationDriver& driver);

// Variant with an explicit revision list, replacing the simulators' own
// records.  Exists so tests can prove the validator *rejects* tampered
// bookkeeping (a checker that cannot fail checks nothing).
[[nodiscard]] ReplayReport validate_simulation(
    const SimulationDriver& driver,
    const std::vector<RevisionRecord>& revisions);

}  // namespace revisim::sim
