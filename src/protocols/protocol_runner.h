// Direct executor for simulated-system protocols.
//
// Runs n SimProcess state machines against an atomic m-component snapshot at
// shared-memory-step granularity (a scan and an update are separate atomic
// steps), under any schedule.  Unlike the coroutine runtime, the entire
// configuration here is a value: it can be copied, hashed and restored,
// which the protocol model checker (src/check/protocol_check.h) and the
// obstruction-freedom probes rely on.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "src/protocols/sim_process.h"

namespace revisim::proto {

class ProtocolRun {
 public:
  // Builds the initial configuration: process i gets inputs[i].
  ProtocolRun(const Protocol& protocol, const std::vector<Val>& inputs);
  ProtocolRun(const ProtocolRun& other);
  ProtocolRun& operator=(const ProtocolRun& other);
  ProtocolRun(ProtocolRun&&) noexcept = default;
  ProtocolRun& operator=(ProtocolRun&&) noexcept = default;

  [[nodiscard]] std::size_t processes() const noexcept { return procs_.size(); }
  [[nodiscard]] bool done(std::size_t i) const { return procs_.at(i).output.has_value(); }
  [[nodiscard]] bool all_done() const;
  [[nodiscard]] std::optional<Val> output(std::size_t i) const {
    return procs_.at(i).output;
  }
  [[nodiscard]] std::vector<Val> outputs() const;  // finished processes only
  [[nodiscard]] const View& contents() const noexcept { return contents_; }
  [[nodiscard]] std::size_t steps_taken(std::size_t i) const {
    return procs_.at(i).steps;
  }

  // One atomic step by process i: the pending scan (feeding current
  // contents) or the pending update.  No-op if the process has output.
  void step(std::size_t i);

  // Runs process i alone until it outputs or the step budget runs out;
  // returns true iff it output.  This is the defining schedule of
  // obstruction-freedom.
  bool run_solo(std::size_t i, std::size_t max_steps);

  // Runs the given set of processes round-robin until all output or the
  // budget runs out; returns true iff all output.  With |set| <= x this is
  // the canonical x-obstruction-freedom schedule.
  bool run_fair(const std::vector<std::size_t>& set, std::size_t max_steps);

  // Runs all processes under a seeded random schedule.
  bool run_random(std::uint64_t seed, std::size_t max_steps);

  // Step log: every applied atomic step, in execution order (used by the
  // ABA-freedom and halving-invariant checks).
  struct StepRecord {
    std::size_t process;
    bool is_update;
    std::size_t component;
    Val value;
  };
  [[nodiscard]] const std::vector<StepRecord>& log() const noexcept {
    return log_;
  }

  // Canonical encoding of the full configuration (contents + every process's
  // state, pending action and output), for state-space deduplication.
  [[nodiscard]] std::string state_key() const;

 private:
  struct Proc {
    std::unique_ptr<SimProcess> sm;
    std::optional<SimAction> pending;  // poised update, if any
    std::optional<Val> output;
    std::size_t steps = 0;
  };

  View contents_;
  std::vector<Proc> procs_;
  std::vector<StepRecord> log_;
};

}  // namespace revisim::proto
