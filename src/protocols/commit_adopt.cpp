#include "src/protocols/commit_adopt.h"

#include <optional>

namespace revisim::proto {
namespace {

// Component entry: (phase, grade, value) - one-shot, so no round field.
constexpr Val pack_entry(std::uint8_t phase, std::uint8_t grade,
                         std::int32_t v) {
  return (Val{phase} << 34) | (Val{grade} << 33) |
         static_cast<Val>(static_cast<std::uint32_t>(v));
}

struct Entry {
  std::uint8_t phase;
  std::uint8_t grade;
  std::int32_t value;
};

Entry unpack_entry(Val v) {
  return Entry{static_cast<std::uint8_t>((v >> 34) & 0x3),
               static_cast<std::uint8_t>((v >> 33) & 0x1),
               static_cast<std::int32_t>(static_cast<std::uint32_t>(v))};
}

class CAOneShot final : public SimProcess {
 public:
  CAOneShot(std::size_t my_comp, Val input)
      : my_comp_(my_comp), value_(static_cast<std::int32_t>(input)) {}

  SimAction on_scan(const View& view) override {
    switch (stage_) {
      case Stage::kInit:
        stage_ = Stage::kSentPhase1;
        return SimAction::make_update(my_comp_, pack_entry(1, 0, value_));
      case Stage::kSentPhase1: {
        // Phase-1 collect: every visible proposal (any phase carries its
        // owner's proposal).
        bool uniform = true;
        for (const auto& c : view) {
          if (c && unpack_entry(*c).value != value_) {
            uniform = false;
            break;
          }
        }
        grade_ = uniform ? 1 : 0;
        stage_ = Stage::kSentPhase2;
        return SimAction::make_update(my_comp_,
                                      pack_entry(2, grade_, value_));
      }
      case Stage::kSentPhase2: {
        bool all_clean = true;
        std::optional<std::int32_t> clean_val;
        std::optional<std::int32_t> common;
        bool first = true;
        for (const auto& c : view) {
          if (!c) {
            continue;
          }
          Entry e = unpack_entry(*c);
          if (e.phase != 2) {
            continue;
          }
          if (e.grade == 1) {
            clean_val = e.value;
          } else {
            all_clean = false;
          }
          if (first) {
            common = e.value;
            first = false;
          } else if (common != e.value) {
            common.reset();
          }
        }
        if (all_clean && common) {
          return SimAction::make_output(pack_ca_result(true, *common));
        }
        return SimAction::make_output(
            pack_ca_result(false, clean_val.value_or(value_)));
      }
    }
    return SimAction::make_output(pack_ca_result(false, value_));
  }

  [[nodiscard]] std::unique_ptr<SimProcess> clone() const override {
    return std::make_unique<CAOneShot>(*this);
  }

  [[nodiscard]] std::string state_key() const override {
    return "ca" + std::to_string(static_cast<int>(stage_)) + "." +
           std::to_string(grade_) + "v" + std::to_string(value_);
  }

 private:
  enum class Stage : std::uint8_t { kInit, kSentPhase1, kSentPhase2 };
  std::size_t my_comp_;
  std::int32_t value_;
  std::uint8_t grade_ = 0;
  Stage stage_ = Stage::kInit;
};

}  // namespace

std::unique_ptr<SimProcess> CommitAdopt::make(std::size_t index,
                                              Val input) const {
  return std::make_unique<CAOneShot>(index, input);
}

}  // namespace revisim::proto
