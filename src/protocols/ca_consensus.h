// Round-based consensus from n single-writer components via embedded
// commit-adopt, and its grouped k-set agreement generalization.
//
// Process i owns component i.  A round r has two phases, folded into the
// owner's component as a tagged entry (round, phase, grade, value):
//
//   phase 1: publish (r, 1, v); collect; grade = clean iff every visible
//            round-r value equals v;
//   phase 2: publish (r, 2, v, grade); collect; if every visible round-r
//            phase-2 entry is clean with one value v*, decide v*; otherwise
//            adopt a clean value if one exists (all clean phase-2 entries of
//            a round agree) and advance to round r+1.
//
// A process that observes a higher round jumps to it, adopting a value by
// priority phase-2-clean > phase-2-dirty > phase-1.  This is the classical
// commit-adopt safety core (two clean phase-2 entries of one round cannot
// disagree; a commit forces every later round to carry the committed value)
// driven by obstruction-free rounds: run solo, a process reaches a fresh
// round, finds both collects clean and decides within three rounds.
//
// CAConsensus uses exactly n registers, matching the paper's tight space
// bound for obstruction-free consensus (Corollary 33, k = 1): the
// reproduction's witness that n registers suffice while Theorem 21 shows
// n-1 do not.  GroupedKSet partitions the processes into k independent
// consensus groups, an n-register x-obstruction-free k-set agreement
// protocol (the paper's cited upper bound n-k+x [16] is stronger; ours is
// the simple achievability witness, see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/protocols/sim_process.h"

namespace revisim::proto {

// Entry stored in a component: (round, phase, grade, value).
struct CAEntry {
  std::uint32_t round = 0;  // 0 = never written
  std::uint8_t phase = 0;   // 1 or 2
  std::uint8_t grade = 0;   // phase 2 only: 1 = clean
  std::int32_t value = 0;

  friend bool operator==(const CAEntry&, const CAEntry&) = default;
};

[[nodiscard]] Val pack_ca(const CAEntry& e) noexcept;
[[nodiscard]] CAEntry unpack_ca(Val v) noexcept;

class CAConsensus final : public Protocol {
 public:
  explicit CAConsensus(std::size_t n) : n_(n) {}

  [[nodiscard]] std::string name() const override {
    return "ca-consensus(n=" + std::to_string(n_) + ")";
  }
  [[nodiscard]] std::size_t components() const override { return n_; }
  [[nodiscard]] std::unique_ptr<SimProcess> make(std::size_t index,
                                                 Val input) const override;

 private:
  std::size_t n_;
};

// k independent CAConsensus groups (process i joins group i mod k); solves
// obstruction-free k-set agreement with n registers.
class GroupedKSet final : public Protocol {
 public:
  GroupedKSet(std::size_t n, std::size_t k) : n_(n), k_(k) {}

  [[nodiscard]] std::string name() const override {
    return "grouped-kset(n=" + std::to_string(n_) + ",k=" + std::to_string(k_) +
           ")";
  }
  [[nodiscard]] std::size_t components() const override { return n_; }
  [[nodiscard]] std::unique_ptr<SimProcess> make(std::size_t index,
                                                 Val input) const override;

 private:
  std::size_t n_;
  std::size_t k_;
};

}  // namespace revisim::proto
