#include "src/protocols/approx_agreement.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace revisim::proto {

namespace {
// Layout: bits [34..57] round, bits [0..33] fixed-point value in [0, 2^33].
constexpr int kValueBits = 34;
constexpr Val kValueMask = (Val{1} << kValueBits) - 1;
}  // namespace

Val pack_approx(std::uint32_t round, Val fixed_value) noexcept {
  return (static_cast<Val>(round) << kValueBits) | (fixed_value & kValueMask);
}

std::uint32_t approx_round(Val packed) noexcept {
  return static_cast<std::uint32_t>(packed >> kValueBits);
}

Val approx_value(Val packed) noexcept { return packed & kValueMask; }

ApproxAgreement::ApproxAgreement(std::size_t n, std::size_t m, double epsilon)
    : n_(n), m_(m), epsilon_(epsilon) {
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    throw std::invalid_argument("epsilon must be in (0,1)");
  }
  rounds_ =
      static_cast<std::size_t>(std::ceil(std::log2(1.0 / epsilon))) + 1;
}

std::string ApproxAgreement::name() const {
  return "approx(n=" + std::to_string(n_) + ",m=" + std::to_string(m_) +
         ",eps=" + std::to_string(epsilon_) + ")";
}

namespace {

class ApproxProcess final : public SimProcess {
 public:
  ApproxProcess(std::size_t my_comp, Val fixed_input, std::uint32_t target)
      : my_comp_(my_comp), value_(fixed_input), target_(target) {}

  SimAction on_scan(const View& view) override {
    if (round_ == 0) {
      // Initial scan: publish the input at round 1.
      round_ = 1;
      return SimAction::make_update(my_comp_, pack_approx(round_, value_));
    }
    // Highest visible round (my own entry is visible unless a collider
    // overwrote it, which only happens in space-starved instances).
    std::uint32_t rmax = 0;
    for (const auto& c : view) {
      if (c) {
        rmax = std::max(rmax, approx_round(*c));
      }
    }
    if (rmax > round_) {
      // Jump: copy a round-rmax value (deterministically the first).
      for (const auto& c : view) {
        if (c && approx_round(*c) == rmax) {
          value_ = approx_value(*c);
          break;
        }
      }
      round_ = rmax;
    } else {
      // Midpoint of the visible values of my round.
      Val lo = value_;
      Val hi = value_;
      for (const auto& c : view) {
        if (c && approx_round(*c) == round_) {
          lo = std::min(lo, approx_value(*c));
          hi = std::max(hi, approx_value(*c));
        }
      }
      value_ = (lo + hi) / 2;
      round_ += 1;
    }
    if (round_ > target_) {
      return SimAction::make_output(value_);
    }
    return SimAction::make_update(my_comp_, pack_approx(round_, value_));
  }

  [[nodiscard]] std::unique_ptr<SimProcess> clone() const override {
    return std::make_unique<ApproxProcess>(*this);
  }

  [[nodiscard]] std::string state_key() const override {
    return "A" + std::to_string(round_) + "v" + std::to_string(value_);
  }

 private:
  std::size_t my_comp_;
  Val value_;            // fixed point, 34-bit scale
  std::uint32_t target_;
  std::uint32_t round_ = 0;
};

}  // namespace

std::unique_ptr<SimProcess> ApproxAgreement::make(std::size_t index,
                                                  Val input) const {
  // Inputs arrive as 32-bit fixed point (util/value.h); rescale to the
  // 33-bit internal scale so midpoints stay exact longer.
  const Val fixed = input << 1;
  return std::make_unique<ApproxProcess>(index % m_, fixed,
                                         static_cast<std::uint32_t>(rounds_));
}

}  // namespace revisim::proto
