#include "src/protocols/protocol_runner.h"

#include <sstream>
#include <stdexcept>

namespace revisim::proto {

ProtocolRun::ProtocolRun(const Protocol& protocol,
                         const std::vector<Val>& inputs)
    : contents_(protocol.components()) {
  procs_.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    Proc p;
    p.sm = protocol.make(i, inputs[i]);
    procs_.push_back(std::move(p));
  }
}

ProtocolRun::ProtocolRun(const ProtocolRun& other) { *this = other; }

ProtocolRun& ProtocolRun::operator=(const ProtocolRun& other) {
  if (this == &other) {
    return *this;
  }
  contents_ = other.contents_;
  log_ = other.log_;
  procs_.clear();
  procs_.reserve(other.procs_.size());
  for (const Proc& p : other.procs_) {
    Proc q;
    q.sm = p.sm->clone();
    q.pending = p.pending;
    q.output = p.output;
    q.steps = p.steps;
    procs_.push_back(std::move(q));
  }
  return *this;
}

bool ProtocolRun::all_done() const {
  for (const Proc& p : procs_) {
    if (!p.output) {
      return false;
    }
  }
  return true;
}

std::vector<Val> ProtocolRun::outputs() const {
  std::vector<Val> out;
  for (const Proc& p : procs_) {
    if (p.output) {
      out.push_back(*p.output);
    }
  }
  return out;
}

void ProtocolRun::step(std::size_t i) {
  Proc& p = procs_.at(i);
  if (p.output) {
    return;
  }
  ++p.steps;
  if (p.pending) {
    // Pending update: apply it atomically.
    contents_.at(p.pending->component) = p.pending->value;
    log_.push_back(StepRecord{i, true, p.pending->component, p.pending->value});
    p.pending.reset();
    return;
  }
  // Pending scan: feed the current contents.
  log_.push_back(StepRecord{i, false, 0, 0});
  SimAction act = p.sm->on_scan(contents_);
  if (act.kind == SimAction::Kind::kOutput) {
    p.output = act.output;
  } else {
    if (act.component >= contents_.size()) {
      throw std::out_of_range("protocol updated component out of range");
    }
    p.pending = act;
  }
}

bool ProtocolRun::run_solo(std::size_t i, std::size_t max_steps) {
  for (std::size_t s = 0; s < max_steps; ++s) {
    if (procs_.at(i).output) {
      return true;
    }
    step(i);
  }
  return procs_.at(i).output.has_value();
}

bool ProtocolRun::run_fair(const std::vector<std::size_t>& set,
                           std::size_t max_steps) {
  std::size_t taken = 0;
  for (;;) {
    bool any = false;
    for (std::size_t i : set) {
      if (!procs_.at(i).output) {
        if (taken++ >= max_steps) {
          return false;
        }
        step(i);
        any = true;
      }
    }
    if (!any) {
      return true;
    }
  }
}

bool ProtocolRun::run_random(std::uint64_t seed, std::size_t max_steps) {
  std::mt19937_64 rng(seed);
  for (std::size_t s = 0; s < max_steps; ++s) {
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < procs_.size(); ++i) {
      if (!procs_[i].output) {
        live.push_back(i);
      }
    }
    if (live.empty()) {
      return true;
    }
    std::uniform_int_distribution<std::size_t> dist(0, live.size() - 1);
    step(live[dist(rng)]);
  }
  return all_done();
}

std::string ProtocolRun::state_key() const {
  std::ostringstream out;
  for (const auto& c : contents_) {
    out << (c ? std::to_string(*c) : "_") << '|';
  }
  out << '#';
  for (const Proc& p : procs_) {
    if (p.output) {
      out << "D" << *p.output;
    } else {
      out << p.sm->state_key();
      if (p.pending) {
        out << ">u" << p.pending->component << '=' << p.pending->value;
      } else {
        out << ">s";
      }
    }
    out << ';';
  }
  return out.str();
}

}  // namespace revisim::proto
