// Racing agreement over an m-component multi-writer snapshot.
//
// Each process carries a (round, value) pair; on every scan it adopts the
// lexicographically largest visible pair, escalates the round on a
// same-round value conflict, outputs its value when all m components hold
// its exact pair, and otherwise overwrites the first disagreeing component.
//
// The protocol is obstruction-free for every m >= 1 (a solo process writes
// its pair everywhere, sees a uniform snapshot and decides) and x-
// obstruction-free terminating for every x, but its *safety* depends on m:
// this is precisely the protocol family the reproduction uses to exercise
// the paper's reduction.  Instances with m below the paper's bound
// floor((n-x)/(k+1-x)) + 1 cannot be correct (Corollary 33), and the
// revisionist simulation run against them manufactures concrete agreement
// violations; the protocol model checker maps the empirical safety boundary
// on small instances (EXPERIMENTS.md, E5/E7).
#pragma once

#include <memory>
#include <string>

#include "src/protocols/sim_process.h"

namespace revisim::proto {

class RacingAgreement final : public Protocol {
 public:
  // n processes racing over m components.
  RacingAgreement(std::size_t n, std::size_t m) : n_(n), m_(m) {}

  [[nodiscard]] std::string name() const override {
    return "racing(n=" + std::to_string(n_) + ",m=" + std::to_string(m_) + ")";
  }
  [[nodiscard]] std::size_t components() const override { return m_; }
  [[nodiscard]] std::unique_ptr<SimProcess> make(std::size_t index,
                                                 Val input) const override;

 private:
  std::size_t n_;
  std::size_t m_;
};

}  // namespace revisim::proto
