// One-shot commit-adopt from single-writer components - the safety core of
// the round-based consensus witness (ca_consensus.h), isolated so its
// defining properties can be verified directly.
//
// Commit-adopt (Gafni) is a wait-free task: each process proposes a value
// and returns (commit, v) or (adopt, v) such that
//   CA1  if every proposal is v, everyone returns (commit, v);
//   CA2  if someone returns (commit, v), everyone returns (., v);
//   CA3  returned values are proposals.
// It is wait-free solvable from 2n single-writer registers; here the two
// phases are folded into one n-component snapshot exactly as in the
// consensus protocol, so this instance uses n components.
//
// The protocol object below runs one CA instance: outputs encode
// (grade, value) via pack_ca_result.  tests/commit_adopt_test.cpp checks
// CA1-CA3 exhaustively on small instances and under random stress.
#pragma once

#include <memory>
#include <string>

#include "src/protocols/sim_process.h"

namespace revisim::proto {

// Output encoding: bit 32 = commit flag, low 32 bits = value.
[[nodiscard]] constexpr Val pack_ca_result(bool commit,
                                           std::int32_t v) noexcept {
  return (Val{commit ? 1 : 0} << 32) |
         static_cast<Val>(static_cast<std::uint32_t>(v));
}
[[nodiscard]] constexpr bool ca_committed(Val out) noexcept {
  return ((out >> 32) & 1) != 0;
}
[[nodiscard]] constexpr std::int32_t ca_value(Val out) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(out));
}

class CommitAdopt final : public Protocol {
 public:
  explicit CommitAdopt(std::size_t n) : n_(n) {}

  [[nodiscard]] std::string name() const override {
    return "commit-adopt(n=" + std::to_string(n_) + ")";
  }
  [[nodiscard]] std::size_t components() const override { return n_; }
  [[nodiscard]] std::unique_ptr<SimProcess> make(std::size_t index,
                                                 Val input) const override;

 private:
  std::size_t n_;
};

}  // namespace revisim::proto
