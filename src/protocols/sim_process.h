// Simulated processes (§2.1, Assumption 1).
//
// A process of the simulated system alternately performs scan and update
// operations on the m-component multi-writer snapshot M until a scan lets it
// output.  Every protocol Pi fed to the revisionist simulation is therefore a
// deterministic state machine: on_scan consumes the result of the pending
// scan, applies the local transition, and reports either the update the
// process is now poised to perform or its output.
//
// State machines are *copyable* (clone) and *serializable* (state_key).
// Copyability is what makes revising the past implementable: a covering
// simulator runs a copy of a process forward against hypothetical memory
// contents (§4.1).  Serialization gives the protocol model checker a
// canonical state encoding for exhaustive exploration with deduplication.
#pragma once

#include <memory>
#include <string>

#include "src/util/value.h"

namespace revisim::proto {

struct SimAction {
  enum class Kind { kUpdate, kOutput };
  Kind kind = Kind::kOutput;
  std::size_t component = 0;  // kUpdate: component of M to update
  Val value = 0;              // kUpdate: value to write
  Val output = 0;             // kOutput: decided value

  static SimAction make_update(std::size_t j, Val v) {
    SimAction a;
    a.kind = Kind::kUpdate;
    a.component = j;
    a.value = v;
    return a;
  }
  static SimAction make_output(Val y) {
    SimAction a;
    a.kind = Kind::kOutput;
    a.output = y;
    return a;
  }

  friend bool operator==(const SimAction&, const SimAction&) = default;
};

class SimProcess {
 public:
  virtual ~SimProcess() = default;

  // Performs the pending scan with result `view` and the local transition
  // that follows it.  Deterministic; mutates local state.
  virtual SimAction on_scan(const View& view) = 0;

  // Deep copy of the local state.
  [[nodiscard]] virtual std::unique_ptr<SimProcess> clone() const = 0;

  // Canonical encoding of the local state (model-checker hashing).
  [[nodiscard]] virtual std::string state_key() const = 0;
};

// A protocol: a recipe for building the n simulated processes over an
// m-component snapshot.
class Protocol {
 public:
  virtual ~Protocol() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // Number of components of M the protocol uses (its space, in registers).
  [[nodiscard]] virtual std::size_t components() const = 0;

  // Builds process p_{index+1} with the given input.
  [[nodiscard]] virtual std::unique_ptr<SimProcess> make(std::size_t index,
                                                         Val input) const = 0;
};

}  // namespace revisim::proto
