#include "src/protocols/racing_agreement.h"

#include <algorithm>
#include <optional>
#include <set>

namespace revisim::proto {
namespace {

class RacingProcess final : public SimProcess {
 public:
  explicit RacingProcess(Val input)
      : rv_{1, static_cast<std::int32_t>(input)} {}

  SimAction on_scan(const View& view) override {
    // Decode visible pairs.
    std::optional<RoundVal> top;  // lexicographic max pair
    for (const auto& c : view) {
      if (c) {
        RoundVal p = unpack_round_val(*c);
        if (!top || *top < p) {
          top = p;
        }
      }
    }
    if (top) {
      const std::uint32_t rm = top->round;
      // Values present at the top round, including my own if I am there.
      std::set<std::int32_t> top_vals;
      for (const auto& c : view) {
        if (c) {
          RoundVal p = unpack_round_val(*c);
          if (p.round == rm) {
            top_vals.insert(p.value);
          }
        }
      }
      if (rv_.round == rm) {
        top_vals.insert(rv_.value);
      }
      const std::int32_t vmax = *top_vals.rbegin();
      if (top_vals.size() > 1) {
        // Same-round conflict: escalate with the largest conflicting value.
        rv_ = RoundVal{rm + 1, vmax};
      } else if (rm > rv_.round ||
                 (rm == rv_.round && vmax > rv_.value)) {
        rv_ = RoundVal{rm, vmax};  // adopt the leader
      }
    }
    // Decide on a uniform snapshot of my own pair.
    const Val mine = pack_round_val(rv_);
    for (std::size_t j = 0; j < view.size(); ++j) {
      if (!view[j] || *view[j] != mine) {
        return SimAction::make_update(j, mine);
      }
    }
    return SimAction::make_output(rv_.value);
  }

  [[nodiscard]] std::unique_ptr<SimProcess> clone() const override {
    return std::make_unique<RacingProcess>(*this);
  }

  [[nodiscard]] std::string state_key() const override {
    return "R" + std::to_string(rv_.round) + "v" + std::to_string(rv_.value);
  }

 private:
  RoundVal rv_;
};

}  // namespace

std::unique_ptr<SimProcess> RacingAgreement::make(std::size_t index,
                                                  Val input) const {
  (void)index;  // the protocol is anonymous
  return std::make_unique<RacingProcess>(input);
}

}  // namespace revisim::proto
