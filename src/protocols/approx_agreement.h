// Asynchronous epsilon-approximate agreement by round halving (§2, "Tasks";
// the n-register upper bound the paper attributes to [9]).
//
// Process i publishes (round, value) in component i; on each scan it either
// jumps to the highest visible round (copying one of its values) or replaces
// its value by the midpoint of the visible values of its own round and
// advances.  Any two midpoint computations of one round share a visible
// value, so the round-r value spread is at most 2^{-(r-1)}; after
// R = ceil(log2(1/eps)) + 1 rounds all outputs are within eps, and every
// value is a midpoint or copy, hence within [min input, max input].
// The protocol is wait-free: every scan strictly advances the round.
//
// The constructor takes the component count m separately from n: with m = n
// this is the correct single-writer protocol; with m < n processes collide
// on components (i mod m), which preserves wait-freedom but starves the
// protocol of space - the instances the paper's Theorem 21(1)/Corollary 34
// reduction is about (EXPERIMENTS.md, E6).
#pragma once

#include <memory>
#include <string>

#include "src/protocols/sim_process.h"

namespace revisim::proto {

class ApproxAgreement final : public Protocol {
 public:
  // n processes over m components; values in [0,1] as fixed point; outputs
  // within `epsilon` of each other when m = n.
  ApproxAgreement(std::size_t n, std::size_t m, double epsilon);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t components() const override { return m_; }
  [[nodiscard]] std::unique_ptr<SimProcess> make(std::size_t index,
                                                 Val input) const override;

  [[nodiscard]] std::size_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }

 private:
  std::size_t n_;
  std::size_t m_;
  double epsilon_;
  std::size_t rounds_;
};

// Packing helpers shared with tests: (round, fixed-point value).
[[nodiscard]] Val pack_approx(std::uint32_t round, Val fixed_value) noexcept;
[[nodiscard]] std::uint32_t approx_round(Val packed) noexcept;
[[nodiscard]] Val approx_value(Val packed) noexcept;

}  // namespace revisim::proto
