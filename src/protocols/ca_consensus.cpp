#include "src/protocols/ca_consensus.h"

#include <algorithm>
#include <optional>

namespace revisim::proto {

Val pack_ca(const CAEntry& e) noexcept {
  return (static_cast<Val>(e.round) << 36) | (static_cast<Val>(e.phase) << 34) |
         (static_cast<Val>(e.grade) << 33) |
         static_cast<Val>(static_cast<std::uint32_t>(e.value));
}

CAEntry unpack_ca(Val v) noexcept {
  CAEntry e;
  e.round = static_cast<std::uint32_t>((v >> 36) & 0xffffff);
  e.phase = static_cast<std::uint8_t>((v >> 34) & 0x3);
  e.grade = static_cast<std::uint8_t>((v >> 33) & 0x1);
  e.value = static_cast<std::int32_t>(static_cast<std::uint32_t>(v & 0xffffffff));
  return e;
}

namespace {

class CAProcess final : public SimProcess {
 public:
  CAProcess(std::vector<std::size_t> member_comps, std::size_t my_comp,
            Val input)
      : members_(std::move(member_comps)),
        my_comp_(my_comp),
        round_(1),
        value_(static_cast<std::int32_t>(input)) {}

  SimAction on_scan(const View& view) override {
    std::vector<CAEntry> entries = decode(view);

    // Jump to the highest visible round, adopting by priority
    // phase-2-clean > phase-2-dirty > phase-1 (ties: largest value).
    std::uint32_t rmax = 0;
    for (const CAEntry& e : entries) {
      rmax = std::max(rmax, e.round);
    }
    if (rmax > round_) {
      round_ = rmax;
      value_ = adopt_value(entries, rmax);
      stage_ = Stage::kInit;
    }

    switch (stage_) {
      case Stage::kInit:
        stage_ = Stage::kSentPhase1;
        return SimAction::make_update(my_comp_,
                                 pack_ca(CAEntry{round_, 1, 0, value_}));

      case Stage::kSentPhase1: {
        // Phase-1 collect: a round-r entry of either phase carries its
        // owner's round-r proposal.
        bool uniform = true;
        for (const CAEntry& e : entries) {
          if (e.round == round_ && e.value != value_) {
            uniform = false;
            break;
          }
        }
        grade_ = uniform ? 1 : 0;
        stage_ = Stage::kSentPhase2;
        return SimAction::make_update(my_comp_,
                                 pack_ca(CAEntry{round_, 2, grade_, value_}));
      }

      case Stage::kSentPhase2: {
        // Phase-2 collect: decide iff every round-r phase-2 entry is clean
        // with one value; otherwise adopt a clean value if any and advance.
        bool all_clean = true;
        std::optional<std::int32_t> clean_val;
        std::optional<std::int32_t> common;
        bool first = true;
        for (const CAEntry& e : entries) {
          if (e.round != round_ || e.phase != 2) {
            continue;
          }
          if (e.grade == 1) {
            clean_val = e.value;
          } else {
            all_clean = false;
          }
          if (first) {
            common = e.value;
            first = false;
          } else if (common != e.value) {
            common.reset();
          }
        }
        if (all_clean && common) {
          return SimAction::make_output(*common);
        }
        if (clean_val) {
          value_ = *clean_val;
        }
        round_ += 1;
        stage_ = Stage::kSentPhase1;
        return SimAction::make_update(my_comp_,
                                 pack_ca(CAEntry{round_, 1, 0, value_}));
      }
    }
    return SimAction::make_output(value_);  // unreachable
  }

  [[nodiscard]] std::unique_ptr<SimProcess> clone() const override {
    return std::make_unique<CAProcess>(*this);
  }

  [[nodiscard]] std::string state_key() const override {
    return "C" + std::to_string(round_) + "." +
           std::to_string(static_cast<int>(stage_)) + "." +
           std::to_string(grade_) + "v" + std::to_string(value_);
  }

 private:
  enum class Stage : std::uint8_t { kInit, kSentPhase1, kSentPhase2 };

  [[nodiscard]] std::vector<CAEntry> decode(const View& view) const {
    std::vector<CAEntry> out;
    for (std::size_t j : members_) {
      if (view.at(j)) {
        out.push_back(unpack_ca(*view[j]));
      }
    }
    return out;
  }

  static std::int32_t adopt_value(const std::vector<CAEntry>& entries,
                                  std::uint32_t round) {
    int best_rank = -1;
    std::int32_t best_val = 0;
    for (const CAEntry& e : entries) {
      if (e.round != round) {
        continue;
      }
      int rank = (e.phase == 2) ? (e.grade == 1 ? 2 : 1) : 0;
      if (rank > best_rank ||
          (rank == best_rank && e.value > best_val)) {
        best_rank = rank;
        best_val = e.value;
      }
    }
    return best_val;
  }

  std::vector<std::size_t> members_;  // components of my group's processes
  std::size_t my_comp_;
  std::uint32_t round_;
  std::int32_t value_;
  std::uint8_t grade_ = 0;
  Stage stage_ = Stage::kInit;
};

}  // namespace

std::unique_ptr<SimProcess> CAConsensus::make(std::size_t index,
                                              Val input) const {
  std::vector<std::size_t> members(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    members[j] = j;
  }
  return std::make_unique<CAProcess>(std::move(members), index, input);
}

std::unique_ptr<SimProcess> GroupedKSet::make(std::size_t index,
                                              Val input) const {
  std::vector<std::size_t> members;
  for (std::size_t j = index % k_; j < n_; j += k_) {
    members.push_back(j);
  }
  return std::make_unique<CAProcess>(std::move(members), index, input);
}

}  // namespace revisim::proto
