#include "src/memory/collect_snapshot.h"

namespace revisim::mem {

CollectSnapshot::CollectSnapshot(runtime::Scheduler& sched, std::string name,
                                 std::size_t m, std::size_t num_processes)
    : next_seq_(num_processes, 1) {
  // Unlike the Afek cells, these keep precise per-cell footprints: no step's
  // continuation here reads the global clock or any shared state beyond the
  // cell it poses on - update's tag comes from next_seq_, which is strictly
  // per-process (only `me` ever reads or bumps next_seq_[me]), and collect's
  // loop state is coroutine-local.  Commuting two independent cell steps is
  // therefore sound.
  cells_.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    cells_.push_back(std::make_unique<TypedRegister<Cell>>(
        sched, name + ".R" + std::to_string(j)));
  }
  sched.register_state_source(this);  // covers next_seq_; cells cover values
}

runtime::Task<std::vector<CollectSnapshot::Cell>> CollectSnapshot::collect() {
  std::vector<Cell> out;
  out.reserve(cells_.size());
  for (auto& cell : cells_) {
    out.push_back(co_await cell->read());
  }
  co_return out;
}

runtime::Task<View> CollectSnapshot::scan() {
  std::vector<Cell> prev = co_await collect();
  for (;;) {
    std::vector<Cell> cur = co_await collect();
    bool clean = true;
    for (std::size_t j = 0; j < cells_.size(); ++j) {
      if (cur[j].tag != prev[j].tag) {
        clean = false;
        break;
      }
    }
    if (clean) {
      View out(cells_.size());
      for (std::size_t j = 0; j < cells_.size(); ++j) {
        out[j] = cur[j].value;
      }
      co_return out;
    }
    prev = std::move(cur);
  }
}

runtime::Task<void> CollectSnapshot::update(runtime::ProcessId me,
                                            std::size_t j, Val v) {
  Cell cell;
  cell.tag = (next_seq_.at(me)++ << 16) | (static_cast<std::uint64_t>(me) + 1);
  cell.value = v;
  co_await cells_.at(j)->write(std::move(cell));
}

}  // namespace revisim::mem
