// Wait-free single-writer snapshot from single-writer registers, after Afek,
// Attiya, Dolev, Gafni, Merritt and Shavit [2] (unbounded-sequence-number
// variant).
//
// The paper's real system takes an atomic single-writer snapshot as a base
// object and cites [2] for its register implementation; this module is that
// substrate, so that every layer of the reproduction bottoms out in plain
// registers - including the augmented snapshot and the whole revisionist
// simulation (see aug::RegisterAugmentedSnapshot).
//
// Each register cell holds (value, sequence number, embedded view).  An
// update performs a scan and publishes it with the new value.  A scan does
// repeated collects: two identical collects give a direct snapshot; a writer
// observed to move twice has embedded a view taken entirely within the
// scan's interval, which is borrowed.
//
// Operations report their *linearization step*: for a clean double collect
// the first read of the confirming collect (no cell changes between the two
// collects, so the returned view is the memory state at that instant); for
// a borrowed view, the linearization step recorded with the embedded scan
// (which lies inside the borrowing scan's interval); for an update, its
// final register write.  Layers built on top (the augmented snapshot's
// §3.3 linearizer) order H-operations by these points, which is exactly
// what linearizability licenses.
//
// AfekSnapshotT<T> is the generic engine (component type T); AfekSnapshot is
// the classic optional<Val> instance used by the memory tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/memory/register.h"
#include "src/runtime/task.h"
#include "src/util/value.h"

namespace revisim::mem {

template <typename T>
class AfekSnapshotT {
 public:
  struct ScanOutcome {
    std::vector<T> view;
    std::size_t lin_step = 0;  // global step index where the scan took effect
  };

  AfekSnapshotT(runtime::Scheduler& sched, std::string name, std::size_t n)
      : sched_(sched) {
    cells_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // The cells are constructed with opaque footprints: collect() reads
      // the global step counter as a clock before its first register read,
      // so a cell-read step's continuation observes state (total_steps())
      // that *every* other step advances.  Precise (object, cell) footprints
      // would wrongly let the explorer commute a cell read past an unrelated
      // step and change the recorded linearization points.
      cells_.push_back(std::make_unique<TypedRegister<Cell>>(
          sched, name + ".R" + std::to_string(i), Cell{},
          /*opaque_footprint=*/true));
    }
  }

  [[nodiscard]] std::size_t components() const noexcept {
    return cells_.size();
  }

  // Wait-free scan; at most 2n+1 collects, i.e. O(n^2) register reads.
  runtime::Task<ScanOutcome> scan(runtime::ProcessId me) {
    (void)me;  // scans are symmetric; kept for interface uniformity
    const std::size_t n = cells_.size();
    std::vector<int> moved(n, 0);
    Collect prev = co_await collect();
    for (;;) {
      Collect cur = co_await collect();
      bool clean = true;
      for (std::size_t j = 0; j < n; ++j) {
        if (cur.cells[j].seq != prev.cells[j].seq) {
          clean = false;
          // A second observed move by j means j's latest update embedded a
          // view obtained entirely inside this scan's interval; borrow it
          // together with its linearization point.
          if (++moved[j] == 2) {
            co_return ScanOutcome{cur.cells[j].view, cur.cells[j].view_lin};
          }
        }
      }
      if (clean) {
        // No cell changed between the collects, so the memory state at the
        // confirming collect's first read equals the returned view.
        ScanOutcome out;
        out.view.reserve(n);
        for (std::size_t j = 0; j < n; ++j) {
          out.view.push_back(cur.cells[j].value);
        }
        out.lin_step = cur.first_step;
        co_return out;
      }
      prev = std::move(cur);
    }
  }

  // Test/debug peek: current component values, outside any execution.
  [[nodiscard]] std::vector<T> peek() const {
    std::vector<T> out;
    out.reserve(cells_.size());
    for (const auto& cell : cells_) {
      out.push_back(cell->peek().value);
    }
    return out;
  }

  // Wait-free update of the caller's own component; linearizes at its final
  // register write (= its last step).
  runtime::Task<void> update(runtime::ProcessId me, T v) {
    ScanOutcome embedded = co_await scan(me);
    Cell old = co_await cells_.at(me)->read();
    Cell next;
    next.value = std::move(v);
    next.seq = old.seq + 1;
    next.view = std::move(embedded.view);
    next.view_lin = embedded.lin_step;
    co_await cells_.at(me)->write(std::move(next));
  }

 private:
  // The cells live in TypedRegisters, which self-register as fingerprint
  // sources; this member encoding is what they feed.  The snapshot object
  // itself holds no other mutable state (scan/update locals live in
  // coroutine frames, covered by the explorer's soundness contract).
  struct Cell {
    T value{};
    std::uint64_t seq = 0;
    std::vector<T> view;        // embedded scan published with this write
    std::size_t view_lin = 0;   // linearization step of that embedded scan

    void fingerprint_into(util::StateSink& sink) const {
      util::feed(sink, value);
      util::feed(sink, seq);
      util::feed(sink, view);
      util::feed(sink, view_lin);
    }
  };

  struct Collect {
    std::vector<Cell> cells;
    std::size_t first_step = 0;  // global step index of the first read
  };

  runtime::Task<Collect> collect() {
    Collect out;
    out.cells.reserve(cells_.size());
    out.first_step = sched_.total_steps();  // the next step is our 1st read
    for (auto& cell : cells_) {
      out.cells.push_back(co_await cell->read());
    }
    co_return out;
  }

  runtime::Scheduler& sched_;
  std::vector<std::unique_ptr<TypedRegister<Cell>>> cells_;
};

// The classic Val-payload instance (component i holds process i's value,
// initially bottom).
class AfekSnapshot {
 public:
  AfekSnapshot(runtime::Scheduler& sched, std::string name, std::size_t n)
      : impl_(sched, std::move(name), n) {}

  [[nodiscard]] std::size_t components() const noexcept {
    return impl_.components();
  }

  runtime::Task<View> scan(runtime::ProcessId me) {
    auto out = co_await impl_.scan(me);
    co_return std::move(out.view);
  }

  runtime::Task<void> update(runtime::ProcessId me, Val v) {
    return impl_.update(me, std::optional<Val>(v));
  }

 private:
  AfekSnapshotT<std::optional<Val>> impl_;
};

}  // namespace revisim::mem
