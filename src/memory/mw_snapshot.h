// Atomic m-component multi-writer snapshot object (§2, "Registers and
// Snapshot objects").  This is the base object of the *simulated* system: an
// update(j, v) sets component j; a scan returns all m components atomically.
//
// The paper counts an m-component snapshot as m registers (the two are
// interimplementable, [2]); src/memory/collect_snapshot.h carries the
// from-registers direction as substrate evidence.
#pragma once

#include <string>

#include "src/runtime/scheduler.h"
#include "src/util/fingerprint.h"
#include "src/util/value.h"

namespace revisim::mem {

class MWSnapshot : public util::Fingerprintable {
 public:
  MWSnapshot(runtime::Scheduler& sched, std::string name, std::size_t m)
      : sched_(sched),
        id_(sched.register_object(std::move(name))),
        comps_(m) {
    sched.register_state_source(this);
  }

  [[nodiscard]] std::size_t components() const noexcept { return comps_.size(); }

  void fingerprint_into(util::StateSink& sink) const override {
    util::feed(sink, comps_);
  }

  runtime::StepAwaiter<View> scan() {
    return {sched_,
            [this] {
              sched_.note_access(id_, runtime::Footprint::kAllComponents,
                                 runtime::Footprint::Mode::kRead);
              return comps_;
            },
            id_, runtime::StepKind::kScan, {},
            runtime::Footprint::read(id_, runtime::Footprint::kAllComponents)};
  }

  runtime::StepAwaiter<void> update(std::size_t j, Val v) {
    return {sched_,
            [this, j, v] {
              sched_.note_access(id_, static_cast<std::uint32_t>(j),
                                 runtime::Footprint::Mode::kWrite);
              comps_.at(j) = v;
            },
            id_,
            runtime::StepKind::kUpdate,
            sched_.recording()
                ? "c" + std::to_string(j) + "=" + std::to_string(v)
                : std::string{},
            runtime::Footprint::write(id_, static_cast<std::uint32_t>(j))};
  }

  [[nodiscard]] const View& peek() const noexcept { return comps_; }

 private:
  runtime::Scheduler& sched_;
  std::size_t id_;
  View comps_;
};

}  // namespace revisim::mem
