// m-component multi-writer snapshot from m multi-writer registers via
// tagged double collects.
//
// Every write carries a globally unique tag (writer id + local sequence
// number), so two identical collects certify that no register changed in
// between and the collect is a linearizable snapshot.  Scans are
// obstruction-free (they can starve only under an infinite stream of
// concurrent updates); updates are wait-free single steps.  This is the
// classical construction behind the paper's remark that an m-component
// multi-writer snapshot and m registers are interchangeable space-wise (§2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/memory/register.h"
#include "src/runtime/task.h"
#include "src/util/fingerprint.h"
#include "src/util/value.h"

namespace revisim::mem {

class CollectSnapshot : public util::Fingerprintable {
 public:
  CollectSnapshot(runtime::Scheduler& sched, std::string name, std::size_t m,
                  std::size_t num_processes);

  [[nodiscard]] std::size_t components() const noexcept { return cells_.size(); }

  // The register cells self-register as state sources; this covers the
  // object's only other behaviour-relevant state, the per-process local
  // sequence counters the unique tags are minted from.
  void fingerprint_into(util::StateSink& sink) const override {
    util::feed(sink, next_seq_);
  }

  // Test/debug peek at component j's current value, outside any execution.
  [[nodiscard]] std::optional<Val> peek(std::size_t j) const {
    return cells_.at(j)->peek().value;
  }

  // Obstruction-free linearizable scan (double collect until clean).
  runtime::Task<View> scan();

  // Wait-free update: one register write with a fresh unique tag.
  runtime::Task<void> update(runtime::ProcessId me, std::size_t j, Val v);

 private:
  struct Cell {
    std::uint64_t tag = 0;  // 0 = never written; else (seq << 16) | writer+1
    std::optional<Val> value;

    void fingerprint_into(util::StateSink& sink) const {
      util::feed(sink, tag);
      util::feed(sink, value);
    }
  };

  runtime::Task<std::vector<Cell>> collect();

  std::vector<std::unique_ptr<TypedRegister<Cell>>> cells_;
  std::vector<std::uint64_t> next_seq_;  // per-process local sequence numbers
};

}  // namespace revisim::mem
