// Atomic registers, the model's most basic base objects (§2).
//
// TypedRegister<T> is the general model register (used by the from-register
// snapshot implementations, whose cells carry sequence numbers and embedded
// views); Register is the plain Val register with the paper's "bottom"
// initial value.
#pragma once

#include <string>

#include "src/runtime/scheduler.h"
#include "src/util/fingerprint.h"
#include "src/util/value.h"

namespace revisim::mem {

template <typename T>
class TypedRegister : public util::Fingerprintable {
 public:
  TypedRegister(runtime::Scheduler& sched, std::string name, T initial = {})
      : sched_(sched),
        id_(sched.register_object(std::move(name))),
        value_(std::move(initial)) {
    sched.register_state_source(this);
  }

  // The register's canonical state is its value (the object id and name are
  // schema, fixed by the world factory's construction order).
  void fingerprint_into(util::StateSink& sink) const override {
    util::feed(sink, value_);
  }

  // One atomic read step.
  runtime::StepAwaiter<T> read() {
    return {sched_, [this] { return value_; }, id_, runtime::StepKind::kRead,
            {}};
  }

  // One atomic write step.
  runtime::StepAwaiter<void> write(T v) {
    return {sched_,
            [this, v = std::move(v)]() mutable { value_ = std::move(v); },
            id_, runtime::StepKind::kWrite, {}};
  }

  // Test-only peek outside any execution.
  [[nodiscard]] const T& peek() const noexcept { return value_; }

 private:
  runtime::Scheduler& sched_;
  std::size_t id_;
  T value_;
};

// Plain multi-writer Val register, initially "bottom".
class Register : public TypedRegister<std::optional<Val>> {
 public:
  Register(runtime::Scheduler& sched, std::string name,
           std::optional<Val> initial = std::nullopt)
      : TypedRegister(sched, std::move(name), initial) {}

  runtime::StepAwaiter<void> write(Val v) {
    return TypedRegister::write(std::optional<Val>(v));
  }
};

}  // namespace revisim::mem
