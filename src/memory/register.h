// Atomic registers, the model's most basic base objects (§2).
//
// TypedRegister<T> is the general model register (used by the from-register
// snapshot implementations, whose cells carry sequence numbers and embedded
// views); Register is the plain Val register with the paper's "bottom"
// initial value.
#pragma once

#include <string>

#include "src/runtime/scheduler.h"
#include "src/util/fingerprint.h"
#include "src/util/value.h"

namespace revisim::mem {

template <typename T>
class TypedRegister : public util::Fingerprintable {
 public:
  // `opaque_footprint` opts this register out of precise access footprints:
  // its steps then conflict with everything, which is required when the
  // *continuation* after a read/write observes shared state beyond the cell
  // - the Afek construction reads the global step counter as a clock, so
  // its cells are constructed opaque (see afek_snapshot.h).  Plain registers
  // declare precise (object, cell) read/write footprints, the substrate the
  // explorer's partial-order reduction is built on.
  TypedRegister(runtime::Scheduler& sched, std::string name, T initial = {},
                bool opaque_footprint = false)
      : sched_(sched),
        id_(sched.register_object(std::move(name))),
        opaque_(opaque_footprint),
        value_(std::move(initial)) {
    sched.register_state_source(this);
  }

  // The register's canonical state is its value (the object id and name are
  // schema, fixed by the world factory's construction order).
  void fingerprint_into(util::StateSink& sink) const override {
    util::feed(sink, value_);
  }

  // One atomic read step.
  runtime::StepAwaiter<T> read() {
    return {sched_,
            [this] {
              sched_.note_access(id_, 0, runtime::Footprint::Mode::kRead);
              return value_;
            },
            id_, runtime::StepKind::kRead, {},
            opaque_ ? runtime::Footprint::opaque_footprint()
                    : runtime::Footprint::read(id_)};
  }

  // One atomic write step.
  runtime::StepAwaiter<void> write(T v) {
    return {sched_,
            [this, v = std::move(v)]() mutable {
              sched_.note_access(id_, 0, runtime::Footprint::Mode::kWrite);
              value_ = std::move(v);
            },
            id_, runtime::StepKind::kWrite, {},
            opaque_ ? runtime::Footprint::opaque_footprint()
                    : runtime::Footprint::write(id_)};
  }

  // Test-only peek outside any execution.
  [[nodiscard]] const T& peek() const noexcept { return value_; }

 private:
  runtime::Scheduler& sched_;
  std::size_t id_;
  bool opaque_;
  T value_;
};

// Plain multi-writer Val register, initially "bottom".
class Register : public TypedRegister<std::optional<Val>> {
 public:
  Register(runtime::Scheduler& sched, std::string name,
           std::optional<Val> initial = std::nullopt)
      : TypedRegister(sched, std::move(name), initial) {}

  runtime::StepAwaiter<void> write(Val v) {
    return TypedRegister::write(std::optional<Val>(v));
  }
};

}  // namespace revisim::mem
