// Atomic single-writer snapshot object, the base object of the *real* system
// (§2.1).  Component i may only be updated by real process q_{i+1}; scans are
// atomic and return all f components.
//
// The component type is generic because the augmented snapshot stores
// structured per-process logs (update triples plus helping records) in its
// single-writer snapshot H.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "src/runtime/scheduler.h"
#include "src/util/fingerprint.h"

namespace revisim::mem {

template <typename T>
class SWSnapshot : public util::Fingerprintable {
 public:
  // `opaque_footprint` opts out of precise access footprints.  The
  // augmented snapshot's H provider constructs its SWSnapshot opaque: every
  // H step's continuation appends to the shared operation log and reads the
  // global step counter as a clock, so H steps do not commute even on
  // distinct components (see augmented_snapshot.h).  Standalone snapshots
  // declare scan = read-all-components, update = write-own-component.
  SWSnapshot(runtime::Scheduler& sched, std::string name, std::size_t f,
             bool opaque_footprint = false)
      : sched_(sched),
        id_(sched.register_object(std::move(name))),
        opaque_(opaque_footprint),
        comps_(f) {
    sched.register_state_source(this);
  }

  [[nodiscard]] std::size_t components() const noexcept { return comps_.size(); }

  void fingerprint_into(util::StateSink& sink) const override {
    util::feed(sink, comps_);
  }

  runtime::StepAwaiter<std::vector<T>> scan() {
    return {sched_,
            [this] {
              sched_.note_access(id_, runtime::Footprint::kAllComponents,
                                 runtime::Footprint::Mode::kRead);
              return comps_;
            },
            id_, runtime::StepKind::kScan, {},
            opaque_
                ? runtime::Footprint::opaque_footprint()
                : runtime::Footprint::read(id_,
                                           runtime::Footprint::kAllComponents)};
  }

  // Replaces the caller's own component.  The model enforces the
  // single-writer discipline: writing another process's component is a
  // protocol bug, not an adversary move, so it throws.  The footprint is
  // computed at pose time, when current() is the posing (= executing)
  // process.
  runtime::StepAwaiter<void> update(T v) {
    const auto writer = sched_.current();
    return {sched_,
            [this, v = std::move(v)]() mutable {
              const auto w = sched_.current();
              if (w >= comps_.size()) {
                throw std::logic_error("sw-snapshot: writer out of range");
              }
              sched_.note_access(id_, static_cast<std::uint32_t>(w),
                                 runtime::Footprint::Mode::kWrite);
              comps_[w] = std::move(v);
            },
            id_, runtime::StepKind::kUpdate, {},
            opaque_ ? runtime::Footprint::opaque_footprint()
                    : runtime::Footprint::write(
                          id_, static_cast<std::uint32_t>(writer))};
  }

  [[nodiscard]] const std::vector<T>& peek() const noexcept { return comps_; }

 private:
  runtime::Scheduler& sched_;
  std::size_t id_;
  bool opaque_;
  std::vector<T> comps_;
};

}  // namespace revisim::mem
