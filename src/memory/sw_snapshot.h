// Atomic single-writer snapshot object, the base object of the *real* system
// (§2.1).  Component i may only be updated by real process q_{i+1}; scans are
// atomic and return all f components.
//
// The component type is generic because the augmented snapshot stores
// structured per-process logs (update triples plus helping records) in its
// single-writer snapshot H.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "src/runtime/scheduler.h"
#include "src/util/fingerprint.h"

namespace revisim::mem {

template <typename T>
class SWSnapshot : public util::Fingerprintable {
 public:
  SWSnapshot(runtime::Scheduler& sched, std::string name, std::size_t f)
      : sched_(sched),
        id_(sched.register_object(std::move(name))),
        comps_(f) {
    sched.register_state_source(this);
  }

  [[nodiscard]] std::size_t components() const noexcept { return comps_.size(); }

  void fingerprint_into(util::StateSink& sink) const override {
    util::feed(sink, comps_);
  }

  runtime::StepAwaiter<std::vector<T>> scan() {
    return {sched_, [this] { return comps_; }, id_, runtime::StepKind::kScan,
            {}};
  }

  // Replaces the caller's own component.  The model enforces the
  // single-writer discipline: writing another process's component is a
  // protocol bug, not an adversary move, so it throws.
  runtime::StepAwaiter<void> update(T v) {
    return {sched_,
            [this, v = std::move(v)]() mutable {
              const auto writer = sched_.current();
              if (writer >= comps_.size()) {
                throw std::logic_error("sw-snapshot: writer out of range");
              }
              comps_[writer] = std::move(v);
            },
            id_, runtime::StepKind::kUpdate, {}};
  }

  [[nodiscard]] const std::vector<T>& peek() const noexcept { return comps_; }

 private:
  runtime::Scheduler& sched_;
  std::size_t id_;
  std::vector<T> comps_;
};

}  // namespace revisim::mem
