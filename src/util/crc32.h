// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum the
// distributed wire format (src/dist/wire.h) and the run journal
// (src/dist/journal.h) frame their records with.  Incremental: feed chunks
// through repeated calls, passing the previous return value as `crc`
// (start from 0).  The pre/post conditioning is handled internally, so the
// return value of any call is the CRC of everything fed so far.
#pragma once

#include <cstddef>
#include <cstdint>

namespace revisim::util {

inline std::uint32_t crc32(std::uint32_t crc, const void* data,
                           std::size_t n) {
  static const auto table = [] {
    struct Table {
      std::uint32_t v[256];
    } t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t.v[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const std::uint8_t*>(data);
  crc ^= 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table.v[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace revisim::util
