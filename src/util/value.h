// Core value model.
//
// Registers and snapshot components in both the simulated and the real system
// carry Val (a 64-bit integer).  Protocols that need structured values
// (round/value pairs, fixed-point reals) pack them into a Val with the
// helpers below; this keeps the whole object stack concrete, hashable and
// printable, which the model checker and the linearizer rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace revisim {

using Val = std::int64_t;

// A view of an m-component object: component j holds nullopt until the first
// update to j (the paper's initial value "bottom").
using View = std::vector<std::optional<Val>>;

// --- (round, value) pairs --------------------------------------------------
// Packs a 32-bit round and a 31-bit *non-negative* payload (negative
// values do not round-trip; every protocol in this library proposes
// non-negative values).  Packed Vals compare as integers in lexicographic
// (round, value) order, matching the paper's use of lexicographic pair
// maxima in racing protocols.

struct RoundVal {
  std::uint32_t round = 0;
  std::int32_t value = 0;

  friend auto operator<=>(const RoundVal&, const RoundVal&) = default;
};

constexpr Val pack_round_val(RoundVal rv) noexcept {
  return (static_cast<Val>(rv.round) << 31) |
         static_cast<Val>(static_cast<std::uint32_t>(rv.value) & 0x7fffffffu);
}

constexpr RoundVal unpack_round_val(Val v) noexcept {
  return RoundVal{static_cast<std::uint32_t>(v >> 31),
                  static_cast<std::int32_t>(v & 0x7fffffff)};
}

// --- fixed-point reals -----------------------------------------------------
// epsilon-approximate agreement works over [0,1]; 2^-32 resolution is far
// below any epsilon we sweep.

inline constexpr std::int64_t kFixedOne = std::int64_t{1} << 32;

constexpr Val to_fixed(double x) noexcept {
  return static_cast<Val>(x * static_cast<double>(kFixedOne));
}

constexpr double from_fixed(Val v) noexcept {
  return static_cast<double>(v) / static_cast<double>(kFixedOne);
}

// --- printing --------------------------------------------------------------

inline std::string to_string(const std::optional<Val>& v) {
  return v ? std::to_string(*v) : std::string("_");
}

// Direct string building: this sits on the step-detail path whenever trace
// recording is on, so it reserves once and appends instead of paying for an
// ostringstream per rendered view.
inline std::string to_string(const View& view) {
  std::string out;
  out.reserve(2 + 8 * view.size());
  out.push_back('[');
  for (std::size_t j = 0; j < view.size(); ++j) {
    if (j != 0) {
      out.push_back(' ');
    }
    if (view[j].has_value()) {
      out += std::to_string(*view[j]);
    } else {
      out.push_back('_');
    }
  }
  out.push_back(']');
  return out;
}

}  // namespace revisim
