// Move-only type-erased nullary callable with a generous inline buffer.
//
// The scheduler grants one base-object operation per step, and every posed
// operation used to travel through std::function, whose ~16-byte small-buffer
// budget forces a heap allocation for any callable that captures more than a
// pointer - e.g. a register write carrying its value, which on the snapshot
// substrates is a whole Cell (vectors included).  SmallFn keeps callables up
// to kInlineBytes inline (steps allocate nothing) and falls back to the heap
// only for oversized or throwing-move captures.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace revisim::util {

template <typename R>
class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 120;

  SmallFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&>)
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    } else {
      heap_ = new Fn(std::forward<F>(f));
    }
    vtable_ = vtable_for<Fn>();
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  R operator()() { return vtable_->invoke(target()); }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(target());
      vtable_ = nullptr;
      heap_ = nullptr;
    }
  }

 private:
  struct VTable {
    R (*invoke)(void*);
    // Move-construct *src into dst's inline buffer, then destroy *src.
    // Null for heap-stored callables (the pointer is stolen instead).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static const VTable* vtable_for() {
    if constexpr (fits_inline<Fn>()) {
      static constexpr VTable vt{
          [](void* p) -> R { return (*static_cast<Fn*>(p))(); },
          [](void* dst, void* src) noexcept {
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
          },
          [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }};
      return &vt;
    } else {
      static constexpr VTable vt{
          [](void* p) -> R { return (*static_cast<Fn*>(p))(); },
          nullptr,
          [](void* p) noexcept { delete static_cast<Fn*>(p); }};
      return &vt;
    }
  }

  void* target() noexcept {
    return vtable_ != nullptr && vtable_->relocate != nullptr
               ? static_cast<void*>(buf_)
               : heap_;
  }

  void move_from(SmallFn& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ == nullptr) {
      return;
    }
    if (vtable_->relocate != nullptr) {
      vtable_->relocate(buf_, other.buf_);
    } else {
      heap_ = other.heap_;
      other.heap_ = nullptr;
    }
    other.vtable_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* heap_ = nullptr;
  const VTable* vtable_ = nullptr;
};

}  // namespace revisim::util
