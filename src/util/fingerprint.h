// State fingerprinting for the schedule explorer's transposition table.
//
// Executions are deterministic functions of the schedule (src/runtime), so
// two schedule prefixes that reach the same canonical global state generate
// identical subtrees, and the explorer can prune the second - the classic
// transposition argument of stateful model checking.  The canonical state is
// serialized as a stream of 64-bit words through a StateSink:
//
//   * HashSink folds the stream into a 128-bit Fingerprint (the transposition
//     table key);
//   * TextSink renders the same stream as a decimal string - the *full*
//     canonical state, stored behind the hash in collision-audit mode so a
//     128-bit collision is detected instead of silently merging two distinct
//     states.
//
// Objects that hold behaviour-relevant shared state implement the
// Fingerprintable mixin and register themselves with their Scheduler
// (Scheduler::register_state_source); Scheduler::state_digest drives the
// per-process control skeleton plus every registered source through a sink.
//
// Soundness contract.  A fingerprint must determine the world's residual
// behaviour: pruning is verdict-preserving only if equal canonical states
// imply identical subtrees.  The digest covers each process's step count and
// poised step (kind + object), which pins the local state of straight-line
// and counted-loop scripts; process-local state that is *not* a function of
// (own steps taken, shared contents) - e.g. a remembered earlier read - must
// be folded in via ExplorableWorld::fingerprint_extra, or dedupe must stay
// off for that world.  Every word fed below is length-prefixed (vector sizes,
// presence flags), so the word stream is an injective encoding of the state
// for a fixed world factory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace revisim::util {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

// Receives the canonical state as a stream of 64-bit words.
class StateSink {
 public:
  virtual ~StateSink() = default;
  virtual void word(std::uint64_t w) = 0;
};

// 128-bit accumulator: two independently keyed 64-bit lanes, each word mixed
// through a full-avalanche finalizer (the splitmix64/murmur3 fmix), plus a
// word count folded in at digest time.  Not cryptographic - collision-audit
// mode exists for the paranoid configurations.
class HashSink final : public StateSink {
 public:
  void word(std::uint64_t w) override {
    a_ = mix(a_ ^ (w * 0x9e3779b97f4a7c15ull));
    b_ = mix(b_ + (w * 0xbf58476d1ce4e5b9ull) + 0x94d049bb133111ebull);
    ++n_;
  }

  [[nodiscard]] Fingerprint digest() const {
    Fingerprint fp;
    fp.hi = mix(a_ + 0x2545f4914f6cdd1dull * n_);
    fp.lo = mix(b_ ^ (a_ + n_));
    return fp;
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
  }

  std::uint64_t a_ = 0x6a09e667f3bcc908ull;  // distinct lane seeds
  std::uint64_t b_ = 0xbb67ae8584caa73bull;
  std::uint64_t n_ = 0;
};

// Renders the word stream as a decimal string: the full canonical state.
class TextSink final : public StateSink {
 public:
  explicit TextSink(std::string& out) : out_(out) {}

  void word(std::uint64_t w) override {
    out_ += std::to_string(w);
    out_.push_back(' ');
  }

 private:
  std::string& out_;
};

// Mixin for shared objects whose contents are part of the canonical global
// state.  Implementations feed their state to the sink with the helpers
// below; registration order (construction order) fixes the schema, so two
// worlds built by the same factory produce comparable streams.
class Fingerprintable {
 public:
  virtual ~Fingerprintable() = default;
  virtual void fingerprint_into(StateSink& sink) const = 0;
};

// --- feed helpers: size-prefixed, presence-flagged encodings --------------

template <typename T>
concept SelfFingerprinting = requires(const T& t, StateSink& s) {
  t.fingerprint_into(s);
};

template <typename T>
  requires std::is_integral_v<T> || std::is_enum_v<T>
inline void feed(StateSink& sink, T v) {
  sink.word(static_cast<std::uint64_t>(v));
}

template <SelfFingerprinting T>
inline void feed(StateSink& sink, const T& v) {
  v.fingerprint_into(sink);
}

template <typename T>
inline void feed(StateSink& sink, const std::optional<T>& v) {
  sink.word(v.has_value() ? 1 : 0);
  if (v.has_value()) {
    feed(sink, *v);
  }
}

template <typename T>
inline void feed(StateSink& sink, const std::vector<T>& v) {
  sink.word(v.size());
  for (const auto& e : v) {
    feed(sink, e);
  }
}

}  // namespace revisim::util
