#include "src/dist/fault_channel.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

namespace revisim::dist {

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      continue;
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault plan item '" + item +
                                  "' is not key=value");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    try {
      if (key == "seed") {
        plan.seed = std::stoull(value);
      } else if (key == "drop") {
        plan.drop_rate = std::stod(value);
      } else if (key == "dup") {
        plan.dup_rate = std::stod(value);
      } else if (key == "delay_rate") {
        plan.delay_rate = std::stod(value);
      } else if (key == "delay_ms") {
        plan.delay_ms = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "stall_at") {
        plan.stall_at = std::stoull(value);
      } else if (key == "stall_ms") {
        plan.stall_ms = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "cut_after") {
        plan.cut_after = std::stoull(value);
      } else if (key == "truncate_at") {
        plan.truncate_at = std::stoull(value);
      } else if (key == "partition_after") {
        plan.partition_after = std::stoull(value);
      } else {
        throw std::invalid_argument("unknown fault plan key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("fault plan value '" + value +
                                  "' for key '" + key + "' is malformed");
    }
  }
  return plan;
}

std::string fault_plan_text(const FaultPlan& plan) {
  std::string out;
  auto add = [&out](const std::string& piece) {
    if (!out.empty()) {
      out += ',';
    }
    out += piece;
  };
  if (plan.drop_rate > 0) {
    add("drop=" + std::to_string(plan.drop_rate));
  }
  if (plan.dup_rate > 0) {
    add("dup=" + std::to_string(plan.dup_rate));
  }
  if (plan.delay_rate > 0) {
    add("delay=" + std::to_string(plan.delay_ms) + "ms@" +
        std::to_string(plan.delay_rate));
  }
  if (plan.stall_at != 0) {
    add("stall_at=" + std::to_string(plan.stall_at) + "x" +
        std::to_string(plan.stall_ms) + "ms");
  }
  if (plan.cut_after != 0) {
    add("cut_after=" + std::to_string(plan.cut_after));
  }
  if (plan.truncate_at != 0) {
    add("truncate_at=" + std::to_string(plan.truncate_at));
  }
  if (plan.partition_after != 0) {
    add("partition_after=" + std::to_string(plan.partition_after));
  }
  return out.empty() ? "none" : out;
}

FaultPlan derive_fault_plan(const FaultPlan& plan, std::size_t index) {
  FaultPlan derived = plan;
  derived.seed = plan.seed + static_cast<std::uint64_t>(index) * 1000003ull;
  return derived;
}

Channel::Channel(Channel&& other) noexcept { *this = std::move(other); }

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    faults_ = other.faults_;
    rng_ = other.rng_;
    sent_frames_ = other.sent_frames_;
    send_seq_ = other.send_seq_;
    recv_seq_ = other.recv_seq_;
    broken_ = other.broken_;
    partitioned_ = other.partitioned_;
    nonblocking_ = other.nonblocking_;
    cut_on_drain_ = other.cut_on_drain_;
    rx_eof_ = other.rx_eof_;
    tx_ = std::move(other.tx_);
    tx_off_ = other.tx_off_;
    rx_ = std::move(other.rx_);
    rx_pos_ = other.rx_pos_;
    other.fd_ = -1;
    other.faults_ = nullptr;
  }
  return *this;
}

void Channel::adopt(int fd) {
  close();
  fd_ = fd;
  sent_frames_ = 0;
  send_seq_ = 0;
  recv_seq_ = 0;
  broken_ = false;
  partitioned_ = false;
  nonblocking_ = false;
  cut_on_drain_ = false;
  rx_eof_ = false;
  tx_.clear();
  tx_off_ = 0;
  rx_.clear();
  rx_pos_ = 0;
}

void Channel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Channel::set_faults(FaultPlan* plan) {
  faults_ = plan;
  if (plan != nullptr) {
    rng_ = plan->seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  }
}

bool Channel::chance(double p) {
  if (p <= 0) {
    return false;
  }
  rng_ ^= rng_ << 13;
  rng_ ^= rng_ >> 7;
  rng_ ^= rng_ << 17;
  return static_cast<double>(rng_ >> 11) * 0x1.0p-53 < p;
}

void Channel::send(MsgType type, const WireWriter& body) {
  if (fd_ < 0 || broken_) {
    throw WireError("connection cut by fault injection");
  }
  if ((faults_ == nullptr || !faults_->any()) && !tx_pending()) {
    // Fault-free fast path: one scatter-gather write, nothing buffered.
    send_frame(fd_, type, body, send_seq_++);
    ++sent_frames_;
    return;
  }
  queue_frame(type, body);
  flush_all();
}

void Channel::enqueue(MsgType type, const WireWriter& body) {
  if (fd_ < 0 || broken_) {
    throw WireError("connection cut by fault injection");
  }
  queue_frame(type, body);
}

// The one fault pipeline both I/O modes share.  Commits the (possibly
// perturbed) frame bytes to tx_; the enqueue order is the stream order.
void Channel::queue_frame(MsgType type, const WireWriter& body) {
  if (faults_ == nullptr || !faults_->any()) {
    append_frame(tx_, type, body, send_seq_++);
    ++sent_frames_;
    return;
  }
  ++sent_frames_;

  // Timing faults first: they perturb when, not whether, the bytes land.
  if (faults_->stall_at != 0 && sent_frames_ == faults_->stall_at) {
    const std::uint32_t ms = faults_->stall_ms;
    faults_->stall_at = 0;  // one-shot
    ::usleep(static_cast<useconds_t>(ms) * 1000);
  } else if (chance(faults_->delay_rate)) {
    ::usleep(static_cast<useconds_t>(faults_->delay_ms) * 1000);
  }

  if (faults_->partition_after != 0 &&
      sent_frames_ >= faults_->partition_after) {
    faults_->partition_after = 0;  // disarm for the next connection
    partitioned_ = true;
  }
  if (partitioned_) {
    ++send_seq_;  // the peer never hears this frame, or any after it
    return;
  }

  if (faults_->truncate_at != 0 && sent_frames_ == faults_->truncate_at) {
    faults_->truncate_at = 0;  // one-shot
    const std::size_t before = tx_.size();
    append_frame(tx_, type, body, send_seq_++);
    const std::size_t frame = tx_.size() - before;
    tx_.resize(before + (frame < 2 ? 1 : frame / 2));
    // Push the torn bytes out as far as the socket allows before dying, so
    // the peer observes a mid-frame EOF rather than a silent vanish.
    flush();
    ::shutdown(fd_, SHUT_RDWR);
    broken_ = true;
    throw WireError("fault injection: frame truncated mid-send");
  }

  if (chance(faults_->drop_rate)) {
    ++send_seq_;  // the gap surfaces at the peer's next recv
    return;
  }

  const bool duplicate = chance(faults_->dup_rate);
  append_frame(tx_, type, body, send_seq_);
  if (duplicate) {
    append_frame(tx_, type, body, send_seq_);  // same seq: a true dup
  }
  ++send_seq_;

  if (faults_->cut_after != 0 && sent_frames_ >= faults_->cut_after) {
    faults_->cut_after = 0;  // one-shot
    cut_on_drain_ = true;  // shut down after this frame's bytes land
  }
}

bool Channel::flush() {
  while (tx_off_ < tx_.size()) {
    const ssize_t sent =
        ::send(fd_, tx_.data() + tx_off_, tx_.size() - tx_off_, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return false;
      }
      throw WireError(std::string("send: ") + std::strerror(errno));
    }
    tx_off_ += static_cast<std::size_t>(sent);
  }
  tx_.clear();
  tx_off_ = 0;
  if (cut_on_drain_) {
    cut_on_drain_ = false;
    ::shutdown(fd_, SHUT_RDWR);
    broken_ = true;
  }
  return true;
}

void Channel::flush_all() {
  while (!flush()) {
    // Only a non-blocking fd can report would-block; wait for socket space
    // rather than spinning.
    struct pollfd pfd {};
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    ::poll(&pfd, 1, -1);
  }
}

void Channel::set_nonblocking() {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw WireError(std::string("fcntl O_NONBLOCK: ") + std::strerror(errno));
  }
  nonblocking_ = true;
  tx_.reserve(std::size_t{64} << 10);
  rx_.reserve(std::size_t{64} << 10);
}

int Channel::buffered_recv(Frame& frame) {
  for (;;) {
    const std::size_t avail = rx_.size() - rx_pos_;
    if (avail >= kFrameHeaderBytes) {
      const std::uint8_t* header = rx_.data() + rx_pos_;
      const std::uint32_t len = frame_payload_size(header);
      if (avail >= kFrameHeaderBytes + len) {
        parse_frame(header, header + kFrameHeaderBytes, len, frame, recv_seq_);
        ++recv_seq_;
        rx_pos_ += kFrameHeaderBytes + len;
        if (rx_pos_ == rx_.size()) {
          rx_.clear();
          rx_pos_ = 0;
        } else if (rx_pos_ >= (std::size_t{1} << 20)) {
          // Compact occasionally so a long-lived connection cannot grow the
          // buffer with already-consumed bytes.
          rx_.erase(rx_.begin(), rx_.begin() + static_cast<std::ptrdiff_t>(rx_pos_));
          rx_pos_ = 0;
        }
        return 1;
      }
    }
    if (rx_eof_) {
      if (rx_.size() == rx_pos_) {
        return -1;
      }
      throw WireError("connection closed mid-frame");
    }
    std::uint8_t chunk[16 << 10];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return 0;
      }
      throw WireError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      rx_eof_ = true;
      continue;
    }
    rx_.insert(rx_.end(), chunk, chunk + n);
  }
}

bool Channel::recv(Frame& frame) {
  if (!recv_frame(fd_, frame, recv_seq_)) {
    return false;
  }
  ++recv_seq_;
  return true;
}

int Channel::try_recv(Frame& frame) {
  const int got = try_recv_frame(fd_, frame, recv_seq_);
  if (got == 1) {
    ++recv_seq_;
  }
  return got;
}

}  // namespace revisim::dist
