#include "src/dist/fault_channel.h"

#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

namespace revisim::dist {

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      continue;
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault plan item '" + item +
                                  "' is not key=value");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    try {
      if (key == "seed") {
        plan.seed = std::stoull(value);
      } else if (key == "drop") {
        plan.drop_rate = std::stod(value);
      } else if (key == "dup") {
        plan.dup_rate = std::stod(value);
      } else if (key == "delay_rate") {
        plan.delay_rate = std::stod(value);
      } else if (key == "delay_ms") {
        plan.delay_ms = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "stall_at") {
        plan.stall_at = std::stoull(value);
      } else if (key == "stall_ms") {
        plan.stall_ms = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "cut_after") {
        plan.cut_after = std::stoull(value);
      } else if (key == "truncate_at") {
        plan.truncate_at = std::stoull(value);
      } else if (key == "partition_after") {
        plan.partition_after = std::stoull(value);
      } else {
        throw std::invalid_argument("unknown fault plan key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("fault plan value '" + value +
                                  "' for key '" + key + "' is malformed");
    }
  }
  return plan;
}

std::string fault_plan_text(const FaultPlan& plan) {
  std::string out;
  auto add = [&out](const std::string& piece) {
    if (!out.empty()) {
      out += ',';
    }
    out += piece;
  };
  if (plan.drop_rate > 0) {
    add("drop=" + std::to_string(plan.drop_rate));
  }
  if (plan.dup_rate > 0) {
    add("dup=" + std::to_string(plan.dup_rate));
  }
  if (plan.delay_rate > 0) {
    add("delay=" + std::to_string(plan.delay_ms) + "ms@" +
        std::to_string(plan.delay_rate));
  }
  if (plan.stall_at != 0) {
    add("stall_at=" + std::to_string(plan.stall_at) + "x" +
        std::to_string(plan.stall_ms) + "ms");
  }
  if (plan.cut_after != 0) {
    add("cut_after=" + std::to_string(plan.cut_after));
  }
  if (plan.truncate_at != 0) {
    add("truncate_at=" + std::to_string(plan.truncate_at));
  }
  if (plan.partition_after != 0) {
    add("partition_after=" + std::to_string(plan.partition_after));
  }
  return out.empty() ? "none" : out;
}

FaultPlan derive_fault_plan(const FaultPlan& plan, std::size_t index) {
  FaultPlan derived = plan;
  derived.seed = plan.seed + static_cast<std::uint64_t>(index) * 1000003ull;
  return derived;
}

Channel::Channel(Channel&& other) noexcept { *this = std::move(other); }

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    faults_ = other.faults_;
    rng_ = other.rng_;
    sent_frames_ = other.sent_frames_;
    send_seq_ = other.send_seq_;
    recv_seq_ = other.recv_seq_;
    broken_ = other.broken_;
    partitioned_ = other.partitioned_;
    other.fd_ = -1;
    other.faults_ = nullptr;
  }
  return *this;
}

void Channel::adopt(int fd) {
  close();
  fd_ = fd;
  sent_frames_ = 0;
  send_seq_ = 0;
  recv_seq_ = 0;
  broken_ = false;
  partitioned_ = false;
}

void Channel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Channel::set_faults(FaultPlan* plan) {
  faults_ = plan;
  if (plan != nullptr) {
    rng_ = plan->seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  }
}

bool Channel::chance(double p) {
  if (p <= 0) {
    return false;
  }
  rng_ ^= rng_ << 13;
  rng_ ^= rng_ >> 7;
  rng_ ^= rng_ << 17;
  return static_cast<double>(rng_ >> 11) * 0x1.0p-53 < p;
}

void Channel::send(MsgType type, const WireWriter& body) {
  if (fd_ < 0 || broken_) {
    throw WireError("connection cut by fault injection");
  }
  if (faults_ == nullptr || !faults_->any()) {
    send_frame(fd_, type, body, send_seq_++);
    ++sent_frames_;
    return;
  }
  ++sent_frames_;

  // Timing faults first: they perturb when, not whether, the bytes land.
  if (faults_->stall_at != 0 && sent_frames_ == faults_->stall_at) {
    const std::uint32_t ms = faults_->stall_ms;
    faults_->stall_at = 0;  // one-shot
    ::usleep(static_cast<useconds_t>(ms) * 1000);
  } else if (chance(faults_->delay_rate)) {
    ::usleep(static_cast<useconds_t>(faults_->delay_ms) * 1000);
  }

  if (faults_->partition_after != 0 &&
      sent_frames_ >= faults_->partition_after) {
    faults_->partition_after = 0;  // disarm for the next connection
    partitioned_ = true;
  }
  if (partitioned_) {
    ++send_seq_;  // the peer never hears this frame, or any after it
    return;
  }

  if (faults_->truncate_at != 0 && sent_frames_ == faults_->truncate_at) {
    faults_->truncate_at = 0;  // one-shot
    build_frame(scratch_, type, body, send_seq_++);
    const std::size_t half = scratch_.size() < 2 ? 1 : scratch_.size() / 2;
    send_bytes(fd_, scratch_.data(), half);
    ::shutdown(fd_, SHUT_RDWR);
    broken_ = true;
    throw WireError("fault injection: frame truncated mid-send");
  }

  if (chance(faults_->drop_rate)) {
    ++send_seq_;  // the gap surfaces at the peer's next recv
    return;
  }

  const bool duplicate = chance(faults_->dup_rate);
  send_frame(fd_, type, body, send_seq_);
  if (duplicate) {
    send_frame(fd_, type, body, send_seq_);  // same seq: a true dup
  }
  ++send_seq_;

  if (faults_->cut_after != 0 && sent_frames_ >= faults_->cut_after) {
    faults_->cut_after = 0;  // one-shot
    ::shutdown(fd_, SHUT_RDWR);
    broken_ = true;
  }
}

bool Channel::recv(Frame& frame) {
  if (!recv_frame(fd_, frame, recv_seq_)) {
    return false;
  }
  ++recv_seq_;
  return true;
}

int Channel::try_recv(Frame& frame) {
  const int got = try_recv_frame(fd_, frame, recv_seq_);
  if (got == 1) {
    ++recv_seq_;
  }
  return got;
}

}  // namespace revisim::dist
