#include "src/dist/journal.h"

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "src/util/crc32.h"

namespace revisim::dist {
namespace {

constexpr char kJournalMagic[8] = {'R', 'V', 'S', 'J', 'R', 'N', 'L', '1'};

enum RecordType : std::uint8_t {
  kConfig = 1,
  kCreated = 2,
  kDone = 3,
  kDiscarded = 4,
};

void encode_config(WireWriter& w, const JournalConfig& c) {
  w.str(c.tag);
  w.u64(c.max_steps);
  w.u64(c.max_executions);
  w.u64(c.max_crashes);
  w.u8(c.por ? 1 : 0);
  w.u8(c.dedupe ? 1 : 0);
  w.u8(c.record_traces ? 1 : 0);
}

JournalConfig decode_config(WireReader& r) {
  JournalConfig c;
  c.tag = r.str();
  c.max_steps = r.u64();
  c.max_executions = r.u64();
  c.max_crashes = r.u64();
  c.por = r.u8() != 0;
  c.dedupe = r.u8() != 0;
  c.record_traces = r.u8() != 0;
  r.expect_done();
  return c;
}

}  // namespace

void JournalWriter::create(const std::string& path,
                           const JournalConfig& config) {
  std::lock_guard<std::mutex> g(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw WireError("journal: cannot create " + path + ": " +
                    std::strerror(errno));
  }
  if (std::fwrite(kJournalMagic, 1, sizeof kJournalMagic, file_) !=
      sizeof kJournalMagic) {
    throw WireError("journal: short write to " + path);
  }
  body_.clear();
  encode_config(body_, config);
  record(kConfig, body_);
}

void JournalWriter::append_to(const std::string& path) {
  std::lock_guard<std::mutex> g(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    throw WireError("journal: cannot append to " + path + ": " +
                    std::strerror(errno));
  }
}

void JournalWriter::close() {
  std::lock_guard<std::mutex> g(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void JournalWriter::record(std::uint8_t type, const WireWriter& payload) {
  if (file_ == nullptr) {
    return;
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::uint8_t head[5];
  for (int i = 0; i < 4; ++i) {
    head[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  head[4] = type;
  std::uint32_t crc = util::crc32(0, head + 4, 1);
  crc = util::crc32(crc, payload.data(), payload.size());
  std::uint8_t tail[4];
  for (int i = 0; i < 4; ++i) {
    tail[i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  if (std::fwrite(head, 1, sizeof head, file_) != sizeof head ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size() ||
      std::fwrite(tail, 1, sizeof tail, file_) != sizeof tail) {
    throw WireError("journal: short write");
  }
  std::fflush(file_);
}

void JournalWriter::job_created(std::uint64_t id, bool has_parent,
                                std::uint64_t parent,
                                const std::vector<runtime::ProcessId>& prefix,
                                const std::vector<runtime::ProcessId>& choices,
                                const std::vector<runtime::ProcessId>& sleep,
                                std::uint32_t sleep_inherited) {
  std::lock_guard<std::mutex> g(mu_);
  body_.clear();
  body_.u64(id);
  body_.u8(has_parent ? 1 : 0);
  body_.u64(parent);
  body_.schedule(prefix);
  body_.schedule(choices);
  body_.schedule(sleep);
  body_.u32(sleep_inherited);
  record(kCreated, body_);
}

void JournalWriter::job_done(std::uint64_t id,
                             const check::detail::SubtreeResult& result) {
  std::lock_guard<std::mutex> g(mu_);
  body_.clear();
  body_.u64(id);
  encode_subtree_result(body_, result);
  record(kDone, body_);
}

void JournalWriter::job_discarded(std::uint64_t id) {
  std::lock_guard<std::mutex> g(mu_);
  body_.clear();
  body_.u64(id);
  record(kDiscarded, body_);
}

JournalContents read_journal(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw WireError("journal: cannot read " + path + ": " +
                    std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  {
    std::uint8_t buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + n);
    }
    std::fclose(f);
  }
  if (bytes.size() < sizeof kJournalMagic ||
      std::memcmp(bytes.data(), kJournalMagic, sizeof kJournalMagic) != 0) {
    throw WireError("journal: " + path + " is not a revisim run journal");
  }

  JournalContents out;
  std::unordered_map<std::uint64_t, std::size_t> index;
  bool have_config = false;
  std::size_t off = sizeof kJournalMagic;
  while (off < bytes.size()) {
    // A record that does not fully fit, or fails its crc, is the torn
    // tail: stop and report how much was dropped.
    if (bytes.size() - off < 9) {
      break;
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= std::uint32_t{bytes[off + i]} << (8 * i);
    }
    if (len > kMaxFrameBytes || bytes.size() - off < 9 + std::size_t{len}) {
      break;
    }
    const std::uint8_t type = bytes[off + 4];
    const std::uint8_t* payload = bytes.data() + off + 5;
    std::uint32_t want = 0;
    for (int i = 0; i < 4; ++i) {
      want |= std::uint32_t{bytes[off + 5 + len + i]} << (8 * i);
    }
    std::uint32_t crc = util::crc32(0, &type, 1);
    crc = util::crc32(crc, payload, len);
    if (crc != want) {
      break;
    }

    // A record that passed its crc but does not parse (unknown id/type,
    // reader underflow) is corruption a tear cannot explain: WireError
    // propagates to the caller.
    WireReader r(payload, len);
    {
      switch (type) {
        case kConfig:
          out.config = decode_config(r);
          have_config = true;
          break;
        case kCreated: {
          JournalJob job;
          job.id = r.u64();
          job.has_parent = r.u8() != 0;
          job.parent = r.u64();
          job.prefix = r.schedule();
          job.choices = r.schedule();
          job.sleep = r.schedule();
          job.sleep_inherited = r.u32();
          r.expect_done();
          index[job.id] = out.jobs.size();
          out.jobs.push_back(std::move(job));
          break;
        }
        case kDone: {
          const std::uint64_t id = r.u64();
          check::detail::SubtreeResult result = decode_subtree_result(r);
          r.expect_done();
          const auto it = index.find(id);
          if (it == index.end()) {
            throw WireError("journal: done record for unknown job " +
                            std::to_string(id));
          }
          out.jobs[it->second].done = true;
          out.jobs[it->second].result = std::move(result);
          break;
        }
        case kDiscarded: {
          const std::uint64_t id = r.u64();
          r.expect_done();
          const auto it = index.find(id);
          if (it == index.end()) {
            throw WireError("journal: discard record for unknown job " +
                            std::to_string(id));
          }
          out.jobs[it->second].discarded = true;
          break;
        }
        default:
          throw WireError("journal: unknown record type " +
                          std::to_string(type));
      }
    }
    off += 9 + std::size_t{len};
  }
  out.dropped_tail_bytes = bytes.size() - off;
  if (!have_config) {
    throw WireError("journal: " + path + " has no config record");
  }
  return out;
}

}  // namespace revisim::dist
