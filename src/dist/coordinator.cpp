#include "src/dist/coordinator.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <utility>

#include "src/check/explore_core.h"
#include "src/check/explore_merge.h"
#include "src/check/state_table.h"
#include "src/dist/wire.h"
#include "src/dist/worker.h"

namespace revisim::dist {
namespace {

using Clock = std::chrono::steady_clock;
using check::detail::key_less;
using runtime::ProcessId;

class Log {
 public:
  explicit Log(const std::string& path) {
    if (!path.empty()) {
      file_ = std::fopen(path.c_str(), "a");
    }
  }
  ~Log() {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
  }
  void line(const char* fmt, ...) {
    if (file_ == nullptr) {
      return;
    }
    std::lock_guard<std::mutex> g(mu_);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(file_, fmt, ap);
    va_end(ap);
    std::fputc('\n', file_);
    std::fflush(file_);
  }

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

// The distributed twin of parallel_explore.cpp's JobRecord.
struct DistJob {
  enum State : int { kPending, kRunning, kDone, kFailed, kAborted };

  std::uint64_t id = 0;
  std::vector<ProcessId> key;      // prefix + first choice; see explore_merge.h
  std::vector<ProcessId> prefix;
  std::vector<ProcessId> choices;  // empty = all (seed job)
  std::vector<ProcessId> sleep;
  std::uint32_t sleep_inherited = 0;  // see DonateMsg
  std::size_t donor = 0;
  bool donated = false;            // false only for the seed job
  State state = kPending;          // guarded by the coordinator mutex
  std::size_t failures = 0;        // failed/lost attempts consumed
  std::size_t donated_in_attempt = 0;
  bool abort_sent = false;         // a kCredit abort is already in flight
  // Lower bound on this region's executions, fed by kLive messages; same
  // cap-bound role as JobRecord::live_execs.
  std::atomic<std::uint64_t> live{0};
  check::detail::SubtreeResult result;  // valid once kDone
  std::string error;                    // valid once kFailed
};

// One worker connection.  The reused writer is the per-connection
// serialization buffer; send_mu serializes frame writes (the connection's
// own thread and peers pushing credits/steal requests).
struct Conn {
  int fd = -1;
  std::size_t worker = 0;
  std::mutex send_mu;
  WireWriter out;
  Frame in;
  bool alive = true;           // guarded by CoState::mu
  DistJob* current = nullptr;  // guarded by CoState::mu
};

struct CoState {
  const DistExploreOptions* options = nullptr;
  std::uint64_t cap = 0;
  std::optional<Clock::time_point> deadline;
  Log* log = nullptr;

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::unique_ptr<DistJob>> records;  // append-only
  std::size_t pending = 0;
  std::size_t running = 0;
  std::size_t alive = 0;   // connections still serving
  bool stop = false;
  bool first_job_shipped = false;
  bool have_violation = false;
  std::vector<ProcessId> violation_key;
  std::size_t steals = 0;
  // Nonempty once the run lost the means to finish outstanding work (every
  // worker disconnected, or the fingerprint audit found a collision);
  // becomes the merged partial summary's error.
  std::string unfinished_reason;
  std::vector<std::unique_ptr<Conn>> conns;

  // Sharded fingerprint service (dedupe only).  Shard = top bits of fp.hi;
  // each shard is an ordinary lock-free StateTable, so kFpInsert handlers
  // never serialize against each other across shards.
  std::vector<std::unique_ptr<check::StateTable>> shards;
  std::size_t shard_bits = 0;

  // Sum of live execution counters over records lex-before `key` - a lower
  // bound on the serial execution count before this record's region.
  // Caller holds mu.
  std::uint64_t bound_before(const std::vector<ProcessId>& key) const {
    std::uint64_t sum = 0;
    for (const auto& r : records) {
      if (key_less(r->key, key)) {
        sum += r->live.load(std::memory_order_relaxed);
      }
    }
    return sum;
  }
};

// Sends one frame to `conn`, serialized against concurrent senders.  A send
// failure is NOT fatal here: the connection's own thread will observe the
// dead socket and run the disconnect path.
template <typename Encode>
void send_to(Conn& conn, MsgType type, Encode encode) {
  std::lock_guard<std::mutex> g(conn.send_mu);
  conn.out.clear();
  encode(conn.out);
  try {
    send_frame(conn.fd, type, conn.out);
  } catch (const WireError&) {
  }
}

// Pushes kCredit aborts to every running job the merge provably cannot
// read: lex-earlier regions already secured the cap, or a lex-earlier
// violation is final.  Caller holds mu (lock order: mu before send_mu).
void push_aborts(CoState& co) {
  for (const auto& c : co.conns) {
    if (!c->alive || c->current == nullptr || c->current->abort_sent) {
      continue;
    }
    DistJob* rec = c->current;
    const bool dead_key =
        co.have_violation && key_less(co.violation_key, rec->key);
    if (co.stop || dead_key || co.bound_before(rec->key) >= co.cap) {
      rec->abort_sent = true;
      const std::uint64_t id = rec->id;
      send_to(*c, MsgType::kCredit, [id](WireWriter& w) {
        CreditMsg m;
        m.id = id;
        m.abort = true;
        encode_credit(w, m);
      });
    }
  }
}

// Re-queues a lost or throwing job, or fails it once retries are exhausted
// or the attempt donated regions (a rerun would re-explore them).  Caller
// holds mu.
void requeue_or_fail(CoState& co, DistJob* rec, const std::string& why) {
  ++rec->failures;
  if (rec->donated_in_attempt > 0 || rec->failures > co.options->job_retries) {
    rec->state = DistJob::kFailed;
    rec->error = why;
    co.log->line("coordinator: job %llu failed (%s)",
                 static_cast<unsigned long long>(rec->id), why.c_str());
  } else {
    rec->state = DistJob::kPending;
    rec->live.store(0, std::memory_order_relaxed);
    rec->abort_sent = false;
    ++co.pending;
    co.log->line("coordinator: job %llu re-queued (%s)",
                 static_cast<unsigned long long>(rec->id), why.c_str());
  }
}

bool past_deadline(const CoState& co) {
  return co.deadline && Clock::now() >= *co.deadline;
}

// Hello/ack handshake for one connection.  Returns false on rejection.
bool handshake(CoState& co, Conn& conn, const check::CrashWorldSpec* spec) {
  const check::ScheduleExploreOptions& base = co.options->base;
  HelloMsg hello;
  hello.worker = static_cast<std::uint32_t>(conn.worker);
  hello.max_steps = base.max_steps;
  hello.warm_worlds = base.warm_worlds;
  hello.max_crashes = base.max_crashes;
  hello.record_traces = base.record_traces;
  hello.dedupe_states = base.dedupe_states;
  hello.dedupe_audit = base.dedupe_audit;
  hello.dedupe_adaptive = base.dedupe_adaptive;
  hello.por = base.por;
  hello.live_interval = std::max<std::uint64_t>(co.options->live_interval, 1);
  if (spec != nullptr) {
    hello.world = spec->world;
    hello.f = spec->f;
    hello.m = spec->m;
    hello.step_budget = spec->step_budget;
  }
  try {
    conn.out.clear();
    encode_hello(conn.out, hello);
    send_frame(conn.fd, MsgType::kHello, conn.out);
    if (!wait_readable(conn.fd, 10'000) || !recv_frame(conn.fd, conn.in) ||
        conn.in.type != MsgType::kHelloAck) {
      throw WireError("no hello-ack");
    }
    WireReader r = conn.in.reader();
    const HelloAckMsg ack = decode_hello_ack(r);
    if (!ack.ok) {
      throw WireError("worker rejected hello: " + ack.error);
    }
  } catch (const std::exception& e) {
    co.log->line("coordinator: worker %zu handshake failed: %s", conn.worker,
                 e.what());
    return false;
  }
  return true;
}

void handle_fp_insert(CoState& co, Conn& conn) {
  WireReader r = conn.in.reader();
  FpInsertMsg msg = decode_fp_insert(r);
  const std::size_t shard =
      co.shard_bits == 0
          ? 0
          : static_cast<std::size_t>(msg.fp.hi >> (64 - co.shard_bits));
  FpReplyMsg reply;
  try {
    std::function<std::string()> canonical;
    if (msg.has_canonical) {
      canonical = [&msg] { return msg.canonical; };
    }
    reply.was_new = co.shards[shard]->insert(msg.fp, canonical);
  } catch (const check::StateFingerprintCollision& e) {
    // The audit found two canonical states behind one fingerprint: every
    // prune taken anywhere in this run is suspect.  Poison the run; the
    // worker gets its reply and then an abort credit.
    reply.was_new = true;
    std::lock_guard<std::mutex> g(co.mu);
    if (co.unfinished_reason.empty()) {
      co.unfinished_reason = e.what();
    }
    co.stop = true;
    push_aborts(co);
    co.cv.notify_all();
  }
  send_to(conn, MsgType::kFpReply,
          [&reply](WireWriter& w) { encode_fp_reply(w, reply); });
}

// One thread per worker connection: claim the lex-earliest pending job,
// ship it, and pump the worker's messages until the job resolves.  The
// exact structure of parallel_explore.cpp's run_one_worker, with the
// in-process hooks replaced by their wire twins.
void serve_worker(CoState& co, Conn& conn, const check::CrashWorldSpec* spec) {
  if (!handshake(co, conn, spec)) {
    std::lock_guard<std::mutex> g(co.mu);
    conn.alive = false;
    if (--co.alive == 0 && (co.pending > 0 || co.running > 0)) {
      co.stop = true;
      if (co.unfinished_reason.empty()) {
        co.unfinished_reason = "every worker disconnected before the run finished";
      }
    }
    co.cv.notify_all();
    return;
  }

  std::unique_lock<std::mutex> lk(co.mu);
  for (;;) {
    DistJob* rec = nullptr;
    while (!co.stop) {
      if (past_deadline(co)) {
        co.stop = true;
        push_aborts(co);
        co.cv.notify_all();
        break;
      }
      for (const auto& r : co.records) {
        if (r->state == DistJob::kPending &&
            (rec == nullptr || key_less(r->key, rec->key))) {
          rec = r.get();
        }
      }
      if (rec != nullptr || (co.pending == 0 && co.running == 0)) {
        break;
      }
      // Hungry: the in-process hungry hint, spoken over the wire.  Poke
      // every busy worker; re-poke on every wakeup timeout in case the
      // request raced a donation that someone else claimed.
      if (co.options->steal_requests) {
        for (const auto& c : co.conns) {
          if (c.get() != &conn && c->alive && c->current != nullptr) {
            send_to(*c, MsgType::kStealReq,
                    [](WireWriter&) { /* empty payload */ });
          }
        }
      }
      co.cv.wait_for(lk, std::chrono::milliseconds(100));
    }
    if (rec == nullptr || co.stop) {
      co.cv.notify_all();  // cascade termination to the other waiters
      break;
    }
    rec->state = DistJob::kRunning;
    --co.pending;
    ++co.running;
    conn.current = rec;
    rec->donated_in_attempt = 0;
    rec->abort_sent = false;
    rec->live.store(0, std::memory_order_relaxed);
    if (rec->donated && rec->donor != conn.worker) {
      ++co.steals;
    }

    // Pre-skip jobs whose result the merge provably cannot read (same
    // bound as the in-process claim path).
    const std::uint64_t before = co.bound_before(rec->key);
    const bool dead_key =
        co.have_violation && key_less(co.violation_key, rec->key);
    if (before >= co.cap || dead_key) {
      rec->state = DistJob::kAborted;
      --co.running;
      conn.current = nullptr;
      if (co.pending == 0 && co.running == 0) {
        co.cv.notify_all();
      }
      continue;
    }

    JobMsg job;
    job.id = rec->id;
    job.budget = co.cap - before;
    job.prefix = rec->prefix;
    job.choices = rec->choices;
    job.sleep = rec->sleep;
    job.sleep_inherited = rec->sleep_inherited;
    if (co.options->fault_first_job_after != 0 && !co.first_job_shipped) {
      job.fault_after = co.options->fault_first_job_after;
    }
    co.first_job_shipped = true;
    co.log->line(
        "coordinator: job %llu -> worker %zu (prefix=%zu choices=%zu "
        "budget=%llu)",
        static_cast<unsigned long long>(job.id), conn.worker,
        job.prefix.size(), job.choices.size(),
        static_cast<unsigned long long>(job.budget));

    lk.unlock();
    bool conn_dead = false;
    std::string death = "worker " + std::to_string(conn.worker) +
                        " disconnected mid-job";
    try {
      {
        std::lock_guard<std::mutex> g(conn.send_mu);
        conn.out.clear();
        encode_job(conn.out, job);
        send_frame(conn.fd, MsgType::kJob, conn.out);
      }
      int stalls_after_stop = 0;
      for (bool resolved = false; !resolved;) {
        if (!wait_readable(conn.fd, 200)) {
          std::lock_guard<std::mutex> g(co.mu);
          if (past_deadline(co) && !co.stop) {
            co.stop = true;
            co.cv.notify_all();
          }
          if (co.stop) {
            push_aborts(co);
            // A stopped worker answers the abort credit within one
            // execution; a worker that stays silent for 10s of stop is
            // wedged or gone - cut it loose so the run can summarize.
            if (++stalls_after_stop >= 50) {
              throw WireError("worker unresponsive after stop");
            }
          }
          continue;
        }
        if (!recv_frame(conn.fd, conn.in)) {
          throw WireError("connection closed");
        }
        switch (conn.in.type) {
          case MsgType::kLive: {
            WireReader r = conn.in.reader();
            const LiveMsg live = decode_live(r);
            if (live.id == rec->id) {
              rec->live.store(live.executions, std::memory_order_relaxed);
              std::lock_guard<std::mutex> g(co.mu);
              push_aborts(co);
            }
            break;
          }
          case MsgType::kDonate: {
            WireReader r = conn.in.reader();
            DonateMsg d = decode_donate(r);
            if (d.choices.empty()) {
              throw WireError("donation with no choices");
            }
            std::lock_guard<std::mutex> g(co.mu);
            auto child = std::make_unique<DistJob>();
            child->id = co.records.size();
            child->key = d.prefix;
            child->key.push_back(d.choices[0]);
            child->prefix = std::move(d.prefix);
            child->choices = std::move(d.choices);
            child->sleep = std::move(d.sleep);
            child->sleep_inherited = d.sleep_inherited;
            child->donor = conn.worker;
            child->donated = true;
            co.records.push_back(std::move(child));
            ++co.pending;
            ++rec->donated_in_attempt;
            co.cv.notify_one();
            break;
          }
          case MsgType::kFpInsert:
            handle_fp_insert(co, conn);
            break;
          case MsgType::kJobResult: {
            WireReader r = conn.in.reader();
            JobResultMsg msg = decode_job_result(r);
            std::lock_guard<std::mutex> g(co.mu);
            rec->live.store(msg.result.executions, std::memory_order_relaxed);
            if (msg.result.violation &&
                (!co.have_violation || key_less(rec->key, co.violation_key))) {
              co.have_violation = true;
              co.violation_key = rec->key;
            }
            rec->result = std::move(msg.result);
            // Partial walks (abort credits, stop) are stored as kDone too,
            // exactly like the in-process explorer: the merge either never
            // reads them or reports the truncation they represent.
            rec->state = DistJob::kDone;
            --co.running;
            conn.current = nullptr;
            push_aborts(co);
            co.cv.notify_all();
            resolved = true;
            break;
          }
          case MsgType::kJobError: {
            WireReader r = conn.in.reader();
            const JobErrorMsg msg = decode_job_error(r);
            std::lock_guard<std::mutex> g(co.mu);
            requeue_or_fail(co, rec, msg.message);
            --co.running;
            conn.current = nullptr;
            co.cv.notify_all();
            resolved = true;
            break;
          }
          default:
            throw WireError("unexpected frame type " +
                            std::to_string(static_cast<int>(conn.in.type)));
        }
      }
    } catch (const std::exception& e) {
      conn_dead = true;
      death += " (";
      death += e.what();
      death += ")";
    }

    lk.lock();
    if (conn_dead) {
      co.log->line("coordinator: %s", death.c_str());
      conn.alive = false;
      requeue_or_fail(co, rec, death);
      --co.running;
      conn.current = nullptr;
      if (--co.alive == 0 && (co.pending > 0 || co.running > 0)) {
        co.stop = true;
        if (co.unfinished_reason.empty()) {
          co.unfinished_reason =
              "every worker disconnected with work outstanding (last: " +
              death + ")";
        }
      }
      co.cv.notify_all();
      return;
    }
  }

  // Normal exit: hand the worker its shutdown and retire the connection.
  lk.unlock();
  send_to(conn, MsgType::kShutdown, [](WireWriter&) {});
  lk.lock();
  conn.alive = false;
  --co.alive;
  co.cv.notify_all();
}

void reap_children(const std::vector<pid_t>& kids) {
  for (const pid_t pid : kids) {
    int status = 0;
    // Workers exit on shutdown or coordinator EOF; give each a grace
    // window before escalating.
    for (int spins = 0; spins < 500; ++spins) {
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid || (r < 0 && errno != EINTR)) {
        break;  // reaped, or not our child anymore
      }
      if (spins == 499) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        break;
      }
      ::usleep(10 * 1000);
    }
  }
}

std::string log_path_for(const char* name) {
  const char* dir = std::getenv("REVISIM_DIST_LOG");
  if (dir == nullptr) {
    return {};
  }
  return std::string(dir) + "/" + name + ".log";
}

}  // namespace

check::ScheduleExploreResult coordinate(std::vector<int> worker_fds,
                                        const DistExploreOptions& options,
                                        const check::CrashWorldSpec* spec) {
  check::validate(options.base);
  if (worker_fds.empty()) {
    throw std::invalid_argument("dist: coordinate needs at least one worker");
  }

  Log log(log_path_for("coordinator"));
  CoState co;
  co.options = &options;
  co.log = &log;
  co.cap = std::max<std::uint64_t>(options.base.max_executions, 1);
  if (options.time_limit.count() > 0) {
    co.deadline = Clock::now() + options.time_limit;
  }
  if (options.base.dedupe_states) {
    std::size_t shards = std::max<std::size_t>(options.fp_shards, 1);
    co.shard_bits = 0;
    while ((std::size_t{1} << co.shard_bits) < shards && co.shard_bits < 8) {
      ++co.shard_bits;
    }
    const std::size_t n = std::size_t{1} << co.shard_bits;
    for (std::size_t i = 0; i < n; ++i) {
      co.shards.push_back(std::make_unique<check::StateTable>(
          check::StateTable::Options{.audit = options.base.dedupe_audit}));
    }
  }
  {
    auto seed = std::make_unique<DistJob>();  // the whole tree; empty key
    co.records.push_back(std::move(seed));
    co.pending = 1;
  }
  for (std::size_t i = 0; i < worker_fds.size(); ++i) {
    auto conn = std::make_unique<Conn>();
    conn->fd = worker_fds[i];
    conn->worker = i;
    co.conns.push_back(std::move(conn));
  }
  co.alive = co.conns.size();
  log.line("coordinator: %zu worker(s), cap=%llu, dedupe=%d, por=%d",
           co.conns.size(), static_cast<unsigned long long>(co.cap),
           options.base.dedupe_states ? 1 : 0, options.base.por ? 1 : 0);

  {
    std::vector<std::thread> pool;
    pool.reserve(co.conns.size());
    for (const auto& conn : co.conns) {
      pool.emplace_back(
          [&co, &conn, spec] { serve_worker(co, *conn, spec); });
    }
    for (auto& t : pool) {
      t.join();
    }
  }
  for (const auto& conn : co.conns) {
    ::close(conn->fd);
  }

  std::vector<check::detail::MergeJob> order;
  order.reserve(co.records.size());
  for (const auto& r : co.records) {
    check::detail::MergeJob j;
    j.key = &r->key;
    switch (r->state) {
      case DistJob::kDone:
        j.state = check::detail::MergeJob::State::kDone;
        j.result = &r->result;
        break;
      case DistJob::kFailed:
        j.state = check::detail::MergeJob::State::kFailed;
        j.error = &r->error;
        break;
      default:
        j.state = check::detail::MergeJob::State::kUnfinished;
        break;
    }
    order.push_back(j);
  }
  check::ScheduleExploreResult res = check::detail::merge_job_results(
      order, co.cap, options.job_retries + 1, co.unfinished_reason);
  res.jobs = co.records.size();
  res.steals = co.steals;
  if (!co.shards.empty()) {
    // The shard sums are the authoritative distinct-state count; workers
    // report only their local cache's lower bound.  subtrees_pruned stays
    // the per-job sum from the merge: worker-local cache hits never reach
    // the shards, so the job counters see strictly more prunes.
    std::size_t states = 0;
    for (const auto& s : co.shards) {
      states += s->states();
    }
    res.states_seen = states;
  }
  if (!co.unfinished_reason.empty() && !res.error.has_value() &&
      !res.timed_out) {
    // Every record resolved before the poison landed (e.g. an audit
    // collision raced the last result): the numbers merged, but no prune
    // in them is trustworthy.
    res.error = co.unfinished_reason;
    res.exhausted = false;
  }
  log.line("coordinator: merged %zu job(s): executions=%zu exhausted=%d "
           "violation=%d steals=%zu",
           res.jobs, res.executions, res.exhausted ? 1 : 0,
           res.violation.has_value() ? 1 : 0, res.steals);
  return res;
}

check::ScheduleExploreResult dist_explore_schedules(
    const std::function<std::unique_ptr<check::ExplorableWorld>()>& factory,
    const DistExploreOptions& options) {
  check::validate(options.base);
  if (options.workers == 0) {
    throw std::invalid_argument("dist: workers must be >= 1");
  }
  std::uint16_t port = 0;
  const int listen_fd = listen_tcp("127.0.0.1", port);
  const char* log_dir = std::getenv("REVISIM_DIST_LOG");

  // Fork every worker BEFORE any coordinator thread exists: a fork of a
  // multithreaded process may inherit held malloc/sanitizer locks, and
  // TSan forbids it outright.
  std::vector<pid_t> kids;
  for (std::size_t i = 0; i < options.workers; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (const pid_t k : kids) {
        ::kill(k, SIGKILL);
      }
      reap_children(kids);
      ::close(listen_fd);
      throw WireError("fork failed");
    }
    if (pid == 0) {
      ::close(listen_fd);
      try {
        const int fd = connect_tcp("127.0.0.1", port);
        std::string log_path;
        if (log_dir != nullptr) {
          log_path =
              std::string(log_dir) + "/worker-" + std::to_string(i) + ".log";
        }
        serve_connection(fd, factory, log_path);
      } catch (...) {
      }
      // _Exit: never run the parent's atexit handlers or static
      // destructors in a forked child.
      std::_Exit(0);
    }
    kids.push_back(pid);
  }

  std::vector<int> fds;
  for (std::size_t i = 0; i < options.workers; ++i) {
    const int fd = accept_tcp(listen_fd, 10'000);
    if (fd < 0) {
      break;  // a child died before connecting; run with the rest
    }
    fds.push_back(fd);
  }
  ::close(listen_fd);

  check::ScheduleExploreResult res;
  std::exception_ptr failure;
  if (fds.empty()) {
    failure = std::make_exception_ptr(WireError("no worker connected"));
  } else {
    try {
      res = coordinate(std::move(fds), options, nullptr);
    } catch (...) {
      failure = std::current_exception();
    }
  }
  reap_children(kids);
  if (failure) {
    std::rethrow_exception(failure);
  }
  return res;
}

check::ScheduleExploreResult dist_explore_remote(
    const check::CrashWorldSpec& spec,
    const std::vector<std::string>& endpoints,
    const DistExploreOptions& options) {
  if (endpoints.empty()) {
    throw std::invalid_argument("dist: no worker endpoints");
  }
  std::vector<int> fds;
  try {
    for (const std::string& ep : endpoints) {
      const std::size_t colon = ep.rfind(':');
      if (colon == std::string::npos) {
        throw WireError("endpoint '" + ep + "' is not host:port");
      }
      const std::string host = ep.substr(0, colon);
      const int port = std::atoi(ep.c_str() + colon + 1);
      if (port <= 0 || port > 65535) {
        throw WireError("endpoint '" + ep + "' has a bad port");
      }
      fds.push_back(connect_tcp(host, static_cast<std::uint16_t>(port)));
    }
  } catch (...) {
    for (const int fd : fds) {
      ::close(fd);
    }
    throw;
  }
  return coordinate(std::move(fds), options, &spec);
}

}  // namespace revisim::dist
