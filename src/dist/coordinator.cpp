#include "src/dist/coordinator.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <unordered_map>
#include <utility>

#include "src/check/explore_core.h"
#include "src/check/explore_merge.h"
#include "src/check/state_table.h"
#include "src/dist/journal.h"
#include "src/dist/wire.h"
#include "src/dist/worker.h"

namespace revisim::dist {
namespace {

using Clock = std::chrono::steady_clock;
using check::detail::key_less;
using runtime::ProcessId;

class Log {
 public:
  explicit Log(const std::string& path) {
    if (!path.empty()) {
      file_ = std::fopen(path.c_str(), "a");
    }
  }
  ~Log() {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
  }
  void line(const char* fmt, ...) {
    if (file_ == nullptr) {
      return;
    }
    std::lock_guard<std::mutex> g(mu_);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(file_, fmt, ap);
    va_end(ap);
    std::fputc('\n', file_);
    std::fflush(file_);
  }

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

// The distributed twin of parallel_explore.cpp's JobRecord, extended with
// the genealogy the fault-recovery machinery needs: a lost attempt's
// re-run walks the job's FULL original region, so everything the attempt
// donated (children, recursively) must be cancelled or it would be double
// counted.
struct DistJob {
  enum State : int { kPending, kRunning, kDone, kFailed, kAborted };

  std::uint64_t id = 0;
  std::vector<ProcessId> key;      // prefix + first choice; see explore_merge.h
  std::vector<ProcessId> prefix;
  std::vector<ProcessId> choices;  // empty = all (seed job)
  std::vector<ProcessId> sleep;
  std::uint32_t sleep_inherited = 0;  // see DonateMsg
  std::size_t donor = 0;
  bool donated = false;            // false for the seed and resumed jobs
  State state = kPending;          // guarded by the coordinator mutex
  std::size_t failures = 0;        // failed/lost attempts consumed
  bool abort_sent = false;         // a kCredit abort is already in flight
  // Genealogy (guarded by the coordinator mutex).  `children` spans every
  // attempt; `cancelled` excludes the record from the merge because an
  // ancestor's re-run re-covers its region.
  DistJob* parent = nullptr;
  std::vector<DistJob*> children;
  bool cancelled = false;
  // Lower bound on this region's executions, fed by kLive messages; same
  // cap-bound role as JobRecord::live_execs.
  std::atomic<std::uint64_t> live{0};
  check::detail::SubtreeResult result;  // valid once kDone
  std::string error;                    // valid once kFailed
};

// One worker connection.  The reused writer is the per-connection
// serialization buffer; send_mu serializes frame writes (the connection's
// own thread and peers pushing credits/steal requests).  The session
// outlives individual sockets: on a lost connection the serve thread keeps
// the Conn and waits for the worker to re-handshake under its token.
struct Conn {
  Channel ch;
  std::size_t worker = 0;
  std::uint64_t session = 0;  // token the reconnecting worker echoes
  std::mutex send_mu;
  WireWriter out;
  Frame in;
  FaultPlan faults;  // per-connection C->W fault plan storage
  bool alive = true;           // guarded by CoState::mu
  DistJob* current = nullptr;  // guarded by CoState::mu

  // Liveness bookkeeping; touched only by the connection's serve thread.
  Clock::time_point last_heard{};
  Clock::time_point last_ping{};
  std::uint64_t ping_nonce = 0;

  // Reconnect handoff (guarded by CoState::mu): the acceptor thread parks
  // the re-handshaken channel here and the serve thread adopts it.
  bool awaiting_reconnect = false;
  std::unique_ptr<Channel> pending;

  // Cluster mode: the endpoint to re-dial (empty host = fork mode, where
  // the worker re-dials us through the kept-open listener instead).
  std::string host;
  std::uint16_t port = 0;
};

struct CoState {
  const DistExploreOptions* options = nullptr;
  std::uint64_t cap = 0;
  std::optional<Clock::time_point> deadline;
  Log* log = nullptr;
  JournalWriter* journal = nullptr;  // nullptr = journaling off
  int listen_fd = -1;                // reconnect acceptor source; -1 = none

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::unique_ptr<DistJob>> records;  // append-only
  std::uint64_t next_id = 0;  // ids survive resume, so != records index
  std::size_t pending = 0;
  std::size_t running = 0;
  std::size_t alive = 0;   // connections still serving
  std::size_t completions = 0;  // non-cancelled kDone resolutions
  bool stop = false;
  bool acceptor_stop = false;
  bool first_job_shipped = false;
  bool have_violation = false;
  std::vector<ProcessId> violation_key;
  std::size_t steals = 0;
  // Nonempty once the run lost the means to finish outstanding work (every
  // worker disconnected, the fingerprint audit found a collision, or the
  // halt_after_jobs hook fired); becomes the merged partial summary's error.
  std::string unfinished_reason;
  std::vector<std::unique_ptr<Conn>> conns;

  // Sharded fingerprint service (dedupe only).  Shard = top bits of fp.hi;
  // each shard is an ordinary lock-free StateTable, so kFpInsert handlers
  // never serialize against each other across shards.
  std::vector<std::unique_ptr<check::StateTable>> shards;
  std::size_t shard_bits = 0;

  // Sum of live execution counters over records lex-before `key` - a lower
  // bound on the serial execution count before this record's region.
  // Cancelled records hold live == 0 (their region is re-counted by the
  // ancestor that re-runs it).  Caller holds mu.
  std::uint64_t bound_before(const std::vector<ProcessId>& key) const {
    std::uint64_t sum = 0;
    for (const auto& r : records) {
      if (!r->cancelled && key_less(r->key, key)) {
        sum += r->live.load(std::memory_order_relaxed);
      }
    }
    return sum;
  }
};

// Poll granularity: with heartbeats armed the serve loops must wake often
// enough to ping on the interval and notice the timeout promptly.
int tick_ms(const CoState& co, int cap) {
  const std::uint32_t hb = co.options->heartbeat_interval_ms;
  if (hb == 0) {
    return cap;
  }
  return static_cast<int>(std::min<std::uint32_t>(
      std::max<std::uint32_t>(hb / 2, 10), static_cast<std::uint32_t>(cap)));
}

// Sends one frame to `conn`, serialized against concurrent senders.  A send
// failure is NOT fatal here: the connection's own thread will observe the
// dead socket and run the disconnect path.
template <typename Encode>
void send_to(Conn& conn, MsgType type, Encode encode) {
  std::lock_guard<std::mutex> g(conn.send_mu);
  conn.out.clear();
  encode(conn.out);
  try {
    conn.ch.send(type, conn.out);
  } catch (const WireError&) {
  }
}

// Heartbeat driver, called from every serve-loop iteration (idle or
// mid-job): pings on the interval even while inbound frames are flowing
// (the worker's liveness clock only advances on frames it HEARS), and
// throws once the worker has been silent past the timeout.  Touches only
// the serve thread's own liveness fields; safe with or without mu.
void heartbeat(CoState& co, Conn& conn) {
  const std::uint32_t interval = co.options->heartbeat_interval_ms;
  if (interval == 0) {
    return;
  }
  const auto now = Clock::now();
  const auto silent =
      std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                            conn.last_heard);
  if (silent.count() >= co.options->heartbeat_timeout_ms) {
    throw WireError("heartbeat timeout: worker " +
                    std::to_string(conn.worker) + " silent for " +
                    std::to_string(silent.count()) + "ms");
  }
  if (now - conn.last_ping >= std::chrono::milliseconds(interval)) {
    conn.last_ping = now;
    const std::uint64_t nonce = ++conn.ping_nonce;
    send_to(conn, MsgType::kPing, [nonce](WireWriter& w) {
      PingMsg m;
      m.nonce = nonce;
      encode_ping(w, m);
    });
  }
}

// Pushes kCredit aborts to every running job the merge provably cannot
// read: lex-earlier regions already secured the cap, a lex-earlier
// violation is final, or the job was cancelled outright (an ancestor
// re-runs its region).  Caller holds mu (lock order: mu before send_mu).
void push_aborts(CoState& co) {
  for (const auto& c : co.conns) {
    if (!c->alive || c->current == nullptr || c->current->abort_sent) {
      continue;
    }
    DistJob* rec = c->current;
    const bool dead_key =
        co.have_violation && key_less(co.violation_key, rec->key);
    if (co.stop || dead_key || rec->cancelled ||
        co.bound_before(rec->key) >= co.cap) {
      rec->abort_sent = true;
      const std::uint64_t id = rec->id;
      send_to(*c, MsgType::kCredit, [id](WireWriter& w) {
        CreditMsg m;
        m.id = id;
        m.abort = true;
        encode_credit(w, m);
      });
    }
  }
}

// Cancels every descendant of `rec`, recursively: the re-run of `rec`
// walks its full original region, descendants included, so keeping their
// records would double count.  Pending descendants leave the queue,
// running ones are left to their abort credit (caller runs push_aborts),
// finished ones are excluded from the merge, and the journal gets a
// tombstone so a later resume ignores them too.  Caller holds mu.
void cancel_subtree(CoState& co, DistJob* rec) {
  for (DistJob* child : rec->children) {
    if (!child->cancelled) {
      child->cancelled = true;
      child->live.store(0, std::memory_order_relaxed);
      if (child->state == DistJob::kPending) {
        child->state = DistJob::kAborted;
        --co.pending;
      }
      if (co.journal != nullptr) {
        co.journal->job_discarded(child->id);
      }
      co.log->line("coordinator: job %llu cancelled (ancestor %llu re-runs)",
                   static_cast<unsigned long long>(child->id),
                   static_cast<unsigned long long>(rec->id));
    }
    cancel_subtree(co, child);
  }
}

// Re-queues a lost or throwing job - cancelling everything the lost
// attempt donated - or fails it once retries are exhausted.  With
// dedupe_states on, a lost attempt fails immediately: its claim-then-walk
// claims survive in the shard table, so a re-run could prune regions the
// lost walk never finished (checkpoint-resume restores soundness by
// starting a fresh table).  Caller holds mu.
void requeue_or_fail(CoState& co, DistJob* rec, const std::string& why) {
  ++rec->failures;
  if (rec->failures > co.options->job_retries) {
    rec->state = DistJob::kFailed;
    rec->error = why;
    co.log->line("coordinator: job %llu failed (%s)",
                 static_cast<unsigned long long>(rec->id), why.c_str());
  } else if (co.options->base.dedupe_states) {
    rec->state = DistJob::kFailed;
    rec->error =
        why +
        " (dedupe_states keeps the lost attempt's state claims, so a re-run "
        "could under-explore; resume from the run journal instead)";
    co.log->line("coordinator: job %llu failed, dedupe forbids requeue (%s)",
                 static_cast<unsigned long long>(rec->id), why.c_str());
  } else {
    cancel_subtree(co, rec);
    rec->state = DistJob::kPending;
    rec->live.store(0, std::memory_order_relaxed);
    rec->abort_sent = false;
    ++co.pending;
    co.log->line("coordinator: job %llu re-queued (%s)",
                 static_cast<unsigned long long>(rec->id), why.c_str());
  }
}

// Journals a completed walk the merge may reuse verbatim (fully explored
// or violating; partial cap/stop walks re-run on resume) and advances the
// halt_after_jobs hook.  Caller holds mu.
void note_completion(CoState& co, DistJob* rec) {
  if (co.journal != nullptr &&
      (rec->result.fully_explored || rec->result.violation.has_value())) {
    co.journal->job_done(rec->id, rec->result);
  }
  ++co.completions;
  if (co.options->halt_after_jobs != 0 && !co.stop &&
      co.completions >= co.options->halt_after_jobs) {
    co.stop = true;
    if (co.unfinished_reason.empty()) {
      co.unfinished_reason = "halted by test instrumentation after " +
                             std::to_string(co.completions) +
                             " completed job(s)";
    }
    co.log->line("coordinator: halt_after_jobs hook fired at %zu",
                 co.completions);
    push_aborts(co);
  }
}

bool past_deadline(const CoState& co) {
  return co.deadline && Clock::now() >= *co.deadline;
}

HelloMsg make_hello(const CoState& co, std::uint32_t worker,
                    std::uint64_t session,
                    const check::CrashWorldSpec* spec) {
  const check::ScheduleExploreOptions& base = co.options->base;
  HelloMsg hello;
  hello.worker = worker;
  hello.session = session;
  hello.heartbeat_interval_ms = co.options->heartbeat_interval_ms;
  hello.heartbeat_timeout_ms = co.options->heartbeat_timeout_ms;
  hello.max_steps = base.max_steps;
  hello.warm_worlds = base.warm_worlds;
  hello.max_crashes = base.max_crashes;
  hello.record_traces = base.record_traces;
  hello.dedupe_states = base.dedupe_states;
  hello.dedupe_audit = base.dedupe_audit;
  hello.dedupe_adaptive = base.dedupe_adaptive;
  hello.por = base.por;
  hello.live_interval = std::max<std::uint64_t>(co.options->live_interval, 1);
  if (spec != nullptr) {
    hello.world = spec->world;
    hello.f = spec->f;
    hello.m = spec->m;
    hello.step_budget = spec->step_budget;
  }
  return hello;
}

// Hello/ack handshake on conn's current channel.  Returns false on
// rejection or I/O failure.
bool handshake(CoState& co, Conn& conn, const check::CrashWorldSpec* spec) {
  const HelloMsg hello = make_hello(
      co, static_cast<std::uint32_t>(conn.worker), conn.session, spec);
  try {
    {
      std::lock_guard<std::mutex> g(conn.send_mu);
      conn.out.clear();
      encode_hello(conn.out, hello);
      conn.ch.send(MsgType::kHello, conn.out);
    }
    if (!conn.ch.wait(10'000) || !conn.ch.recv(conn.in) ||
        conn.in.type != MsgType::kHelloAck) {
      throw WireError("no hello-ack");
    }
    WireReader r = conn.in.reader();
    const HelloAckMsg ack = decode_hello_ack(r);
    if (!ack.ok) {
      throw WireError("worker rejected hello: " + ack.error);
    }
  } catch (const std::exception& e) {
    co.log->line("coordinator: worker %zu handshake failed: %s", conn.worker,
                 e.what());
    return false;
  }
  return true;
}

void handle_fp_insert(CoState& co, Conn& conn) {
  WireReader r = conn.in.reader();
  FpInsertMsg msg = decode_fp_insert(r);
  const std::size_t shard =
      co.shard_bits == 0
          ? 0
          : static_cast<std::size_t>(msg.fp.hi >> (64 - co.shard_bits));
  FpReplyMsg reply;
  try {
    std::function<std::string()> canonical;
    if (msg.has_canonical) {
      canonical = [&msg] { return msg.canonical; };
    }
    reply.was_new = co.shards[shard]->insert(msg.fp, canonical);
  } catch (const check::StateFingerprintCollision& e) {
    // The audit found two canonical states behind one fingerprint: every
    // prune taken anywhere in this run is suspect.  Poison the run; the
    // worker gets its reply and then an abort credit.
    reply.was_new = true;
    std::lock_guard<std::mutex> g(co.mu);
    if (co.unfinished_reason.empty()) {
      co.unfinished_reason = e.what();
    }
    co.stop = true;
    push_aborts(co);
    co.cv.notify_all();
  }
  send_to(conn, MsgType::kFpReply,
          [&reply](WireWriter& w) { encode_fp_reply(w, reply); });
}

// Drains frames queued on an idle connection (only heartbeat traffic is
// legal between jobs) and runs the heartbeat.  Caller holds mu; throws on
// connection death.
void idle_tick(CoState& co, Conn& conn) {
  for (;;) {
    const int got = conn.ch.try_recv(conn.in);
    if (got == 0) {
      break;
    }
    if (got < 0) {
      throw WireError("connection closed");
    }
    conn.last_heard = Clock::now();
    if (conn.in.type == MsgType::kPing) {
      WireReader r = conn.in.reader();
      const PingMsg ping = decode_ping(r);
      send_to(conn, MsgType::kPong, [&ping](WireWriter& w) {
        PongMsg m;
        m.nonce = ping.nonce;
        encode_pong(w, m);
      });
    } else if (conn.in.type != MsgType::kPong) {
      throw WireError("unexpected frame type " +
                      std::to_string(static_cast<int>(conn.in.type)) +
                      " between jobs");
    }
  }
  heartbeat(co, conn);
}

// Claim/ship/pump loop for one connected session: the exact structure of
// parallel_explore.cpp's run_one_worker with the in-process hooks replaced
// by their wire twins.  Returns on a clean run end; throws WireError when
// the connection dies (socket error, protocol violation, heartbeat
// timeout) - the caller owns requeue + reconnect.
void serve_session(CoState& co, Conn& conn) {
  std::unique_lock<std::mutex> lk(co.mu);
  for (;;) {
    DistJob* rec = nullptr;
    while (!co.stop) {
      if (past_deadline(co)) {
        co.stop = true;
        push_aborts(co);
        co.cv.notify_all();
        break;
      }
      for (const auto& r : co.records) {
        if (r->state == DistJob::kPending &&
            (rec == nullptr || key_less(r->key, rec->key))) {
          rec = r.get();
        }
      }
      if (rec != nullptr || (co.pending == 0 && co.running == 0)) {
        break;
      }
      // Hungry: the in-process hungry hint, spoken over the wire.  Poke
      // every busy worker; re-poke on every wakeup timeout in case the
      // request raced a donation that someone else claimed.
      if (co.options->steal_requests) {
        for (const auto& c : co.conns) {
          if (c.get() != &conn && c->alive && c->current != nullptr) {
            send_to(*c, MsgType::kStealReq,
                    [](WireWriter&) { /* empty payload */ });
          }
        }
      }
      idle_tick(co, conn);
      co.cv.wait_for(lk, std::chrono::milliseconds(tick_ms(co, 100)));
    }
    if (rec == nullptr || co.stop) {
      co.cv.notify_all();  // cascade termination to the other waiters
      return;
    }
    rec->state = DistJob::kRunning;
    --co.pending;
    ++co.running;
    conn.current = rec;
    rec->abort_sent = false;
    rec->live.store(0, std::memory_order_relaxed);
    if (rec->donated && rec->donor != conn.worker) {
      ++co.steals;
    }

    // Pre-skip jobs whose result the merge provably cannot read (same
    // bound as the in-process claim path).
    const std::uint64_t before = co.bound_before(rec->key);
    const bool dead_key =
        co.have_violation && key_less(co.violation_key, rec->key);
    if (before >= co.cap || dead_key) {
      rec->state = DistJob::kAborted;
      --co.running;
      conn.current = nullptr;
      if (co.pending == 0 && co.running == 0) {
        co.cv.notify_all();
      }
      continue;
    }

    JobMsg job;
    job.id = rec->id;
    job.budget = co.cap - before;
    job.prefix = rec->prefix;
    job.choices = rec->choices;
    job.sleep = rec->sleep;
    job.sleep_inherited = rec->sleep_inherited;
    if (co.options->fault_first_job_after != 0 && !co.first_job_shipped) {
      job.fault_after = co.options->fault_first_job_after;
    }
    co.first_job_shipped = true;
    co.log->line(
        "coordinator: job %llu -> worker %zu (prefix=%zu choices=%zu "
        "budget=%llu)",
        static_cast<unsigned long long>(job.id), conn.worker,
        job.prefix.size(), job.choices.size(),
        static_cast<unsigned long long>(job.budget));

    lk.unlock();
    {
      std::lock_guard<std::mutex> g(conn.send_mu);
      conn.out.clear();
      encode_job(conn.out, job);
      conn.ch.send(MsgType::kJob, conn.out);
    }
    const int tick = tick_ms(co, 200);
    int stop_stall_ms = 0;
    for (bool resolved = false; !resolved;) {
      // Ping even while frames flow: the worker's liveness clock advances
      // only on frames it hears, and a busy coordinator otherwise sends
      // nothing for the whole job.
      heartbeat(co, conn);
      if (!conn.ch.wait(tick)) {
        std::lock_guard<std::mutex> g(co.mu);
        if (past_deadline(co) && !co.stop) {
          co.stop = true;
          co.cv.notify_all();
        }
        if (co.stop) {
          push_aborts(co);
          // A stopped worker answers the abort credit within one
          // execution; a worker that stays silent for 10s of stop is
          // wedged or gone - cut it loose so the run can summarize.
          stop_stall_ms += tick;
          if (stop_stall_ms >= 10'000) {
            throw WireError("worker unresponsive after stop");
          }
        }
        continue;
      }
      if (!conn.ch.recv(conn.in)) {
        throw WireError("connection closed");
      }
      conn.last_heard = Clock::now();
      switch (conn.in.type) {
        case MsgType::kPing: {
          WireReader r = conn.in.reader();
          const PingMsg ping = decode_ping(r);
          send_to(conn, MsgType::kPong, [&ping](WireWriter& w) {
            PongMsg m;
            m.nonce = ping.nonce;
            encode_pong(w, m);
          });
          break;
        }
        case MsgType::kPong:
          break;  // liveness bookkeeping happened above
        case MsgType::kLive: {
          WireReader r = conn.in.reader();
          const LiveMsg live = decode_live(r);
          if (live.id == rec->id) {
            std::lock_guard<std::mutex> g(co.mu);
            // A cancelled job's credits must stay zero: bound_before
            // feeding a cancelled region's executions into budgets would
            // double count against the ancestor's re-run.
            if (!rec->cancelled) {
              rec->live.store(live.executions, std::memory_order_relaxed);
              push_aborts(co);
            }
          }
          break;
        }
        case MsgType::kDonate: {
          WireReader r = conn.in.reader();
          DonateMsg d = decode_donate(r);
          if (d.choices.empty()) {
            throw WireError("donation with no choices");
          }
          std::lock_guard<std::mutex> g(co.mu);
          if (rec->cancelled) {
            // The donated region is inside rec's region, which an
            // ancestor's re-run already re-covers.
            co.log->line(
                "coordinator: donation from cancelled job %llu dropped",
                static_cast<unsigned long long>(rec->id));
            break;
          }
          auto child = std::make_unique<DistJob>();
          child->id = co.next_id++;
          child->key = d.prefix;
          child->key.push_back(d.choices[0]);
          child->prefix = std::move(d.prefix);
          child->choices = std::move(d.choices);
          child->sleep = std::move(d.sleep);
          child->sleep_inherited = d.sleep_inherited;
          child->donor = conn.worker;
          child->donated = true;
          child->parent = rec;
          rec->children.push_back(child.get());
          if (co.journal != nullptr) {
            co.journal->job_created(child->id, true, rec->id, child->prefix,
                                    child->choices, child->sleep,
                                    child->sleep_inherited);
          }
          co.records.push_back(std::move(child));
          ++co.pending;
          co.cv.notify_one();
          break;
        }
        case MsgType::kFpInsert:
          handle_fp_insert(co, conn);
          break;
        case MsgType::kJobResult: {
          WireReader r = conn.in.reader();
          JobResultMsg msg = decode_job_result(r);
          std::lock_guard<std::mutex> g(co.mu);
          if (!rec->cancelled) {
            rec->live.store(msg.result.executions, std::memory_order_relaxed);
            if (msg.result.violation &&
                (!co.have_violation ||
                 key_less(rec->key, co.violation_key))) {
              co.have_violation = true;
              co.violation_key = rec->key;
            }
            rec->result = std::move(msg.result);
            // Partial walks (abort credits, stop) are stored as kDone too,
            // exactly like the in-process explorer: the merge either never
            // reads them or reports the truncation they represent.
            rec->state = DistJob::kDone;
            note_completion(co, rec);
          } else {
            // The walk raced its cancellation; the result is already
            // re-covered by an ancestor's re-run.
            rec->state = DistJob::kDone;
          }
          --co.running;
          conn.current = nullptr;
          push_aborts(co);
          co.cv.notify_all();
          resolved = true;
          break;
        }
        case MsgType::kJobError: {
          WireReader r = conn.in.reader();
          const JobErrorMsg msg = decode_job_error(r);
          std::lock_guard<std::mutex> g(co.mu);
          if (!rec->cancelled) {
            requeue_or_fail(co, rec, msg.message);
            push_aborts(co);
          } else {
            rec->state = DistJob::kDone;  // cancelled: merged as skipped
          }
          --co.running;
          conn.current = nullptr;
          co.cv.notify_all();
          resolved = true;
          break;
        }
        default:
          throw WireError("unexpected frame type " +
                          std::to_string(static_cast<int>(conn.in.type)));
      }
    }
    lk.lock();
  }
}

// Waits for the lost worker's session to come back within the reconnect
// window: fork mode parks on the cv until the acceptor thread delivers a
// re-handshaken channel; cluster mode re-dials the recorded endpoint.
// Caller holds mu (the lock is dropped around the cluster dial); true
// means conn.ch carries a fresh handshaken connection.
bool reattach(CoState& co, Conn& conn, std::unique_lock<std::mutex>& lk,
              const check::CrashWorldSpec* spec) {
  const auto window =
      std::chrono::milliseconds(co.options->reconnect_window_ms);
  if (!conn.host.empty()) {
    lk.unlock();
    bool ok = false;
    try {
      const int fd = connect_tcp(conn.host, conn.port, window, conn.worker);
      conn.ch.adopt(fd);
      conn.ch.set_faults(conn.faults.any() ? &conn.faults : nullptr);
      ok = handshake(co, conn, spec);
      if (!ok) {
        conn.ch.close();
      }
    } catch (const std::exception& e) {
      co.log->line("coordinator: worker %zu re-dial failed: %s", conn.worker,
                   e.what());
    }
    lk.lock();
    return ok && !co.stop;
  }
  if (co.listen_fd < 0) {
    return false;
  }
  conn.awaiting_reconnect = true;
  const auto deadline = Clock::now() + window;
  while (!co.stop && !(co.pending == 0 && co.running == 0) &&
         conn.pending == nullptr && Clock::now() < deadline) {
    co.cv.wait_until(lk, deadline);
  }
  conn.awaiting_reconnect = false;
  if (conn.pending == nullptr || co.stop) {
    conn.pending.reset();
    return false;
  }
  conn.ch = std::move(*conn.pending);
  conn.pending.reset();
  conn.ch.set_faults(conn.faults.any() ? &conn.faults : nullptr);
  return true;
}

// One thread per worker session: serve the connection, and on a lost one
// requeue the in-flight job (cancelling what its attempt donated), then
// wait for the worker to reconnect before giving the session up for dead.
void serve_worker(CoState& co, Conn& conn, const check::CrashWorldSpec* spec) {
  const bool connected = handshake(co, conn, spec);
  std::unique_lock<std::mutex> lk(co.mu);
  if (!connected) {
    conn.alive = false;
    if (--co.alive == 0 && (co.pending > 0 || co.running > 0)) {
      co.stop = true;
      if (co.unfinished_reason.empty()) {
        co.unfinished_reason =
            "every worker disconnected before the run finished";
      }
    }
    co.cv.notify_all();
    return;
  }
  conn.last_heard = conn.last_ping = Clock::now();

  for (;;) {
    std::string death;
    bool finished = false;
    lk.unlock();
    try {
      serve_session(co, conn);
      finished = true;
    } catch (const std::exception& e) {
      death = "worker " + std::to_string(conn.worker) +
              " disconnected: " + e.what();
    }
    lk.lock();
    if (finished) {
      // Normal exit: hand the worker its shutdown and retire the session.
      send_to(conn, MsgType::kShutdown, [](WireWriter&) {});
      conn.alive = false;
      --co.alive;
      co.cv.notify_all();
      return;
    }

    co.log->line("coordinator: %s", death.c_str());
    conn.alive = false;  // peers stop routing credits/steal pokes here
    if (conn.current != nullptr) {
      requeue_or_fail(co, conn.current, death);
      --co.running;
      conn.current = nullptr;
      push_aborts(co);
    }
    co.cv.notify_all();
    // Close the dead socket NOW (not at run end): a partitioned-but-alive
    // worker sees the EOF and knows to re-dial.  Safe against concurrent
    // send_to: every cross-thread send happens under mu, which we hold.
    conn.ch.close();

    if (!co.stop && co.options->reconnect_window_ms > 0 &&
        reattach(co, conn, lk, spec)) {
      conn.alive = true;
      conn.last_heard = conn.last_ping = Clock::now();
      co.log->line("coordinator: worker %zu session resumed", conn.worker);
      continue;
    }

    if (--co.alive == 0 && (co.pending > 0 || co.running > 0)) {
      co.stop = true;
      if (co.unfinished_reason.empty()) {
        co.unfinished_reason =
            "every worker disconnected with work outstanding (last: " +
            death + ")";
      }
    }
    co.cv.notify_all();
    return;
  }
}

// Accepts re-dialing fork-mode workers on the kept-open listener, runs the
// provisional handshake (the worker's HelloAck echoes its prior session
// token with resume=true) and parks the channel on the matching session's
// Conn for its serve thread to adopt.
void acceptor_loop(CoState& co, const check::CrashWorldSpec* spec) {
  for (;;) {
    {
      std::lock_guard<std::mutex> g(co.mu);
      if (co.acceptor_stop) {
        return;
      }
    }
    int fd = -1;
    try {
      fd = accept_tcp(co.listen_fd, 200);
    } catch (const std::exception&) {
      return;  // listener gone
    }
    if (fd < 0) {
      continue;
    }
    {
      // Re-check under the lock before handshaking: a dial that raced the
      // shutdown wake-up must not hold the join for a handshake timeout.
      std::lock_guard<std::mutex> g(co.mu);
      if (co.acceptor_stop) {
        ::close(fd);
        return;
      }
    }
    auto ch = std::make_unique<Channel>(fd);
    HelloAckMsg ack;
    try {
      // The handshake runs fault-free on a provisional identity; the
      // session's fault plan reattaches with the channel.
      WireWriter w;
      encode_hello(w, make_hello(co, /*worker=*/0xffffffffu, /*session=*/0,
                                 spec));
      ch->send(MsgType::kHello, w);
      Frame f;
      if (!ch->wait(5'000) || !ch->recv(f) ||
          f.type != MsgType::kHelloAck) {
        continue;
      }
      WireReader r = f.reader();
      ack = decode_hello_ack(r);
    } catch (const std::exception&) {
      continue;
    }
    if (!ack.ok || !ack.resume) {
      continue;  // not a reconnect; drop it
    }
    std::lock_guard<std::mutex> g(co.mu);
    for (const auto& c : co.conns) {
      if (c->session == ack.session && c->awaiting_reconnect &&
          c->pending == nullptr) {
        co.log->line("coordinator: worker %zu re-dialed", c->worker);
        c->pending = std::move(ch);
        co.cv.notify_all();
        break;
      }
    }
    // Unmatched (window expired, bogus token): ch closes on scope exit.
  }
}

JournalConfig journal_config_from(const DistExploreOptions& options) {
  JournalConfig jc;
  jc.tag = options.journal_tag;
  jc.max_steps = options.base.max_steps;
  jc.max_executions = options.base.max_executions;
  jc.max_crashes = options.base.max_crashes;
  jc.por = options.base.por;
  jc.dedupe = options.base.dedupe_states;
  jc.record_traces = options.base.record_traces;
  return jc;
}

// Loads a prior run's journal into the record table: completed regions
// with completed ancestors are reused verbatim, incomplete ones re-queue
// from their recorded specs, and descendants of incomplete jobs are
// tombstoned (their regions re-run with the ancestor).  Reopens the
// journal for appending.  Single-threaded (runs before any serve thread).
void load_journal(CoState& co, const DistExploreOptions& options,
                  JournalWriter& journal) {
  const JournalContents contents = read_journal(options.journal_path);
  const JournalConfig expected = journal_config_from(options);
  if (!(contents.config == expected)) {
    throw WireError(
        "journal: " + options.journal_path +
        " was recorded under a different configuration (tag '" +
        contents.config.tag + "'); resume with the original world and options");
  }
  std::vector<const JournalJob*> alive;
  std::vector<check::detail::ResumeJob> genealogy;
  for (const JournalJob& j : contents.jobs) {
    co.next_id = std::max(co.next_id, j.id + 1);
    if (j.discarded) {
      continue;
    }
    alive.push_back(&j);
    genealogy.push_back({j.id, j.has_parent, j.parent, j.done});
  }
  const std::vector<check::detail::ResumeAction> plan =
      check::detail::plan_resume(genealogy);

  journal.append_to(options.journal_path);
  std::size_t reused = 0;
  std::size_t rerun = 0;
  std::size_t discarded = 0;
  std::unordered_map<std::uint64_t, DistJob*> by_id;
  for (std::size_t i = 0; i < alive.size(); ++i) {
    const JournalJob& j = *alive[i];
    if (plan[i] == check::detail::ResumeAction::kDiscard) {
      journal.job_discarded(j.id);  // tombstone for the NEXT resume
      ++discarded;
      continue;
    }
    auto rec = std::make_unique<DistJob>();
    rec->id = j.id;
    rec->prefix = j.prefix;
    rec->choices = j.choices;
    rec->sleep = j.sleep;
    rec->sleep_inherited = j.sleep_inherited;
    rec->key = j.prefix;
    if (!j.choices.empty()) {
      rec->key.push_back(j.choices[0]);
    }
    if (plan[i] == check::detail::ResumeAction::kReuse) {
      rec->state = DistJob::kDone;
      rec->result = j.result;
      rec->live.store(j.result.executions, std::memory_order_relaxed);
      if (rec->result.violation &&
          (!co.have_violation || key_less(rec->key, co.violation_key))) {
        co.have_violation = true;
        co.violation_key = rec->key;
      }
      ++reused;
    } else {
      rec->state = DistJob::kPending;
      ++co.pending;
      ++rerun;
    }
    by_id[rec->id] = rec.get();
    co.records.push_back(std::move(rec));
  }
  // Rebuild the genealogy among survivors so a rerun job that fails AGAIN
  // cancels its (new) descendants correctly.
  for (const auto& r : co.records) {
    // Loaded records never link to discarded parents: a discarded parent
    // implies a discarded child.
    for (const JournalJob* j : alive) {
      if (j->id == r->id && j->has_parent) {
        const auto it = by_id.find(j->parent);
        if (it != by_id.end()) {
          r->parent = it->second;
          it->second->children.push_back(r.get());
        }
        break;
      }
    }
  }
  co.log->line(
      "coordinator: resumed %s: %zu reused, %zu re-run, %zu discarded, "
      "%zu torn byte(s) dropped",
      options.journal_path.c_str(), reused, rerun, discarded,
      contents.dropped_tail_bytes);
}

void reap_children(const std::vector<pid_t>& kids) {
  for (const pid_t pid : kids) {
    int status = 0;
    // Workers exit on shutdown or coordinator EOF; give each a grace
    // window before escalating.
    for (int spins = 0; spins < 500; ++spins) {
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid || (r < 0 && errno != EINTR)) {
        break;  // reaped, or not our child anymore
      }
      if (spins == 499) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        break;
      }
      ::usleep(10 * 1000);
    }
  }
}

std::string log_path_for(const char* name) {
  const char* dir = std::getenv("REVISIM_DIST_LOG");
  if (dir == nullptr) {
    return {};
  }
  return std::string(dir) + "/" + name + ".log";
}

}  // namespace

check::ScheduleExploreResult coordinate(
    std::vector<int> worker_fds, const DistExploreOptions& options,
    const check::CrashWorldSpec* spec, int reconnect_listen_fd,
    const std::vector<std::pair<std::string, std::uint16_t>>* endpoints) {
  check::validate(options.base);
  if (worker_fds.empty()) {
    throw std::invalid_argument("dist: coordinate needs at least one worker");
  }
  if (options.resume && options.journal_path.empty()) {
    throw std::invalid_argument("dist: resume needs a journal path");
  }

  Log log(log_path_for("coordinator"));
  CoState co;
  co.options = &options;
  co.log = &log;
  co.listen_fd = options.reconnect_window_ms > 0 ? reconnect_listen_fd : -1;
  co.cap = std::max<std::uint64_t>(options.base.max_executions, 1);
  if (options.time_limit.count() > 0) {
    co.deadline = Clock::now() + options.time_limit;
  }
  if (options.base.dedupe_states) {
    std::size_t shards = std::max<std::size_t>(options.fp_shards, 1);
    co.shard_bits = 0;
    while ((std::size_t{1} << co.shard_bits) < shards && co.shard_bits < 8) {
      ++co.shard_bits;
    }
    const std::size_t n = std::size_t{1} << co.shard_bits;
    for (std::size_t i = 0; i < n; ++i) {
      co.shards.push_back(std::make_unique<check::StateTable>(
          check::StateTable::Options{.audit = options.base.dedupe_audit}));
    }
  }

  // Adopt the sockets into Conn channels FIRST: any throw below (a resume
  // config mismatch, an unreadable journal) then closes them via the
  // Channel destructors, and the workers see EOF instead of hanging on a
  // hello that will never come.
  //
  // Session tokens: unique within this coordinator's lifetime (and across
  // quick restarts) so a stale worker cannot hijack another session.
  const std::uint64_t token_base =
      (static_cast<std::uint64_t>(::getpid()) << 40) ^
      static_cast<std::uint64_t>(
          Clock::now().time_since_epoch().count());
  for (std::size_t i = 0; i < worker_fds.size(); ++i) {
    auto conn = std::make_unique<Conn>();
    conn->ch.adopt(worker_fds[i]);
    conn->worker = i;
    conn->session = token_base + i + 1;
    if (endpoints != nullptr && i < endpoints->size()) {
      conn->host = (*endpoints)[i].first;
      conn->port = (*endpoints)[i].second;
    }
    if (options.coordinator_faults.any()) {
      conn->faults = derive_fault_plan(options.coordinator_faults, i);
      conn->ch.set_faults(&conn->faults);
    }
    co.conns.push_back(std::move(conn));
  }
  co.alive = co.conns.size();

  JournalWriter journal;
  if (!options.journal_path.empty()) {
    if (options.resume) {
      load_journal(co, options, journal);  // throws WireError on mismatch
    } else {
      journal.create(options.journal_path, journal_config_from(options));
    }
    co.journal = &journal;
  }
  if (co.records.empty()) {
    // Fresh run (or a journal that died before its seed record): one seed
    // job covering the whole tree, empty key.
    auto seed = std::make_unique<DistJob>();
    seed->id = co.next_id++;
    if (co.journal != nullptr) {
      journal.job_created(seed->id, false, 0, seed->prefix, seed->choices,
                          seed->sleep, seed->sleep_inherited);
    }
    co.records.push_back(std::move(seed));
    co.pending = 1;
  }
  log.line(
      "coordinator: %zu worker(s), cap=%llu, dedupe=%d, por=%d, "
      "heartbeat=%ums/%ums, reconnect=%ums, journal=%s, faults=%s",
      co.conns.size(), static_cast<unsigned long long>(co.cap),
      options.base.dedupe_states ? 1 : 0, options.base.por ? 1 : 0,
      options.heartbeat_interval_ms, options.heartbeat_timeout_ms,
      options.reconnect_window_ms,
      options.journal_path.empty() ? "off" : options.journal_path.c_str(),
      fault_plan_text(options.coordinator_faults).c_str());

  {
    std::thread acceptor;
    if (co.listen_fd >= 0) {
      acceptor = std::thread([&co, spec] { acceptor_loop(co, spec); });
    }
    std::vector<std::thread> pool;
    pool.reserve(co.conns.size());
    for (const auto& conn : co.conns) {
      pool.emplace_back([&co, &conn, spec] { serve_worker(co, *conn, spec); });
    }
    for (auto& t : pool) {
      t.join();
    }
    {
      std::lock_guard<std::mutex> g(co.mu);
      co.acceptor_stop = true;
    }
    if (acceptor.joinable()) {
      // Wake the acceptor's poll now rather than letting its accept tick
      // run out: shutting the listener down makes it report readable, the
      // pending accept fails, and the loop exits via its listener-gone
      // path.  The caller owns the fd and closes it after we return.
      ::shutdown(co.listen_fd, SHUT_RDWR);
      acceptor.join();
    }
  }
  for (const auto& conn : co.conns) {
    conn->ch.close();
  }
  journal.close();

  std::vector<check::detail::MergeJob> order;
  order.reserve(co.records.size());
  std::size_t merged_jobs = 0;
  for (const auto& r : co.records) {
    if (r->cancelled) {
      continue;  // region re-covered by an ancestor's re-run
    }
    ++merged_jobs;
    check::detail::MergeJob j;
    j.key = &r->key;
    switch (r->state) {
      case DistJob::kDone:
        j.state = check::detail::MergeJob::State::kDone;
        j.result = &r->result;
        break;
      case DistJob::kFailed:
        j.state = check::detail::MergeJob::State::kFailed;
        j.error = &r->error;
        break;
      default:
        j.state = check::detail::MergeJob::State::kUnfinished;
        break;
    }
    order.push_back(j);
  }
  check::ScheduleExploreResult res = check::detail::merge_job_results(
      order, co.cap, options.job_retries + 1, co.unfinished_reason);
  res.jobs = merged_jobs;
  res.steals = co.steals;
  if (!co.shards.empty()) {
    // The shard sums are the authoritative distinct-state count; workers
    // report only their local cache's lower bound.  subtrees_pruned stays
    // the per-job sum from the merge: worker-local cache hits never reach
    // the shards, so the job counters see strictly more prunes.
    std::size_t states = 0;
    for (const auto& s : co.shards) {
      states += s->states();
    }
    res.states_seen = states;
  }
  if (!co.unfinished_reason.empty() && !res.error.has_value() &&
      !res.timed_out) {
    // Every record resolved before the poison landed (e.g. an audit
    // collision raced the last result): the numbers merged, but no prune
    // in them is trustworthy.
    res.error = co.unfinished_reason;
    res.exhausted = false;
  }
  log.line("coordinator: merged %zu job(s): executions=%zu exhausted=%d "
           "violation=%d steals=%zu",
           res.jobs, res.executions, res.exhausted ? 1 : 0,
           res.violation.has_value() ? 1 : 0, res.steals);
  return res;
}

check::ScheduleExploreResult dist_explore_schedules(
    const std::function<std::unique_ptr<check::ExplorableWorld>()>& factory,
    const DistExploreOptions& options) {
  check::validate(options.base);
  if (options.workers == 0) {
    throw std::invalid_argument("dist: workers must be >= 1");
  }
  std::uint16_t port = 0;
  const int listen_fd = listen_tcp("127.0.0.1", port);
  const char* log_dir = std::getenv("REVISIM_DIST_LOG");

  // Fork every worker BEFORE any coordinator thread exists: a fork of a
  // multithreaded process may inherit held malloc/sanitizer locks, and
  // TSan forbids it outright.
  std::vector<pid_t> kids;
  for (std::size_t i = 0; i < options.workers; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (const pid_t k : kids) {
        ::kill(k, SIGKILL);
      }
      reap_children(kids);
      ::close(listen_fd);
      throw WireError("fork failed");
    }
    if (pid == 0) {
      ::close(listen_fd);
      int code = 1;
      try {
        WorkerOptions wopt;
        wopt.host = "127.0.0.1";
        wopt.port = port;
        wopt.reconnect_window_ms = options.reconnect_window_ms;
        wopt.seed = i;
        if (log_dir != nullptr) {
          wopt.log_path =
              std::string(log_dir) + "/worker-" + std::to_string(i) + ".log";
        }
        if (options.worker_faults.any()) {
          wopt.faults = derive_fault_plan(options.worker_faults, i);
        }
        code = run_worker(factory, wopt);
      } catch (...) {
      }
      // _Exit: never run the parent's atexit handlers or static
      // destructors in a forked child.
      std::_Exit(code);
    }
    kids.push_back(pid);
  }

  std::vector<int> fds;
  for (std::size_t i = 0; i < options.workers; ++i) {
    const int fd = accept_tcp(listen_fd, 10'000);
    if (fd < 0) {
      break;  // a child died before connecting; run with the rest
    }
    fds.push_back(fd);
  }

  // The listener stays open for the run: disconnected workers re-dial it
  // and the coordinator's acceptor thread re-handshakes them.
  check::ScheduleExploreResult res;
  std::exception_ptr failure;
  if (fds.empty()) {
    failure = std::make_exception_ptr(WireError("no worker connected"));
  } else {
    try {
      res = coordinate(std::move(fds), options, nullptr, listen_fd);
    } catch (...) {
      failure = std::current_exception();
    }
  }
  ::close(listen_fd);
  reap_children(kids);
  if (failure) {
    std::rethrow_exception(failure);
  }
  return res;
}

check::ScheduleExploreResult dist_explore_remote(
    const check::CrashWorldSpec& spec,
    const std::vector<std::string>& endpoints,
    const DistExploreOptions& options) {
  if (endpoints.empty()) {
    throw std::invalid_argument("dist: no worker endpoints");
  }
  std::vector<int> fds;
  std::vector<std::pair<std::string, std::uint16_t>> addrs;
  try {
    for (const std::string& ep : endpoints) {
      const std::size_t colon = ep.rfind(':');
      if (colon == std::string::npos) {
        throw WireError("endpoint '" + ep + "' is not host:port");
      }
      const std::string host = ep.substr(0, colon);
      const int port = std::atoi(ep.c_str() + colon + 1);
      if (port <= 0 || port > 65535) {
        throw WireError("endpoint '" + ep + "' has a bad port");
      }
      fds.push_back(connect_tcp(host, static_cast<std::uint16_t>(port)));
      addrs.emplace_back(host, static_cast<std::uint16_t>(port));
    }
  } catch (...) {
    for (const int fd : fds) {
      ::close(fd);
    }
    throw;
  }
  return coordinate(std::move(fds), options, &spec, -1, &addrs);
}

}  // namespace revisim::dist
