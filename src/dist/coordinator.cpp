#include "src/dist/coordinator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdarg>
#include <cstring>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <poll.h>
#include <stdexcept>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#include <unordered_map>
#include <utility>

#include "src/check/explore_core.h"
#include "src/check/explore_merge.h"
#include "src/check/state_table.h"
#include "src/dist/journal.h"
#include "src/dist/wire.h"
#include "src/dist/worker.h"

namespace revisim::dist {
namespace {

using Clock = std::chrono::steady_clock;
using check::detail::key_less;
using runtime::ProcessId;

class Log {
 public:
  explicit Log(const std::string& path) {
    if (!path.empty()) {
      file_ = std::fopen(path.c_str(), "a");
    }
  }
  ~Log() {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
  }
  void line(const char* fmt, ...) {
    if (file_ == nullptr) {
      return;
    }
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(file_, fmt, ap);
    va_end(ap);
    std::fputc('\n', file_);
    std::fflush(file_);
  }

 private:
  std::FILE* file_ = nullptr;
};

// The distributed twin of parallel_explore.cpp's JobRecord, extended with
// the genealogy the fault-recovery machinery needs: a lost attempt's
// re-run walks the job's FULL original region, so everything the attempt
// donated (children, recursively) must be cancelled or it would be double
// counted.  All state is owned by the single-threaded event loop - no
// locks anywhere in the coordinator.
struct DistJob {
  enum State : int { kPending, kRunning, kDone, kFailed, kAborted };

  std::uint64_t id = 0;
  std::vector<ProcessId> key;      // prefix + first choice; see explore_merge.h
  std::vector<ProcessId> prefix;
  std::vector<ProcessId> choices;  // empty = all (seed job)
  std::vector<ProcessId> sleep;
  std::uint32_t sleep_inherited = 0;  // see DonateMsg
  std::size_t donor = 0;
  bool donated = false;            // false for the seed and resumed jobs
  State state = kPending;
  std::size_t failures = 0;        // failed/lost attempts consumed
  bool abort_sent = false;         // a kCredit abort is already in flight
  // A lost deduped attempt's claims survive in the shard table; the re-run
  // (and every region it donates, recursively) walks with dedupe off so an
  // orphaned claim can never prune it.
  bool no_dedupe = false;
  // Genealogy.  `children` spans every attempt; `cancelled` excludes the
  // record from the merge because an ancestor's re-run re-covers its
  // region.
  DistJob* parent = nullptr;
  std::vector<DistJob*> children;
  bool cancelled = false;
  // Lower bound on this region's executions, fed by kLive messages; same
  // cap-bound role as JobRecord::live_execs.
  std::uint64_t live = 0;
  check::detail::SubtreeResult result;  // valid once kDone
  std::string error;                    // valid once kFailed
};

// Every epoll registration points at one of these; `kind` says what the
// event loop is looking at.
struct PollTarget {
  enum Kind { kWorkerConn, kProvisional };
  Kind kind = kWorkerConn;
};

// One worker connection, owned and driven entirely by the epoll loop.  The
// session outlives individual sockets: on a lost connection the Conn moves
// to kAwaitingReconnect and a provisional handshake delivers the fresh
// channel back under the same session token.
struct Conn : PollTarget {
  // kHandshaking: hello sent, awaiting the ack.  kServing: live.
  // kAwaitingReconnect: socket dead, fork-mode worker may re-dial within
  // the window.  kDead: retired for good.
  enum Phase { kHandshaking, kServing, kAwaitingReconnect, kDead };

  Channel ch;
  std::size_t worker = 0;
  std::uint64_t session = 0;  // token the reconnecting worker echoes
  WireWriter out;             // per-connection serialization buffer
  Frame in;
  FaultPlan faults;  // per-connection C->W fault plan storage
  Phase phase = kHandshaking;
  DistJob* current = nullptr;

  // Liveness bookkeeping.  last_sent drives ping piggybacking: ANY frame
  // advances the worker's liveness clock, so a ping goes out only when
  // nothing else has for a full interval.
  Clock::time_point last_heard{};
  Clock::time_point last_sent{};
  std::uint64_t ping_nonce = 0;
  Clock::time_point phase_deadline{};  // handshake / reconnect-window expiry
  std::string death;                   // why the socket died (reconnect path)
  Clock::time_point stop_since{};      // stop seen with a job still in flight
  bool stop_stalling = false;
  bool write_armed = false;  // epoll registration includes EPOLLOUT

  // Cluster mode: the endpoint to re-dial (empty host = fork mode, where
  // the worker re-dials us through the kept-open listener instead).
  std::string host;
  std::uint16_t port = 0;
};

// A re-dialed socket mid-handshake: the provisional hello is out, the ack
// (echoing a session token) decides which Conn adopts the channel.
struct Provisional : PollTarget {
  Channel ch;
  Frame in;
  Clock::time_point deadline{};
  bool dead = false;
  bool write_armed = false;
};

struct CoState {
  const DistExploreOptions* options = nullptr;
  std::uint64_t cap = 0;
  std::optional<Clock::time_point> deadline;
  Log* log = nullptr;
  JournalWriter* journal = nullptr;  // nullptr = journaling off
  int listen_fd = -1;                // reconnect acceptor source; -1 = none
  int epfd = -1;

  std::vector<std::unique_ptr<DistJob>> records;  // append-only
  std::uint64_t next_id = 0;  // ids survive resume, so != records index
  std::size_t pending = 0;
  std::size_t running = 0;
  std::size_t alive = 0;   // connections not yet retired
  std::size_t completions = 0;  // non-cancelled kDone resolutions
  bool stop = false;
  bool first_job_shipped = false;
  bool have_violation = false;
  std::vector<ProcessId> violation_key;
  std::size_t steals = 0;
  // Nonempty once the run lost the means to finish outstanding work (every
  // worker disconnected, the fingerprint audit found a collision, or the
  // halt_after_jobs hook fired); becomes the merged partial summary's error.
  std::string unfinished_reason;
  std::vector<std::unique_ptr<Conn>> conns;
  std::vector<std::unique_ptr<Provisional>> provisional;

  // Sharded fingerprint service (dedupe only).  Shard = top bits of fp.hi;
  // each shard is an ordinary StateTable whose insert_batch serves one
  // kFpBatch frame's worth of claims per call.
  std::vector<std::unique_ptr<check::StateTable>> shards;
  std::size_t shard_bits = 0;

  // Sum of live execution counters over records lex-before `key` - a lower
  // bound on the serial execution count before this record's region.
  // Cancelled records hold live == 0 (their region is re-counted by the
  // ancestor that re-runs it).
  std::uint64_t bound_before(const std::vector<ProcessId>& key) const {
    std::uint64_t sum = 0;
    for (const auto& r : records) {
      if (!r->cancelled && key_less(r->key, key)) {
        sum += r->live;
      }
    }
    return sum;
  }
};

// Poll granularity: with heartbeats armed the loop must wake often enough
// to ping on the interval and notice the timeout promptly; without them
// only coarse timers (deadline, reconnect windows) need the wakeup.
int tick_ms(const CoState& co, int cap) {
  const std::uint32_t hb = co.options->heartbeat_interval_ms;
  if (hb == 0) {
    return cap;
  }
  return static_cast<int>(std::min<std::uint32_t>(
      std::max<std::uint32_t>(hb / 2, 10), static_cast<std::uint32_t>(cap)));
}

void epoll_add(CoState& co, int fd, PollTarget* t, bool write) {
  struct epoll_event ev {};
  ev.events = EPOLLIN | (write ? EPOLLOUT : 0);
  ev.data.ptr = t;
  ::epoll_ctl(co.epfd, EPOLL_CTL_ADD, fd, &ev);
}

void epoll_mod(CoState& co, int fd, PollTarget* t, bool write) {
  struct epoll_event ev {};
  ev.events = EPOLLIN | (write ? EPOLLOUT : 0);
  ev.data.ptr = t;
  ::epoll_ctl(co.epfd, EPOLL_CTL_MOD, fd, &ev);
}

void epoll_del(CoState& co, int fd) {
  if (fd >= 0) {
    ::epoll_ctl(co.epfd, EPOLL_CTL_DEL, fd, nullptr);
  }
}

// Pushes the tx buffer as far as the socket allows and keeps the EPOLLOUT
// interest in sync with whether bytes remain.  Throws WireError on a hard
// socket failure.
void pump_writes(CoState& co, Conn& conn) {
  const bool pending = !conn.ch.flush();
  if (pending != conn.write_armed) {
    conn.write_armed = pending;
    epoll_mod(co, conn.ch.fd(), &conn, pending);
  }
}

// Enqueues one frame and pushes it out.  A send failure is swallowed: the
// epoll loop observes the dead socket (EPOLLERR/HUP or read EOF) and runs
// the disconnect path exactly once, from one place.
template <typename Encode>
void send_msg(CoState& co, Conn& conn, MsgType type, Encode encode) {
  if (!conn.ch.valid()) {
    return;
  }
  conn.out.clear();
  encode(conn.out);
  try {
    conn.ch.enqueue(type, conn.out);
    conn.last_sent = Clock::now();
    pump_writes(co, conn);
  } catch (const WireError&) {
  }
}

// Heartbeat driver, run every tick for every serving connection: throws
// once the worker has been silent past the timeout, and pings only when no
// other frame (job, credit, verdicts) went out for a full interval - the
// liveness traffic piggybacks on the pipeline's own.
void heartbeat(CoState& co, Conn& conn) {
  const std::uint32_t interval = co.options->heartbeat_interval_ms;
  if (interval == 0) {
    return;
  }
  const auto now = Clock::now();
  const auto silent =
      std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                            conn.last_heard);
  if (silent.count() >= co.options->heartbeat_timeout_ms) {
    throw WireError("heartbeat timeout: worker " +
                    std::to_string(conn.worker) + " silent for " +
                    std::to_string(silent.count()) + "ms");
  }
  if (now - conn.last_sent >= std::chrono::milliseconds(interval)) {
    const std::uint64_t nonce = ++conn.ping_nonce;
    send_msg(co, conn, MsgType::kPing, [nonce](WireWriter& w) {
      PingMsg m;
      m.nonce = nonce;
      encode_ping(w, m);
    });
  }
}

// Pushes kCredit aborts to every running job the merge provably cannot
// read: lex-earlier regions already secured the cap, a lex-earlier
// violation is final, or the job was cancelled outright (an ancestor
// re-runs its region).
void push_aborts(CoState& co) {
  for (const auto& c : co.conns) {
    if (c->phase != Conn::kServing || c->current == nullptr ||
        c->current->abort_sent) {
      continue;
    }
    DistJob* rec = c->current;
    const bool dead_key =
        co.have_violation && key_less(co.violation_key, rec->key);
    if (co.stop || dead_key || rec->cancelled ||
        co.bound_before(rec->key) >= co.cap) {
      rec->abort_sent = true;
      const std::uint64_t id = rec->id;
      send_msg(co, *c, MsgType::kCredit, [id](WireWriter& w) {
        CreditMsg m;
        m.id = id;
        m.abort = true;
        encode_credit(w, m);
      });
    }
  }
}

// Cancels every descendant of `rec`, recursively: the re-run of `rec`
// walks its full original region, descendants included, so keeping their
// records would double count.  Pending descendants leave the queue,
// running ones are left to their abort credit (caller runs push_aborts),
// finished ones are excluded from the merge, and the journal gets a
// tombstone so a later resume ignores them too.
void cancel_subtree(CoState& co, DistJob* rec) {
  for (DistJob* child : rec->children) {
    if (!child->cancelled) {
      child->cancelled = true;
      child->live = 0;
      if (child->state == DistJob::kPending) {
        child->state = DistJob::kAborted;
        --co.pending;
      }
      if (co.journal != nullptr) {
        co.journal->job_discarded(child->id);
      }
      co.log->line("coordinator: job %llu cancelled (ancestor %llu re-runs)",
                   static_cast<unsigned long long>(child->id),
                   static_cast<unsigned long long>(rec->id));
    }
    cancel_subtree(co, child);
  }
}

// Re-queues a lost or throwing job - cancelling everything the lost
// attempt donated - or fails it once retries are exhausted.  With
// dedupe_states on, the lost attempt's claim-then-walk claims survive in
// the shard table, so the re-run is marked no_dedupe (inherited by every
// region it donates): it walks with dedupe off and can never be pruned by
// an orphaned claim, keeping states_seen bounded by the serial count.
void requeue_or_fail(CoState& co, DistJob* rec, const std::string& why) {
  ++rec->failures;
  if (rec->failures > co.options->job_retries) {
    rec->state = DistJob::kFailed;
    rec->error = why;
    co.log->line("coordinator: job %llu failed (%s)",
                 static_cast<unsigned long long>(rec->id), why.c_str());
  } else {
    cancel_subtree(co, rec);
    rec->state = DistJob::kPending;
    rec->live = 0;
    rec->abort_sent = false;
    if (co.options->base.dedupe_states) {
      rec->no_dedupe = true;
    }
    ++co.pending;
    co.log->line("coordinator: job %llu re-queued%s (%s)",
                 static_cast<unsigned long long>(rec->id),
                 rec->no_dedupe ? " dedupe-off" : "", why.c_str());
  }
}

// Journals a completed walk the merge may reuse verbatim (fully explored
// or violating; partial cap/stop walks re-run on resume) and advances the
// halt_after_jobs hook.
void note_completion(CoState& co, DistJob* rec) {
  if (co.journal != nullptr &&
      (rec->result.fully_explored || rec->result.violation.has_value())) {
    co.journal->job_done(rec->id, rec->result);
  }
  ++co.completions;
  if (co.options->halt_after_jobs != 0 && !co.stop &&
      co.completions >= co.options->halt_after_jobs) {
    co.stop = true;
    if (co.unfinished_reason.empty()) {
      co.unfinished_reason = "halted by test instrumentation after " +
                             std::to_string(co.completions) +
                             " completed job(s)";
    }
    co.log->line("coordinator: halt_after_jobs hook fired at %zu",
                 co.completions);
    push_aborts(co);
  }
}

bool past_deadline(const CoState& co) {
  return co.deadline && Clock::now() >= *co.deadline;
}

HelloMsg make_hello(const CoState& co, std::uint32_t worker,
                    std::uint64_t session,
                    const check::CrashWorldSpec* spec) {
  const check::ScheduleExploreOptions& base = co.options->base;
  HelloMsg hello;
  hello.worker = worker;
  hello.session = session;
  hello.heartbeat_interval_ms = co.options->heartbeat_interval_ms;
  hello.heartbeat_timeout_ms = co.options->heartbeat_timeout_ms;
  hello.max_steps = base.max_steps;
  hello.warm_worlds = base.warm_worlds;
  hello.max_crashes = base.max_crashes;
  hello.record_traces = base.record_traces;
  hello.dedupe_states = base.dedupe_states;
  hello.dedupe_audit = base.dedupe_audit;
  hello.dedupe_adaptive = base.dedupe_adaptive;
  hello.por = base.por;
  hello.live_interval = std::max<std::uint64_t>(co.options->live_interval, 1);
  hello.probe_interval =
      std::max<std::uint64_t>(base.dist_probe_interval, 1);
  hello.fp_batch = std::max<std::uint32_t>(co.options->fp_batch, 1);
  hello.fp_window =
      std::max<std::uint32_t>(co.options->fp_window, hello.fp_batch);
  if (spec != nullptr) {
    hello.world = spec->world;
    hello.f = spec->f;
    hello.m = spec->m;
    hello.step_budget = spec->step_budget;
  }
  return hello;
}

// Retires a session for good.  When the last one goes with work still
// outstanding the run can never finish; poison it with a summary error
// instead of hanging.
void retire(CoState& co, Conn& conn, const std::string& reason) {
  epoll_del(co, conn.ch.fd());
  conn.phase = Conn::kDead;
  conn.write_armed = false;
  conn.ch.close();
  if (--co.alive == 0 && (co.pending > 0 || co.running > 0)) {
    co.stop = true;
    if (co.unfinished_reason.empty()) {
      co.unfinished_reason = reason;
    }
  }
}

// Blocking hello/ack handshake on conn's current (blocking) channel - the
// cluster-mode re-dial path only; first connections and fork-mode
// reconnects handshake asynchronously through the event loop.  Returns
// false on rejection or I/O failure.
bool handshake_blocking(CoState& co, Conn& conn,
                        const check::CrashWorldSpec* spec) {
  const HelloMsg hello = make_hello(
      co, static_cast<std::uint32_t>(conn.worker), conn.session, spec);
  try {
    conn.out.clear();
    encode_hello(conn.out, hello);
    conn.ch.send(MsgType::kHello, conn.out);
    if (!conn.ch.wait(10'000) || !conn.ch.recv(conn.in) ||
        conn.in.type != MsgType::kHelloAck) {
      throw WireError("no hello-ack");
    }
    WireReader r = conn.in.reader();
    const HelloAckMsg ack = decode_hello_ack(r);
    if (!ack.ok) {
      throw WireError("worker rejected hello: " + ack.error);
    }
  } catch (const std::exception& e) {
    co.log->line("coordinator: worker %zu handshake failed: %s", conn.worker,
                 e.what());
    return false;
  }
  return true;
}

// Lost connection: requeue the in-flight job (cancelling what the attempt
// donated), then either re-dial (cluster mode; deliberately blocking - the
// loop pauses, which is acceptable for the rare recovery path), park the
// session awaiting a fork-mode re-dial, or retire it.
void on_conn_lost(CoState& co, Conn& conn, const std::string& why,
                  const check::CrashWorldSpec* spec) {
  const std::string death =
      "worker " + std::to_string(conn.worker) + " disconnected: " + why;
  co.log->line("coordinator: %s", death.c_str());
  if (conn.current != nullptr) {
    requeue_or_fail(co, conn.current, death);
    --co.running;
    conn.current = nullptr;
    push_aborts(co);
  }
  conn.stop_stalling = false;
  epoll_del(co, conn.ch.fd());
  conn.write_armed = false;

  if (!co.stop && co.options->reconnect_window_ms > 0 && !conn.host.empty()) {
    // Cluster mode: re-dial the recorded endpoint ourselves.
    try {
      const int fd = connect_tcp(
          conn.host, conn.port,
          std::chrono::milliseconds(co.options->reconnect_window_ms),
          conn.worker);
      conn.ch.adopt(fd);
      conn.ch.set_faults(conn.faults.any() ? &conn.faults : nullptr);
      if (handshake_blocking(co, conn, spec)) {
        conn.ch.set_nonblocking();
        conn.phase = Conn::kServing;
        conn.last_heard = conn.last_sent = Clock::now();
        epoll_add(co, conn.ch.fd(), &conn, false);
        co.log->line("coordinator: worker %zu session resumed", conn.worker);
        return;
      }
      conn.ch.close();
    } catch (const std::exception& e) {
      co.log->line("coordinator: worker %zu re-dial failed: %s", conn.worker,
                   e.what());
    }
    retire(co, conn,
           "every worker disconnected with work outstanding (last: " + death +
               ")");
    return;
  }

  if (!co.stop && co.options->reconnect_window_ms > 0 && co.listen_fd >= 0) {
    // Fork mode: close the dead socket NOW so a partitioned-but-alive
    // worker sees the EOF and knows to re-dial the kept-open listener.
    conn.ch.close();
    conn.phase = Conn::kAwaitingReconnect;
    conn.phase_deadline =
        Clock::now() +
        std::chrono::milliseconds(co.options->reconnect_window_ms);
    conn.death = death;
    return;
  }

  retire(co, conn,
         "every worker disconnected with work outstanding (last: " + death +
             ")");
}

void kill_provisional(CoState& co, Provisional& p) {
  epoll_del(co, p.ch.fd());
  p.ch.close();
  p.dead = true;
}

// Sends one kFpInsert's verdict - the wire-v2 synchronous path, kept for
// protocol completeness; v3 workers speak kFpBatch.
void handle_fp_insert(CoState& co, Conn& conn) {
  WireReader r = conn.in.reader();
  FpInsertMsg msg = decode_fp_insert(r);
  const std::size_t shard =
      co.shard_bits == 0
          ? 0
          : static_cast<std::size_t>(msg.fp.hi >> (64 - co.shard_bits));
  FpReplyMsg reply;
  try {
    std::function<std::string()> canonical;
    if (msg.has_canonical) {
      canonical = [&msg] { return msg.canonical; };
    }
    reply.was_new = co.shards[shard]->insert(msg.fp, canonical);
  } catch (const check::StateFingerprintCollision& e) {
    // The audit found two canonical states behind one fingerprint: every
    // prune taken anywhere in this run is suspect.  Poison the run; the
    // worker gets its reply and then an abort credit.
    reply.was_new = true;
    if (co.unfinished_reason.empty()) {
      co.unfinished_reason = e.what();
    }
    co.stop = true;
    push_aborts(co);
  }
  send_msg(co, conn, MsgType::kFpReply,
           [&reply](WireWriter& w) { encode_fp_reply(w, reply); });
}

// Serves one kFpBatch frame: bucket the claims by shard, bulk-insert each
// shard's slice (one prefetch-warmed probe pass per shard), scatter the
// verdicts back into wire order and answer with one packed kFpVerdicts
// bitmap.
void handle_fp_batch(CoState& co, Conn& conn) {
  WireReader r = conn.in.reader();
  FpBatchMsg msg = decode_fp_batch(r);
  const std::uint32_t n = static_cast<std::uint32_t>(msg.fps.size());
  FpVerdictsMsg verdicts;
  verdicts.resize(n);
  std::vector<std::vector<std::uint32_t>> by_shard(
      std::max<std::size_t>(co.shards.size(), 1));
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::size_t shard =
        co.shard_bits == 0
            ? 0
            : static_cast<std::size_t>(msg.fps[i].hi >> (64 - co.shard_bits));
    by_shard[shard].push_back(i);
  }
  bool poisoned = false;
  std::string poison;
  std::vector<util::Fingerprint> fps;
  std::vector<bool> scratch;  // avoid vector<bool>: insert_batch wants bool*
  std::unique_ptr<bool[]> was_new;
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    const std::vector<std::uint32_t>& idx = by_shard[s];
    if (idx.empty()) {
      continue;
    }
    if (poisoned) {
      // The audit already blew up: answer was_new for the rest (the run is
      // poisoned and aborting; no prune taken on these matters).
      for (const std::uint32_t i : idx) {
        verdicts.set(i, true);
      }
      continue;
    }
    fps.clear();
    for (const std::uint32_t i : idx) {
      fps.push_back(msg.fps[i]);
    }
    was_new = std::make_unique<bool[]>(idx.size());
    std::function<std::string(std::size_t)> canonical;
    if (msg.has_canonical) {
      canonical = [&msg, &idx](std::size_t j) {
        return msg.canonicals[idx[j]];
      };
    }
    try {
      co.shards[s]->insert_batch(fps.data(), idx.size(), was_new.get(),
                                 canonical);
      for (std::size_t j = 0; j < idx.size(); ++j) {
        verdicts.set(idx[j], was_new[j]);
      }
    } catch (const check::StateFingerprintCollision& e) {
      poisoned = true;
      poison = e.what();
      for (const std::uint32_t i : idx) {
        verdicts.set(i, true);
      }
    }
  }
  (void)scratch;
  if (poisoned) {
    if (co.unfinished_reason.empty()) {
      co.unfinished_reason = poison;
    }
    co.stop = true;
    push_aborts(co);
  }
  send_msg(co, conn, MsgType::kFpVerdicts, [&verdicts](WireWriter& w) {
    encode_fp_verdicts(w, verdicts);
  });
}

// One inbound frame from a serving worker.  Throws WireError on protocol
// violations; the caller runs the disconnect path.
void handle_frame(CoState& co, Conn& conn) {
  DistJob* rec = conn.current;
  switch (conn.in.type) {
    case MsgType::kPing: {
      WireReader r = conn.in.reader();
      const PingMsg ping = decode_ping(r);
      send_msg(co, conn, MsgType::kPong, [&ping](WireWriter& w) {
        PongMsg m;
        m.nonce = ping.nonce;
        encode_pong(w, m);
      });
      break;
    }
    case MsgType::kPong:
      break;  // liveness bookkeeping happened at recv
    case MsgType::kFpInsert:
      handle_fp_insert(co, conn);
      break;
    case MsgType::kFpBatch:
      handle_fp_batch(co, conn);
      break;
    case MsgType::kLive: {
      WireReader r = conn.in.reader();
      const LiveMsg live = decode_live(r);
      if (rec != nullptr && live.id == rec->id) {
        // A cancelled job's credits must stay zero: bound_before feeding a
        // cancelled region's executions into budgets would double count
        // against the ancestor's re-run.
        if (!rec->cancelled) {
          rec->live = live.executions;
          push_aborts(co);
        }
      }
      break;
    }
    case MsgType::kDonate: {
      WireReader r = conn.in.reader();
      DonateMsg d = decode_donate(r);
      if (d.choices.empty()) {
        throw WireError("donation with no choices");
      }
      if (rec == nullptr) {
        throw WireError("donation outside a job");
      }
      if (rec->cancelled) {
        // The donated region is inside rec's region, which an ancestor's
        // re-run already re-covers.
        co.log->line("coordinator: donation from cancelled job %llu dropped",
                     static_cast<unsigned long long>(rec->id));
        break;
      }
      auto child = std::make_unique<DistJob>();
      child->id = co.next_id++;
      child->key = d.prefix;
      child->key.push_back(d.choices[0]);
      child->prefix = std::move(d.prefix);
      child->choices = std::move(d.choices);
      child->sleep = std::move(d.sleep);
      child->sleep_inherited = d.sleep_inherited;
      child->donor = conn.worker;
      child->donated = true;
      child->no_dedupe = rec->no_dedupe;  // dedupe-off regions donate likewise
      child->parent = rec;
      rec->children.push_back(child.get());
      if (co.journal != nullptr) {
        co.journal->job_created(child->id, true, rec->id, child->prefix,
                                child->choices, child->sleep,
                                child->sleep_inherited);
      }
      co.records.push_back(std::move(child));
      ++co.pending;
      break;
    }
    case MsgType::kJobResult: {
      WireReader r = conn.in.reader();
      JobResultMsg msg = decode_job_result(r);
      if (rec == nullptr) {
        throw WireError("job result outside a job");
      }
      if (!rec->cancelled) {
        rec->live = msg.result.executions;
        if (msg.result.violation &&
            (!co.have_violation || key_less(rec->key, co.violation_key))) {
          co.have_violation = true;
          co.violation_key = rec->key;
        }
        rec->result = std::move(msg.result);
        // Partial walks (abort credits, stop) are stored as kDone too,
        // exactly like the in-process explorer: the merge either never
        // reads them or reports the truncation they represent.
        rec->state = DistJob::kDone;
        note_completion(co, rec);
      } else {
        // The walk raced its cancellation; the result is already
        // re-covered by an ancestor's re-run.
        rec->state = DistJob::kDone;
      }
      --co.running;
      conn.current = nullptr;
      conn.stop_stalling = false;
      push_aborts(co);
      break;
    }
    case MsgType::kJobError: {
      WireReader r = conn.in.reader();
      const JobErrorMsg msg = decode_job_error(r);
      if (rec == nullptr) {
        throw WireError("job error outside a job");
      }
      if (!rec->cancelled) {
        requeue_or_fail(co, rec, msg.message);
        push_aborts(co);
      } else {
        rec->state = DistJob::kDone;  // cancelled: merged as skipped
      }
      --co.running;
      conn.current = nullptr;
      conn.stop_stalling = false;
      break;
    }
    default:
      throw WireError("unexpected frame type " +
                      std::to_string(static_cast<int>(conn.in.type)));
  }
}

// Consumes a kHandshaking connection's hello-ack and promotes it to
// serving (or retires it on rejection).
void finish_handshake(CoState& co, Conn& conn) {
  if (conn.in.type != MsgType::kHelloAck) {
    throw WireError("expected hello-ack, got frame type " +
                    std::to_string(static_cast<int>(conn.in.type)));
  }
  WireReader r = conn.in.reader();
  const HelloAckMsg ack = decode_hello_ack(r);
  if (!ack.ok) {
    co.log->line("coordinator: worker %zu rejected hello: %s", conn.worker,
                 ack.error.c_str());
    retire(co, conn, "every worker disconnected before the run finished");
    return;
  }
  conn.phase = Conn::kServing;
  conn.last_heard = conn.last_sent = Clock::now();
}

// Drains every complete frame buffered on the connection.  Throws on EOF
// or protocol violations.
void service_read(CoState& co, Conn& conn) {
  for (;;) {
    const int got = conn.ch.buffered_recv(conn.in);
    if (got == 0) {
      return;
    }
    if (got < 0) {
      throw WireError("connection closed");
    }
    conn.last_heard = Clock::now();
    if (conn.phase == Conn::kHandshaking) {
      finish_handshake(co, conn);
      if (conn.phase != Conn::kServing) {
        return;  // retired
      }
      continue;
    }
    handle_frame(co, conn);
  }
}

// Drives a provisional (re-dial) handshake: flush the provisional hello,
// read the ack, and hand the channel - WITH its sequence counters, which
// is why it moves instead of re-adopting - to the session whose token the
// ack echoes.
void service_provisional(CoState& co, Provisional& p, std::uint32_t events) {
  try {
    if ((events & EPOLLOUT) != 0 && p.ch.flush() && p.write_armed) {
      p.write_armed = false;
      epoll_mod(co, p.ch.fd(), &p, false);
    }
    if ((events & (EPOLLIN | EPOLLERR | EPOLLHUP)) == 0) {
      return;
    }
    const int got = p.ch.buffered_recv(p.in);
    if (got == 0) {
      return;
    }
    if (got < 0 || p.in.type != MsgType::kHelloAck) {
      kill_provisional(co, p);
      return;
    }
    WireReader r = p.in.reader();
    const HelloAckMsg ack = decode_hello_ack(r);
    if (!ack.ok || !ack.resume) {
      kill_provisional(co, p);  // not a reconnect; drop it
      return;
    }
    for (const auto& c : co.conns) {
      if (c->session == ack.session &&
          c->phase == Conn::kAwaitingReconnect) {
        co.log->line("coordinator: worker %zu re-dialed", c->worker);
        epoll_del(co, p.ch.fd());
        c->ch = std::move(p.ch);
        p.dead = true;
        c->ch.set_faults(c->faults.any() ? &c->faults : nullptr);
        c->phase = Conn::kServing;
        c->current = nullptr;
        c->write_armed = false;
        c->last_heard = c->last_sent = Clock::now();
        epoll_add(co, c->ch.fd(), c.get(), false);
        co.log->line("coordinator: worker %zu session resumed", c->worker);
        return;
      }
    }
    kill_provisional(co, p);  // unmatched (window expired, bogus token)
  } catch (const std::exception&) {
    kill_provisional(co, p);
  }
}

// Accepts every re-dialing fork-mode worker queued on the listener and
// starts its provisional handshake (the worker's HelloAck echoes its prior
// session token with resume=true).
void accept_reconnects(CoState& co, const check::CrashWorldSpec* spec) {
  for (;;) {
    int fd = -1;
    try {
      fd = accept_tcp(co.listen_fd, 0);
    } catch (const std::exception&) {
      return;  // listener gone
    }
    if (fd < 0) {
      return;
    }
    auto prov = std::make_unique<Provisional>();
    prov->kind = PollTarget::kProvisional;
    prov->ch.adopt(fd);
    prov->deadline = Clock::now() + std::chrono::milliseconds(5'000);
    try {
      prov->ch.set_nonblocking();
      // The handshake runs fault-free on a provisional identity; the
      // session's fault plan reattaches with the channel.
      WireWriter w;
      encode_hello(w, make_hello(co, /*worker=*/0xffffffffu, /*session=*/0,
                                 spec));
      prov->ch.enqueue(MsgType::kHello, w);
      prov->write_armed = !prov->ch.flush();
      epoll_add(co, prov->ch.fd(), prov.get(), prov->write_armed);
    } catch (const std::exception&) {
      continue;  // socket died mid-hello; drop it
    }
    co.provisional.push_back(std::move(prov));
  }
}

// Event-driven job assignment: ships the lex-least pending job to an idle
// serving connection, repeating until one side runs dry.  Runs after every
// event batch, so a freed worker or a fresh donation is matched
// immediately instead of waiting out a poll tick.
void assign_jobs(CoState& co) {
  while (!co.stop && co.pending > 0) {
    Conn* idle = nullptr;
    for (const auto& c : co.conns) {
      if (c->phase == Conn::kServing && c->current == nullptr) {
        idle = c.get();
        break;
      }
    }
    if (idle == nullptr) {
      return;
    }
    DistJob* rec = nullptr;
    for (const auto& r : co.records) {
      if (r->state == DistJob::kPending &&
          (rec == nullptr || key_less(r->key, rec->key))) {
        rec = r.get();
      }
    }
    if (rec == nullptr) {
      return;
    }
    // Pre-skip jobs whose result the merge provably cannot read (same
    // bound as the in-process claim path).
    const std::uint64_t before = co.bound_before(rec->key);
    const bool dead_key =
        co.have_violation && key_less(co.violation_key, rec->key);
    if (before >= co.cap || dead_key) {
      rec->state = DistJob::kAborted;
      --co.pending;
      continue;
    }
    rec->state = DistJob::kRunning;
    --co.pending;
    ++co.running;
    idle->current = rec;
    rec->abort_sent = false;
    rec->live = 0;
    if (rec->donated && rec->donor != idle->worker) {
      ++co.steals;
    }
    JobMsg job;
    job.id = rec->id;
    job.budget = co.cap - before;
    job.prefix = rec->prefix;
    job.choices = rec->choices;
    job.sleep = rec->sleep;
    job.sleep_inherited = rec->sleep_inherited;
    job.no_dedupe = rec->no_dedupe;
    if (co.options->fault_first_job_after != 0 && !co.first_job_shipped) {
      job.fault_after = co.options->fault_first_job_after;
    }
    co.first_job_shipped = true;
    co.log->line(
        "coordinator: job %llu -> worker %zu (prefix=%zu choices=%zu "
        "budget=%llu%s)",
        static_cast<unsigned long long>(job.id), idle->worker,
        job.prefix.size(), job.choices.size(),
        static_cast<unsigned long long>(job.budget),
        job.no_dedupe ? " dedupe-off" : "");
    send_msg(co, *idle, MsgType::kJob,
             [&job](WireWriter& w) { encode_job(w, job); });
  }
}

// The hungry hint, spoken over the wire: when a serving connection idles
// with no pending job, poke every busy worker to donate.  Re-poked every
// tick in case a request raced a donation someone else claimed.
void poke_steals(CoState& co) {
  if (!co.options->steal_requests || co.stop || co.pending != 0 ||
      co.running == 0) {
    return;
  }
  bool hungry = false;
  for (const auto& c : co.conns) {
    if (c->phase == Conn::kServing && c->current == nullptr) {
      hungry = true;
      break;
    }
  }
  if (!hungry) {
    return;
  }
  for (const auto& c : co.conns) {
    if (c->phase == Conn::kServing && c->current != nullptr) {
      send_msg(co, *c, MsgType::kStealReq,
               [](WireWriter&) { /* empty payload */ });
    }
  }
}

// Timer pass, run once per epoll wakeup: run deadline, heartbeats,
// reconnect-window and handshake expiries, the stop-stall guard, and the
// provisional sweep.
void run_timers(CoState& co, const check::CrashWorldSpec* spec) {
  const auto now = Clock::now();
  if (!co.stop && past_deadline(co)) {
    co.stop = true;
    push_aborts(co);
  }
  for (const auto& c : co.conns) {
    switch (c->phase) {
      case Conn::kServing:
        try {
          heartbeat(co, *c);
        } catch (const std::exception& e) {
          on_conn_lost(co, *c, e.what(), spec);
          break;
        }
        if (co.stop && c->current != nullptr) {
          // A stopped worker answers the abort credit within one
          // execution; one that stays silent for 10s of stop is wedged or
          // gone - cut it loose so the run can summarize.
          if (!c->stop_stalling) {
            c->stop_stalling = true;
            c->stop_since = now;
          } else if (now - c->stop_since >= std::chrono::seconds(10)) {
            on_conn_lost(co, *c, "worker unresponsive after stop", spec);
          }
        } else {
          c->stop_stalling = false;
        }
        break;
      case Conn::kHandshaking:
        if (now >= c->phase_deadline) {
          co.log->line("coordinator: worker %zu handshake timed out",
                       c->worker);
          retire(co, *c,
                 "every worker disconnected before the run finished");
        }
        break;
      case Conn::kAwaitingReconnect:
        if (co.stop || now >= c->phase_deadline) {
          retire(co, *c,
                 "every worker disconnected with work outstanding (last: " +
                     c->death + ")");
        }
        break;
      case Conn::kDead:
        break;
    }
  }
  for (const auto& p : co.provisional) {
    if (!p->dead && now >= p->deadline) {
      kill_provisional(co, *p);
    }
  }
  co.provisional.erase(
      std::remove_if(co.provisional.begin(), co.provisional.end(),
                     [](const std::unique_ptr<Provisional>& p) {
                       return p->dead;
                     }),
      co.provisional.end());
}

// The coordinator: one thread, one epoll loop, every connection
// non-blocking and buffered.  Ownership rules: the loop alone touches
// channels, job records and the shard tables (no locks anywhere);
// registrations point at Conn/Provisional objects whose lifetime outlasts
// their fd (Conns live for the whole run, Provisionals are swept only
// between event batches, so a stale event in the current batch always
// finds a live object and a phase/dead check).
void run_event_loop(CoState& co, const check::CrashWorldSpec* spec) {
  const auto now = Clock::now();
  for (const auto& c : co.conns) {
    c->ch.set_nonblocking();
    c->phase = Conn::kHandshaking;
    c->phase_deadline = now + std::chrono::milliseconds(10'000);
    c->last_heard = c->last_sent = now;
    epoll_add(co, c->ch.fd(), c.get(), false);
    const HelloMsg hello = make_hello(
        co, static_cast<std::uint32_t>(c->worker), c->session, spec);
    send_msg(co, *c, MsgType::kHello,
             [&hello](WireWriter& w) { encode_hello(w, hello); });
  }
  if (co.listen_fd >= 0) {
    epoll_add(co, co.listen_fd, nullptr, false);
  }

  struct epoll_event events[64];
  while (!(co.running == 0 && (co.stop || co.pending == 0))) {
    const int n =
        ::epoll_wait(co.epfd, events, 64, tick_ms(co, 100));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw WireError(std::string("epoll_wait: ") + std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      PollTarget* target = static_cast<PollTarget*>(events[i].data.ptr);
      if (target == nullptr) {
        accept_reconnects(co, spec);
        continue;
      }
      if (target->kind == PollTarget::kProvisional) {
        auto* p = static_cast<Provisional*>(target);
        if (!p->dead) {
          service_provisional(co, *p, events[i].events);
        }
        continue;
      }
      Conn& conn = *static_cast<Conn*>(target);
      if (conn.phase == Conn::kDead ||
          conn.phase == Conn::kAwaitingReconnect) {
        continue;  // stale event from earlier in this batch
      }
      try {
        if ((events[i].events & EPOLLOUT) != 0) {
          pump_writes(co, conn);
        }
        if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
          service_read(co, conn);
        }
      } catch (const std::exception& e) {
        on_conn_lost(co, conn, e.what(), spec);
      }
    }
    run_timers(co, spec);
    assign_jobs(co);
    poke_steals(co);
  }

  // Hand every surviving worker its shutdown, draining briefly so the
  // frame actually leaves before the close.
  for (const auto& c : co.conns) {
    if (c->phase != Conn::kServing && c->phase != Conn::kHandshaking) {
      continue;
    }
    send_msg(co, *c, MsgType::kShutdown, [](WireWriter&) {});
    try {
      for (int spins = 0; c->ch.valid() && !c->ch.flush() && spins < 100;
           ++spins) {
        struct pollfd pfd {};
        pfd.fd = c->ch.fd();
        pfd.events = POLLOUT;
        ::poll(&pfd, 1, 10);
      }
    } catch (const std::exception&) {
    }
  }
}

JournalConfig journal_config_from(const DistExploreOptions& options) {
  JournalConfig jc;
  jc.tag = options.journal_tag;
  jc.max_steps = options.base.max_steps;
  jc.max_executions = options.base.max_executions;
  jc.max_crashes = options.base.max_crashes;
  jc.por = options.base.por;
  jc.dedupe = options.base.dedupe_states;
  jc.record_traces = options.base.record_traces;
  return jc;
}

// Loads a prior run's journal into the record table: completed regions
// with completed ancestors are reused verbatim, incomplete ones re-queue
// from their recorded specs, and descendants of incomplete jobs are
// tombstoned (their regions re-run with the ancestor).  Reopens the
// journal for appending.  Runs before the event loop starts.
void load_journal(CoState& co, const DistExploreOptions& options,
                  JournalWriter& journal) {
  const JournalContents contents = read_journal(options.journal_path);
  const JournalConfig expected = journal_config_from(options);
  if (!(contents.config == expected)) {
    throw WireError(
        "journal: " + options.journal_path +
        " was recorded under a different configuration (tag '" +
        contents.config.tag + "'); resume with the original world and options");
  }
  std::vector<const JournalJob*> alive;
  std::vector<check::detail::ResumeJob> genealogy;
  for (const JournalJob& j : contents.jobs) {
    co.next_id = std::max(co.next_id, j.id + 1);
    if (j.discarded) {
      continue;
    }
    alive.push_back(&j);
    genealogy.push_back({j.id, j.has_parent, j.parent, j.done});
  }
  const std::vector<check::detail::ResumeAction> plan =
      check::detail::plan_resume(genealogy);

  journal.append_to(options.journal_path);
  std::size_t reused = 0;
  std::size_t rerun = 0;
  std::size_t discarded = 0;
  std::unordered_map<std::uint64_t, DistJob*> by_id;
  for (std::size_t i = 0; i < alive.size(); ++i) {
    const JournalJob& j = *alive[i];
    if (plan[i] == check::detail::ResumeAction::kDiscard) {
      journal.job_discarded(j.id);  // tombstone for the NEXT resume
      ++discarded;
      continue;
    }
    auto rec = std::make_unique<DistJob>();
    rec->id = j.id;
    rec->prefix = j.prefix;
    rec->choices = j.choices;
    rec->sleep = j.sleep;
    rec->sleep_inherited = j.sleep_inherited;
    rec->key = j.prefix;
    if (!j.choices.empty()) {
      rec->key.push_back(j.choices[0]);
    }
    if (plan[i] == check::detail::ResumeAction::kReuse) {
      rec->state = DistJob::kDone;
      rec->result = j.result;
      rec->live = j.result.executions;
      if (rec->result.violation &&
          (!co.have_violation || key_less(rec->key, co.violation_key))) {
        co.have_violation = true;
        co.violation_key = rec->key;
      }
      ++reused;
    } else {
      rec->state = DistJob::kPending;
      ++co.pending;
      ++rerun;
    }
    by_id[rec->id] = rec.get();
    co.records.push_back(std::move(rec));
  }
  // Rebuild the genealogy among survivors so a rerun job that fails AGAIN
  // cancels its (new) descendants correctly.
  for (const auto& r : co.records) {
    // Loaded records never link to discarded parents: a discarded parent
    // implies a discarded child.
    for (const JournalJob* j : alive) {
      if (j->id == r->id && j->has_parent) {
        const auto it = by_id.find(j->parent);
        if (it != by_id.end()) {
          r->parent = it->second;
          it->second->children.push_back(r.get());
        }
        break;
      }
    }
  }
  co.log->line(
      "coordinator: resumed %s: %zu reused, %zu re-run, %zu discarded, "
      "%zu torn byte(s) dropped",
      options.journal_path.c_str(), reused, rerun, discarded,
      contents.dropped_tail_bytes);
}

void reap_children(const std::vector<pid_t>& kids) {
  for (const pid_t pid : kids) {
    int status = 0;
    // Workers exit on shutdown or coordinator EOF; give each a grace
    // window before escalating.
    for (int spins = 0; spins < 500; ++spins) {
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid || (r < 0 && errno != EINTR)) {
        break;  // reaped, or not our child anymore
      }
      if (spins == 499) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        break;
      }
      ::usleep(10 * 1000);
    }
  }
}

std::string log_path_for(const char* name) {
  const char* dir = std::getenv("REVISIM_DIST_LOG");
  if (dir == nullptr) {
    return {};
  }
  return std::string(dir) + "/" + name + ".log";
}

}  // namespace

check::ScheduleExploreResult coordinate(
    std::vector<int> worker_fds, const DistExploreOptions& options,
    const check::CrashWorldSpec* spec, int reconnect_listen_fd,
    const std::vector<std::pair<std::string, std::uint16_t>>* endpoints) {
  check::validate(options.base);
  if (worker_fds.empty()) {
    throw std::invalid_argument("dist: coordinate needs at least one worker");
  }
  if (options.resume && options.journal_path.empty()) {
    throw std::invalid_argument("dist: resume needs a journal path");
  }
  if (options.fp_batch < 1) {
    throw std::invalid_argument("dist: fp_batch must be >= 1");
  }
  if (options.fp_window < options.fp_batch) {
    throw std::invalid_argument(
        "dist: fp_window (" + std::to_string(options.fp_window) +
        ") must be >= fp_batch (" + std::to_string(options.fp_batch) +
        "): the outstanding window must hold at least one full batch");
  }

  Log log(log_path_for("coordinator"));
  CoState co;
  co.options = &options;
  co.log = &log;
  co.listen_fd = options.reconnect_window_ms > 0 ? reconnect_listen_fd : -1;
  co.cap = std::max<std::uint64_t>(options.base.max_executions, 1);
  if (options.time_limit.count() > 0) {
    co.deadline = Clock::now() + options.time_limit;
  }
  if (options.base.dedupe_states) {
    std::size_t shards = std::max<std::size_t>(options.fp_shards, 1);
    co.shard_bits = 0;
    while ((std::size_t{1} << co.shard_bits) < shards && co.shard_bits < 8) {
      ++co.shard_bits;
    }
    const std::size_t n = std::size_t{1} << co.shard_bits;
    for (std::size_t i = 0; i < n; ++i) {
      co.shards.push_back(std::make_unique<check::StateTable>(
          check::StateTable::Options{.audit = options.base.dedupe_audit}));
    }
  }

  // Adopt the sockets into Conn channels FIRST: any throw below (a resume
  // config mismatch, an unreadable journal) then closes them via the
  // Channel destructors, and the workers see EOF instead of hanging on a
  // hello that will never come.
  //
  // Session tokens: unique within this coordinator's lifetime (and across
  // quick restarts) so a stale worker cannot hijack another session.
  const std::uint64_t token_base =
      (static_cast<std::uint64_t>(::getpid()) << 40) ^
      static_cast<std::uint64_t>(
          Clock::now().time_since_epoch().count());
  for (std::size_t i = 0; i < worker_fds.size(); ++i) {
    auto conn = std::make_unique<Conn>();
    conn->kind = PollTarget::kWorkerConn;
    conn->ch.adopt(worker_fds[i]);
    conn->worker = i;
    conn->session = token_base + i + 1;
    if (endpoints != nullptr && i < endpoints->size()) {
      conn->host = (*endpoints)[i].first;
      conn->port = (*endpoints)[i].second;
    }
    if (options.coordinator_faults.any()) {
      conn->faults = derive_fault_plan(options.coordinator_faults, i);
      conn->ch.set_faults(&conn->faults);
    }
    co.conns.push_back(std::move(conn));
  }
  co.alive = co.conns.size();

  JournalWriter journal;
  if (!options.journal_path.empty()) {
    if (options.resume) {
      load_journal(co, options, journal);  // throws WireError on mismatch
    } else {
      journal.create(options.journal_path, journal_config_from(options));
    }
    co.journal = &journal;
  }
  if (co.records.empty()) {
    // Fresh run (or a journal that died before its seed record): one seed
    // job covering the whole tree, empty key.
    auto seed = std::make_unique<DistJob>();
    seed->id = co.next_id++;
    if (co.journal != nullptr) {
      journal.job_created(seed->id, false, 0, seed->prefix, seed->choices,
                          seed->sleep, seed->sleep_inherited);
    }
    co.records.push_back(std::move(seed));
    co.pending = 1;
  }
  log.line(
      "coordinator: %zu worker(s), cap=%llu, dedupe=%d, por=%d, "
      "heartbeat=%ums/%ums, reconnect=%ums, fp_batch=%u/%u, journal=%s, "
      "faults=%s",
      co.conns.size(), static_cast<unsigned long long>(co.cap),
      options.base.dedupe_states ? 1 : 0, options.base.por ? 1 : 0,
      options.heartbeat_interval_ms, options.heartbeat_timeout_ms,
      options.reconnect_window_ms, options.fp_batch, options.fp_window,
      options.journal_path.empty() ? "off" : options.journal_path.c_str(),
      fault_plan_text(options.coordinator_faults).c_str());

  co.epfd = ::epoll_create1(EPOLL_CLOEXEC);
  if (co.epfd < 0) {
    throw WireError(std::string("epoll_create1: ") + std::strerror(errno));
  }
  try {
    run_event_loop(co, spec);
  } catch (...) {
    ::close(co.epfd);
    throw;
  }
  ::close(co.epfd);
  for (const auto& conn : co.conns) {
    conn->ch.close();
  }
  journal.close();

  std::vector<check::detail::MergeJob> order;
  order.reserve(co.records.size());
  std::size_t merged_jobs = 0;
  for (const auto& r : co.records) {
    if (r->cancelled) {
      continue;  // region re-covered by an ancestor's re-run
    }
    ++merged_jobs;
    check::detail::MergeJob j;
    j.key = &r->key;
    switch (r->state) {
      case DistJob::kDone:
        j.state = check::detail::MergeJob::State::kDone;
        j.result = &r->result;
        break;
      case DistJob::kFailed:
        j.state = check::detail::MergeJob::State::kFailed;
        j.error = &r->error;
        break;
      default:
        j.state = check::detail::MergeJob::State::kUnfinished;
        break;
    }
    order.push_back(j);
  }
  check::ScheduleExploreResult res = check::detail::merge_job_results(
      order, co.cap, options.job_retries + 1, co.unfinished_reason);
  res.jobs = merged_jobs;
  res.steals = co.steals;
  if (!co.shards.empty()) {
    // The shard sums are the authoritative distinct-state count; workers
    // report only their local cache's lower bound.  subtrees_pruned stays
    // the per-job sum from the merge: worker-local cache hits never reach
    // the shards, so the job counters see strictly more prunes.
    std::size_t states = 0;
    for (const auto& s : co.shards) {
      states += s->states();
    }
    res.states_seen = states;
  }
  if (!co.unfinished_reason.empty() && !res.error.has_value() &&
      !res.timed_out) {
    // Every record resolved before the poison landed (e.g. an audit
    // collision raced the last result): the numbers merged, but no prune
    // in them is trustworthy.
    res.error = co.unfinished_reason;
    res.exhausted = false;
  }
  log.line("coordinator: merged %zu job(s): executions=%zu exhausted=%d "
           "violation=%d steals=%zu",
           res.jobs, res.executions, res.exhausted ? 1 : 0,
           res.violation.has_value() ? 1 : 0, res.steals);
  return res;
}

check::ScheduleExploreResult dist_explore_schedules(
    const std::function<std::unique_ptr<check::ExplorableWorld>()>& factory,
    const DistExploreOptions& options) {
  check::validate(options.base);
  if (options.workers == 0) {
    throw std::invalid_argument("dist: workers must be >= 1");
  }
  std::uint16_t port = 0;
  const int listen_fd = listen_tcp("127.0.0.1", port);
  const char* log_dir = std::getenv("REVISIM_DIST_LOG");

  // Fork every worker first; the coordinator is single-threaded, but a
  // worker forked after any thread ever existed may inherit held
  // malloc/sanitizer locks, and TSan forbids it outright.
  std::vector<pid_t> kids;
  for (std::size_t i = 0; i < options.workers; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (const pid_t k : kids) {
        ::kill(k, SIGKILL);
      }
      reap_children(kids);
      ::close(listen_fd);
      throw WireError("fork failed");
    }
    if (pid == 0) {
      ::close(listen_fd);
      int code = 1;
      try {
        WorkerOptions wopt;
        wopt.host = "127.0.0.1";
        wopt.port = port;
        wopt.reconnect_window_ms = options.reconnect_window_ms;
        wopt.seed = i;
        if (log_dir != nullptr) {
          wopt.log_path =
              std::string(log_dir) + "/worker-" + std::to_string(i) + ".log";
        }
        if (options.worker_faults.any()) {
          wopt.faults = derive_fault_plan(options.worker_faults, i);
        }
        code = run_worker(factory, wopt);
      } catch (...) {
      }
      // _Exit: never run the parent's atexit handlers or static
      // destructors in a forked child.
      std::_Exit(code);
    }
    kids.push_back(pid);
  }

  std::vector<int> fds;
  for (std::size_t i = 0; i < options.workers; ++i) {
    const int fd = accept_tcp(listen_fd, 10'000);
    if (fd < 0) {
      break;  // a child died before connecting; run with the rest
    }
    fds.push_back(fd);
  }

  // The listener stays open for the run: disconnected workers re-dial it
  // and the coordinator's epoll loop re-handshakes them.
  check::ScheduleExploreResult res;
  std::exception_ptr failure;
  if (fds.empty()) {
    failure = std::make_exception_ptr(WireError("no worker connected"));
  } else {
    try {
      res = coordinate(std::move(fds), options, nullptr, listen_fd);
    } catch (...) {
      failure = std::current_exception();
    }
  }
  ::close(listen_fd);
  reap_children(kids);
  if (failure) {
    std::rethrow_exception(failure);
  }
  return res;
}

check::ScheduleExploreResult dist_explore_remote(
    const check::CrashWorldSpec& spec,
    const std::vector<std::string>& endpoints,
    const DistExploreOptions& options) {
  if (endpoints.empty()) {
    throw std::invalid_argument("dist: no worker endpoints");
  }
  std::vector<int> fds;
  std::vector<std::pair<std::string, std::uint16_t>> addrs;
  try {
    for (const std::string& ep : endpoints) {
      const std::size_t colon = ep.rfind(':');
      if (colon == std::string::npos) {
        throw WireError("endpoint '" + ep + "' is not host:port");
      }
      const std::string host = ep.substr(0, colon);
      const int port = std::atoi(ep.c_str() + colon + 1);
      if (port <= 0 || port > 65535) {
        throw WireError("endpoint '" + ep + "' has a bad port");
      }
      fds.push_back(connect_tcp(host, static_cast<std::uint16_t>(port)));
      addrs.emplace_back(host, static_cast<std::uint16_t>(port));
    }
  } catch (...) {
    for (const int fd : fds) {
      ::close(fd);
    }
    throw;
  }
  return coordinate(std::move(fds), options, &spec, -1, &addrs);
}

}  // namespace revisim::dist
