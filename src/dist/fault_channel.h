// Deterministic network fault injection for the distributed explorer.
//
// Channel is the framed-I/O object both endpoints own: a connected socket
// fd plus the per-direction sequence counters the version-2 wire format
// carries in every frame header.  Normally it is a thin veneer over
// send_frame/recv_frame.  Given a FaultPlan it perturbs its OWN send path -
// drop, duplicate, delay, stall, truncate mid-frame, one-way partition,
// hard cut - while the receive path stays honest, so a test faults the
// worker->coordinator direction by handing the worker a plan and the
// reverse by handing one to the coordinator.
//
// Every fault is either detected or survived deterministically:
//   - drop/duplicate: the sequence number gap/repeat is caught by the
//     peer's next recv as a WireError, which cuts the connection and hands
//     recovery to the job re-queue + reconnect machinery.  Heartbeats
//     guarantee a next frame exists, so a dropped frame can stall the run
//     for at most one heartbeat interval.
//   - truncate/cut: the peer sees a mid-frame EOF or crc mismatch.
//   - one-way partition: the peer hears silence and declares the
//     connection dead after its heartbeat timeout - the "hung peer"
//     detector, as opposed to a delay shorter than the timeout, which is
//     survived in place.
//   - delay/stall: sleeps before the send; a stall longer than the
//     heartbeat timeout is indistinguishable from a hang, by design.
//
// Rate faults (drop/dup/delay) draw from a seeded xorshift generator and
// keep firing for the life of the plan.  Positional faults (stall_at,
// cut_after, truncate_at, partition_after) fire once per PLAN, not per
// connection: after firing they disarm themselves, so the reconnected
// session runs clean and the run converges to the fault-free result -
// which is exactly what the bit-parity fault tests assert.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/dist/wire.h"

namespace revisim::dist {

struct FaultPlan {
  std::uint64_t seed = 1;  // rate-fault rng seed
  double drop_rate = 0;    // P(outbound frame silently dropped)
  double dup_rate = 0;     // P(outbound frame sent twice)
  double delay_rate = 0;   // P(outbound frame delayed delay_ms)
  std::uint32_t delay_ms = 0;
  // Positional one-shot faults, keyed by the channel's 1-based outbound
  // frame count; 0 = off.  Self-disarming (see above).
  std::uint64_t stall_at = 0;  // sleep stall_ms before sending frame N
  std::uint32_t stall_ms = 0;
  std::uint64_t cut_after = 0;     // send frame N, then shut the socket down
  std::uint64_t truncate_at = 0;   // send only half of frame N, then shut down
  std::uint64_t partition_after = 0;  // swallow every send from frame N on

  [[nodiscard]] bool any() const {
    return drop_rate > 0 || dup_rate > 0 || delay_rate > 0 || stall_at != 0 ||
           cut_after != 0 || truncate_at != 0 || partition_after != 0;
  }
};

// Parses "key=value[,key=value...]" with keys seed, drop, dup, delay_rate,
// delay_ms, stall_at, stall_ms, cut_after, truncate_at, partition_after.
// Throws std::invalid_argument on unknown keys or malformed numbers.
FaultPlan parse_fault_plan(const std::string& spec);

// Log-friendly rendering of the armed faults ("drop=0.02,cut_after=40").
std::string fault_plan_text(const FaultPlan& plan);

// Re-seeds a plan for worker `index`, so a fleet sharing one spec does not
// fault in lockstep.
FaultPlan derive_fault_plan(const FaultPlan& plan, std::size_t index);

// A connected socket plus the framing state (send/recv sequence numbers)
// and an optional fault plan applied to sends.  Two I/O modes share the
// fault pipeline:
//   - blocking (the worker): send() writes one frame per call as a single
//     scatter-gather sendmsg (header + payload, no assembly copy);
//   - non-blocking buffered (the coordinator's epoll loop): enqueue()
//     commits frames to a per-connection tx buffer (faults apply here, at
//     commit-to-stream order) and flush() coalesces everything pending
//     into one sendmsg, while buffered_recv() parses frames out of a
//     per-connection rx buffer fed by non-blocking reads.
// Not thread-safe per direction: callers serialize sends among themselves
// and receive from one thread only (the epoll loop owns both directions).
class Channel {
 public:
  Channel() = default;
  explicit Channel(int fd) : fd_(fd) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;
  // Movable so a handshake performed on a temporary channel (the
  // coordinator's reconnect acceptor) can be handed to the session's serve
  // thread WITH its sequence counters - the frames exchanged during the
  // handshake are part of the connection's sequence space.
  Channel(Channel&& other) noexcept;
  Channel& operator=(Channel&& other) noexcept;
  ~Channel() { close(); }

  // Points the channel at a (re)connected fd: closes any previous fd and
  // resets the sequence counters and per-connection fault state.  The
  // fault plan pointer survives adoption (positional faults that already
  // fired stay disarmed).
  void adopt(int fd);
  void close();
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  // Attaches a fault plan (not owned; may be nullptr).  The plan object is
  // mutated as positional faults disarm, so sharing one plan across
  // reconnects gives fire-once semantics.
  void set_faults(FaultPlan* plan);

  // Sends one frame, applying any armed faults.  Throws WireError if the
  // socket fails or a previously fired cut/truncate left it dead.
  void send(MsgType type, const WireWriter& body);

  // Blocking receive; false on clean EOF.  Throws WireError on I/O
  // failure, crc mismatch, or a sequence gap (the peer's faults showing).
  bool recv(Frame& frame);

  // Non-blocking variant: 1 = frame, 0 = nothing pending, -1 = EOF.
  int try_recv(Frame& frame);

  // True when a frame header is ready within timeout_ms.
  bool wait(int timeout_ms) { return wait_readable(fd_, timeout_ms); }

  // --- non-blocking buffered mode (the coordinator's epoll loop) ------------

  // Switches the fd to O_NONBLOCK and reserves the tx/rx buffers once for
  // the life of the connection.
  void set_nonblocking();

  // Commits one frame to the tx buffer without writing to the socket.
  // Faults fire here - the enqueue order is the stream order - so the
  // injection matrix composes with coalesced sends.  Throws WireError like
  // send() when the connection is already dead.
  void enqueue(MsgType type, const WireWriter& body);

  // Writes everything enqueued in as few sendmsg calls as the socket
  // accepts.  Returns true when the tx buffer drained; false when the
  // socket would block (arm EPOLLOUT and call again on writability).
  bool flush();
  [[nodiscard]] bool tx_pending() const { return tx_.size() > tx_off_; }

  // Non-blocking buffered receive: drains readable bytes into the rx
  // buffer, then parses at most one frame.  1 = frame, 0 = no complete
  // frame available yet, -1 = EOF at a frame boundary with the buffer
  // consumed.  Throws WireError on mid-frame EOF, crc/seq mismatch, or
  // I/O failure.  Call in a loop until 0 - the socket is edge-drained on
  // the first call, so later frames sit in the buffer.
  int buffered_recv(Frame& frame);

 private:
  [[nodiscard]] bool chance(double p);
  // Shared fault pipeline: appends the faulted frame bytes to tx_.
  void queue_frame(MsgType type, const WireWriter& body);
  // flush() that tolerates a blocking fd (the send() path).
  void flush_all();

  int fd_ = -1;
  FaultPlan* faults_ = nullptr;
  std::uint64_t rng_ = 0x9E3779B97F4A7C15ull;
  std::uint64_t sent_frames_ = 0;
  std::uint32_t send_seq_ = 0;
  std::uint32_t recv_seq_ = 0;
  bool broken_ = false;       // cut/truncate fired on this connection
  bool partitioned_ = false;  // partition fired on this connection
  bool nonblocking_ = false;
  bool cut_on_drain_ = false;  // cut_after fired; shut down once tx_ drains
  bool rx_eof_ = false;
  // Coalescing buffers, reserved once per connection: frames are appended
  // back to back in tx_ (tx_off_ = bytes already on the wire) and parsed
  // out of rx_ (rx_pos_ = bytes already consumed).
  std::vector<std::uint8_t> tx_;
  std::size_t tx_off_ = 0;
  std::vector<std::uint8_t> rx_;
  std::size_t rx_pos_ = 0;
};

}  // namespace revisim::dist
