// Distributed exploration worker: serves prefix-identified jobs from a
// coordinator socket by re-replaying the received prefix into its own warm
// worlds and running the shared explore_core DFS - POR, dedupe and the
// stack-splitting donation machinery unchanged.  One connection, one job at
// a time; the worker is single-threaded and pumps coordinator messages
// (cap credits, steal requests, shutdown) between executions via the abort
// probe, so steal latency is bounded by one execution.
//
// With dedupe on, the worker routes first-sightings of a state through the
// coordinator's sharded fingerprint service (a synchronous kFpInsert round
// trip per distinct state) while caching every answer in a local
// StateTable, so repeat sightings prune locally without touching the wire.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/check/model_check.h"

namespace revisim::dist {

// Serves jobs on a connected coordinator socket until a shutdown message or
// EOF.  `factory` may be null: the coordinator's hello must then name a
// crash-world registry world (src/check/crash_worlds.h), which the worker
// builds itself - the cluster-mode path.  `log_path`, when nonempty, gets
// one line per protocol event (CI failure artifacts).
void serve_connection(
    int fd,
    const std::function<std::unique_ptr<check::ExplorableWorld>()>& factory,
    const std::string& log_path = {});

// `revisim_cli serve`: listens on host:port and serves one coordinator
// connection at a time, forever.  Worlds come from the registry.  Returns
// only if the listener cannot be created (nonzero exit code).
int serve_forever(const std::string& host, std::uint16_t port);

}  // namespace revisim::dist
