// Distributed exploration worker: serves prefix-identified jobs from a
// coordinator socket by re-replaying the received prefix into its own warm
// worlds and running the shared explore_core DFS - POR, dedupe and the
// stack-splitting donation machinery unchanged.  One connection, one job at
// a time; the worker is single-threaded and pumps coordinator messages
// (cap credits, steal requests, heartbeat pings, shutdown) between
// executions via the abort probe, so steal latency is bounded by one
// execution.
//
// Liveness and recovery: the hello carries the heartbeat cadence; the
// worker answers every kPing with a kPong and treats coordinator silence
// past the timeout as a dead connection.  Run via run_worker (fork mode),
// a lost connection is not fatal: the worker re-dials the coordinator with
// jittered backoff, re-handshakes under its prior session token
// (HelloAck.resume) and keeps serving with its warm pool and dedupe cache
// intact; any in-flight job is abandoned (the coordinator re-queues it).
//
// With dedupe on, the worker routes first-sightings of a state through the
// coordinator's sharded fingerprint service asynchronously: claims are
// batched into kFpBatch frames and the DFS keeps descending speculatively
// while up to fp_window claims await their packed kFpVerdicts bitmap; a
// duplicate verdict cancels the speculative subtree (see RemoteStateStore
// in worker.cpp for the soundness invariant).  A local StateTable caches
// every sighting, so repeats prune locally without touching the wire.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/check/model_check.h"
#include "src/dist/fault_channel.h"

namespace revisim::dist {

// Serves jobs on a connected coordinator socket until a shutdown message or
// EOF; single-shot (no reconnect).  `factory` may be null: the
// coordinator's hello must then name a crash-world registry world
// (src/check/crash_worlds.h), which the worker builds itself - the
// cluster-mode path.  `log_path`, when nonempty, gets one line per
// protocol event (CI failure artifacts).  `faults`, when armed, perturbs
// the worker's outbound (W->C) sends.
void serve_connection(
    int fd,
    const std::function<std::unique_ptr<check::ExplorableWorld>()>& factory,
    const std::string& log_path = {}, const FaultPlan& faults = {});

struct WorkerOptions {
  std::string host;
  std::uint16_t port = 0;
  std::string log_path;
  // How long a lost connection is worth re-dialing (0 = give up at once:
  // single connection, like serve_connection).
  std::uint32_t reconnect_window_ms = 0;
  // Jitters the reconnect backoff so a worker fleet does not re-dial in
  // lockstep; conventionally the worker index.
  std::uint64_t seed = 0;
  // Outbound (W->C) fault plan; shared across reconnects of this worker,
  // so positional one-shot faults fire once per worker, not per dial.
  FaultPlan faults;
};

// Fork-mode worker entry: dials the coordinator, serves jobs, and on a
// lost connection re-dials within the reconnect window and resumes its
// session.  Returns a process exit code (0 = clean shutdown or
// coordinator EOF, nonzero = gave up reconnecting or never handshook).
int run_worker(
    const std::function<std::unique_ptr<check::ExplorableWorld>()>& factory,
    const WorkerOptions& options);

// `revisim_cli serve`: listens on host:port and serves one coordinator
// connection at a time, forever.  Worlds come from the registry; the
// REVISIM_FAULT_PLAN environment variable, when set, arms an outbound
// fault plan (see parse_fault_plan).  Returns only if the listener cannot
// be created (nonzero exit code).
int serve_forever(const std::string& host, std::uint16_t port);

}  // namespace revisim::dist
