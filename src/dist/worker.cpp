#include "src/dist/worker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <limits>
#include <optional>
#include <unistd.h>
#include <utility>
#include <vector>

#include "src/check/crash_worlds.h"
#include "src/check/explore_core.h"
#include "src/check/state_table.h"
#include "src/dist/wire.h"

namespace revisim::dist {
namespace {

using check::ExplorableWorld;
using Clock = std::chrono::steady_clock;
using runtime::ProcessId;

class Log {
 public:
  explicit Log(const std::string& path) {
    if (!path.empty()) {
      file_ = std::fopen(path.c_str(), "a");
    }
  }
  ~Log() {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
  }
  void line(const char* fmt, ...) {
    if (file_ == nullptr) {
      return;
    }
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(file_, fmt, ap);
    va_end(ap);
    std::fputc('\n', file_);
    std::fflush(file_);
  }

 private:
  std::FILE* file_ = nullptr;
};

class RemoteStateStore;

// One coordinator session: the channel (socket + framing state), the reused
// serialization buffers, and the control flags the message pump feeds into
// the running job.  The session OUTLIVES individual connections: run_worker
// re-dials on loss and the warm pool, dedupe cache, session token and
// one-shot fault state all carry over.
struct Session {
  Channel ch;
  WireWriter out;  // one buffer per session; cleared per message
  Frame in;        // receive buffer, likewise reused
  Log* log = nullptr;
  FaultPlan faults;  // outbound plan storage; ch points here when armed

  HelloMsg hello;           // options from the FIRST hello of the session
  bool have_hello = false;  // a later hello is a reconnect re-handshake
  std::uint64_t token = 0;  // session token echoed on reconnect
  Clock::time_point last_heard{};

  std::uint64_t job_id = 0;
  std::atomic<std::uint64_t> live{0};    // executions of the current job
  std::atomic<std::uint64_t> budget{0};  // shrunk by kCredit messages
  bool abort_job = false;                // kCredit abort / shutdown
  bool steal_wanted = false;             // kStealReq pending, cleared on donate
  bool shutdown = false;

  // Armed while dedupe is on: kFpVerdicts frames route here from
  // handle_control, so verdicts can be consumed by every pump site (the
  // abort probe, the blocking drains, the between-jobs serve loop).
  RemoteStateStore* fp_store = nullptr;
};

bool handle_control(Session& s, const Frame& f);

// Coordinator silence past the heartbeat timeout means the connection is
// dead even though the socket looks healthy (hang, one-way partition).
void check_liveness(Session& s) {
  if (s.hello.heartbeat_interval_ms == 0) {
    return;
  }
  const auto silent = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - s.last_heard);
  if (silent.count() >= s.hello.heartbeat_timeout_ms) {
    throw WireError("heartbeat timeout: coordinator silent for " +
                    std::to_string(silent.count()) + "ms");
  }
}

// Poll granularity while waiting on the socket with heartbeats armed:
// fine enough to notice a timeout promptly, coarse enough not to spin.
int liveness_tick_ms(const Session& s) {
  const std::uint32_t hb = s.hello.heartbeat_interval_ms;
  return static_cast<int>(std::min<std::uint32_t>(
      std::max<std::uint32_t>(hb / 2, 10), 200));
}

// Drains every frame already queued on the socket without blocking, then
// checks the coordinator's liveness deadline.
void pump(Session& s) {
  for (;;) {
    const int got = s.ch.try_recv(s.in);
    if (got == 0) {
      break;
    }
    if (got < 0) {
      throw WireError("coordinator closed the connection");
    }
    s.last_heard = Clock::now();
    if (!handle_control(s, s.in)) {
      throw WireError("unexpected frame type " +
                      std::to_string(static_cast<int>(s.in.type)) +
                      " during a job");
    }
  }
  check_liveness(s);
}

// Worker-side visited-state store, pipelined: first sightings are batched
// into kFpBatch frames and claimed at the coordinator's sharded fingerprint
// service *asynchronously* - the DFS keeps descending while up to fp_window
// claims are awaiting their packed kFpVerdicts bitmap, instead of stalling
// a full round trip per distinct state.  A local StateTable still caches
// every sighting so repeats prune without touching the wire.
//
// Speculation is kept sound by one invariant: a claim (local insert + batch
// enqueue) is made ONLY when no unverdicted speculative ancestor is on the
// current DFS path, so `spec_` holds at most one entry.  Below an
// unverdicted speculative node dedupe runs claim-off (read-only contains()
// pruning only), which can never orphan a shard claim.  When the verdict
// for the on-path speculative node comes back:
//   - was_new: the walk was right all along; claiming resumes below it.
//   - duplicate: the subtree is a transposition - cancel_floor_ prunes
//     every deeper node until DFS preorder re-surfaces at or above the
//     cancelled depth (the walked part is a sound overcount; no claims
//     were made inside it, so nothing is orphaned).
// A verdict whose node was already popped needs no action: its subtree is
// fully walked, again a sound overcount.  On all-distinct workloads every
// verdict is was_new, nothing cancels, and the walk is bit-identical to
// the synchronous protocol's.
class RemoteStateStore final : public check::StateStore {
 public:
  explicit RemoteStateStore(Session& session)
      : session_(session), local_(check::StateTable::Options{.audit = false}) {
    session_.fp_store = this;
  }
  ~RemoteStateStore() override { session_.fp_store = nullptr; }

  bool insert(util::Fingerprint fp,
              const std::function<std::string()>& canonical = {}) override {
    // The DFS engine calls insert_at; treat a depthless insert as deeper
    // than any speculative ancestor (claim-off under speculation).
    return insert_at(fp, std::numeric_limits<std::size_t>::max(), canonical);
  }

  bool insert_at(util::Fingerprint fp, std::size_t depth,
                 const std::function<std::string()>& canonical = {}) override {
    Session& s = session_;
    if (!sent_batches_.empty()) {
      poll_frames();  // retire any verdicts already on the socket
    }
    if (cancel_floor_.has_value()) {
      if (depth > *cancel_floor_) {
        return false;  // still inside the cancelled duplicate subtree
      }
      cancel_floor_.reset();  // preorder left the subtree; dedupe resumes
    }
    if (spec_.has_value()) {
      if (depth <= spec_->depth) {
        // Backtracked past the speculative node before its verdict came
        // in: its subtree is fully walked, so a late duplicate verdict
        // must not cancel anything - drop the on-path marker.
        spec_.reset();
      } else {
        // Below an unverdicted speculative ancestor: a claim here could be
        // orphaned if the ancestor cancels, so dedupe is claim-off - only
        // the read-only local cache may prune.  Flush the partial batch so
        // the ancestor's verdict round trip overlaps this descent.
        flush_batch();
        if (local_.contains(fp)) {
          ++hits_;
          return false;
        }
        return true;
      }
    }
    if (!local_.insert(fp)) {
      ++hits_;
      return false;
    }
    // First local sighting: enqueue the claim and walk speculatively.
    batch_.fps.push_back(fp);
    if (audit()) {
      batch_.has_canonical = true;
      batch_.canonicals.push_back(canonical ? canonical() : std::string{});
    }
    spec_ = Spec{next_claim_id_++, depth};
    if (batch_.fps.size() >=
        std::max<std::uint32_t>(session_.hello.fp_batch, 1)) {
      flush_batch();
    }
    if (outstanding() >= std::max<std::uint32_t>(session_.hello.fp_window, 1)) {
      // Window full: the pipeline is as deep as negotiated; block until
      // the oldest batch's verdicts land.
      flush_batch();
      while (outstanding() >=
             std::max<std::uint32_t>(session_.hello.fp_window, 1)) {
        drain_one();
      }
    }
    return true;
  }

  // FIFO verdict retirement: `count` must equal the oldest in-flight
  // batch's size (claims carry no explicit ids on the wire; both sides
  // count).
  void on_verdicts(const FpVerdictsMsg& m) {
    if (sent_batches_.empty() || m.count != sent_batches_.front()) {
      throw WireError(
          "fingerprint verdict count " + std::to_string(m.count) +
          " does not match the oldest in-flight batch (" +
          (sent_batches_.empty() ? std::string("none")
                                 : std::to_string(sent_batches_.front())) +
          ")");
    }
    sent_batches_.pop_front();
    for (std::uint32_t i = 0; i < m.count; ++i) {
      const std::uint64_t id = next_verdict_id_++;
      const bool was_new = m.was_new(i);
      if (!was_new) {
        ++hits_;
      }
      if (spec_.has_value() && spec_->id == id) {
        if (!was_new) {
          cancel_floor_ = spec_->depth;  // duplicate: cancel the subtree
        }
        spec_.reset();
      }
    }
  }

  // Abort-probe hook: push any partial batch out so claims never sit
  // unflushed longer than one probe interval.
  void flush_partial() { flush_batch(); }

  // Blocks until every claim has its verdict; called before kJobResult /
  // kJobError so no fingerprint traffic straddles a job boundary.
  void end_job() {
    flush_batch();
    while (next_verdict_id_ != next_claim_id_) {
      drain_one();
    }
    spec_.reset();
    cancel_floor_.reset();
  }

  // A reconnect abandons the connection the in-flight batches were sent
  // on; the verdict pipeline restarts from zero (the local cache and its
  // already-recorded answers survive).
  void reset_pipeline() {
    batch_.fps.clear();
    batch_.canonicals.clear();
    batch_.has_canonical = false;
    sent_batches_.clear();
    next_claim_id_ = 0;
    next_verdict_id_ = 0;
    spec_.reset();
    cancel_floor_.reset();
  }

  [[nodiscard]] bool audit() const noexcept override {
    return session_.hello.dedupe_audit;
  }

  // Local lower bound; the coordinator owns the global count (shard sums).
  [[nodiscard]] std::size_t states() const override { return local_.states(); }

  [[nodiscard]] std::size_t hits() const noexcept override { return hits_; }

 private:
  struct Spec {
    std::uint64_t id = 0;     // claim id awaiting its verdict
    std::size_t depth = 0;    // DFS depth of the speculative node
  };

  [[nodiscard]] std::uint64_t outstanding() const {
    return next_claim_id_ - next_verdict_id_;
  }

  void flush_batch() {
    if (batch_.fps.empty()) {
      return;
    }
    Session& s = session_;
    s.out.clear();
    encode_fp_batch(s.out, batch_);
    s.ch.send(MsgType::kFpBatch, s.out);
    sent_batches_.push_back(static_cast<std::uint32_t>(batch_.fps.size()));
    batch_.fps.clear();
    batch_.canonicals.clear();
    batch_.has_canonical = false;
  }

  // Handles every frame already queued on the socket without blocking.
  void poll_frames() {
    Session& s = session_;
    for (;;) {
      const int got = s.ch.try_recv(s.in);
      if (got == 0) {
        return;
      }
      if (got < 0) {
        throw WireError("coordinator closed the connection");
      }
      s.last_heard = Clock::now();
      if (!handle_control(s, s.in)) {
        throw WireError("unexpected frame type " +
                        std::to_string(static_cast<int>(s.in.type)) +
                        " during a job");
      }
    }
  }

  // Blocks for one frame (any type - control frames are handled in place,
  // so credits and steal requests are never stalled by dedupe traffic),
  // honoring the liveness deadline.
  void drain_one() {
    Session& s = session_;
    for (;;) {
      if (s.hello.heartbeat_interval_ms != 0 &&
          !s.ch.wait(liveness_tick_ms(s))) {
        check_liveness(s);
        continue;
      }
      if (!s.ch.recv(s.in)) {
        throw WireError("coordinator closed the connection (verdict wait)");
      }
      s.last_heard = Clock::now();
      if (!handle_control(s, s.in)) {
        throw WireError("unexpected frame type " +
                        std::to_string(static_cast<int>(s.in.type)) +
                        " while awaiting fp verdicts");
      }
      return;
    }
  }

  Session& session_;
  check::StateTable local_;
  std::size_t hits_ = 0;

  FpBatchMsg batch_;                        // claims not yet flushed
  std::deque<std::uint32_t> sent_batches_;  // in-flight batch sizes, FIFO
  std::uint64_t next_claim_id_ = 0;
  std::uint64_t next_verdict_id_ = 0;
  std::optional<Spec> spec_;                // the one on-path unverdicted claim
  std::optional<std::size_t> cancel_floor_;  // prune depths > floor
};

// Handles one control frame; every frame type a worker can legally receive
// outside the job handshake.  Returns false for frame types the caller
// must handle itself.
bool handle_control(Session& s, const Frame& f) {
  switch (f.type) {
    case MsgType::kCredit: {
      WireReader r = f.reader();
      const CreditMsg credit = decode_credit(r);
      if (credit.id == s.job_id) {
        if (credit.abort) {
          s.abort_job = true;
        } else {
          s.budget.store(credit.budget, std::memory_order_relaxed);
        }
      }
      return true;
    }
    case MsgType::kStealReq:
      s.steal_wanted = true;
      return true;
    case MsgType::kPing: {
      WireReader r = f.reader();
      const PingMsg ping = decode_ping(r);
      PongMsg pong;
      pong.nonce = ping.nonce;
      s.out.clear();
      encode_pong(s.out, pong);
      s.ch.send(MsgType::kPong, s.out);
      return true;
    }
    case MsgType::kPong:
      return true;  // liveness bookkeeping happened at recv
    case MsgType::kFpVerdicts: {
      if (s.fp_store == nullptr) {
        return false;  // verdicts with dedupe off: protocol violation
      }
      WireReader r = f.reader();
      s.fp_store->on_verdicts(decode_fp_verdicts(r));
      return true;
    }
    case MsgType::kShutdown:
      s.shutdown = true;
      s.abort_job = true;
      return true;
    default:
      return false;
  }
}

void run_job(Session& s, const JobMsg& job,
             const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
             check::detail::WarmPool& pool, check::StateStore* store) {
  s.job_id = job.id;
  s.live.store(0, std::memory_order_relaxed);
  s.budget.store(job.budget, std::memory_order_relaxed);
  s.abort_job = false;

  check::detail::SubtreeOptions sub;
  sub.max_steps = static_cast<std::size_t>(s.hello.max_steps);
  sub.max_executions = static_cast<std::size_t>(job.budget);
  sub.record_traces = s.hello.record_traces;
  sub.warm_worlds = static_cast<std::size_t>(s.hello.warm_worlds);
  sub.max_crashes = static_cast<std::size_t>(s.hello.max_crashes);
  // A job re-queued after a lost deduped attempt runs with dedupe off (the
  // lost attempt's claims survive in the shard table and must not prune
  // the re-run) - the coordinator marks it no_dedupe.
  sub.dedupe_states = s.hello.dedupe_states && !job.no_dedupe;
  sub.dedupe_adaptive = s.hello.dedupe_adaptive && !job.no_dedupe;
  sub.por = s.hello.por;
  sub.table = job.no_dedupe ? nullptr : store;
  sub.live_executions = &s.live;

  check::detail::JobContext ctx;
  if (!job.choices.empty()) {
    ctx.root_choices = &job.choices;
    ctx.root_sleep = &job.sleep;
    ctx.root_sleep_inherited = job.sleep_inherited;
  }
  ctx.pool = &pool;
  ctx.split.want = [&s] { return s.steal_wanted; };
  ctx.split.take = [&s, &pool](check::detail::Donation& d) {
    // The donated warm world never crosses the wire (the thief re-replays
    // the prefix remotely); keep it parked for our own backtracks.
    if (d.warm != nullptr) {
      pool.park(std::move(d.warm));
    }
    DonateMsg msg;
    msg.parent = s.job_id;
    msg.prefix = std::move(d.prefix);
    msg.choices = std::move(d.choices);
    msg.sleep = std::move(d.sleep);
    msg.sleep_inherited = static_cast<std::uint32_t>(d.sleep_inherited);
    s.out.clear();
    encode_donate(s.out, msg);
    s.ch.send(MsgType::kDonate, s.out);
    s.steal_wanted = false;  // one donation per request
    s.log->line("worker %u: donated prefix=%zu choices=%zu (job %llu)",
                s.hello.worker, msg.prefix.size(), msg.choices.size(),
                static_cast<unsigned long long>(s.job_id));
    return true;
  };

  std::uint64_t last_reported = 0;
  std::uint64_t probes = 0;
  // The probe runs after every execution; a recvmsg syscall each time
  // costs more than a small-step execution does (the socket is empty
  // almost always).  Draining every probe_interval-th probe (negotiated in
  // the hello; ScheduleExploreOptions::dist_probe_interval, default 16)
  // keeps steal-request and credit latency at a few executions while
  // cutting the syscall rate - the toll the dist-workers-2 vs parallel-2
  // smoke gate bounds.  Interval 1 drains at every execution boundary,
  // the cadence the wire bit-parity tests pin.
  const std::uint64_t probe_interval =
      std::max<std::uint64_t>(s.hello.probe_interval, 1);
  auto abort = [&]() -> bool {
    if (probes++ % probe_interval == 0) {
      pump(s);
      if (s.fp_store != nullptr) {
        // Claims never sit unflushed longer than one probe interval even
        // when the DFS stops seeing new states.
        s.fp_store->flush_partial();
      }
    }
    const std::uint64_t n = s.live.load(std::memory_order_relaxed);
    if (job.fault_after != 0 && n >= job.fault_after) {
      // Test instrumentation: simulate a worker crash mid-job.  _Exit skips
      // every destructor, exactly like a killed process.
      s.log->line("worker %u: fault injection at %llu executions",
                  s.hello.worker, static_cast<unsigned long long>(n));
      std::_Exit(3);
    }
    if (n - last_reported >= s.hello.live_interval) {
      LiveMsg live;
      live.id = s.job_id;
      live.executions = n;
      s.out.clear();
      encode_live(s.out, live);
      s.ch.send(MsgType::kLive, s.out);
      last_reported = n;
    }
    if (s.abort_job) {
      return true;
    }
    return n >= s.budget.load(std::memory_order_relaxed);
  };

  try {
    check::detail::SubtreeResult result =
        check::detail::explore_job(factory, job.prefix, sub, abort, &ctx);
    if (s.fp_store != nullptr) {
      // Every claim gets its verdict before the result frame: fingerprint
      // traffic never straddles a job boundary.
      s.fp_store->end_job();
    }
    JobResultMsg msg;
    msg.id = job.id;
    msg.result = std::move(result);
    s.out.clear();
    encode_job_result(s.out, msg);
    s.ch.send(MsgType::kJobResult, s.out);
    s.log->line("worker %u: job %llu done, %zu executions", s.hello.worker,
                static_cast<unsigned long long>(job.id),
                msg.result.executions);
  } catch (const WireError&) {
    throw;  // the connection itself failed; nothing further to send
  } catch (const std::exception& e) {
    if (s.fp_store != nullptr) {
      s.fp_store->end_job();  // throws WireError if the connection is gone
    }
    JobErrorMsg msg;
    msg.id = job.id;
    msg.message = e.what();
    s.out.clear();
    encode_job_error(s.out, msg);
    s.ch.send(MsgType::kJobError, s.out);
    s.log->line("worker %u: job %llu failed: %s", s.hello.worker,
                static_cast<unsigned long long>(job.id), e.what());
  }
}

// Handshake + serve loop for one (re)connection of a session.  The first
// connection's hello fixes the session options and builds the factory,
// warm pool and dedupe store; a reconnect re-handshakes (HelloAck.resume
// echoing the prior token) and reuses them all.  Returns true on a clean
// end: kShutdown, a rejected hello, or - when `eof_is_clean` - EOF while
// idle.  Throws WireError when the connection is lost.
bool serve_session(
    Session& s,
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    std::function<std::unique_ptr<ExplorableWorld>()>& make,
    std::unique_ptr<check::detail::WarmPool>& pool,
    std::unique_ptr<RemoteStateStore>& store, bool eof_is_clean) {
  if (!s.ch.recv(s.in) || s.in.type != MsgType::kHello) {
    throw WireError("expected hello");
  }
  s.last_heard = Clock::now();
  HelloMsg hello;
  {
    WireReader r = s.in.reader();
    hello = decode_hello(r);
  }

  HelloAckMsg ack;
  if (s.have_hello) {
    // Reconnect: the coordinator's hello is provisional; answer with the
    // prior session token so the acceptor can route this socket back to
    // our serve thread.  Session options stay as first negotiated.
    ack.resume = true;
    ack.session = s.token;
  } else {
    s.hello = hello;
    s.token = hello.session;
    ack.session = hello.session;
    if (make == nullptr) {
      make = factory;
    }
    if (make == nullptr) {
      if (s.hello.world.empty()) {
        ack.ok = false;
        ack.error = "hello named no world and the worker holds no factory";
      } else {
        check::CrashWorldSpec spec;
        spec.world = s.hello.world;
        spec.f = static_cast<std::size_t>(s.hello.f);
        spec.m = static_cast<std::size_t>(s.hello.m);
        spec.step_budget = static_cast<std::size_t>(s.hello.step_budget);
        try {
          make = check::make_crash_world_factory(spec);
        } catch (const std::exception& e) {
          ack.ok = false;
          ack.error = e.what();
        }
      }
    }
  }
  s.out.clear();
  encode_hello_ack(s.out, ack);
  s.ch.send(MsgType::kHelloAck, s.out);
  if (!ack.ok) {
    s.log->line("worker %u: rejected hello: %s", s.hello.worker,
                ack.error.c_str());
    return true;
  }
  if (!s.have_hello) {
    s.have_hello = true;
    s.log->line(
        "worker %u: serving (world=%s dedupe=%d por=%d crashes=%llu "
        "heartbeat=%ums)",
        s.hello.worker,
        s.hello.world.empty() ? "<local factory>" : s.hello.world.c_str(),
        s.hello.dedupe_states ? 1 : 0, s.hello.por ? 1 : 0,
        static_cast<unsigned long long>(s.hello.max_crashes),
        s.hello.heartbeat_interval_ms);
    // The warm pool and the dedupe cache persist across jobs (and across
    // reconnects), like a parallel-explorer worker's do across claims.
    pool = std::make_unique<check::detail::WarmPool>(
        static_cast<std::size_t>(s.hello.warm_worlds),
        /*adaptive=*/true, static_cast<std::size_t>(s.hello.warm_worlds));
    if (s.hello.dedupe_states) {
      store = std::make_unique<RemoteStateStore>(s);
    }
  } else {
    s.log->line("worker %u: session resumed", s.hello.worker);
    if (store != nullptr) {
      // The in-flight batches died with the old connection; the verdict
      // pipeline restarts from zero (the local cache survives).
      store->reset_pipeline();
    }
  }

  while (!s.shutdown) {
    if (s.hello.heartbeat_interval_ms != 0) {
      if (!s.ch.wait(liveness_tick_ms(s))) {
        check_liveness(s);
        continue;
      }
    }
    if (!s.ch.recv(s.in)) {
      if (eof_is_clean) {
        break;  // coordinator gone; nothing left to serve
      }
      throw WireError("coordinator closed the connection");
    }
    s.last_heard = Clock::now();
    if (handle_control(s, s.in)) {
      continue;
    }
    if (s.in.type != MsgType::kJob) {
      throw WireError("unexpected frame type " +
                      std::to_string(static_cast<int>(s.in.type)) +
                      " between jobs");
    }
    JobMsg job;
    {
      WireReader r = s.in.reader();
      job = decode_job(r);
    }
    s.steal_wanted = false;  // requests for a previous job are stale
    run_job(s, job, make, *pool, store.get());
  }
  if (s.shutdown) {
    s.log->line("worker %u: shutdown", s.hello.worker);
  }
  return true;
}

}  // namespace

void serve_connection(
    int fd,
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const std::string& log_path, const FaultPlan& faults) {
  Log log(log_path);
  Session s;
  s.log = &log;
  s.faults = faults;
  s.ch.adopt(fd);
  if (s.faults.any()) {
    s.ch.set_faults(&s.faults);
  }
  std::function<std::unique_ptr<ExplorableWorld>()> make;
  std::unique_ptr<check::detail::WarmPool> pool;
  std::unique_ptr<RemoteStateStore> store;
  try {
    serve_session(s, factory, make, pool, store, /*eof_is_clean=*/true);
  } catch (const std::exception& e) {
    log.line("worker %u: connection error: %s", s.hello.worker, e.what());
  }
}

int run_worker(
    const std::function<std::unique_ptr<ExplorableWorld>()>& factory,
    const WorkerOptions& options) {
  Log log(options.log_path);
  Session s;
  s.log = &log;
  s.faults = options.faults;
  std::function<std::unique_ptr<ExplorableWorld>()> make;
  std::unique_ptr<check::detail::WarmPool> pool;
  std::unique_ptr<RemoteStateStore> store;

  try {
    s.ch.adopt(connect_tcp(options.host, options.port,
                           std::chrono::milliseconds(10'000), options.seed));
  } catch (const std::exception& e) {
    log.line("worker: initial dial failed: %s", e.what());
    return 1;
  }
  if (s.faults.any()) {
    s.ch.set_faults(&s.faults);
  }

  for (;;) {
    try {
      // EOF while idle is clean only when reconnect is off; with it on, an
      // idle EOF is the coordinator cutting a dead connection and the
      // session should re-dial (the run may still be live).
      serve_session(s, factory, make, pool, store,
                    /*eof_is_clean=*/options.reconnect_window_ms == 0);
      return 0;
    } catch (const std::exception& e) {
      if (s.shutdown || options.reconnect_window_ms == 0) {
        log.line("worker %u: connection error: %s", s.hello.worker, e.what());
        return s.shutdown ? 0 : 1;
      }
      log.line("worker %u: connection lost (%s); re-dialing", s.hello.worker,
               e.what());
    }
    try {
      const int fd = connect_tcp(
          options.host, options.port,
          std::chrono::milliseconds(options.reconnect_window_ms),
          options.seed);
      s.ch.adopt(fd);
      if (s.faults.any()) {
        s.ch.set_faults(&s.faults);
      }
    } catch (const std::exception& e) {
      log.line("worker %u: gave up reconnecting: %s", s.hello.worker,
               e.what());
      return 1;
    }
  }
}

int serve_forever(const std::string& host, std::uint16_t port) {
  const char* log_dir = std::getenv("REVISIM_DIST_LOG");
  FaultPlan faults;
  if (const char* spec = std::getenv("REVISIM_FAULT_PLAN")) {
    try {
      faults = parse_fault_plan(spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: REVISIM_FAULT_PLAN: %s\n", e.what());
      return 1;
    }
  }
  int listen_fd = -1;
  try {
    listen_fd = listen_tcp(host, port);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "serve: listening on %s:%u\n", host.c_str(),
               static_cast<unsigned>(port));
  for (;;) {
    int fd = -1;
    try {
      fd = accept_tcp(listen_fd, /*timeout_ms=*/-1);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: accept: %s\n", e.what());
      continue;
    }
    if (fd < 0) {
      continue;
    }
    std::string log_path;
    if (log_dir != nullptr) {
      log_path = std::string(log_dir) + "/worker-serve-" +
                 std::to_string(::getpid()) + ".log";
    }
    serve_connection(fd, nullptr, log_path, faults);
  }
}

}  // namespace revisim::dist
