// Distributed exploration coordinator.
//
// Mirrors the in-process work-stealing explorer one level up: the unit of
// work is the same prefix-identified job, the hungry hint becomes a
// kStealReq RPC, the cap/abort coupling becomes periodic live-counter
// credit messages, and the final accounting is the identical key-sorted
// merge (src/check/explore_merge.h) - so executions / exhausted / verdict /
// lex-smallest witness stay bit-identical to the serial engine at any
// worker count, with dedupe off.  With dedupe on, the coordinator hosts a
// sharded-by-fingerprint-prefix StateTable service, extending
// claim-then-walk pruning across worker processes (verdict parity;
// states_seen bounded by the serial count on exhausted searches).
//
// Failure semantics (the full fault x detector x recovery x guarantee
// matrix lives in DESIGN.md):
//   - Liveness: kPing/kPong heartbeats with monotonic deadlines on both
//     sides distinguish a hung peer from a slow one; silence past
//     heartbeat_timeout_ms cuts the connection.  The v2 frame header's
//     sequence number + crc turn dropped, duplicated and corrupted frames
//     into deterministic connection cuts too.
//   - A worker that disconnects mid-job has the job re-queued (up to
//     job_retries times); every region the lost attempt donated is
//     CANCELLED, recursively, because the re-run walks the job's full
//     original region - so requeue preserves bit-exact merge accounting
//     even after donations.  With dedupe_states on, the lost attempt's
//     claim-then-walk claims survive in the shard table, so the re-run
//     (and every region it donates, recursively) executes with dedupe off
//     - it can never be pruned by an orphaned claim, so nothing is
//     under-explored, and states_seen stays bounded by the serial count.
//   - The worker keeps its session: it re-dials with backoff and
//     re-handshakes under its prior session token, and the coordinator's
//     acceptor hands the fresh socket back to the waiting serve thread
//     (reconnect_window_ms bounds the wait).  In-flight live-counter
//     credit is zeroed on requeue, never double counted.
//   - A run journal (journal_path) records created jobs and completed
//     walks; after a coordinator crash, resume=true reloads it, reuses
//     completed regions, re-runs incomplete ones and discards their
//     descendants - the resumed merge is bit-identical to an
//     uninterrupted run.
//   - If every worker is permanently lost with work outstanding, the run
//     returns a partial summary naming the loss instead of hanging.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/check/crash_worlds.h"
#include "src/check/model_check.h"
#include "src/dist/fault_channel.h"

namespace revisim::dist {

struct DistExploreOptions {
  check::ScheduleExploreOptions base{};
  std::size_t workers = 2;       // fork-mode worker process count
  std::size_t job_retries = 2;   // re-queues after a lost or throwing job
  std::chrono::milliseconds time_limit{0};  // 0 = unlimited
  std::uint64_t live_interval = 256;  // executions between kLive messages
  std::size_t fp_shards = 4;     // fingerprint-service shards (dedupe only)
  // Fingerprint pipeline (dedupe only): workers batch first-sighting
  // claims into kFpBatch frames of up to fp_batch fingerprints and keep
  // descending speculatively while at most fp_window claims are awaiting
  // kFpVerdicts; a duplicate verdict cancels the speculative subtree.
  // fp_batch 1 degenerates to per-state round trips; fp_window must be
  // >= fp_batch.
  std::uint32_t fp_batch = 32;
  std::uint32_t fp_window = 128;
  // Turn the hungry hint into kStealReq RPCs.  Off, the tree is never
  // split: one worker walks the seed job alone while the rest idle -
  // useful when jobs are tiny relative to wire latency, and for tests
  // that need a donation-free run.
  bool steal_requests = true;

  // --- liveness / recovery ---------------------------------------------
  // Heartbeat cadence: the coordinator pings every idle or busy connection
  // on this interval and both sides declare the peer dead after
  // heartbeat_timeout_ms of silence.  interval 0 disables the liveness
  // layer (a partitioned peer is then only detected by socket errors).
  std::uint32_t heartbeat_interval_ms = 500;
  std::uint32_t heartbeat_timeout_ms = 10'000;
  // How long a serve thread holds a dead worker's session open waiting for
  // it to re-dial and re-handshake (fork mode: via the kept-open listener;
  // cluster mode: the coordinator re-dials the endpoint itself).  0
  // disables reconnect: a lost connection is a lost worker.
  std::uint32_t reconnect_window_ms = 10'000;

  // --- run journal / checkpoint-resume ---------------------------------
  // Nonempty: append a durable run journal here (src/dist/journal.h).
  std::string journal_path;
  // journal_path holds a prior (interrupted) run: load it, reuse finished
  // regions, re-run the rest.  The journal's recorded config must match.
  bool resume = false;
  // Opaque world tag pinned in the journal config (the CLI records its
  // world flags here); resume refuses a journal with a different tag.
  std::string journal_tag;

  // --- deterministic fault injection (tests / CI) ----------------------
  // Outbound fault plans: coordinator_faults perturbs every C->W send
  // (re-seeded per connection), worker_faults is shipped to forked workers
  // (re-seeded per worker) and perturbs their W->C sends.
  FaultPlan coordinator_faults;
  FaultPlan worker_faults;

  // Test instrumentation: the first job shipped to any worker orders that
  // worker to _exit() after this many executions (0 = off), exercising the
  // crash-recovery path deterministically.
  std::uint64_t fault_first_job_after = 0;
  // Test instrumentation: stop the run (as if the coordinator died) after
  // this many job completions (0 = off).  With a journal this leaves
  // exactly the on-disk state a killed coordinator would, for resume
  // tests that cannot rely on kill timing.
  std::uint64_t halt_after_jobs = 0;
};

// Runs one exploration over already-connected worker sockets (ownership
// taken; sockets are closed on return).  `spec` names the registry world
// cluster workers must build; pass nullptr when every worker was forked
// from this process and owns the factory already.  `reconnect_listen_fd`,
// when >= 0, is a listening socket (NOT owned; the caller closes it) on
// which disconnected fork-mode workers re-dial; -1 disables acceptor-based
// reconnect.  `endpoints`, when non-null, records each worker's dialable
// (host, port) so a lost cluster connection is re-dialed by the
// coordinator instead.
check::ScheduleExploreResult coordinate(
    std::vector<int> worker_fds, const DistExploreOptions& options,
    const check::CrashWorldSpec* spec, int reconnect_listen_fd = -1,
    const std::vector<std::pair<std::string, std::uint16_t>>* endpoints =
        nullptr);

// Single-binary localhost mode: forks `options.workers` worker processes
// connected over loopback TCP, coordinates the run, shuts the workers down
// and reaps them.  Fork happens before any coordinator thread starts, so
// the mode is safe under TSan.  The listener stays open for the run so
// lost workers can re-dial.  This is what tests, the benchmark and
// `revisim_cli dist-explore --workers N` use.
check::ScheduleExploreResult dist_explore_schedules(
    const std::function<std::unique_ptr<check::ExplorableWorld>()>& factory,
    const DistExploreOptions& options);

// Cluster mode: connects to `host:port` endpoints running `revisim_cli
// serve` and ships them `spec` to build.  Throws WireError if any endpoint
// is unreachable or rejects the hello.
check::ScheduleExploreResult dist_explore_remote(
    const check::CrashWorldSpec& spec,
    const std::vector<std::string>& endpoints,
    const DistExploreOptions& options);

}  // namespace revisim::dist
