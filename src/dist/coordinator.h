// Distributed exploration coordinator.
//
// Mirrors the in-process work-stealing explorer one level up: the unit of
// work is the same prefix-identified job, the hungry hint becomes a
// kStealReq RPC, the cap/abort coupling becomes periodic live-counter
// credit messages, and the final accounting is the identical key-sorted
// merge (src/check/explore_merge.h) - so executions / exhausted / verdict /
// lex-smallest witness stay bit-identical to the serial engine at any
// worker count, with dedupe off.  With dedupe on, the coordinator hosts a
// sharded-by-fingerprint-prefix StateTable service, extending
// claim-then-walk pruning across worker processes (verdict parity;
// states_seen bounded by the serial count on exhausted searches).
//
// Failure semantics: a worker that disconnects mid-job has its job
// re-queued to the surviving workers, up to `job_retries` times - unless
// the attempt already donated regions (a retry would re-explore them), in
// which case the job fails and the run degrades to the same partial-summary
// contract the in-process explorer uses.  If every worker disconnects with
// work outstanding, the run returns a partial summary naming the loss
// instead of hanging.  Workers that lose the coordinator keep their
// claim-time execution budget, so a partition degrades to local caps, never
// to unbounded work.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/check/crash_worlds.h"
#include "src/check/model_check.h"

namespace revisim::dist {

struct DistExploreOptions {
  check::ScheduleExploreOptions base{};
  std::size_t workers = 2;       // fork-mode worker process count
  std::size_t job_retries = 2;   // re-queues after a lost or throwing job
  std::chrono::milliseconds time_limit{0};  // 0 = unlimited
  std::uint64_t live_interval = 256;  // executions between kLive messages
  std::size_t fp_shards = 4;     // fingerprint-service shards (dedupe only)
  // Turn the hungry hint into kStealReq RPCs.  Off, the tree is never
  // split: one worker walks the seed job alone while the rest idle -
  // useful when jobs are tiny relative to wire latency, and for tests
  // that need a donation-free run.
  bool steal_requests = true;
  // Test instrumentation: the first job shipped to any worker orders that
  // worker to _exit() after this many executions (0 = off), exercising the
  // crash-recovery path deterministically.
  std::uint64_t fault_first_job_after = 0;
};

// Runs one exploration over already-connected worker sockets (ownership
// taken; sockets are closed on return).  `spec` names the registry world
// cluster workers must build; pass nullptr when every worker was forked
// from this process and owns the factory already.
check::ScheduleExploreResult coordinate(std::vector<int> worker_fds,
                                        const DistExploreOptions& options,
                                        const check::CrashWorldSpec* spec);

// Single-binary localhost mode: forks `options.workers` worker processes
// connected over loopback TCP, coordinates the run, shuts the workers down
// and reaps them.  Fork happens before any coordinator thread starts, so
// the mode is safe under TSan.  This is what tests, the benchmark and
// `revisim_cli dist-explore --workers N` use.
check::ScheduleExploreResult dist_explore_schedules(
    const std::function<std::unique_ptr<check::ExplorableWorld>()>& factory,
    const DistExploreOptions& options);

// Cluster mode: connects to `host:port` endpoints running `revisim_cli
// serve` and ships them `spec` to build.  Throws WireError if any endpoint
// is unreachable or rejects the hello.
check::ScheduleExploreResult dist_explore_remote(
    const check::CrashWorldSpec& spec,
    const std::vector<std::string>& endpoints,
    const DistExploreOptions& options);

}  // namespace revisim::dist
