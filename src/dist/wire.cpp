#include "src/dist/wire.h"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "src/util/crc32.h"

namespace revisim::dist {
namespace {

using runtime::ProcessId;

constexpr std::uint64_t kWireCrashBit = std::uint64_t{1} << 63;

// The largest pid a wire entry can carry on this host: ProcessId may be
// narrower than 64 bits, and its own top bit is the crash flag.
constexpr std::uint64_t kMaxWirePid =
    static_cast<std::uint64_t>(runtime::kCrashEntryBit) - 1;

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

std::uint64_t entry_to_wire(ProcessId entry) {
  if (runtime::is_crash_entry(entry)) {
    return static_cast<std::uint64_t>(runtime::crash_entry_target(entry)) |
           kWireCrashBit;
  }
  return static_cast<std::uint64_t>(entry);
}

ProcessId entry_from_wire(std::uint64_t wire) {
  const bool crash = (wire & kWireCrashBit) != 0;
  const std::uint64_t pid = wire & ~kWireCrashBit;
  if (pid > kMaxWirePid) {
    throw WireError("wire schedule entry pid " + std::to_string(pid) +
                    " does not fit the host ProcessId");
  }
  const auto p = static_cast<ProcessId>(pid);
  return crash ? runtime::make_crash_entry(p) : p;
}

// --- WireWriter --------------------------------------------------------------

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::str(const std::string& v) {
  if (v.size() > kMaxFrameBytes) {
    throw WireError("string too large to serialize");
  }
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void WireWriter::schedule(const std::vector<ProcessId>& entries) {
  if (entries.size() > kMaxFrameBytes / 8) {
    throw WireError("schedule too large to serialize");
  }
  u32(static_cast<std::uint32_t>(entries.size()));
  for (const ProcessId e : entries) {
    entry(e);
  }
}

void WireWriter::fingerprint(util::Fingerprint fp) {
  u64(fp.hi);
  u64(fp.lo);
}

// --- WireReader --------------------------------------------------------------

void WireReader::need(std::size_t n) const {
  if (size_ - off_ < n) {
    throw WireError("truncated wire payload (need " + std::to_string(n) +
                    " bytes at offset " + std::to_string(off_) + " of " +
                    std::to_string(size_) + ")");
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return p_[off_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(v | (std::uint16_t{p_[off_ + i]} << (8 * i)));
  }
  off_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::uint32_t{p_[off_ + i]} << (8 * i);
  }
  off_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t{p_[off_ + i]} << (8 * i);
  }
  off_ += 8;
  return v;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string v(reinterpret_cast<const char*>(p_ + off_), n);
  off_ += n;
  return v;
}

std::vector<ProcessId> WireReader::schedule() {
  const std::uint32_t n = u32();
  // Each entry is 8 bytes; reject counts the remaining payload cannot hold
  // before reserving (a corrupt count must not become a huge allocation).
  need(static_cast<std::size_t>(n) * 8);
  std::vector<ProcessId> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    v.push_back(entry());
  }
  return v;
}

util::Fingerprint WireReader::fingerprint() {
  util::Fingerprint fp;
  fp.hi = u64();
  fp.lo = u64();
  return fp;
}

void WireReader::raw(std::uint8_t* out, std::size_t n) {
  need(n);
  std::copy(p_ + off_, p_ + off_ + n, out);
  off_ += n;
}

void WireReader::expect_done() const {
  if (off_ != size_) {
    throw WireError("trailing bytes in wire payload (" +
                    std::to_string(size_ - off_) + " unread)");
  }
}

// --- typed messages ----------------------------------------------------------

void encode_hello(WireWriter& w, const HelloMsg& m) {
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u32(m.worker);
  w.u64(m.session);
  w.u32(m.heartbeat_interval_ms);
  w.u32(m.heartbeat_timeout_ms);
  w.u64(m.max_steps);
  w.u64(m.warm_worlds);
  w.u64(m.max_crashes);
  w.u8(m.record_traces ? 1 : 0);
  w.u8(m.dedupe_states ? 1 : 0);
  w.u8(m.dedupe_audit ? 1 : 0);
  w.u8(m.dedupe_adaptive ? 1 : 0);
  w.u8(m.por ? 1 : 0);
  w.u64(m.live_interval);
  w.str(m.world);
  w.u64(m.f);
  w.u64(m.m);
  w.u64(m.step_budget);
  w.u64(m.probe_interval);
  w.u32(m.fp_batch);
  w.u32(m.fp_window);
}

HelloMsg decode_hello(WireReader& r) {
  if (r.u32() != kWireMagic) {
    throw WireError("hello: bad magic (not a revisim coordinator?)");
  }
  const std::uint16_t version = r.u16();
  if (version != kWireVersion) {
    throw WireError("hello: wire version " + std::to_string(version) +
                    ", this binary speaks " + std::to_string(kWireVersion));
  }
  HelloMsg m;
  m.worker = r.u32();
  m.session = r.u64();
  m.heartbeat_interval_ms = r.u32();
  m.heartbeat_timeout_ms = r.u32();
  m.max_steps = r.u64();
  m.warm_worlds = r.u64();
  m.max_crashes = r.u64();
  m.record_traces = r.u8() != 0;
  m.dedupe_states = r.u8() != 0;
  m.dedupe_audit = r.u8() != 0;
  m.dedupe_adaptive = r.u8() != 0;
  m.por = r.u8() != 0;
  m.live_interval = r.u64();
  m.world = r.str();
  m.f = r.u64();
  m.m = r.u64();
  m.step_budget = r.u64();
  m.probe_interval = r.u64();
  m.fp_batch = r.u32();
  m.fp_window = r.u32();
  r.expect_done();
  return m;
}

void encode_hello_ack(WireWriter& w, const HelloAckMsg& m) {
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u8(m.ok ? 1 : 0);
  w.str(m.error);
  w.u8(m.resume ? 1 : 0);
  w.u64(m.session);
}

HelloAckMsg decode_hello_ack(WireReader& r) {
  if (r.u32() != kWireMagic) {
    throw WireError("hello-ack: bad magic (not a revisim worker?)");
  }
  const std::uint16_t version = r.u16();
  if (version != kWireVersion) {
    throw WireError("hello-ack: wire version " + std::to_string(version) +
                    ", this binary speaks " + std::to_string(kWireVersion));
  }
  HelloAckMsg m;
  m.ok = r.u8() != 0;
  m.error = r.str();
  m.resume = r.u8() != 0;
  m.session = r.u64();
  r.expect_done();
  return m;
}

void encode_job(WireWriter& w, const JobMsg& m) {
  w.u64(m.id);
  w.u64(m.budget);
  w.u64(m.fault_after);
  w.schedule(m.prefix);
  w.schedule(m.choices);
  w.schedule(m.sleep);
  w.u32(m.sleep_inherited);
  w.u8(m.no_dedupe ? 1 : 0);
}

JobMsg decode_job(WireReader& r) {
  JobMsg m;
  m.id = r.u64();
  m.budget = r.u64();
  m.fault_after = r.u64();
  m.prefix = r.schedule();
  m.choices = r.schedule();
  m.sleep = r.schedule();
  m.sleep_inherited = r.u32();
  if (m.sleep_inherited > m.sleep.size()) {
    throw WireError("job sleep_inherited exceeds sleep size");
  }
  m.no_dedupe = r.u8() != 0;
  r.expect_done();
  return m;
}

void encode_subtree_result(WireWriter& w,
                           const check::detail::SubtreeResult& s) {
  w.u64(s.executions);
  w.u8(s.fully_explored ? 1 : 0);
  w.u8(s.violation.has_value() ? 1 : 0);
  w.str(s.violation.has_value() ? *s.violation : std::string());
  w.schedule(s.witness);
  w.u64(s.violation_index);
  w.u64(s.subtrees_pruned);
  w.u64(s.states_seen);
  w.u64(s.donations);
  w.u64(s.replay_steps_saved);
  w.u64(s.por_skipped);
  w.u64(s.dependent_wakeups);
  w.u64(s.footprint_bytes);
  w.u8(s.dedupe_disabled ? 1 : 0);
}

check::detail::SubtreeResult decode_subtree_result(WireReader& r) {
  check::detail::SubtreeResult s;
  s.executions = static_cast<std::size_t>(r.u64());
  s.fully_explored = r.u8() != 0;
  const bool has_violation = r.u8() != 0;
  std::string violation = r.str();
  if (has_violation) {
    s.violation = std::move(violation);
  }
  s.witness = r.schedule();
  s.violation_index = static_cast<std::size_t>(r.u64());
  s.subtrees_pruned = static_cast<std::size_t>(r.u64());
  s.states_seen = static_cast<std::size_t>(r.u64());
  s.donations = static_cast<std::size_t>(r.u64());
  s.replay_steps_saved = r.u64();
  s.por_skipped = static_cast<std::size_t>(r.u64());
  s.dependent_wakeups = static_cast<std::size_t>(r.u64());
  s.footprint_bytes = r.u64();
  s.dedupe_disabled = r.u8() != 0;
  return s;
}

void encode_job_result(WireWriter& w, const JobResultMsg& m) {
  w.u64(m.id);
  encode_subtree_result(w, m.result);
}

JobResultMsg decode_job_result(WireReader& r) {
  JobResultMsg m;
  m.id = r.u64();
  m.result = decode_subtree_result(r);
  r.expect_done();
  return m;
}

void encode_job_error(WireWriter& w, const JobErrorMsg& m) {
  w.u64(m.id);
  w.str(m.message);
}

JobErrorMsg decode_job_error(WireReader& r) {
  JobErrorMsg m;
  m.id = r.u64();
  m.message = r.str();
  r.expect_done();
  return m;
}

void encode_live(WireWriter& w, const LiveMsg& m) {
  w.u64(m.id);
  w.u64(m.executions);
}

LiveMsg decode_live(WireReader& r) {
  LiveMsg m;
  m.id = r.u64();
  m.executions = r.u64();
  r.expect_done();
  return m;
}

void encode_donate(WireWriter& w, const DonateMsg& m) {
  w.u64(m.parent);
  w.schedule(m.prefix);
  w.schedule(m.choices);
  w.schedule(m.sleep);
  w.u32(m.sleep_inherited);
}

DonateMsg decode_donate(WireReader& r) {
  DonateMsg m;
  m.parent = r.u64();
  m.prefix = r.schedule();
  m.choices = r.schedule();
  m.sleep = r.schedule();
  m.sleep_inherited = r.u32();
  if (m.sleep_inherited > m.sleep.size()) {
    throw WireError("donate sleep_inherited exceeds sleep size");
  }
  r.expect_done();
  return m;
}

void encode_credit(WireWriter& w, const CreditMsg& m) {
  w.u64(m.id);
  w.u64(m.budget);
  w.u8(m.abort ? 1 : 0);
}

CreditMsg decode_credit(WireReader& r) {
  CreditMsg m;
  m.id = r.u64();
  m.budget = r.u64();
  m.abort = r.u8() != 0;
  r.expect_done();
  return m;
}

void encode_fp_insert(WireWriter& w, const FpInsertMsg& m) {
  w.fingerprint(m.fp);
  w.u8(m.has_canonical ? 1 : 0);
  w.str(m.canonical);
}

FpInsertMsg decode_fp_insert(WireReader& r) {
  FpInsertMsg m;
  m.fp = r.fingerprint();
  m.has_canonical = r.u8() != 0;
  m.canonical = r.str();
  r.expect_done();
  return m;
}

void encode_fp_reply(WireWriter& w, const FpReplyMsg& m) {
  w.u8(m.was_new ? 1 : 0);
}

FpReplyMsg decode_fp_reply(WireReader& r) {
  FpReplyMsg m;
  m.was_new = r.u8() != 0;
  r.expect_done();
  return m;
}

void encode_fp_batch(WireWriter& w, const FpBatchMsg& m) {
  if (m.fps.size() > kMaxFrameBytes / 16) {
    throw WireError("fingerprint batch too large to serialize");
  }
  if (m.has_canonical && m.canonicals.size() != m.fps.size()) {
    throw WireError("fingerprint batch canonical count mismatch");
  }
  w.u32(static_cast<std::uint32_t>(m.fps.size()));
  for (const util::Fingerprint fp : m.fps) {
    w.fingerprint(fp);
  }
  w.u8(m.has_canonical ? 1 : 0);
  if (m.has_canonical) {
    for (const std::string& c : m.canonicals) {
      w.str(c);
    }
  }
}

FpBatchMsg decode_fp_batch(WireReader& r) {
  FpBatchMsg m;
  const std::uint32_t n = r.u32();
  r.need_ahead(static_cast<std::size_t>(n) * 16);
  m.fps.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    m.fps.push_back(r.fingerprint());
  }
  m.has_canonical = r.u8() != 0;
  if (m.has_canonical) {
    m.canonicals.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      m.canonicals.push_back(r.str());
    }
  }
  r.expect_done();
  return m;
}

void encode_fp_verdicts(WireWriter& w, const FpVerdictsMsg& m) {
  if (m.bitmap.size() != (static_cast<std::size_t>(m.count) + 7) / 8) {
    throw WireError("verdict bitmap length disagrees with verdict count");
  }
  w.u32(m.count);
  w.data(m.bitmap.data(), m.bitmap.size());
}

FpVerdictsMsg decode_fp_verdicts(WireReader& r) {
  FpVerdictsMsg m;
  m.count = r.u32();
  const std::size_t bytes = (static_cast<std::size_t>(m.count) + 7) / 8;
  m.bitmap.resize(bytes);
  r.raw(m.bitmap.data(), bytes);
  // A bitmap longer than the count claims verdicts for entries that do not
  // exist; expect_done rejects the trailing bytes.
  r.expect_done();
  return m;
}

void encode_ping(WireWriter& w, const PingMsg& m) { w.u64(m.nonce); }

PingMsg decode_ping(WireReader& r) {
  PingMsg m;
  m.nonce = r.u64();
  r.expect_done();
  return m;
}

void encode_pong(WireWriter& w, const PongMsg& m) { w.u64(m.nonce); }

PongMsg decode_pong(WireReader& r) {
  PongMsg m;
  m.nonce = r.u64();
  r.expect_done();
  return m;
}

// --- framing -----------------------------------------------------------------

namespace {

void send_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw WireError(errno_text("send"));
    }
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
}

// Returns false on EOF before the first byte; throws on mid-read EOF.
bool recv_all(int fd, std::uint8_t* data, std::size_t n, bool eof_ok) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, data + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw WireError(errno_text("recv"));
    }
    if (r == 0) {
      if (got == 0 && eof_ok) {
        return false;
      }
      throw WireError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

// Verifies the crc (over type + seq bytes + payload) and the per-direction
// sequence number of a frame whose payload already sits in frame.payload.
void verify_frame(Frame& frame, const std::uint8_t header[kFrameHeaderBytes],
                  std::uint32_t expected_seq) {
  std::uint32_t seq = 0;
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    seq |= std::uint32_t{header[5 + i]} << (8 * i);
    crc |= std::uint32_t{header[9 + i]} << (8 * i);
  }
  frame.type = static_cast<MsgType>(header[4]);
  frame.seq = seq;
  std::uint32_t want = util::crc32(0, header + 4, 5);
  want = util::crc32(want, frame.payload.data(), frame.payload.size());
  if (want != crc) {
    throw WireError("frame crc mismatch (corrupted stream)");
  }
  if (seq != expected_seq) {
    throw WireError("frame sequence " + std::to_string(seq) + ", expected " +
                    std::to_string(expected_seq) +
                    " (dropped or duplicated frame)");
  }
}

// Reads the payload after a complete 13-byte header, then verifies.
void recv_frame_body(int fd, Frame& frame,
                     const std::uint8_t header[kFrameHeaderBytes],
                     std::uint32_t expected_seq) {
  const std::uint32_t len = frame_payload_size(header);
  frame.payload.resize(len);
  if (len > 0) {
    recv_all(fd, frame.payload.data(), len, /*eof_ok=*/false);
  }
  verify_frame(frame, header, expected_seq);
}

}  // namespace

std::uint32_t frame_payload_size(const std::uint8_t* header) {
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= std::uint32_t{header[i]} << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    throw WireError("oversized frame (" + std::to_string(len) + " bytes)");
  }
  return len;
}

void parse_frame(const std::uint8_t* header, const std::uint8_t* payload,
                 std::size_t payload_len, Frame& frame,
                 std::uint32_t expected_seq) {
  frame.payload.assign(payload, payload + payload_len);
  verify_frame(frame, header, expected_seq);
}

void build_frame(std::vector<std::uint8_t>& out, MsgType type,
                 const WireWriter& body, std::uint32_t seq) {
  out.clear();
  append_frame(out, type, body, seq);
}

void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  const WireWriter& body, std::uint32_t seq) {
  if (body.size() > kMaxFrameBytes) {
    throw WireError("frame payload too large");
  }
  out.reserve(out.size() + kFrameHeaderBytes + body.size());
  const std::size_t base = out.size();
  const auto len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  out.push_back(static_cast<std::uint8_t>(type));
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(seq >> (8 * i)));
  }
  std::uint32_t crc = util::crc32(0, out.data() + base + 4, 5);
  crc = util::crc32(crc, body.data(), body.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  out.insert(out.end(), body.data(), body.data() + body.size());
}

void send_bytes(int fd, const std::uint8_t* data, std::size_t n) {
  send_all(fd, data, n);
}

void send_frame(int fd, MsgType type, const WireWriter& body,
                std::uint32_t seq) {
  if (body.size() > kMaxFrameBytes) {
    throw WireError("frame payload too large");
  }
  std::uint8_t header[kFrameHeaderBytes];
  const auto len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  header[4] = static_cast<std::uint8_t>(type);
  for (int i = 0; i < 4; ++i) {
    header[5 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  std::uint32_t crc = util::crc32(0, header + 4, 5);
  crc = util::crc32(crc, body.data(), body.size());
  for (int i = 0; i < 4; ++i) {
    header[9 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  // One scatter-gather write: header + payload leave in a single syscall
  // (and, on TCP, usually a single segment) with no assembly copy.
  iovec iov[2];
  iov[0] = {header, sizeof header};
  iov[1] = {const_cast<std::uint8_t*>(body.data()), body.size()};
  std::size_t total = sizeof header + body.size();
  int iov_at = 0;
  while (total > 0) {
    msghdr mh{};
    mh.msg_iov = iov + iov_at;
    mh.msg_iovlen = 2 - iov_at;
    const ssize_t sent = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw WireError(errno_text("sendmsg"));
    }
    total -= static_cast<std::size_t>(sent);
    std::size_t left = static_cast<std::size_t>(sent);
    while (left > 0 && left >= iov[iov_at].iov_len) {
      left -= iov[iov_at].iov_len;
      iov[iov_at].iov_len = 0;
      ++iov_at;
    }
    if (left > 0) {
      iov[iov_at].iov_base = static_cast<std::uint8_t*>(iov[iov_at].iov_base) + left;
      iov[iov_at].iov_len -= left;
    }
  }
}

bool recv_frame(int fd, Frame& frame, std::uint32_t expected_seq) {
  std::uint8_t header[kFrameHeaderBytes];
  if (!recv_all(fd, header, sizeof header, /*eof_ok=*/true)) {
    return false;
  }
  recv_frame_body(fd, frame, header, expected_seq);
  return true;
}

int try_recv_frame(int fd, Frame& frame, std::uint32_t expected_seq) {
  std::uint8_t header[kFrameHeaderBytes];
  std::size_t got = 0;
  // First probe non-blockingly; once any header byte arrives the peer has
  // committed to a frame, so finishing the read blockingly cannot stall
  // beyond one in-flight message.
  while (got < sizeof header) {
    const ssize_t r =
        ::recv(fd, header + got, sizeof(header) - got, got == 0 ? MSG_DONTWAIT : 0);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (got == 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return 0;
      }
      throw WireError(errno_text("recv"));
    }
    if (r == 0) {
      if (got == 0) {
        return -1;
      }
      throw WireError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  recv_frame_body(fd, frame, header, expected_seq);
  return 1;
}

bool wait_readable(int fd, int timeout_ms) {
  struct pollfd pfd {};
  pfd.fd = fd;
  pfd.events = POLLIN;
  // EINTR must resume with the REMAINING time, not the full timeout: under
  // a signal storm (profilers, sanitizer timers) restarting the full poll
  // would extend the wait unboundedly.
  using Clock = std::chrono::steady_clock;
  const bool forever = timeout_ms < 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(forever ? 0 : timeout_ms);
  int remaining = timeout_ms;
  for (;;) {
    const int r = ::poll(&pfd, 1, remaining);
    if (r < 0) {
      if (errno == EINTR) {
        if (!forever) {
          const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - Clock::now());
          remaining = static_cast<int>(std::max<long long>(left.count(), 0));
        }
        continue;
      }
      throw WireError(errno_text("poll"));
    }
    return r > 0;
  }
}

// --- TCP helpers -------------------------------------------------------------

int listen_tcp(const std::string& host, std::uint16_t& port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw WireError(errno_text("socket"));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw WireError("listen_tcp: bad host address " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string err = errno_text("bind/listen");
    ::close(fd);
    throw WireError(err);
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const std::string err = errno_text("getsockname");
    ::close(fd);
    throw WireError(err);
  }
  port = ntohs(addr.sin_port);
  return fd;
}

int accept_tcp(int listen_fd, int timeout_ms) {
  if (!wait_readable(listen_fd, timeout_ms)) {
    return -1;
  }
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    if (errno != EINTR) {
      throw WireError(errno_text("accept"));
    }
  }
}

int connect_tcp(const std::string& host, std::uint16_t port,
                std::chrono::milliseconds deadline,
                std::uint64_t jitter_seed) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw WireError("connect_tcp: bad host address " + host);
  }
  // Jittered exponential backoff under a caller-supplied deadline: a
  // freshly forked worker can race the coordinator's listen(), and a
  // reconnecting fleet must not re-dial in lockstep (the jitter seed
  // de-synchronizes workers that lost the coordinator at the same instant).
  using Clock = std::chrono::steady_clock;
  const Clock::time_point give_up = Clock::now() + deadline;
  std::uint64_t rng = jitter_seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  auto next_jitter = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::string last_err = "unreachable";
  int attempts = 0;
  std::uint64_t backoff_us = 2'000;  // 2ms, doubling to a 200ms ceiling
  for (;;) {
    ++attempts;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      throw WireError(errno_text("socket"));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    last_err = errno_text("connect");
    ::close(fd);
    if (Clock::now() >= give_up) {
      break;
    }
    // Sleep backoff/2 .. backoff, capped so the final attempt lands near
    // the deadline instead of overshooting it by a whole backoff step.
    std::uint64_t sleep_us = backoff_us / 2 + next_jitter() % (backoff_us / 2 + 1);
    const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        give_up - Clock::now());
    sleep_us = std::min<std::uint64_t>(
        sleep_us, static_cast<std::uint64_t>(std::max<long long>(left.count(), 0)));
    if (sleep_us > 0) {
      ::usleep(static_cast<useconds_t>(sleep_us));
    }
    backoff_us = std::min<std::uint64_t>(backoff_us * 2, 200'000);
  }
  throw WireError("connect_tcp " + host + ":" + std::to_string(port) +
                  " failed after " + std::to_string(attempts) +
                  " attempt(s) over " + std::to_string(deadline.count()) +
                  " ms: " + last_err);
}

}  // namespace revisim::dist
