// Versioned binary wire format for the distributed schedule explorer.
//
// The unit of distribution is the prefix-identified job the in-process
// work-stealing explorer already uses: a pure (schedule prefix, choice
// list) value plus the donated sleep-set pids.  Everything that crosses the
// socket is a function of those values and of the options - no pointers, no
// warm worlds (the worker re-replays the prefix into its own checkpoint
// pool) - so the encoding below is a straight transcription.
//
// Encoding rules, version 3:
//   - All integers are fixed-width little-endian, written byte by byte
//     (shift/mask), so the format is identical across host endianness and
//     word size.
//   - Schedule entries travel as u64 with bit 63 as the crash flag,
//     re-encoded from the host representation (runtime::kCrashEntryBit sits
//     at the top of a size_t, which need not be 64 bits): a step entry is
//     the pid, a crash entry is the target pid with bit 63 set.  Decoding
//     rejects pids that do not fit the host ProcessId.
//   - Sequences are u32 count + items; strings are u32 length + raw bytes.
//   - Fingerprints are hi u64 + lo u64.
//   - A frame is [u32 payload length][u8 message type][u32 sequence]
//     [u32 crc][payload].  The sequence number counts frames per direction
//     from 0; the crc is CRC-32 over type + sequence + payload.  A crc
//     mismatch means a corrupted stream; a sequence mismatch means a frame
//     was dropped or duplicated in between.  Either is a WireError: the
//     receiver cuts the connection and recovery happens one level up
//     (job re-queue on the coordinator, reconnect on the worker) - there is
//     deliberately no retransmission layer, because the job protocol is
//     already idempotent under connection loss.  Payloads above
//     kMaxFrameBytes are rejected as corruption.
//
// Message catalogue (direction, payload):
//   kHello      C->W  magic, version, worker index, session token,
//                     heartbeat interval/timeout, exploration options,
//                     registry world spec (empty world name = the worker
//                     was forked from the coordinator and already owns the
//                     factory), live-counter interval
//   kHelloAck   W->C  magic, version, ok flag + error text (unknown world,
//                     version skew), resume flag + session token (a
//                     reconnecting worker echoes its prior session)
//   kJob        C->W  job id, execution budget, fault_after (test
//                     instrumentation), prefix, choices, sleep pids,
//                     no_dedupe flag (re-run of a lost deduped attempt)
//   kJobResult  W->C  job id + the full SubtreeResult summary
//   kJobError   W->C  job id + exception text (retry/degradation path)
//   kLive       W->C  job id + executions so far (cap-credit input)
//   kDonate     W->C  parent job id + a donated (prefix, choices, sleep)
//                     region, the steal-request response
//   kCredit     C->W  job id + remaining execution budget; abort flag cuts
//                     the job entirely (lex-earlier regions secured the
//                     cap, or a lex-earlier violation)
//   kStealReq   C->W  empty; asks the worker to split its current job
//   kFpInsert   W->C  fingerprint + optional canonical state text (audit);
//                     first local sighting, forwarded to the shard service
//                     (v2 synchronous path, kept for one-off inserts)
//   kFpReply    C->W  was_new flag (claim-then-walk verdict)
//   kFpBatch    W->C  a window of fingerprints in one frame (+ parallel
//                     canonical texts in audit mode); the async pipeline's
//                     claim request
//   kFpVerdicts C->W  packed was_new bitmap, bit i answering entry i of the
//                     oldest unanswered kFpBatch (batches are answered
//                     strictly in order)
//   kShutdown   C->W  empty; the run is over
//   kPing       both  liveness probe with an echo nonce; legal at any
//                     protocol point, answered with kPong
//   kPong       both  echo of a kPing nonce
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/check/explore_core.h"
#include "src/runtime/trace.h"
#include "src/util/fingerprint.h"

namespace revisim::dist {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kWireMagic = 0x4d535652u;  // "RVSM"
inline constexpr std::uint16_t kWireVersion = 3;
inline constexpr std::size_t kMaxFrameBytes = std::size_t{64} << 20;
// [u32 len][u8 type][u32 seq][u32 crc]
inline constexpr std::size_t kFrameHeaderBytes = 13;

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kJob = 3,
  kJobResult = 4,
  kJobError = 5,
  kLive = 6,
  kDonate = 7,
  kCredit = 8,
  kStealReq = 9,
  kFpInsert = 10,
  kFpReply = 11,
  kShutdown = 12,
  kPing = 13,
  kPong = 14,
  kFpBatch = 15,
  kFpVerdicts = 16,
};

// --- schedule entries --------------------------------------------------------

// Host schedule entry <-> machine-independent u64 (bit 63 = crash flag).
[[nodiscard]] std::uint64_t entry_to_wire(runtime::ProcessId entry);
// Throws WireError if the pid does not fit the host ProcessId.
[[nodiscard]] runtime::ProcessId entry_from_wire(std::uint64_t wire);

// --- primitive encoder/decoder ----------------------------------------------

// Append-only little-endian byte buffer.  Each connection keeps ONE writer
// and clears it per message, so steady-state serialization allocates
// nothing (the backing vector keeps its high-water capacity).
class WireWriter {
 public:
  void clear() { buf_.clear(); }
  void reserve(std::size_t n) { buf_.reserve(n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void str(const std::string& v);
  void entry(runtime::ProcessId e) { u64(entry_to_wire(e)); }
  void schedule(const std::vector<runtime::ProcessId>& entries);
  void fingerprint(util::Fingerprint fp);
  void data(const std::uint8_t* p, std::size_t n) {
    buf_.insert(buf_.end(), p, p + n);
  }

  [[nodiscard]] const std::uint8_t* data() const { return buf_.data(); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Bounds-checked reader over a received payload; throws WireError on
// truncation, oversized counts, or trailing bytes (expect_done).
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : p_(data), size_(size) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::string str();
  runtime::ProcessId entry() { return entry_from_wire(u64()); }
  std::vector<runtime::ProcessId> schedule();
  util::Fingerprint fingerprint();
  void raw(std::uint8_t* out, std::size_t n);

  [[nodiscard]] bool done() const { return off_ == size_; }
  void expect_done() const;
  // Pre-check that `n` bytes remain, without consuming them - rejects a
  // corrupt element count before it becomes a huge reserve().
  void need_ahead(std::size_t n) const { need(n); }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* p_;
  std::size_t size_;
  std::size_t off_ = 0;
};

// --- typed messages ----------------------------------------------------------

struct HelloMsg {
  std::uint32_t worker = 0;  // index assigned by the coordinator
  // Session token assigned by the coordinator; a worker that reconnects
  // echoes its prior token in HelloAck to resume the session.
  std::uint64_t session = 0;
  // Liveness layer: ping every interval, declare the peer dead after
  // timeout of silence.  interval 0 = heartbeats off.
  std::uint32_t heartbeat_interval_ms = 0;
  std::uint32_t heartbeat_timeout_ms = 0;
  // Exploration options shipped once per connection; the per-job execution
  // budget rides on each kJob instead (it depends on the cap bound).
  std::uint64_t max_steps = 64;
  std::uint64_t warm_worlds = 8;
  std::uint64_t max_crashes = 0;
  bool record_traces = false;
  bool dedupe_states = false;
  bool dedupe_audit = false;
  bool dedupe_adaptive = false;
  bool por = false;
  std::uint64_t live_interval = 256;  // executions between kLive messages
  // Abort-probe pump cadence: the worker drains coordinator frames every
  // `probe_interval`-th abort probe (ScheduleExploreOptions::
  // dist_probe_interval, validated >= 1).
  std::uint64_t probe_interval = 16;
  // Fingerprint pipeline: claims ship in kFpBatch frames of up to fp_batch
  // entries, and at most fp_window claims may be awaiting verdicts before
  // the worker blocks (the bounded speculation window).
  std::uint32_t fp_batch = 32;
  std::uint32_t fp_window = 128;
  // Registry world (src/check/crash_worlds.h) for cluster workers; an empty
  // name means the worker holds the factory already (fork mode).
  std::string world;
  std::uint64_t f = 0;
  std::uint64_t m = 0;
  std::uint64_t step_budget = 0;
};

struct HelloAckMsg {
  bool ok = true;
  std::string error;
  // resume: this connection re-handshakes an existing session; `session`
  // then carries the prior token (otherwise it echoes hello.session).
  bool resume = false;
  std::uint64_t session = 0;
};

struct JobMsg {
  std::uint64_t id = 0;
  std::uint64_t budget = 0;       // max executions for this job
  std::uint64_t fault_after = 0;  // test hook: _exit after N executions
  std::vector<runtime::ProcessId> prefix;
  std::vector<runtime::ProcessId> choices;  // empty = all choices (seed job)
  std::vector<runtime::ProcessId> sleep;
  // Leading entries of `sleep` that are inherited sleepers (wakeup-counting)
  // rather than the donor's explored elder siblings; see Donation.
  std::uint32_t sleep_inherited = 0;
  // Re-run of a job whose previous attempt died mid-walk with dedupe on:
  // the worker must walk the whole region unpruned (and donate it onward
  // unpruned), because the lost attempt's fingerprint claims have no owner.
  bool no_dedupe = false;
};

struct JobResultMsg {
  std::uint64_t id = 0;
  check::detail::SubtreeResult result;
};

struct JobErrorMsg {
  std::uint64_t id = 0;
  std::string message;
};

struct LiveMsg {
  std::uint64_t id = 0;
  std::uint64_t executions = 0;
};

struct DonateMsg {
  std::uint64_t parent = 0;  // job the region was split from
  std::vector<runtime::ProcessId> prefix;
  std::vector<runtime::ProcessId> choices;
  std::vector<runtime::ProcessId> sleep;
  std::uint32_t sleep_inherited = 0;  // as in JobMsg
};

struct CreditMsg {
  std::uint64_t id = 0;
  std::uint64_t budget = 0;  // remaining executions; ignored when abort
  bool abort = false;
};

struct FpInsertMsg {
  util::Fingerprint fp;
  bool has_canonical = false;  // audit mode ships the canonical state text
  std::string canonical;
};

struct FpReplyMsg {
  bool was_new = false;
};

struct FpBatchMsg {
  std::vector<util::Fingerprint> fps;
  // Audit mode ships canonical state texts parallel to `fps`; decode
  // rejects a canonical list whose length disagrees with the batch.
  bool has_canonical = false;
  std::vector<std::string> canonicals;
};

struct FpVerdictsMsg {
  // Number of verdicts; must equal the oldest unanswered batch's size.
  std::uint32_t count = 0;
  // ceil(count / 8) bytes; bit i (little-endian within each byte) is the
  // was_new verdict for batch entry i.  encode/decode reject a bitmap
  // whose length disagrees with `count`.
  std::vector<std::uint8_t> bitmap;

  [[nodiscard]] bool was_new(std::uint32_t i) const {
    return (bitmap[i >> 3] >> (i & 7)) & 1u;
  }
  void set(std::uint32_t i, bool v) {
    if (v) {
      bitmap[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
    } else {
      bitmap[i >> 3] &= static_cast<std::uint8_t>(~(1u << (i & 7)));
    }
  }
  void resize(std::uint32_t n) {
    count = n;
    bitmap.assign((n + 7) / 8, 0);
  }
};

struct PingMsg {
  std::uint64_t nonce = 0;
};

struct PongMsg {
  std::uint64_t nonce = 0;
};

// The SubtreeResult transcription shared by kJobResult and the run
// journal's job-done records (src/dist/journal.h).  decode does not call
// expect_done: callers may follow with their own fields.
void encode_subtree_result(WireWriter& w,
                           const check::detail::SubtreeResult& s);
[[nodiscard]] check::detail::SubtreeResult decode_subtree_result(
    WireReader& r);

void encode_hello(WireWriter& w, const HelloMsg& m);
[[nodiscard]] HelloMsg decode_hello(WireReader& r);
void encode_hello_ack(WireWriter& w, const HelloAckMsg& m);
[[nodiscard]] HelloAckMsg decode_hello_ack(WireReader& r);
void encode_job(WireWriter& w, const JobMsg& m);
[[nodiscard]] JobMsg decode_job(WireReader& r);
void encode_job_result(WireWriter& w, const JobResultMsg& m);
[[nodiscard]] JobResultMsg decode_job_result(WireReader& r);
void encode_job_error(WireWriter& w, const JobErrorMsg& m);
[[nodiscard]] JobErrorMsg decode_job_error(WireReader& r);
void encode_live(WireWriter& w, const LiveMsg& m);
[[nodiscard]] LiveMsg decode_live(WireReader& r);
void encode_donate(WireWriter& w, const DonateMsg& m);
[[nodiscard]] DonateMsg decode_donate(WireReader& r);
void encode_credit(WireWriter& w, const CreditMsg& m);
[[nodiscard]] CreditMsg decode_credit(WireReader& r);
void encode_fp_insert(WireWriter& w, const FpInsertMsg& m);
[[nodiscard]] FpInsertMsg decode_fp_insert(WireReader& r);
void encode_fp_reply(WireWriter& w, const FpReplyMsg& m);
[[nodiscard]] FpReplyMsg decode_fp_reply(WireReader& r);
void encode_fp_batch(WireWriter& w, const FpBatchMsg& m);
[[nodiscard]] FpBatchMsg decode_fp_batch(WireReader& r);
void encode_fp_verdicts(WireWriter& w, const FpVerdictsMsg& m);
[[nodiscard]] FpVerdictsMsg decode_fp_verdicts(WireReader& r);
void encode_ping(WireWriter& w, const PingMsg& m);
[[nodiscard]] PingMsg decode_ping(WireReader& r);
void encode_pong(WireWriter& w, const PongMsg& m);
[[nodiscard]] PongMsg decode_pong(WireReader& r);

// --- framing over a connected socket ----------------------------------------

struct Frame {
  MsgType type{};
  std::uint32_t seq = 0;
  std::vector<std::uint8_t> payload;  // reused across recv_frame calls

  [[nodiscard]] WireReader reader() const {
    return WireReader(payload.data(), payload.size());
  }
};

// Serializes one complete frame (header + payload) into `out` (cleared
// first).  Exposed so the fault-injection channel can mutate the byte
// stream below the framing layer; send_frame is build + send.
void build_frame(std::vector<std::uint8_t>& out, MsgType type,
                 const WireWriter& body, std::uint32_t seq);

// Appends one complete frame to `out` WITHOUT clearing it - the
// frame-coalescing tx-buffer path; build_frame is clear + append.
void append_frame(std::vector<std::uint8_t>& out, MsgType type,
                  const WireWriter& body, std::uint32_t seq);

// Writes raw bytes with MSG_NOSIGNAL; throws WireError on I/O failure (a
// dead peer surfaces as an error, never a SIGPIPE).
void send_bytes(int fd, const std::uint8_t* data, std::size_t n);

// Writes one frame carrying the given per-direction sequence number as a
// single scatter-gather write (header + payload in one sendmsg, no
// assembly copy).  Callers own the counter (see fault_channel.h's Channel,
// which wraps fd + both counters); throws WireError on I/O failure.
void send_frame(int fd, MsgType type, const WireWriter& body,
                std::uint32_t seq);

// Reads the payload length out of a 13-byte frame header; throws WireError
// when it exceeds kMaxFrameBytes (stream corruption).
[[nodiscard]] std::uint32_t frame_payload_size(const std::uint8_t* header);

// Verifies and unpacks one complete frame whose header and payload bytes
// are already in memory - the buffered (epoll) receive path.  Same crc /
// sequence / size checks as recv_frame.
void parse_frame(const std::uint8_t* header, const std::uint8_t* payload,
                 std::size_t payload_len, Frame& frame,
                 std::uint32_t expected_seq);

// Blocking receive.  Returns false on clean EOF at a frame boundary; throws
// WireError on I/O failure, truncated frames, oversized payloads, crc
// mismatch, or a sequence number other than `expected_seq` (a dropped or
// duplicated frame in between).
bool recv_frame(int fd, Frame& frame, std::uint32_t expected_seq);

// Non-blocking poll-then-receive: 1 = frame received, 0 = nothing pending,
// -1 = EOF.  Once a frame header byte is visible the rest is read
// blockingly (the peer has committed to sending it).
int try_recv_frame(int fd, Frame& frame, std::uint32_t expected_seq);

// Blocks until fd is readable or `timeout_ms` expires; true = readable.
// EINTR restarts the poll with the REMAINING time (monotonic deadline), so
// a signal storm cannot extend the timeout.  Negative timeout = forever.
bool wait_readable(int fd, int timeout_ms);

// --- minimal TCP helpers -----------------------------------------------------

// Listens on host:port (port 0 = ephemeral; the chosen port is written
// back).  Throws WireError on failure.
int listen_tcp(const std::string& host, std::uint16_t& port);
// Accepts one connection; -1 on timeout.  Throws WireError on failure.
int accept_tcp(int listen_fd, int timeout_ms);
// Connects to host:port, retrying with jittered exponential backoff until
// `deadline` elapses (a freshly forked worker can race the coordinator's
// listen(), and reconnecting workers dial a coordinator that may take a
// moment to come back).  `jitter_seed` perturbs the backoff so a fleet of
// workers does not reconnect in lockstep.  Throws WireError naming the
// attempt count and the last errno on failure.
int connect_tcp(const std::string& host, std::uint16_t port,
                std::chrono::milliseconds deadline =
                    std::chrono::milliseconds(5000),
                std::uint64_t jitter_seed = 0);

}  // namespace revisim::dist
