// Durable run journal for the distributed explorer: an append-only,
// CRC-framed record stream that survives a coordinator crash and lets
// `revisim_cli dist-explore --resume <journal>` skip every lex range whose
// walk already completed.
//
// File layout: an 8-byte magic ("RVSJRNL1"), then records framed like the
// wire format - [u32 payload length][u8 record type][payload][u32 crc over
// type + payload] - with all payload integers little-endian via
// WireWriter/WireReader.  Record types:
//
//   kConfig (1)     the run configuration fingerprint (world tag + every
//                   option that shapes the schedule tree or its accounting:
//                   max_steps, max_executions, max_crashes, por, dedupe,
//                   record_traces).  Always the first record; resume
//                   refuses a journal whose config differs from the
//                   options it was launched with.
//   kCreated (2)    a job record came into existence: id, parent link, and
//                   the full (prefix, choices, sleep) region spec - enough
//                   to re-run the job from scratch.
//   kDone (3)       a job's walk completed: id + SubtreeResult.  Written
//                   only for walks the merge may reuse verbatim: fully
//                   explored, or carrying a violation (partial cap/stop
//                   walks are NOT journaled - a resumed run re-walks them,
//                   and the deterministic merge truncates identically).
//   kDiscarded (4)  tombstone: the job's region was re-covered by an
//                   ancestor's re-run (written during resume planning), so
//                   later resumes must ignore the record entirely.
//
// A crash can tear the file only at the tail; read_journal treats a
// truncated or crc-failing tail as "the run got this far" and drops it,
// which is exactly the durability the resume contract needs: every kDone
// record that survives is a completed walk, and anything lost simply
// re-runs.  Writes are flushed per record.
//
// Resume rule (see check::detail::plan_resume): a journaled job is REUSED
// iff it is done and every ancestor is done; a job with an un-done
// ancestor is DISCARDED (the ancestor re-runs its full original region,
// descendants included); an un-done job with done ancestors is RERUN from
// its recorded spec.  The merged result of reused + rerun regions is
// bit-identical to an uninterrupted run because the merge is a
// deterministic function of the region decomposition.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/check/explore_core.h"
#include "src/dist/wire.h"
#include "src/runtime/trace.h"

namespace revisim::dist {

// The options fingerprint a journal pins.  `tag` is an opaque caller
// string naming the world (CLI: "world=aug-bu,f=2,m=2,budget=6"; tests:
// a fixture name); empty tags match only empty tags.
struct JournalConfig {
  std::string tag;
  std::uint64_t max_steps = 0;
  std::uint64_t max_executions = 0;
  std::uint64_t max_crashes = 0;
  bool por = false;
  bool dedupe = false;
  bool record_traces = false;

  bool operator==(const JournalConfig&) const = default;
};

// Appends records to a journal file.  Thread-safe: coordinator connection
// threads log donations and completions concurrently.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Creates/truncates `path`: magic + kConfig record.  Throws WireError.
  void create(const std::string& path, const JournalConfig& config);
  // Reopens an existing journal for appending (resume).  The caller is
  // expected to have validated the config via read_journal first.
  void append_to(const std::string& path);
  void close();
  [[nodiscard]] bool open() const { return file_ != nullptr; }

  void job_created(std::uint64_t id, bool has_parent, std::uint64_t parent,
                   const std::vector<runtime::ProcessId>& prefix,
                   const std::vector<runtime::ProcessId>& choices,
                   const std::vector<runtime::ProcessId>& sleep,
                   std::uint32_t sleep_inherited);
  void job_done(std::uint64_t id, const check::detail::SubtreeResult& result);
  void job_discarded(std::uint64_t id);

 private:
  void record(std::uint8_t type, const WireWriter& payload);

  std::mutex mu_;
  std::FILE* file_ = nullptr;
  WireWriter body_;
};

struct JournalJob {
  std::uint64_t id = 0;
  bool has_parent = false;
  std::uint64_t parent = 0;
  std::vector<runtime::ProcessId> prefix;
  std::vector<runtime::ProcessId> choices;
  std::vector<runtime::ProcessId> sleep;
  std::uint32_t sleep_inherited = 0;
  bool done = false;
  check::detail::SubtreeResult result;  // valid when done
  bool discarded = false;               // tombstoned by an earlier resume
};

struct JournalContents {
  JournalConfig config;
  std::vector<JournalJob> jobs;        // in creation order
  std::size_t dropped_tail_bytes = 0;  // torn/corrupt tail ignored
};

// Loads a journal, tolerating a torn tail (see above).  Throws WireError
// on files that are not journals at all (bad magic, missing config
// record), and on structural nonsense a tear cannot explain (a kDone for
// an id never created).
JournalContents read_journal(const std::string& path);

}  // namespace revisim::dist
